file(REMOVE_RECURSE
  "CMakeFiles/exo_pattern.dir/pattern/Cursor.cpp.o"
  "CMakeFiles/exo_pattern.dir/pattern/Cursor.cpp.o.d"
  "CMakeFiles/exo_pattern.dir/pattern/Pattern.cpp.o"
  "CMakeFiles/exo_pattern.dir/pattern/Pattern.cpp.o.d"
  "libexo_pattern.a"
  "libexo_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
