file(REMOVE_RECURSE
  "libexo_pattern.a"
)
