# Empty dependencies file for exo_pattern.
# This may be replaced when dependencies are built.
