file(REMOVE_RECURSE
  "libexo_check.a"
)
