# Empty dependencies file for exo_check.
# This may be replaced when dependencies are built.
