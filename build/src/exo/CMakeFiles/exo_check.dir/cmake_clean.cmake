file(REMOVE_RECURSE
  "CMakeFiles/exo_check.dir/check/Bounds.cpp.o"
  "CMakeFiles/exo_check.dir/check/Bounds.cpp.o.d"
  "libexo_check.a"
  "libexo_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
