# Empty dependencies file for exo_front.
# This may be replaced when dependencies are built.
