file(REMOVE_RECURSE
  "libexo_front.a"
)
