file(REMOVE_RECURSE
  "CMakeFiles/exo_front.dir/front/Parse.cpp.o"
  "CMakeFiles/exo_front.dir/front/Parse.cpp.o.d"
  "CMakeFiles/exo_front.dir/front/ScheduleScript.cpp.o"
  "CMakeFiles/exo_front.dir/front/ScheduleScript.cpp.o.d"
  "libexo_front.a"
  "libexo_front.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_front.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
