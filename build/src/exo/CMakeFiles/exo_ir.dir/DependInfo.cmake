
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exo/ir/Affine.cpp" "src/exo/CMakeFiles/exo_ir.dir/ir/Affine.cpp.o" "gcc" "src/exo/CMakeFiles/exo_ir.dir/ir/Affine.cpp.o.d"
  "/root/repo/src/exo/ir/Builder.cpp" "src/exo/CMakeFiles/exo_ir.dir/ir/Builder.cpp.o" "gcc" "src/exo/CMakeFiles/exo_ir.dir/ir/Builder.cpp.o.d"
  "/root/repo/src/exo/ir/Equal.cpp" "src/exo/CMakeFiles/exo_ir.dir/ir/Equal.cpp.o" "gcc" "src/exo/CMakeFiles/exo_ir.dir/ir/Equal.cpp.o.d"
  "/root/repo/src/exo/ir/Expr.cpp" "src/exo/CMakeFiles/exo_ir.dir/ir/Expr.cpp.o" "gcc" "src/exo/CMakeFiles/exo_ir.dir/ir/Expr.cpp.o.d"
  "/root/repo/src/exo/ir/Printer.cpp" "src/exo/CMakeFiles/exo_ir.dir/ir/Printer.cpp.o" "gcc" "src/exo/CMakeFiles/exo_ir.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/exo/ir/Proc.cpp" "src/exo/CMakeFiles/exo_ir.dir/ir/Proc.cpp.o" "gcc" "src/exo/CMakeFiles/exo_ir.dir/ir/Proc.cpp.o.d"
  "/root/repo/src/exo/ir/Rewrite.cpp" "src/exo/CMakeFiles/exo_ir.dir/ir/Rewrite.cpp.o" "gcc" "src/exo/CMakeFiles/exo_ir.dir/ir/Rewrite.cpp.o.d"
  "/root/repo/src/exo/ir/Stmt.cpp" "src/exo/CMakeFiles/exo_ir.dir/ir/Stmt.cpp.o" "gcc" "src/exo/CMakeFiles/exo_ir.dir/ir/Stmt.cpp.o.d"
  "/root/repo/src/exo/ir/Type.cpp" "src/exo/CMakeFiles/exo_ir.dir/ir/Type.cpp.o" "gcc" "src/exo/CMakeFiles/exo_ir.dir/ir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exo/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
