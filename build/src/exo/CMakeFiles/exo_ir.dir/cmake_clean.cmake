file(REMOVE_RECURSE
  "CMakeFiles/exo_ir.dir/ir/Affine.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Affine.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Builder.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Builder.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Equal.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Equal.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Expr.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Expr.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Printer.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Printer.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Proc.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Proc.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Rewrite.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Rewrite.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Stmt.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Stmt.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Type.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Type.cpp.o.d"
  "libexo_ir.a"
  "libexo_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
