
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exo/isa/Avx.cpp" "src/exo/CMakeFiles/exo_isa.dir/isa/Avx.cpp.o" "gcc" "src/exo/CMakeFiles/exo_isa.dir/isa/Avx.cpp.o.d"
  "/root/repo/src/exo/isa/InstrBuilders.cpp" "src/exo/CMakeFiles/exo_isa.dir/isa/InstrBuilders.cpp.o" "gcc" "src/exo/CMakeFiles/exo_isa.dir/isa/InstrBuilders.cpp.o.d"
  "/root/repo/src/exo/isa/IsaRegistry.cpp" "src/exo/CMakeFiles/exo_isa.dir/isa/IsaRegistry.cpp.o" "gcc" "src/exo/CMakeFiles/exo_isa.dir/isa/IsaRegistry.cpp.o.d"
  "/root/repo/src/exo/isa/Neon.cpp" "src/exo/CMakeFiles/exo_isa.dir/isa/Neon.cpp.o" "gcc" "src/exo/CMakeFiles/exo_isa.dir/isa/Neon.cpp.o.d"
  "/root/repo/src/exo/isa/Portable.cpp" "src/exo/CMakeFiles/exo_isa.dir/isa/Portable.cpp.o" "gcc" "src/exo/CMakeFiles/exo_isa.dir/isa/Portable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exo/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
