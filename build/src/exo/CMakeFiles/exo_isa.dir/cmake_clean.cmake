file(REMOVE_RECURSE
  "CMakeFiles/exo_isa.dir/isa/Avx.cpp.o"
  "CMakeFiles/exo_isa.dir/isa/Avx.cpp.o.d"
  "CMakeFiles/exo_isa.dir/isa/InstrBuilders.cpp.o"
  "CMakeFiles/exo_isa.dir/isa/InstrBuilders.cpp.o.d"
  "CMakeFiles/exo_isa.dir/isa/IsaRegistry.cpp.o"
  "CMakeFiles/exo_isa.dir/isa/IsaRegistry.cpp.o.d"
  "CMakeFiles/exo_isa.dir/isa/Neon.cpp.o"
  "CMakeFiles/exo_isa.dir/isa/Neon.cpp.o.d"
  "CMakeFiles/exo_isa.dir/isa/Portable.cpp.o"
  "CMakeFiles/exo_isa.dir/isa/Portable.cpp.o.d"
  "libexo_isa.a"
  "libexo_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
