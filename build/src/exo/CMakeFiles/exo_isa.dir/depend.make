# Empty dependencies file for exo_isa.
# This may be replaced when dependencies are built.
