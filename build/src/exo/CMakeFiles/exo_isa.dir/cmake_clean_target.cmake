file(REMOVE_RECURSE
  "libexo_isa.a"
)
