file(REMOVE_RECURSE
  "libexo_sched.a"
)
