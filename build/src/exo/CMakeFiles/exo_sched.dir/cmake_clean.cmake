file(REMOVE_RECURSE
  "CMakeFiles/exo_sched.dir/sched/ExtraXforms.cpp.o"
  "CMakeFiles/exo_sched.dir/sched/ExtraXforms.cpp.o.d"
  "CMakeFiles/exo_sched.dir/sched/LoopXforms.cpp.o"
  "CMakeFiles/exo_sched.dir/sched/LoopXforms.cpp.o.d"
  "CMakeFiles/exo_sched.dir/sched/MemXforms.cpp.o"
  "CMakeFiles/exo_sched.dir/sched/MemXforms.cpp.o.d"
  "CMakeFiles/exo_sched.dir/sched/Misc.cpp.o"
  "CMakeFiles/exo_sched.dir/sched/Misc.cpp.o.d"
  "CMakeFiles/exo_sched.dir/sched/Replace.cpp.o"
  "CMakeFiles/exo_sched.dir/sched/Replace.cpp.o.d"
  "CMakeFiles/exo_sched.dir/sched/Validate.cpp.o"
  "CMakeFiles/exo_sched.dir/sched/Validate.cpp.o.d"
  "libexo_sched.a"
  "libexo_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
