# Empty compiler generated dependencies file for exo_sched.
# This may be replaced when dependencies are built.
