
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exo/sched/ExtraXforms.cpp" "src/exo/CMakeFiles/exo_sched.dir/sched/ExtraXforms.cpp.o" "gcc" "src/exo/CMakeFiles/exo_sched.dir/sched/ExtraXforms.cpp.o.d"
  "/root/repo/src/exo/sched/LoopXforms.cpp" "src/exo/CMakeFiles/exo_sched.dir/sched/LoopXforms.cpp.o" "gcc" "src/exo/CMakeFiles/exo_sched.dir/sched/LoopXforms.cpp.o.d"
  "/root/repo/src/exo/sched/MemXforms.cpp" "src/exo/CMakeFiles/exo_sched.dir/sched/MemXforms.cpp.o" "gcc" "src/exo/CMakeFiles/exo_sched.dir/sched/MemXforms.cpp.o.d"
  "/root/repo/src/exo/sched/Misc.cpp" "src/exo/CMakeFiles/exo_sched.dir/sched/Misc.cpp.o" "gcc" "src/exo/CMakeFiles/exo_sched.dir/sched/Misc.cpp.o.d"
  "/root/repo/src/exo/sched/Replace.cpp" "src/exo/CMakeFiles/exo_sched.dir/sched/Replace.cpp.o" "gcc" "src/exo/CMakeFiles/exo_sched.dir/sched/Replace.cpp.o.d"
  "/root/repo/src/exo/sched/Validate.cpp" "src/exo/CMakeFiles/exo_sched.dir/sched/Validate.cpp.o" "gcc" "src/exo/CMakeFiles/exo_sched.dir/sched/Validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exo/CMakeFiles/exo_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
