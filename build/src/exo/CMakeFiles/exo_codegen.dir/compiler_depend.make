# Empty compiler generated dependencies file for exo_codegen.
# This may be replaced when dependencies are built.
