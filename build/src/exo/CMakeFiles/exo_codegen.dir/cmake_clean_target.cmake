file(REMOVE_RECURSE
  "libexo_codegen.a"
)
