file(REMOVE_RECURSE
  "CMakeFiles/exo_codegen.dir/codegen/CEmit.cpp.o"
  "CMakeFiles/exo_codegen.dir/codegen/CEmit.cpp.o.d"
  "libexo_codegen.a"
  "libexo_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
