
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exo/jit/DiskCache.cpp" "src/exo/CMakeFiles/exo_jit.dir/jit/DiskCache.cpp.o" "gcc" "src/exo/CMakeFiles/exo_jit.dir/jit/DiskCache.cpp.o.d"
  "/root/repo/src/exo/jit/Jit.cpp" "src/exo/CMakeFiles/exo_jit.dir/jit/Jit.cpp.o" "gcc" "src/exo/CMakeFiles/exo_jit.dir/jit/Jit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exo/CMakeFiles/exo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
