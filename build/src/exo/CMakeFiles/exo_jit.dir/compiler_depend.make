# Empty compiler generated dependencies file for exo_jit.
# This may be replaced when dependencies are built.
