file(REMOVE_RECURSE
  "libexo_jit.a"
)
