file(REMOVE_RECURSE
  "CMakeFiles/exo_jit.dir/jit/DiskCache.cpp.o"
  "CMakeFiles/exo_jit.dir/jit/DiskCache.cpp.o.d"
  "CMakeFiles/exo_jit.dir/jit/Jit.cpp.o"
  "CMakeFiles/exo_jit.dir/jit/Jit.cpp.o.d"
  "libexo_jit.a"
  "libexo_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
