file(REMOVE_RECURSE
  "CMakeFiles/exocc.dir/__/__/tools/exocc.cpp.o"
  "CMakeFiles/exocc.dir/__/__/tools/exocc.cpp.o.d"
  "exocc"
  "exocc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exocc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
