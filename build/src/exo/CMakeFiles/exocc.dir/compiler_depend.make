# Empty compiler generated dependencies file for exocc.
# This may be replaced when dependencies are built.
