
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ukr/KernelRegistry.cpp" "src/ukr/CMakeFiles/ukr.dir/KernelRegistry.cpp.o" "gcc" "src/ukr/CMakeFiles/ukr.dir/KernelRegistry.cpp.o.d"
  "/root/repo/src/ukr/KernelService.cpp" "src/ukr/CMakeFiles/ukr.dir/KernelService.cpp.o" "gcc" "src/ukr/CMakeFiles/ukr.dir/KernelService.cpp.o.d"
  "/root/repo/src/ukr/UkrSchedule.cpp" "src/ukr/CMakeFiles/ukr.dir/UkrSchedule.cpp.o" "gcc" "src/ukr/CMakeFiles/ukr.dir/UkrSchedule.cpp.o.d"
  "/root/repo/src/ukr/UkrSpec.cpp" "src/ukr/CMakeFiles/ukr.dir/UkrSpec.cpp.o" "gcc" "src/ukr/CMakeFiles/ukr.dir/UkrSpec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exo/CMakeFiles/exo_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_check.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
