# Empty compiler generated dependencies file for ukr.
# This may be replaced when dependencies are built.
