file(REMOVE_RECURSE
  "CMakeFiles/ukr.dir/KernelRegistry.cpp.o"
  "CMakeFiles/ukr.dir/KernelRegistry.cpp.o.d"
  "CMakeFiles/ukr.dir/KernelService.cpp.o"
  "CMakeFiles/ukr.dir/KernelService.cpp.o.d"
  "CMakeFiles/ukr.dir/UkrSchedule.cpp.o"
  "CMakeFiles/ukr.dir/UkrSchedule.cpp.o.d"
  "CMakeFiles/ukr.dir/UkrSpec.cpp.o"
  "CMakeFiles/ukr.dir/UkrSpec.cpp.o.d"
  "libukr.a"
  "libukr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ukr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
