file(REMOVE_RECURSE
  "libukr.a"
)
