# Empty dependencies file for ukr_cachectl.
# This may be replaced when dependencies are built.
