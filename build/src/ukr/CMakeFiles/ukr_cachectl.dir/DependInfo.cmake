
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ukr_cachectl.cpp" "src/ukr/CMakeFiles/ukr_cachectl.dir/__/__/tools/ukr_cachectl.cpp.o" "gcc" "src/ukr/CMakeFiles/ukr_cachectl.dir/__/__/tools/ukr_cachectl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ukr/CMakeFiles/ukr.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_check.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
