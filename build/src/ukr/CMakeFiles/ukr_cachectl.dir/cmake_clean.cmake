file(REMOVE_RECURSE
  "CMakeFiles/ukr_cachectl.dir/__/__/tools/ukr_cachectl.cpp.o"
  "CMakeFiles/ukr_cachectl.dir/__/__/tools/ukr_cachectl.cpp.o.d"
  "ukr_cachectl"
  "ukr_cachectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ukr_cachectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
