# Empty compiler generated dependencies file for ukr_gen.
# This may be replaced when dependencies are built.
