file(REMOVE_RECURSE
  "CMakeFiles/ukr_gen.dir/__/__/tools/ukr_gen.cpp.o"
  "CMakeFiles/ukr_gen.dir/__/__/tools/ukr_gen.cpp.o.d"
  "ukr_gen"
  "ukr_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ukr_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
