# Empty dependencies file for benchutil.
# This may be replaced when dependencies are built.
