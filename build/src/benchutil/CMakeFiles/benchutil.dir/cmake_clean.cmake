file(REMOVE_RECURSE
  "CMakeFiles/benchutil.dir/Bench.cpp.o"
  "CMakeFiles/benchutil.dir/Bench.cpp.o.d"
  "libbenchutil.a"
  "libbenchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
