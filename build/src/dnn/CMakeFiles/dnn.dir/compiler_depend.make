# Empty compiler generated dependencies file for dnn.
# This may be replaced when dependencies are built.
