file(REMOVE_RECURSE
  "CMakeFiles/dnn.dir/Conv.cpp.o"
  "CMakeFiles/dnn.dir/Conv.cpp.o.d"
  "CMakeFiles/dnn.dir/Models.cpp.o"
  "CMakeFiles/dnn.dir/Models.cpp.o.d"
  "libdnn.a"
  "libdnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
