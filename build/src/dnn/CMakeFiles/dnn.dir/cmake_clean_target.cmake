file(REMOVE_RECURSE
  "libdnn.a"
)
