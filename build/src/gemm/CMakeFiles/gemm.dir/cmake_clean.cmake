file(REMOVE_RECURSE
  "CMakeFiles/gemm.dir/CacheModel.cpp.o"
  "CMakeFiles/gemm.dir/CacheModel.cpp.o.d"
  "CMakeFiles/gemm.dir/ExoProvider.cpp.o"
  "CMakeFiles/gemm.dir/ExoProvider.cpp.o.d"
  "CMakeFiles/gemm.dir/Gemm.cpp.o"
  "CMakeFiles/gemm.dir/Gemm.cpp.o.d"
  "CMakeFiles/gemm.dir/Kernels.cpp.o"
  "CMakeFiles/gemm.dir/Kernels.cpp.o.d"
  "CMakeFiles/gemm.dir/MicroKernel.cpp.o"
  "CMakeFiles/gemm.dir/MicroKernel.cpp.o.d"
  "CMakeFiles/gemm.dir/Pack.cpp.o"
  "CMakeFiles/gemm.dir/Pack.cpp.o.d"
  "CMakeFiles/gemm.dir/RefGemm.cpp.o"
  "CMakeFiles/gemm.dir/RefGemm.cpp.o.d"
  "libgemm.a"
  "libgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
