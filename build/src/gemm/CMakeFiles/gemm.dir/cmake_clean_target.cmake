file(REMOVE_RECURSE
  "libgemm.a"
)
