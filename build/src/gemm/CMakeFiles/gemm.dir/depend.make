# Empty dependencies file for gemm.
# This may be replaced when dependencies are built.
