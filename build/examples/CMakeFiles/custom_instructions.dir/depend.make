# Empty dependencies file for custom_instructions.
# This may be replaced when dependencies are built.
