file(REMOVE_RECURSE
  "CMakeFiles/custom_instructions.dir/custom_instructions.cpp.o"
  "CMakeFiles/custom_instructions.dir/custom_instructions.cpp.o.d"
  "custom_instructions"
  "custom_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
