# Empty compiler generated dependencies file for datatypes.
# This may be replaced when dependencies are built.
