file(REMOVE_RECURSE
  "CMakeFiles/datatypes.dir/datatypes.cpp.o"
  "CMakeFiles/datatypes.dir/datatypes.cpp.o.d"
  "datatypes"
  "datatypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datatypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
