# Empty compiler generated dependencies file for edge_cases.
# This may be replaced when dependencies are built.
