file(REMOVE_RECURSE
  "CMakeFiles/edge_cases.dir/edge_cases.cpp.o"
  "CMakeFiles/edge_cases.dir/edge_cases.cpp.o.d"
  "edge_cases"
  "edge_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
