file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_resnet.dir/bench_fig15_resnet.cpp.o"
  "CMakeFiles/bench_fig15_resnet.dir/bench_fig15_resnet.cpp.o.d"
  "bench_fig15_resnet"
  "bench_fig15_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
