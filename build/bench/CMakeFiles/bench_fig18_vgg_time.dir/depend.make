# Empty dependencies file for bench_fig18_vgg_time.
# This may be replaced when dependencies are built.
