file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_isa.dir/bench_ablate_isa.cpp.o"
  "CMakeFiles/bench_ablate_isa.dir/bench_ablate_isa.cpp.o.d"
  "bench_ablate_isa"
  "bench_ablate_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
