# Empty compiler generated dependencies file for bench_ablate_isa.
# This may be replaced when dependencies are built.
