# Empty dependencies file for bench_ablate_edge.
# This may be replaced when dependencies are built.
