file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_edge.dir/bench_ablate_edge.cpp.o"
  "CMakeFiles/bench_ablate_edge.dir/bench_ablate_edge.cpp.o.d"
  "bench_ablate_edge"
  "bench_ablate_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
