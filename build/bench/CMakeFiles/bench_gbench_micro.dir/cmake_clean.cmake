file(REMOVE_RECURSE
  "CMakeFiles/bench_gbench_micro.dir/bench_gbench_micro.cpp.o"
  "CMakeFiles/bench_gbench_micro.dir/bench_gbench_micro.cpp.o.d"
  "bench_gbench_micro"
  "bench_gbench_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gbench_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
