# Empty dependencies file for bench_ablate_unroll.
# This may be replaced when dependencies are built.
