file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_unroll.dir/bench_ablate_unroll.cpp.o"
  "CMakeFiles/bench_ablate_unroll.dir/bench_ablate_unroll.cpp.o.d"
  "bench_ablate_unroll"
  "bench_ablate_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
