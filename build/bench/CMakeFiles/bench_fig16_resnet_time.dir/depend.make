# Empty dependencies file for bench_fig16_resnet_time.
# This may be replaced when dependencies are built.
