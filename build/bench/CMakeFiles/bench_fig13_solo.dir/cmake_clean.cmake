file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_solo.dir/bench_fig13_solo.cpp.o"
  "CMakeFiles/bench_fig13_solo.dir/bench_fig13_solo.cpp.o.d"
  "bench_fig13_solo"
  "bench_fig13_solo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_solo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
