# Empty dependencies file for bench_fig13_solo.
# This may be replaced when dependencies are built.
