file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_asm_audit.dir/bench_fig12_asm_audit.cpp.o"
  "CMakeFiles/bench_fig12_asm_audit.dir/bench_fig12_asm_audit.cpp.o.d"
  "bench_fig12_asm_audit"
  "bench_fig12_asm_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_asm_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
