# Empty compiler generated dependencies file for bench_fig12_asm_audit.
# This may be replaced when dependencies are built.
