file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_model.dir/bench_ablate_model.cpp.o"
  "CMakeFiles/bench_ablate_model.dir/bench_ablate_model.cpp.o.d"
  "bench_ablate_model"
  "bench_ablate_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
