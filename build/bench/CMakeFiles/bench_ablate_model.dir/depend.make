# Empty dependencies file for bench_ablate_model.
# This may be replaced when dependencies are built.
