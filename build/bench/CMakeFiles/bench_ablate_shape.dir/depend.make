# Empty dependencies file for bench_ablate_shape.
# This may be replaced when dependencies are built.
