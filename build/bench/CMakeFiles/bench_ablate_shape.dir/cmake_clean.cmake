file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_shape.dir/bench_ablate_shape.cpp.o"
  "CMakeFiles/bench_ablate_shape.dir/bench_ablate_shape.cpp.o.d"
  "bench_ablate_shape"
  "bench_ablate_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
