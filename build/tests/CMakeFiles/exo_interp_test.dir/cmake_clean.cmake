file(REMOVE_RECURSE
  "CMakeFiles/exo_interp_test.dir/exo/InterpTest.cpp.o"
  "CMakeFiles/exo_interp_test.dir/exo/InterpTest.cpp.o.d"
  "exo_interp_test"
  "exo_interp_test.pdb"
  "exo_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
