# Empty compiler generated dependencies file for exo_interp_test.
# This may be replaced when dependencies are built.
