file(REMOVE_RECURSE
  "CMakeFiles/exo_backend_test.dir/exo/CodegenTest.cpp.o"
  "CMakeFiles/exo_backend_test.dir/exo/CodegenTest.cpp.o.d"
  "CMakeFiles/exo_backend_test.dir/exo/DiskCacheTest.cpp.o"
  "CMakeFiles/exo_backend_test.dir/exo/DiskCacheTest.cpp.o.d"
  "CMakeFiles/exo_backend_test.dir/exo/IsaTest.cpp.o"
  "CMakeFiles/exo_backend_test.dir/exo/IsaTest.cpp.o.d"
  "CMakeFiles/exo_backend_test.dir/exo/JitTest.cpp.o"
  "CMakeFiles/exo_backend_test.dir/exo/JitTest.cpp.o.d"
  "exo_backend_test"
  "exo_backend_test.pdb"
  "exo_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
