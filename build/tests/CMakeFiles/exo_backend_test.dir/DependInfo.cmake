
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exo/CodegenTest.cpp" "tests/CMakeFiles/exo_backend_test.dir/exo/CodegenTest.cpp.o" "gcc" "tests/CMakeFiles/exo_backend_test.dir/exo/CodegenTest.cpp.o.d"
  "/root/repo/tests/exo/DiskCacheTest.cpp" "tests/CMakeFiles/exo_backend_test.dir/exo/DiskCacheTest.cpp.o" "gcc" "tests/CMakeFiles/exo_backend_test.dir/exo/DiskCacheTest.cpp.o.d"
  "/root/repo/tests/exo/IsaTest.cpp" "tests/CMakeFiles/exo_backend_test.dir/exo/IsaTest.cpp.o" "gcc" "tests/CMakeFiles/exo_backend_test.dir/exo/IsaTest.cpp.o.d"
  "/root/repo/tests/exo/JitTest.cpp" "tests/CMakeFiles/exo_backend_test.dir/exo/JitTest.cpp.o" "gcc" "tests/CMakeFiles/exo_backend_test.dir/exo/JitTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exo/CMakeFiles/exo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
