# Empty dependencies file for exo_backend_test.
# This may be replaced when dependencies are built.
