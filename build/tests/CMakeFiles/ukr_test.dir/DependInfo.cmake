
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ukr/AxpbyTest.cpp" "tests/CMakeFiles/ukr_test.dir/ukr/AxpbyTest.cpp.o" "gcc" "tests/CMakeFiles/ukr_test.dir/ukr/AxpbyTest.cpp.o.d"
  "/root/repo/tests/ukr/DatatypeTest.cpp" "tests/CMakeFiles/ukr_test.dir/ukr/DatatypeTest.cpp.o" "gcc" "tests/CMakeFiles/ukr_test.dir/ukr/DatatypeTest.cpp.o.d"
  "/root/repo/tests/ukr/EdgeFamilyTest.cpp" "tests/CMakeFiles/ukr_test.dir/ukr/EdgeFamilyTest.cpp.o" "gcc" "tests/CMakeFiles/ukr_test.dir/ukr/EdgeFamilyTest.cpp.o.d"
  "/root/repo/tests/ukr/GoldenNeonTest.cpp" "tests/CMakeFiles/ukr_test.dir/ukr/GoldenNeonTest.cpp.o" "gcc" "tests/CMakeFiles/ukr_test.dir/ukr/GoldenNeonTest.cpp.o.d"
  "/root/repo/tests/ukr/KernelNumericsTest.cpp" "tests/CMakeFiles/ukr_test.dir/ukr/KernelNumericsTest.cpp.o" "gcc" "tests/CMakeFiles/ukr_test.dir/ukr/KernelNumericsTest.cpp.o.d"
  "/root/repo/tests/ukr/KernelServiceTest.cpp" "tests/CMakeFiles/ukr_test.dir/ukr/KernelServiceTest.cpp.o" "gcc" "tests/CMakeFiles/ukr_test.dir/ukr/KernelServiceTest.cpp.o.d"
  "/root/repo/tests/ukr/StepByStepTest.cpp" "tests/CMakeFiles/ukr_test.dir/ukr/StepByStepTest.cpp.o" "gcc" "tests/CMakeFiles/ukr_test.dir/ukr/StepByStepTest.cpp.o.d"
  "/root/repo/tests/ukr/UkrSpecTest.cpp" "tests/CMakeFiles/ukr_test.dir/ukr/UkrSpecTest.cpp.o" "gcc" "tests/CMakeFiles/ukr_test.dir/ukr/UkrSpecTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ukr/CMakeFiles/ukr.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/benchutil/CMakeFiles/benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_check.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
