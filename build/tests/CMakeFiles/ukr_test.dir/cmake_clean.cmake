file(REMOVE_RECURSE
  "CMakeFiles/ukr_test.dir/ukr/AxpbyTest.cpp.o"
  "CMakeFiles/ukr_test.dir/ukr/AxpbyTest.cpp.o.d"
  "CMakeFiles/ukr_test.dir/ukr/DatatypeTest.cpp.o"
  "CMakeFiles/ukr_test.dir/ukr/DatatypeTest.cpp.o.d"
  "CMakeFiles/ukr_test.dir/ukr/EdgeFamilyTest.cpp.o"
  "CMakeFiles/ukr_test.dir/ukr/EdgeFamilyTest.cpp.o.d"
  "CMakeFiles/ukr_test.dir/ukr/GoldenNeonTest.cpp.o"
  "CMakeFiles/ukr_test.dir/ukr/GoldenNeonTest.cpp.o.d"
  "CMakeFiles/ukr_test.dir/ukr/KernelNumericsTest.cpp.o"
  "CMakeFiles/ukr_test.dir/ukr/KernelNumericsTest.cpp.o.d"
  "CMakeFiles/ukr_test.dir/ukr/KernelServiceTest.cpp.o"
  "CMakeFiles/ukr_test.dir/ukr/KernelServiceTest.cpp.o.d"
  "CMakeFiles/ukr_test.dir/ukr/StepByStepTest.cpp.o"
  "CMakeFiles/ukr_test.dir/ukr/StepByStepTest.cpp.o.d"
  "CMakeFiles/ukr_test.dir/ukr/UkrSpecTest.cpp.o"
  "CMakeFiles/ukr_test.dir/ukr/UkrSpecTest.cpp.o.d"
  "ukr_test"
  "ukr_test.pdb"
  "ukr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ukr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
