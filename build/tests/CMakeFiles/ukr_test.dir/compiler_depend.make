# Empty compiler generated dependencies file for ukr_test.
# This may be replaced when dependencies are built.
