file(REMOVE_RECURSE
  "CMakeFiles/gemm_test.dir/gemm/BenchUtilTest.cpp.o"
  "CMakeFiles/gemm_test.dir/gemm/BenchUtilTest.cpp.o.d"
  "CMakeFiles/gemm_test.dir/gemm/CacheModelTest.cpp.o"
  "CMakeFiles/gemm_test.dir/gemm/CacheModelTest.cpp.o.d"
  "CMakeFiles/gemm_test.dir/gemm/GemmTest.cpp.o"
  "CMakeFiles/gemm_test.dir/gemm/GemmTest.cpp.o.d"
  "CMakeFiles/gemm_test.dir/gemm/KernelsTest.cpp.o"
  "CMakeFiles/gemm_test.dir/gemm/KernelsTest.cpp.o.d"
  "CMakeFiles/gemm_test.dir/gemm/PackTest.cpp.o"
  "CMakeFiles/gemm_test.dir/gemm/PackTest.cpp.o.d"
  "CMakeFiles/gemm_test.dir/gemm/ProviderTest.cpp.o"
  "CMakeFiles/gemm_test.dir/gemm/ProviderTest.cpp.o.d"
  "CMakeFiles/gemm_test.dir/gemm/TransposeTest.cpp.o"
  "CMakeFiles/gemm_test.dir/gemm/TransposeTest.cpp.o.d"
  "gemm_test"
  "gemm_test.pdb"
  "gemm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
