
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gemm/BenchUtilTest.cpp" "tests/CMakeFiles/gemm_test.dir/gemm/BenchUtilTest.cpp.o" "gcc" "tests/CMakeFiles/gemm_test.dir/gemm/BenchUtilTest.cpp.o.d"
  "/root/repo/tests/gemm/CacheModelTest.cpp" "tests/CMakeFiles/gemm_test.dir/gemm/CacheModelTest.cpp.o" "gcc" "tests/CMakeFiles/gemm_test.dir/gemm/CacheModelTest.cpp.o.d"
  "/root/repo/tests/gemm/GemmTest.cpp" "tests/CMakeFiles/gemm_test.dir/gemm/GemmTest.cpp.o" "gcc" "tests/CMakeFiles/gemm_test.dir/gemm/GemmTest.cpp.o.d"
  "/root/repo/tests/gemm/KernelsTest.cpp" "tests/CMakeFiles/gemm_test.dir/gemm/KernelsTest.cpp.o" "gcc" "tests/CMakeFiles/gemm_test.dir/gemm/KernelsTest.cpp.o.d"
  "/root/repo/tests/gemm/PackTest.cpp" "tests/CMakeFiles/gemm_test.dir/gemm/PackTest.cpp.o" "gcc" "tests/CMakeFiles/gemm_test.dir/gemm/PackTest.cpp.o.d"
  "/root/repo/tests/gemm/ProviderTest.cpp" "tests/CMakeFiles/gemm_test.dir/gemm/ProviderTest.cpp.o" "gcc" "tests/CMakeFiles/gemm_test.dir/gemm/ProviderTest.cpp.o.d"
  "/root/repo/tests/gemm/TransposeTest.cpp" "tests/CMakeFiles/gemm_test.dir/gemm/TransposeTest.cpp.o" "gcc" "tests/CMakeFiles/gemm_test.dir/gemm/TransposeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gemm/CMakeFiles/gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/benchutil/CMakeFiles/benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/ukr/CMakeFiles/ukr.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_check.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
