# Empty dependencies file for exo_ir_test.
# This may be replaced when dependencies are built.
