
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exo/AffineTest.cpp" "tests/CMakeFiles/exo_ir_test.dir/exo/AffineTest.cpp.o" "gcc" "tests/CMakeFiles/exo_ir_test.dir/exo/AffineTest.cpp.o.d"
  "/root/repo/tests/exo/ExprTest.cpp" "tests/CMakeFiles/exo_ir_test.dir/exo/ExprTest.cpp.o" "gcc" "tests/CMakeFiles/exo_ir_test.dir/exo/ExprTest.cpp.o.d"
  "/root/repo/tests/exo/PatternTest.cpp" "tests/CMakeFiles/exo_ir_test.dir/exo/PatternTest.cpp.o" "gcc" "tests/CMakeFiles/exo_ir_test.dir/exo/PatternTest.cpp.o.d"
  "/root/repo/tests/exo/PrinterTest.cpp" "tests/CMakeFiles/exo_ir_test.dir/exo/PrinterTest.cpp.o" "gcc" "tests/CMakeFiles/exo_ir_test.dir/exo/PrinterTest.cpp.o.d"
  "/root/repo/tests/exo/TypeTest.cpp" "tests/CMakeFiles/exo_ir_test.dir/exo/TypeTest.cpp.o" "gcc" "tests/CMakeFiles/exo_ir_test.dir/exo/TypeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exo/CMakeFiles/exo_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/exo/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
