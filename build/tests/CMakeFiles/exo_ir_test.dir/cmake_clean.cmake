file(REMOVE_RECURSE
  "CMakeFiles/exo_ir_test.dir/exo/AffineTest.cpp.o"
  "CMakeFiles/exo_ir_test.dir/exo/AffineTest.cpp.o.d"
  "CMakeFiles/exo_ir_test.dir/exo/ExprTest.cpp.o"
  "CMakeFiles/exo_ir_test.dir/exo/ExprTest.cpp.o.d"
  "CMakeFiles/exo_ir_test.dir/exo/PatternTest.cpp.o"
  "CMakeFiles/exo_ir_test.dir/exo/PatternTest.cpp.o.d"
  "CMakeFiles/exo_ir_test.dir/exo/PrinterTest.cpp.o"
  "CMakeFiles/exo_ir_test.dir/exo/PrinterTest.cpp.o.d"
  "CMakeFiles/exo_ir_test.dir/exo/TypeTest.cpp.o"
  "CMakeFiles/exo_ir_test.dir/exo/TypeTest.cpp.o.d"
  "exo_ir_test"
  "exo_ir_test.pdb"
  "exo_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
