# Empty compiler generated dependencies file for exo_check_test.
# This may be replaced when dependencies are built.
