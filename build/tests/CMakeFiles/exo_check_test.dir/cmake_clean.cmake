file(REMOVE_RECURSE
  "CMakeFiles/exo_check_test.dir/exo/BoundsTest.cpp.o"
  "CMakeFiles/exo_check_test.dir/exo/BoundsTest.cpp.o.d"
  "exo_check_test"
  "exo_check_test.pdb"
  "exo_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
