# Empty dependencies file for exo_front_test.
# This may be replaced when dependencies are built.
