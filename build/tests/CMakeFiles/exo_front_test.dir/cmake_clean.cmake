file(REMOVE_RECURSE
  "CMakeFiles/exo_front_test.dir/exo/FuzzInputsTest.cpp.o"
  "CMakeFiles/exo_front_test.dir/exo/FuzzInputsTest.cpp.o.d"
  "CMakeFiles/exo_front_test.dir/exo/ParseTest.cpp.o"
  "CMakeFiles/exo_front_test.dir/exo/ParseTest.cpp.o.d"
  "CMakeFiles/exo_front_test.dir/exo/ScheduleScriptTest.cpp.o"
  "CMakeFiles/exo_front_test.dir/exo/ScheduleScriptTest.cpp.o.d"
  "exo_front_test"
  "exo_front_test.pdb"
  "exo_front_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_front_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
