file(REMOVE_RECURSE
  "CMakeFiles/exo_sched_test.dir/exo/ExtraXformsTest.cpp.o"
  "CMakeFiles/exo_sched_test.dir/exo/ExtraXformsTest.cpp.o.d"
  "CMakeFiles/exo_sched_test.dir/exo/PropertyTest.cpp.o"
  "CMakeFiles/exo_sched_test.dir/exo/PropertyTest.cpp.o.d"
  "CMakeFiles/exo_sched_test.dir/exo/ReplaceTest.cpp.o"
  "CMakeFiles/exo_sched_test.dir/exo/ReplaceTest.cpp.o.d"
  "CMakeFiles/exo_sched_test.dir/exo/ScheduleTest.cpp.o"
  "CMakeFiles/exo_sched_test.dir/exo/ScheduleTest.cpp.o.d"
  "CMakeFiles/exo_sched_test.dir/exo/ValidateTest.cpp.o"
  "CMakeFiles/exo_sched_test.dir/exo/ValidateTest.cpp.o.d"
  "exo_sched_test"
  "exo_sched_test.pdb"
  "exo_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
