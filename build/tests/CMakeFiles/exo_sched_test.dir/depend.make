# Empty dependencies file for exo_sched_test.
# This may be replaced when dependencies are built.
