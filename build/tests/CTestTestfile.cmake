# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/exo_ir_test[1]_include.cmake")
include("/root/repo/build/tests/exo_interp_test[1]_include.cmake")
include("/root/repo/build/tests/exo_check_test[1]_include.cmake")
include("/root/repo/build/tests/exo_sched_test[1]_include.cmake")
include("/root/repo/build/tests/exo_front_test[1]_include.cmake")
include("/root/repo/build/tests/exo_backend_test[1]_include.cmake")
include("/root/repo/build/tests/ukr_test[1]_include.cmake")
include("/root/repo/build/tests/gemm_test[1]_include.cmake")
include("/root/repo/build/tests/dnn_test[1]_include.cmake")
add_test(cli_ukr_gen_neon "/root/repo/build/src/ukr/ukr_gen" "--mr" "8" "--nr" "12" "--isa" "neon" "--emit" "all")
set_tests_properties(cli_ukr_gen_neon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;82;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_ukr_gen_f16 "/root/repo/build/src/ukr/ukr_gen" "--mr" "8" "--nr" "16" "--isa" "neon" "--type" "f16")
set_tests_properties(cli_ukr_gen_f16 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;84;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_ukr_gen_axpby "/root/repo/build/src/ukr/ukr_gen" "--mr" "8" "--nr" "12" "--isa" "avx2" "--axpby")
set_tests_properties(cli_ukr_gen_axpby PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;86;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_ukr_gen_rejects_bad_isa "/root/repo/build/src/ukr/ukr_gen" "--isa" "riscv")
set_tests_properties(cli_ukr_gen_rejects_bad_isa PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;88;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_exocc_paper_schedule "/root/repo/build/src/exo/exocc" "--isa" "neon" "--check" "--schedule" "/root/repo/examples/schedules/paper_8x12_neon.sched" "/root/repo/examples/schedules/ukernel_ref.proc")
set_tests_properties(cli_exocc_paper_schedule PROPERTIES  PASS_REGULAR_EXPRESSION "vfmaq_laneq_f32" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;91;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_exocc_rejects_parse_error "/root/repo/build/src/exo/exocc" "/root/repo/examples/schedules/paper_8x12_neon.sched")
set_tests_properties(cli_exocc_rejects_parse_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;97;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "verified against the naive" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;103;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_custom_instructions "/root/repo/build/examples/custom_instructions")
set_tests_properties(example_custom_instructions PROPERTIES  PASS_REGULAR_EXPRESSION "mylib_fma_lane4" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;106;add_test;/root/repo/tests/CMakeLists.txt;0;")
