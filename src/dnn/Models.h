//===- Models.h - DNN layer GEMM workloads --------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rectangular GEMM workloads of the paper's §IV-C: the (m, n, k)
/// problems produced by applying the IM2ROW transform to the convolution
/// layers of ResNet50 v1.5 and VGG16 at batch size 1 — the paper's Tables I
/// and II, including the layer-number multiplicities (layers that share a
/// shape are listed once but run as often as they occur in the model, which
/// is what the aggregated-time figures 16/18 sum over).
///
//===----------------------------------------------------------------------===//

#ifndef DNN_MODELS_H
#define DNN_MODELS_H

#include "gemm/Engine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dnn {

/// One unique GEMM shape of a model.
struct LayerGemm {
  int Id = 0;          ///< Layer id. in the paper's table.
  std::string Layers;  ///< Layer numbers sharing the shape ("009/021/031").
  int Count = 1;       ///< Multiplicity in one inference pass.
  int64_t M = 0, N = 0, K = 0;

  double flops() const { return 2.0 * M * N * K; }
};

/// Table I: ResNet50 v1.5, batch 1 (20 unique shapes, 53 layer instances).
const std::vector<LayerGemm> &resnet50Layers();

/// Table II: VGG16, batch 1 (9 unique shapes, 13 layer instances).
const std::vector<LayerGemm> &vgg16Layers();

/// Derives an IM2ROW GEMM shape from convolution parameters (used by the
/// conv-lowering example and tests that re-derive the tables):
/// m = out_h*out_w, n = out_channels, k = kh*kw*in_channels.
LayerGemm im2rowGemm(int Id, int64_t InC, int64_t OutC, int64_t InH,
                     int64_t InW, int64_t Kh, int64_t Kw, int64_t Stride,
                     int64_t Pad);

/// A whole model's worth of layer GEMMs materialized as ONE
/// Engine::sgemmBatched call: every layer instance (table multiplicity
/// expanded) becomes a GemmBatchItem over storage owned here. Instances
/// that share a table row share their A and B operands — the memory shape
/// a stride-0 strided batch has — while each instance owns a distinct C,
/// as the batched API requires.
struct ModelBatch {
  std::vector<gemm::GemmBatchItem> Items; ///< one per layer instance
  double Flops = 0;                       ///< 2*m*n*k summed over Items
  /// Backing buffers the Items point into; moving the ModelBatch keeps
  /// the pointers valid (vector storage does not relocate on move).
  std::vector<std::vector<float>> Storage;

  ModelBatch() = default;
  ModelBatch(ModelBatch &&) = default;
  ModelBatch &operator=(ModelBatch &&) = default;
  ModelBatch(const ModelBatch &) = delete; ///< Items would alias Storage
  ModelBatch &operator=(const ModelBatch &) = delete;
};

/// Builds the batch for a layer table, filling operands deterministically
/// from \p Seed so two builds are bitwise-identical inputs (alpha = 1,
/// beta = 0, column-major with Ld = rows).
ModelBatch buildModelBatch(const std::vector<LayerGemm> &Layers,
                           uint32_t Seed);

/// Runs the whole model through one batched engine call.
inline exo::Error runModelBatch(gemm::Engine &Eng, ModelBatch &MB) {
  return Eng.sgemmBatched(MB.Items.data(),
                          static_cast<int64_t>(MB.Items.size()));
}

/// Runs the same items one Engine::sgemm at a time — the sequential
/// baseline the batched path is measured (and differentially tested)
/// against.
exo::Error runModelSequential(gemm::Engine &Eng, ModelBatch &MB);

//===----------------------------------------------------------------------===//
// Quantized (int8) inference scenario
//===----------------------------------------------------------------------===//

/// Per-layer outcome of runModelQuantized.
struct QuantLayerResult {
  int Id = 0;
  int64_t M = 0, N = 0, K = 0;
  /// Relative Frobenius error of the dequantized i8 result against the
  /// engine's own f32 result for the same (pre-quantization) operands —
  /// i.e. the quantization noise, since the i32 accumulation is exact.
  double RelErr = 0;
};

/// Whole-model outcome: every layer ran end-to-end through the typed
/// engine door.
struct QuantModelResult {
  std::vector<QuantLayerResult> Layers;
  double MaxRelErr = 0;
  double Ops = 0; ///< 2*m*n*k summed over layer instances (integer MACs)
};

/// The post-training-quantization serving scenario over a layer table:
/// each layer's f32 operands are quantized to int8 with symmetric
/// per-tensor scales (s = maxabs/127), multiplied through
/// Engine::gemm(DType::I8I32) — i32 accumulate, exact — and dequantized
/// by s_A * s_B back to f32, which is compared against the same engine's
/// f32 product of the original operands. With inputs in [-1, 1) the
/// relative error is pure 7-bit quantization noise (well under 1e-2 for
/// these shapes); a blow-up here means the i8 pack/kernel path is wrong,
/// not that the model is hard to quantize.
exo::Expected<QuantModelResult>
runModelQuantized(gemm::Engine &Eng, const std::vector<LayerGemm> &Layers,
                  uint32_t Seed);

} // namespace dnn

#endif // DNN_MODELS_H
