//===- Models.h - DNN layer GEMM workloads --------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rectangular GEMM workloads of the paper's §IV-C: the (m, n, k)
/// problems produced by applying the IM2ROW transform to the convolution
/// layers of ResNet50 v1.5 and VGG16 at batch size 1 — the paper's Tables I
/// and II, including the layer-number multiplicities (layers that share a
/// shape are listed once but run as often as they occur in the model, which
/// is what the aggregated-time figures 16/18 sum over).
///
//===----------------------------------------------------------------------===//

#ifndef DNN_MODELS_H
#define DNN_MODELS_H

#include <cstdint>
#include <string>
#include <vector>

namespace dnn {

/// One unique GEMM shape of a model.
struct LayerGemm {
  int Id = 0;          ///< Layer id. in the paper's table.
  std::string Layers;  ///< Layer numbers sharing the shape ("009/021/031").
  int Count = 1;       ///< Multiplicity in one inference pass.
  int64_t M = 0, N = 0, K = 0;

  double flops() const { return 2.0 * M * N * K; }
};

/// Table I: ResNet50 v1.5, batch 1 (20 unique shapes, 53 layer instances).
const std::vector<LayerGemm> &resnet50Layers();

/// Table II: VGG16, batch 1 (9 unique shapes, 13 layer instances).
const std::vector<LayerGemm> &vgg16Layers();

/// Derives an IM2ROW GEMM shape from convolution parameters (used by the
/// conv-lowering example and tests that re-derive the tables):
/// m = out_h*out_w, n = out_channels, k = kh*kw*in_channels.
LayerGemm im2rowGemm(int Id, int64_t InC, int64_t OutC, int64_t InH,
                     int64_t InW, int64_t Kh, int64_t Kw, int64_t Stride,
                     int64_t Pad);

} // namespace dnn

#endif // DNN_MODELS_H
