//===- Conv.cpp -----------------------------------------------------------===//

#include "dnn/Conv.h"

#include "gemm/Gemm.h"

#include <vector>

using namespace dnn;

void dnn::im2row(const ConvParams &P, const float *In, float *A) {
  const int64_t M = P.gemmM();
  const int64_t OutW = P.outW();
  // A is column-major M x K: element (row, col) at A[row + col*M] where
  // col = (kh*Kw + kw)*InC + c.
  for (int64_t Kh = 0; Kh < P.Kh; ++Kh) {
    for (int64_t Kw = 0; Kw < P.Kw; ++Kw) {
      for (int64_t C = 0; C < P.InC; ++C) {
        int64_t Col = (Kh * P.Kw + Kw) * P.InC + C;
        float *ACol = A + Col * M;
        for (int64_t Row = 0; Row < M; ++Row) {
          int64_t Oh = Row / OutW, Ow = Row % OutW;
          int64_t Ih = Oh * P.Stride - P.Pad + Kh;
          int64_t Iw = Ow * P.Stride - P.Pad + Kw;
          bool Inside = Ih >= 0 && Ih < P.InH && Iw >= 0 && Iw < P.InW;
          ACol[Row] =
              Inside ? In[(Ih * P.InW + Iw) * P.InC + C] : 0.0f;
        }
      }
    }
  }
}

void dnn::weightsToMatrix(const ConvParams &P, const float *W, float *B) {
  const int64_t K = P.gemmK();
  // W is (kh, kw, ic, oc); B column-major K x OutC.
  for (int64_t Kh = 0; Kh < P.Kh; ++Kh)
    for (int64_t Kw = 0; Kw < P.Kw; ++Kw)
      for (int64_t C = 0; C < P.InC; ++C) {
        int64_t Row = (Kh * P.Kw + Kw) * P.InC + C;
        const float *WSrc = W + ((Kh * P.Kw + Kw) * P.InC + C) * P.OutC;
        for (int64_t Oc = 0; Oc < P.OutC; ++Oc)
          B[Row + Oc * K] = WSrc[Oc];
      }
}

void dnn::convDirect(const ConvParams &P, const float *In, const float *W,
                     float *Out) {
  const int64_t OutH = P.outH(), OutW = P.outW();
  for (int64_t Oh = 0; Oh < OutH; ++Oh) {
    for (int64_t Ow = 0; Ow < OutW; ++Ow) {
      for (int64_t Oc = 0; Oc < P.OutC; ++Oc) {
        double Acc = 0;
        for (int64_t Kh = 0; Kh < P.Kh; ++Kh) {
          for (int64_t Kw = 0; Kw < P.Kw; ++Kw) {
            int64_t Ih = Oh * P.Stride - P.Pad + Kh;
            int64_t Iw = Ow * P.Stride - P.Pad + Kw;
            if (Ih < 0 || Ih >= P.InH || Iw < 0 || Iw >= P.InW)
              continue;
            for (int64_t C = 0; C < P.InC; ++C)
              Acc += static_cast<double>(
                         In[(Ih * P.InW + Iw) * P.InC + C]) *
                     W[((Kh * P.Kw + Kw) * P.InC + C) * P.OutC + Oc];
          }
        }
        Out[(Oh * OutW + Ow) * P.OutC + Oc] = static_cast<float>(Acc);
      }
    }
  }
}

namespace {

/// Shared IM2ROW lowering around a GEMM entry point: \p Gemm computes
/// C = A * B (column-major, beta 0) for the layer's (M, N, K).
template <typename GemmFn>
exo::Error convViaGemmImpl(const ConvParams &P, const float *In,
                           const float *W, float *Out, GemmFn &&Gemm) {
  const int64_t M = P.gemmM(), N = P.gemmN(), K = P.gemmK();
  std::vector<float> A(M * K), B(K * N), C(M * N, 0.0f);
  im2row(P, In, A.data());
  weightsToMatrix(P, W, B.data());

  if (exo::Error Err = Gemm(M, N, K, A.data(), B.data(), C.data()))
    return Err;

  // The GEMM result is column-major (pixel, oc); outputs are HWC.
  for (int64_t Row = 0; Row < M; ++Row)
    for (int64_t Oc = 0; Oc < N; ++Oc)
      Out[Row * N + Oc] = C[Row + Oc * M];
  return exo::Error::success();
}

} // namespace

exo::Error dnn::convViaGemm(const ConvParams &P, gemm::Engine &Engine,
                            const float *In, const float *W, float *Out) {
  return convViaGemmImpl(
      P, In, W, Out,
      [&](int64_t M, int64_t N, int64_t K, const float *A, const float *B,
          float *C) {
        return Engine.sgemm(M, N, K, 1.0f, A, M, B, K, 0.0f, C, M);
      });
}

exo::Error dnn::convViaGemm(const ConvParams &P,
                            gemm::KernelProvider &Provider, const float *In,
                            const float *W, float *Out) {
  gemm::GemmPlan Plan = gemm::GemmPlan::standard(Provider);
  return convViaGemmImpl(
      P, In, W, Out,
      [&](int64_t M, int64_t N, int64_t K, const float *A, const float *B,
          float *C) {
        return gemm::blisGemm(Plan, Provider, M, N, K, 1.0f, A, M, B, K,
                              0.0f, C, M);
      });
}
