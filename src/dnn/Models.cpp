//===- Models.cpp ---------------------------------------------------------===//

#include "dnn/Models.h"

using namespace dnn;

const std::vector<LayerGemm> &dnn::resnet50Layers() {
  // Paper Table I. Count = number of layer ids sharing the shape.
  static const std::vector<LayerGemm> Layers = {
      {1, "001", 1, 12544, 64, 147},
      {2, "006", 1, 3136, 64, 64},
      {3, "009/021/031", 3, 3136, 64, 576},
      {4, "012/014/024/034", 4, 3136, 256, 64},
      {5, "018/028", 2, 3136, 64, 256},
      {6, "038", 1, 3136, 128, 256},
      {7, "041/053/063/073", 4, 784, 128, 1152},
      {8, "044/056/066/076", 4, 784, 512, 128},
      {9, "046", 1, 784, 512, 256},
      {10, "050/060/070", 3, 784, 128, 512},
      {11, "080", 1, 784, 256, 512},
      {12, "083/095/105/115/125/135", 6, 196, 256, 2304},
      {13, "086/098/108/118/128/138", 6, 196, 1024, 256},
      {14, "088", 1, 196, 1024, 512},
      {15, "092/102/112/122/132", 5, 196, 256, 1024},
      {16, "142", 1, 196, 512, 1024},
      {17, "145/157/167", 3, 49, 512, 4608},
      {18, "148/160/170", 3, 49, 2048, 512},
      {19, "150", 1, 49, 2048, 1024},
      {20, "154/164", 2, 49, 512, 2048},
  };
  return Layers;
}

const std::vector<LayerGemm> &dnn::vgg16Layers() {
  // Paper Table II.
  static const std::vector<LayerGemm> Layers = {
      {1, "01", 1, 50176, 64, 27},
      {2, "03", 1, 50176, 64, 576},
      {3, "06", 1, 12544, 128, 576},
      {4, "08", 1, 12544, 128, 1152},
      {5, "11", 1, 3136, 256, 1152},
      {6, "13/15", 2, 3136, 256, 2304},
      {7, "18", 1, 784, 256, 2304},
      {8, "20/22", 2, 784, 512, 4608},
      {9, "25/27/29", 3, 196, 512, 4608},
  };
  return Layers;
}

namespace {
/// Deterministic fill in [-1, 1): same seed, same bits, every build.
void fillLcg(std::vector<float> &V, uint32_t &State) {
  for (float &X : V) {
    State = State * 1664525u + 1013904223u;
    X = static_cast<float>(State >> 8) * (2.0f / 16777216.0f) - 1.0f;
  }
}
} // namespace

ModelBatch dnn::buildModelBatch(const std::vector<LayerGemm> &Layers,
                                uint32_t Seed) {
  ModelBatch MB;
  uint32_t State = Seed * 2654435761u + 1u;
  for (const LayerGemm &L : Layers) {
    // One A and one B per table row, shared by its Count instances.
    MB.Storage.emplace_back(static_cast<size_t>(L.M * L.K));
    fillLcg(MB.Storage.back(), State);
    const float *A = MB.Storage.back().data();
    MB.Storage.emplace_back(static_cast<size_t>(L.K * L.N));
    fillLcg(MB.Storage.back(), State);
    const float *B = MB.Storage.back().data();
    for (int Inst = 0; Inst != L.Count; ++Inst) {
      MB.Storage.emplace_back(static_cast<size_t>(L.M * L.N), 0.0f);
      gemm::GemmBatchItem It;
      It.M = L.M;
      It.N = L.N;
      It.K = L.K;
      It.A = A;
      It.Lda = L.M;
      It.B = B;
      It.Ldb = L.K;
      It.C = MB.Storage.back().data();
      It.Ldc = L.M;
      MB.Items.push_back(It);
      MB.Flops += L.flops();
    }
  }
  return MB;
}

exo::Error dnn::runModelSequential(gemm::Engine &Eng, ModelBatch &MB) {
  for (gemm::GemmBatchItem &It : MB.Items)
    if (exo::Error E =
            Eng.sgemm(It.TA, It.TB, It.M, It.N, It.K, It.Alpha, It.A, It.Lda,
                      It.B, It.Ldb, It.Beta, It.C, It.Ldc))
      return E;
  return exo::Error::success();
}

LayerGemm dnn::im2rowGemm(int Id, int64_t InC, int64_t OutC, int64_t InH,
                          int64_t InW, int64_t Kh, int64_t Kw, int64_t Stride,
                          int64_t Pad) {
  LayerGemm L;
  L.Id = Id;
  int64_t OutH = (InH + 2 * Pad - Kh) / Stride + 1;
  int64_t OutW = (InW + 2 * Pad - Kw) / Stride + 1;
  L.M = OutH * OutW;
  L.N = OutC;
  L.K = Kh * Kw * InC;
  return L;
}
