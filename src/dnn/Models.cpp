//===- Models.cpp ---------------------------------------------------------===//

#include "dnn/Models.h"

#include <algorithm>
#include <cmath>

using namespace dnn;

const std::vector<LayerGemm> &dnn::resnet50Layers() {
  // Paper Table I. Count = number of layer ids sharing the shape.
  static const std::vector<LayerGemm> Layers = {
      {1, "001", 1, 12544, 64, 147},
      {2, "006", 1, 3136, 64, 64},
      {3, "009/021/031", 3, 3136, 64, 576},
      {4, "012/014/024/034", 4, 3136, 256, 64},
      {5, "018/028", 2, 3136, 64, 256},
      {6, "038", 1, 3136, 128, 256},
      {7, "041/053/063/073", 4, 784, 128, 1152},
      {8, "044/056/066/076", 4, 784, 512, 128},
      {9, "046", 1, 784, 512, 256},
      {10, "050/060/070", 3, 784, 128, 512},
      {11, "080", 1, 784, 256, 512},
      {12, "083/095/105/115/125/135", 6, 196, 256, 2304},
      {13, "086/098/108/118/128/138", 6, 196, 1024, 256},
      {14, "088", 1, 196, 1024, 512},
      {15, "092/102/112/122/132", 5, 196, 256, 1024},
      {16, "142", 1, 196, 512, 1024},
      {17, "145/157/167", 3, 49, 512, 4608},
      {18, "148/160/170", 3, 49, 2048, 512},
      {19, "150", 1, 49, 2048, 1024},
      {20, "154/164", 2, 49, 512, 2048},
  };
  return Layers;
}

const std::vector<LayerGemm> &dnn::vgg16Layers() {
  // Paper Table II.
  static const std::vector<LayerGemm> Layers = {
      {1, "01", 1, 50176, 64, 27},
      {2, "03", 1, 50176, 64, 576},
      {3, "06", 1, 12544, 128, 576},
      {4, "08", 1, 12544, 128, 1152},
      {5, "11", 1, 3136, 256, 1152},
      {6, "13/15", 2, 3136, 256, 2304},
      {7, "18", 1, 784, 256, 2304},
      {8, "20/22", 2, 784, 512, 4608},
      {9, "25/27/29", 3, 196, 512, 4608},
  };
  return Layers;
}

namespace {
/// Deterministic fill in [-1, 1): same seed, same bits, every build.
void fillLcg(std::vector<float> &V, uint32_t &State) {
  for (float &X : V) {
    State = State * 1664525u + 1013904223u;
    X = static_cast<float>(State >> 8) * (2.0f / 16777216.0f) - 1.0f;
  }
}
} // namespace

ModelBatch dnn::buildModelBatch(const std::vector<LayerGemm> &Layers,
                                uint32_t Seed) {
  ModelBatch MB;
  uint32_t State = Seed * 2654435761u + 1u;
  for (const LayerGemm &L : Layers) {
    // One A and one B per table row, shared by its Count instances.
    MB.Storage.emplace_back(static_cast<size_t>(L.M * L.K));
    fillLcg(MB.Storage.back(), State);
    const float *A = MB.Storage.back().data();
    MB.Storage.emplace_back(static_cast<size_t>(L.K * L.N));
    fillLcg(MB.Storage.back(), State);
    const float *B = MB.Storage.back().data();
    for (int Inst = 0; Inst != L.Count; ++Inst) {
      MB.Storage.emplace_back(static_cast<size_t>(L.M * L.N), 0.0f);
      gemm::GemmBatchItem It;
      It.M = L.M;
      It.N = L.N;
      It.K = L.K;
      It.A = A;
      It.Lda = L.M;
      It.B = B;
      It.Ldb = L.K;
      It.C = MB.Storage.back().data();
      It.Ldc = L.M;
      MB.Items.push_back(It);
      MB.Flops += L.flops();
    }
  }
  return MB;
}

exo::Error dnn::runModelSequential(gemm::Engine &Eng, ModelBatch &MB) {
  for (gemm::GemmBatchItem &It : MB.Items)
    if (exo::Error E =
            Eng.sgemm(It.TA, It.TB, It.M, It.N, It.K, It.Alpha, It.A, It.Lda,
                      It.B, It.Ldb, It.Beta, It.C, It.Ldc))
      return E;
  return exo::Error::success();
}

exo::Expected<QuantModelResult>
dnn::runModelQuantized(gemm::Engine &Eng,
                       const std::vector<LayerGemm> &Layers, uint32_t Seed) {
  QuantModelResult R;
  uint32_t State = Seed * 2654435761u + 1u;
  for (const LayerGemm &L : Layers) {
    std::vector<float> Af(static_cast<size_t>(L.M * L.K));
    std::vector<float> Bf(static_cast<size_t>(L.K * L.N));
    fillLcg(Af, State);
    fillLcg(Bf, State);

    // Symmetric per-tensor scales: s = maxabs / 127, so every quantized
    // value lands in [-127, 127] and the i32 accumulator cannot saturate
    // for any K in these tables (127*127*K << 2^31).
    auto quantize = [](const std::vector<float> &V, std::vector<int8_t> &Q) {
      float Max = 0.0f;
      for (float X : V)
        Max = std::max(Max, std::fabs(X));
      const float S = Max > 0.0f ? Max / 127.0f : 1.0f;
      Q.resize(V.size());
      for (size_t I = 0; I != V.size(); ++I) {
        long R = std::lround(V[I] / S);
        Q[I] = static_cast<int8_t>(std::min(127l, std::max(-127l, R)));
      }
      return S;
    };
    std::vector<int8_t> Aq, Bq;
    const float SA = quantize(Af, Aq);
    const float SB = quantize(Bf, Bq);

    std::vector<int32_t> Ci(static_cast<size_t>(L.M * L.N), 0);
    if (exo::Error E = Eng.gemm(gemm::DType::I8I32, gemm::Trans::None,
                                gemm::Trans::None, L.M, L.N, L.K, 1.0,
                                Aq.data(), L.M, Bq.data(), L.K, 0.0,
                                Ci.data(), L.M))
      return E;

    std::vector<float> Cf(static_cast<size_t>(L.M * L.N), 0.0f);
    if (exo::Error E = Eng.sgemm(L.M, L.N, L.K, 1.0f, Af.data(), L.M,
                                 Bf.data(), L.K, 0.0f, Cf.data(), L.M))
      return E;

    // Relative Frobenius error of the dequantized result.
    const double Deq = static_cast<double>(SA) * static_cast<double>(SB);
    double Num = 0, Den = 0;
    for (size_t I = 0; I != Cf.size(); ++I) {
      const double D = Deq * Ci[I] - Cf[I];
      Num += D * D;
      Den += static_cast<double>(Cf[I]) * Cf[I];
    }
    QuantLayerResult QL;
    QL.Id = L.Id;
    QL.M = L.M;
    QL.N = L.N;
    QL.K = L.K;
    QL.RelErr = Den > 0 ? std::sqrt(Num / Den) : std::sqrt(Num);
    R.Layers.push_back(QL);
    R.MaxRelErr = std::max(R.MaxRelErr, QL.RelErr);
    R.Ops += L.flops() * L.Count;
  }
  return R;
}

LayerGemm dnn::im2rowGemm(int Id, int64_t InC, int64_t OutC, int64_t InH,
                          int64_t InW, int64_t Kh, int64_t Kw, int64_t Stride,
                          int64_t Pad) {
  LayerGemm L;
  L.Id = Id;
  int64_t OutH = (InH + 2 * Pad - Kh) / Stride + 1;
  int64_t OutW = (InW + 2 * Pad - Kw) / Stride + 1;
  L.M = OutH * OutW;
  L.N = OutC;
  L.K = Kh * Kw * InC;
  return L;
}
