//===- Conv.h - Convolution via the IM2ROW transform -----------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lowering behind the paper's §IV-C workloads [Chellapilla et al.]:
/// a convolution becomes a GEMM by materializing each output pixel's
/// receptive field as one row of an (oh*ow) x (kh*kw*ic) matrix. This file
/// implements the transform, the resulting GEMM-backed convolution, and a
/// direct convolution used as its correctness oracle.
///
/// Layouts: activations are HWC (height, width, channel), weights are
/// (kh, kw, ic, oc), outputs HWC. The im2row matrix is stored column-major
/// (matching gemm::blisGemm's operand convention) with m = oh*ow rows.
///
//===----------------------------------------------------------------------===//

#ifndef DNN_CONV_H
#define DNN_CONV_H

#include "dnn/Models.h"
#include "exo/support/Error.h"
#include "gemm/Engine.h"
#include "gemm/MicroKernel.h"

#include <cstdint>

namespace dnn {

struct ConvParams {
  int64_t InC = 0, OutC = 0;
  int64_t InH = 0, InW = 0;
  int64_t Kh = 1, Kw = 1;
  int64_t Stride = 1, Pad = 0;

  int64_t outH() const { return (InH + 2 * Pad - Kh) / Stride + 1; }
  int64_t outW() const { return (InW + 2 * Pad - Kw) / Stride + 1; }
  /// GEMM dimensions after IM2ROW.
  int64_t gemmM() const { return outH() * outW(); }
  int64_t gemmN() const { return OutC; }
  int64_t gemmK() const { return Kh * Kw * InC; }
};

/// Materializes the IM2ROW matrix of \p In (HWC) into \p A, column-major
/// gemmM() x gemmK() with leading dimension gemmM(). Out-of-image taps
/// (padding) contribute zeros.
void im2row(const ConvParams &P, const float *In, float *A);

/// Reshapes (kh, kw, ic, oc) weights into the column-major
/// gemmK() x gemmN() B matrix (leading dimension gemmK()).
void weightsToMatrix(const ConvParams &P, const float *W, float *B);

/// Reference convolution: Out (HWC, oh x ow x oc) = conv(In, W). Direct
/// seven-loop implementation.
void convDirect(const ConvParams &P, const float *In, const float *W,
                float *Out);

/// Convolution through IM2ROW + the Engine front door: the layer's GEMM
/// shape is planned once and every later call with the same shape (the
/// steady state of an inference loop) reuses the cached plan. Out is HWC
/// like convDirect.
exo::Error convViaGemm(const ConvParams &P, gemm::Engine &Engine,
                       const float *In, const float *W, float *Out);

/// Convolution through IM2ROW + the BLIS-like GEMM with the given
/// micro-kernel provider. Out is HWC like convDirect.
///
/// Deprecated: prefer the Engine overload above, which plans the layer
/// shape once instead of re-deriving blocking per call.
exo::Error convViaGemm(const ConvParams &P, gemm::KernelProvider &Provider,
                       const float *In, const float *W, float *Out);

} // namespace dnn

#endif // DNN_CONV_H
