//===- ExoProvider.h - Generated-kernel provider --------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "EXO" series: the full tile runs a generated MR x NR kernel, and
/// every edge shape gets its own specialized generated kernel (paper §III-B
/// — "all we need to do is change the values for MR and NR"), produced on
/// demand by the ukr kernel cache. The ISA per shape is chosen as the widest
/// host vector width dividing the tile's MR, falling back to a scalar
/// kernel (the paper's 1xNR cases).
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_EXOPROVIDER_H
#define GEMM_EXOPROVIDER_H

#include "gemm/MicroKernel.h"
#include "ukr/KernelRegistry.h"
#include "ukr/KernelService.h"

#include <map>
#include <mutex>

namespace gemm {

class ExoProvider final : public KernelProvider {
public:
  /// Full-tile shape MR x NR. \p Isa picks the full-tile instruction
  /// library (default: widest host library dividing MR).
  ExoProvider(int64_t MR, int64_t NR, const exo::IsaLib *Isa = nullptr,
              bool UnrollCompute = false);

  MicroKernel main() override;
  std::optional<MicroKernel> edge(int64_t MrEff, int64_t NrEff) override;
  const char *name() const override { return "exo"; }

  /// Builds (or fetches) the kernel for an arbitrary shape; exposed for the
  /// solo-mode benches.
  std::optional<MicroKernel> shape(int64_t Mr, int64_t Nr);

  /// Ablation knob: with edge specialization off, edge() reports nothing
  /// and the macro-kernel falls back to the padded scratch tile, exactly
  /// like the monolithic baselines.
  void setSpecializeEdges(bool On) { SpecializeEdges = On; }

  /// Async mode: kernels are requested through KernelService::global()'s
  /// non-blocking tryGet(), so a first call over a cold shape never stalls
  /// on the compiler — it runs the portable reference micro-kernel while
  /// the specialized one compiles in the background, and picks the
  /// specialized one up on a later call. Serving-path mode: first-request
  /// latency stays flat at the cost of slower warm-up iterations.
  void setAsync(bool On) { Async = On; }

  /// Picks the micro-kernel shape for an (m, n) problem — the paper's
  /// "matching the size of the micro-kernel to the problem" (§IV-B uses
  /// 8x4 / 8x8 for different square sizes). The heuristic scores each
  /// candidate by estimated FMA throughput (flops per operand load) of the
  /// full tile, weighted by how much of the m x n area full tiles cover and
  /// discounting edge regions by their smaller tiles' throughput.
  ///
  /// With \p Isa set, candidates are restricted to that library's vector
  /// width — used by the figure benches to keep every series at the same
  /// width, as all of the paper's series were 128-bit Neon.
  static std::pair<int64_t, int64_t>
  pickShape(int64_t M, int64_t N, const exo::IsaLib *Isa = nullptr);

private:
  int64_t MR, NR;
  const exo::IsaLib *Isa;
  bool UnrollCompute;
  bool SpecializeEdges = true;
  bool Async = false;
  /// Per-provider memo of resolved shapes: the macro-kernel asks for the
  /// same edge kernel once per tile, and the global registry lookup (name
  /// formatting + mutex) would otherwise dominate small tiles. Guarded by
  /// Mu: one provider may serve concurrent GEMM calls (the threaded
  /// macro-kernel pre-resolves on the calling thread, but callers also
  /// share providers across their own threads). KernelService and
  /// KernelCache are internally locked; this memo was the remaining race.
  std::mutex Mu;
  std::map<std::pair<int64_t, int64_t>, std::optional<MicroKernel>>
      ShapeCache;
};

} // namespace gemm

#endif // GEMM_EXOPROVIDER_H
