//===- Planner.h - Shape-aware GEMM plan selection ------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The planning half of the Engine's plan-once/execute-many split: given an
/// (m, n, k) problem, choose the micro-kernel tile the paper's §IV-B
/// "matching the size of the micro-kernel to the problem" result calls for.
/// Selection runs in two stages:
///
///   1. Measured prior (optional): a committed BENCH_*.json baseline whose
///      rows carry `mr`/`nr` counters is consulted for an exact (m, n, k)
///      match; the best-measured tile wins outright. Pointed at by
///      EngineConfig::PriorPath or the EXO_GEMM_PLAN_PRIOR knob.
///   2. Analytical score: every candidate tile the host can vectorize is
///      scored by estimated FMA throughput (flops per packed-panel load)
///      weighted by full-tile area coverage, with edge regions discounted,
///      register pressure enforced, and — when k is known — a small
///      penalty per extra L2 depth pass implied by the cache model's kc.
///
/// The candidate list, register-pressure rule, and ISA-per-shape choice
/// (ukr::shapeConfig) are shared with ExoProvider and `ukr_cachectl warm`,
/// so the planner, the provider's kernel memo, and the fuzzer agree on
/// which kernel a shape maps to.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_PLANNER_H
#define GEMM_PLANNER_H

#include "ukr/KernelRegistry.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gemm {

/// A planner decision: the full-tile shape plus where it came from.
struct PlanChoice {
  int64_t MR = 8, NR = 12;
  /// "model" (analytical score), "prior" (measured baseline row), or
  /// "forced" (caller pinned the tile).
  const char *Source = "model";
};

/// Stage-2 selection only: the analytical tile score over the candidate
/// list. \p K == 0 skips the depth-pass penalty (the historical
/// ExoProvider::pickShape behavior, which delegates here); \p ForceIsa
/// restricts candidates to that library's vector width.
std::pair<int64_t, int64_t>
pickTileForProblem(int64_t M, int64_t N, int64_t K = 0,
                   const exo::IsaLib *ForceIsa = nullptr);

/// Full selection: measured prior (when \p PriorPath or EXO_GEMM_PLAN_PRIOR
/// names a readable baseline) with the analytical score as fallback.
PlanChoice choosePlan(int64_t M, int64_t N, int64_t K,
                      const exo::IsaLib *ForceIsa = nullptr,
                      const std::string &PriorPath = "");

/// Every kernel config a plan for (m, n, k) can dispatch: the chosen full
/// tile plus the specialized edge shapes the five-loop driver will request
/// for this problem's partial strips and short rows. What plan warm-up
/// (Engine::warm, `ukr_cachectl warm --shape/--model`) precompiles.
std::vector<ukr::UkrConfig> planKernelFamily(int64_t M, int64_t N, int64_t K);

/// Best-measured tile for an exact (m, n, k) row of the baseline at
/// \p Path: rows must carry `mr`/`nr` counters and a "higher"-is-better
/// metric (the bench_dispatch emission). Returns false when the file is
/// unreadable or holds no matching row. Exposed for tests.
bool lookupPlanPrior(const std::string &Path, int64_t M, int64_t N,
                     int64_t K, int64_t &MrOut, int64_t &NrOut);

/// Working-set size below which a batch item counts as "small" for the
/// batched entry points' strategy choice: the host L2 capacity from the
/// cache model (an item whose A + B + C footprint fits in one core's
/// private L2 gains nothing from splitting loop 3 across cores, and
/// everything from running whole on one core while its siblings do the
/// same). Overridable via EXO_GEMM_BATCH_CROSSOVER (bytes; read per call
/// so tests can flip it).
int64_t batchCrossoverBytes();

/// Strategy choice for one shape group of a batch: true selects cross-item
/// scheduling (one whole item per pool worker), false the intra-item team
/// split Engine::sgemm uses. Cross-item requires real parallelism and more
/// than one item to spread; beyond that it is a pure working-set test
/// against batchCrossoverBytes().
bool batchPrefersCrossItem(int64_t M, int64_t N, int64_t K, int64_t Threads,
                           int64_t Items);

} // namespace gemm

#endif // GEMM_PLANNER_H
