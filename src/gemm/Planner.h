//===- Planner.h - Shape-aware GEMM plan selection ------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The planning half of the Engine's plan-once/execute-many split: given an
/// (m, n, k) problem, choose the micro-kernel tile the paper's §IV-B
/// "matching the size of the micro-kernel to the problem" result calls for.
/// Selection runs in three stages:
///
///   1. Tuned prior (optional): the persistent autotuner database
///      (PriorDb.h) is consulted for a machine-matching record of this
///      shape (exact, else shape class). A record wins only when its tile
///      passes the same ISA/register screen as every other stage AND its
///      stored margin over the measured model baseline is positive — the
///      never-lose gate: a tuned prior can never beat the analytical
///      choice on paper but lose on its own shape.
///   2. Measured BENCH prior (optional): a committed BENCH_*.json baseline
///      whose rows carry `mr`/`nr` counters is consulted for an exact
///      (m, n, k) match; the best-measured admissible tile wins. Pointed
///      at by EngineConfig::PriorPath or the EXO_GEMM_PLAN_PRIOR knob.
///      Rows whose tile is not admissible under the chosen ISA are
///      rejected (warned once, counted in PlanOutcome::PriorRejected).
///   3. Analytical score: every candidate tile the host can vectorize is
///      scored by estimated FMA throughput (flops per packed-panel load)
///      weighted by full-tile area coverage, with edge regions discounted,
///      register pressure enforced, and — when k is known — a small
///      penalty per extra L2 depth pass implied by the cache model's kc.
///
/// The candidate list, register-pressure rule, and ISA-per-shape choice
/// (ukr::shapeConfig) are shared with ExoProvider and `ukr_cachectl warm`,
/// so the planner, the provider's kernel memo, the tuner, and the fuzzer
/// agree on which kernel a shape maps to.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_PLANNER_H
#define GEMM_PLANNER_H

#include "gemm/CacheModel.h"
#include "gemm/DType.h"
#include "gemm/PriorDb.h"
#include "ukr/KernelRegistry.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gemm {

class PriorDb;

/// Where a plan's tile came from. Recorded per plan in EngineStats and as
/// an obs mark ("plan.source.<name>").
enum class PlanSource : uint8_t {
  Model,    ///< analytical cache-model score
  Prior,    ///< measured BENCH_*.json baseline row
  Tuned,    ///< autotuner record from the prior database
  Forced,   ///< caller pinned the tile (EngineConfig::ForceMR/NR)
  Fixed,    ///< fixed-series provider's native tile
  Fallback, ///< Auto series degraded to the portable kernel
};

/// Display name ("model", "prior", "tuned", ...).
const char *planSourceName(PlanSource S);

/// A planner decision: the full-tile shape plus where it came from, plus
/// the tuned execution overrides a prior-database record may carry.
struct PlanChoice {
  int64_t MR = 8, NR = 12;
  /// Always planSourceName(Src); kept as a field so bench labels and tests
  /// can read it without a lookup.
  const char *Source = "model";
  PlanSource Src = PlanSource::Model;
  /// Tuned blocking override (Src == Tuned only; unset = analytical).
  std::optional<BlockSizes> Blocks;
  /// Tuned compute-unroll override (Src == Tuned only).
  bool UnrollCompute = false;

  static PlanChoice make(int64_t Mr, int64_t Nr, PlanSource S) {
    PlanChoice C;
    C.MR = Mr;
    C.NR = Nr;
    C.Src = S;
    C.Source = planSourceName(S);
    return C;
  }
};

/// Selection accounting the Engine folds into EngineStats.
struct PlanOutcome {
  /// BENCH-prior rows that matched the shape but were rejected because
  /// their tile is not admissible under the chosen ISA (satellite of the
  /// silent-skip bug: rejected rows now warn once and count here).
  uint64_t PriorRejected = 0;
  /// A tuned-database record existed for the shape but was rejected (tile
  /// inadmissible, or stored margin non-positive — the never-lose gate).
  uint64_t TunedRejected = 0;
};

/// The shared admissibility screen: \p Isa (or the widest host library
/// dividing \p Mr) must vectorize the tile within the 16-register budget
/// (C tile + one A register + one broadcast).
bool tileAdmissible(int64_t Mr, int64_t Nr,
                    const exo::IsaLib *ForceIsa = nullptr);

/// The planner's candidate full-tile shapes that pass tileAdmissible under
/// \p ForceIsa — the search space the tuner enumerates.
std::vector<std::pair<int64_t, int64_t>>
plannerTileCandidates(const exo::IsaLib *ForceIsa = nullptr);

/// Stage-3 selection only: the analytical tile score over the candidate
/// list. \p K == 0 skips the depth-pass penalty (the historical
/// ExoProvider::pickShape behavior, which delegates here); \p ForceIsa
/// restricts candidates to that library's vector width.
std::pair<int64_t, int64_t>
pickTileForProblem(int64_t M, int64_t N, int64_t K = 0,
                   const exo::IsaLib *ForceIsa = nullptr);

/// Full selection against the process-global prior database: tuned prior,
/// then BENCH prior (when \p PriorPath or EXO_GEMM_PLAN_PRIOR names a
/// readable baseline), then the analytical score.
///
/// \p Ty threads the precision dimension through selection: f16/bf16 plans
/// run the same f32 kernels over convert-packed panels, so they share the
/// f32 analytical model, but their tuned priors are dtype-keyed (a winner
/// measured under one dtype never crosses over) and the BENCH prior stage
/// — f32 measurements — is skipped. I8I32 plans use the fixed scalar-dot
/// tile and never consult priors.
PlanChoice choosePlan(int64_t M, int64_t N, int64_t K,
                      const exo::IsaLib *ForceIsa = nullptr,
                      const std::string &PriorPath = "",
                      PlanOutcome *Outcome = nullptr,
                      DType Ty = DType::F32);

/// As choosePlan, but against an explicit database handle; \p Db == nullptr
/// skips the tuned stage entirely (EngineConfig::TunedPriors == false, the
/// bench_tune "model" arm).
PlanChoice choosePlanWithDb(int64_t M, int64_t N, int64_t K,
                            const exo::IsaLib *ForceIsa, //
                            const std::string &PriorPath, PriorDb *Db,
                            PlanOutcome *Outcome = nullptr,
                            DType Ty = DType::F32);

/// The I8I32 full tile: the engine's K-grouped scalar dot has no vector
/// width to match, so every i8 plan uses this fixed shape (scratch tile
/// and panels stay small and L1-resident).
inline constexpr int64_t I8TileMR = 8, I8TileNR = 8;

/// Every kernel config a plan for (m, n, k) can dispatch: the chosen full
/// tile plus the specialized edge shapes the five-loop driver will request
/// for this problem's partial strips and short rows. What plan warm-up
/// (Engine::warm, `ukr_cachectl warm --shape/--model`) precompiles.
///
/// Non-f32 dtypes never use specialized edge kernels, so their families
/// are a single config: f16/bf16 the f32 main tile actually executed over
/// convert-packed panels, i8 the typed widening-accumulator kernel config
/// (the ukr-layer artifact for the engine's scalar-dot tile).
std::vector<ukr::UkrConfig> planKernelFamily(int64_t M, int64_t N, int64_t K,
                                             DType Ty = DType::F32);

/// Best-measured tile for an exact (m, n, k) row of the baseline at
/// \p Path: rows must carry `mr`/`nr` counters and a "higher"-is-better
/// metric (the bench_dispatch emission). Returns false when the file is
/// unreadable or holds no matching row. Exposed for tests.
bool lookupPlanPrior(const std::string &Path, int64_t M, int64_t N,
                     int64_t K, int64_t &MrOut, int64_t &NrOut);

/// As above, but screens every matching row for admissibility under
/// \p ForceIsa (or the host screen): inadmissible rows are counted in
/// \p RejectedOut instead of silently skipped, and the best *admissible*
/// row wins. Returns false when no admissible row matched.
bool lookupPlanPrior(const std::string &Path, int64_t M, int64_t N,
                     int64_t K, int64_t &MrOut, int64_t &NrOut,
                     const exo::IsaLib *ForceIsa, uint64_t *RejectedOut);

/// Working-set size below which a batch item counts as "small" for the
/// batched entry points' strategy choice: the host L2 capacity from the
/// cache model (an item whose A + B + C footprint fits in one core's
/// private L2 gains nothing from splitting loop 3 across cores, and
/// everything from running whole on one core while its siblings do the
/// same). Overridable via EXO_GEMM_BATCH_CROSSOVER (bytes; read per call
/// so tests can flip it).
int64_t batchCrossoverBytes();

/// Strategy choice for one shape group of a batch: true selects cross-item
/// scheduling (one whole item per pool worker), false the intra-item team
/// split Engine::sgemm uses. Cross-item requires real parallelism and more
/// than one item to spread; beyond that it is a pure working-set test
/// against batchCrossoverBytes().
bool batchPrefersCrossItem(int64_t M, int64_t N, int64_t K, int64_t Threads,
                           int64_t Items);

/// The governor's per-shape width model (docs/CONCURRENCY.md): how many
/// team members an (m, n, k) problem can productively use, before the
/// live-occupancy clamp. Two inputs compose:
///
///   1. Work floor: a problem below \p MinWorkFlops total flops (2mnk)
///      runs sequentially — its runtime is barrier/pack overhead, not
///      FMAs — and wider problems get at most one extra thread per
///      MinWorkFlops of work, so mid-sized shapes ramp up gradually.
///   2. Measured scaling curve (optional): when \p Curve is non-null,
///      widths whose measured marginal efficiency is poor are cut — the
///      result is the largest admissible width whose curve speedup is
///      within reach of linear (>= 50% parallel efficiency) and still
///      improving over the next narrower measured point.
///
/// The result is clamped to [1, MaxWidth]. MinWorkFlops <= 0 disables the
/// work floor (every shape may use MaxWidth; tests use this). Pure
/// function of its arguments — the env knobs are resolved by the Governor,
/// not here.
int64_t governorWidthForShape(int64_t M, int64_t N, int64_t K,
                              int64_t MinWorkFlops, int64_t MaxWidth,
                              const std::vector<GovernorCurvePoint> *Curve);

/// The same model for work already expressed as total flops — the batched
/// cross-item path, where a chunk of small items shares one team and it
/// is the chunk's aggregate work that justifies workers.
int64_t governorWidthForWork(double Flops, int64_t MinWorkFlops,
                             int64_t MaxWidth,
                             const std::vector<GovernorCurvePoint> *Curve);

} // namespace gemm

#endif // GEMM_PLANNER_H
