//===- Kernels.h - Hand-written baseline micro-kernels --------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two hand-written baselines the paper compares against, transplanted
/// from ARM to this repository's x86 test hardware (see DESIGN.md):
///
///   - handVectorKernel8x12 ("NEON"): written with GCC vector extensions the
///     way a competent developer writes an intrinsics kernel — straight
///     loops, compiler does the scheduling. No prefetch.
///   - blisStyleKernel8x12 / blisStyleKernel8x12Prefetch ("ALG+BLIS" /
///     "BLIS"): fully unrolled update with explicit register rotation like
///     BLIS's assembly kernels; the Prefetch variant adds the C-tile and
///     A/B-stream prefetching BLIS performs inside the micro-kernel.
///
/// All use 256-bit vectors (the natural width of the host, as 128-bit Neon
/// is of the paper's Carmel) and carry `target("avx2,fma")` so the library
/// itself builds without global -mavx2. Callers must check
/// `baselineKernelsUsable()` first.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_KERNELS_H
#define GEMM_KERNELS_H

#include "gemm/MicroKernel.h"

namespace gemm {

/// True when the host executes AVX2+FMA (all baseline kernels need it).
bool baselineKernelsUsable();

void handVectorKernel8x12(int64_t Kc, int64_t Ldc, const float *Ac,
                          const float *Bc, float *C);
void blisStyleKernel8x12(int64_t Kc, int64_t Ldc, const float *Ac,
                         const float *Bc, float *C);
void blisStyleKernel8x12Prefetch(int64_t Kc, int64_t Ldc, const float *Ac,
                                 const float *Bc, float *C);

/// Convenience MicroKernel descriptors.
MicroKernel handVectorKernel();
MicroKernel blisKernel();
MicroKernel blisKernelPrefetch();

} // namespace gemm

#endif // GEMM_KERNELS_H
