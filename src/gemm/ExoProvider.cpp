//===- ExoProvider.cpp ----------------------------------------------------===//

#include "gemm/ExoProvider.h"

#include "gemm/Planner.h"

#include <cstdio>

using namespace gemm;

ExoProvider::ExoProvider(int64_t MR, int64_t NR, const exo::IsaLib *Isa,
                         bool UnrollCompute)
    : MR(MR), NR(NR), Isa(Isa ? Isa : ukr::bestIsaForMr(MR)),
      UnrollCompute(UnrollCompute) {}

std::optional<MicroKernel> ExoProvider::shape(int64_t Mr, int64_t Nr) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto Memo = ShapeCache.find({Mr, Nr});
  if (Memo != ShapeCache.end())
    return Memo->second;
  // Full tiles use the configured library; edges re-pick per shape via the
  // shared selection rule (shapeConfig) so provider, planner, and fuzzer
  // agree.
  ukr::UkrConfig Cfg =
      ukr::shapeConfig(Mr, Nr, Mr == MR ? Isa : nullptr, UnrollCompute);

  if (Async) {
    // Non-blocking: run whatever the service has right now. A fallback
    // answer is deliberately NOT memoized, so a later call picks up the
    // specialized kernel once the background build lands.
    const ukr::Kernel *K = ukr::KernelService::global().tryGet(Cfg);
    if (!K || !K->Fn)
      return std::nullopt; // No fallback either: scratch-tile path.
    if (K->IsFallback)
      return MicroKernel{Mr, Nr, K->Fn, "exo fallback (compiling)",
                         /*IsFallback=*/true};
    std::optional<MicroKernel> Out =
        MicroKernel{Mr, Nr, K->Fn, "exo generated"};
    ShapeCache.emplace(std::make_pair(Mr, Nr), Out);
    return Out;
  }

  auto K = ukr::KernelCache::global().get(Cfg);
  std::optional<MicroKernel> Out;
  if (K && (*K)->Fn)
    Out = MicroKernel{Mr, Nr, (*K)->Fn, "exo generated"};
  else if (!K)
    std::fprintf(stderr, "exo provider: %s\n", K.message().c_str());
  ShapeCache.emplace(std::make_pair(Mr, Nr), Out);
  return Out;
}

MicroKernel ExoProvider::main() {
  auto K = shape(MR, NR);
  if (!K)
    return MicroKernel{MR, NR, nullptr, "exo (unavailable)"};
  return *K;
}

std::optional<MicroKernel> ExoProvider::edge(int64_t MrEff, int64_t NrEff) {
  if (!SpecializeEdges)
    return std::nullopt;
  return shape(MrEff, NrEff);
}

std::pair<int64_t, int64_t>
ExoProvider::pickShape(int64_t M, int64_t N, const exo::IsaLib *ForceIsa) {
  // The heuristic lives with the Engine planner now (Planner.h) so the
  // plan cache, this provider, and the fuzzer share one selection rule;
  // K == 0 keeps the historical area-only scoring of this entry point.
  return pickTileForProblem(M, N, /*K=*/0, ForceIsa);
}
