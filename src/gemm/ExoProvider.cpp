//===- ExoProvider.cpp ----------------------------------------------------===//

#include "gemm/ExoProvider.h"

#include <cstdio>

using namespace gemm;

ExoProvider::ExoProvider(int64_t MR, int64_t NR, const exo::IsaLib *Isa,
                         bool UnrollCompute)
    : MR(MR), NR(NR), Isa(Isa ? Isa : ukr::bestIsaForMr(MR)),
      UnrollCompute(UnrollCompute) {}

std::optional<MicroKernel> ExoProvider::shape(int64_t Mr, int64_t Nr) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto Memo = ShapeCache.find({Mr, Nr});
  if (Memo != ShapeCache.end())
    return Memo->second;
  ukr::UkrConfig Cfg;
  Cfg.MR = Mr;
  Cfg.NR = Nr;
  Cfg.UnrollCompute = UnrollCompute;
  // Full tiles use the configured library; edges re-pick per shape.
  Cfg.Isa = (Mr == MR && Isa) ? Isa : ukr::bestIsaForMr(Mr);
  if (!Cfg.Isa)
    Cfg.Style = ukr::FmaStyle::Scalar;

  if (Async) {
    // Non-blocking: run whatever the service has right now. A fallback
    // answer is deliberately NOT memoized, so a later call picks up the
    // specialized kernel once the background build lands.
    const ukr::Kernel *K = ukr::KernelService::global().tryGet(Cfg);
    if (!K || !K->Fn)
      return std::nullopt; // No fallback either: scratch-tile path.
    if (K->IsFallback)
      return MicroKernel{Mr, Nr, K->Fn, "exo fallback (compiling)"};
    std::optional<MicroKernel> Out =
        MicroKernel{Mr, Nr, K->Fn, "exo generated"};
    ShapeCache.emplace(std::make_pair(Mr, Nr), Out);
    return Out;
  }

  auto K = ukr::KernelCache::global().get(Cfg);
  std::optional<MicroKernel> Out;
  if (K && (*K)->Fn)
    Out = MicroKernel{Mr, Nr, (*K)->Fn, "exo generated"};
  else if (!K)
    std::fprintf(stderr, "exo provider: %s\n", K.message().c_str());
  ShapeCache.emplace(std::make_pair(Mr, Nr), Out);
  return Out;
}

MicroKernel ExoProvider::main() {
  auto K = shape(MR, NR);
  if (!K)
    return MicroKernel{MR, NR, nullptr, "exo (unavailable)"};
  return *K;
}

std::optional<MicroKernel> ExoProvider::edge(int64_t MrEff, int64_t NrEff) {
  if (!SpecializeEdges)
    return std::nullopt;
  return shape(MrEff, NrEff);
}

std::pair<int64_t, int64_t>
ExoProvider::pickShape(int64_t M, int64_t N, const exo::IsaLib *ForceIsa) {
  // Candidate full-tile shapes (host-vectorizable MR values).
  static const std::pair<int64_t, int64_t> Candidates[] = {
      {8, 12}, {8, 8}, {8, 6}, {8, 4},  {16, 12}, {16, 8},
      {16, 6}, {16, 4}, {4, 12}, {4, 8}, {4, 4},  {24, 4},
  };
  // Estimated flops-per-load of an a x b tile update: 2ab FMs per (a + b)
  // elements streamed from the packed panels.
  auto Eff = [](int64_t A, int64_t B) {
    if (A <= 0 || B <= 0)
      return 0.0;
    return 2.0 * static_cast<double>(A) * static_cast<double>(B) /
           static_cast<double>(A + B);
  };

  std::pair<int64_t, int64_t> Best = {8, 12};
  double BestScore = -1;
  for (auto [Mr, Nr] : Candidates) {
    const exo::IsaLib *Isa = ForceIsa ? ForceIsa : ukr::bestIsaForMr(Mr);
    if (!Isa || Mr % Isa->lanes(exo::ScalarKind::F32) != 0)
      continue;
    // Register-pressure sanity: C tile + one A register + one broadcast
    // must fit 16 vector registers at the chosen width.
    int64_t Vecs = (Mr / Isa->lanes(exo::ScalarKind::F32));
    if (Nr * Vecs + Vecs + 1 > 16)
      continue;

    int64_t MEdge = M % Mr, NEdge = N % Nr;
    double FullM = static_cast<double>(M - MEdge) / M;
    double FullN = static_cast<double>(N - NEdge) / N;
    double EdgeM = static_cast<double>(MEdge) / M;
    double EdgeN = static_cast<double>(NEdge) / N;
    // Edge regions pay dispatch/packing overhead beyond their lower
    // flops-per-load, so they are further discounted; exact divisors win
    // near-ties.
    const double EdgeDiscount = 0.6;
    double Score = Eff(Mr, Nr) * FullM * FullN +
                   EdgeDiscount * (Eff(MEdge, Nr) * EdgeM * FullN +
                                   Eff(Mr, NEdge) * FullM * EdgeN +
                                   Eff(MEdge, NEdge) * EdgeM * EdgeN);
    if (Score > BestScore) {
      BestScore = Score;
      Best = {Mr, Nr};
    }
  }
  return Best;
}
