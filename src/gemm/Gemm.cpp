//===- Gemm.cpp -----------------------------------------------------------===//

#include "gemm/Gemm.h"

#include "gemm/ThreadPool.h"
#include "obs/Obs.h"

#include <algorithm>
#include <optional>
#include <vector>

using namespace exo;
using namespace gemm;

GemmPlan GemmPlan::standard(KernelProvider &P) {
  MicroKernel K = P.main();
  GemmPlan Plan;
  Plan.Blocks =
      analyticalBlockSizes(CacheConfig::host(), K.MR, K.NR, sizeof(float));
  // The probe only picks the *preferred* mode; a provider whose edge family
  // turns out to be partial at run time degrades per-strip to the re-padded
  // scratch path inside the executor instead of failing (see executeGemm).
  Plan.PackMode = P.edge(K.MR, 1).has_value() ? EdgePack::Tight
                                              : EdgePack::ZeroPad;
  return Plan;
}

void detail::scaleByBeta(int64_t M, int64_t N, float Beta, float *C,
                         int64_t Ldc) {
  // Beta == 0 must *overwrite*, not scale: 0 * NaN == NaN, and serving
  // workloads hand in pooled, uninitialized C buffers (the classic BLAS
  // beta-zero rule).
  for (int64_t J = 0; J < N; ++J) {
    float *Col = C + J * Ldc;
    if (Beta == 0.0f)
      std::fill(Col, Col + M, 0.0f);
    else
      for (int64_t I = 0; I < M; ++I)
        Col[I] *= Beta;
  }
}

detail::GemmGeometry detail::deriveGeometry(const GemmPlan &Plan,
                                            const MicroKernel &Main,
                                            int64_t M, int64_t N, int64_t K) {
  GemmGeometry G;
  G.Main = Main;
  G.PackMode = Plan.PackMode;
  G.Mr = Main.MR;
  G.Nr = Main.NR;
  // Clamp blocks to the problem so pack buffers stay proportionate.
  auto RoundUp = [](int64_t V, int64_t Q) { return ((V + Q - 1) / Q) * Q; };
  G.Mc = std::min(std::max<int64_t>(Plan.Blocks.MC, G.Mr), RoundUp(M, G.Mr));
  G.Kc =
      std::min(std::max<int64_t>(Plan.Blocks.KC, 1), std::max<int64_t>(K, 1));
  G.Nc = std::min(std::max<int64_t>(Plan.Blocks.NC, G.Nr), RoundUp(N, G.Nr));

  // Team size and its BLIS-style 2D factorization: loop 3 (ic blocks) is
  // the primary axis; when there are fewer ic blocks than threads, the
  // remainder parallelizes loop 4 (jr strips) within each ic team. Tic is
  // the largest divisor of T fitting the ic block count, so every thread
  // lands in the grid.
  G.NIc = (M + G.Mc - 1) / G.Mc;
  const int64_t NPanMax = (std::min(G.Nc, N) + G.Nr - 1) / G.Nr;
  G.T = std::max<int64_t>(
      1, std::min(resolveGemmThreads(Plan.Threads), G.NIc * NPanMax));
  factorizeTeam(G);
  return G;
}

void detail::factorizeTeam(GemmGeometry &G) {
  G.Tic = 1;
  for (int64_t D = 1; D <= G.T; ++D)
    if (G.T % D == 0 && D <= G.NIc)
      G.Tic = D;
  G.Tjr = G.T / G.Tic;
}

detail::GemmGeometry detail::reteamGeometry(const GemmGeometry &G,
                                            int64_t Width) {
  GemmGeometry G2 = G;
  G2.T = std::max<int64_t>(1, std::min(Width, G.T));
  factorizeTeam(G2);
  return G2;
}

void detail::resolveEdgeKernels(
    KernelProvider &Provider, GemmGeometry &G, int64_t N,
    std::vector<std::optional<MicroKernel>> &Storage) {
  // Resolve every strip kernel up front, on the calling thread: the worker
  // team must never call into the provider (whose kernel cache may invoke
  // the JIT), and a fixed kernel per width keeps one GEMM call bitwise
  // invariant under the thread count. A width whose specialized kernel is
  // unavailable (partial edge family, or an async provider still
  // compiling) stays nullopt and takes the re-padded scratch path.
  Storage.assign(static_cast<size_t>(G.Nr), std::nullopt);
  G.NeedBPad = false;
  if (G.PackMode == EdgePack::Tight) {
    std::vector<bool> Probed(G.Nr, false);
    for (int64_t Jc = 0; Jc < N; Jc += G.Nc) {
      int64_t W = std::min(G.Nc, N - Jc) % G.Nr;
      if (W == 0 || Probed[W])
        continue;
      Probed[W] = true;
      std::optional<MicroKernel> E = Provider.edge(G.Mr, W);
      if (E && E->Fn)
        Storage[W] = *E;
      else
        G.NeedBPad = true;
    }
  }
  G.EdgeKernels = Storage.data();
}

void detail::GemmWorkspace::ensure(const GemmGeometry &G) {
  // Shared packed-B block (written cooperatively, panel-interleaved, read
  // by everyone after the barrier) and per-thread working memory: A pack
  // buffer, scratch tile, and — only when a Tight-mode width lacks its
  // kernel — a re-padded B panel. Every resize is a no-op when the
  // workspace already fits this geometry (the Engine's pooled hot path).
  if (G.Ty == DType::I8I32) {
    // K-grouped byte panels and i32 scratch tiles; panel depth is the
    // group count rounded up (the pack zero-fills the K remainder).
    const int64_t KG = (G.Kc + I8KGroup - 1) / I8KGroup;
    BBufI8.resize(((G.Nc + G.Nr - 1) / G.Nr) * KG * I8KGroup * G.Nr);
    ABufsI8.resize(G.T);
    ScratchesI32.resize(G.T);
    for (int64_t I = 0; I < G.T; ++I) {
      ABufsI8[I].resize(((G.Mc + G.Mr - 1) / G.Mr) * KG * I8KGroup * G.Mr);
      ScratchesI32[I].resize(G.Mr * G.Nr);
    }
    return;
  }
  // F32 — and F16/BF16, whose panels are convert-packed to f32 with the
  // identical layout (the scratch tile doubles as the rounding staging
  // area at copy-out).
  BBuf.resize(((G.Nc + G.Nr - 1) / G.Nr) * G.Kc * G.Nr);
  ABufs.resize(G.T);
  Scratches.resize(G.T);
  BPads.resize(G.T);
  for (int64_t I = 0; I < G.T; ++I) {
    ABufs[I].resize(((G.Mc + G.Mr - 1) / G.Mr) * G.Kc * G.Mr);
    Scratches[I].resize(G.Mr * G.Nr);
    BPads[I].resize(G.NeedBPad ? G.Kc * G.Nr : 0);
  }
}

namespace {

/// Per-call context handed to the raw ThreadPool callback: pointers only,
/// so dispatching a team performs no allocation.
struct TeamJob {
  const detail::GemmGeometry *G;
  const detail::GemmCall *Call;
  detail::GemmWorkspace *WS;
  TeamBarrier *Bar;
};

/// Same shape for the typed executor's call bundle.
struct TeamJobT {
  const detail::GemmGeometry *G;
  const detail::GemmCallT *Call;
  detail::GemmWorkspace *WS;
  TeamBarrier *Bar;
};

void runTeamMember(void *Ctx, int64_t Tid) {
  const TeamJob &Job = *static_cast<TeamJob *>(Ctx);
  const detail::GemmGeometry &G = *Job.G;
  const detail::GemmCall &Cl = *Job.Call;
  detail::GemmWorkspace &WS = *Job.WS;
  const int64_t Mr = G.Mr, Nr = G.Nr, Mc = G.Mc, Kc = G.Kc, Nc = G.Nc;
  const int64_t NIc = G.NIc, T = G.T, Tic = G.Tic, Tjr = G.Tjr;
  const int64_t M = Cl.M, N = Cl.N, K = Cl.K;
  const MicroKernel &Main = G.Main;

  // Grid position: ic team owns row blocks BIdx % Tic == IcTeam; within
  // a team, jr strips (and pre-scale columns) split by JrIdx.
  const int64_t IcTeam = Tid / Tjr, JrIdx = Tid % Tjr;
  float *ABuf = WS.ABufs[Tid].data();
  float *Scratch = WS.Scratches[Tid].data();
  float *BPad = WS.BPads[Tid].empty() ? nullptr : WS.BPads[Tid].data();

  for (int64_t Jc = 0; Jc < N; Jc += Nc) {            // Loop L1
    const int64_t NcEff = std::min(Nc, N - Jc);
    const int64_t NPan = (NcEff + Nr - 1) / Nr;
    for (int64_t Pc = 0; Pc < K; Pc += Kc) {          // Loop L2
      const int64_t KcEff = std::min(Kc, K - Pc);
      // Cooperative packB: panel P goes to thread P % T. Packing panel
      // by panel reproduces the monolithic layout exactly (slot stride
      // KcEff * Nr; only the last panel can be partial).
      {
        EXO_OBS_SPAN("gemm.packB");
        for (int64_t P = Tid; P < NPan; P += T) {
        const int64_t J0 = Jc + P * Nr;
        const int64_t W = std::min(Nr, NcEff - P * Nr);
        float *Dst = WS.BBuf.data() + P * KcEff * Nr;
        // Element (k, j) of the logical block; transposition swaps
        // strides.
        if (Cl.TB == Trans::None)
          packBStrided(Cl.B + Pc + J0 * Cl.Ldb, 1, Cl.Ldb, KcEff, W, Nr,
                       /*Alpha=*/1.0f, G.PackMode, Dst);
        else
          packBStrided(Cl.B + J0 + Pc * Cl.Ldb, Cl.Ldb, 1, KcEff, W, Nr,
                       /*Alpha=*/1.0f, G.PackMode, Dst);
        }
      }

      // Apply beta once per (jc) column block, before the first update.
      // Beta == 0 overwrites (see scaleByBeta). Ownership: rows by ic
      // team, columns round-robin within the team — every C element has
      // exactly one writer.
      if (Pc == 0 && Cl.Beta != 1.0f) {
        EXO_OBS_SPAN("gemm.beta");
        for (int64_t BIdx = IcTeam; BIdx < NIc; BIdx += Tic) {
          const int64_t Ic = BIdx * Mc;
          const int64_t McEff = std::min(Mc, M - Ic);
          for (int64_t J = JrIdx; J < NcEff; J += Tjr) {
            float *Col = Cl.C + Ic + (Jc + J) * Cl.Ldc;
            if (Cl.Beta == 0.0f)
              std::fill(Col, Col + McEff, 0.0f);
            else
              for (int64_t I = 0; I < McEff; ++I)
                Col[I] *= Cl.Beta;
          }
        }
      }
      if (T > 1) {
        EXO_OBS_SPAN("gemm.barrier");
        Job.Bar->arriveAndWait(); // packB + pre-scale done before update
      }

      for (int64_t BIdx = IcTeam; BIdx < NIc; BIdx += Tic) { // Loop L3
        const int64_t Ic = BIdx * Mc;
        const int64_t McEff = std::min(Mc, M - Ic);
        // A panels are always zero-padded to the full Mr: edge kernels
        // keep the full vector width along m and the driver masks the
        // copy-out instead (rows >= mr_eff contribute zeros). Each
        // thread packs into its own buffer; members of the same ic team
        // duplicate the pack, trading redundant bandwidth for zero
        // intra-team synchronization.
        {
          EXO_OBS_SPAN("gemm.packA");
          if (Cl.TA == Trans::None)
            packAStrided(Cl.A + Ic + Pc * Cl.Lda, 1, Cl.Lda, McEff, KcEff,
                         Mr, Cl.Alpha, EdgePack::ZeroPad, ABuf);
          else
            packAStrided(Cl.A + Pc + Ic * Cl.Lda, Cl.Lda, 1, McEff, KcEff,
                         Mr, Cl.Alpha, EdgePack::ZeroPad, ABuf);
        }

        EXO_OBS_SPAN("gemm.ukr");
        for (int64_t P = JrIdx; P < NPan; P += Tjr) {  // Loop L4
          const int64_t Jr = P * Nr;
          const int64_t NrEff = std::min(Nr, NcEff - Jr);
          const float *BPanel = WS.BBuf.data() + P * KcEff * Nr;
          // The edge kernel depends only on the strip width; resolved
          // once per plan (or per legacy call). A Tight-mode strip
          // without its specialized kernel re-pads the tight panel and
          // runs the monolithic kernel through the scratch tile — a
          // partial edge family degrades instead of failing.
          const MicroKernel *Strip = &Main;
          bool Padded = G.PackMode == EdgePack::ZeroPad;
          if (NrEff < Nr && G.PackMode == EdgePack::Tight) {
            if (G.EdgeKernels[NrEff]) {
              Strip = &*G.EdgeKernels[NrEff];
            } else {
              for (int64_t Kk = 0; Kk < KcEff; ++Kk) {
                float *Row = BPad + Kk * Nr;
                for (int64_t J = 0; J < NrEff; ++J)
                  Row[J] = BPanel[Kk * NrEff + J];
                std::fill(Row + NrEff, Row + Nr, 0.0f);
              }
              BPanel = BPad;
              Padded = true;
            }
          }
          for (int64_t Ir = 0; Ir < McEff; Ir += Mr) { // Loop L5
            const int64_t MrEff = std::min(Mr, McEff - Ir);
            const float *APanel = ABuf + (Ir / Mr) * KcEff * Mr;
            float *CTile = Cl.C + (Ic + Ir) + (Jc + Jr) * Cl.Ldc;

            if (MrEff == Mr && NrEff == Nr) {
              Main.Fn(KcEff, Cl.Ldc, APanel, BPanel, CTile);
              continue;
            }
            if (!Padded && MrEff == Mr) {
              // Specialized kernel at full vector width along m and the
              // exact nr_eff along n (B panels are tight).
              Strip->Fn(KcEff, Cl.Ldc, APanel, BPanel, CTile);
              continue;
            }
            // Scratch tile: the kernel (specialized when the m edge is
            // short, monolithic on the padded path) computes into a
            // zero-initialized Mr x Nr tile — the A panel's padded rows
            // are zero — and the valid window is accumulated back.
            const MicroKernel *Kern = Padded ? &Main : Strip;
            std::fill(Scratch, Scratch + Mr * Nr, 0.0f);
            Kern->Fn(KcEff, Mr, APanel, BPanel, Scratch);
            for (int64_t J = 0; J < NrEff; ++J)
              for (int64_t I = 0; I < MrEff; ++I)
                CTile[I + J * Cl.Ldc] += Scratch[J * Mr + I];
          }
        }
      }
      if (T > 1) {
        EXO_OBS_SPAN("gemm.barrier");
        Job.Bar->arriveAndWait(); // BBuf (and C columns) recycle next round
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Typed (non-f32) executor
//===----------------------------------------------------------------------===//

/// Storage decode/encode for the half-precision paths.
inline float loadHalf(DType Ty, uint16_t H) {
  return Ty == DType::BF16 ? bf16ToF32(H) : f16ToF32(H);
}
inline uint16_t storeHalf(DType Ty, float F) {
  return Ty == DType::BF16 ? f32ToBf16(F) : f32ToF16(F);
}

/// The K-grouped scalar dot micro-kernel (the portable stand-in for
/// sdot/VNNI): Scratch[j*Mr + i] += sum over (g, kk) of
/// Ac[g][i][kk] * Bc[g][j][kk], panels in the packAI8Strided layout.
/// Accumulation is two's-complement i32; the uint32_t detour keeps the
/// wraparound defined.
void i8DotTile(int64_t KGroups, int64_t Mr, int64_t Nr, const int8_t *Ac,
               const int8_t *Bc, int32_t *Scratch) {
  for (int64_t G = 0; G < KGroups; ++G) {
    const int8_t *Ag = Ac + G * Mr * I8KGroup;
    const int8_t *Bg = Bc + G * Nr * I8KGroup;
    for (int64_t J = 0; J < Nr; ++J) {
      const int8_t *Bq = Bg + J * I8KGroup;
      for (int64_t I = 0; I < Mr; ++I) {
        const int8_t *Aq = Ag + I * I8KGroup;
        int32_t Dot = 0;
        for (int64_t Kk = 0; Kk < I8KGroup; ++Kk)
          Dot += int32_t(Aq[Kk]) * int32_t(Bq[Kk]);
        uint32_t Acc = uint32_t(Scratch[J * Mr + I]) + uint32_t(Dot);
        Scratch[J * Mr + I] = int32_t(Acc);
      }
    }
  }
}

/// Wrapping i32 scale used by the i8 path's alpha/beta application.
inline int32_t mulWrapI32(int32_t V, int64_t S) {
  return int32_t(uint32_t(uint64_t(int64_t(V) * S)));
}

/// Mirror of runTeamMember for the non-f32 dtypes: identical loop
/// structure, barriers and ownership grid, so the bitwise
/// thread-count-invariance argument carries over unchanged. The branches
/// select the pack / pre-scale / copy-out flavour; the inner kernel is the
/// plan's f32 kernel over converted panels (f16/bf16) or the scalar i8 dot.
void runTeamMemberTyped(void *Ctx, int64_t Tid) {
  const TeamJobT &Job = *static_cast<TeamJobT *>(Ctx);
  const detail::GemmGeometry &G = *Job.G;
  const detail::GemmCallT &Cl = *Job.Call;
  detail::GemmWorkspace &WS = *Job.WS;
  const int64_t Mr = G.Mr, Nr = G.Nr, Mc = G.Mc, Kc = G.Kc, Nc = G.Nc;
  const int64_t NIc = G.NIc, T = G.T, Tic = G.Tic, Tjr = G.Tjr;
  const int64_t M = Cl.M, N = Cl.N, K = Cl.K;
  const DType Ty = Cl.Ty;
  const bool IsInt = Ty == DType::I8I32;

  const int64_t IcTeam = Tid / Tjr, JrIdx = Tid % Tjr;

  for (int64_t Jc = 0; Jc < N; Jc += Nc) {              // Loop L1
    const int64_t NcEff = std::min(Nc, N - Jc);
    const int64_t NPan = (NcEff + Nr - 1) / Nr;
    for (int64_t Pc = 0; Pc < K; Pc += Kc) {            // Loop L2
      const int64_t KcEff = std::min(Kc, K - Pc);
      const int64_t KG = (KcEff + I8KGroup - 1) / I8KGroup;
      {
        EXO_OBS_SPAN("gemm.packB");
        for (int64_t P = Tid; P < NPan; P += T) {
          const int64_t J0 = Jc + P * Nr;
          const int64_t W = std::min(Nr, NcEff - P * Nr);
          // Transposition swaps the element strides, exactly as in the f32
          // path: (k, j) of the logical block is B[k*RS + j*CS].
          const int64_t RS = Cl.TB == Trans::None ? 1 : Cl.Ldb;
          const int64_t CS = Cl.TB == Trans::None ? Cl.Ldb : 1;
          if (IsInt) {
            const int8_t *Src = static_cast<const int8_t *>(Cl.B) +
                                (Cl.TB == Trans::None ? Pc + J0 * Cl.Ldb
                                                      : J0 + Pc * Cl.Ldb);
            packBI8Strided(Src, RS, CS, KcEff, W, Nr,
                           WS.BBufI8.data() + P * KG * I8KGroup * Nr);
          } else {
            const uint16_t *Src = static_cast<const uint16_t *>(Cl.B) +
                                  (Cl.TB == Trans::None ? Pc + J0 * Cl.Ldb
                                                        : J0 + Pc * Cl.Ldb);
            packBConvStrided(Ty, Src, RS, CS, KcEff, W, Nr, /*Alpha=*/1.0f,
                             WS.BBuf.data() + P * KcEff * Nr);
          }
        }
      }

      // Beta pre-scale, once per column block before its first update;
      // same one-writer ownership grid as the f32 path.
      const bool BetaIsOne = IsInt ? Cl.BetaI == 1 : Cl.Beta == 1.0f;
      if (Pc == 0 && !BetaIsOne) {
        EXO_OBS_SPAN("gemm.beta");
        for (int64_t BIdx = IcTeam; BIdx < NIc; BIdx += Tic) {
          const int64_t Ic = BIdx * Mc;
          const int64_t McEff = std::min(Mc, M - Ic);
          for (int64_t J = JrIdx; J < NcEff; J += Tjr) {
            if (IsInt) {
              int32_t *Col =
                  static_cast<int32_t *>(Cl.C) + Ic + (Jc + J) * Cl.Ldc;
              if (Cl.BetaI == 0)
                std::fill(Col, Col + McEff, 0);
              else
                for (int64_t I = 0; I < McEff; ++I)
                  Col[I] = mulWrapI32(Col[I], Cl.BetaI);
            } else {
              uint16_t *Col =
                  static_cast<uint16_t *>(Cl.C) + Ic + (Jc + J) * Cl.Ldc;
              if (Cl.Beta == 0.0f)
                std::fill(Col, Col + McEff, uint16_t(0));
              else
                for (int64_t I = 0; I < McEff; ++I)
                  Col[I] = storeHalf(Ty, loadHalf(Ty, Col[I]) * Cl.Beta);
            }
          }
        }
      }
      if (T > 1) {
        EXO_OBS_SPAN("gemm.barrier");
        Job.Bar->arriveAndWait();
      }

      for (int64_t BIdx = IcTeam; BIdx < NIc; BIdx += Tic) { // Loop L3
        const int64_t Ic = BIdx * Mc;
        const int64_t McEff = std::min(Mc, M - Ic);
        {
          EXO_OBS_SPAN("gemm.packA");
          const int64_t RS = Cl.TA == Trans::None ? 1 : Cl.Lda;
          const int64_t CS = Cl.TA == Trans::None ? Cl.Lda : 1;
          if (IsInt) {
            const int8_t *Src = static_cast<const int8_t *>(Cl.A) +
                                (Cl.TA == Trans::None ? Ic + Pc * Cl.Lda
                                                      : Pc + Ic * Cl.Lda);
            packAI8Strided(Src, RS, CS, McEff, KcEff, Mr,
                           WS.ABufsI8[Tid].data());
          } else {
            const uint16_t *Src = static_cast<const uint16_t *>(Cl.A) +
                                  (Cl.TA == Trans::None ? Ic + Pc * Cl.Lda
                                                        : Pc + Ic * Cl.Lda);
            packAConvStrided(Ty, Src, RS, CS, McEff, KcEff, Mr, Cl.Alpha,
                             WS.ABufs[Tid].data());
          }
        }

        EXO_OBS_SPAN("gemm.ukr");
        for (int64_t P = JrIdx; P < NPan; P += Tjr) {    // Loop L4
          const int64_t Jr = P * Nr;
          const int64_t NrEff = std::min(Nr, NcEff - Jr);
          for (int64_t Ir = 0; Ir < McEff; Ir += Mr) {   // Loop L5
            const int64_t MrEff = std::min(Mr, McEff - Ir);
            if (IsInt) {
              const int8_t *APanel =
                  WS.ABufsI8[Tid].data() + (Ir / Mr) * KG * I8KGroup * Mr;
              const int8_t *BPanel =
                  WS.BBufI8.data() + P * KG * I8KGroup * Nr;
              int32_t *Scratch = WS.ScratchesI32[Tid].data();
              std::fill(Scratch, Scratch + Mr * Nr, 0);
              i8DotTile(KG, Mr, Nr, APanel, BPanel, Scratch);
              int32_t *CTile = static_cast<int32_t *>(Cl.C) + (Ic + Ir) +
                               (Jc + Jr) * Cl.Ldc;
              for (int64_t J = 0; J < NrEff; ++J)
                for (int64_t I = 0; I < MrEff; ++I) {
                  uint32_t Acc =
                      uint32_t(CTile[I + J * Cl.Ldc]) +
                      uint32_t(mulWrapI32(Scratch[J * Mr + I], Cl.AlphaI));
                  CTile[I + J * Cl.Ldc] = int32_t(Acc);
                }
            } else {
              // Always the scratch-tile path: the f32 kernel computes the
              // block's contribution, and the C update (read storage,
              // accumulate in f32, round to storage) happens exactly once
              // per Kc block — the documented rounding contract.
              const float *APanel =
                  WS.ABufs[Tid].data() + (Ir / Mr) * KcEff * Mr;
              const float *BPanel = WS.BBuf.data() + P * KcEff * Nr;
              float *Scratch = WS.Scratches[Tid].data();
              std::fill(Scratch, Scratch + Mr * Nr, 0.0f);
              G.Main.Fn(KcEff, Mr, APanel, BPanel, Scratch);
              uint16_t *CTile = static_cast<uint16_t *>(Cl.C) + (Ic + Ir) +
                                (Jc + Jr) * Cl.Ldc;
              for (int64_t J = 0; J < NrEff; ++J)
                for (int64_t I = 0; I < MrEff; ++I) {
                  uint16_t &H = CTile[I + J * Cl.Ldc];
                  H = storeHalf(Ty,
                                loadHalf(Ty, H) + Scratch[J * Mr + I]);
                }
            }
          }
        }
      }
      if (T > 1) {
        EXO_OBS_SPAN("gemm.barrier");
        Job.Bar->arriveAndWait();
      }
    }
  }
}

} // namespace

void detail::executeGemm(const GemmGeometry &G, const GemmCall &Call,
                         GemmWorkspace &WS) {
  // Tracing (see docs/OBSERVABILITY.md): spans attribute time to the
  // packA / packB / micro-kernel / barrier phases at block granularity —
  // coarse enough that an *enabled* trace stays cheap, and each Span
  // construction is a single relaxed load when EXO_OBS is unset. The
  // spans only observe; results are bitwise identical either way.
  EXO_OBS_SPAN("gemm.call");
  // Nested call (this thread is already inside a pool job — e.g. a batched
  // cross-item worker, or a user callback issuing a GEMM): a T-member team
  // cannot form, and letting the pool degrade a T > 1 job inline would
  // deadlock on the TeamBarrier (each Tid would wait for teammates that
  // never run concurrently). Collapse to the single-member geometry
  // instead — results are bitwise identical for every team size by the
  // thread-count-invariance guarantee (see Gemm.h), so this only changes
  // scheduling, never output.
  if (G.T > 1 && ThreadPool::global().inParallel()) {
    GemmGeometry G1 = G;
    G1.T = 1;
    G1.Tic = 1;
    G1.Tjr = 1;
    TeamJob Job{&G1, &Call, &WS, nullptr}; // T == 1 never touches the barrier
    runTeamMember(&Job, 0);
    return;
  }
  TeamBarrier Bar(G.T);
  TeamJob Job{&G, &Call, &WS, &Bar};
  ThreadPool::global().parallel(G.T, &runTeamMember, &Job);
}

void detail::executeGemmReserved(const GemmGeometry &G, const GemmCall &Call,
                                 GemmWorkspace &WS,
                                 ThreadPool::Reservation &Res) {
  EXO_OBS_SPAN("gemm.call");
  // The granted team: the caller plus every reserved worker. Res.Count is
  // already <= G.T - 1 (the governor caps its ask at the plan width), so
  // the re-teamed copy fits the workspace ensured for G, and by the
  // thread-count-invariance guarantee the narrower team produces bitwise
  // the same C.
  const int64_t Width = 1 + Res.Count;
  if (Width >= G.T && G.T > 1) {
    // Full width granted: run the plan's own geometry directly.
    TeamBarrier Bar(G.T);
    TeamJob Job{&G, &Call, &WS, &Bar};
    ThreadPool::global().runTeam(Res, &runTeamMember, &Job);
    return;
  }
  GemmGeometry G2 = reteamGeometry(G, Width);
  if (G2.T < Width) {
    // The shape offers less parallel work than the grant (tiny problem on
    // a wide plan): return the surplus workers before dispatching.
    ThreadPool::global().release(Res);
    if (G2.T <= 1) {
      TeamJob Job{&G2, &Call, &WS, nullptr};
      runTeamMember(&Job, 0);
      return;
    }
    TeamBarrier Bar(G2.T);
    TeamJob Job{&G2, &Call, &WS, &Bar};
    ThreadPool::global().parallel(G2.T, &runTeamMember, &Job);
    return;
  }
  TeamBarrier Bar(G2.T);
  TeamJob Job{&G2, &Call, &WS, G2.T > 1 ? &Bar : nullptr};
  ThreadPool::global().runTeam(Res, &runTeamMember, &Job);
}

void detail::scaleByBetaTyped(DType Ty, int64_t M, int64_t N, double Beta,
                              void *C, int64_t Ldc) {
  if (Ty == DType::F32) {
    scaleByBeta(M, N, float(Beta), static_cast<float *>(C), Ldc);
    return;
  }
  if (Ty == DType::I8I32) {
    const int64_t BetaI = int64_t(Beta);
    for (int64_t J = 0; J < N; ++J) {
      int32_t *Col = static_cast<int32_t *>(C) + J * Ldc;
      if (BetaI == 0)
        std::fill(Col, Col + M, 0);
      else
        for (int64_t I = 0; I < M; ++I)
          Col[I] = int32_t(uint32_t(uint64_t(int64_t(Col[I]) * BetaI)));
    }
    return;
  }
  const float BetaF = float(Beta);
  for (int64_t J = 0; J < N; ++J) {
    uint16_t *Col = static_cast<uint16_t *>(C) + J * Ldc;
    if (BetaF == 0.0f) {
      std::fill(Col, Col + M, uint16_t(0));
      continue;
    }
    for (int64_t I = 0; I < M; ++I) {
      const float V =
          (Ty == DType::BF16 ? bf16ToF32(Col[I]) : f16ToF32(Col[I])) * BetaF;
      Col[I] = Ty == DType::BF16 ? f32ToBf16(V) : f32ToF16(V);
    }
  }
}

void detail::executeGemmTyped(const GemmGeometry &G, const GemmCallT &Call,
                              GemmWorkspace &WS) {
  EXO_OBS_SPAN("gemm.call");
  // Nested-call collapse, for the same deadlock reason as executeGemm.
  if (G.T > 1 && ThreadPool::global().inParallel()) {
    GemmGeometry G1 = G;
    G1.T = 1;
    G1.Tic = 1;
    G1.Tjr = 1;
    TeamJobT Job{&G1, &Call, &WS, nullptr};
    runTeamMemberTyped(&Job, 0);
    return;
  }
  TeamBarrier Bar(G.T);
  TeamJobT Job{&G, &Call, &WS, &Bar};
  ThreadPool::global().parallel(G.T, &runTeamMemberTyped, &Job);
}

Error gemm::blisGemm(const GemmPlan &Plan, KernelProvider &Provider,
                     int64_t M, int64_t N, int64_t K, float Alpha,
                     const float *A, int64_t Lda, const float *B,
                     int64_t Ldb, float Beta, float *C, int64_t Ldc) {
  return blisGemmT(Plan, Provider, Trans::None, Trans::None, M, N, K, Alpha,
                   A, Lda, B, Ldb, Beta, C, Ldc);
}

Error gemm::blisGemmT(const GemmPlan &Plan, KernelProvider &Provider,
                      Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                      float Alpha, const float *A, int64_t Lda,
                      const float *B, int64_t Ldb, float Beta, float *C,
                      int64_t Ldc) {
  if (M < 0 || N < 0 || K < 0)
    return errorf("gemm: negative dimension");
  if (M == 0 || N == 0)
    return Error::success();

  // K == 0 and alpha == 0 both degenerate to a beta scaling: the update
  // term is empty (or scaled away), and per BLAS semantics A and B are
  // never read — callers may legally pass null.
  if (K == 0 || Alpha == 0.0f) {
    detail::scaleByBeta(M, N, Beta, C, Ldc);
    return Error::success();
  }

  MicroKernel Main = Provider.main();
  if (!Main.Fn)
    return errorf("gemm: provider '%s' has no runnable kernel",
                  Provider.name());

  detail::GemmGeometry G = detail::deriveGeometry(Plan, Main, M, N, K);
  std::vector<std::optional<MicroKernel>> Edges;
  detail::resolveEdgeKernels(Provider, G, N, Edges);
  detail::GemmWorkspace WS;
  WS.ensure(G);
  detail::executeGemm(
      G, detail::GemmCall{TA, TB, M, N, K, Alpha, A, Lda, B, Ldb, Beta, C,
                          Ldc},
      WS);
  return Error::success();
}
