//===- Gemm.cpp -----------------------------------------------------------===//

#include "gemm/Gemm.h"

#include "gemm/ThreadPool.h"
#include "obs/Obs.h"

#include <algorithm>
#include <optional>
#include <vector>

using namespace exo;
using namespace gemm;

GemmPlan GemmPlan::standard(KernelProvider &P) {
  MicroKernel K = P.main();
  GemmPlan Plan;
  Plan.Blocks =
      analyticalBlockSizes(CacheConfig::host(), K.MR, K.NR, sizeof(float));
  // The probe only picks the *preferred* mode; a provider whose edge family
  // turns out to be partial at run time degrades per-strip to the re-padded
  // scratch path inside blisGemmT instead of failing (see the driver).
  Plan.PackMode = P.edge(K.MR, 1).has_value() ? EdgePack::Tight
                                              : EdgePack::ZeroPad;
  return Plan;
}

Error gemm::blisGemm(const GemmPlan &Plan, KernelProvider &Provider,
                     int64_t M, int64_t N, int64_t K, float Alpha,
                     const float *A, int64_t Lda, const float *B,
                     int64_t Ldb, float Beta, float *C, int64_t Ldc) {
  return blisGemmT(Plan, Provider, Trans::None, Trans::None, M, N, K, Alpha,
                   A, Lda, B, Ldb, Beta, C, Ldc);
}

Error gemm::blisGemmT(const GemmPlan &Plan, KernelProvider &Provider,
                      Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                      float Alpha, const float *A, int64_t Lda,
                      const float *B, int64_t Ldb, float Beta, float *C,
                      int64_t Ldc) {
  if (M < 0 || N < 0 || K < 0)
    return errorf("gemm: negative dimension");
  if (M == 0 || N == 0)
    return Error::success();

  // K == 0 and alpha == 0 both degenerate to a beta scaling: the update
  // term is empty (or scaled away), and per BLAS semantics A and B are
  // never read — callers may legally pass null. Beta == 0 must *overwrite*,
  // not scale: 0 * NaN == NaN, and serving workloads hand in pooled,
  // uninitialized C buffers (the classic BLAS beta-zero rule).
  if (K == 0 || Alpha == 0.0f) {
    for (int64_t J = 0; J < N; ++J) {
      float *Col = C + J * Ldc;
      if (Beta == 0.0f)
        std::fill(Col, Col + M, 0.0f);
      else
        for (int64_t I = 0; I < M; ++I)
          Col[I] *= Beta;
    }
    return Error::success();
  }

  MicroKernel Main = Provider.main();
  if (!Main.Fn)
    return errorf("gemm: provider '%s' has no runnable kernel",
                  Provider.name());
  const int64_t Mr = Main.MR, Nr = Main.NR;
  // Clamp blocks to the problem so pack buffers stay proportionate.
  auto RoundUp = [](int64_t V, int64_t Q) { return ((V + Q - 1) / Q) * Q; };
  const int64_t Mc =
      std::min(std::max<int64_t>(Plan.Blocks.MC, Mr), RoundUp(M, Mr));
  const int64_t Kc =
      std::min(std::max<int64_t>(Plan.Blocks.KC, 1), std::max<int64_t>(K, 1));
  const int64_t Nc =
      std::min(std::max<int64_t>(Plan.Blocks.NC, Nr), RoundUp(N, Nr));

  // Resolve every strip kernel up front, on the calling thread: the worker
  // team must never call into the provider (whose kernel cache may invoke
  // the JIT), and a fixed kernel per width keeps one GEMM call bitwise
  // invariant under the thread count. A width whose specialized kernel is
  // unavailable (partial edge family, or an async provider still
  // compiling) stays nullopt and takes the re-padded scratch path below.
  std::vector<std::optional<MicroKernel>> EdgeKernels(Nr);
  bool NeedBPad = false;
  if (Plan.PackMode == EdgePack::Tight) {
    std::vector<bool> Probed(Nr, false);
    for (int64_t Jc = 0; Jc < N; Jc += Nc) {
      int64_t W = std::min(Nc, N - Jc) % Nr;
      if (W == 0 || Probed[W])
        continue;
      Probed[W] = true;
      std::optional<MicroKernel> E = Provider.edge(Mr, W);
      if (E && E->Fn)
        EdgeKernels[W] = *E;
      else
        NeedBPad = true;
    }
  }

  // Team size and its BLIS-style 2D factorization: loop 3 (ic blocks) is
  // the primary axis; when there are fewer ic blocks than threads, the
  // remainder parallelizes loop 4 (jr strips) within each ic team. Tic is
  // the largest divisor of T fitting the ic block count, so every thread
  // lands in the grid.
  const int64_t NIc = (M + Mc - 1) / Mc;
  const int64_t NPanMax = (std::min(Nc, N) + Nr - 1) / Nr;
  int64_t T = std::max<int64_t>(
      1, std::min(resolveGemmThreads(Plan.Threads), NIc * NPanMax));
  int64_t Tic = 1;
  for (int64_t D = 1; D <= T; ++D)
    if (T % D == 0 && D <= NIc)
      Tic = D;
  const int64_t Tjr = T / Tic;

  // Shared packed-B block (written cooperatively, panel-interleaved, read
  // by everyone after the barrier) and per-thread working memory: A pack
  // buffer, scratch tile, and — only when a Tight-mode width lacks its
  // kernel — a re-padded B panel.
  std::vector<float> BBuf(((Nc + Nr - 1) / Nr) * Kc * Nr);
  std::vector<std::vector<float>> ABufs(T), Scratches(T), BPads(T);
  for (int64_t I = 0; I < T; ++I) {
    ABufs[I].resize(((Mc + Mr - 1) / Mr) * Kc * Mr);
    Scratches[I].resize(Mr * Nr);
    if (NeedBPad)
      BPads[I].resize(Kc * Nr);
  }
  TeamBarrier Bar(T);

  // Tracing (see docs/OBSERVABILITY.md): spans attribute time to the
  // packA / packB / micro-kernel / barrier phases at block granularity —
  // coarse enough that an *enabled* trace stays cheap, and each Span
  // construction below is a single relaxed load when EXO_OBS is unset.
  // The spans only observe; results are bitwise identical either way.
  EXO_OBS_SPAN("gemm.call");

  auto Body = [&](int64_t Tid) {
    // Grid position: ic team owns row blocks BIdx % Tic == IcTeam; within
    // a team, jr strips (and pre-scale columns) split by JrIdx.
    const int64_t IcTeam = Tid / Tjr, JrIdx = Tid % Tjr;
    float *ABuf = ABufs[Tid].data();
    float *Scratch = Scratches[Tid].data();
    float *BPad = BPads[Tid].empty() ? nullptr : BPads[Tid].data();

    for (int64_t Jc = 0; Jc < N; Jc += Nc) {            // Loop L1
      const int64_t NcEff = std::min(Nc, N - Jc);
      const int64_t NPan = (NcEff + Nr - 1) / Nr;
      for (int64_t Pc = 0; Pc < K; Pc += Kc) {          // Loop L2
        const int64_t KcEff = std::min(Kc, K - Pc);
        // Cooperative packB: panel P goes to thread P % T. Packing panel
        // by panel reproduces the monolithic layout exactly (slot stride
        // KcEff * Nr; only the last panel can be partial).
        {
          EXO_OBS_SPAN("gemm.packB");
          for (int64_t P = Tid; P < NPan; P += T) {
          const int64_t J0 = Jc + P * Nr;
          const int64_t W = std::min(Nr, NcEff - P * Nr);
          float *Dst = BBuf.data() + P * KcEff * Nr;
          // Element (k, j) of the logical block; transposition swaps
          // strides.
          if (TB == Trans::None)
            packBStrided(B + Pc + J0 * Ldb, 1, Ldb, KcEff, W, Nr,
                         /*Alpha=*/1.0f, Plan.PackMode, Dst);
          else
            packBStrided(B + J0 + Pc * Ldb, Ldb, 1, KcEff, W, Nr,
                         /*Alpha=*/1.0f, Plan.PackMode, Dst);
          }
        }

        // Apply beta once per (jc) column block, before the first update.
        // Beta == 0 overwrites (see the K == 0 comment). Ownership: rows
        // by ic team, columns round-robin within the team — every C
        // element has exactly one writer.
        if (Pc == 0 && Beta != 1.0f) {
          EXO_OBS_SPAN("gemm.beta");
          for (int64_t BIdx = IcTeam; BIdx < NIc; BIdx += Tic) {
            const int64_t Ic = BIdx * Mc;
            const int64_t McEff = std::min(Mc, M - Ic);
            for (int64_t J = JrIdx; J < NcEff; J += Tjr) {
              float *Col = C + Ic + (Jc + J) * Ldc;
              if (Beta == 0.0f)
                std::fill(Col, Col + McEff, 0.0f);
              else
                for (int64_t I = 0; I < McEff; ++I)
                  Col[I] *= Beta;
            }
          }
        }
        if (T > 1) {
          EXO_OBS_SPAN("gemm.barrier");
          Bar.arriveAndWait(); // packB + pre-scale done before any update
        }

        for (int64_t BIdx = IcTeam; BIdx < NIc; BIdx += Tic) { // Loop L3
          const int64_t Ic = BIdx * Mc;
          const int64_t McEff = std::min(Mc, M - Ic);
          // A panels are always zero-padded to the full Mr: edge kernels
          // keep the full vector width along m and the driver masks the
          // copy-out instead (rows >= mr_eff contribute zeros). Each
          // thread packs into its own buffer; members of the same ic team
          // duplicate the pack, trading redundant bandwidth for zero
          // intra-team synchronization.
          {
            EXO_OBS_SPAN("gemm.packA");
            if (TA == Trans::None)
              packAStrided(A + Ic + Pc * Lda, 1, Lda, McEff, KcEff, Mr,
                           Alpha, EdgePack::ZeroPad, ABuf);
            else
              packAStrided(A + Pc + Ic * Lda, Lda, 1, McEff, KcEff, Mr,
                           Alpha, EdgePack::ZeroPad, ABuf);
          }

          EXO_OBS_SPAN("gemm.ukr");
          for (int64_t P = JrIdx; P < NPan; P += Tjr) {  // Loop L4
            const int64_t Jr = P * Nr;
            const int64_t NrEff = std::min(Nr, NcEff - Jr);
            const float *BPanel = BBuf.data() + P * KcEff * Nr;
            // The edge kernel depends only on the strip width; resolved
            // once per call above. A Tight-mode strip without its
            // specialized kernel re-pads the tight panel and runs the
            // monolithic kernel through the scratch tile — a partial edge
            // family degrades instead of failing.
            const MicroKernel *Strip = &Main;
            bool Padded = Plan.PackMode == EdgePack::ZeroPad;
            if (NrEff < Nr && Plan.PackMode == EdgePack::Tight) {
              if (EdgeKernels[NrEff]) {
                Strip = &*EdgeKernels[NrEff];
              } else {
                for (int64_t Kk = 0; Kk < KcEff; ++Kk) {
                  float *Row = BPad + Kk * Nr;
                  for (int64_t J = 0; J < NrEff; ++J)
                    Row[J] = BPanel[Kk * NrEff + J];
                  std::fill(Row + NrEff, Row + Nr, 0.0f);
                }
                BPanel = BPad;
                Padded = true;
              }
            }
            for (int64_t Ir = 0; Ir < McEff; Ir += Mr) { // Loop L5
              const int64_t MrEff = std::min(Mr, McEff - Ir);
              const float *APanel = ABuf + (Ir / Mr) * KcEff * Mr;
              float *CTile = C + (Ic + Ir) + (Jc + Jr) * Ldc;

              if (MrEff == Mr && NrEff == Nr) {
                Main.Fn(KcEff, Ldc, APanel, BPanel, CTile);
                continue;
              }
              if (!Padded && MrEff == Mr) {
                // Specialized kernel at full vector width along m and the
                // exact nr_eff along n (B panels are tight).
                Strip->Fn(KcEff, Ldc, APanel, BPanel, CTile);
                continue;
              }
              // Scratch tile: the kernel (specialized when the m edge is
              // short, monolithic on the padded path) computes into a
              // zero-initialized Mr x Nr tile — the A panel's padded rows
              // are zero — and the valid window is accumulated back.
              const MicroKernel *Kern = Padded ? &Main : Strip;
              std::fill(Scratch, Scratch + Mr * Nr, 0.0f);
              Kern->Fn(KcEff, Mr, APanel, BPanel, Scratch);
              for (int64_t J = 0; J < NrEff; ++J)
                for (int64_t I = 0; I < MrEff; ++I)
                  CTile[I + J * Ldc] += Scratch[J * Mr + I];
            }
          }
        }
        if (T > 1) {
          EXO_OBS_SPAN("gemm.barrier");
          Bar.arriveAndWait(); // BBuf (and C columns) recycle next round
        }
      }
    }
  };

  ThreadPool::global().parallel(T, Body);
  return Error::success();
}
