//===- Gemm.cpp -----------------------------------------------------------===//

#include "gemm/Gemm.h"

#include "gemm/ThreadPool.h"
#include "obs/Obs.h"

#include <algorithm>
#include <optional>
#include <vector>

using namespace exo;
using namespace gemm;

GemmPlan GemmPlan::standard(KernelProvider &P) {
  MicroKernel K = P.main();
  GemmPlan Plan;
  Plan.Blocks =
      analyticalBlockSizes(CacheConfig::host(), K.MR, K.NR, sizeof(float));
  // The probe only picks the *preferred* mode; a provider whose edge family
  // turns out to be partial at run time degrades per-strip to the re-padded
  // scratch path inside the executor instead of failing (see executeGemm).
  Plan.PackMode = P.edge(K.MR, 1).has_value() ? EdgePack::Tight
                                              : EdgePack::ZeroPad;
  return Plan;
}

void detail::scaleByBeta(int64_t M, int64_t N, float Beta, float *C,
                         int64_t Ldc) {
  // Beta == 0 must *overwrite*, not scale: 0 * NaN == NaN, and serving
  // workloads hand in pooled, uninitialized C buffers (the classic BLAS
  // beta-zero rule).
  for (int64_t J = 0; J < N; ++J) {
    float *Col = C + J * Ldc;
    if (Beta == 0.0f)
      std::fill(Col, Col + M, 0.0f);
    else
      for (int64_t I = 0; I < M; ++I)
        Col[I] *= Beta;
  }
}

detail::GemmGeometry detail::deriveGeometry(const GemmPlan &Plan,
                                            const MicroKernel &Main,
                                            int64_t M, int64_t N, int64_t K) {
  GemmGeometry G;
  G.Main = Main;
  G.PackMode = Plan.PackMode;
  G.Mr = Main.MR;
  G.Nr = Main.NR;
  // Clamp blocks to the problem so pack buffers stay proportionate.
  auto RoundUp = [](int64_t V, int64_t Q) { return ((V + Q - 1) / Q) * Q; };
  G.Mc = std::min(std::max<int64_t>(Plan.Blocks.MC, G.Mr), RoundUp(M, G.Mr));
  G.Kc =
      std::min(std::max<int64_t>(Plan.Blocks.KC, 1), std::max<int64_t>(K, 1));
  G.Nc = std::min(std::max<int64_t>(Plan.Blocks.NC, G.Nr), RoundUp(N, G.Nr));

  // Team size and its BLIS-style 2D factorization: loop 3 (ic blocks) is
  // the primary axis; when there are fewer ic blocks than threads, the
  // remainder parallelizes loop 4 (jr strips) within each ic team. Tic is
  // the largest divisor of T fitting the ic block count, so every thread
  // lands in the grid.
  G.NIc = (M + G.Mc - 1) / G.Mc;
  const int64_t NPanMax = (std::min(G.Nc, N) + G.Nr - 1) / G.Nr;
  G.T = std::max<int64_t>(
      1, std::min(resolveGemmThreads(Plan.Threads), G.NIc * NPanMax));
  factorizeTeam(G);
  return G;
}

void detail::factorizeTeam(GemmGeometry &G) {
  G.Tic = 1;
  for (int64_t D = 1; D <= G.T; ++D)
    if (G.T % D == 0 && D <= G.NIc)
      G.Tic = D;
  G.Tjr = G.T / G.Tic;
}

detail::GemmGeometry detail::reteamGeometry(const GemmGeometry &G,
                                            int64_t Width) {
  GemmGeometry G2 = G;
  G2.T = std::max<int64_t>(1, std::min(Width, G.T));
  factorizeTeam(G2);
  return G2;
}

void detail::resolveEdgeKernels(
    KernelProvider &Provider, GemmGeometry &G, int64_t N,
    std::vector<std::optional<MicroKernel>> &Storage) {
  // Resolve every strip kernel up front, on the calling thread: the worker
  // team must never call into the provider (whose kernel cache may invoke
  // the JIT), and a fixed kernel per width keeps one GEMM call bitwise
  // invariant under the thread count. A width whose specialized kernel is
  // unavailable (partial edge family, or an async provider still
  // compiling) stays nullopt and takes the re-padded scratch path.
  Storage.assign(static_cast<size_t>(G.Nr), std::nullopt);
  G.NeedBPad = false;
  if (G.PackMode == EdgePack::Tight) {
    std::vector<bool> Probed(G.Nr, false);
    for (int64_t Jc = 0; Jc < N; Jc += G.Nc) {
      int64_t W = std::min(G.Nc, N - Jc) % G.Nr;
      if (W == 0 || Probed[W])
        continue;
      Probed[W] = true;
      std::optional<MicroKernel> E = Provider.edge(G.Mr, W);
      if (E && E->Fn)
        Storage[W] = *E;
      else
        G.NeedBPad = true;
    }
  }
  G.EdgeKernels = Storage.data();
}

void detail::GemmWorkspace::ensure(const GemmGeometry &G) {
  // Shared packed-B block (written cooperatively, panel-interleaved, read
  // by everyone after the barrier) and per-thread working memory: A pack
  // buffer, scratch tile, and — only when a Tight-mode width lacks its
  // kernel — a re-padded B panel. Every resize is a no-op when the
  // workspace already fits this geometry (the Engine's pooled hot path).
  BBuf.resize(((G.Nc + G.Nr - 1) / G.Nr) * G.Kc * G.Nr);
  ABufs.resize(G.T);
  Scratches.resize(G.T);
  BPads.resize(G.T);
  for (int64_t I = 0; I < G.T; ++I) {
    ABufs[I].resize(((G.Mc + G.Mr - 1) / G.Mr) * G.Kc * G.Mr);
    Scratches[I].resize(G.Mr * G.Nr);
    BPads[I].resize(G.NeedBPad ? G.Kc * G.Nr : 0);
  }
}

namespace {

/// Per-call context handed to the raw ThreadPool callback: pointers only,
/// so dispatching a team performs no allocation.
struct TeamJob {
  const detail::GemmGeometry *G;
  const detail::GemmCall *Call;
  detail::GemmWorkspace *WS;
  TeamBarrier *Bar;
};

void runTeamMember(void *Ctx, int64_t Tid) {
  const TeamJob &Job = *static_cast<TeamJob *>(Ctx);
  const detail::GemmGeometry &G = *Job.G;
  const detail::GemmCall &Cl = *Job.Call;
  detail::GemmWorkspace &WS = *Job.WS;
  const int64_t Mr = G.Mr, Nr = G.Nr, Mc = G.Mc, Kc = G.Kc, Nc = G.Nc;
  const int64_t NIc = G.NIc, T = G.T, Tic = G.Tic, Tjr = G.Tjr;
  const int64_t M = Cl.M, N = Cl.N, K = Cl.K;
  const MicroKernel &Main = G.Main;

  // Grid position: ic team owns row blocks BIdx % Tic == IcTeam; within
  // a team, jr strips (and pre-scale columns) split by JrIdx.
  const int64_t IcTeam = Tid / Tjr, JrIdx = Tid % Tjr;
  float *ABuf = WS.ABufs[Tid].data();
  float *Scratch = WS.Scratches[Tid].data();
  float *BPad = WS.BPads[Tid].empty() ? nullptr : WS.BPads[Tid].data();

  for (int64_t Jc = 0; Jc < N; Jc += Nc) {            // Loop L1
    const int64_t NcEff = std::min(Nc, N - Jc);
    const int64_t NPan = (NcEff + Nr - 1) / Nr;
    for (int64_t Pc = 0; Pc < K; Pc += Kc) {          // Loop L2
      const int64_t KcEff = std::min(Kc, K - Pc);
      // Cooperative packB: panel P goes to thread P % T. Packing panel
      // by panel reproduces the monolithic layout exactly (slot stride
      // KcEff * Nr; only the last panel can be partial).
      {
        EXO_OBS_SPAN("gemm.packB");
        for (int64_t P = Tid; P < NPan; P += T) {
        const int64_t J0 = Jc + P * Nr;
        const int64_t W = std::min(Nr, NcEff - P * Nr);
        float *Dst = WS.BBuf.data() + P * KcEff * Nr;
        // Element (k, j) of the logical block; transposition swaps
        // strides.
        if (Cl.TB == Trans::None)
          packBStrided(Cl.B + Pc + J0 * Cl.Ldb, 1, Cl.Ldb, KcEff, W, Nr,
                       /*Alpha=*/1.0f, G.PackMode, Dst);
        else
          packBStrided(Cl.B + J0 + Pc * Cl.Ldb, Cl.Ldb, 1, KcEff, W, Nr,
                       /*Alpha=*/1.0f, G.PackMode, Dst);
        }
      }

      // Apply beta once per (jc) column block, before the first update.
      // Beta == 0 overwrites (see scaleByBeta). Ownership: rows by ic
      // team, columns round-robin within the team — every C element has
      // exactly one writer.
      if (Pc == 0 && Cl.Beta != 1.0f) {
        EXO_OBS_SPAN("gemm.beta");
        for (int64_t BIdx = IcTeam; BIdx < NIc; BIdx += Tic) {
          const int64_t Ic = BIdx * Mc;
          const int64_t McEff = std::min(Mc, M - Ic);
          for (int64_t J = JrIdx; J < NcEff; J += Tjr) {
            float *Col = Cl.C + Ic + (Jc + J) * Cl.Ldc;
            if (Cl.Beta == 0.0f)
              std::fill(Col, Col + McEff, 0.0f);
            else
              for (int64_t I = 0; I < McEff; ++I)
                Col[I] *= Cl.Beta;
          }
        }
      }
      if (T > 1) {
        EXO_OBS_SPAN("gemm.barrier");
        Job.Bar->arriveAndWait(); // packB + pre-scale done before update
      }

      for (int64_t BIdx = IcTeam; BIdx < NIc; BIdx += Tic) { // Loop L3
        const int64_t Ic = BIdx * Mc;
        const int64_t McEff = std::min(Mc, M - Ic);
        // A panels are always zero-padded to the full Mr: edge kernels
        // keep the full vector width along m and the driver masks the
        // copy-out instead (rows >= mr_eff contribute zeros). Each
        // thread packs into its own buffer; members of the same ic team
        // duplicate the pack, trading redundant bandwidth for zero
        // intra-team synchronization.
        {
          EXO_OBS_SPAN("gemm.packA");
          if (Cl.TA == Trans::None)
            packAStrided(Cl.A + Ic + Pc * Cl.Lda, 1, Cl.Lda, McEff, KcEff,
                         Mr, Cl.Alpha, EdgePack::ZeroPad, ABuf);
          else
            packAStrided(Cl.A + Pc + Ic * Cl.Lda, Cl.Lda, 1, McEff, KcEff,
                         Mr, Cl.Alpha, EdgePack::ZeroPad, ABuf);
        }

        EXO_OBS_SPAN("gemm.ukr");
        for (int64_t P = JrIdx; P < NPan; P += Tjr) {  // Loop L4
          const int64_t Jr = P * Nr;
          const int64_t NrEff = std::min(Nr, NcEff - Jr);
          const float *BPanel = WS.BBuf.data() + P * KcEff * Nr;
          // The edge kernel depends only on the strip width; resolved
          // once per plan (or per legacy call). A Tight-mode strip
          // without its specialized kernel re-pads the tight panel and
          // runs the monolithic kernel through the scratch tile — a
          // partial edge family degrades instead of failing.
          const MicroKernel *Strip = &Main;
          bool Padded = G.PackMode == EdgePack::ZeroPad;
          if (NrEff < Nr && G.PackMode == EdgePack::Tight) {
            if (G.EdgeKernels[NrEff]) {
              Strip = &*G.EdgeKernels[NrEff];
            } else {
              for (int64_t Kk = 0; Kk < KcEff; ++Kk) {
                float *Row = BPad + Kk * Nr;
                for (int64_t J = 0; J < NrEff; ++J)
                  Row[J] = BPanel[Kk * NrEff + J];
                std::fill(Row + NrEff, Row + Nr, 0.0f);
              }
              BPanel = BPad;
              Padded = true;
            }
          }
          for (int64_t Ir = 0; Ir < McEff; Ir += Mr) { // Loop L5
            const int64_t MrEff = std::min(Mr, McEff - Ir);
            const float *APanel = ABuf + (Ir / Mr) * KcEff * Mr;
            float *CTile = Cl.C + (Ic + Ir) + (Jc + Jr) * Cl.Ldc;

            if (MrEff == Mr && NrEff == Nr) {
              Main.Fn(KcEff, Cl.Ldc, APanel, BPanel, CTile);
              continue;
            }
            if (!Padded && MrEff == Mr) {
              // Specialized kernel at full vector width along m and the
              // exact nr_eff along n (B panels are tight).
              Strip->Fn(KcEff, Cl.Ldc, APanel, BPanel, CTile);
              continue;
            }
            // Scratch tile: the kernel (specialized when the m edge is
            // short, monolithic on the padded path) computes into a
            // zero-initialized Mr x Nr tile — the A panel's padded rows
            // are zero — and the valid window is accumulated back.
            const MicroKernel *Kern = Padded ? &Main : Strip;
            std::fill(Scratch, Scratch + Mr * Nr, 0.0f);
            Kern->Fn(KcEff, Mr, APanel, BPanel, Scratch);
            for (int64_t J = 0; J < NrEff; ++J)
              for (int64_t I = 0; I < MrEff; ++I)
                CTile[I + J * Cl.Ldc] += Scratch[J * Mr + I];
          }
        }
      }
      if (T > 1) {
        EXO_OBS_SPAN("gemm.barrier");
        Job.Bar->arriveAndWait(); // BBuf (and C columns) recycle next round
      }
    }
  }
}

} // namespace

void detail::executeGemm(const GemmGeometry &G, const GemmCall &Call,
                         GemmWorkspace &WS) {
  // Tracing (see docs/OBSERVABILITY.md): spans attribute time to the
  // packA / packB / micro-kernel / barrier phases at block granularity —
  // coarse enough that an *enabled* trace stays cheap, and each Span
  // construction is a single relaxed load when EXO_OBS is unset. The
  // spans only observe; results are bitwise identical either way.
  EXO_OBS_SPAN("gemm.call");
  // Nested call (this thread is already inside a pool job — e.g. a batched
  // cross-item worker, or a user callback issuing a GEMM): a T-member team
  // cannot form, and letting the pool degrade a T > 1 job inline would
  // deadlock on the TeamBarrier (each Tid would wait for teammates that
  // never run concurrently). Collapse to the single-member geometry
  // instead — results are bitwise identical for every team size by the
  // thread-count-invariance guarantee (see Gemm.h), so this only changes
  // scheduling, never output.
  if (G.T > 1 && ThreadPool::global().inParallel()) {
    GemmGeometry G1 = G;
    G1.T = 1;
    G1.Tic = 1;
    G1.Tjr = 1;
    TeamJob Job{&G1, &Call, &WS, nullptr}; // T == 1 never touches the barrier
    runTeamMember(&Job, 0);
    return;
  }
  TeamBarrier Bar(G.T);
  TeamJob Job{&G, &Call, &WS, &Bar};
  ThreadPool::global().parallel(G.T, &runTeamMember, &Job);
}

void detail::executeGemmReserved(const GemmGeometry &G, const GemmCall &Call,
                                 GemmWorkspace &WS,
                                 ThreadPool::Reservation &Res) {
  EXO_OBS_SPAN("gemm.call");
  // The granted team: the caller plus every reserved worker. Res.Count is
  // already <= G.T - 1 (the governor caps its ask at the plan width), so
  // the re-teamed copy fits the workspace ensured for G, and by the
  // thread-count-invariance guarantee the narrower team produces bitwise
  // the same C.
  const int64_t Width = 1 + Res.Count;
  if (Width >= G.T && G.T > 1) {
    // Full width granted: run the plan's own geometry directly.
    TeamBarrier Bar(G.T);
    TeamJob Job{&G, &Call, &WS, &Bar};
    ThreadPool::global().runTeam(Res, &runTeamMember, &Job);
    return;
  }
  GemmGeometry G2 = reteamGeometry(G, Width);
  if (G2.T < Width) {
    // The shape offers less parallel work than the grant (tiny problem on
    // a wide plan): return the surplus workers before dispatching.
    ThreadPool::global().release(Res);
    if (G2.T <= 1) {
      TeamJob Job{&G2, &Call, &WS, nullptr};
      runTeamMember(&Job, 0);
      return;
    }
    TeamBarrier Bar(G2.T);
    TeamJob Job{&G2, &Call, &WS, &Bar};
    ThreadPool::global().parallel(G2.T, &runTeamMember, &Job);
    return;
  }
  TeamBarrier Bar(G2.T);
  TeamJob Job{&G2, &Call, &WS, G2.T > 1 ? &Bar : nullptr};
  ThreadPool::global().runTeam(Res, &runTeamMember, &Job);
}

Error gemm::blisGemm(const GemmPlan &Plan, KernelProvider &Provider,
                     int64_t M, int64_t N, int64_t K, float Alpha,
                     const float *A, int64_t Lda, const float *B,
                     int64_t Ldb, float Beta, float *C, int64_t Ldc) {
  return blisGemmT(Plan, Provider, Trans::None, Trans::None, M, N, K, Alpha,
                   A, Lda, B, Ldb, Beta, C, Ldc);
}

Error gemm::blisGemmT(const GemmPlan &Plan, KernelProvider &Provider,
                      Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                      float Alpha, const float *A, int64_t Lda,
                      const float *B, int64_t Ldb, float Beta, float *C,
                      int64_t Ldc) {
  if (M < 0 || N < 0 || K < 0)
    return errorf("gemm: negative dimension");
  if (M == 0 || N == 0)
    return Error::success();

  // K == 0 and alpha == 0 both degenerate to a beta scaling: the update
  // term is empty (or scaled away), and per BLAS semantics A and B are
  // never read — callers may legally pass null.
  if (K == 0 || Alpha == 0.0f) {
    detail::scaleByBeta(M, N, Beta, C, Ldc);
    return Error::success();
  }

  MicroKernel Main = Provider.main();
  if (!Main.Fn)
    return errorf("gemm: provider '%s' has no runnable kernel",
                  Provider.name());

  detail::GemmGeometry G = detail::deriveGeometry(Plan, Main, M, N, K);
  std::vector<std::optional<MicroKernel>> Edges;
  detail::resolveEdgeKernels(Provider, G, N, Edges);
  detail::GemmWorkspace WS;
  WS.ensure(G);
  detail::executeGemm(
      G, detail::GemmCall{TA, TB, M, N, K, Alpha, A, Lda, B, Ldb, Beta, C,
                          Ldc},
      WS);
  return Error::success();
}
