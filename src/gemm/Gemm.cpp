//===- Gemm.cpp -----------------------------------------------------------===//

#include "gemm/Gemm.h"

#include <algorithm>
#include <vector>

using namespace exo;
using namespace gemm;

GemmPlan GemmPlan::standard(KernelProvider &P) {
  MicroKernel K = P.main();
  GemmPlan Plan;
  Plan.Blocks =
      analyticalBlockSizes(CacheConfig::host(), K.MR, K.NR, sizeof(float));
  Plan.PackMode = P.edge(K.MR, 1).has_value() ? EdgePack::Tight
                                              : EdgePack::ZeroPad;
  return Plan;
}

Error gemm::blisGemm(const GemmPlan &Plan, KernelProvider &Provider,
                     int64_t M, int64_t N, int64_t K, float Alpha,
                     const float *A, int64_t Lda, const float *B,
                     int64_t Ldb, float Beta, float *C, int64_t Ldc) {
  return blisGemmT(Plan, Provider, Trans::None, Trans::None, M, N, K, Alpha,
                   A, Lda, B, Ldb, Beta, C, Ldc);
}

Error gemm::blisGemmT(const GemmPlan &Plan, KernelProvider &Provider,
                      Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                      float Alpha, const float *A, int64_t Lda,
                      const float *B, int64_t Ldb, float Beta, float *C,
                      int64_t Ldc) {
  if (M < 0 || N < 0 || K < 0)
    return errorf("gemm: negative dimension");
  if (M == 0 || N == 0)
    return Error::success();

  MicroKernel Main = Provider.main();
  if (!Main.Fn)
    return errorf("gemm: provider '%s' has no runnable kernel",
                  Provider.name());
  const int64_t Mr = Main.MR, Nr = Main.NR;
  // Clamp blocks to the problem so pack buffers stay proportionate.
  auto RoundUp = [](int64_t V, int64_t Q) { return ((V + Q - 1) / Q) * Q; };
  const int64_t Mc =
      std::min(std::max<int64_t>(Plan.Blocks.MC, Mr), RoundUp(M, Mr));
  const int64_t Kc =
      std::min(std::max<int64_t>(Plan.Blocks.KC, 1), std::max<int64_t>(K, 1));
  const int64_t Nc =
      std::min(std::max<int64_t>(Plan.Blocks.NC, Nr), RoundUp(N, Nr));

  // K == 0 degenerates to a beta scaling.
  if (K == 0) {
    for (int64_t J = 0; J < N; ++J)
      for (int64_t I = 0; I < M; ++I)
        C[I + J * Ldc] *= Beta;
    return Error::success();
  }

  std::vector<float> BBuf(((Nc + Nr - 1) / Nr) * Kc * Nr);
  std::vector<float> ABuf(((Mc + Mr - 1) / Mr) * Kc * Mr);
  std::vector<float> Scratch(Mr * Nr);

  for (int64_t Jc = 0; Jc < N; Jc += Nc) {            // Loop L1
    int64_t NcEff = std::min(Nc, N - Jc);
    for (int64_t Pc = 0; Pc < K; Pc += Kc) {          // Loop L2
      int64_t KcEff = std::min(Kc, K - Pc);
      // Element (k, j) of the logical block; transposition swaps strides.
      if (TB == Trans::None)
        packBStrided(B + Pc + Jc * Ldb, 1, Ldb, KcEff, NcEff, Nr,
                     /*Alpha=*/1.0f, Plan.PackMode, BBuf.data());
      else
        packBStrided(B + Jc + Pc * Ldb, Ldb, 1, KcEff, NcEff, Nr,
                     /*Alpha=*/1.0f, Plan.PackMode, BBuf.data());

      // Apply beta once per (jc) column block, before the first update.
      if (Pc == 0 && Beta != 1.0f)
        for (int64_t J = 0; J < NcEff; ++J)
          for (int64_t I = 0; I < M; ++I)
            C[I + (Jc + J) * Ldc] *= Beta;

      for (int64_t Ic = 0; Ic < M; Ic += Mc) {        // Loop L3
        int64_t McEff = std::min(Mc, M - Ic);
        // A panels are always zero-padded to the full Mr: edge kernels
        // keep the full vector width along m and the driver masks the
        // copy-out instead (rows >= mr_eff contribute zeros).
        if (TA == Trans::None)
          packAStrided(A + Ic + Pc * Lda, 1, Lda, McEff, KcEff, Mr, Alpha,
                       EdgePack::ZeroPad, ABuf.data());
        else
          packAStrided(A + Pc + Ic * Lda, Lda, 1, McEff, KcEff, Mr, Alpha,
                       EdgePack::ZeroPad, ABuf.data());

        for (int64_t Jr = 0; Jr < NcEff; Jr += Nr) {  // Loop L4
          int64_t NrEff = std::min(Nr, NcEff - Jr);
          const float *BPanel = BBuf.data() + (Jr / Nr) * KcEff * Nr;
          // The edge kernel depends only on the strip width; resolve it
          // once per strip, not once per tile.
          std::optional<MicroKernel> StripKernel;
          if (NrEff == Nr) {
            StripKernel = Main;
          } else if (Plan.PackMode == EdgePack::Tight) {
            StripKernel = Provider.edge(Mr, NrEff);
            if (!StripKernel || !StripKernel->Fn)
              return errorf("gemm: no specialized kernel for %lldx%lld "
                            "edge tile",
                            static_cast<long long>(Mr),
                            static_cast<long long>(NrEff));
          }
          for (int64_t Ir = 0; Ir < McEff; Ir += Mr) { // Loop L5
            int64_t MrEff = std::min(Mr, McEff - Ir);
            const float *APanel = ABuf.data() + (Ir / Mr) * KcEff * Mr;
            float *CTile = C + (Ic + Ir) + (Jc + Jr) * Ldc;

            if (MrEff == Mr && NrEff == Nr) {
              Main.Fn(KcEff, Ldc, APanel, BPanel, CTile);
              continue;
            }
            if (Plan.PackMode == EdgePack::Tight) {
              // Specialized kernel at full vector width along m and the
              // exact nr_eff along n (B panels are tight). When the m edge
              // is short, the same kernel computes into a scratch tile —
              // the A panel's padded rows are zero — and the valid window
              // is accumulated back.
              if (MrEff == Mr) {
                StripKernel->Fn(KcEff, Ldc, APanel, BPanel, CTile);
                continue;
              }
              std::fill(Scratch.begin(), Scratch.end(), 0.0f);
              StripKernel->Fn(KcEff, Mr, APanel, BPanel, Scratch.data());
              for (int64_t J = 0; J < NrEff; ++J)
                for (int64_t I = 0; I < MrEff; ++I)
                  CTile[I + J * Ldc] += Scratch[J * Mr + I];
              continue;
            }
            // Monolithic kernel through a zero-initialized scratch tile;
            // packed panels are zero-padded, so the kernel computes a full
            // Mr x Nr product and the valid window is accumulated back.
            std::fill(Scratch.begin(), Scratch.end(), 0.0f);
            Main.Fn(KcEff, Mr, APanel, BPanel, Scratch.data());
            for (int64_t J = 0; J < NrEff; ++J)
              for (int64_t I = 0; I < MrEff; ++I)
                CTile[I + J * Ldc] += Scratch[J * Mr + I];
          }
        }
      }
    }
  }
  return Error::success();
}
