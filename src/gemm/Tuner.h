//===- Tuner.h - Offline micro-kernel schedule search ---------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search half of the autotuner: for one (m, n, k) problem, measure a
/// deterministic, budget-bounded sample of the planner's schedule space —
/// full-tile (MR, NR) candidates crossed with cache-blocking variants
/// around the analytical model's (MC, NC, KC) and with the compute-unroll
/// toggle — through the same pooled Engine execution path production
/// traffic uses, and persist any winner that beats the analytical model's
/// own measured choice into the prior database (PriorDb.h).
///
/// The never-lose contract starts here: every stored record carries the
/// model baseline measured in the same process, on the same data, under
/// the same time budget, and a candidate is only stored when it beats that
/// baseline by at least TuneOptions::MinMargin. The planner re-checks the
/// stored margin on every lookup, so even a record that aged badly cannot
/// drag a shape below the model.
///
/// Determinism: the candidate sample order is drawn from a seeded
/// SplitMix64 Fisher-Yates (EXO_TUNE_SEED), so two runs with the same
/// seed, budget, and machine enumerate the same schedules. Measured GFLOPS still vary with
/// machine load — only the *search trajectory* is reproducible, which is
/// what the deterministic-seed tests pin down.
///
/// Knobs (all read by tuneOptionsFromEnv): EXO_TUNE_BUDGET,
/// EXO_TUNE_SECONDS, EXO_TUNE_SEED. See docs/TUNING.md.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_TUNER_H
#define GEMM_TUNER_H

#include "exo/support/Error.h"
#include "gemm/PriorDb.h"

#include <cstdint>
#include <string>
#include <vector>

namespace exo {
class IsaLib;
}

namespace gemm {

struct TuneOptions {
  /// Max schedule candidates measured per shape (model baseline excluded).
  int64_t Budget = 24;
  /// Min wall time each candidate runs for (repetitions amortize timer
  /// noise on small shapes).
  double Seconds = 0.05;
  /// Search-order seed; same seed + budget => same candidate sequence.
  uint64_t Seed = 0xE40;
  /// Team size measurements use (records store it; 1 = serial).
  int64_t Threads = 1;
  /// Relative improvement over the model baseline a winner must show
  /// before it is persisted (0.05 = 5%). Below typical timer noise a
  /// "winner" is a coin flip that will embarrass the database at serve
  /// time. Non-positive stores any winner.
  double MinMargin = 0.05;
  /// Restrict candidate tiles to this library's vector width (nullptr:
  /// every host-admissible tile).
  const exo::IsaLib *Isa = nullptr;
  /// Element type the stored record is keyed under. Measurements always
  /// run the f32 engine path: for f16/bf16 that is the very code a typed
  /// plan executes (f32 kernels over convert-packed panels — pack overhead
  /// differs, kernel choice does not), so the measured tile ranking
  /// transfers, and the record only ever feeds plans of this dtype.
  /// I8I32 is rejected by tuneShape (fixed tile; nothing to search).
  DType Dtype = DType::F32;
};

/// Defaults overridden by EXO_TUNE_BUDGET / EXO_TUNE_SECONDS /
/// EXO_TUNE_SEED (checked parses, see Env.h).
TuneOptions tuneOptionsFromEnv();

/// One schedule candidate's measurement (the tune log benches and the CLI
/// print).
struct TuneSample {
  int64_t MR = 0, NR = 0;
  int64_t MC = 0, NC = 0, KC = 0; ///< 0 = the analytical blocking
  bool UnrollCompute = false;
  double Gflops = 0;
};

/// The outcome of tuning one shape.
struct TuneResult {
  int64_t M = 0, N = 0, K = 0;
  /// The analytical model's own choice, measured like every candidate.
  int64_t ModelMR = 0, ModelNR = 0;
  double ModelGflops = 0;
  /// The best-measured schedule (equals the model's when nothing beat it).
  TuneSample Best;
  /// True when Best cleared MinMargin and was persisted to the database.
  bool Stored = false;
  /// The record as persisted (valid when Stored).
  PriorRecord Record;
  /// Every candidate measured, in search order (model baseline first).
  std::vector<TuneSample> Samples;
};

/// The candidate schedules tuneShape would measure for this shape under
/// \p O, in deterministic search order, before budget truncation applies
/// on top. Exposed so tests can pin the seed -> sequence mapping without
/// paying for measurements.
std::vector<TuneSample> tuneCandidates(int64_t M, int64_t N, int64_t K,
                                       const TuneOptions &O);

/// Tunes one shape and stores any qualifying winner into \p Db (nullptr:
/// PriorDb::global()). Fails when no generated kernel is available (the
/// Auto series would degrade every candidate to the same portable kernel,
/// making the measurements meaningless) or when the shape is degenerate.
exo::Expected<TuneResult> tuneShape(int64_t M, int64_t N, int64_t K,
                                    const TuneOptions &O = tuneOptionsFromEnv(),
                                    PriorDb *Db = nullptr);

} // namespace gemm

#endif // GEMM_TUNER_H
