//===- MicroKernel.h - Micro-kernel ABI and provider interface ------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The macro-kernel is agnostic about where micro-kernels come from; a
/// KernelProvider supplies them. The three providers in this repository
/// mirror the paper's series:
///
///   - FixedProvider(hand kernel):   "NEON"/"BLIS" series — one monolithic
///     kernel; edge tiles go through a zero-padded scratch tile.
///   - ExoProvider:                  "EXO" series — a generated kernel per
///     (mr_eff, nr_eff) shape, built on demand by the ukr registry.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_MICROKERNEL_H
#define GEMM_MICROKERNEL_H

#include <cstdint>
#include <optional>

namespace gemm {

/// C tile (NR x MR, row stride Ldc) += Ac panel (KC x MR) * Bc panel
/// (KC x NR). Identical to ukr::MicroKernelF32.
using KernelFn = void (*)(int64_t Kc, int64_t Ldc, const float *Ac,
                          const float *Bc, float *C);

struct MicroKernel {
  int64_t MR = 0;
  int64_t NR = 0;
  KernelFn Fn = nullptr;
  const char *Name = "";
  /// True when Fn is the portable stand-in an async provider hands out
  /// while the specialized kernel compiles; the Engine marks plans built
  /// over fallbacks provisional and re-resolves them once warm.
  bool IsFallback = false;
};

/// See file comment.
class KernelProvider {
public:
  virtual ~KernelProvider();

  /// The full-tile kernel (defines the blocking mr x nr).
  virtual MicroKernel main() = 0;

  /// A kernel specialized to an edge tile shape; std::nullopt directs the
  /// macro-kernel to the scratch-tile fallback.
  virtual std::optional<MicroKernel> edge(int64_t MrEff, int64_t NrEff) = 0;

  virtual const char *name() const = 0;
};

/// Wraps one monolithic kernel (no edge specialization).
class FixedProvider final : public KernelProvider {
public:
  FixedProvider(MicroKernel K, const char *ProviderName)
      : K(K), ProviderName(ProviderName) {}

  MicroKernel main() override { return K; }
  std::optional<MicroKernel> edge(int64_t, int64_t) override {
    return std::nullopt;
  }
  const char *name() const override { return ProviderName; }

private:
  MicroKernel K;
  const char *ProviderName;
};

} // namespace gemm

#endif // GEMM_MICROKERNEL_H
