//===- Pack.h - GotoBLAS packing routines ---------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two packing routines of the BLIS macro-kernel (paper Fig. 1/2). Both
/// produce panel-major buffers the micro-kernel reads with unit stride:
///
///   packA: an mc x kc block of column-major A becomes ceil(mc/mr) panels,
///          panel p holding rows [p*mr, p*mr + mr) as a kc x mr matrix
///          (k-major), scaled by alpha. Panel capacity is always kc*mr
///          elements; a short edge panel is either packed *tight* (kc x
///          mr_eff, for dispatch to a specialized edge kernel) or
///          zero-padded to full width (for a monolithic kernel + scratch
///          tile).
///   packB: symmetric, nr-wide panels of a kc x nc block of B.
///
/// Two dtype-specific families extend the layout (docs/PRECISION.md):
///
///   convert-pack: f16/bf16 storage upconverted to *f32 panels* with the
///          identical layout, so the existing f32 micro-kernels consume
///          half-precision operands unchanged (accumulation is f32 by
///          construction — the dot-unit contract).
///   i8 K-grouped pack: the VNNI/sdot layout. Panels group the k dimension
///          in quads (I8KGroup): element (g, i, kk) of an A panel sits at
///          Panel[g*mr*4 + i*4 + kk], i.e. each micro-row contributes 4
///          consecutive k values — exactly one dot-instruction operand.
///          Short edges and the K remainder are always zero-padded (zeros
///          are exact in integer dot products).
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_PACK_H
#define GEMM_PACK_H

#include "gemm/DType.h"

#include <cstdint>

namespace gemm {

/// How edge panels are laid out (see file comment).
enum class EdgePack : uint8_t { Tight, ZeroPad };

/// Packs A[ic:ic+mc, pc:pc+kc] (column-major, leading dimension lda) into
/// \p Buf. Caller sizes Buf as ceil(mc/mr)*kc*mr floats.
void packA(const float *A, int64_t Lda, int64_t Mc, int64_t Kc, int64_t Mr,
           float Alpha, EdgePack Mode, float *Buf);

/// Packs B[pc:pc+kc, jc:jc+nc] (column-major, leading dimension ldb) into
/// \p Buf. Caller sizes Buf as ceil(nc/nr)*kc*nr floats.
void packB(const float *B, int64_t Ldb, int64_t Kc, int64_t Nc, int64_t Nr,
           float Alpha, EdgePack Mode, float *Buf);

/// Generalized variants over arbitrary element strides: element (i, k) of
/// the logical mc x kc block sits at A[i*RowStride + k*ColStride]. These
/// implement the BLAS transpose cases — a transposed operand is just the
/// swapped stride pair, packed identically (packing absorbs the transpose,
/// as in BLIS).
void packAStrided(const float *A, int64_t RowStride, int64_t ColStride,
                  int64_t Mc, int64_t Kc, int64_t Mr, float Alpha,
                  EdgePack Mode, float *Buf);
void packBStrided(const float *B, int64_t RowStride, int64_t ColStride,
                  int64_t Kc, int64_t Nc, int64_t Nr, float Alpha,
                  EdgePack Mode, float *Buf);

/// Convert-packs for f16/bf16 storage (\p Ty selects the decoder): identical
/// panel layout to packAStrided/packBStrided but the source elements are
/// raw 16-bit halves upconverted to f32 (alpha applied in f32). Only the
/// ZeroPad layout is produced — half-precision plans have no specialized
/// edge kernels.
void packAConvStrided(DType Ty, const uint16_t *A, int64_t RowStride,
                      int64_t ColStride, int64_t Mc, int64_t Kc, int64_t Mr,
                      float Alpha, float *Buf);
void packBConvStrided(DType Ty, const uint16_t *B, int64_t RowStride,
                      int64_t ColStride, int64_t Kc, int64_t Nc, int64_t Nr,
                      float Alpha, float *Buf);

/// K-grouped int8 packs (see file comment). Caller sizes Buf as
/// ceil(mc/mr) * ceil(kc/4)*4 * mr bytes (resp. nc/nr). No alpha: integer
/// scaling happens exactly at i32 copy-out, not per-element at pack time.
void packAI8Strided(const int8_t *A, int64_t RowStride, int64_t ColStride,
                    int64_t Mc, int64_t Kc, int64_t Mr, int8_t *Buf);
void packBI8Strided(const int8_t *B, int64_t RowStride, int64_t ColStride,
                    int64_t Kc, int64_t Nc, int64_t Nr, int8_t *Buf);

} // namespace gemm

#endif // GEMM_PACK_H
