//===- Pack.h - GotoBLAS packing routines ---------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two packing routines of the BLIS macro-kernel (paper Fig. 1/2). Both
/// produce panel-major buffers the micro-kernel reads with unit stride:
///
///   packA: an mc x kc block of column-major A becomes ceil(mc/mr) panels,
///          panel p holding rows [p*mr, p*mr + mr) as a kc x mr matrix
///          (k-major), scaled by alpha. Panel capacity is always kc*mr
///          elements; a short edge panel is either packed *tight* (kc x
///          mr_eff, for dispatch to a specialized edge kernel) or
///          zero-padded to full width (for a monolithic kernel + scratch
///          tile).
///   packB: symmetric, nr-wide panels of a kc x nc block of B.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_PACK_H
#define GEMM_PACK_H

#include <cstdint>

namespace gemm {

/// How edge panels are laid out (see file comment).
enum class EdgePack : uint8_t { Tight, ZeroPad };

/// Packs A[ic:ic+mc, pc:pc+kc] (column-major, leading dimension lda) into
/// \p Buf. Caller sizes Buf as ceil(mc/mr)*kc*mr floats.
void packA(const float *A, int64_t Lda, int64_t Mc, int64_t Kc, int64_t Mr,
           float Alpha, EdgePack Mode, float *Buf);

/// Packs B[pc:pc+kc, jc:jc+nc] (column-major, leading dimension ldb) into
/// \p Buf. Caller sizes Buf as ceil(nc/nr)*kc*nr floats.
void packB(const float *B, int64_t Ldb, int64_t Kc, int64_t Nc, int64_t Nr,
           float Alpha, EdgePack Mode, float *Buf);

/// Generalized variants over arbitrary element strides: element (i, k) of
/// the logical mc x kc block sits at A[i*RowStride + k*ColStride]. These
/// implement the BLAS transpose cases — a transposed operand is just the
/// swapped stride pair, packed identically (packing absorbs the transpose,
/// as in BLIS).
void packAStrided(const float *A, int64_t RowStride, int64_t ColStride,
                  int64_t Mc, int64_t Kc, int64_t Mr, float Alpha,
                  EdgePack Mode, float *Buf);
void packBStrided(const float *B, int64_t RowStride, int64_t ColStride,
                  int64_t Kc, int64_t Nc, int64_t Nr, float Alpha,
                  EdgePack Mode, float *Buf);

} // namespace gemm

#endif // GEMM_PACK_H
