//===- ThreadPool.h - Reusable worker pool for the macro-kernel -----------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lazily-initialized, process-wide pool of persistent worker threads for
/// the parallel macro-kernel (Gemm.cpp). The design goals, in order
/// (docs/CONCURRENCY.md is the full contract):
///
///   1. Zero cost when unused: no thread is spawned until the first call
///      that needs a worker, so single-threaded runs (the paper's
///      methodology, and the default when EXO_GEMM_THREADS is unset) are
///      byte-for-byte the sequential driver.
///   2. Reusable: workers persist across GEMM calls — a serving workload
///      issuing thousands of small GEMMs must not pay thread creation per
///      call. The pool only ever grows, up to the largest team requested.
///   3. Concurrent teams on disjoint workers: two callers can each run a
///      team at the same time as long as enough workers are idle. Each
///      worker belongs to at most one team at a time; teams never share a
///      worker, so every TeamBarrier member is genuinely co-scheduled.
///   4. Fork-join with the caller participating: parallel(N, Body) runs
///      Body(0) on the calling thread and Body(1..N-1) on workers, and
///      returns when all N are done. A parallel() call issued from inside
///      a running job of the same pool (re-entrancy) is detected and
///      degrades to inline sequential execution — see parallel() below.
///
/// Two admission paths share the worker set:
///
///   - parallel(N, ...) *guarantees* a full team of N: when fewer than
///     N - 1 workers are idle it waits, FIFO, until enough drain. Waiters
///     are served strictly in arrival order so a stream of small teams
///     cannot starve one large request (waiter fairness).
///   - tryReserve(...) *never waits*: it claims however many workers are
///     idle right now (possibly zero) up to the requested width, and it
///     refuses to touch workers the head FIFO waiter is owed. This is the
///     governor's path (Governor.h): a governed GEMM shrinks its team
///     under contention instead of queuing behind it.
///
/// TeamBarrier is the in-job synchronization primitive: a central
/// generation-counting barrier sized to the team, used by the driver to
/// separate the cooperative packB / beta pre-scale phase from the compute
/// phase of each (jc, pc) iteration.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_THREADPOOL_H
#define GEMM_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gemm {

/// See file comment.
class ThreadPool {
public:
  /// The process-wide pool used by blisGemmT.
  static ThreadPool &global();

  ThreadPool() = default;
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Raw job signature: Fn(Ctx, Tid). The pointer-plus-context form exists
  /// so the steady-state GEMM hot path (Engine's cached plans) can dispatch
  /// a team without constructing a std::function — the std::function
  /// overload below may allocate for capturing lambdas.
  using ParallelFn = void (*)(void *Ctx, int64_t Tid);

  /// A claim on specific idle workers, produced by tryReserve() and
  /// consumed by runTeam() (which dispatches on exactly those workers) or
  /// release() (which returns them unused). Value-semantically a small
  /// fixed array of worker indices; movable only in the trivial sense of
  /// being copyable before consumption. A non-empty Reservation must be
  /// consumed before it goes out of scope or its workers leak (debug
  /// builds assert in ~Reservation via the pool bookkeeping staying
  /// non-zero; release() is cheap — call it).
  struct Reservation {
    static constexpr int64_t CapSlots = 64;
    int32_t Slots[CapSlots];
    int64_t Count = 0;
  };

  /// Runs Fn(Ctx, Tid) for Tid in [0, NThreads): Tid 0 on the calling
  /// thread, the rest on pool workers (spawned on first use, kept forever).
  /// Returns when every Tid has completed. NThreads <= 1 calls Fn(Ctx, 0)
  /// inline without touching any synchronization. Concurrent calls from
  /// different threads are safe and run on disjoint workers when enough
  /// are idle; otherwise the caller waits its FIFO turn.
  ///
  /// Re-entrancy: a call made from a thread already running a job of this
  /// pool would deadlock (the outer team is holding the very workers the
  /// inner call waits for). Such calls are detected via a thread-local
  /// marker and degrade to inline execution: Fn(Ctx, 0..NThreads-1) runs
  /// sequentially on the calling thread. This is only correct for jobs
  /// whose Tids do not synchronize with each other (no TeamBarrier); the
  /// GEMM driver guarantees that by collapsing nested teams to size 1
  /// before dispatching (see executeGemm). Performs no heap allocation
  /// beyond one-time worker spawning.
  void parallel(int64_t NThreads, ParallelFn Fn, void *Ctx);

  /// Claims up to \p Want currently-idle workers and records them in \p R
  /// (appending to any prior claim is not supported: R must be empty).
  /// Never blocks and never waits: under contention it claims fewer than
  /// Want, possibly zero. New workers are spawned only while the pool has
  /// fewer than \p SpawnCap total; an explicit parallel() may already have
  /// grown the pool past that, in which case existing idle workers are
  /// still claimable. Workers owed to the head FIFO waiter of parallel()
  /// are never claimed (waiter fairness). Returns R.Count.
  int64_t tryReserve(int64_t Want, int64_t SpawnCap, Reservation &R);

  /// Returns the workers of \p R to the idle set without running anything.
  /// R becomes empty. No-op on an empty reservation.
  void release(Reservation &R);

  /// Runs Fn(Ctx, Tid) for Tid in [0, R.Count]: Tid 0 on the calling
  /// thread, Tid I on the worker R.Slots[I-1]. Returns when every member
  /// has completed; the reservation is consumed (R becomes empty and its
  /// workers are idle again). An empty reservation runs Fn(Ctx, 0) inline.
  /// Re-entrant use is a caller bug: reserve only from outside pool jobs
  /// (the Engine checks inParallel() before taking the governed path).
  void runTeam(Reservation &R, ParallelFn Fn, void *Ctx);

  /// True iff the calling thread is currently executing a job of this pool
  /// (i.e. a parallel() or runTeam() body, on the caller's thread or a
  /// worker). Used by the GEMM driver to collapse nested teams instead of
  /// blocking.
  bool inParallel() const;

  /// Convenience overload wrapping \p Body in the raw form above.
  void parallel(int64_t NThreads, const std::function<void(int64_t)> &Body);

  /// Workers currently alive (high-water mark of demand).
  int64_t workerCount() const;

  /// Workers currently claimed by a reservation or running a team body —
  /// the live-occupancy input to the governor's decision.
  int64_t busyWorkers() const;

private:
  /// One fork-join dispatch, shared by parallel() and runTeam(). Lives on
  /// the dispatching caller's stack; Remaining is guarded by Mu.
  struct TeamCtl {
    ParallelFn Fn = nullptr;
    void *Ctx = nullptr;
    int64_t Remaining = 0;
  };

  /// Per-worker assignment slot, guarded by Mu.
  struct Slot {
    TeamCtl *Team = nullptr; ///< team to run next / running now
    int64_t Tid = 0;         ///< this worker's Tid within Team
    bool Claimed = false;    ///< reserved (or running) — not idle
  };

  /// FIFO queue node for a parallel() caller short on workers; lives on
  /// the waiting caller's stack.
  struct Waiter {
    int64_t Need = 0;
    Waiter *Next = nullptr;
  };

  void workerLoop(int64_t WorkerIdx);
  /// Spawns workers until at least \p Target exist (Mu held).
  void ensureWorkersLocked(int64_t Target);
  /// Idle = spawned and not claimed (Mu held).
  int64_t idleLocked() const {
    return static_cast<int64_t>(Slots.size()) - ClaimedCount;
  }
  /// Claims \p Count idle workers, assigning them Tids Base.. (Mu held).
  void claimAndAssignLocked(int64_t Count, TeamCtl *Team, int64_t TidBase);

  mutable std::mutex Mu;
  std::condition_variable CvWork;   ///< wakes workers: a slot was assigned
  std::condition_variable CvDone;   ///< wakes dispatchers: a team drained
  std::condition_variable CvTicket; ///< wakes FIFO waiters: workers freed
  std::vector<std::thread> Workers;
  std::vector<Slot> Slots; ///< parallel to Workers
  int64_t ClaimedCount = 0;
  Waiter *WaitHead = nullptr; ///< FIFO queue of short parallel() callers
  Waiter *WaitTail = nullptr;
  bool Stop = false;
};

/// Generation-counting central barrier for a fixed-size team. All N
/// participants must call arriveAndWait() the same number of times; the
/// last arrival releases the rest. Trivially reusable (phase flips).
class TeamBarrier {
public:
  explicit TeamBarrier(int64_t N) : Count(N), Waiting(N) {}

  void arriveAndWait() {
    std::unique_lock<std::mutex> Lock(Mu);
    uint64_t MyPhase = Phase;
    if (--Waiting == 0) {
      Waiting = Count;
      ++Phase;
      Cv.notify_all();
      return;
    }
    Cv.wait(Lock, [&] { return Phase != MyPhase; });
  }

private:
  std::mutex Mu;
  std::condition_variable Cv;
  const int64_t Count;
  int64_t Waiting;
  uint64_t Phase = 0;
};

/// Resolves a GemmPlan::Threads value to a concrete team size:
///   > 0          that many threads;
///   0 (default)  EXO_GEMM_THREADS — unset/empty means 1 (the sequential
///                driver, preserving the paper's single-core methodology);
///                "auto" or "0" means std::thread::hardware_concurrency().
/// Anything unparsable resolves to 1. Exposed for bench reporting.
int64_t resolveGemmThreads(int64_t PlanThreads);

} // namespace gemm

#endif // GEMM_THREADPOOL_H
