//===- ThreadPool.h - Reusable worker pool for the macro-kernel -----------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lazily-initialized, process-wide pool of persistent worker threads for
/// the parallel macro-kernel (Gemm.cpp). The design goals, in order:
///
///   1. Zero cost when unused: no thread is spawned until the first
///      parallel(N > 1, ...) call, so single-threaded runs (the paper's
///      methodology, and the default when EXO_GEMM_THREADS is unset) are
///      byte-for-byte the sequential driver.
///   2. Reusable: workers persist across GEMM calls — a serving workload
///      issuing thousands of small GEMMs must not pay thread creation per
///      call. The pool only ever grows, up to the largest team requested.
///   3. Fork-join with the caller participating: parallel(N, Body) runs
///      Body(0) on the calling thread and Body(1..N-1) on workers, and
///      returns when all N are done. One job at a time; a parallel() call
///      issued from inside a running job of the same pool (re-entrancy) is
///      detected and degrades to inline sequential execution — see
///      parallel() below.
///
/// TeamBarrier is the in-job synchronization primitive: a central
/// generation-counting barrier sized to the team, used by the driver to
/// separate the cooperative packB / beta pre-scale phase from the compute
/// phase of each (jc, pc) iteration.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_THREADPOOL_H
#define GEMM_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gemm {

/// See file comment.
class ThreadPool {
public:
  /// The process-wide pool used by blisGemmT.
  static ThreadPool &global();

  ThreadPool() = default;
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Raw job signature: Fn(Ctx, Tid). The pointer-plus-context form exists
  /// so the steady-state GEMM hot path (Engine's cached plans) can dispatch
  /// a team without constructing a std::function — the std::function
  /// overload below may allocate for capturing lambdas.
  using ParallelFn = void (*)(void *Ctx, int64_t Tid);

  /// Runs Fn(Ctx, Tid) for Tid in [0, NThreads): Tid 0 on the calling
  /// thread, the rest on pool workers (spawned on first use, kept forever).
  /// Returns when every Tid has completed. NThreads <= 1 calls Fn(Ctx, 0)
  /// inline without touching any synchronization. Concurrent calls from
  /// different threads are safe but serialize (one job at a time).
  ///
  /// Re-entrancy: a call made from a thread already running a job of this
  /// pool used to deadlock (the caller blocks on JobMu held — transitively —
  /// by its own job, or a worker's nested wait keeps Remaining from ever
  /// reaching 0). Such calls are now detected via a thread-local marker and
  /// degrade to inline execution: Fn(Ctx, 0..NThreads-1) runs sequentially
  /// on the calling thread. This is only correct for jobs whose Tids do not
  /// synchronize with each other (no TeamBarrier); the GEMM driver
  /// guarantees that by collapsing nested teams to size 1 before
  /// dispatching (see executeGemm). Performs no heap allocation beyond
  /// one-time worker spawning.
  void parallel(int64_t NThreads, ParallelFn Fn, void *Ctx);

  /// True iff the calling thread is currently executing a job of this pool
  /// (i.e. a parallel() body, on the caller's thread or a worker). Used by
  /// the GEMM driver to collapse nested teams instead of blocking.
  bool inParallel() const;

  /// Convenience overload wrapping \p Body in the raw form above.
  void parallel(int64_t NThreads, const std::function<void(int64_t)> &Body);

  /// Workers currently alive (high-water mark of NThreads - 1).
  int64_t workerCount() const;

private:
  void workerLoop(int64_t WorkerIdx);

  std::mutex JobMu; ///< admits one parallel() call at a time
  mutable std::mutex Mu;
  std::condition_variable CvWork; ///< signals a new job (Gen bumped)
  std::condition_variable CvDone; ///< signals job completion
  std::vector<std::thread> Workers;
  ParallelFn JobFn = nullptr;
  void *JobCtx = nullptr;
  int64_t JobThreads = 0; ///< team size of the current job (incl. caller)
  int64_t Remaining = 0;  ///< participating workers not yet finished
  uint64_t Gen = 0;       ///< bumped once per job
  bool Stop = false;
};

/// Generation-counting central barrier for a fixed-size team. All N
/// participants must call arriveAndWait() the same number of times; the
/// last arrival releases the rest. Trivially reusable (phase flips).
class TeamBarrier {
public:
  explicit TeamBarrier(int64_t N) : Count(N), Waiting(N) {}

  void arriveAndWait() {
    std::unique_lock<std::mutex> Lock(Mu);
    uint64_t MyPhase = Phase;
    if (--Waiting == 0) {
      Waiting = Count;
      ++Phase;
      Cv.notify_all();
      return;
    }
    Cv.wait(Lock, [&] { return Phase != MyPhase; });
  }

private:
  std::mutex Mu;
  std::condition_variable Cv;
  const int64_t Count;
  int64_t Waiting;
  uint64_t Phase = 0;
};

/// Resolves a GemmPlan::Threads value to a concrete team size:
///   > 0          that many threads;
///   0 (default)  EXO_GEMM_THREADS — unset/empty means 1 (the sequential
///                driver, preserving the paper's single-core methodology);
///                "auto" or "0" means std::thread::hardware_concurrency().
/// Anything unparsable resolves to 1. Exposed for bench reporting.
int64_t resolveGemmThreads(int64_t PlanThreads);

} // namespace gemm

#endif // GEMM_THREADPOOL_H
