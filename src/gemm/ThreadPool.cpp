//===- ThreadPool.cpp -----------------------------------------------------===//

#include "gemm/ThreadPool.h"

#include "exo/support/Env.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace gemm;

namespace {
/// The pool whose job the current thread is executing, if any. Set around
/// every job body (caller Tid 0 and workers alike) so parallel() can detect
/// re-entrant calls and inParallel() can answer from any thread.
thread_local const ThreadPool *CurrentJobPool = nullptr;

/// RAII setter restoring the previous value (re-entrant degradation can
/// itself be nested).
struct JobPoolScope {
  const ThreadPool *Prev;
  explicit JobPoolScope(const ThreadPool *P) : Prev(CurrentJobPool) {
    CurrentJobPool = P;
  }
  ~JobPoolScope() { CurrentJobPool = Prev; }
};
} // namespace

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool;
  return Pool;
}

bool ThreadPool::inParallel() const { return CurrentJobPool == this; }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  CvWork.notify_all();
  CvTicket.notify_all(); // queued callers fall back to inline execution
  for (std::thread &T : Workers)
    T.join();
}

int64_t ThreadPool::workerCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return static_cast<int64_t>(Workers.size());
}

int64_t ThreadPool::busyWorkers() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return ClaimedCount;
}

void ThreadPool::ensureWorkersLocked(int64_t Target) {
  while (static_cast<int64_t>(Workers.size()) < Target) {
    int64_t Idx = static_cast<int64_t>(Workers.size());
    Slots.emplace_back();
    Workers.emplace_back([this, Idx] { workerLoop(Idx); });
  }
}

void ThreadPool::claimAndAssignLocked(int64_t Count, TeamCtl *Team,
                                      int64_t TidBase) {
  int64_t Assigned = 0;
  for (size_t I = 0; I < Slots.size() && Assigned < Count; ++I) {
    if (Slots[I].Claimed)
      continue;
    Slots[I].Claimed = true;
    Slots[I].Team = Team;
    Slots[I].Tid = TidBase + Assigned;
    ++ClaimedCount;
    ++Assigned;
  }
  assert(Assigned == Count && "claimAndAssignLocked: not enough idle workers");
}

void ThreadPool::workerLoop(int64_t WorkerIdx) {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    CvWork.wait(Lock, [&] { return Stop || Slots[WorkerIdx].Team != nullptr; });
    if (Stop)
      return;
    TeamCtl *T = Slots[WorkerIdx].Team;
    int64_t Tid = Slots[WorkerIdx].Tid;
    Lock.unlock();
    {
      JobPoolScope Scope(this);
      T->Fn(T->Ctx, Tid);
    }
    Lock.lock();
    Slots[WorkerIdx].Team = nullptr;
    Slots[WorkerIdx].Claimed = false;
    --ClaimedCount;
    if (--T->Remaining == 0)
      CvDone.notify_all();
    // A freed worker may complete the head FIFO waiter's quota, or open a
    // window for tryReserve (which polls, so only waiters need waking).
    if (WaitHead)
      CvTicket.notify_all();
  }
}

void ThreadPool::parallel(int64_t NThreads, ParallelFn Fn, void *Ctx) {
  if (NThreads <= 1) {
    Fn(Ctx, 0);
    return;
  }
  // Re-entrant call: this thread is already inside a job of this pool, so
  // waiting for workers would deadlock (the outer team is holding them, and
  // it cannot finish until this call returns). Degrade to inline sequential
  // execution of every Tid. Only valid for bodies whose Tids do not
  // synchronize with each other — see the header.
  if (CurrentJobPool == this) {
    for (int64_t Tid = 0; Tid < NThreads; ++Tid)
      Fn(Ctx, Tid);
    return;
  }
  const int64_t Need = NThreads - 1;
  TeamCtl Ctl;
  Ctl.Fn = Fn;
  Ctl.Ctx = Ctx;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    ensureWorkersLocked(Need); // pool grows to the high-water mark
    if (WaitHead != nullptr || idleLocked() < Need) {
      // Not enough idle workers (or others arrived first): wait FIFO.
      // Strict arrival order plus tryReserve staying off the head waiter's
      // quota means a large team is never starved by a stream of small
      // ones. The node lives on this stack frame.
      Waiter Me;
      Me.Need = Need;
      if (WaitTail)
        WaitTail->Next = &Me;
      else
        WaitHead = &Me;
      WaitTail = &Me;
      CvTicket.wait(Lock,
                    [&] { return Stop || (WaitHead == &Me && idleLocked() >= Need); });
      WaitHead = Me.Next;
      if (!WaitHead)
        WaitTail = nullptr;
      else
        CvTicket.notify_all(); // the new head may already be satisfiable
      if (Stop) {
        // Process teardown with callers still queued: run inline rather
        // than hang (teams then must not use a TeamBarrier, which holds at
        // exit — matching the re-entrancy degrade contract).
        Lock.unlock();
        for (int64_t Tid = 0; Tid < NThreads; ++Tid)
          Fn(Ctx, Tid);
        return;
      }
    }
    Ctl.Remaining = Need;
    claimAndAssignLocked(Need, &Ctl, /*TidBase=*/1);
  }
  CvWork.notify_all();
  {
    JobPoolScope Scope(this);
    Fn(Ctx, 0);
  }
  std::unique_lock<std::mutex> Lock(Mu);
  CvDone.wait(Lock, [&] { return Ctl.Remaining == 0; });
}

int64_t ThreadPool::tryReserve(int64_t Want, int64_t SpawnCap,
                               Reservation &R) {
  assert(R.Count == 0 && "tryReserve: reservation already holds workers");
  if (Want <= 0)
    return 0;
  Want = std::min(Want, Reservation::CapSlots);
  std::lock_guard<std::mutex> Lock(Mu);
  // Spawn only within the cap; idle workers from past growth beyond it are
  // still usable (they exist either way).
  if (idleLocked() < Want && SpawnCap > 0)
    ensureWorkersLocked(
        std::min<int64_t>(SpawnCap, ClaimedCount + Want));
  // Leave the head FIFO waiter whole: never claim into its quota.
  int64_t Avail = idleLocked() - (WaitHead ? WaitHead->Need : 0);
  int64_t Take = std::max<int64_t>(0, std::min(Want, Avail));
  for (size_t I = 0; I < Slots.size() && R.Count < Take; ++I) {
    if (Slots[I].Claimed)
      continue;
    Slots[I].Claimed = true;
    Slots[I].Team = nullptr; // reserved, not yet dispatched
    ++ClaimedCount;
    R.Slots[R.Count++] = static_cast<int32_t>(I);
  }
  return R.Count;
}

void ThreadPool::release(Reservation &R) {
  if (R.Count == 0)
    return;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (int64_t I = 0; I < R.Count; ++I) {
      Slot &S = Slots[static_cast<size_t>(R.Slots[I])];
      assert(S.Claimed && S.Team == nullptr && "release: worker not reserved");
      S.Claimed = false;
      --ClaimedCount;
    }
  }
  R.Count = 0;
  CvTicket.notify_all();
}

void ThreadPool::runTeam(Reservation &R, ParallelFn Fn, void *Ctx) {
  if (R.Count == 0) {
    Fn(Ctx, 0);
    return;
  }
  TeamCtl Ctl;
  Ctl.Fn = Fn;
  Ctl.Ctx = Ctx;
  Ctl.Remaining = R.Count;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (int64_t I = 0; I < R.Count; ++I) {
      Slot &S = Slots[static_cast<size_t>(R.Slots[I])];
      assert(S.Claimed && S.Team == nullptr && "runTeam: worker not reserved");
      S.Team = &Ctl;
      S.Tid = I + 1;
    }
  }
  CvWork.notify_all();
  {
    JobPoolScope Scope(this);
    Fn(Ctx, 0);
  }
  std::unique_lock<std::mutex> Lock(Mu);
  CvDone.wait(Lock, [&] { return Ctl.Remaining == 0; });
  R.Count = 0; // workers freed themselves as they finished
}

void ThreadPool::parallel(int64_t NThreads,
                          const std::function<void(int64_t)> &Body) {
  parallel(
      NThreads,
      [](void *Ctx, int64_t Tid) {
        (*static_cast<const std::function<void(int64_t)> *>(Ctx))(Tid);
      },
      const_cast<void *>(static_cast<const void *>(&Body)));
}

int64_t gemm::resolveGemmThreads(int64_t PlanThreads) {
  if (PlanThreads > 0)
    return PlanThreads;
  const char *V = std::getenv("EXO_GEMM_THREADS");
  if (!V || !*V)
    return 1;
  auto Auto = [] {
    unsigned N = std::thread::hardware_concurrency();
    return static_cast<int64_t>(N > 0 ? N : 1);
  };
  if (std::strcmp(V, "auto") == 0)
    return Auto();
  // Unparsable or out-of-range values warn and stay sequential rather than
  // surprise-scale.
  long long N = exo::envInt("EXO_GEMM_THREADS", V, /*Default=*/1, /*Min=*/0,
                            /*Max=*/1 << 20);
  if (N == 0)
    return Auto();
  return static_cast<int64_t>(N);
}
