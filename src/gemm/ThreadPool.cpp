//===- ThreadPool.cpp -----------------------------------------------------===//

#include "gemm/ThreadPool.h"

#include "exo/support/Env.h"

#include <cstdlib>
#include <cstring>

using namespace gemm;

namespace {
/// The pool whose job the current thread is executing, if any. Set around
/// every job body (caller Tid 0 and workers alike) so parallel() can detect
/// re-entrant calls and inParallel() can answer from any thread.
thread_local const ThreadPool *CurrentJobPool = nullptr;

/// RAII setter restoring the previous value (re-entrant degradation can
/// itself be nested).
struct JobPoolScope {
  const ThreadPool *Prev;
  explicit JobPoolScope(const ThreadPool *P) : Prev(CurrentJobPool) {
    CurrentJobPool = P;
  }
  ~JobPoolScope() { CurrentJobPool = Prev; }
};
} // namespace

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool;
  return Pool;
}

bool ThreadPool::inParallel() const { return CurrentJobPool == this; }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  CvWork.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

int64_t ThreadPool::workerCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return static_cast<int64_t>(Workers.size());
}

void ThreadPool::workerLoop(int64_t WorkerIdx) {
  uint64_t SeenGen = 0;
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    CvWork.wait(Lock, [&] { return Stop || Gen != SeenGen; });
    if (Stop)
      return;
    SeenGen = Gen;
    // Workers beyond the job's team size sit this one out (the pool only
    // grows; a small job after a large one leaves the tail idle).
    if (WorkerIdx + 1 >= JobThreads)
      continue;
    ParallelFn MyFn = JobFn;
    void *MyCtx = JobCtx;
    Lock.unlock();
    {
      JobPoolScope Scope(this);
      MyFn(MyCtx, WorkerIdx + 1);
    }
    Lock.lock();
    if (--Remaining == 0)
      CvDone.notify_all();
  }
}

void ThreadPool::parallel(int64_t NThreads, ParallelFn Fn, void *Ctx) {
  if (NThreads <= 1) {
    Fn(Ctx, 0);
    return;
  }
  // Re-entrant call: this thread is already inside a job of this pool, so
  // blocking on JobMu would deadlock (Tid 0 holds it) or stall the outer
  // team (a worker's nested wait keeps the outer Remaining from draining).
  // Degrade to inline sequential execution of every Tid. Only valid for
  // bodies whose Tids do not synchronize with each other — see the header.
  if (CurrentJobPool == this) {
    for (int64_t Tid = 0; Tid < NThreads; ++Tid)
      Fn(Ctx, Tid);
    return;
  }
  // One job at a time: concurrent callers (independent GEMMs sharing the
  // global pool) serialize here, each still running its own team in
  // parallel once admitted.
  std::lock_guard<std::mutex> JobLock(JobMu);
  {
    std::unique_lock<std::mutex> Lock(Mu);
    // Lazy growth to the high-water mark.
    while (static_cast<int64_t>(Workers.size()) < NThreads - 1) {
      int64_t Idx = static_cast<int64_t>(Workers.size());
      Workers.emplace_back([this, Idx] { workerLoop(Idx); });
    }
    JobFn = Fn;
    JobCtx = Ctx;
    JobThreads = NThreads;
    Remaining = NThreads - 1;
    ++Gen;
  }
  CvWork.notify_all();
  {
    JobPoolScope Scope(this);
    Fn(Ctx, 0);
  }
  std::unique_lock<std::mutex> Lock(Mu);
  CvDone.wait(Lock, [&] { return Remaining == 0; });
  JobFn = nullptr;
  JobCtx = nullptr;
}

void ThreadPool::parallel(int64_t NThreads,
                          const std::function<void(int64_t)> &Body) {
  parallel(
      NThreads,
      [](void *Ctx, int64_t Tid) {
        (*static_cast<const std::function<void(int64_t)> *>(Ctx))(Tid);
      },
      const_cast<void *>(static_cast<const void *>(&Body)));
}

int64_t gemm::resolveGemmThreads(int64_t PlanThreads) {
  if (PlanThreads > 0)
    return PlanThreads;
  const char *V = std::getenv("EXO_GEMM_THREADS");
  if (!V || !*V)
    return 1;
  auto Auto = [] {
    unsigned N = std::thread::hardware_concurrency();
    return static_cast<int64_t>(N > 0 ? N : 1);
  };
  if (std::strcmp(V, "auto") == 0)
    return Auto();
  // Unparsable or out-of-range values warn and stay sequential rather than
  // surprise-scale.
  long long N = exo::envInt("EXO_GEMM_THREADS", V, /*Default=*/1, /*Min=*/0,
                            /*Max=*/1 << 20);
  if (N == 0)
    return Auto();
  return static_cast<int64_t>(N);
}
