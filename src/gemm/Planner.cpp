//===- Planner.cpp --------------------------------------------------------===//

#include "gemm/Planner.h"

#include "exo/support/Env.h"
#include "gemm/CacheModel.h"
#include "gemm/PriorDb.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

using namespace gemm;

const char *gemm::planSourceName(PlanSource S) {
  switch (S) {
  case PlanSource::Model:
    return "model";
  case PlanSource::Prior:
    return "prior";
  case PlanSource::Tuned:
    return "tuned";
  case PlanSource::Forced:
    return "forced";
  case PlanSource::Fixed:
    return "fixed";
  case PlanSource::Fallback:
    return "fallback";
  }
  return "model";
}

namespace {

/// Candidate full-tile shapes (host-vectorizable MR values). Shared with
/// standardShapeFamily's AllCandidates expansion and the tuner's search
/// space.
const std::pair<int64_t, int64_t> TileCandidates[] = {
    {8, 12}, {8, 8},  {8, 6},  {8, 4}, {16, 12}, {16, 8},
    {16, 6}, {16, 4}, {4, 12}, {4, 8}, {4, 4},   {24, 4},
};

} // namespace

bool gemm::tileAdmissible(int64_t Mr, int64_t Nr,
                          const exo::IsaLib *ForceIsa) {
  if (Mr <= 0 || Nr <= 0)
    return false;
  const exo::IsaLib *Isa = ForceIsa ? ForceIsa : ukr::bestIsaForMr(Mr);
  if (!Isa || Mr % Isa->lanes(exo::ScalarKind::F32) != 0)
    return false;
  // Register-pressure sanity: C tile + one A register + one broadcast
  // must fit 16 vector registers at the chosen width.
  int64_t Vecs = Mr / Isa->lanes(exo::ScalarKind::F32);
  return Nr * Vecs + Vecs + 1 <= 16;
}

std::vector<std::pair<int64_t, int64_t>>
gemm::plannerTileCandidates(const exo::IsaLib *ForceIsa) {
  std::vector<std::pair<int64_t, int64_t>> Out;
  for (auto [Mr, Nr] : TileCandidates)
    if (tileAdmissible(Mr, Nr, ForceIsa))
      Out.push_back({Mr, Nr});
  return Out;
}

std::pair<int64_t, int64_t>
gemm::pickTileForProblem(int64_t M, int64_t N, int64_t K,
                         const exo::IsaLib *ForceIsa) {
  // Estimated flops-per-load of an a x b tile update: 2ab FMAs per (a + b)
  // elements streamed from the packed panels.
  auto Eff = [](int64_t A, int64_t B) {
    if (A <= 0 || B <= 0)
      return 0.0;
    return 2.0 * static_cast<double>(A) * static_cast<double>(B) /
           static_cast<double>(A + B);
  };

  std::pair<int64_t, int64_t> Best = {8, 12};
  double BestScore = -1;
  for (auto [Mr, Nr] : TileCandidates) {
    if (!tileAdmissible(Mr, Nr, ForceIsa))
      continue;

    int64_t MEdge = M % Mr, NEdge = N % Nr;
    double FullM = static_cast<double>(M - MEdge) / M;
    double FullN = static_cast<double>(N - NEdge) / N;
    double EdgeM = static_cast<double>(MEdge) / M;
    double EdgeN = static_cast<double>(NEdge) / N;
    // Edge regions pay dispatch/packing overhead beyond their lower
    // flops-per-load, so they are further discounted; exact divisors win
    // near-ties.
    const double EdgeDiscount = 0.6;
    double Score = Eff(Mr, Nr) * FullM * FullN +
                   EdgeDiscount * (Eff(MEdge, Nr) * EdgeM * FullN +
                                   Eff(Mr, NEdge) * FullM * EdgeN +
                                   Eff(MEdge, NEdge) * EdgeM * EdgeN);
    if (K > 0) {
      // Depth-pass penalty from the cache model: every extra kc pass over
      // the packed panels re-streams A and C through L2, so a tile whose
      // analytical kc covers k in fewer passes wins near-ties.
      BlockSizes Bl =
          analyticalBlockSizes(CacheConfig::host(), Mr, Nr, sizeof(float));
      int64_t Kc = std::max<int64_t>(1, Bl.KC);
      double Passes = static_cast<double>((K + Kc - 1) / Kc);
      Score /= 1.0 + 0.02 * (Passes - 1.0);
    }
    if (Score > BestScore) {
      BestScore = Score;
      Best = {Mr, Nr};
    }
  }
  return Best;
}

namespace {

/// One parsed row of a baseline report, as far as the prior cares.
struct PriorRow {
  int64_t M = 0, N = 0, K = 0;
  int64_t Mr = 0, Nr = 0;
  double Value = 0;
  bool Higher = true;
};

/// Tolerant linear scan of a BENCH_*.json report. The schema is flat
/// enough that tracking a handful of exact key names suffices; rows start
/// at every "label" key (see benchutil::Reporter's emission). Anything
/// unparsable simply yields no rows — the prior is best-effort by design
/// (benchutil is a higher layer, so the planner cannot use its parser).
std::vector<PriorRow> scanPriorRows(const std::string &Text) {
  std::vector<PriorRow> Rows;
  PriorRow Cur;
  bool InRow = false;
  auto Flush = [&] {
    if (InRow && Cur.Mr > 0 && Cur.Nr > 0)
      Rows.push_back(Cur);
  };
  size_t Pos = 0;
  const size_t Len = Text.size();
  while (Pos < Len) {
    if (Text[Pos] != '"') {
      ++Pos;
      continue;
    }
    size_t End = Text.find('"', Pos + 1);
    if (End == std::string::npos)
      break;
    std::string Key = Text.substr(Pos + 1, End - Pos - 1);
    Pos = End + 1;
    while (Pos < Len && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos >= Len || Text[Pos] != ':')
      continue; // a string value, not a key
    ++Pos;
    while (Pos < Len && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Key == "label") {
      Flush();
      Cur = PriorRow();
      InRow = true;
      continue;
    }
    if (Pos < Len && Text[Pos] == '"') {
      size_t VEnd = Text.find('"', Pos + 1);
      if (VEnd == std::string::npos)
        break;
      if (Key == "better")
        Cur.Higher = Text.compare(Pos + 1, VEnd - Pos - 1, "higher") == 0;
      Pos = VEnd + 1;
      continue;
    }
    char *NumEnd = nullptr;
    double V = std::strtod(Text.c_str() + Pos, &NumEnd);
    if (NumEnd == Text.c_str() + Pos)
      continue; // object/array value; keep scanning inside it
    Pos = static_cast<size_t>(NumEnd - Text.c_str());
    if (Key == "m")
      Cur.M = static_cast<int64_t>(V);
    else if (Key == "n")
      Cur.N = static_cast<int64_t>(V);
    else if (Key == "k")
      Cur.K = static_cast<int64_t>(V);
    else if (Key == "mr")
      Cur.Mr = static_cast<int64_t>(V);
    else if (Key == "nr")
      Cur.Nr = static_cast<int64_t>(V);
    else if (Key == "value")
      Cur.Value = V;
  }
  Flush();
  return Rows;
}

std::string readWholeFile(const std::string &Path, bool &Ok) {
  Ok = false;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return {};
  Ok = true;
  std::string Text;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, Got);
  std::fclose(F);
  return Text;
}

} // namespace

bool gemm::lookupPlanPrior(const std::string &Path, int64_t M, int64_t N,
                           int64_t K, int64_t &MrOut, int64_t &NrOut,
                           const exo::IsaLib *ForceIsa,
                           uint64_t *RejectedOut) {
  bool Readable = false;
  std::string Text = readWholeFile(Path, Readable);
  if (!Readable)
    return false;

  bool Found = false;
  double BestValue = 0;
  for (const PriorRow &R : scanPriorRows(Text)) {
    if (!R.Higher || R.M != M || R.N != N || R.K != K)
      continue;
    // A measured row only wins when its tile is still admissible under the
    // chosen ISA (the baseline may come from another machine or another
    // kernel series). A shape-matching but inadmissible row used to be
    // skipped silently; it is now an accounted rejection.
    if (!tileAdmissible(R.Mr, R.Nr, ForceIsa)) {
      if (RejectedOut)
        ++*RejectedOut;
      continue;
    }
    if (!Found || R.Value > BestValue) {
      Found = true;
      BestValue = R.Value;
      MrOut = R.Mr;
      NrOut = R.Nr;
    }
  }
  return Found;
}

bool gemm::lookupPlanPrior(const std::string &Path, int64_t M, int64_t N,
                           int64_t K, int64_t &MrOut, int64_t &NrOut) {
  return lookupPlanPrior(Path, M, N, K, MrOut, NrOut, /*ForceIsa=*/nullptr,
                         /*RejectedOut=*/nullptr);
}

PlanChoice gemm::choosePlanWithDb(int64_t M, int64_t N, int64_t K,
                                  const exo::IsaLib *ForceIsa,
                                  const std::string &PriorPath, PriorDb *Db,
                                  PlanOutcome *Outcome, DType Ty) {
  // I8I32 never runs selection: the scalar dot has no vector width for the
  // screen or the model to reason about, and neither prior stage measures
  // integer kernels (see Planner.h).
  if (Ty == DType::I8I32)
    return PlanChoice::make(I8TileMR, I8TileNR, PlanSource::Model);

  // Stage 1: the autotuner's persistent prior database (dtype-keyed: an
  // f16 winner never plans a bf16 shape or vice versa).
  if (Db && Db->enabled()) {
    if (std::optional<PriorRecord> R = Db->lookup(M, N, K, Ty)) {
      // The never-lose gate: the record must beat its own measured model
      // baseline, and its tile must pass the same screen as every other
      // stage. Anything else falls through to the model.
      if (R->margin() > 0 && tileAdmissible(R->MR, R->NR, ForceIsa)) {
        PlanChoice C = PlanChoice::make(R->MR, R->NR, PlanSource::Tuned);
        if (R->MC > 0 && R->KC > 0 && R->NC > 0)
          C.Blocks = BlockSizes{R->MC, R->KC, R->NC};
        C.UnrollCompute = R->UnrollCompute;
        return C;
      }
      if (Outcome)
        ++Outcome->TunedRejected;
    }
  }

  // Stage 2: the exact-shape BENCH baseline prior. BENCH rows are f32
  // measurements; half-precision shapes skip straight to the model.
  std::string Path = Ty == DType::F32 ? PriorPath : std::string();
  if (Path.empty() && Ty == DType::F32) {
    const char *Env = std::getenv("EXO_GEMM_PLAN_PRIOR");
    if (Env && *Env)
      Path = Env;
  }
  if (!Path.empty()) {
    int64_t Mr = 0, Nr = 0;
    uint64_t Rejected = 0;
    bool Found = lookupPlanPrior(Path, M, N, K, Mr, Nr, ForceIsa, &Rejected);
    if (Rejected) {
      if (Outcome)
        Outcome->PriorRejected += Rejected;
      std::string WarnKey = "EXO_GEMM_PLAN_PRIOR@" + Path;
      if (!exo::env_impl::envAlreadyWarned(WarnKey.c_str()))
        std::fprintf(stderr,
                     "exo: plan prior %s: ignoring row(s) whose mr/nr is "
                     "not admissible under ISA '%s' (first at "
                     "%lldx%lldx%lld); falling back to %s\n",
                     Path.c_str(),
                     ForceIsa ? ForceIsa->name().c_str() : "host",
                     static_cast<long long>(M), static_cast<long long>(N),
                     static_cast<long long>(K),
                     Found ? "the best admissible row" : "the model");
    }
    if (Found)
      return PlanChoice::make(Mr, Nr, PlanSource::Prior);
  }

  // Stage 3: the analytical model.
  auto [Mr, Nr] = pickTileForProblem(M, N, K, ForceIsa);
  return PlanChoice::make(Mr, Nr, PlanSource::Model);
}

PlanChoice gemm::choosePlan(int64_t M, int64_t N, int64_t K,
                            const exo::IsaLib *ForceIsa,
                            const std::string &PriorPath,
                            PlanOutcome *Outcome, DType Ty) {
  return choosePlanWithDb(M, N, K, ForceIsa, PriorPath, &PriorDb::global(),
                          Outcome, Ty);
}

int64_t gemm::batchCrossoverBytes() {
  // Read per call (not statically cached) so tests and operators can flip
  // EXO_GEMM_BATCH_CROSSOVER between batches. The default is the cache
  // model's host L2: the largest footprint one core can keep private while
  // its siblings each run their own item.
  int64_t L2 = CacheConfig::host().L2.SizeBytes;
  if (L2 <= 0)
    L2 = 1 << 20;
  return exo::envInt("EXO_GEMM_BATCH_CROSSOVER",
                     std::getenv("EXO_GEMM_BATCH_CROSSOVER"),
                     /*Default=*/L2, /*Min=*/0,
                     /*Max=*/int64_t(1) << 40);
}

bool gemm::batchPrefersCrossItem(int64_t M, int64_t N, int64_t K,
                                 int64_t Threads, int64_t Items) {
  if (Threads <= 1 || Items <= 1)
    return false; // nothing to spread, or no one to spread it over
  // Per-item working set: the A and B operands plus the C block, as the
  // five-loop driver streams them. Wide arithmetic — callers pass raw
  // user dimensions.
  const double Floats = static_cast<double>(M) * static_cast<double>(K) +
                        static_cast<double>(K) * static_cast<double>(N) +
                        static_cast<double>(M) * static_cast<double>(N);
  return Floats * static_cast<double>(sizeof(float)) <=
         static_cast<double>(batchCrossoverBytes());
}

std::vector<ukr::UkrConfig> gemm::planKernelFamily(int64_t M, int64_t N,
                                                   int64_t K, DType Ty) {
  PlanChoice C =
      choosePlan(M, N, K, nullptr, "", nullptr, Ty);
  std::vector<ukr::UkrConfig> Out;
  if (Ty == DType::I8I32) {
    // The typed widening-accumulator kernel for the fixed i8 tile; no edge
    // family (non-f32 geometries always zero-pad; Planner.h).
    Out.push_back(ukr::shapeConfig(C.MR, C.NR, nullptr,
                                   /*UnrollCompute=*/false,
                                   exo::ScalarKind::I8));
    return Out;
  }
  Out.push_back(ukr::shapeConfig(C.MR, C.NR));
  if (Ty != DType::F32 || N <= 0)
    return Out;
  // The partial strip widths the five-loop driver will request for this
  // problem, replicating resolveEdgeKernels' enumeration over the standard
  // clamped blocking (nc need not be a multiple of nr, so several widths
  // can occur).
  BlockSizes Bl =
      analyticalBlockSizes(CacheConfig::host(), C.MR, C.NR, sizeof(float));
  auto RoundUp = [](int64_t V, int64_t Q) { return ((V + Q - 1) / Q) * Q; };
  const int64_t Nc =
      std::min(std::max<int64_t>(Bl.NC, C.NR), RoundUp(N, C.NR));
  std::set<int64_t> Widths;
  for (int64_t Jc = 0; Jc < N; Jc += Nc) {
    int64_t W = std::min(Nc, N - Jc) % C.NR;
    if (W != 0 && Widths.insert(W).second)
      Out.push_back(ukr::shapeConfig(C.MR, W));
  }
  return Out;
}

int64_t gemm::governorWidthForShape(
    int64_t M, int64_t N, int64_t K, int64_t MinWorkFlops, int64_t MaxWidth,
    const std::vector<GovernorCurvePoint> *Curve) {
  if (M <= 0 || N <= 0 || K <= 0)
    return 1;
  // Double arithmetic: 2mnk for large shapes would overflow int64.
  const double Flops = 2.0 * static_cast<double>(M) *
                       static_cast<double>(N) * static_cast<double>(K);
  return governorWidthForWork(Flops, MinWorkFlops, MaxWidth, Curve);
}

int64_t gemm::governorWidthForWork(
    double Flops, int64_t MinWorkFlops, int64_t MaxWidth,
    const std::vector<GovernorCurvePoint> *Curve) {
  if (MaxWidth <= 1 || !(Flops > 0))
    return 1;
  int64_t W = MaxWidth;
  if (MinWorkFlops > 0) {
    // Work floor: MinWorkFlops flops buy one team member each, so a
    // problem at or below the floor stays sequential and the ramp to full
    // width is linear in problem volume.
    const double Ramp = Flops / static_cast<double>(MinWorkFlops);
    if (Ramp < 1.0)
      return 1;
    W = std::min<int64_t>(W, static_cast<int64_t>(Ramp));
    if (W <= 1)
      return 1;
  }
  if (Curve && !Curve->empty()) {
    // Measured scaling: walk the curve (sorted by width) and keep the
    // widest measured point <= W that still parallelizes well — speedup
    // at >= 50% efficiency AND strictly above the previous point (a flat
    // or falling curve means the extra threads only add barrier time).
    int64_t Best = 1;
    double PrevSpeedup = 0;
    for (const GovernorCurvePoint &P : *Curve) {
      if (P.Width > W)
        break;
      if (P.Speedup >= 0.5 * static_cast<double>(P.Width) &&
          P.Speedup > PrevSpeedup)
        Best = std::max(Best, P.Width);
      PrevSpeedup = std::max(PrevSpeedup, P.Speedup);
    }
    W = std::min(W, Best);
  }
  return std::max<int64_t>(1, W);
}
