//===- DType.cpp - GEMM element type traits and conversions ---------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "gemm/DType.h"

#include <cmath>
#include <cstring>

namespace gemm {

const char *dtypeName(DType Ty) {
  switch (Ty) {
  case DType::F32:
    return "f32";
  case DType::F16:
    return "f16";
  case DType::BF16:
    return "bf16";
  case DType::I8I32:
    return "i8";
  }
  return "?";
}

bool parseDType(const std::string &Name, DType &Out) {
  if (Name == "f32") {
    Out = DType::F32;
    return true;
  }
  if (Name == "f16") {
    Out = DType::F16;
    return true;
  }
  if (Name == "bf16") {
    Out = DType::BF16;
    return true;
  }
  if (Name == "i8" || Name == "i8i32") {
    Out = DType::I8I32;
    return true;
  }
  return false;
}

unsigned dtypeInBytes(DType Ty) {
  switch (Ty) {
  case DType::F32:
    return 4;
  case DType::F16:
  case DType::BF16:
    return 2;
  case DType::I8I32:
    return 1;
  }
  return 4;
}

unsigned dtypeOutBytes(DType Ty) {
  switch (Ty) {
  case DType::F32:
  case DType::I8I32:
    return 4;
  case DType::F16:
  case DType::BF16:
    return 2;
  }
  return 4;
}

unsigned dtypePackBytes(DType Ty) {
  return Ty == DType::I8I32 ? 1 : 4;
}

bool dtypeIsInt(DType Ty) { return Ty == DType::I8I32; }

exo::ScalarKind dtypeScalarKind(DType Ty) {
  switch (Ty) {
  case DType::F32:
    return exo::ScalarKind::F32;
  case DType::F16:
    return exo::ScalarKind::F16;
  case DType::BF16:
    return exo::ScalarKind::BF16;
  case DType::I8I32:
    return exo::ScalarKind::I8;
  }
  return exo::ScalarKind::F32;
}

//===----------------------------------------------------------------------===//
// binary16
//===----------------------------------------------------------------------===//

float f16ToF32(uint16_t H) {
  uint32_t Sign = (uint32_t)(H >> 15) << 31;
  uint32_t Exp = (H >> 10) & 0x1f;
  uint32_t Mant = H & 0x3ff;
  uint32_t Bits;
  if (Exp == 0) {
    if (Mant == 0) {
      Bits = Sign; // +-0
    } else {
      // Subnormal: normalize the mantissa into f32 range. The subnormal
      // scale is 2^-14 (0.M * 2^-14), and each normalizing shift costs
      // one more exponent step.
      int Shift = 0;
      while (!(Mant & 0x400)) {
        Mant <<= 1;
        ++Shift;
      }
      Mant &= 0x3ff;
      Bits = Sign | ((uint32_t)(127 - 14 - Shift) << 23) | (Mant << 13);
    }
  } else if (Exp == 0x1f) {
    Bits = Sign | 0x7f800000u | (Mant << 13); // inf / NaN
  } else {
    Bits = Sign | ((Exp + (127 - 15)) << 23) | (Mant << 13);
  }
  float F;
  std::memcpy(&F, &Bits, sizeof(F));
  return F;
}

uint16_t f32ToF16(float F) {
  uint32_t Bits;
  std::memcpy(&Bits, &F, sizeof(Bits));
  uint16_t Sign = (uint16_t)((Bits >> 16) & 0x8000u);
  uint32_t Exp = (Bits >> 23) & 0xff;
  uint32_t Mant = Bits & 0x7fffff;
  if (Exp == 0xff) // inf / NaN (keep a mantissa bit so NaN stays NaN)
    return (uint16_t)(Sign | 0x7c00u | (Mant ? 0x200u | (Mant >> 13) : 0));
  // Re-bias; values below the subnormal range need a wider shift.
  int32_t E = (int32_t)Exp - 127 + 15;
  if (E >= 0x1f)
    return (uint16_t)(Sign | 0x7c00u); // overflow -> inf
  uint32_t Full = Mant | 0x800000u;    // implicit leading 1
  uint32_t Shift = 13;
  if (E <= 0) {
    if (E < -10)
      return Sign; // underflow -> +-0
    Shift = (uint32_t)(13 + 1 - E);
    E = 0;
  }
  uint32_t Half = E == 0 ? Full >> Shift : Mant >> 13;
  uint32_t Dropped = E == 0 ? Full & ((1u << Shift) - 1)
                            : Mant & 0x1fffu;
  uint32_t Mid = E == 0 ? 1u << (Shift - 1) : 0x1000u;
  uint16_t Out = (uint16_t)(Sign | ((uint32_t)E << 10) | Half);
  // Round to nearest, ties to even. Carry may bump into the next exponent,
  // which is exactly what integer increment does for IEEE layouts.
  if (Dropped > Mid || (Dropped == Mid && (Half & 1)))
    ++Out;
  return Out;
}

//===----------------------------------------------------------------------===//
// bfloat16
//===----------------------------------------------------------------------===//

float bf16ToF32(uint16_t H) {
  uint32_t Bits = (uint32_t)H << 16;
  float F;
  std::memcpy(&F, &Bits, sizeof(F));
  return F;
}

uint16_t f32ToBf16(float F) {
  uint32_t Bits;
  std::memcpy(&Bits, &F, sizeof(Bits));
  if ((Bits & 0x7f800000u) == 0x7f800000u && (Bits & 0x7fffffu))
    return (uint16_t)((Bits >> 16) | 0x40); // quiet the NaN
  uint32_t Lsb = (Bits >> 16) & 1;
  Bits += 0x7fffu + Lsb; // round to nearest even
  return (uint16_t)(Bits >> 16);
}

} // namespace gemm
