//===- Tuner.cpp - Offline micro-kernel schedule search -------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "gemm/Tuner.h"

#include "exo/support/Env.h"
#include "gemm/CacheModel.h"
#include "gemm/Engine.h"
#include "gemm/Planner.h"
#include "ukr/KernelRegistry.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

using exo::Error;
using exo::errorf;
using exo::Expected;

namespace gemm {

TuneOptions tuneOptionsFromEnv() {
  TuneOptions O;
  O.Budget = exo::envInt("EXO_TUNE_BUDGET", std::getenv("EXO_TUNE_BUDGET"),
                         O.Budget, 1, 1 << 20);
  O.Seconds = exo::envDouble("EXO_TUNE_SECONDS",
                             std::getenv("EXO_TUNE_SECONDS"), O.Seconds,
                             0.0001, 600.0);
  O.Seed = static_cast<uint64_t>(exo::envInt(
      "EXO_TUNE_SEED", std::getenv("EXO_TUNE_SEED"),
      static_cast<long long>(O.Seed), 0, (1ll << 62)));
  return O;
}

namespace {

/// Round \p V down to a positive multiple of \p Unit (at least one unit).
int64_t roundTo(int64_t V, int64_t Unit) {
  if (Unit <= 0)
    Unit = 1;
  return std::max(Unit, (V / Unit) * Unit);
}

/// Portable deterministic Fisher-Yates: std::shuffle's draw sequence is
/// implementation-defined, and the deterministic-seed tests pin the search
/// order across toolchains.
template <typename T> void shuffleStable(std::vector<T> &V, uint64_t Seed) {
  // SplitMix64 stream — self-contained so the order never shifts under us.
  uint64_t S = Seed;
  auto Next = [&S]() {
    S += 0x9E3779B97F4A7C15ull;
    uint64_t Z = S;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  };
  for (size_t I = V.size(); I > 1; --I)
    std::swap(V[I - 1], V[Next() % I]);
}

/// Deterministic data fill (same LCG family the tests use).
void fillLcg(std::vector<float> &V, uint32_t Seed) {
  uint32_t X = Seed * 2654435761u + 12345u;
  for (float &F : V) {
    X = X * 1664525u + 1013904223u;
    // Small integers: exactly representable, keeps accumulation exact.
    F = static_cast<float>(static_cast<int>(X >> 28) - 8);
  }
}

struct Measurer {
  int64_t M, N, K;
  const TuneOptions &O;
  std::vector<float> A, B, C;

  Measurer(int64_t M, int64_t N, int64_t K, const TuneOptions &O)
      : M(M), N(N), K(K), O(O), A(static_cast<size_t>(M * K)),
        B(static_cast<size_t>(K * N)), C(static_cast<size_t>(M * N)) {
    fillLcg(A, 0xA0 + static_cast<uint32_t>(O.Seed));
    fillLcg(B, 0xB0 + static_cast<uint32_t>(O.Seed));
  }

  /// GFLOPS of one schedule through the pooled Engine path; fails when the
  /// Auto series degraded to the portable fallback (every candidate would
  /// measure the same kernel) or the Engine rejects the schedule.
  Expected<double> run(const TuneSample &S) {
    EngineConfig Cfg;
    Cfg.Series = EngineSeries::Auto;
    Cfg.Isa = O.Isa;
    Cfg.ForceMR = S.MR;
    Cfg.ForceNR = S.NR;
    Cfg.Threads = O.Threads;
    Cfg.UnrollCompute = S.UnrollCompute;
    Cfg.TunedPriors = false; // measuring: the DB must not steer the search
    if (S.MC > 0 && S.NC > 0 && S.KC > 0)
      Cfg.Blocks = BlockSizes{S.MC, S.KC, S.NC};
    Engine E(Cfg);
    Expected<PlanChoice> Plan = E.planFor(Trans::None, Trans::None, M, N, K);
    if (!Plan)
      return Plan.takeError();
    if (Plan->Src == PlanSource::Fallback)
      return errorf("tune: no generated kernel for %lldx%lld (JIT "
                    "unavailable?)",
                    static_cast<long long>(S.MR),
                    static_cast<long long>(S.NR));
    // One untimed call absorbs plan build + first-touch.
    if (Error Err = E.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 0.0f,
                            C.data(), M))
      return Err;
    using Clock = std::chrono::steady_clock;
    int64_t Reps = 0;
    const Clock::time_point T0 = Clock::now();
    Clock::time_point T1 = T0;
    do {
      if (Error Err = E.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 0.0f,
                              C.data(), M))
        return Err;
      ++Reps;
      T1 = Clock::now();
    } while (std::chrono::duration<double>(T1 - T0).count() < O.Seconds);
    const double Secs = std::chrono::duration<double>(T1 - T0).count();
    return (2.0 * M * N * K * Reps) / (Secs * 1e9);
  }
};

} // namespace

std::vector<TuneSample> tuneCandidates(int64_t M, int64_t N, int64_t K,
                                       const TuneOptions &O) {
  const CacheConfig Caches = CacheConfig::host();
  std::vector<TuneSample> Out;
  for (auto [Mr, Nr] : plannerTileCandidates(O.Isa)) {
    const BlockSizes Model = analyticalBlockSizes(Caches, Mr, Nr, 4);
    // Blocking variants: the model's own (encoded as zeros: "use the
    // analytical blocking", so a record stays valid if the model
    // improves), then half/double depth and half the A block.
    struct Var {
      int64_t MC, NC, KC;
    };
    const Var Vars[] = {
        {0, 0, 0},
        {Model.MC, Model.NC, roundTo(Model.KC / 2, 4)},
        {Model.MC, Model.NC, Model.KC * 2},
        {roundTo(Model.MC / 2, Mr), Model.NC, Model.KC},
    };
    for (const Var &V : Vars)
      for (bool Unroll : {false, true}) {
        TuneSample S;
        S.MR = Mr;
        S.NR = Nr;
        S.MC = V.MC;
        S.NC = V.NC;
        S.KC = V.KC;
        S.UnrollCompute = Unroll;
        Out.push_back(S);
      }
  }
  // Shape-mixed seed: different shapes explore different prefixes under
  // one budget, but the full (seed, shape) -> order map is deterministic.
  const uint64_t Mix = O.Seed ^ (static_cast<uint64_t>(M) * 0x100000001B3ull +
                                 static_cast<uint64_t>(N) * 0x1000193ull +
                                 static_cast<uint64_t>(K));
  shuffleStable(Out, Mix);
  return Out;
}

Expected<TuneResult> tuneShape(int64_t M, int64_t N, int64_t K,
                               const TuneOptions &O, PriorDb *Db) {
  if (M <= 0 || N <= 0 || K <= 0)
    return errorf("tune: degenerate shape %lldx%lldx%lld",
                  static_cast<long long>(M), static_cast<long long>(N),
                  static_cast<long long>(K));
  if (O.Dtype == DType::I8I32)
    return errorf("tune: i8 plans use the fixed %lldx%lld scalar-dot tile; "
                  "there is no schedule space to search",
                  static_cast<long long>(I8TileMR),
                  static_cast<long long>(I8TileNR));
  if (!Db)
    Db = &PriorDb::global();

  TuneResult R;
  R.M = M;
  R.N = N;
  R.K = K;

  Measurer Meas(M, N, K, O);

  // The never-lose baseline: the analytical model's own tile, measured
  // exactly like every candidate. A failure here (typically: no JIT) fails
  // the whole tune — without a baseline the gate cannot hold.
  std::tie(R.ModelMR, R.ModelNR) = pickTileForProblem(M, N, K, O.Isa);
  TuneSample ModelS;
  ModelS.MR = R.ModelMR;
  ModelS.NR = R.ModelNR;
  Expected<double> Base = Meas.run(ModelS);
  if (!Base)
    return Base.takeError();
  R.ModelGflops = ModelS.Gflops = *Base;
  R.Samples.push_back(ModelS);
  R.Best = ModelS;

  std::vector<TuneSample> Cands = tuneCandidates(M, N, K, O);
  if (static_cast<int64_t>(Cands.size()) > O.Budget)
    Cands.resize(static_cast<size_t>(O.Budget));
  for (TuneSample &S : Cands) {
    if (S.MR == R.ModelMR && S.NR == R.ModelNR && S.MC == 0 &&
        !S.UnrollCompute)
      continue; // the baseline already measured this schedule
    Expected<double> G = Meas.run(S);
    if (!G)
      continue; // e.g. the Engine rejects this blocking: skip the candidate
    S.Gflops = *G;
    R.Samples.push_back(S);
    if (S.Gflops > R.Best.Gflops)
      R.Best = S;
  }

  // Winner's curse control: the search takes a max over noisy one-shot
  // measurements, so the apparent winner is biased high. Confirm with a
  // second measurement of both the winner and the baseline, and gate on
  // the *pessimistic* pairing (winner's worse run vs the model's better
  // run) — a record only lands when the margin survives that.
  const bool BestIsModel = R.Best.MR == R.ModelMR && R.Best.NR == R.ModelNR &&
                           R.Best.MC == 0 && !R.Best.UnrollCompute;
  if (!BestIsModel) {
    if (Expected<double> G2 = Meas.run(R.Best))
      R.Best.Gflops = std::min(R.Best.Gflops, *G2);
    if (Expected<double> B2 = Meas.run(ModelS))
      R.ModelGflops = std::max(R.ModelGflops, *B2);
  }
  const double Gate = R.ModelGflops * (1.0 + std::max(0.0, O.MinMargin));
  if (!BestIsModel && R.Best.Gflops > Gate) {
    PriorRecord Rec;
    Rec.Dtype = O.Dtype;
    Rec.M = M;
    Rec.N = N;
    Rec.K = K;
    Rec.MR = R.Best.MR;
    Rec.NR = R.Best.NR;
    Rec.MC = R.Best.MC;
    Rec.NC = R.Best.NC;
    Rec.KC = R.Best.KC;
    Rec.UnrollCompute = R.Best.UnrollCompute;
    const ukr::UkrConfig Cfg =
        ukr::shapeConfig(Rec.MR, Rec.NR, O.Isa, Rec.UnrollCompute);
    Rec.Isa = Cfg.Isa->name();
    Rec.Fma = ukr::fmaStyleName(Cfg.effectiveStyle());
    Rec.Threads = O.Threads;
    Rec.TunedGflops = R.Best.Gflops;
    Rec.ModelMR = R.ModelMR;
    Rec.ModelNR = R.ModelNR;
    Rec.ModelGflops = R.ModelGflops;
    if (Error Err = Db->store(Rec))
      return Err;
    R.Stored = true;
    R.Record = Rec;
  }
  return R;
}

} // namespace gemm
