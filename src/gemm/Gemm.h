//===- Gemm.h - BLIS-like GEMM driver -------------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GotoBLAS/BLIS five-loop macro-kernel (paper Figs. 1-2): jc over nc
/// column blocks (Bc packed for L3), pc over kc depth blocks, ic over mc row
/// blocks (Ac packed for L2), then jr/ir micro-tile loops invoking the
/// micro-kernel. Edge tiles either dispatch to a provider-specialized
/// kernel (EXO mode, tight packing) or run the monolithic kernel into a
/// zero-padded scratch tile (BLIS mode).
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_GEMM_H
#define GEMM_GEMM_H

#include "exo/support/Error.h"
#include "gemm/CacheModel.h"
#include "gemm/MicroKernel.h"
#include "gemm/Pack.h"
#include "gemm/ThreadPool.h"

#include <optional>
#include <vector>

namespace gemm {

struct GemmPlan {
  BlockSizes Blocks;
  /// Tight for providers with per-edge kernels; ZeroPad for monolithic
  /// kernels routed through the scratch tile. Tight mode tolerates a
  /// *partial* edge family: a strip width without a specialized kernel
  /// degrades to the monolithic kernel over a re-padded panel copy.
  EdgePack PackMode = EdgePack::ZeroPad;
  /// Macro-kernel team size. 0 (the default) resolves through
  /// EXO_GEMM_THREADS — unset means 1, preserving the paper's single-core
  /// methodology; see resolveGemmThreads() in ThreadPool.h. Loop 3 (ic
  /// blocks) is parallelized first, loop 4 (jr strips) absorbs the
  /// remainder; results are bitwise identical for every thread count.
  int64_t Threads = 0;

  /// Standard plan for \p P: analytical blocking for the host caches and
  /// the packing mode implied by the provider's edge support.
  static GemmPlan standard(KernelProvider &P);
};

/// BLAS-style operand transposition. Packing absorbs the transpose (the
/// packed panels are identical either way), so transposed GEMM costs the
/// same as the plain case — the BLIS property.
enum class Trans : uint8_t { None, Transpose };

/// Column-major SGEMM, C = alpha*A*B + beta*C, through the macro-kernel.
/// Beta == 0 overwrites C without reading it (BLAS semantics: NaN/Inf in
/// an uninitialized C buffer never propagates). Fails on invalid shapes or
/// a provider with no runnable main kernel; missing *edge* kernels degrade
/// to the scratch-tile path instead of failing.
///
/// Deprecated: new code should call Engine::sgemm (Engine.h), which caches
/// the per-shape plan and workspace this entry re-derives on every call.
/// Kept as a thin shim over the shared executor; results are bitwise
/// identical between the two front doors.
exo::Error blisGemm(const GemmPlan &Plan, KernelProvider &Provider,
                    int64_t M, int64_t N, int64_t K, float Alpha,
                    const float *A, int64_t Lda, const float *B, int64_t Ldb,
                    float Beta, float *C, int64_t Ldc);

/// General form: C = alpha * op(A) * op(B) + beta * C with op per operand.
/// op(A) is m x k; with TA == Transpose, A is stored k x m (leading
/// dimension >= k), and symmetrically for B.
///
/// Deprecated: prefer Engine::sgemm (Engine.h); see blisGemm above.
exo::Error blisGemmT(const GemmPlan &Plan, KernelProvider &Provider,
                     Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                     float Alpha, const float *A, int64_t Lda,
                     const float *B, int64_t Ldb, float Beta, float *C,
                     int64_t Ldc);

namespace detail {

/// One GEMM call's operands and scalars, bundled so the resolved executor
/// below can be shared verbatim between the legacy entry points and the
/// Engine's cached-plan path (bitwise identity between the two front doors
/// falls out of running the same code).
struct GemmCall {
  Trans TA = Trans::None, TB = Trans::None;
  int64_t M = 0, N = 0, K = 0;
  float Alpha = 1.0f;
  const float *A = nullptr;
  int64_t Lda = 0;
  const float *B = nullptr;
  int64_t Ldb = 0;
  float Beta = 1.0f;
  float *C = nullptr;
  int64_t Ldc = 0;
};

/// The dtype-generic call bundle used by the non-f32 executor paths. The
/// operand pointers are raw storage in Ty's element types (dtypeInBytes /
/// dtypeOutBytes); Alpha/Beta carry the f32 scale for the half-precision
/// paths and AlphaI/BetaI the exact integer scale for i8 -> i32 (set from
/// the same user-facing doubles by the Engine front door).
struct GemmCallT {
  DType Ty = DType::F32;
  Trans TA = Trans::None, TB = Trans::None;
  int64_t M = 0, N = 0, K = 0;
  float Alpha = 1.0f, Beta = 1.0f;
  int64_t AlphaI = 1, BetaI = 1;
  const void *A = nullptr;
  int64_t Lda = 0;
  const void *B = nullptr;
  int64_t Ldb = 0;
  void *C = nullptr;
  int64_t Ldc = 0;
};

/// Everything the five-loop executor needs that does not depend on the
/// operand pointers or scalars: resolved kernels, problem-clamped blocking,
/// and the team factorization. Deriving this once per (shape, plan) is what
/// the Engine caches; blisGemmT derives it per call.
struct GemmGeometry {
  MicroKernel Main{};
  /// Element type this geometry executes. F32 runs the historical executor
  /// verbatim; F16/BF16 run the f32 kernels over convert-packed panels with
  /// per-Kc-block rounding at copy-out; I8I32 runs the K-grouped scalar dot
  /// (Main.Fn unused). Non-f32 geometries are always ZeroPad with no edge
  /// kernels.
  DType Ty = DType::F32;
  EdgePack PackMode = EdgePack::ZeroPad;
  int64_t Mr = 0, Nr = 0;
  int64_t Mc = 0, Kc = 0, Nc = 0; ///< clamped to the problem
  int64_t NIc = 0;                ///< ic block count
  int64_t T = 1;                  ///< team size, clamped to available work
  int64_t Tic = 1, Tjr = 1;       ///< 2D team factorization (ic x jr)
  /// Strip-width-indexed edge kernels, Nr entries; a nullopt width takes
  /// the re-padded scratch path. Points into caller-owned storage (the
  /// resolveEdgeKernels Storage argument) which must outlive execution.
  const std::optional<MicroKernel> *EdgeKernels = nullptr;
  bool NeedBPad = false; ///< some Tight-mode width lacks its edge kernel
};

/// Pack buffers and per-thread scratch for one geometry. ensure() resizes
/// to fit and is idempotent: a second call with the same geometry performs
/// no allocation, which is what keeps the Engine's pooled steady state
/// allocation-free.
struct GemmWorkspace {
  std::vector<float> BBuf;
  std::vector<std::vector<float>> ABufs, Scratches, BPads;
  /// I8I32 geometries pack into byte panels and accumulate into i32
  /// scratch tiles instead; the float vectors above stay empty for them
  /// (and vice versa), so a pooled workspace is sized for exactly one
  /// dtype — which is what the per-plan pools hold anyway.
  std::vector<int8_t> BBufI8;
  std::vector<std::vector<int8_t>> ABufsI8;
  std::vector<std::vector<int32_t>> ScratchesI32;
  void ensure(const GemmGeometry &G);
};

/// Clamps the plan's blocking to the problem and factorizes the team —
/// everything in GemmGeometry except edge-kernel resolution (which needs
/// the provider; see resolveEdgeKernels).
GemmGeometry deriveGeometry(const GemmPlan &Plan, const MicroKernel &Main,
                            int64_t M, int64_t N, int64_t K);

/// Recomputes Tic / Tjr from G.T and G.NIc (the divisor rule: Tic is the
/// largest divisor of T fitting the ic block count). Shared by
/// deriveGeometry and reteamGeometry so a re-teamed copy factorizes
/// exactly like a freshly derived one.
void factorizeTeam(GemmGeometry &G);

/// Resolves the kernel for every partial strip width occurring in an N-wide
/// problem into \p Storage (resized to Nr) and points G.EdgeKernels at it;
/// sets G.NeedBPad when some width lacks a runnable specialized kernel.
/// Must run on a thread allowed to call into the provider (may JIT).
void resolveEdgeKernels(KernelProvider &Provider, GemmGeometry &G, int64_t N,
                        std::vector<std::optional<MicroKernel>> &Storage);

/// The five-loop macro-kernel over a fully resolved geometry. Performs no
/// validation, no heap allocation, and never calls into the provider; the
/// workspace must already satisfy WS.ensure(G).
void executeGemm(const GemmGeometry &G, const GemmCall &Call,
                 GemmWorkspace &WS);

/// Returns \p G re-factorized for a team of \p Width (1 <= Width <= G.T):
/// same blocking, same kernels, recomputed T / Tic / Tjr via the divisor
/// rule of deriveGeometry. Because results are bitwise invariant under the
/// team size (Gemm.h file comment), executing a plan's geometry at any
/// smaller width — which is what the governor does under contention —
/// changes scheduling only, never output; and since Width <= G.T, a
/// workspace ensured for G already fits the re-teamed copy.
GemmGeometry reteamGeometry(const GemmGeometry &G, int64_t Width);

/// executeGemm on a team granted by the governor: Tid 0 on the caller and
/// one Tid per worker of \p Res (consumed; see ThreadPool::runTeam). The
/// geometry is re-teamed to the granted width 1 + Res.Count. Must not be
/// called from inside a pool job — reserve-then-run is for top-level
/// callers; nested calls take the plain executeGemm collapse path.
void executeGemmReserved(const GemmGeometry &G, const GemmCall &Call,
                         GemmWorkspace &WS, ThreadPool::Reservation &Res);

/// The shared degenerate path (K == 0 or alpha == 0): C = beta * C, with
/// beta == 0 overwriting rather than scaling (NaN-safe). Allocation-free.
void scaleByBeta(int64_t M, int64_t N, float Beta, float *C, int64_t Ldc);

/// The five-loop macro-kernel for non-f32 dtypes (same team structure,
/// barriers and ownership rules as executeGemm, hence the same bitwise
/// thread-count invariance). F16/BF16 convert-pack to f32 panels, run
/// G.Main.Fn into a zeroed f32 scratch tile and round the C update to
/// storage once per Kc block; I8I32 packs K-grouped byte panels and runs
/// the scalar dot into an i32 scratch with two's-complement wraparound.
/// Call.Ty must equal G.Ty and must not be F32 (f32 stays on executeGemm,
/// byte for byte).
void executeGemmTyped(const GemmGeometry &G, const GemmCallT &Call,
                      GemmWorkspace &WS);

/// Degenerate-path beta scaling in storage type: f32 behaves exactly like
/// scaleByBeta; f16/bf16 scale in f32 and round back to storage; i8->i32
/// scales the i32 C by the integer beta with wraparound. Beta == 0
/// overwrites with zero storage everywhere (NaN-safe).
void scaleByBetaTyped(DType Ty, int64_t M, int64_t N, double Beta, void *C,
                      int64_t Ldc);

} // namespace detail

} // namespace gemm

#endif // GEMM_GEMM_H
