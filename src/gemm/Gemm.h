//===- Gemm.h - BLIS-like GEMM driver -------------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GotoBLAS/BLIS five-loop macro-kernel (paper Figs. 1-2): jc over nc
/// column blocks (Bc packed for L3), pc over kc depth blocks, ic over mc row
/// blocks (Ac packed for L2), then jr/ir micro-tile loops invoking the
/// micro-kernel. Edge tiles either dispatch to a provider-specialized
/// kernel (EXO mode, tight packing) or run the monolithic kernel into a
/// zero-padded scratch tile (BLIS mode).
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_GEMM_H
#define GEMM_GEMM_H

#include "exo/support/Error.h"
#include "gemm/CacheModel.h"
#include "gemm/MicroKernel.h"
#include "gemm/Pack.h"

namespace gemm {

struct GemmPlan {
  BlockSizes Blocks;
  /// Tight for providers with per-edge kernels; ZeroPad for monolithic
  /// kernels routed through the scratch tile. Tight mode tolerates a
  /// *partial* edge family: a strip width without a specialized kernel
  /// degrades to the monolithic kernel over a re-padded panel copy.
  EdgePack PackMode = EdgePack::ZeroPad;
  /// Macro-kernel team size. 0 (the default) resolves through
  /// EXO_GEMM_THREADS — unset means 1, preserving the paper's single-core
  /// methodology; see resolveGemmThreads() in ThreadPool.h. Loop 3 (ic
  /// blocks) is parallelized first, loop 4 (jr strips) absorbs the
  /// remainder; results are bitwise identical for every thread count.
  int64_t Threads = 0;

  /// Standard plan for \p P: analytical blocking for the host caches and
  /// the packing mode implied by the provider's edge support.
  static GemmPlan standard(KernelProvider &P);
};

/// BLAS-style operand transposition. Packing absorbs the transpose (the
/// packed panels are identical either way), so transposed GEMM costs the
/// same as the plain case — the BLIS property.
enum class Trans : uint8_t { None, Transpose };

/// Column-major SGEMM, C = alpha*A*B + beta*C, through the macro-kernel.
/// Beta == 0 overwrites C without reading it (BLAS semantics: NaN/Inf in
/// an uninitialized C buffer never propagates). Fails on invalid shapes or
/// a provider with no runnable main kernel; missing *edge* kernels degrade
/// to the scratch-tile path instead of failing.
exo::Error blisGemm(const GemmPlan &Plan, KernelProvider &Provider,
                    int64_t M, int64_t N, int64_t K, float Alpha,
                    const float *A, int64_t Lda, const float *B, int64_t Ldb,
                    float Beta, float *C, int64_t Ldc);

/// General form: C = alpha * op(A) * op(B) + beta * C with op per operand.
/// op(A) is m x k; with TA == Transpose, A is stored k x m (leading
/// dimension >= k), and symmetrically for B.
exo::Error blisGemmT(const GemmPlan &Plan, KernelProvider &Provider,
                     Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                     float Alpha, const float *A, int64_t Lda,
                     const float *B, int64_t Ldb, float Beta, float *C,
                     int64_t Ldc);

} // namespace gemm

#endif // GEMM_GEMM_H
