//===- Gemm.h - BLIS-like GEMM driver -------------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GotoBLAS/BLIS five-loop macro-kernel (paper Figs. 1-2): jc over nc
/// column blocks (Bc packed for L3), pc over kc depth blocks, ic over mc row
/// blocks (Ac packed for L2), then jr/ir micro-tile loops invoking the
/// micro-kernel. Edge tiles either dispatch to a provider-specialized
/// kernel (EXO mode, tight packing) or run the monolithic kernel into a
/// zero-padded scratch tile (BLIS mode).
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_GEMM_H
#define GEMM_GEMM_H

#include "exo/support/Error.h"
#include "gemm/CacheModel.h"
#include "gemm/MicroKernel.h"
#include "gemm/Pack.h"

namespace gemm {

struct GemmPlan {
  BlockSizes Blocks;
  /// Tight for providers with per-edge kernels; ZeroPad for monolithic
  /// kernels routed through the scratch tile.
  EdgePack PackMode = EdgePack::ZeroPad;

  /// Standard plan for \p P: analytical blocking for the host caches and
  /// the packing mode implied by the provider's edge support.
  static GemmPlan standard(KernelProvider &P);
};

/// BLAS-style operand transposition. Packing absorbs the transpose (the
/// packed panels are identical either way), so transposed GEMM costs the
/// same as the plain case — the BLIS property.
enum class Trans : uint8_t { None, Transpose };

/// Column-major SGEMM, C = alpha*A*B + beta*C, through the macro-kernel.
/// Fails when a needed edge kernel cannot be built or shapes are invalid.
exo::Error blisGemm(const GemmPlan &Plan, KernelProvider &Provider,
                    int64_t M, int64_t N, int64_t K, float Alpha,
                    const float *A, int64_t Lda, const float *B, int64_t Ldb,
                    float Beta, float *C, int64_t Ldc);

/// General form: C = alpha * op(A) * op(B) + beta * C with op per operand.
/// op(A) is m x k; with TA == Transpose, A is stored k x m (leading
/// dimension >= k), and symmetrically for B.
exo::Error blisGemmT(const GemmPlan &Plan, KernelProvider &Provider,
                     Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                     float Alpha, const float *A, int64_t Lda,
                     const float *B, int64_t Ldb, float Beta, float *C,
                     int64_t Ldc);

} // namespace gemm

#endif // GEMM_GEMM_H
