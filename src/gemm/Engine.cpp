//===- Engine.cpp ---------------------------------------------------------===//

#include "gemm/Engine.h"

#include "exo/support/Env.h"
#include "gemm/ExoProvider.h"
#include "gemm/Governor.h"
#include "gemm/PriorDb.h"
#include "gemm/Kernels.h"
#include "gemm/ThreadPool.h"
#include "obs/Obs.h"
#include "ukr/KernelService.h"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <tuple>

using namespace exo;
using namespace gemm;

namespace {

/// Everything that distinguishes one cached plan from another within an
/// Engine. Threads enter pre-resolved (EXO_GEMM_THREADS can change between
/// calls); the ISA pointer covers engines reconfigured per series.
struct PlanKey {
  uint8_t TA = 0, TB = 0;
  int64_t M = 0, N = 0, K = 0;
  int64_t T = 1;
  const exo::IsaLib *Isa = nullptr;
  /// DType of the call, as uint8_t. Last (and defaulted) so the f32 entry
  /// points' aggregate initializers stay valid — omitting it is F32.
  uint8_t Ty = 0;

  bool operator<(const PlanKey &O) const {
    return std::tie(TA, TB, M, N, K, T, Isa, Ty) <
           std::tie(O.TA, O.TB, O.M, O.N, O.K, O.T, O.Isa, O.Ty);
  }
};

/// A resolved, immutable-after-publish execution plan plus its workspace
/// pool. Geometry and edge kernels are never mutated once the plan is
/// visible to other threads; provisional plans are *replaced*, not edited,
/// so in-flight executions keep a consistent snapshot via their shared_ptr.
struct ExecPlan {
  detail::GemmGeometry G;
  std::vector<std::optional<MicroKernel>> Edges;
  std::shared_ptr<KernelProvider> Provider;
  PlanChoice Choice;
  GemmPlan Legacy;
  /// Built over an async provider's portable fallback; re-resolved after
  /// RebuildPeriod further calls in the hope the specialized kernels have
  /// landed.
  bool Provisional = false;
  std::atomic<uint64_t> Calls{0};
  std::atomic<bool> Rebuilding{false};

  /// Pooled workspaces, bounded by the reserved capacity so release()
  /// never reallocates the vector (zero-allocation steady state).
  std::mutex PoolMu;
  std::vector<std::unique_ptr<detail::GemmWorkspace>> Pool;

  std::unique_ptr<detail::GemmWorkspace> acquire() {
    std::lock_guard<std::mutex> Lock(PoolMu);
    if (Pool.empty())
      return nullptr;
    std::unique_ptr<detail::GemmWorkspace> W = std::move(Pool.back());
    Pool.pop_back();
    return W;
  }
  void release(std::unique_ptr<detail::GemmWorkspace> W) {
    std::lock_guard<std::mutex> Lock(PoolMu);
    if (Pool.size() < Pool.capacity())
      Pool.push_back(std::move(W));
    // Past capacity the workspace is simply dropped: an unusual burst of
    // concurrent callers shrinks back to the bounded pool afterwards.
  }
};

constexpr uint64_t RebuildPeriod = 32;
constexpr size_t WorkspacePoolCap = 16;

struct CacheEntry {
  std::shared_ptr<ExecPlan> Plan; ///< null while building
  std::string BuildError;         ///< sticky failure (set once, final)
  bool Building = false;
  std::atomic<uint64_t> LastUse{0}; ///< approximate-LRU stamp
};

int64_t envPlanCacheCap() {
  return exo::envInt("EXO_GEMM_PLAN_CACHE_CAP",
                     std::getenv("EXO_GEMM_PLAN_CACHE_CAP"),
                     /*Default=*/256, /*Min=*/1, /*Max=*/1 << 30);
}

bool envPlanCacheOn() {
  return exo::envBool("EXO_GEMM_PLAN_CACHE",
                      std::getenv("EXO_GEMM_PLAN_CACHE"), true);
}

} // namespace

struct Engine::Impl {
  EngineConfig Cfg;
  bool CacheOn = true;
  int64_t Cap = 256;
  /// Resolved fixed-series / custom provider (null for Exo; Auto keeps it
  /// around as the degradation target).
  std::shared_ptr<KernelProvider> Fixed;
  const char *Name = "auto";

  std::shared_mutex Mu; ///< guards Cache
  std::condition_variable_any Cv;
  std::map<PlanKey, CacheEntry> Cache;

  std::mutex ProvMu; ///< guards ExoProvs (build path only)
  std::map<std::pair<int64_t, int64_t>, std::shared_ptr<ExoProvider>>
      ExoProvs;

  std::atomic<uint64_t> Tick{0};
  std::atomic<uint64_t> Hits{0}, Misses{0}, Builds{0}, Rebuilds{0},
      Evictions{0}, Degenerate{0}, StickyErrors{0};
  std::atomic<uint64_t> BatchedItems{0}, BatchedGroups{0},
      BatchedCrossItem{0};
  std::atomic<uint64_t> PlansFromModel{0}, PlansFromPrior{0},
      PlansFromTuned{0}, PriorRejected{0};
  std::atomic<uint64_t> GovGrants{0}, GovShapeClamped{0}, GovOccClamped{0},
      GovWidthSum{0};

  /// Governed dispatch for this Engine: explicit config, else the
  /// EXO_GEMM_GOVERNOR env default (read per call so tests can flip it).
  bool governorOn() const {
    return Cfg.Governor > 0 ||
           (Cfg.Governor < 0 && Governor::enabledByEnv());
  }

  /// The canonical per-shape plan width — the team-size component of every
  /// plan key. Fixed dispatch: the resolved thread count, as always. With
  /// the governor on and no fixed width requested (resolves to 1), plans
  /// are keyed and sized at the governor ceiling so grants can widen up to
  /// it; an explicit width (EngineConfig::Threads or EXO_GEMM_THREADS)
  /// stays the cap and the governor only ever narrows below it. Either
  /// way the key is invariant across calls — grants never re-key.
  int64_t plannedThreads() const {
    const int64_t T = resolveGemmThreads(Cfg.Threads);
    if (T > 1 || !governorOn())
      return T;
    return Governor::global().ceiling();
  }

  /// Folds one grant into the per-Engine counters.
  void countGrant(const Governor::Grant &G) {
    GovGrants.fetch_add(1, std::memory_order_relaxed);
    GovWidthSum.fetch_add(static_cast<uint64_t>(G.width()),
                          std::memory_order_relaxed);
    if (G.shapeClamped())
      GovShapeClamped.fetch_add(1, std::memory_order_relaxed);
    if (G.occupancyClamped())
      GovOccClamped.fetch_add(1, std::memory_order_relaxed);
  }

  std::shared_ptr<ExoProvider> exoProviderFor(int64_t MR, int64_t NR,
                                              bool UnrollCompute) {
    // UnrollCompute is part of the memo key: a tuned prior can request the
    // unrolled schedule for one shape while others keep the default.
    const int64_t UnrollTag = UnrollCompute ? (int64_t(1) << 62) : 0;
    std::lock_guard<std::mutex> Lock(ProvMu);
    auto It = ExoProvs.find({MR, NR | UnrollTag});
    if (It != ExoProvs.end())
      return It->second;
    auto P = std::make_shared<ExoProvider>(MR, NR, Cfg.Isa, UnrollCompute);
    P->setAsync(Cfg.Async);
    P->setSpecializeEdges(Cfg.SpecializeEdges);
    ExoProvs.emplace(std::make_pair(MR, NR | UnrollTag), P);
    return P;
  }

  Expected<std::shared_ptr<ExecPlan>> build(const PlanKey &Key);
  std::shared_ptr<ExecPlan> lookupOrBuild(const PlanKey &Key, Error &Err);
  void evictLocked(const PlanKey *Keep = nullptr);
  void maybeRebuild(const PlanKey &Key,
                    const std::shared_ptr<ExecPlan> &Old);
};

Expected<std::shared_ptr<ExecPlan>> Engine::Impl::build(const PlanKey &Key) {
  EXO_OBS_SPAN("plan.build");
  // Every entry point (sgemm, planFor, warm) funnels through here, so this
  // is the one place the misconfiguration must be caught before the
  // fixed-series branch dereferences a null provider.
  if (Cfg.Series == EngineSeries::Custom && !Fixed)
    return errorf("gemm engine: custom series without a provider");
  const DType Ty = static_cast<DType>(Key.Ty);

  // I8I32: no provider, no JIT — the typed executor's built-in K-grouped
  // scalar dot runs the plan's fixed tile (Planner.h). Geometry and
  // workspace sizing still flow through the shared machinery so the pooled
  // steady state is identical to every other dtype.
  if (Ty == DType::I8I32) {
    PlanChoice Choice = choosePlanWithDb(Key.M, Key.N, Key.K, nullptr, "",
                                         nullptr, nullptr, Ty);
    MicroKernel Main;
    Main.MR = Choice.MR;
    Main.NR = Choice.NR;
    Main.Fn = nullptr; // unused: I8I32 geometries never call Main.Fn
    GemmPlan Legacy;
    Legacy.Blocks = analyticalBlockSizes(CacheConfig::host(), Choice.MR,
                                         Choice.NR, dtypePackBytes(Ty));
    if (Cfg.Blocks)
      Legacy.Blocks = *Cfg.Blocks;
    Legacy.PackMode = EdgePack::ZeroPad;
    Legacy.Threads = Key.T;
    PlansFromModel.fetch_add(1, std::memory_order_relaxed);
    obs::mark("plan.source.model");
    auto P = std::make_shared<ExecPlan>();
    P->Choice = Choice;
    P->Legacy = Legacy;
    P->G = detail::deriveGeometry(Legacy, Main, Key.M, Key.N, Key.K);
    P->G.Ty = Ty;
    P->Pool.reserve(WorkspacePoolCap);
    auto WS = std::make_unique<detail::GemmWorkspace>();
    WS->ensure(P->G);
    P->Pool.push_back(std::move(WS));
    return P;
  }

  PlanChoice Choice;
  std::shared_ptr<KernelProvider> Provider;
  const bool WantExo = Cfg.Series == EngineSeries::Exo ||
                       Cfg.Series == EngineSeries::Auto;
  if (WantExo) {
    if (Cfg.ForceMR > 0 && Cfg.ForceNR > 0) {
      Choice = PlanChoice::make(Cfg.ForceMR, Cfg.ForceNR, PlanSource::Forced);
    } else {
      PlanOutcome Out;
      Choice = choosePlanWithDb(Key.M, Key.N, Key.K, Cfg.Isa, Cfg.PriorPath,
                                Cfg.TunedPriors ? &PriorDb::global() : nullptr,
                                &Out, Ty);
      PriorRejected.fetch_add(Out.PriorRejected + Out.TunedRejected,
                              std::memory_order_relaxed);
    }
    Provider = exoProviderFor(Choice.MR, Choice.NR,
                              Cfg.UnrollCompute || Choice.UnrollCompute);
  } else {
    Provider = Fixed;
    MicroKernel Mk = Provider->main();
    Choice = PlanChoice::make(Mk.MR, Mk.NR, PlanSource::Fixed);
  }

  MicroKernel Main = Provider->main();
  if (!Main.Fn && Cfg.Series == EngineSeries::Auto) {
    // No generated kernel (JIT or compiler unavailable): degrade to the
    // portable BLIS-style kernel so Auto engines always serve.
    Provider = Fixed;
    Main = Provider->main();
    Choice = PlanChoice::make(Main.MR, Main.NR, PlanSource::Fallback);
  }
  if (!Main.Fn)
    return errorf("gemm engine (%s): provider '%s' has no runnable kernel "
                  "for %lldx%lldx%lld",
                  Name, Provider->name(), static_cast<long long>(Key.M),
                  static_cast<long long>(Key.N),
                  static_cast<long long>(Key.K));

  GemmPlan Legacy = GemmPlan::standard(*Provider);
  if (Cfg.Blocks)
    Legacy.Blocks = *Cfg.Blocks;
  else if (Choice.Blocks)
    Legacy.Blocks = *Choice.Blocks;
  if (Cfg.PackMode)
    Legacy.PackMode = *Cfg.PackMode;
  Legacy.Threads = Key.T;

  // Per-plan provenance: one count and one obs mark per plan built. Forced,
  // fixed-series, and fallback plans mark but do not count — the three
  // counters answer "which selection stage chose the tile", and those plans
  // never ran selection.
  switch (Choice.Src) {
  case PlanSource::Model:
    PlansFromModel.fetch_add(1, std::memory_order_relaxed);
    break;
  case PlanSource::Prior:
    PlansFromPrior.fetch_add(1, std::memory_order_relaxed);
    break;
  case PlanSource::Tuned:
    PlansFromTuned.fetch_add(1, std::memory_order_relaxed);
    break;
  default:
    break;
  }
  obs::mark(Choice.Src == PlanSource::Model   ? "plan.source.model"
            : Choice.Src == PlanSource::Prior ? "plan.source.prior"
            : Choice.Src == PlanSource::Tuned ? "plan.source.tuned"
                                              : "plan.source.other");

  auto P = std::make_shared<ExecPlan>();
  P->Provider = Provider;
  P->Choice = Choice;
  P->Legacy = Legacy;
  P->G = detail::deriveGeometry(Legacy, Main, Key.M, Key.N, Key.K);
  if (Ty != DType::F32) {
    // F16/BF16: the plan's f32 kernel runs over convert-packed (always
    // zero-padded) panels through the scratch tile; specialized edge
    // kernels never dispatch, so none are resolved or JIT'd.
    P->G.Ty = Ty;
    P->G.PackMode = EdgePack::ZeroPad;
    P->Provisional = Cfg.Async && Main.IsFallback;
    P->Pool.reserve(WorkspacePoolCap);
    auto WS = std::make_unique<detail::GemmWorkspace>();
    WS->ensure(P->G);
    P->Pool.push_back(std::move(WS));
    return P;
  }
  detail::resolveEdgeKernels(*Provider, P->G, Key.N, P->Edges);
  bool EdgeFallback = false;
  for (const std::optional<MicroKernel> &E : P->Edges)
    if (E && E->IsFallback)
      EdgeFallback = true;
  P->Provisional =
      Cfg.Async && (Main.IsFallback || EdgeFallback || P->G.NeedBPad);
  P->Pool.reserve(WorkspacePoolCap);
  auto WS = std::make_unique<detail::GemmWorkspace>();
  WS->ensure(P->G);
  P->Pool.push_back(std::move(WS));
  return P;
}

void Engine::Impl::evictLocked(const PlanKey *Keep) {
  while (static_cast<int64_t>(Cache.size()) > Cap) {
    auto Victim = Cache.end();
    uint64_t Oldest = ~uint64_t{0};
    for (auto It = Cache.begin(); It != Cache.end(); ++It) {
      if (It->second.Building)
        continue;
      if (Keep && !(It->first < *Keep) && !(*Keep < It->first))
        continue; // never evict the entry the caller is about to return
      // Sticky build-error entries are eligible too (their LastUse stays 0,
      // so they go first); otherwise unbuildable-shape probes would pin the
      // cache over cap forever.
      if (!It->second.Plan && It->second.BuildError.empty())
        continue;
      uint64_t Use = It->second.LastUse.load(std::memory_order_relaxed);
      if (Use < Oldest) {
        Oldest = Use;
        Victim = It;
      }
    }
    if (Victim == Cache.end())
      return; // everything in flight; over-cap is transient
    Cache.erase(Victim);
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<ExecPlan> Engine::Impl::lookupOrBuild(const PlanKey &Key,
                                                      Error &Err) {
  {
    EXO_OBS_SPAN("plan.lookup");
    std::shared_lock<std::shared_mutex> SL(Mu);
    auto It = Cache.find(Key);
    if (It != Cache.end() && It->second.Plan) {
      It->second.LastUse.store(
          Tick.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      Hits.fetch_add(1, std::memory_order_relaxed);
      obs::mark("plan.hit");
      return It->second.Plan;
    }
  }

  Misses.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> UL(Mu);
  for (;;) {
    CacheEntry &E = Cache[Key];
    if (E.Plan) {
      // Built while we waited for the lock (or by the builder we waited
      // on) — a miss in the counters, but no duplicate work.
      E.LastUse.store(Tick.fetch_add(1, std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
      return E.Plan;
    }
    if (!E.BuildError.empty()) {
      Err = errorf("%s", E.BuildError.c_str());
      return nullptr;
    }
    if (!E.Building) {
      E.Building = true;
      break;
    }
    Cv.wait(UL);
  }
  UL.unlock();

  Expected<std::shared_ptr<ExecPlan>> Built = build(Key);

  UL.lock();
  CacheEntry &E = Cache[Key];
  E.Building = false;
  if (!Built) {
    // Failures are sticky: a shape with no runnable kernel fails the same
    // way on every retry, and re-planning per call would hide that behind
    // repeated JIT attempts.
    E.BuildError = Built.message();
    StickyErrors.fetch_add(1, std::memory_order_relaxed);
    Err = errorf("%s", E.BuildError.c_str());
    // Error entries occupy cache slots too; evict here as well so a
    // workload probing many unbuildable shapes cannot grow the map past
    // cap (successful builds are the only other eviction point).
    evictLocked(&Key);
    Cv.notify_all();
    return nullptr;
  }
  E.Plan = Built.take();
  E.LastUse.store(Tick.fetch_add(1, std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  Builds.fetch_add(1, std::memory_order_relaxed);
  // Copy out before evicting: even though evictLocked() spares Key itself,
  // returning through the map reference would read a destroyed node if a
  // future victim policy ever touched it.
  std::shared_ptr<ExecPlan> Ret = E.Plan;
  evictLocked(&Key);
  Cv.notify_all();
  return Ret;
}

void Engine::Impl::maybeRebuild(const PlanKey &Key,
                                const std::shared_ptr<ExecPlan> &Old) {
  bool Claim = false;
  if (!Old->Rebuilding.compare_exchange_strong(Claim, true))
    return; // another caller is already re-resolving this plan
  Expected<std::shared_ptr<ExecPlan>> Built = build(Key);
  if (Built) {
    std::unique_lock<std::shared_mutex> UL(Mu);
    auto It = Cache.find(Key);
    if (It != Cache.end() && It->second.Plan == Old) {
      It->second.Plan = Built.take();
      Rebuilds.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // A failed rebuild keeps serving the provisional plan; the next period
  // retries.
  Old->Rebuilding.store(false);
}

Engine::Engine() : Engine(EngineConfig{}) {}

Engine::Engine(const EngineConfig &Cfg) : I(new Impl) {
  I->Cfg = Cfg;
  I->CacheOn = Cfg.PlanCache >= 0 ? Cfg.PlanCache != 0 : envPlanCacheOn();
  I->Cap = Cfg.PlanCacheCap >= 0 ? std::max<int64_t>(Cfg.PlanCacheCap, 1)
                                 : envPlanCacheCap();
  switch (Cfg.Series) {
  case EngineSeries::Auto:
    I->Name = "auto";
    I->Fixed = std::make_shared<FixedProvider>(blisKernel(), "blis");
    break;
  case EngineSeries::Exo:
    I->Name = "exo";
    break;
  case EngineSeries::HandVector:
    I->Name = "hand-vector";
    I->Fixed =
        std::make_shared<FixedProvider>(handVectorKernel(), "hand-vector");
    break;
  case EngineSeries::Blis:
    I->Name = "blis";
    I->Fixed = std::make_shared<FixedProvider>(blisKernel(), "blis");
    break;
  case EngineSeries::BlisPrefetch:
    I->Name = "blis-prefetch";
    I->Fixed = std::make_shared<FixedProvider>(blisKernelPrefetch(),
                                               "blis-prefetch");
    break;
  case EngineSeries::Custom:
    I->Name = Cfg.Provider ? Cfg.Provider->name() : "custom";
    I->Fixed = Cfg.Provider;
    break;
  }
}

Engine::~Engine() { delete I; }

Engine &Engine::global() {
  static Engine E;
  return E;
}

Error Engine::sgemm(Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                    float Alpha, const float *A, int64_t Lda, const float *B,
                    int64_t Ldb, float Beta, float *C, int64_t Ldc) {
  if (M < 0 || N < 0 || K < 0)
    return errorf("gemm engine: negative dimension");
  // Degenerate quick returns, ahead of the plan cache: trivial calls never
  // plan, allocate, or read A/B (BLAS semantics; beta == 0 overwrites).
  if (M == 0 || N == 0) {
    I->Degenerate.fetch_add(1, std::memory_order_relaxed);
    return Error::success();
  }
  if (K == 0 || Alpha == 0.0f) {
    I->Degenerate.fetch_add(1, std::memory_order_relaxed);
    detail::scaleByBeta(M, N, Beta, C, Ldc);
    return Error::success();
  }
  if (I->Cfg.Series == EngineSeries::Custom && !I->Fixed)
    return errorf("gemm engine: custom series without a provider");

  PlanKey Key{static_cast<uint8_t>(TA),
              static_cast<uint8_t>(TB),
              M,
              N,
              K,
              I->plannedThreads(),
              I->Cfg.Isa};

  std::shared_ptr<ExecPlan> Plan;
  if (!I->CacheOn) {
    I->Misses.fetch_add(1, std::memory_order_relaxed);
    Expected<std::shared_ptr<ExecPlan>> Built = I->build(Key);
    if (!Built)
      return Built.takeError();
    I->Builds.fetch_add(1, std::memory_order_relaxed);
    Plan = Built.take();
  } else {
    Error Err = Error::success();
    Plan = I->lookupOrBuild(Key, Err);
    if (!Plan)
      return Err;
  }

  if (Plan->Provisional &&
      (Plan->Calls.fetch_add(1, std::memory_order_relaxed) + 1) %
              RebuildPeriod ==
          0)
    I->maybeRebuild(Key, Plan);

  std::unique_ptr<detail::GemmWorkspace> WS = Plan->acquire();
  if (!WS) {
    WS = std::make_unique<detail::GemmWorkspace>();
    WS->ensure(Plan->G);
  }
  const detail::GemmCall Call{TA, TB, M,    N, K,   Alpha, A,
                              Lda, B,  Ldb, Beta, C, Ldc};
  // Governed dispatch: the process-wide governor grants this call a team
  // width in [1, plan width] from the shape model and live occupancy;
  // results are bitwise identical at every width (Gemm.h), so this only
  // changes scheduling. Nested calls skip the governor and take
  // executeGemm's collapse path — a reservation cannot form from inside a
  // pool job.
  if (I->governorOn() && Plan->G.T > 1 &&
      !ThreadPool::global().inParallel()) {
    Governor::Grant Grant;
    Governor::global().acquire(M, N, K, Plan->G.T, Grant);
    I->countGrant(Grant);
    detail::executeGemmReserved(Plan->G, Call, *WS, Grant.reservation());
  } else {
    detail::executeGemm(Plan->G, Call, *WS);
  }
  Plan->release(std::move(WS));
  return Error::success();
}

Error Engine::gemm(DType Ty, Trans TA, Trans TB, int64_t M, int64_t N,
                   int64_t K, double Alpha, const void *A, int64_t Lda,
                   const void *B, int64_t Ldb, double Beta, void *C,
                   int64_t Ldc) {
  // F32 takes the historical path verbatim — same code, bitwise-identical
  // results (the front doors differ only in spelling).
  if (Ty == DType::F32)
    return sgemm(TA, TB, M, N, K, static_cast<float>(Alpha),
                 static_cast<const float *>(A), Lda,
                 static_cast<const float *>(B), Ldb,
                 static_cast<float>(Beta), static_cast<float *>(C), Ldc);

  if (M < 0 || N < 0 || K < 0)
    return errorf("gemm engine: negative dimension");
  int64_t AlphaI = 1, BetaI = 1;
  if (Ty == DType::I8I32) {
    // Integer alpha/beta only: they scale the i32 accumulator exactly.
    // A fractional scale is a quantization policy decision that belongs in
    // the caller, not a silently-rounded GEMM parameter (DType.h).
    constexpr double Lim = 9.0e18; // < 2^63, exactly representable
    if (Alpha != std::nearbyint(Alpha) || Beta != std::nearbyint(Beta) ||
        std::fabs(Alpha) > Lim || std::fabs(Beta) > Lim)
      return errorf("gemm engine: i8 alpha/beta must be exact integers "
                    "(got alpha=%g beta=%g)",
                    Alpha, Beta);
    AlphaI = static_cast<int64_t>(Alpha);
    BetaI = static_cast<int64_t>(Beta);
  }
  // Degenerate quick returns, in storage type (beta == 0 overwrites; A/B
  // never read — the same BLAS semantics as sgemm).
  if (M == 0 || N == 0) {
    I->Degenerate.fetch_add(1, std::memory_order_relaxed);
    return Error::success();
  }
  if (K == 0 || Alpha == 0.0) {
    I->Degenerate.fetch_add(1, std::memory_order_relaxed);
    detail::scaleByBetaTyped(Ty, M, N, Beta, C, Ldc);
    return Error::success();
  }
  if (I->Cfg.Series == EngineSeries::Custom && !I->Fixed)
    return errorf("gemm engine: custom series without a provider");

  PlanKey Key{static_cast<uint8_t>(TA),
              static_cast<uint8_t>(TB),
              M,
              N,
              K,
              I->plannedThreads(),
              I->Cfg.Isa,
              static_cast<uint8_t>(Ty)};

  std::shared_ptr<ExecPlan> Plan;
  if (!I->CacheOn) {
    I->Misses.fetch_add(1, std::memory_order_relaxed);
    Expected<std::shared_ptr<ExecPlan>> Built = I->build(Key);
    if (!Built)
      return Built.takeError();
    I->Builds.fetch_add(1, std::memory_order_relaxed);
    Plan = Built.take();
  } else {
    Error Err = Error::success();
    Plan = I->lookupOrBuild(Key, Err);
    if (!Plan)
      return Err;
  }

  if (Plan->Provisional &&
      (Plan->Calls.fetch_add(1, std::memory_order_relaxed) + 1) %
              RebuildPeriod ==
          0)
    I->maybeRebuild(Key, Plan);

  std::unique_ptr<detail::GemmWorkspace> WS = Plan->acquire();
  if (!WS) {
    WS = std::make_unique<detail::GemmWorkspace>();
    WS->ensure(Plan->G);
  }
  detail::GemmCallT Call;
  Call.Ty = Ty;
  Call.TA = TA;
  Call.TB = TB;
  Call.M = M;
  Call.N = N;
  Call.K = K;
  Call.Alpha = static_cast<float>(Alpha);
  Call.Beta = static_cast<float>(Beta);
  Call.AlphaI = AlphaI;
  Call.BetaI = BetaI;
  Call.A = A;
  Call.Lda = Lda;
  Call.B = B;
  Call.Ldb = Ldb;
  Call.C = C;
  Call.Ldc = Ldc;
  // Typed dispatch runs at the plan width (the governor's reserved-team
  // form exists only for the f32 executor); nested calls still collapse to
  // width 1 inside executeGemmTyped, so the pool never deadlocks.
  detail::executeGemmTyped(Plan->G, Call, *WS);
  Plan->release(std::move(WS));
  return Error::success();
}

namespace {

/// Pool-callback context for one cross-item chunk: worker Tid runs items
/// Tid, Tid + W, Tid + 2W, ... whole, each in its own workspace. The plan
/// was keyed with T == 1, so the inner executeGemm dispatches inline and
/// never re-enters the pool with a team.
struct BatchJob {
  const detail::GemmGeometry *G;
  const GemmBatchItem *Base;   ///< the caller's item array
  const int64_t *Idx;          ///< indices of this chunk's items
  int64_t NItems;              ///< chunk size
  int64_t W;                   ///< worker count (= stride)
  detail::GemmWorkspace *const *WSs; ///< one workspace per worker
};

void runBatchItems(void *Ctx, int64_t Tid) {
  const BatchJob &J = *static_cast<BatchJob *>(Ctx);
  for (int64_t I = Tid; I < J.NItems; I += J.W) {
    const GemmBatchItem &It = J.Base[J.Idx[I]];
    detail::executeGemm(*J.G,
                        detail::GemmCall{It.TA, It.TB, It.M, It.N, It.K,
                                         It.Alpha, It.A, It.Lda, It.B, It.Ldb,
                                         It.Beta, It.C, It.Ldc},
                        *J.WSs[Tid]);
  }
}

/// Max items per cross-item dispatch: chunking bounds the per-batch index
/// array and lets provisional-plan rebuilds land mid-batch on huge batches.
int64_t batchGroupMax() {
  return exo::envInt("EXO_GEMM_BATCH_GROUP_MAX",
                     std::getenv("EXO_GEMM_BATCH_GROUP_MAX"),
                     /*Default=*/4096, /*Min=*/1, /*Max=*/1 << 30);
}

} // namespace

Error Engine::sgemmBatched(const GemmBatchItem *Items, int64_t Count) {
  if (Count < 0)
    return errorf("gemm engine: negative batch count");
  if (Count > 0 && !Items)
    return errorf("gemm engine: null batch item array");
  // Validate the whole batch before touching any C: a batch either starts
  // or fails — callers never see half-written output on a bad item.
  for (int64_t Ix = 0; Ix < Count; ++Ix)
    if (Items[Ix].M < 0 || Items[Ix].N < 0 || Items[Ix].K < 0)
      return errorf("gemm engine: negative dimension in batch item %lld",
                    static_cast<long long>(Ix));
  if (I->Cfg.Series == EngineSeries::Custom && !I->Fixed)
    return errorf("gemm engine: custom series without a provider");
  I->BatchedItems.fetch_add(static_cast<uint64_t>(Count),
                            std::memory_order_relaxed);
  if (Count == 0)
    return Error::success();

  // Degenerate items resolve inline (sgemm's quick-return semantics, in
  // batch order — they never group or plan); the rest group by shape so
  // each distinct (TA, TB, M, N, K) plans once.
  std::map<std::tuple<uint8_t, uint8_t, int64_t, int64_t, int64_t>,
           std::vector<int64_t>>
      Groups;
  for (int64_t Ix = 0; Ix < Count; ++Ix) {
    const GemmBatchItem &It = Items[Ix];
    if (It.M == 0 || It.N == 0) {
      I->Degenerate.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (It.K == 0 || It.Alpha == 0.0f) {
      I->Degenerate.fetch_add(1, std::memory_order_relaxed);
      detail::scaleByBeta(It.M, It.N, It.Beta, It.C, It.Ldc);
      continue;
    }
    Groups[{static_cast<uint8_t>(It.TA), static_cast<uint8_t>(It.TB), It.M,
            It.N, It.K}]
        .push_back(Ix);
  }

  const int64_t T = I->plannedThreads();
  const bool Governed = I->governorOn() && !ThreadPool::global().inParallel();
  for (const auto &[Shape, Idx] : Groups) {
    const auto &[TA, TB, M, N, K] = Shape;
    const int64_t GroupItems = static_cast<int64_t>(Idx.size());
    const bool Cross =
        batchPrefersCrossItem(M, N, K, T, GroupItems) &&
        !ThreadPool::global().inParallel();
    // Cross-item groups run every item single-threaded, so they want the
    // T == 1 plan — a distinct cache key from the intra-item plan, which
    // is exactly right: the two strategies use different geometry.
    PlanKey Key{TA, TB, M, N, K, Cross ? 1 : T, I->Cfg.Isa};

    std::shared_ptr<ExecPlan> Plan;
    if (!I->CacheOn) {
      I->Misses.fetch_add(1, std::memory_order_relaxed);
      Expected<std::shared_ptr<ExecPlan>> Built = I->build(Key);
      if (!Built)
        return Built.takeError();
      I->Builds.fetch_add(1, std::memory_order_relaxed);
      Plan = Built.take();
    } else {
      Error Err = Error::success();
      Plan = I->lookupOrBuild(Key, Err);
      if (!Plan)
        return Err;
    }
    I->BatchedGroups.fetch_add(1, std::memory_order_relaxed);

    if (Plan->Provisional) {
      // Credit the whole group; rebuild when the count crosses a period
      // boundary (the batched analogue of sgemm's per-call check).
      uint64_t Before = Plan->Calls.fetch_add(
          static_cast<uint64_t>(GroupItems), std::memory_order_relaxed);
      if (Before / RebuildPeriod !=
          (Before + static_cast<uint64_t>(GroupItems)) / RebuildPeriod)
        I->maybeRebuild(Key, Plan);
    }

    if (!Cross) {
      // Intra-item slab parallelism: the sgemm execution body, amortizing
      // one workspace acquisition over the group.
      std::unique_ptr<detail::GemmWorkspace> WS = Plan->acquire();
      if (!WS) {
        WS = std::make_unique<detail::GemmWorkspace>();
        WS->ensure(Plan->G);
      }
      for (int64_t Ix : Idx) {
        const GemmBatchItem &It = Items[Ix];
        const detail::GemmCall Call{It.TA,  It.TB, It.M,    It.N, It.K,
                                    It.Alpha, It.A, It.Lda, It.B, It.Ldb,
                                    It.Beta, It.C, It.Ldc};
        if (Governed && Plan->G.T > 1) {
          // Per item, like sgemm: each item's grant tracks occupancy as
          // sibling callers come and go over a long batch.
          Governor::Grant Grant;
          Governor::global().acquire(It.M, It.N, It.K, Plan->G.T, Grant);
          I->countGrant(Grant);
          detail::executeGemmReserved(Plan->G, Call, *WS,
                                      Grant.reservation());
        } else {
          detail::executeGemm(Plan->G, Call, *WS);
        }
      }
      Plan->release(std::move(WS));
      continue;
    }

    // Cross-item scheduling: one whole item per pool worker, per-worker
    // workspaces from the plan's pool. Chunked so enormous batches bound
    // their index spans.
    I->BatchedCrossItem.fetch_add(static_cast<uint64_t>(GroupItems),
                                  std::memory_order_relaxed);
    const int64_t ChunkMax = batchGroupMax();
    for (int64_t At = 0; At < GroupItems; At += ChunkMax) {
      const int64_t NItems = std::min(ChunkMax, GroupItems - At);
      int64_t W = std::min<int64_t>(T, NItems);
      // Governed: the chunk's aggregate flops (not one small item's) drive
      // the width model — cross-item chunks are many small items, and it
      // is their sum that justifies workers.
      Governor::Grant Grant;
      if (Governed && W > 1) {
        Governor::global().acquireFlops(2.0 * static_cast<double>(M) *
                                            static_cast<double>(N) *
                                            static_cast<double>(K) *
                                            static_cast<double>(NItems),
                                        W, Grant);
        I->countGrant(Grant);
        W = Grant.width();
      }
      std::vector<std::unique_ptr<detail::GemmWorkspace>> Owned(
          static_cast<size_t>(W));
      std::vector<detail::GemmWorkspace *> WSs(static_cast<size_t>(W));
      for (int64_t WI = 0; WI < W; ++WI) {
        Owned[WI] = Plan->acquire();
        if (!Owned[WI]) {
          Owned[WI] = std::make_unique<detail::GemmWorkspace>();
          Owned[WI]->ensure(Plan->G);
        }
        WSs[WI] = Owned[WI].get();
      }
      BatchJob Job{&Plan->G, Items, Idx.data() + At, NItems, W, WSs.data()};
      if (Grant.reservation().Count > 0)
        ThreadPool::global().runTeam(Grant.reservation(), &runBatchItems,
                                     &Job);
      else
        ThreadPool::global().parallel(W, &runBatchItems, &Job);
      for (int64_t WI = 0; WI < W; ++WI)
        Plan->release(std::move(Owned[WI]));
    }
  }
  return Error::success();
}

Error Engine::sgemmStridedBatched(Trans TA, Trans TB, int64_t M, int64_t N,
                                  int64_t K, float Alpha, const float *A,
                                  int64_t Lda, int64_t StrideA,
                                  const float *B, int64_t Ldb,
                                  int64_t StrideB, float Beta, float *C,
                                  int64_t Ldc, int64_t StrideC,
                                  int64_t BatchCount) {
  if (BatchCount < 0)
    return errorf("gemm engine: negative batch count");
  if (StrideA < 0 || StrideB < 0 || StrideC < 0)
    return errorf("gemm engine: negative batch stride");
  // Disjoint-C rule (same as cuBLAS): items may run concurrently, so
  // overlapping C regions would race — and would not match sequential
  // semantics anyway.
  if (BatchCount > 1 && M > 0 && N > 0 && StrideC < Ldc * N)
    return errorf("gemm engine: StrideC (%lld) overlaps C items "
                  "(need >= Ldc * N = %lld)",
                  static_cast<long long>(StrideC),
                  static_cast<long long>(Ldc * N));
  std::vector<GemmBatchItem> Items(static_cast<size_t>(BatchCount));
  for (int64_t Ix = 0; Ix < BatchCount; ++Ix)
    Items[Ix] = GemmBatchItem{TA,
                              TB,
                              M,
                              N,
                              K,
                              Alpha,
                              A + Ix * StrideA,
                              Lda,
                              B + Ix * StrideB,
                              Ldb,
                              Beta,
                              C + Ix * StrideC,
                              Ldc};
  return sgemmBatched(Items.data(), BatchCount);
}

Expected<PlanChoice> Engine::planFor(Trans TA, Trans TB, int64_t M,
                                     int64_t N, int64_t K) {
  if (M <= 0 || N <= 0 || K <= 0)
    return errorf("gemm engine: planFor needs positive dimensions");
  PlanKey Key{static_cast<uint8_t>(TA),
              static_cast<uint8_t>(TB),
              M,
              N,
              K,
              I->plannedThreads(),
              I->Cfg.Isa};
  if (!I->CacheOn) {
    Expected<std::shared_ptr<ExecPlan>> Built = I->build(Key);
    if (!Built)
      return Built.takeError();
    return Built.take()->Choice;
  }
  Error Err = Error::success();
  std::shared_ptr<ExecPlan> Plan = I->lookupOrBuild(Key, Err);
  if (!Plan)
    return std::move(Err);
  return Plan->Choice;
}

Error Engine::warm(Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                   bool Wait) {
  if (M <= 0 || N <= 0 || K <= 0)
    return Error::success(); // degenerate shapes never plan
  PlanKey Key{static_cast<uint8_t>(TA),
              static_cast<uint8_t>(TB),
              M,
              N,
              K,
              I->plannedThreads(),
              I->Cfg.Isa};
  std::shared_ptr<ExecPlan> Plan;
  if (!I->CacheOn) {
    Expected<std::shared_ptr<ExecPlan>> Built = I->build(Key);
    if (!Built)
      return Built.takeError();
    Plan = Built.take();
  } else {
    Error Err = Error::success();
    Plan = I->lookupOrBuild(Key, Err);
    if (!Plan)
      return Err;
  }
  const PlanChoice &Choice = Plan->Choice;
  const bool WantExo = I->Cfg.Series == EngineSeries::Exo ||
                       (I->Cfg.Series == EngineSeries::Auto &&
                        Choice.Src != PlanSource::Fallback);
  if (!WantExo)
    return Error::success(); // fixed kernels have nothing to precompile
  // Prefetch the plan's whole kernel family (main + the edge widths this
  // problem dispatches) so the disk cache serves every later process. The
  // plan's resolved geometry — not the host cache model — supplies NC, so
  // an EngineConfig::Blocks override prefetches the edges it will use.
  const exo::IsaLib *PIsa =
      I->Cfg.Isa ? I->Cfg.Isa : ukr::bestIsaForMr(Choice.MR);
  std::vector<ukr::UkrConfig> Family;
  Family.push_back(
      ukr::shapeConfig(Choice.MR, Choice.NR, PIsa, I->Cfg.UnrollCompute));
  const int64_t Nc = std::max<int64_t>(Plan->G.Nc, 1);
  std::vector<bool> Seen(static_cast<size_t>(Choice.NR), false);
  for (int64_t Jc = 0; Jc < N; Jc += Nc) {
    int64_t W = std::min(Nc, N - Jc) % Choice.NR;
    if (W == 0 || Seen[W])
      continue;
    Seen[W] = true;
    Family.push_back(
        ukr::shapeConfig(Choice.MR, W, PIsa, I->Cfg.UnrollCompute));
  }
  ukr::KernelService::global().prefetchBatch(Family);
  if (Wait)
    ukr::KernelService::global().wait();
  return Error::success();
}

Error Engine::warm(DType Ty, Trans TA, Trans TB, int64_t M, int64_t N,
                   int64_t K, bool Wait) {
  if (Ty == DType::F32)
    return warm(TA, TB, M, N, K, Wait);
  if (M <= 0 || N <= 0 || K <= 0)
    return Error::success(); // degenerate shapes never plan
  PlanKey Key{static_cast<uint8_t>(TA),
              static_cast<uint8_t>(TB),
              M,
              N,
              K,
              I->plannedThreads(),
              I->Cfg.Isa,
              static_cast<uint8_t>(Ty)};
  std::shared_ptr<ExecPlan> Plan;
  if (!I->CacheOn) {
    Expected<std::shared_ptr<ExecPlan>> Built = I->build(Key);
    if (!Built)
      return Built.takeError();
    Plan = Built.take();
  } else {
    Error Err = Error::success();
    Plan = I->lookupOrBuild(Key, Err);
    if (!Plan)
      return Err;
  }
  if (Ty == DType::I8I32)
    return Error::success(); // built-in scalar dot: nothing to precompile
  // F16/BF16 plans execute the f32 main kernel over convert-packed panels
  // and never dispatch edge kernels, so only the main config prefetches.
  const PlanChoice &Choice = Plan->Choice;
  const bool WantExo = I->Cfg.Series == EngineSeries::Exo ||
                       (I->Cfg.Series == EngineSeries::Auto &&
                        Choice.Src != PlanSource::Fallback);
  if (!WantExo)
    return Error::success();
  const exo::IsaLib *PIsa =
      I->Cfg.Isa ? I->Cfg.Isa : ukr::bestIsaForMr(Choice.MR);
  std::vector<ukr::UkrConfig> Family;
  Family.push_back(
      ukr::shapeConfig(Choice.MR, Choice.NR, PIsa, I->Cfg.UnrollCompute));
  ukr::KernelService::global().prefetchBatch(Family);
  if (Wait)
    ukr::KernelService::global().wait();
  return Error::success();
}

void Engine::clearPlanCache() {
  std::unique_lock<std::shared_mutex> UL(I->Mu);
  for (auto It = I->Cache.begin(); It != I->Cache.end();) {
    if (It->second.Building)
      ++It; // the in-flight builder still owns this entry
    else
      It = I->Cache.erase(It);
  }
}

size_t Engine::planCount() const {
  std::shared_lock<std::shared_mutex> SL(I->Mu);
  size_t N = 0;
  for (const auto &[Key, E] : I->Cache)
    if (E.Plan)
      ++N;
  return N;
}

EngineStats Engine::stats() const {
  EngineStats S;
  S.Hits = I->Hits.load(std::memory_order_relaxed);
  S.Misses = I->Misses.load(std::memory_order_relaxed);
  S.Builds = I->Builds.load(std::memory_order_relaxed);
  S.Rebuilds = I->Rebuilds.load(std::memory_order_relaxed);
  S.Evictions = I->Evictions.load(std::memory_order_relaxed);
  S.Degenerate = I->Degenerate.load(std::memory_order_relaxed);
  S.StickyErrors = I->StickyErrors.load(std::memory_order_relaxed);
  S.BatchedItems = I->BatchedItems.load(std::memory_order_relaxed);
  S.BatchedGroups = I->BatchedGroups.load(std::memory_order_relaxed);
  S.BatchedCrossItem = I->BatchedCrossItem.load(std::memory_order_relaxed);
  S.PlansFromModel = I->PlansFromModel.load(std::memory_order_relaxed);
  S.PlansFromPrior = I->PlansFromPrior.load(std::memory_order_relaxed);
  S.PlansFromTuned = I->PlansFromTuned.load(std::memory_order_relaxed);
  S.PriorRejected = I->PriorRejected.load(std::memory_order_relaxed);
  S.GovGrants = I->GovGrants.load(std::memory_order_relaxed);
  S.GovShapeClamped = I->GovShapeClamped.load(std::memory_order_relaxed);
  S.GovOccClamped = I->GovOccClamped.load(std::memory_order_relaxed);
  S.GovWidthSum = I->GovWidthSum.load(std::memory_order_relaxed);
  {
    // A gauge, not a counter: the cache's live per-dtype contents, read
    // under the shared lock like planCount().
    std::shared_lock<std::shared_mutex> SL(I->Mu);
    for (const auto &[Key, E] : I->Cache)
      if (E.Plan && Key.Ty < DTypeCount)
        ++S.PlansByDtype[Key.Ty];
  }
  return S;
}

void Engine::resetStats() {
  I->Hits.store(0);
  I->Misses.store(0);
  I->Builds.store(0);
  I->Rebuilds.store(0);
  I->Evictions.store(0);
  I->Degenerate.store(0);
  I->StickyErrors.store(0);
  I->BatchedItems.store(0);
  I->BatchedGroups.store(0);
  I->BatchedCrossItem.store(0);
  I->PlansFromModel.store(0);
  I->PlansFromPrior.store(0);
  I->PlansFromTuned.store(0);
  I->PriorRejected.store(0);
  I->GovGrants.store(0);
  I->GovShapeClamped.store(0);
  I->GovOccClamped.store(0);
  I->GovWidthSum.store(0);
}

const char *Engine::seriesName() const { return I->Name; }
