//===- RefGemm.h - Naive reference GEMM -----------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Triple-loop column-major SGEMM used as the correctness oracle for every
/// optimized path in the repository. Deliberately unoptimized.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_REFGEMM_H
#define GEMM_REFGEMM_H

#include "gemm/DType.h"

#include <cstdint>

namespace gemm {

enum class Trans : uint8_t; // Gemm.h

/// C = alpha * A * B + beta * C with column-major operands: A is m x k
/// (leading dimension Lda), B is k x n, C is m x n. Beta == 0 overwrites C
/// without reading it, matching the driver's BLAS semantics.
void refSgemm(int64_t M, int64_t N, int64_t K, float Alpha, const float *A,
              int64_t Lda, const float *B, int64_t Ldb, float Beta, float *C,
              int64_t Ldc);

/// Typed reference mirroring Engine::gemm's per-dtype contract
/// (docs/PRECISION.md): operands are raw storage in \p Ty's element types,
/// C = alpha * op(A) * op(B) + beta * C with per-operand transposition.
///
///   F32    double accumulate, one rounding to f32 (refSgemm semantics).
///   F16    inputs upconverted via f16ToF32, double accumulate, alpha/beta
///   BF16   in f32, one RNE rounding to storage at the end. The engine
///          rounds once per Kc depth block instead, so comparisons against
///          this oracle are ULP-bounded, not bitwise.
///   I8I32  exact: i32 accumulate with two's-complement wraparound,
///          integer alpha/beta — the engine must match bitwise.
///
/// Beta == 0 overwrites C without reading it, as above.
void refGemmT(DType Ty, Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
              double Alpha, const void *A, int64_t Lda, const void *B,
              int64_t Ldb, double Beta, void *C, int64_t Ldc);

} // namespace gemm

#endif // GEMM_REFGEMM_H
