//===- RefGemm.h - Naive reference GEMM -----------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Triple-loop column-major SGEMM used as the correctness oracle for every
/// optimized path in the repository. Deliberately unoptimized.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_REFGEMM_H
#define GEMM_REFGEMM_H

#include <cstdint>

namespace gemm {

/// C = alpha * A * B + beta * C with column-major operands: A is m x k
/// (leading dimension Lda), B is k x n, C is m x n. Beta == 0 overwrites C
/// without reading it, matching the driver's BLAS semantics.
void refSgemm(int64_t M, int64_t N, int64_t K, float Alpha, const float *A,
              int64_t Lda, const float *B, int64_t Ldb, float Beta, float *C,
              int64_t Ldc);

} // namespace gemm

#endif // GEMM_REFGEMM_H
