//===- CacheModel.cpp -----------------------------------------------------===//

#include "gemm/CacheModel.h"

#include "exo/support/Str.h"

#include <algorithm>
#include <fstream>

using namespace gemm;

namespace {

/// Reads one sysfs cache attribute; empty string when unreadable.
std::string readSysfs(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::string();
  std::string S;
  std::getline(In, S);
  return S;
}

/// Parses "32K" / "1024K" / "33792K".
int64_t parseSizeString(const std::string &S) {
  if (S.empty())
    return 0;
  int64_t V = std::atoll(S.c_str());
  if (S.back() == 'K')
    V *= 1024;
  else if (S.back() == 'M')
    V *= 1024 * 1024;
  return V;
}

/// Ways needed to hold \p Bytes in a cache of the given way size.
int64_t waysFor(int64_t Bytes, int64_t WaySize) {
  return (Bytes + WaySize - 1) / WaySize;
}

} // namespace

CacheConfig CacheConfig::host() {
  CacheConfig Cfg;
  // Scan cpu0's cache indices for data/unified caches.
  for (int Index = 0; Index < 8; ++Index) {
    std::string Base =
        exo::strf("/sys/devices/system/cpu/cpu0/cache/index%d/", Index);
    std::string Type = readSysfs(Base + "type");
    if (Type.empty())
      break;
    if (Type != "Data" && Type != "Unified")
      continue;
    std::string LevelS = readSysfs(Base + "level");
    int Level = std::atoi(LevelS.c_str());
    CacheLevel L;
    L.SizeBytes = parseSizeString(readSysfs(Base + "size"));
    L.Assoc = std::atoi(readSysfs(Base + "ways_of_associativity").c_str());
    int Line = std::atoi(readSysfs(Base + "coherency_line_size").c_str());
    if (Line > 0)
      L.LineBytes = Line;
    if (!L.present())
      continue;
    if (Level == 1)
      Cfg.L1 = L;
    else if (Level == 2)
      Cfg.L2 = L;
    else if (Level == 3)
      Cfg.L3 = L;
  }
  // Fall back to a typical server part when detection failed.
  if (!Cfg.L1.present())
    Cfg.L1 = {32 * 1024, 8, 64};
  if (!Cfg.L2.present())
    Cfg.L2 = {1024 * 1024, 16, 64};
  return Cfg;
}

CacheConfig CacheConfig::carmel() {
  CacheConfig Cfg;
  Cfg.L1 = {64 * 1024, 4, 64};
  Cfg.L2 = {2 * 1024 * 1024, 16, 64};
  Cfg.L3 = {4 * 1024 * 1024, 16, 64};
  return Cfg;
}

std::string CacheConfig::describe() const {
  auto One = [](const CacheLevel &L) {
    if (!L.present())
      return std::string("-");
    return exo::strf("%lldK/%d", static_cast<long long>(L.SizeBytes / 1024),
                     L.Assoc);
  };
  return "L1 " + One(L1) + ", L2 " + One(L2) + ", L3 " + One(L3);
}

std::string BlockSizes::describe() const {
  return exo::strf("mc=%lld kc=%lld nc=%lld", static_cast<long long>(MC),
                   static_cast<long long>(KC), static_cast<long long>(NC));
}

BlockSizes gemm::analyticalBlockSizes(const CacheConfig &Caches, int64_t Mr,
                                      int64_t Nr, unsigned ElemBytes) {
  BlockSizes B;
  const int64_t S = ElemBytes;

  // kc from L1: ways(mr*kc) + ways(kc*nr) + 1 <= W_L1.
  {
    const CacheLevel &L1 = Caches.L1;
    int64_t Way = L1.waySize();
    int64_t Best = 4;
    for (int64_t Kc = 4; Kc <= 8192; Kc += 4) {
      int64_t Ways = waysFor(Mr * Kc * S, Way) + waysFor(Kc * Nr * S, Way) + 1;
      if (Ways <= L1.Assoc)
        Best = Kc;
      else
        break;
    }
    B.KC = Best;
  }

  // mc from L2: ways(mc*kc) + 2 <= W_L2 (one way for the streaming B
  // micro-panel, one for the C tile).
  {
    const CacheLevel &L2 = Caches.L2;
    int64_t Way = L2.waySize();
    int64_t Best = Mr;
    for (int64_t Mc = Mr; Mc <= 65536; Mc += Mr) {
      int64_t Ways = waysFor(Mc * B.KC * S, Way) + 2;
      if (Ways <= L2.Assoc)
        Best = Mc;
      else
        break;
    }
    B.MC = Best;
  }

  // nc from L3 (generous default when absent). Large shared L3s are capped:
  // a single core's fair share is what matters, and past a few thousand
  // columns the packed-B working set only hurts (BLIS caps nc similarly).
  const int64_t NcCap = ((8192 + Nr - 1) / Nr) * Nr;
  if (Caches.L3.present()) {
    const CacheLevel &L3 = Caches.L3;
    int64_t Way = L3.waySize();
    int64_t Best = Nr;
    for (int64_t Nc = Nr; Nc <= NcCap; Nc += Nr) {
      int64_t Ways = waysFor(B.KC * Nc * S, Way) + 2;
      if (Ways <= L3.Assoc)
        Best = Nc;
      else
        break;
    }
    B.NC = Best;
  } else {
    B.NC = ((4096 + Nr - 1) / Nr) * Nr;
  }
  return B;
}

BlockSizes gemm::fixedBlockSizes(int64_t Mr, int64_t Nr) {
  BlockSizes B;
  B.MC = ((256 + Mr - 1) / Mr) * Mr;
  B.KC = 256;
  B.NC = ((4096 + Nr - 1) / Nr) * Nr;
  return B;
}
