//===- RefGemm.cpp --------------------------------------------------------===//

#include "gemm/RefGemm.h"

using namespace gemm;

void gemm::refSgemm(int64_t M, int64_t N, int64_t K, float Alpha,
                    const float *A, int64_t Lda, const float *B, int64_t Ldb,
                    float Beta, float *C, int64_t Ldc) {
  for (int64_t J = 0; J < N; ++J) {
    for (int64_t I = 0; I < M; ++I) {
      double Acc = 0.0;
      for (int64_t P = 0; P < K; ++P)
        Acc += static_cast<double>(A[I + P * Lda]) * B[P + J * Ldb];
      // Beta == 0 must not read C (BLAS semantics): the oracle has to
      // agree with the driver that NaN/Inf in uninitialized C buffers is
      // overwritten, or comparisons against it would mask the bug.
      double Prior = Beta == 0.0f
                         ? 0.0
                         : static_cast<double>(Beta) * C[I + J * Ldc];
      C[I + J * Ldc] = static_cast<float>(Alpha * Acc + Prior);
    }
  }
}
