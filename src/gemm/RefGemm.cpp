//===- RefGemm.cpp --------------------------------------------------------===//

#include "gemm/RefGemm.h"
#include "gemm/Gemm.h"

using namespace gemm;

void gemm::refSgemm(int64_t M, int64_t N, int64_t K, float Alpha,
                    const float *A, int64_t Lda, const float *B, int64_t Ldb,
                    float Beta, float *C, int64_t Ldc) {
  for (int64_t J = 0; J < N; ++J) {
    for (int64_t I = 0; I < M; ++I) {
      double Acc = 0.0;
      for (int64_t P = 0; P < K; ++P)
        Acc += static_cast<double>(A[I + P * Lda]) * B[P + J * Ldb];
      // Beta == 0 must not read C (BLAS semantics): the oracle has to
      // agree with the driver that NaN/Inf in uninitialized C buffers is
      // overwritten, or comparisons against it would mask the bug.
      double Prior = Beta == 0.0f
                         ? 0.0
                         : static_cast<double>(Beta) * C[I + J * Ldc];
      C[I + J * Ldc] = static_cast<float>(Alpha * Acc + Prior);
    }
  }
}

namespace {

/// op(A)(i, p) for column-major storage: the transposed operand is stored
/// p-major, so the two index roles swap.
template <typename T>
inline T opA(const T *A, Trans TA, int64_t I, int64_t P, int64_t Lda) {
  return TA == Trans::None ? A[I + P * Lda] : A[P + I * Lda];
}

template <typename T>
inline T opB(const T *B, Trans TB, int64_t P, int64_t J, int64_t Ldb) {
  return TB == Trans::None ? B[P + J * Ldb] : B[J + P * Ldb];
}

/// The half-precision oracle: storage bits decoded through \p Dec, double
/// accumulate, alpha/beta in f32, one \p Enc rounding at the end.
void refHalf(Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
             float Alpha, const uint16_t *A, int64_t Lda, const uint16_t *B,
             int64_t Ldb, float Beta, uint16_t *C, int64_t Ldc,
             float (*Dec)(uint16_t), uint16_t (*Enc)(float)) {
  for (int64_t J = 0; J < N; ++J)
    for (int64_t I = 0; I < M; ++I) {
      double Acc = 0.0;
      for (int64_t P = 0; P < K; ++P)
        Acc += static_cast<double>(Dec(opA(A, TA, I, P, Lda))) *
               Dec(opB(B, TB, P, J, Ldb));
      double Prior = Beta == 0.0f ? 0.0
                                  : static_cast<double>(Beta) *
                                        Dec(C[I + J * Ldc]);
      C[I + J * Ldc] = Enc(static_cast<float>(
          static_cast<double>(Alpha) * Acc + Prior));
    }
}

} // namespace

void gemm::refGemmT(DType Ty, Trans TA, Trans TB, int64_t M, int64_t N,
                    int64_t K, double Alpha, const void *A, int64_t Lda,
                    const void *B, int64_t Ldb, double Beta, void *C,
                    int64_t Ldc) {
  switch (Ty) {
  case DType::F32:
    for (int64_t J = 0; J < N; ++J)
      for (int64_t I = 0; I < M; ++I) {
        const float *Af = static_cast<const float *>(A);
        const float *Bf = static_cast<const float *>(B);
        float *Cf = static_cast<float *>(C);
        double Acc = 0.0;
        for (int64_t P = 0; P < K; ++P)
          Acc += static_cast<double>(opA(Af, TA, I, P, Lda)) *
                 opB(Bf, TB, P, J, Ldb);
        double Prior =
            Beta == 0.0 ? 0.0 : Beta * Cf[I + J * Ldc];
        Cf[I + J * Ldc] = static_cast<float>(Alpha * Acc + Prior);
      }
    return;
  case DType::F16:
    refHalf(TA, TB, M, N, K, static_cast<float>(Alpha),
            static_cast<const uint16_t *>(A), Lda,
            static_cast<const uint16_t *>(B), Ldb,
            static_cast<float>(Beta), static_cast<uint16_t *>(C), Ldc,
            f16ToF32, f32ToF16);
    return;
  case DType::BF16:
    refHalf(TA, TB, M, N, K, static_cast<float>(Alpha),
            static_cast<const uint16_t *>(A), Lda,
            static_cast<const uint16_t *>(B), Ldb,
            static_cast<float>(Beta), static_cast<uint16_t *>(C), Ldc,
            bf16ToF32, f32ToBf16);
    return;
  case DType::I8I32: {
    const int8_t *Ai = static_cast<const int8_t *>(A);
    const int8_t *Bi = static_cast<const int8_t *>(B);
    int32_t *Ci = static_cast<int32_t *>(C);
    // All arithmetic detours through uint32_t: i32 overflow is undefined
    // in C++, but the engine's contract is two's-complement wraparound.
    const uint32_t AlphaU = static_cast<uint32_t>(
        static_cast<int32_t>(static_cast<int64_t>(Alpha)));
    const uint32_t BetaU = static_cast<uint32_t>(
        static_cast<int32_t>(static_cast<int64_t>(Beta)));
    for (int64_t J = 0; J < N; ++J)
      for (int64_t I = 0; I < M; ++I) {
        uint32_t Acc = 0;
        for (int64_t P = 0; P < K; ++P)
          Acc += static_cast<uint32_t>(
              static_cast<int32_t>(opA(Ai, TA, I, P, Lda)) *
              static_cast<int32_t>(opB(Bi, TB, P, J, Ldb)));
        uint32_t Prior =
            Beta == 0.0
                ? 0u
                : BetaU * static_cast<uint32_t>(Ci[I + J * Ldc]);
        Ci[I + J * Ldc] = static_cast<int32_t>(AlphaU * Acc + Prior);
      }
    return;
  }
  }
}
