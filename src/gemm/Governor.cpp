//===- Governor.cpp -------------------------------------------------------===//

#include "gemm/Governor.h"

#include "exo/support/Env.h"
#include "gemm/Planner.h"
#include "gemm/PriorDb.h"
#include "obs/Obs.h"

#include <cstdlib>
#include <thread>

using namespace gemm;

namespace {
int64_t hardwareWidth() {
  unsigned N = std::thread::hardware_concurrency();
  return static_cast<int64_t>(N > 0 ? N : 1);
}
} // namespace

Governor::Governor(int64_t CeilingIn, int64_t MinWorkFlopsIn)
    : Ceiling(CeilingIn > 0 ? CeilingIn : 1),
      MinWorkFlops(MinWorkFlopsIn) {}

Governor::Governor() {
  // Ceiling: the aggregate extra-thread budget across every concurrent
  // caller. Default: one team member per hardware thread — N callers then
  // share the machine instead of each claiming it whole.
  Ceiling = exo::envInt("EXO_GEMM_GOVERNOR_MAX",
                        std::getenv("EXO_GEMM_GOVERNOR_MAX"),
                        /*Default=*/hardwareWidth(), /*Min=*/1,
                        /*Max=*/1 << 20);
  // Work floor: flops that justify one extra team member. The default —
  // 2 MFLOP, a 100x100x100 problem — is the scale where packing and one
  // barrier round stop dominating a core's runtime.
  MinWorkFlops = exo::envInt("EXO_GEMM_GOVERNOR_MIN_WORK",
                             std::getenv("EXO_GEMM_GOVERNOR_MIN_WORK"),
                             /*Default=*/int64_t(1) << 21, /*Min=*/0,
                             /*Max=*/int64_t(1) << 60);
  // The measured strong-scaling curve, when bench_threads has stored one
  // for this machine. Read once: the curve is static per machine.
  Curve = PriorDb::global().lookupCurve();
}

Governor &Governor::global() {
  static Governor G;
  return G;
}

bool Governor::enabledByEnv() {
  const char *V = std::getenv("EXO_GEMM_GOVERNOR");
  return V && *V && std::atoi(V) != 0;
}

void Governor::releaseBudget(int64_t Extra) {
  if (Extra > 0)
    Outstanding.fetch_sub(Extra, std::memory_order_relaxed);
}

Governor::Grant::~Grant() {
  if (!Gov)
    return;
  // Workers are normally consumed by executeGemmReserved; return any that
  // were not (error paths, tests), then the budget.
  ThreadPool::global().release(Res);
  Gov->releaseBudget(Width - 1);
}

void Governor::acquire(int64_t M, int64_t N, int64_t K, int64_t PlanWidth,
                       Grant &G) {
  if (M <= 0 || N <= 0 || K <= 0) {
    acquireFlops(0, PlanWidth, G);
    return;
  }
  acquireFlops(2.0 * static_cast<double>(M) * static_cast<double>(N) *
                   static_cast<double>(K),
               PlanWidth, G);
}

void Governor::acquireFlops(double Flops, int64_t PlanWidth, Grant &G) {
  EXO_OBS_SPAN("gov.acquire");
  G.Gov = this;
  G.Width = 1;
  NGrants.fetch_add(1, std::memory_order_relaxed);

  // Shape model: how many members this problem can productively use,
  // capped by the plan's own width (workspace/barrier hard cap) and the
  // process ceiling.
  const int64_t Cap = std::min(PlanWidth, Ceiling);
  int64_t Desired = governorWidthForWork(Flops, MinWorkFlops, Cap,
                                         Curve ? &*Curve : nullptr);
  if (Desired < Cap) {
    G.ShapeClamp = true;
    NShapeClamped.fetch_add(1, std::memory_order_relaxed);
    obs::mark("gov.clamp.shape");
  }
  if (Desired <= 1) {
    NWidthSum.fetch_add(1, std::memory_order_relaxed);
    return; // sequential: no budget, no reservation
  }

  // Budget: claim extra threads against the process-wide ceiling. CAS
  // loop so concurrent acquirers can each take a partial slice; never
  // waits — whatever is left (possibly nothing) is the grant.
  int64_t WantExtra = Desired - 1;
  int64_t Cur = Outstanding.load(std::memory_order_relaxed);
  int64_t GotExtra = 0;
  while (true) {
    int64_t Avail = (Ceiling - 1) - Cur;
    GotExtra = std::min(WantExtra, std::max<int64_t>(0, Avail));
    if (GotExtra == 0)
      break;
    if (Outstanding.compare_exchange_weak(Cur, Cur + GotExtra,
                                          std::memory_order_relaxed))
      break;
  }

  // Pool occupancy: the budget says how many we may take; the pool says
  // how many are actually idle (explicit parallel() users and their FIFO
  // waiters are respected — tryReserve never touches the head waiter's
  // quota and never blocks).
  int64_t Reserved = 0;
  if (GotExtra > 0) {
    Reserved = ThreadPool::global().tryReserve(GotExtra,
                                               /*SpawnCap=*/Ceiling - 1,
                                               G.Res);
    if (Reserved < GotExtra) {
      releaseBudget(GotExtra - Reserved); // return the slice we can't use
      GotExtra = Reserved;
    }
  }
  G.Width = 1 + GotExtra;
  if (G.Width < Desired) {
    G.OccClamp = true;
    NOccClamped.fetch_add(1, std::memory_order_relaxed);
    obs::mark("gov.clamp.occupancy");
  }
  if (G.Width >= Cap)
    NFullWidth.fetch_add(1, std::memory_order_relaxed);
  NWidthSum.fetch_add(static_cast<uint64_t>(G.Width),
                      std::memory_order_relaxed);
}

GovernorStats Governor::stats() const {
  GovernorStats S;
  S.Grants = NGrants.load(std::memory_order_relaxed);
  S.ShapeClamped = NShapeClamped.load(std::memory_order_relaxed);
  S.OccupancyClamped = NOccClamped.load(std::memory_order_relaxed);
  S.FullWidth = NFullWidth.load(std::memory_order_relaxed);
  S.WidthSum = NWidthSum.load(std::memory_order_relaxed);
  return S;
}
