//===- Kernels.cpp --------------------------------------------------------===//

#include "gemm/Kernels.h"

using namespace gemm;

namespace {
/// 256-bit vector of 8 floats, unaligned-safe.
typedef float V8f __attribute__((vector_size(32), aligned(4)));

__attribute__((target("avx2,fma"), always_inline)) inline V8f
loadV8(const float *P) {
  return *reinterpret_cast<const V8f *>(P);
}
__attribute__((target("avx2,fma"), always_inline)) inline void
storeV8(float *P, V8f V) {
  *reinterpret_cast<V8f *>(P) = V;
}
} // namespace

bool gemm::baselineKernelsUsable() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

/// "NEON" stand-in: plain intrinsics-style loops, compiler-scheduled.
__attribute__((target("avx2,fma"))) void
gemm::handVectorKernel8x12(int64_t Kc, int64_t Ldc, const float *Ac,
                           const float *Bc, float *C) {
  V8f Creg[12];
  for (int J = 0; J < 12; ++J)
    Creg[J] = loadV8(C + J * Ldc);
  for (int64_t K = 0; K < Kc; ++K) {
    V8f A0 = loadV8(Ac + K * 8);
    const float *B = Bc + K * 12;
    for (int J = 0; J < 12; ++J)
      Creg[J] += A0 * B[J];
  }
  for (int J = 0; J < 12; ++J)
    storeV8(C + J * Ldc, Creg[J]);
}

namespace {

/// Shared fully unrolled BLIS-style body; Prefetch selects the BLIS
/// in-kernel prefetching (a template parameter so each variant compiles to
/// its own straight-line code, as the assembly original would).
template <bool Prefetch>
__attribute__((target("avx2,fma"))) inline void
blisBody(int64_t Kc, int64_t Ldc, const float *Ac, const float *Bc,
         float *C) {
  if (Prefetch) {
    // BLIS prefetches the C tile before the k loop so the final update
    // does not stall.
    for (int J = 0; J < 12; ++J)
      __builtin_prefetch(C + J * Ldc, 1, 3);
  }
  V8f C0 = loadV8(C + 0 * Ldc), C1 = loadV8(C + 1 * Ldc);
  V8f C2 = loadV8(C + 2 * Ldc), C3 = loadV8(C + 3 * Ldc);
  V8f C4 = loadV8(C + 4 * Ldc), C5 = loadV8(C + 5 * Ldc);
  V8f C6 = loadV8(C + 6 * Ldc), C7 = loadV8(C + 7 * Ldc);
  V8f C8 = loadV8(C + 8 * Ldc), C9 = loadV8(C + 9 * Ldc);
  V8f C10 = loadV8(C + 10 * Ldc), C11 = loadV8(C + 11 * Ldc);
  for (int64_t K = 0; K < Kc; ++K) {
    if (Prefetch) {
      __builtin_prefetch(Ac + K * 8 + 64, 0, 0);
      __builtin_prefetch(Bc + K * 12 + 96, 0, 0);
    }
    V8f A0 = loadV8(Ac + K * 8);
    const float *B = Bc + K * 12;
    C0 += A0 * B[0];
    C1 += A0 * B[1];
    C2 += A0 * B[2];
    C3 += A0 * B[3];
    C4 += A0 * B[4];
    C5 += A0 * B[5];
    C6 += A0 * B[6];
    C7 += A0 * B[7];
    C8 += A0 * B[8];
    C9 += A0 * B[9];
    C10 += A0 * B[10];
    C11 += A0 * B[11];
  }
  storeV8(C + 0 * Ldc, C0);
  storeV8(C + 1 * Ldc, C1);
  storeV8(C + 2 * Ldc, C2);
  storeV8(C + 3 * Ldc, C3);
  storeV8(C + 4 * Ldc, C4);
  storeV8(C + 5 * Ldc, C5);
  storeV8(C + 6 * Ldc, C6);
  storeV8(C + 7 * Ldc, C7);
  storeV8(C + 8 * Ldc, C8);
  storeV8(C + 9 * Ldc, C9);
  storeV8(C + 10 * Ldc, C10);
  storeV8(C + 11 * Ldc, C11);
}

} // namespace

__attribute__((target("avx2,fma"))) void
gemm::blisStyleKernel8x12(int64_t Kc, int64_t Ldc, const float *Ac,
                          const float *Bc, float *C) {
  blisBody<false>(Kc, Ldc, Ac, Bc, C);
}

__attribute__((target("avx2,fma"))) void
gemm::blisStyleKernel8x12Prefetch(int64_t Kc, int64_t Ldc, const float *Ac,
                                  const float *Bc, float *C) {
  blisBody<true>(Kc, Ldc, Ac, Bc, C);
}

MicroKernel gemm::handVectorKernel() {
  return {8, 12, &handVectorKernel8x12, "hand-vector 8x12"};
}

MicroKernel gemm::blisKernel() {
  return {8, 12, &blisStyleKernel8x12, "blis-style 8x12"};
}

MicroKernel gemm::blisKernelPrefetch() {
  return {8, 12, &blisStyleKernel8x12Prefetch, "blis-style 8x12 +prefetch"};
}
