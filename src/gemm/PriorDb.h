//===- PriorDb.h - Persistent machine-keyed tuning priors -----------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent half of the autotuner (Tuner.h): measured schedule winners
/// survive the process in an on-disk database the planner consults before
/// its analytical model. A record pins the *machine* it was measured on —
/// host-executable ISAs, cache geometry, JIT compiler identity, record
/// version — via the same FNV-1a content addressing the JIT disk cache
/// uses, so a copied database or a hardware/toolchain change can never
/// smuggle a stale tile into the planner.
///
/// Layout under the database root (default `~/.cache/exo-ukr/priors`,
/// override with EXO_GEMM_PRIOR_DB):
///
///   p<16-hex-digits>.prior   exact-shape record: key is
///                            FNV-1a(machine, m, n, k)
///   c<16-hex-digits>.prior   shape-class representative: key is
///                            FNV-1a(machine, class); holds the best tuned
///                            record of the class, consulted when no exact
///                            record exists
///   *.prior.bad              quarantined entries (unparsable, truncated,
///                            or version-mismatched records; see
///                            PriorDb::quarantine)
///   .lock                    flock'd around store/quarantine/prune
///
/// Writers stage into a `.tmp.<pid>` file and rename into place (readers
/// never observe a partial record); the lock only serializes mutating
/// operations of concurrent processes. Records are key=value text, one
/// field per line, version-checked on read: anything that fails the checked
/// parse is treated as corrupt, never half-trusted.
///
/// The never-lose gate lives in the record itself: every tuned record
/// stores the measured GFLOPS of the analytical model's own choice on the
/// same shape (ModelGflops / ModelMR / ModelNR). The planner refuses any
/// record whose stored margin is non-positive, so a tuned prior cannot
/// lose to the model on its own shape (see Planner::choosePlanWithDb and
/// docs/TUNING.md).
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_PRIORDB_H
#define GEMM_PRIORDB_H

#include "exo/support/Error.h"
#include "gemm/DType.h"
#include "ukr/KernelRegistry.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gemm {

/// Bump when the record format (or the meaning of a field) changes
/// incompatibly; readers quarantine records of any other version.
inline constexpr uint32_t PriorDbVersion = 1;

/// FNV-1a over everything that decides whether a measured winner transfers:
/// the host-executable ISA set, the detected cache geometry, the JIT
/// compiler identity, and the record version, 0x1f-separated like
/// jitArtifactKey. Computed once per process.
uint64_t priorMachineKey();

/// The power-of-two shape-class bucket a problem falls in (e.g.
/// "g128x128x2048"): the fallback key for shapes without an exact record.
std::string priorShapeClass(int64_t M, int64_t N, int64_t K);

/// One measured tuning winner. Blocking fields at 0 mean "use the
/// analytical model's blocking for this tile"; Prefetch and Fma are
/// recorded for forward compatibility (the v1 search resolves the FMA
/// style through ukr::shapeConfig and has no prefetch knob yet).
struct PriorRecord {
  uint32_t Version = PriorDbVersion;
  uint64_t Machine = 0; ///< priorMachineKey() of the measuring host.
  /// Element type the winner was measured under. Part of the storage key
  /// for non-f32 records; absent from pre-dtype records, which parse as
  /// f32 (the only dtype that existed when they were written).
  DType Dtype = DType::F32;
  int64_t M = 0, N = 0, K = 0;
  std::string Class; ///< priorShapeClass(M, N, K), denormalized.
  std::string Isa = "portable"; ///< ISA the tuned kernel ran on (name).
  int64_t MR = 0, NR = 0;
  int64_t MC = 0, NC = 0, KC = 0;
  bool UnrollCompute = false;
  int64_t Prefetch = 0;
  std::string Fma = "auto";
  int64_t Threads = 1; ///< Team size the measurement used.
  double TunedGflops = 0;
  /// The never-lose baseline: the analytical choice, measured on the same
  /// machine, data, and time budget as the winner.
  int64_t ModelMR = 0, ModelNR = 0;
  double ModelGflops = 0;

  /// Stored margin over the model's own choice; the planner rejects
  /// records where this is non-positive.
  double margin() const { return TunedGflops - ModelGflops; }
};

/// One point of the measured strong-scaling curve (bench_threads
/// --store-curve): macro-kernel speedup at team size Width over team size
/// 1 on this machine. The governor's width model interpolates these to
/// decide how many threads a shape can productively use; see
/// governorWidthForShape (Planner.h) and docs/CONCURRENCY.md.
struct GovernorCurvePoint {
  int64_t Width = 1;
  double Speedup = 1.0;
};

/// Record (de)serialization: versioned key=value text. parsePriorRecord
/// fails (rather than defaulting) on a missing mandatory field, a value
/// that does not fully parse, or a version other than PriorDbVersion —
/// the corrupt-quarantine path.
std::string formatPriorRecord(const PriorRecord &R);
exo::Expected<PriorRecord> parsePriorRecord(const std::string &Text);

/// The kernel config a record's tile maps to, through the one
/// ISA-per-shape rule (ukr::shapeConfig) every other layer uses. The
/// fuzzer's prior-shaped samples and the Engine agree on this mapping.
ukr::UkrConfig priorRecordConfig(const PriorRecord &R);

/// See file comment.
class PriorDb {
public:
  /// A database over an explicit root directory (tests, CLI --db).
  explicit PriorDb(std::string Root);

  /// The process-wide database at $EXO_GEMM_PRIOR_DB /
  /// ~/.cache/exo-ukr/priors.
  static PriorDb &global();

  /// Repoints the global database (tests, `ukr_cachectl --db`). Affects
  /// subsequent operations only. Note the Engine's plan cache snapshots
  /// planner decisions: clearPlanCache() after repointing.
  static void setGlobalRoot(const std::string &Root);

  /// False when no usable root directory exists (empty
  /// EXO_GEMM_PRIOR_DB disables the database entirely).
  bool enabled() const;

  const std::string &root() const { return Root; }

  /// Validates and atomically publishes \p R under its exact-shape key;
  /// also installs it as the class representative when it beats the
  /// incumbent's TunedGflops. Machine defaults to priorMachineKey() when 0.
  exo::Error store(const PriorRecord &R);

  /// Best record for this machine and shape: the exact (m, n, k) record
  /// when present, else the shape-class representative. Corrupt entries
  /// encountered on the way are quarantined; machine-key or dimension
  /// mismatches are rejected (counted in stats()). \p ExactOut reports
  /// which level hit.
  std::optional<PriorRecord> lookup(int64_t M, int64_t N, int64_t K,
                                    bool *ExactOut = nullptr);

  /// Dtype-keyed variant: non-f32 records live under dtype-qualified keys,
  /// so an f16 lookup can only ever see f16 winners (and F32 behaves
  /// exactly like the overload above).
  std::optional<PriorRecord> lookup(int64_t M, int64_t N, int64_t K,
                                    DType Ty, bool *ExactOut = nullptr);

  struct Entry {
    PriorRecord Rec; ///< Defaults when Corrupt — must not be trusted.
    std::string Path;
    uint64_t Bytes = 0;
    int64_t Mtime = 0;
    bool Corrupt = false;      ///< Unparsable or version-mismatched.
    bool MachineMatch = false; ///< Rec.Machine == priorMachineKey().
    bool ClassEntry = false;   ///< A c*.prior class representative.
  };

  /// All live (non-quarantined) entries, oldest first.
  std::vector<Entry> list();

  /// Atomically publishes the machine-keyed strong-scaling curve under
  /// `g<16-hex>.prior` (key FNV-1a(machine)); replaces any previous curve.
  /// Points must be positive-width, positive-speedup, and include width 1.
  exo::Error storeCurve(const std::vector<GovernorCurvePoint> &Points);

  /// The stored curve for this machine, sorted by width; nullopt when
  /// absent, unparsable, version-mismatched, or measured elsewhere
  /// (curve files are machine-pinned exactly like tuned records).
  std::optional<std::vector<GovernorCurvePoint>> lookupCurve();

  /// Renames every corrupt entry to `<name>.bad` so it is never reparsed;
  /// returns how many were quarantined.
  size_t quarantine();

  /// Deletes quarantined `.bad` files, foreign-machine records when
  /// \p DropForeign, and — when \p MaxRecords > 0 — the oldest records
  /// over that cap. Returns the number of files removed.
  size_t prune(bool DropForeign, int64_t MaxRecords = 0);

  /// Process-wide monotonic counters (all PriorDb instances).
  struct Stats {
    uint64_t Lookups = 0;
    uint64_t Hits = 0;      ///< exact-shape lookup hits
    uint64_t ClassHits = 0; ///< class-representative fallback hits
    uint64_t MachineMismatch = 0;
    uint64_t CorruptSeen = 0;
    uint64_t Quarantined = 0;
  };
  static Stats stats();

private:
  std::string Root;
  bool RootUsable = false;

  std::string entryPath(uint64_t Key, bool ClassEntry) const;
  std::optional<PriorRecord> readChecked(const std::string &Path,
                                         bool &SawFile);
};

} // namespace gemm

#endif // GEMM_PRIORDB_H
