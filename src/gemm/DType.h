//===- DType.h - GEMM element types as a first-class dimension ------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving stack's precision dimension (paper §III-D): every layer from
/// `Engine::gemm` down to the gemmd wire protocol keys on a `DType` instead
/// of assuming `float`. Four dtypes are served:
///
///   F32    f32 in, f32 out, f32 accumulate — the historical path, bitwise
///          unchanged by this refactor.
///   F16    IEEE binary16 storage for A/B/C; packing upconverts panels to
///          f32 so the f32 micro-kernels (JIT or portable) do the FMAs, and
///          C is rounded back to f16 (round-to-nearest-even) once per Kc
///          depth block. Alpha/beta are applied in f32.
///   BF16   bfloat16 storage, same contract as F16 (f32 accumulate, RNE
///          rounding at the same points).
///   I8I32  int8 A/B, int32 C, int32 accumulate with two's-complement
///          wraparound (the cuBLAS/oneDNN igemm convention). Panels use the
///          VNNI-style K-grouped layout (groups of I8KGroup along k packed
///          contiguously per micro-row) so a dot-product ISA can consume
///          them directly; the portable fallback kernel reads the same
///          layout scalar-wise. Alpha/beta must be integers (they scale the
///          i32 accumulator exactly; a fractional scale is a quantization
///          policy, not a GEMM parameter).
///
/// Conversion helpers here are the single definition of f16/bf16 <-> f32
/// used by packing, copy-out, references, and tests, so "ULP-bounded"
/// comparisons compare against the very rounding the engine performs.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_DTYPE_H
#define GEMM_DTYPE_H

#include "exo/ir/Type.h"

#include <cstdint>
#include <string>

namespace gemm {

/// See file comment.
enum class DType : uint8_t { F32 = 0, F16 = 1, BF16 = 2, I8I32 = 3 };

/// Number of serving dtypes (array sizing for per-dtype counters).
inline constexpr unsigned DTypeCount = 4;

/// K-group width of the I8I32 packed panel layout (VNNI/sdot lane group).
inline constexpr int64_t I8KGroup = 4;

/// Display / CLI name: "f32", "f16", "bf16", "i8".
const char *dtypeName(DType Ty);

/// Parses dtypeName() spellings (plus "i8i32" as an alias for "i8").
bool parseDType(const std::string &Name, DType &Out);

/// Bytes of one A/B storage element (4, 2, 2, 1).
unsigned dtypeInBytes(DType Ty);

/// Bytes of one C storage element (4, 2, 2, 4).
unsigned dtypeOutBytes(DType Ty);

/// Bytes of one *packed panel* element: f16/bf16 panels are upconverted to
/// f32 at pack time (4), i8 panels stay i8 (1). This is the element size
/// the cache-model blocking must reason about.
unsigned dtypePackBytes(DType Ty);

/// True for I8I32 (integer accumulate, GOPS not GFLOPS).
bool dtypeIsInt(DType Ty);

/// The exo IR scalar kind a dtype's *input* elements map to when a kernel
/// is generated for it (F32->f32, F16->f16, BF16->bf16, I8I32->i8).
exo::ScalarKind dtypeScalarKind(DType Ty);

//===----------------------------------------------------------------------===//
// f16 / bf16 storage conversion (software, round-to-nearest-even)
//===----------------------------------------------------------------------===//

/// IEEE binary16 bits -> f32. Handles subnormals, infinities, NaNs.
float f16ToF32(uint16_t H);

/// f32 -> IEEE binary16 bits, round-to-nearest-even; overflow -> infinity.
uint16_t f32ToF16(float F);

/// bfloat16 bits -> f32 (exact: bf16 is the top half of f32).
float bf16ToF32(uint16_t H);

/// f32 -> bfloat16 bits, round-to-nearest-even; NaN is quieted.
uint16_t f32ToBf16(float F);

} // namespace gemm

#endif // GEMM_DTYPE_H
