//===- CacheModel.h - Analytical blocking model (Low et al.) --------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analytical model of "Analytical Modeling Is Enough for
/// High-Performance BLIS" (Low, Igual, Smith, Quintana-Ortí, TOMS 2016),
/// which the paper's ALG+ series uses to pick the cache blocking parameters
/// (mc, kc, nc) without auto-tuning:
///
///   - kc: the B micro-panel (kc x nr) and A micro-panel (mr x kc) share L1;
///     maximize kc subject to ways(Ar) + ways(Br) + 1 (for C) <= W_L1.
///   - mc: the packed A block (mc x kc) lives in L2 alongside a streaming B
///     micro-panel and C tile; maximize mc with two ways reserved.
///   - nc: the packed B block (kc x nc) lives in L3 (when present) with the
///     same one-way-per-stream reservation.
///
/// Results are rounded down to multiples of mr / nr / 4 respectively.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_CACHEMODEL_H
#define GEMM_CACHEMODEL_H

#include <cstdint>
#include <string>

namespace gemm {

/// One cache level. Assoc == 0 means the level is absent.
struct CacheLevel {
  int64_t SizeBytes = 0;
  int Assoc = 0;
  int LineBytes = 64;

  bool present() const { return Assoc > 0 && SizeBytes > 0; }
  int64_t waySize() const { return SizeBytes / Assoc; }
};

struct CacheConfig {
  CacheLevel L1, L2, L3;

  /// Detects the host's data caches from sysfs; falls back to a typical
  /// server configuration (32K/8, 1M/16, 32M/16) when unavailable.
  static CacheConfig host();

  /// The NVIDIA Carmel (paper testbed) configuration: 64K/4 L1D, 2M/16 L2
  /// per cluster, 4M/16 L3.
  static CacheConfig carmel();

  std::string describe() const;
};

/// The GotoBLAS blocking parameters.
struct BlockSizes {
  int64_t MC = 0, KC = 0, NC = 0;

  std::string describe() const;
};

/// Runs the analytical model for a micro-kernel of shape mr x nr over
/// elements of \p ElemBytes.
BlockSizes analyticalBlockSizes(const CacheConfig &Caches, int64_t Mr,
                                int64_t Nr, unsigned ElemBytes);

/// A deliberately naive fixed blocking (for the model-vs-fixed ablation).
BlockSizes fixedBlockSizes(int64_t Mr, int64_t Nr);

} // namespace gemm

#endif // GEMM_CACHEMODEL_H
