//===- MicroKernel.cpp ----------------------------------------------------===//

#include "gemm/MicroKernel.h"

using namespace gemm;

KernelProvider::~KernelProvider() = default;
