//===- Pack.cpp -----------------------------------------------------------===//

#include "gemm/Pack.h"

#include <algorithm>

using namespace gemm;

void gemm::packAStrided(const float *A, int64_t RowStride, int64_t ColStride,
                        int64_t Mc, int64_t Kc, int64_t Mr, float Alpha,
                        EdgePack Mode, float *Buf) {
  for (int64_t P = 0, Ir = 0; Ir < Mc; ++P, Ir += Mr) {
    int64_t MrEff = std::min(Mr, Mc - Ir);
    float *Panel = Buf + P * Kc * Mr;
    if (Mode == EdgePack::Tight || MrEff == Mr) {
      // kc x mr_eff, k-major.
      for (int64_t K = 0; K < Kc; ++K)
        for (int64_t I = 0; I < MrEff; ++I)
          Panel[K * MrEff + I] =
              Alpha * A[(Ir + I) * RowStride + K * ColStride];
      continue;
    }
    for (int64_t K = 0; K < Kc; ++K) {
      for (int64_t I = 0; I < MrEff; ++I)
        Panel[K * Mr + I] =
            Alpha * A[(Ir + I) * RowStride + K * ColStride];
      for (int64_t I = MrEff; I < Mr; ++I)
        Panel[K * Mr + I] = 0.0f;
    }
  }
}

void gemm::packBStrided(const float *B, int64_t RowStride, int64_t ColStride,
                        int64_t Kc, int64_t Nc, int64_t Nr, float Alpha,
                        EdgePack Mode, float *Buf) {
  for (int64_t P = 0, Jr = 0; Jr < Nc; ++P, Jr += Nr) {
    int64_t NrEff = std::min(Nr, Nc - Jr);
    float *Panel = Buf + P * Kc * Nr;
    if (Mode == EdgePack::Tight || NrEff == Nr) {
      // kc x nr_eff, k-major.
      for (int64_t K = 0; K < Kc; ++K)
        for (int64_t J = 0; J < NrEff; ++J)
          Panel[K * NrEff + J] =
              Alpha * B[K * RowStride + (Jr + J) * ColStride];
      continue;
    }
    for (int64_t K = 0; K < Kc; ++K) {
      for (int64_t J = 0; J < NrEff; ++J)
        Panel[K * Nr + J] =
            Alpha * B[K * RowStride + (Jr + J) * ColStride];
      for (int64_t J = NrEff; J < Nr; ++J)
        Panel[K * Nr + J] = 0.0f;
    }
  }
}

void gemm::packA(const float *A, int64_t Lda, int64_t Mc, int64_t Kc,
                 int64_t Mr, float Alpha, EdgePack Mode, float *Buf) {
  // Column-major A: element (i, k) at A[i + k*Lda].
  packAStrided(A, 1, Lda, Mc, Kc, Mr, Alpha, Mode, Buf);
}

void gemm::packB(const float *B, int64_t Ldb, int64_t Kc, int64_t Nc,
                 int64_t Nr, float Alpha, EdgePack Mode, float *Buf) {
  // Column-major B: element (k, j) at B[k + j*Ldb].
  packBStrided(B, 1, Ldb, Kc, Nc, Nr, Alpha, Mode, Buf);
}
