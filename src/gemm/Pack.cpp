//===- Pack.cpp -----------------------------------------------------------===//

#include "gemm/Pack.h"

#include <algorithm>

using namespace gemm;

void gemm::packAStrided(const float *A, int64_t RowStride, int64_t ColStride,
                        int64_t Mc, int64_t Kc, int64_t Mr, float Alpha,
                        EdgePack Mode, float *Buf) {
  for (int64_t P = 0, Ir = 0; Ir < Mc; ++P, Ir += Mr) {
    int64_t MrEff = std::min(Mr, Mc - Ir);
    float *Panel = Buf + P * Kc * Mr;
    if (Mode == EdgePack::Tight || MrEff == Mr) {
      // kc x mr_eff, k-major.
      for (int64_t K = 0; K < Kc; ++K)
        for (int64_t I = 0; I < MrEff; ++I)
          Panel[K * MrEff + I] =
              Alpha * A[(Ir + I) * RowStride + K * ColStride];
      continue;
    }
    for (int64_t K = 0; K < Kc; ++K) {
      for (int64_t I = 0; I < MrEff; ++I)
        Panel[K * Mr + I] =
            Alpha * A[(Ir + I) * RowStride + K * ColStride];
      for (int64_t I = MrEff; I < Mr; ++I)
        Panel[K * Mr + I] = 0.0f;
    }
  }
}

void gemm::packBStrided(const float *B, int64_t RowStride, int64_t ColStride,
                        int64_t Kc, int64_t Nc, int64_t Nr, float Alpha,
                        EdgePack Mode, float *Buf) {
  for (int64_t P = 0, Jr = 0; Jr < Nc; ++P, Jr += Nr) {
    int64_t NrEff = std::min(Nr, Nc - Jr);
    float *Panel = Buf + P * Kc * Nr;
    if (Mode == EdgePack::Tight || NrEff == Nr) {
      // kc x nr_eff, k-major.
      for (int64_t K = 0; K < Kc; ++K)
        for (int64_t J = 0; J < NrEff; ++J)
          Panel[K * NrEff + J] =
              Alpha * B[K * RowStride + (Jr + J) * ColStride];
      continue;
    }
    for (int64_t K = 0; K < Kc; ++K) {
      for (int64_t J = 0; J < NrEff; ++J)
        Panel[K * Nr + J] =
            Alpha * B[K * RowStride + (Jr + J) * ColStride];
      for (int64_t J = NrEff; J < Nr; ++J)
        Panel[K * Nr + J] = 0.0f;
    }
  }
}

void gemm::packAConvStrided(DType Ty, const uint16_t *A, int64_t RowStride,
                            int64_t ColStride, int64_t Mc, int64_t Kc,
                            int64_t Mr, float Alpha, float *Buf) {
  const bool Bf = Ty == DType::BF16;
  for (int64_t P = 0, Ir = 0; Ir < Mc; ++P, Ir += Mr) {
    int64_t MrEff = std::min(Mr, Mc - Ir);
    float *Panel = Buf + P * Kc * Mr;
    for (int64_t K = 0; K < Kc; ++K) {
      for (int64_t I = 0; I < MrEff; ++I) {
        uint16_t H = A[(Ir + I) * RowStride + K * ColStride];
        Panel[K * Mr + I] = Alpha * (Bf ? bf16ToF32(H) : f16ToF32(H));
      }
      for (int64_t I = MrEff; I < Mr; ++I)
        Panel[K * Mr + I] = 0.0f;
    }
  }
}

void gemm::packBConvStrided(DType Ty, const uint16_t *B, int64_t RowStride,
                            int64_t ColStride, int64_t Kc, int64_t Nc,
                            int64_t Nr, float Alpha, float *Buf) {
  const bool Bf = Ty == DType::BF16;
  for (int64_t P = 0, Jr = 0; Jr < Nc; ++P, Jr += Nr) {
    int64_t NrEff = std::min(Nr, Nc - Jr);
    float *Panel = Buf + P * Kc * Nr;
    for (int64_t K = 0; K < Kc; ++K) {
      for (int64_t J = 0; J < NrEff; ++J) {
        uint16_t H = B[K * RowStride + (Jr + J) * ColStride];
        Panel[K * Nr + J] = Alpha * (Bf ? bf16ToF32(H) : f16ToF32(H));
      }
      for (int64_t J = NrEff; J < Nr; ++J)
        Panel[K * Nr + J] = 0.0f;
    }
  }
}

void gemm::packAI8Strided(const int8_t *A, int64_t RowStride,
                          int64_t ColStride, int64_t Mc, int64_t Kc,
                          int64_t Mr, int8_t *Buf) {
  const int64_t KG = (Kc + I8KGroup - 1) / I8KGroup;
  for (int64_t P = 0, Ir = 0; Ir < Mc; ++P, Ir += Mr) {
    int64_t MrEff = std::min(Mr, Mc - Ir);
    int8_t *Panel = Buf + P * KG * I8KGroup * Mr;
    for (int64_t G = 0; G < KG; ++G) {
      int8_t *Group = Panel + G * Mr * I8KGroup;
      for (int64_t I = 0; I < Mr; ++I) {
        for (int64_t Kk = 0; Kk < I8KGroup; ++Kk) {
          int64_t K = G * I8KGroup + Kk;
          Group[I * I8KGroup + Kk] =
              I < MrEff && K < Kc ? A[(Ir + I) * RowStride + K * ColStride]
                                  : int8_t(0);
        }
      }
    }
  }
}

void gemm::packBI8Strided(const int8_t *B, int64_t RowStride,
                          int64_t ColStride, int64_t Kc, int64_t Nc,
                          int64_t Nr, int8_t *Buf) {
  const int64_t KG = (Kc + I8KGroup - 1) / I8KGroup;
  for (int64_t P = 0, Jr = 0; Jr < Nc; ++P, Jr += Nr) {
    int64_t NrEff = std::min(Nr, Nc - Jr);
    int8_t *Panel = Buf + P * KG * I8KGroup * Nr;
    for (int64_t G = 0; G < KG; ++G) {
      int8_t *Group = Panel + G * Nr * I8KGroup;
      for (int64_t J = 0; J < Nr; ++J) {
        for (int64_t Kk = 0; Kk < I8KGroup; ++Kk) {
          int64_t K = G * I8KGroup + Kk;
          Group[J * I8KGroup + Kk] =
              J < NrEff && K < Kc ? B[K * RowStride + (Jr + J) * ColStride]
                                  : int8_t(0);
        }
      }
    }
  }
}

void gemm::packA(const float *A, int64_t Lda, int64_t Mc, int64_t Kc,
                 int64_t Mr, float Alpha, EdgePack Mode, float *Buf) {
  // Column-major A: element (i, k) at A[i + k*Lda].
  packAStrided(A, 1, Lda, Mc, Kc, Mr, Alpha, Mode, Buf);
}

void gemm::packB(const float *B, int64_t Ldb, int64_t Kc, int64_t Nc,
                 int64_t Nr, float Alpha, EdgePack Mode, float *Buf) {
  // Column-major B: element (k, j) at B[k + j*Ldb].
  packBStrided(B, 1, Ldb, Kc, Nc, Nr, Alpha, Mode, Buf);
}
