//===- Engine.h - Plan-once/execute-many GEMM front door ------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-path entry point: `Engine::sgemm` looks like a BLAS call,
/// but behind it every distinct problem shape is planned once — micro-
/// kernel tile chosen by the planner (Planner.h), kernels resolved through
/// the provider, blocking clamped, team factorized, edge kernels probed —
/// and the resulting ExecPlan is cached and re-executed on every later
/// call. The paper's thesis (specialize the micro-kernel to the problem,
/// §IV) moves from bench-harness code into the dispatch layer.
///
/// Guarantees:
///   - Results are bitwise identical to the legacy blisGemm/blisGemmT path
///     for the same (provider, tile, plan): both front doors execute the
///     exact same detail::executeGemm (enforced by EngineTest's
///     differential sweep).
///   - Degenerate calls (m/n/k == 0, alpha == 0) return before touching
///     the plan cache and never allocate or plan.
///   - The steady state performs zero heap allocations per call: plans are
///     cached, workspaces pooled per plan, and team dispatch uses the
///     ThreadPool's raw-callback form (asserted by engine_alloc_test).
///
/// Concurrency: one Engine may serve concurrent callers. Plan lookup takes
/// a shared lock; a miss builds the plan exactly once per key (concurrent
/// requesters for the same shape wait rather than duplicate the JIT work).
///
/// Knobs: EXO_GEMM_PLAN_CACHE (0 disables caching — plan per call),
/// EXO_GEMM_PLAN_CACHE_CAP (entry cap, approximate-LRU eviction past it),
/// EXO_GEMM_PLAN_PRIOR (baseline JSON consulted by the planner); see
/// docs/KNOBS.md.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_ENGINE_H
#define GEMM_ENGINE_H

#include "gemm/Gemm.h"
#include "gemm/Planner.h"

#include <memory>

namespace gemm {

/// How an Engine sources micro-kernels. The fixed series mirror the
/// paper's baselines; Auto prefers generated kernels and degrades to the
/// portable BLIS-style kernel when the JIT cannot produce one.
enum class EngineSeries : uint8_t {
  Auto,         ///< Exo when the JIT delivers, Blis otherwise
  Exo,          ///< generated kernel per shape (ExoProvider)
  HandVector,   ///< the hand-written 8x12 vector kernel ("ALG+NEON")
  Blis,         ///< the BLIS-style C kernel ("ALG+BLIS")
  BlisPrefetch, ///< the prefetching variant ("BLIS")
  Custom,       ///< caller-supplied provider (EngineConfig::Provider)
};

struct EngineConfig {
  EngineSeries Series = EngineSeries::Auto;
  /// Provider for EngineSeries::Custom; shared so cached plans can hold
  /// the kernels alive past caller scope.
  std::shared_ptr<KernelProvider> Provider;
  /// Restricts planner tile candidates to this library's vector width
  /// (the figure benches keep every series at one width). Part of the
  /// plan key.
  const exo::IsaLib *Isa = nullptr;
  /// Pin the full tile instead of consulting the planner (> 0 both).
  int64_t ForceMR = 0, ForceNR = 0;
  /// GemmPlan::Threads semantics: 0 resolves EXO_GEMM_THREADS per call.
  int64_t Threads = 0;
  /// Request kernels through KernelService's non-blocking path: cold
  /// shapes run the portable fallback while the specialized kernel
  /// compiles, and their provisional plans re-resolve once it lands.
  bool Async = false;
  bool SpecializeEdges = true;
  bool UnrollCompute = false;
  /// Ablation overrides; unset uses the analytical model / edge probe
  /// (GemmPlan::standard).
  std::optional<BlockSizes> Blocks;
  std::optional<EdgePack> PackMode;
  /// Plan-cache controls; -1 defers to EXO_GEMM_PLAN_CACHE /
  /// EXO_GEMM_PLAN_CACHE_CAP (default: on, 256 entries).
  int PlanCache = -1;
  int64_t PlanCacheCap = -1;
  /// Measured-prior baseline for the planner; "" defers to
  /// EXO_GEMM_PLAN_PRIOR (unset: analytical model only).
  std::string PriorPath;
};

/// Plan-cache counters (relaxed; exact under external synchronization).
struct EngineStats {
  uint64_t Hits = 0;       ///< calls served by a cached plan
  uint64_t Misses = 0;     ///< calls that had to build (or wait for) a plan
  uint64_t Builds = 0;     ///< plans built (exactly one per cached key)
  uint64_t Rebuilds = 0;   ///< provisional plans re-resolved after warm-up
  uint64_t Evictions = 0;  ///< plans dropped by the cache cap
  uint64_t Degenerate = 0; ///< calls answered by the quick return
  uint64_t StickyErrors = 0; ///< sticky build failures recorded in the cache
};

/// See file comment.
class Engine {
public:
  Engine(); ///< EngineConfig defaults (Auto series).
  explicit Engine(const EngineConfig &Cfg);
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// The process-wide default-configured Engine (examples, dnn drivers).
  static Engine &global();

  /// C = alpha * op(A) * op(B) + beta * C, column-major, through the plan
  /// cache. Identical semantics to blisGemmT (beta == 0 overwrites, A/B
  /// unread on degenerate calls); fails on negative dimensions or when no
  /// runnable kernel exists for the shape.
  exo::Error sgemm(Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                   float Alpha, const float *A, int64_t Lda, const float *B,
                   int64_t Ldb, float Beta, float *C, int64_t Ldc);

  /// Non-transposed convenience form.
  exo::Error sgemm(int64_t M, int64_t N, int64_t K, float Alpha,
                   const float *A, int64_t Lda, const float *B, int64_t Ldb,
                   float Beta, float *C, int64_t Ldc) {
    return sgemm(Trans::None, Trans::None, M, N, K, Alpha, A, Lda, B, Ldb,
                 Beta, C, Ldc);
  }

  /// Builds (and caches) the plan for a shape ahead of traffic and
  /// prefetches its kernel family through KernelService. \p Wait blocks
  /// until the background builds resolve, so the next sgemm runs fully
  /// specialized — the `ukr_cachectl warm --shape/--model` path.
  exo::Error warm(Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                  bool Wait = true);

  /// Tile + provider the cached (or freshly built) plan for this shape
  /// uses; builds the plan as a side effect. For tests and bench labels.
  exo::Expected<PlanChoice> planFor(Trans TA, Trans TB, int64_t M, int64_t N,
                                    int64_t K);

  /// Drops every cached plan (bench_dispatch's cold-plan series; tests).
  void clearPlanCache();

  /// Cached plan count.
  size_t planCount() const;

  EngineStats stats() const;
  void resetStats();

  /// The active series' display name ("exo", "blis", ...).
  const char *seriesName() const;

private:
  struct Impl;
  Impl *I;
};

} // namespace gemm

#endif // GEMM_ENGINE_H
