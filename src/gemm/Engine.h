//===- Engine.h - Plan-once/execute-many GEMM front door ------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-path entry point: `Engine::sgemm` looks like a BLAS call,
/// but behind it every distinct problem shape is planned once — micro-
/// kernel tile chosen by the planner (Planner.h), kernels resolved through
/// the provider, blocking clamped, team factorized, edge kernels probed —
/// and the resulting ExecPlan is cached and re-executed on every later
/// call. The paper's thesis (specialize the micro-kernel to the problem,
/// §IV) moves from bench-harness code into the dispatch layer.
///
/// Guarantees:
///   - Results are bitwise identical to the legacy blisGemm/blisGemmT path
///     for the same (provider, tile, plan): both front doors execute the
///     exact same detail::executeGemm (enforced by EngineTest's
///     differential sweep).
///   - Degenerate calls (m/n/k == 0, alpha == 0) return before touching
///     the plan cache and never allocate or plan.
///   - The steady state performs zero heap allocations per call: plans are
///     cached, workspaces pooled per plan, and team dispatch uses the
///     ThreadPool's raw-callback form (asserted by engine_alloc_test).
///
/// Concurrency: one Engine may serve concurrent callers. Plan lookup takes
/// a shared lock; a miss builds the plan exactly once per key (concurrent
/// requesters for the same shape wait rather than duplicate the JIT work).
///
/// Knobs: EXO_GEMM_PLAN_CACHE (0 disables caching — plan per call),
/// EXO_GEMM_PLAN_CACHE_CAP (entry cap, approximate-LRU eviction past it),
/// EXO_GEMM_PLAN_PRIOR (baseline JSON consulted by the planner); see
/// docs/KNOBS.md.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_ENGINE_H
#define GEMM_ENGINE_H

#include "gemm/Gemm.h"
#include "gemm/Planner.h"

#include <memory>

namespace gemm {

/// How an Engine sources micro-kernels. The fixed series mirror the
/// paper's baselines; Auto prefers generated kernels and degrades to the
/// portable BLIS-style kernel when the JIT cannot produce one.
enum class EngineSeries : uint8_t {
  Auto,         ///< Exo when the JIT delivers, Blis otherwise
  Exo,          ///< generated kernel per shape (ExoProvider)
  HandVector,   ///< the hand-written 8x12 vector kernel ("ALG+NEON")
  Blis,         ///< the BLIS-style C kernel ("ALG+BLIS")
  BlisPrefetch, ///< the prefetching variant ("BLIS")
  Custom,       ///< caller-supplied provider (EngineConfig::Provider)
};

struct EngineConfig {
  EngineSeries Series = EngineSeries::Auto;
  /// Provider for EngineSeries::Custom; shared so cached plans can hold
  /// the kernels alive past caller scope.
  std::shared_ptr<KernelProvider> Provider;
  /// Restricts planner tile candidates to this library's vector width
  /// (the figure benches keep every series at one width). Part of the
  /// plan key.
  const exo::IsaLib *Isa = nullptr;
  /// Pin the full tile instead of consulting the planner (> 0 both).
  int64_t ForceMR = 0, ForceNR = 0;
  /// GemmPlan::Threads semantics: 0 resolves EXO_GEMM_THREADS per call.
  int64_t Threads = 0;
  /// Request kernels through KernelService's non-blocking path: cold
  /// shapes run the portable fallback while the specialized kernel
  /// compiles, and their provisional plans re-resolve once it lands.
  bool Async = false;
  bool SpecializeEdges = true;
  bool UnrollCompute = false;
  /// Ablation overrides; unset uses the analytical model / edge probe
  /// (GemmPlan::standard).
  std::optional<BlockSizes> Blocks;
  std::optional<EdgePack> PackMode;
  /// Plan-cache controls; -1 defers to EXO_GEMM_PLAN_CACHE /
  /// EXO_GEMM_PLAN_CACHE_CAP (default: on, 256 entries).
  int PlanCache = -1;
  int64_t PlanCacheCap = -1;
  /// Measured-prior baseline for the planner; "" defers to
  /// EXO_GEMM_PLAN_PRIOR (unset: analytical model only).
  std::string PriorPath;
  /// Consult the autotuner's persistent prior database (PriorDb::global(),
  /// rooted at EXO_GEMM_PRIOR_DB) before the BENCH prior and the model.
  /// false is the ablation arm benches use to measure the model alone.
  bool TunedPriors = true;
  /// Governed dispatch (Governor.h, docs/CONCURRENCY.md): the per-call
  /// team width is granted by the process-wide governor — shape model plus
  /// live pool occupancy — instead of being fixed at the resolved thread
  /// count. Plans are keyed and sized at the fixed width; grants only
  /// narrow the executing team, so results stay bitwise identical.
  /// -1 defers to EXO_GEMM_GOVERNOR (default off — the paper's fixed-team
  /// methodology; gemmd enables it for its shared Engine), 0 off, 1 on.
  int Governor = -1;
};

/// Plan-cache counters (relaxed; exact under external synchronization).
struct EngineStats {
  uint64_t Hits = 0;       ///< calls served by a cached plan
  uint64_t Misses = 0;     ///< calls that had to build (or wait for) a plan
  uint64_t Builds = 0;     ///< plans built (exactly one per cached key)
  uint64_t Rebuilds = 0;   ///< provisional plans re-resolved after warm-up
  uint64_t Evictions = 0;  ///< plans dropped by the cache cap
  uint64_t Degenerate = 0; ///< calls answered by the quick return
  uint64_t StickyErrors = 0; ///< sticky build failures recorded in the cache
  uint64_t BatchedItems = 0;  ///< items seen by the batched entry points
  uint64_t BatchedGroups = 0; ///< distinct shape groups executed in batches
  uint64_t BatchedCrossItem = 0; ///< items run whole-item across the pool
  // Per-plan provenance (PlanSource), counted at build time.
  uint64_t PlansFromModel = 0; ///< analytical-model tiles
  uint64_t PlansFromPrior = 0; ///< BENCH-baseline prior tiles
  uint64_t PlansFromTuned = 0; ///< autotuner prior-database tiles
  /// Prior rows/records rejected during selection: BENCH rows inadmissible
  /// under the chosen ISA plus tuned records failing the never-lose gate.
  uint64_t PriorRejected = 0;
  // Governed dispatch (EngineConfig::Governor; zeros when off).
  uint64_t GovGrants = 0;       ///< calls that went through the governor
  uint64_t GovShapeClamped = 0; ///< grants narrowed by the shape model
  uint64_t GovOccClamped = 0;   ///< grants narrowed by occupancy/budget
  uint64_t GovWidthSum = 0;     ///< sum of granted widths (avg = /GovGrants)
  /// Live plan-cache entries per dtype, indexed by DType (the
  /// `ukr_cachectl stats --json` per-dtype breakdown). Counted at build
  /// time, decremented on eviction — unlike the monotonic counters above,
  /// these describe the cache's current contents.
  uint64_t PlansByDtype[DTypeCount] = {};
};

/// One problem of a batch handed to Engine::sgemmBatched. Identical field
/// semantics to the corresponding sgemm arguments. Precondition: distinct
/// items' C regions must not overlap — small-item groups execute
/// concurrently, one item per pool worker, so an overlap would be a data
/// race (and would break the batched == N-sequential-calls equivalence).
/// A and B may be shared between items freely.
struct GemmBatchItem {
  Trans TA = Trans::None, TB = Trans::None;
  int64_t M = 0, N = 0, K = 0;
  float Alpha = 1.0f;
  const float *A = nullptr;
  int64_t Lda = 0;
  const float *B = nullptr;
  int64_t Ldb = 0;
  float Beta = 0.0f;
  float *C = nullptr;
  int64_t Ldc = 0;
};

/// See file comment.
class Engine {
public:
  Engine(); ///< EngineConfig defaults (Auto series).
  explicit Engine(const EngineConfig &Cfg);
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// The process-wide default-configured Engine (examples, dnn drivers).
  static Engine &global();

  /// The typed front door: C = alpha * op(A) * op(B) + beta * C,
  /// column-major, with operand storage in \p Ty's element types
  /// (dtypeInBytes / dtypeOutBytes; docs/PRECISION.md):
  ///
  ///   F32    identical — bitwise — to sgemm below (it runs the same code).
  ///   F16    A/B/C are IEEE binary16 (uint16_t storage); FMAs in f32 over
  ///   BF16   convert-packed panels (bf16 likewise), alpha/beta applied in
  ///          f32, C rounded to storage (RNE) once per Kc depth block.
  ///   I8I32  A/B are int8, C is int32; i32 accumulate with two's-
  ///          complement wraparound. Alpha and beta must be exact integers
  ///          (a fractional scale is rejected — quantization policy lives
  ///          in the caller).
  ///
  /// Degenerate semantics match sgemm (beta == 0 overwrites in storage
  /// type; A/B unread). Every dtype flows through the same plan cache,
  /// pooled workspaces, and five-loop executor; plans are keyed by dtype.
  exo::Error gemm(DType Ty, Trans TA, Trans TB, int64_t M, int64_t N,
                  int64_t K, double Alpha, const void *A, int64_t Lda,
                  const void *B, int64_t Ldb, double Beta, void *C,
                  int64_t Ldc);

  /// C = alpha * op(A) * op(B) + beta * C, column-major, through the plan
  /// cache — the f32 door of gemm() above (same plans, same executor;
  /// kept as the BLAS-shaped entry the rest of the stack calls). Identical
  /// semantics to blisGemmT (beta == 0 overwrites, A/B unread on
  /// degenerate calls); fails on negative dimensions or when no runnable
  /// kernel exists for the shape.
  exo::Error sgemm(Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                   float Alpha, const float *A, int64_t Lda, const float *B,
                   int64_t Ldb, float Beta, float *C, int64_t Ldc);

  /// Non-transposed convenience form.
  exo::Error sgemm(int64_t M, int64_t N, int64_t K, float Alpha,
                   const float *A, int64_t Lda, const float *B, int64_t Ldb,
                   float Beta, float *C, int64_t Ldc) {
    return sgemm(Trans::None, Trans::None, M, N, K, Alpha, A, Lda, B, Ldb,
                 Beta, C, Ldc);
  }

  /// Executes \p Count independent GEMMs, result-equivalent (bitwise, for
  /// every thread count) to calling sgemm once per item in order. Items
  /// are grouped by (TA, TB, M, N, K) so each distinct shape hits the plan
  /// cache once, and each group picks its execution strategy via the
  /// planner's cache model (batchPrefersCrossItem): large items keep the
  /// intra-item team split, small items run whole — one item per pool
  /// worker with its own pooled packing workspace — so a batch of
  /// thousands of tiny GEMMs stops wasting the pool on shapes too small
  /// to split. Validates every item before any work: on error, no C is
  /// written. Degenerate items (M/N/K == 0, alpha == 0) follow sgemm's
  /// quick-return semantics wherever they sit in the batch.
  exo::Error sgemmBatched(const GemmBatchItem *Items, int64_t Count);

  /// Convenience overload.
  exo::Error sgemmBatched(const std::vector<GemmBatchItem> &Items) {
    return sgemmBatched(Items.data(), static_cast<int64_t>(Items.size()));
  }

  /// Strided-batched form (the cuBLAS-style layout): item i computes
  /// C + i*StrideC = alpha * op(A + i*StrideA) * op(B + i*StrideB) +
  /// beta * (C + i*StrideC), strides in elements. StrideA/StrideB may be 0
  /// (operand shared across items); StrideC must keep the C regions
  /// disjoint — with BatchCount > 1 it must be >= Ldc * N (checked), the
  /// same rule cuBLAS imposes, because items may execute concurrently.
  exo::Error sgemmStridedBatched(Trans TA, Trans TB, int64_t M, int64_t N,
                                 int64_t K, float Alpha, const float *A,
                                 int64_t Lda, int64_t StrideA, const float *B,
                                 int64_t Ldb, int64_t StrideB, float Beta,
                                 float *C, int64_t Ldc, int64_t StrideC,
                                 int64_t BatchCount);

  /// Builds (and caches) the plan for a shape ahead of traffic and
  /// prefetches its kernel family through KernelService. \p Wait blocks
  /// until the background builds resolve, so the next sgemm runs fully
  /// specialized — the `ukr_cachectl warm --shape/--model` path.
  exo::Error warm(Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                  bool Wait = true);

  /// Dtype-aware warm-up (`ukr_cachectl warm --shape --dtype`): builds the
  /// typed plan and prefetches its (single-config, for non-f32) kernel
  /// family. F32 is exactly the overload above.
  exo::Error warm(DType Ty, Trans TA, Trans TB, int64_t M, int64_t N,
                  int64_t K, bool Wait = true);

  /// Tile + provider the cached (or freshly built) plan for this shape
  /// uses; builds the plan as a side effect. For tests and bench labels.
  exo::Expected<PlanChoice> planFor(Trans TA, Trans TB, int64_t M, int64_t N,
                                    int64_t K);

  /// Drops every cached plan (bench_dispatch's cold-plan series; tests).
  void clearPlanCache();

  /// Cached plan count.
  size_t planCount() const;

  EngineStats stats() const;
  void resetStats();

  /// The active series' display name ("exo", "blis", ...).
  const char *seriesName() const;

private:
  struct Impl;
  Impl *I;
};

} // namespace gemm

#endif // GEMM_ENGINE_H
