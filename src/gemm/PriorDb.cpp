//===- PriorDb.cpp --------------------------------------------------------===//

#include "gemm/PriorDb.h"

#include "exo/isa/IsaLib.h"
#include "exo/jit/DiskCache.h"
#include "exo/support/Str.h"
#include "gemm/CacheModel.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace exo;
using namespace gemm;

namespace {

/// mkdir -p. Returns true when the directory exists afterwards.
bool makeDirs(const std::string &Path) {
  if (Path.empty())
    return false;
  std::string Cur = Path[0] == '/' ? "" : ".";
  for (const std::string &Part : split(Path, '/', /*KeepEmpty=*/false)) {
    Cur += "/" + Part;
    if (mkdir(Cur.c_str(), 0755) != 0 && errno != EEXIST)
      return false;
  }
  struct stat St;
  return stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

/// flock on <root>/.lock, released on scope exit; a failure to lock
/// degrades to lockless operation (rename is still atomic).
class ScopedLock {
public:
  explicit ScopedLock(const std::string &Root) {
    Fd = open((Root + "/.lock").c_str(), O_CREAT | O_RDWR, 0644);
    if (Fd >= 0 && flock(Fd, LOCK_EX) != 0) {
      close(Fd);
      Fd = -1;
    }
  }
  ~ScopedLock() {
    if (Fd >= 0) {
      flock(Fd, LOCK_UN);
      close(Fd);
    }
  }

private:
  int Fd = -1;
};

struct GlobalDb {
  std::mutex Mu;
  std::unique_ptr<PriorDb> Db;
};

GlobalDb &globalDb() {
  static GlobalDb G;
  return G;
}

std::string defaultRoot() {
  if (const char *Dir = std::getenv("EXO_GEMM_PRIOR_DB"))
    return Dir; // "" disables (PriorDb("") is never usable)
  if (const char *Xdg = std::getenv("XDG_CACHE_HOME"))
    return std::string(Xdg) + "/exo-ukr/priors";
  if (const char *Home = std::getenv("HOME"))
    return std::string(Home) + "/.cache/exo-ukr/priors";
  return {};
}

std::atomic<uint64_t> GLookups{0}, GHits{0}, GClassHits{0},
    GMachineMismatch{0}, GCorruptSeen{0}, GQuarantined{0};

/// Whole-value checked parses: trailing garbage marks the record corrupt
/// instead of silently truncating (the DiskCache parseMetaU32 lesson).
bool parseI64(const std::string &V, int64_t &Out) {
  if (V.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long X = std::strtoll(V.c_str(), &End, 10);
  if (End == V.c_str() || *End != '\0' || errno == ERANGE)
    return false;
  Out = X;
  return true;
}

bool parseU64Hex(const std::string &V, uint64_t &Out) {
  if (V.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long X = std::strtoull(V.c_str(), &End, 16);
  if (End == V.c_str() || *End != '\0' || errno == ERANGE)
    return false;
  Out = X;
  return true;
}

bool parseF64(const std::string &V, double &Out) {
  if (V.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double X = std::strtod(V.c_str(), &End);
  if (End == V.c_str() || *End != '\0' || errno == ERANGE)
    return false;
  Out = X;
  return true;
}

int64_t roundUpPow2(int64_t V) {
  int64_t P = 1;
  while (P < V && P < (int64_t(1) << 62))
    P <<= 1;
  return P;
}

bool writeAtomically(const std::string &Path, const std::string &Text) {
  std::string Tmp = strf("%s.tmp.%d", Path.c_str(), getpid());
  {
    std::ofstream OS(Tmp, std::ios::trunc);
    if (!OS)
      return false;
    OS << Text;
    if (!OS.flush())
      return false;
  }
  if (rename(Tmp.c_str(), Path.c_str()) != 0) {
    unlink(Tmp.c_str());
    return false;
  }
  return true;
}

uint64_t exactKey(uint64_t Machine, int64_t M, int64_t N, int64_t K,
                  DType Ty = DType::F32) {
  std::string S = strf("exact\x1f%016llx\x1f%lld\x1f%lld\x1f%lld",
                       static_cast<unsigned long long>(Machine),
                       static_cast<long long>(M), static_cast<long long>(N),
                       static_cast<long long>(K));
  // F32 keys stay byte-identical to the pre-dtype scheme so existing
  // databases keep hitting; non-f32 records live under qualified keys.
  if (Ty != DType::F32)
    S += strf("\x1f%s", dtypeName(Ty));
  return fnv1a64(S);
}

uint64_t classKey(uint64_t Machine, const std::string &Class,
                  DType Ty = DType::F32) {
  std::string S = strf("class\x1f%016llx\x1f%s",
                       static_cast<unsigned long long>(Machine),
                       Class.c_str());
  if (Ty != DType::F32)
    S += strf("\x1f%s", dtypeName(Ty));
  return fnv1a64(S);
}

} // namespace

uint64_t gemm::priorMachineKey() {
  static const uint64_t Key = [] {
    const unsigned char Sep = 0x1f;
    uint64_t H = fnv1a64("exo-prior-machine");
    for (const IsaLib *Isa : allIsas()) {
      if (!Isa->hostExecutable())
        continue;
      H = fnv1a64(&Sep, 1, H);
      H = fnv1a64(std::string_view(Isa->name()), H);
    }
    H = fnv1a64(&Sep, 1, H);
    H = fnv1a64(std::string_view(CacheConfig::host().describe()), H);
    H = fnv1a64(&Sep, 1, H);
    H = fnv1a64(std::string_view(jitCompilerIdentity()), H);
    uint32_t V = PriorDbVersion;
    H = fnv1a64(&V, sizeof(V), H);
    return H;
  }();
  return Key;
}

std::string gemm::priorShapeClass(int64_t M, int64_t N, int64_t K) {
  return strf("g%lldx%lldx%lld",
              static_cast<long long>(roundUpPow2(std::max<int64_t>(M, 1))),
              static_cast<long long>(roundUpPow2(std::max<int64_t>(N, 1))),
              static_cast<long long>(roundUpPow2(std::max<int64_t>(K, 1))));
}

std::string gemm::formatPriorRecord(const PriorRecord &R) {
  std::ostringstream O;
  O << "version=" << R.Version << "\n"
    << "machine=" << strf("%016llx", static_cast<unsigned long long>(R.Machine))
    << "\n"
    << "m=" << R.M << "\nn=" << R.N << "\nk=" << R.K << "\n"
    << "class=" << R.Class << "\n";
  // Pre-dtype readers skip unknown keys, and f32 records omit the field
  // entirely, staying byte-identical to the v1 format.
  if (R.Dtype != DType::F32)
    O << "dtype=" << dtypeName(R.Dtype) << "\n";
  O << "isa=" << R.Isa << "\n"
    << "mr=" << R.MR << "\nnr=" << R.NR << "\n"
    << "mc=" << R.MC << "\nnc=" << R.NC << "\nkc=" << R.KC << "\n"
    << "unroll=" << (R.UnrollCompute ? 1 : 0) << "\n"
    << "prefetch=" << R.Prefetch << "\n"
    << "fma=" << R.Fma << "\n"
    << "threads=" << R.Threads << "\n"
    << strf("tuned_gflops=%.17g\n", R.TunedGflops)
    << "model_mr=" << R.ModelMR << "\nmodel_nr=" << R.ModelNR << "\n"
    << strf("model_gflops=%.17g\n", R.ModelGflops);
  return O.str();
}

Expected<PriorRecord> gemm::parsePriorRecord(const std::string &Text) {
  PriorRecord R;
  // Mandatory-field presence mask; a truncated record must fail, not
  // default.
  bool HasVersion = false, HasMachine = false, HasDims = false,
       HasTile = false, HasTuned = false, HasModel = false;
  int64_t DimSeen = 0, TileSeen = 0;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return errorf("prior record: malformed line '%s'", Line.c_str());
    std::string Key = Line.substr(0, Eq);
    std::string Val = Line.substr(Eq + 1);
    int64_t I;
    if (Key == "version") {
      if (!parseI64(Val, I) || I < 0)
        return errorf("prior record: bad version '%s'", Val.c_str());
      R.Version = static_cast<uint32_t>(I);
      HasVersion = true;
    } else if (Key == "machine") {
      if (!parseU64Hex(Val, R.Machine))
        return errorf("prior record: bad machine '%s'", Val.c_str());
      HasMachine = true;
    } else if (Key == "m" || Key == "n" || Key == "k") {
      if (!parseI64(Val, I) || I <= 0)
        return errorf("prior record: bad %s '%s'", Key.c_str(), Val.c_str());
      (Key == "m" ? R.M : Key == "n" ? R.N : R.K) = I;
      HasDims = ++DimSeen >= 3;
    } else if (Key == "class") {
      R.Class = Val;
    } else if (Key == "dtype") {
      if (!parseDType(Val, R.Dtype))
        return errorf("prior record: bad dtype '%s'", Val.c_str());
    } else if (Key == "isa") {
      R.Isa = Val;
    } else if (Key == "mr" || Key == "nr") {
      if (!parseI64(Val, I) || I <= 0)
        return errorf("prior record: bad %s '%s'", Key.c_str(), Val.c_str());
      (Key == "mr" ? R.MR : R.NR) = I;
      HasTile = ++TileSeen >= 2;
    } else if (Key == "mc" || Key == "nc" || Key == "kc") {
      if (!parseI64(Val, I) || I < 0)
        return errorf("prior record: bad %s '%s'", Key.c_str(), Val.c_str());
      (Key == "mc" ? R.MC : Key == "nc" ? R.NC : R.KC) = I;
    } else if (Key == "unroll") {
      if (!parseI64(Val, I))
        return errorf("prior record: bad unroll '%s'", Val.c_str());
      R.UnrollCompute = I != 0;
    } else if (Key == "prefetch") {
      if (!parseI64(Val, I) || I < 0)
        return errorf("prior record: bad prefetch '%s'", Val.c_str());
      R.Prefetch = I;
    } else if (Key == "fma") {
      R.Fma = Val;
    } else if (Key == "threads") {
      if (!parseI64(Val, I) || I < 1)
        return errorf("prior record: bad threads '%s'", Val.c_str());
      R.Threads = I;
    } else if (Key == "tuned_gflops") {
      if (!parseF64(Val, R.TunedGflops))
        return errorf("prior record: bad tuned_gflops '%s'", Val.c_str());
      HasTuned = true;
    } else if (Key == "model_mr" || Key == "model_nr") {
      if (!parseI64(Val, I) || I < 0)
        return errorf("prior record: bad %s '%s'", Key.c_str(), Val.c_str());
      (Key == "model_mr" ? R.ModelMR : R.ModelNR) = I;
    } else if (Key == "model_gflops") {
      if (!parseF64(Val, R.ModelGflops))
        return errorf("prior record: bad model_gflops '%s'", Val.c_str());
      HasModel = true;
    }
    // Unknown keys are skipped: minor-version additions stay readable.
  }
  if (!HasVersion || !HasMachine || !HasDims || !HasTile || !HasTuned ||
      !HasModel)
    return errorf("prior record: truncated (mandatory field missing)");
  if (R.Version != PriorDbVersion)
    return errorf("prior record: version %u (expected %u)", R.Version,
                  PriorDbVersion);
  return R;
}

ukr::UkrConfig gemm::priorRecordConfig(const PriorRecord &R) {
  // The record's ISA name is advisory (the measuring host's choice); the
  // one ISA-per-shape rule re-derives the library so the config is always
  // executable here. The dtype rides along: a non-f32 record materializes
  // the typed kernel config (dtypeScalarKind maps F32 to itself).
  return ukr::shapeConfig(R.MR, R.NR, /*Preferred=*/nullptr,
                          R.UnrollCompute, dtypeScalarKind(R.Dtype));
}

PriorDb::PriorDb(std::string RootDir) : Root(std::move(RootDir)) {
  RootUsable = !Root.empty() && makeDirs(Root);
}

PriorDb &PriorDb::global() {
  GlobalDb &G = globalDb();
  std::lock_guard<std::mutex> Lock(G.Mu);
  if (!G.Db)
    G.Db = std::make_unique<PriorDb>(defaultRoot());
  return *G.Db;
}

void PriorDb::setGlobalRoot(const std::string &RootDir) {
  GlobalDb &G = globalDb();
  std::lock_guard<std::mutex> Lock(G.Mu);
  G.Db = std::make_unique<PriorDb>(RootDir);
}

bool PriorDb::enabled() const { return RootUsable; }

std::string PriorDb::entryPath(uint64_t Key, bool ClassEntry) const {
  return strf("%s/%c%016llx.prior", Root.c_str(), ClassEntry ? 'c' : 'p',
              static_cast<unsigned long long>(Key));
}

std::optional<PriorRecord> PriorDb::readChecked(const std::string &Path,
                                                bool &SawFile) {
  SawFile = false;
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  SawFile = true;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Expected<PriorRecord> R = parsePriorRecord(Buf.str());
  if (!R) {
    // Corrupt (truncated, garbage, or wrong version): quarantine in place
    // so the damaged file is never reparsed, and a later `priors prune`
    // can sweep it.
    GCorruptSeen.fetch_add(1, std::memory_order_relaxed);
    ScopedLock Lock(Root);
    if (rename(Path.c_str(), (Path + ".bad").c_str()) == 0)
      GQuarantined.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  return R.take();
}

Error PriorDb::store(const PriorRecord &In) {
  if (!enabled())
    return errorf("prior db disabled (root: %s)", Root.c_str());
  PriorRecord R = In;
  if (R.M <= 0 || R.N <= 0 || R.K <= 0 || R.MR <= 0 || R.NR <= 0)
    return errorf("prior db: record needs positive m/n/k and mr/nr");
  R.Version = PriorDbVersion;
  if (R.Machine == 0)
    R.Machine = priorMachineKey();
  if (R.Class.empty())
    R.Class = priorShapeClass(R.M, R.N, R.K);
  std::string Text = formatPriorRecord(R);

  ScopedLock Lock(Root);
  std::string Exact =
      entryPath(exactKey(R.Machine, R.M, R.N, R.K, R.Dtype), false);
  if (!writeAtomically(Exact, Text))
    return errorf("prior db: cannot publish %s", Exact.c_str());

  // Class representative: best tuned GFLOPS of the class wins. A corrupt
  // or unreadable incumbent is simply replaced. Classes are dtype-keyed
  // like exact records, so same-class shapes of different dtypes never
  // compete.
  std::string ClassPath =
      entryPath(classKey(R.Machine, R.Class, R.Dtype), true);
  bool Replace = true;
  {
    std::ifstream CIn(ClassPath);
    if (CIn) {
      std::ostringstream Buf;
      Buf << CIn.rdbuf();
      if (Expected<PriorRecord> Cur = parsePriorRecord(Buf.str()))
        Replace = R.TunedGflops > Cur->TunedGflops;
    }
  }
  if (Replace && !writeAtomically(ClassPath, Text))
    return errorf("prior db: cannot publish %s", ClassPath.c_str());
  return Error::success();
}

std::optional<PriorRecord> PriorDb::lookup(int64_t M, int64_t N, int64_t K,
                                           bool *ExactOut) {
  return lookup(M, N, K, DType::F32, ExactOut);
}

std::optional<PriorRecord> PriorDb::lookup(int64_t M, int64_t N, int64_t K,
                                           DType Ty, bool *ExactOut) {
  if (ExactOut)
    *ExactOut = false;
  if (!enabled())
    return std::nullopt;
  GLookups.fetch_add(1, std::memory_order_relaxed);
  const uint64_t Machine = priorMachineKey();

  bool Saw = false;
  if (std::optional<PriorRecord> R = readChecked(
          entryPath(exactKey(Machine, M, N, K, Ty), false), Saw)) {
    // The filename hash already pins machine, shape, and dtype, but the
    // content is re-verified: a hand-copied or tampered file must not slip
    // through.
    if (R->Machine == Machine && R->M == M && R->N == N && R->K == K &&
        R->Dtype == Ty) {
      GHits.fetch_add(1, std::memory_order_relaxed);
      if (ExactOut)
        *ExactOut = true;
      return R;
    }
    GMachineMismatch.fetch_add(1, std::memory_order_relaxed);
  }

  std::string Class = priorShapeClass(M, N, K);
  if (std::optional<PriorRecord> R = readChecked(
          entryPath(classKey(Machine, Class, Ty), true), Saw)) {
    if (R->Machine == Machine && R->Class == Class && R->Dtype == Ty) {
      GClassHits.fetch_add(1, std::memory_order_relaxed);
      return R;
    }
    GMachineMismatch.fetch_add(1, std::memory_order_relaxed);
  }
  return std::nullopt;
}

std::vector<PriorDb::Entry> PriorDb::list() {
  std::vector<Entry> Out;
  if (Root.empty())
    return Out;
  DIR *D = opendir(Root.c_str());
  if (!D)
    return Out;
  const uint64_t Machine = priorMachineKey();
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (!endsWith(Name, ".prior") ||
        (Name[0] != 'p' && Name[0] != 'c'))
      continue;
    Entry En;
    En.Path = Root + "/" + Name;
    En.ClassEntry = Name[0] == 'c';
    struct stat St;
    if (stat(En.Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    En.Bytes = static_cast<uint64_t>(St.st_size);
    En.Mtime = static_cast<int64_t>(St.st_mtime);
    std::ifstream In(En.Path);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (Expected<PriorRecord> R = parsePriorRecord(Buf.str())) {
      En.Rec = R.take();
      En.MachineMatch = En.Rec.Machine == Machine;
    } else {
      En.Corrupt = true;
      GCorruptSeen.fetch_add(1, std::memory_order_relaxed);
    }
    Out.push_back(std::move(En));
  }
  closedir(D);
  std::sort(Out.begin(), Out.end(), [](const Entry &A, const Entry &B) {
    return A.Mtime != B.Mtime ? A.Mtime < B.Mtime : A.Path < B.Path;
  });
  return Out;
}

size_t PriorDb::quarantine() {
  if (Root.empty())
    return 0;
  ScopedLock Lock(Root);
  size_t N = 0;
  for (const Entry &E : list()) {
    if (!E.Corrupt)
      continue;
    if (rename(E.Path.c_str(), (E.Path + ".bad").c_str()) == 0) {
      ++N;
      GQuarantined.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return N;
}

size_t PriorDb::prune(bool DropForeign, int64_t MaxRecords) {
  if (Root.empty())
    return 0;
  ScopedLock Lock(Root);
  size_t Removed = 0;
  // Quarantined files first: they hold no usable data by definition.
  if (DIR *D = opendir(Root.c_str())) {
    std::vector<std::string> Bad;
    while (struct dirent *E = readdir(D))
      if (endsWith(std::string(E->d_name), ".bad"))
        Bad.push_back(Root + "/" + E->d_name);
    closedir(D);
    for (const std::string &P : Bad)
      if (unlink(P.c_str()) == 0)
        ++Removed;
  }
  std::vector<Entry> Entries = list();
  // Corrupt entries (not yet quarantined) and, on request, records from
  // another machine go before any live local record.
  std::vector<Entry> Keep;
  for (const Entry &E : Entries) {
    if (E.Corrupt || (DropForeign && !E.MachineMatch)) {
      if (unlink(E.Path.c_str()) == 0)
        ++Removed;
      continue;
    }
    Keep.push_back(E);
  }
  if (MaxRecords > 0 &&
      static_cast<int64_t>(Keep.size()) > MaxRecords) {
    // list() is oldest-first; evict from the front.
    int64_t Excess = static_cast<int64_t>(Keep.size()) - MaxRecords;
    for (int64_t I = 0; I < Excess; ++I)
      if (unlink(Keep[static_cast<size_t>(I)].Path.c_str()) == 0)
        ++Removed;
  }
  return Removed;
}

namespace {
uint64_t curveKey(uint64_t Machine) {
  std::string S = strf("governor-curve\x1f%016llx",
                       static_cast<unsigned long long>(Machine));
  return fnv1a64(S);
}
} // namespace

Error PriorDb::storeCurve(const std::vector<GovernorCurvePoint> &Points) {
  if (!enabled())
    return errorf("prior db disabled (root: %s)", Root.c_str());
  if (Points.empty())
    return errorf("prior db: empty governor curve");
  bool HasWidthOne = false;
  for (const GovernorCurvePoint &P : Points) {
    if (P.Width <= 0 || !(P.Speedup > 0))
      return errorf("prior db: curve point needs positive width and speedup");
    HasWidthOne |= P.Width == 1;
  }
  if (!HasWidthOne)
    return errorf("prior db: curve needs its width-1 anchor point");
  const uint64_t Machine = priorMachineKey();
  std::vector<GovernorCurvePoint> Sorted = Points;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const GovernorCurvePoint &A, const GovernorCurvePoint &B) {
              return A.Width < B.Width;
            });
  std::string Text =
      strf("version=%u\nkind=governor-curve\nmachine=%016llx\n",
           PriorDbVersion, static_cast<unsigned long long>(Machine));
  for (const GovernorCurvePoint &P : Sorted)
    Text += strf("point=%lld:%.17g\n", static_cast<long long>(P.Width),
                 P.Speedup);
  ScopedLock Lock(Root);
  std::string Path = strf("%s/g%016llx.prior", Root.c_str(),
                          static_cast<unsigned long long>(curveKey(Machine)));
  if (!writeAtomically(Path, Text))
    return errorf("prior db: cannot publish %s", Path.c_str());
  return Error::success();
}

std::optional<std::vector<GovernorCurvePoint>> PriorDb::lookupCurve() {
  if (!enabled())
    return std::nullopt;
  const uint64_t Machine = priorMachineKey();
  std::string Path = strf("%s/g%016llx.prior", Root.c_str(),
                          static_cast<unsigned long long>(curveKey(Machine)));
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  // Checked parse, quarantine-on-corrupt, exactly like tuned records: a
  // half-written or tampered curve must never steer the governor.
  auto Corrupt = [&]() -> std::optional<std::vector<GovernorCurvePoint>> {
    GCorruptSeen.fetch_add(1, std::memory_order_relaxed);
    ScopedLock Lock(Root);
    if (rename(Path.c_str(), (Path + ".bad").c_str()) == 0)
      GQuarantined.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };
  std::vector<GovernorCurvePoint> Out;
  bool SawVersion = false, SawKind = false, SawMachine = false;
  std::istringstream Lines(Buf.str());
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return Corrupt();
    std::string Key = Line.substr(0, Eq), Val = Line.substr(Eq + 1);
    if (Key == "version") {
      int64_t V = 0;
      if (!parseI64(Val, V) || V != PriorDbVersion)
        return Corrupt();
      SawVersion = true;
    } else if (Key == "kind") {
      if (Val != "governor-curve")
        return Corrupt();
      SawKind = true;
    } else if (Key == "machine") {
      uint64_t M = 0;
      if (!parseU64Hex(Val, M))
        return Corrupt();
      if (M != Machine) {
        // Foreign curve (copied database): ignore, don't quarantine.
        GMachineMismatch.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      SawMachine = true;
    } else if (Key == "point") {
      size_t Colon = Val.find(':');
      if (Colon == std::string::npos)
        return Corrupt();
      GovernorCurvePoint P;
      if (!parseI64(Val.substr(0, Colon), P.Width) ||
          !parseF64(Val.substr(Colon + 1), P.Speedup) || P.Width <= 0 ||
          !(P.Speedup > 0))
        return Corrupt();
      Out.push_back(P);
    }
    // Unknown keys are tolerated (forward compatibility), same as records.
  }
  if (!SawVersion || !SawKind || !SawMachine || Out.empty())
    return Corrupt();
  std::sort(Out.begin(), Out.end(),
            [](const GovernorCurvePoint &A, const GovernorCurvePoint &B) {
              return A.Width < B.Width;
            });
  return Out;
}

PriorDb::Stats PriorDb::stats() {
  Stats S;
  S.Lookups = GLookups.load(std::memory_order_relaxed);
  S.Hits = GHits.load(std::memory_order_relaxed);
  S.ClassHits = GClassHits.load(std::memory_order_relaxed);
  S.MachineMismatch = GMachineMismatch.load(std::memory_order_relaxed);
  S.CorruptSeen = GCorruptSeen.load(std::memory_order_relaxed);
  S.Quarantined = GQuarantined.load(std::memory_order_relaxed);
  return S;
}
