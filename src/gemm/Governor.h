//===- Governor.h - Shape- and load-aware thread allocation ---------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide arbiter deciding how many threads one GEMM call gets
/// when several Engine callers (or the gemmd daemon's executors) share the
/// machine. A fixed EXO_GEMM_THREADS oversubscribes under concurrency —
/// N callers each claim every core — and wastes barrier time on small
/// shapes. The governor instead grants a per-call team width at
/// plan-execution time from two inputs (docs/CONCURRENCY.md has the full
/// contract and decision table):
///
///   1. Shape: governorWidthForShape (Planner.h) — a work floor
///      (EXO_GEMM_GOVERNOR_MIN_WORK flops per extra thread) composed with
///      the machine's measured strong-scaling curve when one is stored
///      (PriorDb::lookupCurve, seeded by `bench_threads --store-curve`).
///   2. Load: live pool occupancy via ThreadPool::tryReserve, plus the
///      governor's own extra-thread budget, so the sum of granted widths
///      across concurrent callers never exceeds the ceiling:
///
///          sum over live grants of (width - 1)  <=  ceiling - 1
///
///      with ceiling = EXO_GEMM_GOVERNOR_MAX (default: the hardware
///      thread count).
///
/// acquire() never blocks: under contention a call is granted a narrower
/// team (down to width 1, the sequential driver) instead of queuing. The
/// plan itself is *not* consulted per width — plan keys stay
/// team-size-invariant and results are bitwise identical at every granted
/// width by the thread-count-invariance guarantee (Gemm.h), so a grant
/// changes scheduling only, never output.
///
//===----------------------------------------------------------------------===//

#ifndef GEMM_GOVERNOR_H
#define GEMM_GOVERNOR_H

#include "gemm/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace gemm {

struct GovernorCurvePoint;

/// Monotonic decision counters, surfaced through EngineStats and
/// `ukr_cachectl stats`.
struct GovernorStats {
  uint64_t Grants = 0;           ///< acquire() calls
  uint64_t ShapeClamped = 0;     ///< width cut by the shape model
  uint64_t OccupancyClamped = 0; ///< width cut by budget/pool occupancy
  uint64_t FullWidth = 0;        ///< granted the full plan width
  uint64_t WidthSum = 0;         ///< sum of granted widths (avg = /Grants)
};

/// See file comment.
class Governor {
public:
  /// One granted team: the caller plus Res.Count reserved workers. RAII —
  /// destruction returns unused workers and the budget. Move-free: bind it
  /// to a stack local around executeGemmReserved (which consumes Res but
  /// not the budget; the budget outlives execution by design, so the sum
  /// invariant covers running teams, not just reservations).
  class Grant {
  public:
    Grant() = default;
    ~Grant();
    Grant(const Grant &) = delete;
    Grant &operator=(const Grant &) = delete;

    int64_t width() const { return Width; }
    ThreadPool::Reservation &reservation() { return Res; }
    /// True when the shape model (not occupancy) set the width.
    bool shapeClamped() const { return ShapeClamp; }
    bool occupancyClamped() const { return OccClamp; }

  private:
    friend class Governor;
    Governor *Gov = nullptr;
    ThreadPool::Reservation Res;
    int64_t Width = 1;
    bool ShapeClamp = false;
    bool OccClamp = false;
  };

  /// The process-wide governor: ceiling from EXO_GEMM_GOVERNOR_MAX (else
  /// hardware_concurrency), work floor from EXO_GEMM_GOVERNOR_MIN_WORK,
  /// scaling curve from PriorDb::global(). Env is read once.
  static Governor &global();

  /// A governor with explicit parameters (tests; no env, no curve unless
  /// given). MinWorkFlops <= 0 disables the work floor.
  Governor(int64_t Ceiling, int64_t MinWorkFlops);

  /// Decides and reserves a team for one (m, n, k) call whose plan was
  /// built at \p PlanWidth (the grant never exceeds it — the plan's
  /// workspace and barrier sizing are the hard cap). Never blocks. The
  /// resulting width is 1 + (workers actually reserved).
  void acquire(int64_t M, int64_t N, int64_t K, int64_t PlanWidth,
               Grant &G);

  /// As acquire(), for work already expressed as total flops (the batched
  /// cross-item path: a chunk of small items shares the team, so the
  /// chunk's aggregate work drives the width model).
  void acquireFlops(double Flops, int64_t PlanWidth, Grant &G);

  int64_t ceiling() const { return Ceiling; }
  int64_t minWorkFlops() const { return MinWorkFlops; }

  /// Extra threads currently granted process-wide (<= ceiling - 1).
  int64_t outstandingExtra() const {
    return Outstanding.load(std::memory_order_relaxed);
  }

  GovernorStats stats() const;

  /// Whether EXO_GEMM_GOVERNOR enables governed dispatch for Engines left
  /// at EngineConfig::Governor = -1 (read per call so tests can flip it;
  /// unset or 0 = off, preserving the paper's fixed-team methodology).
  static bool enabledByEnv();

private:
  Governor(); // global() only: reads env + curve
  void releaseBudget(int64_t Extra);

  int64_t Ceiling = 1;
  int64_t MinWorkFlops = 0;
  std::optional<std::vector<GovernorCurvePoint>> Curve;
  std::atomic<int64_t> Outstanding{0}; ///< extra threads granted
  std::atomic<uint64_t> NGrants{0}, NShapeClamped{0}, NOccClamped{0},
      NFullWidth{0}, NWidthSum{0};
};

} // namespace gemm

#endif // GEMM_GOVERNOR_H
