//===- Json.cpp -----------------------------------------------------------===//

#include "benchutil/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace benchutil;
using exo::errorf;

const Json *Json::get(const std::string &Key) const {
  for (const auto &[K2, V] : Obj)
    if (K2 == Key)
      return &V;
  return nullptr;
}

double Json::num(const std::string &Key, double Default) const {
  const Json *V = get(Key);
  return V && V->isNumber() ? V->asNumber() : Default;
}

std::string Json::str(const std::string &Key,
                      const std::string &Default) const {
  const Json *V = get(Key);
  return V && V->isString() ? V->asString() : Default;
}

void Json::set(const std::string &Key, Json V) {
  for (auto &[K2, Old] : Obj)
    if (K2 == Key) {
      Old = std::move(V);
      return;
    }
  Obj.emplace_back(Key, std::move(V));
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendNumber(std::string &Out, double V) {
  if (!std::isfinite(V)) {
    Out += "0"; // JSON has no inf/nan; reports never produce them
    return;
  }
  if (V == static_cast<double>(static_cast<int64_t>(V)) &&
      std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(V)));
    Out += Buf;
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

void indent(std::string &Out, int Depth) {
  Out.append(static_cast<size_t>(Depth) * 2, ' ');
}

} // namespace

void Json::dumpTo(std::string &Out, int Depth) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    return;
  case Kind::Number:
    appendNumber(Out, NumV);
    return;
  case Kind::String:
    appendEscaped(Out, StrV);
    return;
  case Kind::Array: {
    if (Arr.empty()) {
      Out += "[]";
      return;
    }
    Out += "[\n";
    for (size_t I = 0; I != Arr.size(); ++I) {
      indent(Out, Depth + 1);
      Arr[I].dumpTo(Out, Depth + 1);
      Out += I + 1 == Arr.size() ? "\n" : ",\n";
    }
    indent(Out, Depth);
    Out += ']';
    return;
  }
  case Kind::Object: {
    if (Obj.empty()) {
      Out += "{}";
      return;
    }
    Out += "{\n";
    for (size_t I = 0; I != Obj.size(); ++I) {
      indent(Out, Depth + 1);
      appendEscaped(Out, Obj[I].first);
      Out += ": ";
      Obj[I].second.dumpTo(Out, Depth + 1);
      Out += I + 1 == Obj.size() ? "\n" : ",\n";
    }
    indent(Out, Depth);
    Out += '}';
    return;
  }
  }
}

std::string Json::dump() const {
  std::string Out;
  dumpTo(Out, 0);
  Out += '\n';
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const char *P;
  const char *End;
  std::string Err;

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  bool parseValue(Json &Out) {
    skipWs();
    if (P == End)
      return fail("unexpected end of input");
    switch (*P) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json(std::move(S));
      return true;
    }
    case 't':
      if (End - P >= 4 && !std::strncmp(P, "true", 4)) {
        P += 4;
        Out = Json(true);
        return true;
      }
      return fail("bad literal");
    case 'f':
      if (End - P >= 5 && !std::strncmp(P, "false", 5)) {
        P += 5;
        Out = Json(false);
        return true;
      }
      return fail("bad literal");
    case 'n':
      if (End - P >= 4 && !std::strncmp(P, "null", 4)) {
        P += 4;
        Out = Json();
        return true;
      }
      return fail("bad literal");
    default:
      return parseNumber(Out);
    }
  }

  bool parseString(std::string &Out) {
    if (*P != '"')
      return fail("expected string");
    ++P;
    Out.clear();
    while (P != End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P == End)
          return fail("bad escape");
        switch (*P) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (End - P < 5)
            return fail("bad \\u escape");
          unsigned V = 0;
          for (int I = 1; I <= 4; ++I) {
            char C = P[I];
            V <<= 4;
            if (C >= '0' && C <= '9')
              V += C - '0';
            else if (C >= 'a' && C <= 'f')
              V += C - 'a' + 10;
            else if (C >= 'A' && C <= 'F')
              V += C - 'A' + 10;
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode (no surrogate-pair support; reports are ASCII).
          if (V < 0x80) {
            Out += static_cast<char>(V);
          } else if (V < 0x800) {
            Out += static_cast<char>(0xC0 | (V >> 6));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (V >> 12));
            Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          }
          P += 4;
          break;
        }
        default:
          return fail("bad escape");
        }
        ++P;
      } else {
        Out += *P++;
      }
    }
    if (P == End)
      return fail("unterminated string");
    ++P; // closing quote
    return true;
  }

  bool parseNumber(Json &Out) {
    const char *Start = P;
    if (P != End && (*P == '-' || *P == '+'))
      ++P;
    bool Any = false;
    while (P != End && (std::isdigit(static_cast<unsigned char>(*P)) ||
                        *P == '.' || *P == 'e' || *P == 'E' || *P == '-' ||
                        *P == '+')) {
      ++P;
      Any = true;
    }
    if (!Any)
      return fail("expected value");
    Out = Json(std::strtod(std::string(Start, P).c_str(), nullptr));
    return true;
  }

  bool parseArray(Json &Out) {
    Out = Json::array();
    ++P; // '['
    skipWs();
    if (P != End && *P == ']') {
      ++P;
      return true;
    }
    while (true) {
      Json V;
      if (!parseValue(V))
        return false;
      Out.push(std::move(V));
      skipWs();
      if (P == End)
        return fail("unterminated array");
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == ']') {
        ++P;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(Json &Out) {
    Out = Json::object();
    ++P; // '{'
    skipWs();
    if (P != End && *P == '}') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (P == End || !parseString(Key))
        return fail("expected object key");
      skipWs();
      if (P == End || *P != ':')
        return fail("expected ':'");
      ++P;
      Json V;
      if (!parseValue(V))
        return false;
      Out.set(Key, std::move(V));
      skipWs();
      if (P == End)
        return fail("unterminated object");
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == '}') {
        ++P;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

} // namespace

exo::Expected<Json> Json::parse(const std::string &Text) {
  Parser P{Text.data(), Text.data() + Text.size(), {}};
  Json Out;
  if (!P.parseValue(Out))
    return errorf("json: %s at offset %zu", P.Err.c_str(),
                  static_cast<size_t>(P.P - Text.data()));
  P.skipWs();
  if (P.P != P.End)
    return errorf("json: trailing garbage at offset %zu",
                  static_cast<size_t>(P.P - Text.data()));
  return Out;
}

exo::Expected<Json> Json::load(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return errorf("json: cannot open '%s'", Path.c_str());
  std::ostringstream SS;
  SS << In.rdbuf();
  exo::Expected<Json> J = parse(SS.str());
  if (!J)
    return errorf("json: '%s': %s", Path.c_str(),
                  J.takeError().message().c_str());
  return J;
}

exo::Error Json::store(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return errorf("json: cannot open '%s' for writing", Path.c_str());
  Out << dump();
  Out.flush();
  if (!Out)
    return errorf("json: write to '%s' failed", Path.c_str());
  return exo::Error::success();
}
