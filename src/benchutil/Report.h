//===- Report.h - Schema-versioned BENCH_*.json emission and checking -----===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable side of every bench binary. A Reporter accumulates
/// one row per measured data point and writes a BENCH_<bench>.json file:
///
///   {
///     "schema_version": 1,
///     "bench": "fig14_square",
///     "generated_unix": 1754000000,
///     "machine": { "os", "kernel", "arch", "cpu", "hw_threads" },
///     "options": { "seconds", "big", "smoke" },
///     "counter_backend": "perf" | "fake" | "off",
///     "gemm_threads": 1,
///     "rows": [ {
///        "label": "m256 n256 k256", "series": "ALG+EXO",
///        "metric": "gflops", "better": "higher", "value": 42.0,
///        "seconds_per_call": 0.0013, "reps": 190, "threads": 1,
///        "m": 256, "n": 256, "k": 256,            // 0 when not a GEMM
///        "stages": { "gemm.packA": { "seconds", "count", "cycles",
///                                    "instructions", "cache_misses" } },
///        "counters": { ... }                       // optional extras
///     } ]
///   }
///
/// `better` declares the regression direction for tools/bench_check:
/// "higher" (GFLOPS), "lower" (seconds), or "info" (audit values that are
/// reported but never gated). Stage seconds/counters are per *call*
/// averages (totals divided by reps), so rows compare across runs with
/// different repetition counts; stage `count` stays the raw number of span
/// instances over the timed reps.
///
/// compareReports() is the core of `tools/bench_check`: it matches rows of
/// two reports by (series, label, metric) and flags relative regressions
/// beyond a noise tolerance. It lives here so the gate logic is unit
/// tested, with the CLI a thin wrapper.
///
//===----------------------------------------------------------------------===//

#ifndef BENCHUTIL_REPORT_H
#define BENCHUTIL_REPORT_H

#include "benchutil/Json.h"
#include "obs/Obs.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace benchutil {

/// Bumped whenever a field changes meaning; bench_check refuses to compare
/// across versions.
inline constexpr int ReportSchemaVersion = 1;

/// One measured data point (see file comment for the JSON mapping).
struct ReportRow {
  std::string Label;  ///< shape/config label, unique per (bench, series)
  std::string Series; ///< provider/variant name ("ALG+EXO", ...)
  std::string Metric = "gflops";
  std::string Better = "higher"; ///< "higher" | "lower" | "info"
  double Value = 0;
  double SecondsPerCall = 0;
  int64_t Reps = 0;
  int64_t Threads = 1;
  int64_t M = 0, N = 0, K = 0;
  std::map<std::string, obs::StageStat> Stages; ///< per-call averages
  std::map<std::string, double> Extra; ///< free-form numeric extras
};

/// Host identity block for the report (os/kernel/arch/cpu/hw_threads).
Json machineIdentity();

/// See file comment.
class Reporter {
public:
  explicit Reporter(std::string BenchName);

  /// Records a bench option ("seconds", "big", ...) under "options".
  void setOption(const std::string &Key, Json Value);

  /// Records a top-level report field (e.g. "gemm_threads").
  void setField(const std::string &Key, Json Value);

  void addRow(ReportRow Row);

  size_t rowCount() const { return Rows.size(); }

  Json toJson() const;
  exo::Error write(const std::string &Path) const;

private:
  std::string BenchName;
  Json Options = Json::object();
  Json Fields = Json::object();
  std::vector<ReportRow> Rows;
};

/// bench_check configuration.
struct CompareOptions {
  /// Maximum tolerated relative regression (0.10 = 10%).
  double Tolerance = 0.10;
  /// When true, a row present in the baseline but missing from the fresh
  /// report counts as a regression (default: noted only).
  bool RequireAllRows = false;
};

struct CompareResult {
  int Compared = 0; ///< rows matched in both reports
  std::vector<std::string> Regressions;
  std::vector<std::string> Improvements;
  std::vector<std::string> Notes; ///< missing/new rows, info diffs

  bool pass() const { return Regressions.empty(); }
};

/// Compares two reports produced by Reporter (same schema version). Rows
/// match on (series, label, metric); "info" rows are never gated.
exo::Expected<CompareResult> compareReports(const Json &Baseline,
                                            const Json &Fresh,
                                            const CompareOptions &Opts);

} // namespace benchutil

#endif // BENCHUTIL_REPORT_H
