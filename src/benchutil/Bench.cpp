//===- Bench.cpp ----------------------------------------------------------===//

#include "benchutil/Bench.h"

#include "exo/support/Env.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace benchutil;

BenchOptions BenchOptions::parse(int Argc, char **Argv) {
  BenchOptions O;
  O.Seconds = exo::envDouble("EXO_BENCH_SECONDS",
                             std::getenv("EXO_BENCH_SECONDS"), O.Seconds,
                             /*Min=*/0.0, /*Max=*/3600.0);
  O.Big = exo::envBool("EXO_BENCH_BIG", std::getenv("EXO_BENCH_BIG"), O.Big);
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--big"))
      O.Big = true;
    else if (!std::strcmp(Argv[I], "--csv"))
      O.Csv = true;
    else if (!std::strcmp(Argv[I], "--smoke"))
      O.Smoke = true;
    else if (!std::strcmp(Argv[I], "--seconds") && I + 1 < Argc)
      O.Seconds = std::atof(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--json")) {
      // Optional path: a bare --json (or one followed by another flag)
      // resolves to BENCH_<bench>.json via jsonPathFor().
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        O.JsonPath = Argv[++I];
      else
        O.JsonPath = "auto";
    } else if (!std::strcmp(Argv[I], "--trace") && I + 1 < Argc)
      O.TracePath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--remote")) {
      O.Remote = true;
      // Optional socket path, same convention as --json's optional path.
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        O.RemoteSocket = Argv[++I];
    }
  }
  if (O.Seconds <= 0)
    O.Seconds = 0.25;
  if (O.Smoke)
    O.Seconds = std::min(O.Seconds, 0.02);
  return O;
}

std::string BenchOptions::jsonPathFor(const std::string &BenchName) const {
  if (JsonPath == "auto")
    return "BENCH_" + BenchName + ".json";
  return JsonPath;
}

void BenchOptions::applyObs() const {
  // Stage attribution in the JSON report and the chrome trace both need
  // live spans; --json/--trace opt in without requiring EXO_OBS=1 too.
  if (!JsonPath.empty() || !TracePath.empty())
    obs::setEnabled(true);
}

Measurement benchutil::measure(const std::function<void()> &Fn,
                               double MinSeconds) {
  using Clock = std::chrono::steady_clock;
  // Warm-up run (JIT pages, caches) — excluded from both the timing and
  // the stage attribution.
  Fn();
  std::map<std::string, obs::StageStat> Before;
  bool Obs = obs::enabled();
  if (Obs)
    Before = obs::stageTotals();
  Measurement M;
  auto Start = Clock::now();
  double Elapsed = 0;
  do {
    Fn();
    ++M.Reps;
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  } while (Elapsed < MinSeconds);
  M.SecondsPerCall = Elapsed / static_cast<double>(M.Reps);
  if (Obs) {
    // Per-call averages of the stage deltas accumulated by the timed reps.
    for (auto &[Name, S] : obs::stageTotals()) {
      obs::StageStat D = S;
      if (auto It = Before.find(Name); It != Before.end()) {
        D.Seconds -= It->second.Seconds;
        D.Count -= It->second.Count;
        D.Counters = D.Counters - It->second.Counters;
      }
      if (D.Count == 0 && D.Seconds <= 0)
        continue;
      D.Seconds /= static_cast<double>(M.Reps);
      D.Counters.Cycles /= static_cast<uint64_t>(M.Reps);
      D.Counters.Instructions /= static_cast<uint64_t>(M.Reps);
      D.Counters.CacheMisses /= static_cast<uint64_t>(M.Reps);
      M.Stages[Name] = D;
    }
  }
  return M;
}

double benchutil::timeIt(const std::function<void()> &Fn, double MinSeconds) {
  return measure(Fn, MinSeconds).SecondsPerCall;
}

Table::Table(std::string Title, std::vector<std::string> Header, bool Csv)
    : Title(std::move(Title)), Header(std::move(Header)), Csv(Csv) {}

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void Table::addRow(const std::string &Label,
                   const std::vector<double> &Values) {
  std::vector<std::string> Cells{Label};
  char Buf[64];
  for (double V : Values) {
    std::snprintf(Buf, sizeof(Buf), "%.2f", V);
    Cells.emplace_back(Buf);
  }
  addRow(std::move(Cells));
}

void Table::print() const {
  std::printf("\n== %s ==\n", Title.c_str());
  std::vector<size_t> Width(Header.size());
  for (size_t I = 0; I != Header.size(); ++I)
    Width[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size() && I != Width.size(); ++I)
      Width[I] = std::max(Width[I], Row[I].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I != Cells.size(); ++I)
      std::printf("%-*s  ", static_cast<int>(I < Width.size() ? Width[I] : 8),
                  Cells[I].c_str());
    std::printf("\n");
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    PrintRow(Row);

  if (Csv) {
    for (const auto &Row : Rows) {
      std::printf("CSV,%s", Title.c_str());
      for (const auto &Cell : Row)
        std::printf(",%s", Cell.c_str());
      std::printf("\n");
    }
  }
  std::fflush(stdout);
}

void benchutil::fillRandom(float *Data, size_t N, unsigned Seed) {
  // xorshift32; values in [-1, 1].
  uint32_t X = Seed ? Seed : 1u;
  for (size_t I = 0; I != N; ++I) {
    X ^= X << 13;
    X ^= X >> 17;
    X ^= X << 5;
    Data[I] = static_cast<float>(static_cast<int32_t>(X)) /
              2147483648.0f;
  }
}

float benchutil::maxAbsDiff(const float *A, const float *B, size_t N) {
  float M = 0;
  for (size_t I = 0; I != N; ++I)
    M = std::max(M, std::fabs(A[I] - B[I]));
  return M;
}
