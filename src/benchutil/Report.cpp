//===- Report.cpp ---------------------------------------------------------===//

#include "benchutil/Report.h"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

using namespace benchutil;
using exo::errorf;

Json benchutil::machineIdentity() {
  Json M = Json::object();
#if defined(__unix__) || defined(__APPLE__)
  struct utsname U;
  if (uname(&U) == 0) {
    M.set("os", U.sysname);
    M.set("kernel", U.release);
    M.set("arch", U.machine);
  }
#endif
  // First "model name" line of /proc/cpuinfo (Linux; absent elsewhere).
  std::ifstream Cpu("/proc/cpuinfo");
  std::string Line;
  while (std::getline(Cpu, Line)) {
    if (Line.rfind("model name", 0) == 0) {
      size_t Colon = Line.find(':');
      if (Colon != std::string::npos) {
        size_t Start = Line.find_first_not_of(" \t", Colon + 1);
        if (Start != std::string::npos)
          M.set("cpu", Line.substr(Start));
      }
      break;
    }
  }
  M.set("hw_threads",
        static_cast<int64_t>(std::thread::hardware_concurrency()));
  return M;
}

Reporter::Reporter(std::string BenchName) : BenchName(std::move(BenchName)) {}

void Reporter::setOption(const std::string &Key, Json Value) {
  Options.set(Key, std::move(Value));
}

void Reporter::setField(const std::string &Key, Json Value) {
  Fields.set(Key, std::move(Value));
}

void Reporter::addRow(ReportRow Row) { Rows.push_back(std::move(Row)); }

Json Reporter::toJson() const {
  Json Root = Json::object();
  Root.set("schema_version", ReportSchemaVersion);
  Root.set("bench", BenchName);
  Root.set("generated_unix",
           static_cast<int64_t>(std::time(nullptr)));
  Root.set("machine", machineIdentity());
  Root.set("options", Options);
  Root.set("counter_backend", obs::counterBackendName());
  if (const char *R = obs::counterUnavailableReason(); R && *R)
    Root.set("counter_unavailable_reason", R);
  for (const auto &[Key, V] : Fields.items())
    Root.set(Key, V);

  Json RowsJ = Json::array();
  for (const ReportRow &R : Rows) {
    Json J = Json::object();
    J.set("label", R.Label);
    J.set("series", R.Series);
    J.set("metric", R.Metric);
    J.set("better", R.Better);
    J.set("value", R.Value);
    J.set("seconds_per_call", R.SecondsPerCall);
    J.set("reps", R.Reps);
    J.set("threads", R.Threads);
    J.set("m", R.M);
    J.set("n", R.N);
    J.set("k", R.K);
    if (!R.Stages.empty()) {
      Json Stages = Json::object();
      for (const auto &[Name, S] : R.Stages) {
        Json SJ = Json::object();
        SJ.set("seconds", S.Seconds);
        SJ.set("count", static_cast<int64_t>(S.Count));
        if (!S.Counters.isZero()) {
          SJ.set("cycles", static_cast<int64_t>(S.Counters.Cycles));
          SJ.set("instructions",
                 static_cast<int64_t>(S.Counters.Instructions));
          SJ.set("cache_misses",
                 static_cast<int64_t>(S.Counters.CacheMisses));
        }
        Stages.set(Name, std::move(SJ));
      }
      J.set("stages", std::move(Stages));
    }
    if (!R.Extra.empty()) {
      Json Extra = Json::object();
      for (const auto &[Name, V] : R.Extra)
        Extra.set(Name, V);
      J.set("counters", std::move(Extra));
    }
    RowsJ.push(std::move(J));
  }
  Root.set("rows", std::move(RowsJ));
  return Root;
}

exo::Error Reporter::write(const std::string &Path) const {
  return toJson().store(Path);
}

exo::Expected<CompareResult> benchutil::compareReports(
    const Json &Baseline, const Json &Fresh, const CompareOptions &Opts) {
  for (const Json *R : {&Baseline, &Fresh}) {
    if (!R->isObject() || !R->get("rows") || !R->get("rows")->isArray())
      return errorf("bench_check: not a bench report (no rows array)");
    int V = static_cast<int>(R->num("schema_version", -1));
    if (V != ReportSchemaVersion)
      return errorf("bench_check: schema_version %d, this tool handles %d",
                    V, ReportSchemaVersion);
  }
  if (Baseline.str("bench") != Fresh.str("bench"))
    return errorf("bench_check: comparing different benches ('%s' vs '%s')",
                  Baseline.str("bench").c_str(), Fresh.str("bench").c_str());

  auto RowKey = [](const Json &Row) {
    return Row.str("series") + " | " + Row.str("label") + " | " +
           Row.str("metric");
  };

  const Json &FreshRows = *Fresh.get("rows");
  const Json &BaseRows = *Baseline.get("rows");
  CompareResult Res;
  for (size_t I = 0; I != BaseRows.size(); ++I) {
    const Json &B = BaseRows.at(I);
    const Json *F = nullptr;
    for (size_t J = 0; J != FreshRows.size(); ++J)
      if (RowKey(FreshRows.at(J)) == RowKey(B)) {
        F = &FreshRows.at(J);
        break;
      }
    std::string Key = RowKey(B);
    if (!F) {
      (Opts.RequireAllRows ? Res.Regressions : Res.Notes)
          .push_back("missing from fresh report: " + Key);
      continue;
    }
    std::string Better = B.str("better", "higher");
    double BV = B.num("value"), FV = F->num("value");
    ++Res.Compared;
    if (Better == "info")
      continue;
    if (BV == 0) {
      // A zero baseline carries no signal (the series was skipped or
      // failed when the baseline was recorded); note, don't gate.
      Res.Notes.push_back("zero baseline value, skipped: " + Key);
      continue;
    }
    // Relative change in the "good" direction: positive = improvement.
    double Rel = Better == "lower" ? (BV - FV) / BV : (FV - BV) / BV;
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf), "%s: %.4g -> %.4g (%+.1f%%)",
                  Key.c_str(), BV, FV, Rel * 100.0);
    if (Rel < -Opts.Tolerance)
      Res.Regressions.push_back(Buf);
    else if (Rel > Opts.Tolerance)
      Res.Improvements.push_back(Buf);
  }
  for (size_t J = 0; J != FreshRows.size(); ++J) {
    const Json &F = FreshRows.at(J);
    bool Found = false;
    for (size_t I = 0; I != BaseRows.size(); ++I)
      if (RowKey(BaseRows.at(I)) == RowKey(F)) {
        Found = true;
        break;
      }
    if (!Found)
      Res.Notes.push_back("new row (not in baseline): " + RowKey(F));
  }
  return Res;
}
