//===- Json.h - Minimal JSON value, parser and printer --------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough JSON for the performance-observability layer: the
/// schema-versioned BENCH_*.json reports (Report.h), the `bench_check`
/// regression gate, and the tests that parse chrome traces back. Objects
/// preserve insertion order so reports diff cleanly; numbers are doubles
/// (every value this repo records fits). No external dependency — the
/// container image is fixed.
///
//===----------------------------------------------------------------------===//

#ifndef BENCHUTIL_JSON_H
#define BENCHUTIL_JSON_H

#include "exo/support/Error.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace benchutil {

/// See file comment.
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() : K(Kind::Null) {}
  /*implicit*/ Json(bool B) : K(Kind::Bool), BoolV(B) {}
  /*implicit*/ Json(double D) : K(Kind::Number), NumV(D) {}
  /*implicit*/ Json(int64_t I)
      : K(Kind::Number), NumV(static_cast<double>(I)) {}
  /*implicit*/ Json(int I) : K(Kind::Number), NumV(I) {}
  /*implicit*/ Json(std::string S) : K(Kind::String), StrV(std::move(S)) {}
  /*implicit*/ Json(const char *S) : K(Kind::String), StrV(S) {}

  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolV; }
  double asNumber() const { return NumV; }
  const std::string &asString() const { return StrV; }

  /// Array access.
  size_t size() const {
    return K == Kind::Array ? Arr.size() : K == Kind::Object ? Obj.size() : 0;
  }
  const Json &at(size_t I) const { return Arr[I]; }
  void push(Json V) { Arr.push_back(std::move(V)); }

  /// Object access: get() returns nullptr when the key is absent.
  const Json *get(const std::string &Key) const;
  /// Typed conveniences with defaults.
  double num(const std::string &Key, double Default = 0) const;
  std::string str(const std::string &Key,
                  const std::string &Default = "") const;
  /// Inserts or overwrites a key (insertion order preserved on insert).
  void set(const std::string &Key, Json V);
  const std::vector<std::pair<std::string, Json>> &items() const {
    return Obj;
  }

  /// Serializes with 2-space indentation and '\n' line ends.
  std::string dump() const;

  static exo::Expected<Json> parse(const std::string &Text);
  static exo::Expected<Json> load(const std::string &Path);
  exo::Error store(const std::string &Path) const;

private:
  void dumpTo(std::string &Out, int Depth) const;

  Kind K;
  bool BoolV = false;
  double NumV = 0;
  std::string StrV;
  std::vector<Json> Arr;
  std::vector<std::pair<std::string, Json>> Obj;
};

} // namespace benchutil

#endif // BENCHUTIL_JSON_H
