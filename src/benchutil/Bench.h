//===- Bench.h - Timing and reporting helpers -----------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock measurement in the style of the paper's driver: run the
/// workload repeatedly until a minimum duration elapses (the paper uses 5
/// seconds in solo mode; these benches default lower so the full suite runs
/// in minutes — raise with --seconds or EXO_BENCH_SECONDS), then report
/// GFLOPS. Also provides the aligned-column table printer the fig benches
/// share, and common CLI parsing (--big, --seconds, --csv, --smoke,
/// --json, --trace).
///
/// Every bench funnels its timing through measure(): one warm-up call,
/// then repetitions until the budget elapses, with per-stage time
/// attribution (obs spans) captured over the timed reps only. The human
/// table, the CSV mirror and the BENCH_*.json report all read from the
/// same Measurement — there is exactly one measurement path.
///
//===----------------------------------------------------------------------===//

#ifndef BENCHUTIL_BENCH_H
#define BENCHUTIL_BENCH_H

#include "obs/Obs.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace benchutil {

/// CLI/env options shared by the fig benches.
struct BenchOptions {
  /// Use the paper's full problem sizes instead of scaled defaults.
  bool Big = false;
  /// Minimum measured seconds per data point.
  double Seconds = 0.25;
  /// Also print machine-readable CSV lines (prefix "CSV,").
  bool Csv = false;
  /// Tiny shapes and a minimal budget: `ctest -L bench-smoke` mode that
  /// exists to keep --json emission from rotting, not to produce numbers.
  bool Smoke = false;
  /// BENCH_*.json output path; empty = no report, "auto" (bare --json) =
  /// BENCH_<bench>.json in the working directory.
  std::string JsonPath;
  /// Chrome-trace output path (--trace); empty = no trace.
  std::string TracePath;
  /// Route GEMM calls through a running gemmd daemon (gemm::Client)
  /// instead of in-process Engines. An optional path argument names the
  /// rendezvous socket; empty defers to EXO_GEMMD_SOCKET / the default.
  bool Remote = false;
  std::string RemoteSocket;

  static BenchOptions parse(int Argc, char **Argv);

  /// Resolves JsonPath for a given bench name ("auto" -> BENCH_<name>.json;
  /// empty stays empty).
  std::string jsonPathFor(const std::string &BenchName) const;

  /// Turns tracing on when --json/--trace asked for outputs that need it.
  void applyObs() const;
};

/// One timed data point: the average over Reps calls, plus the per-call
/// average of every obs stage recorded while the timed reps ran (empty
/// when tracing is disabled).
struct Measurement {
  double SecondsPerCall = 0;
  int64_t Reps = 0;
  std::map<std::string, obs::StageStat> Stages;
};

/// The single measurement path: one warm-up call (JIT pages, caches),
/// then \p Fn repeatedly until \p MinSeconds elapse (at least once).
/// Stage totals are snapshotted around the timed reps and averaged per
/// call.
Measurement measure(const std::function<void()> &Fn, double MinSeconds);

/// Runs \p Fn repeatedly until \p MinSeconds elapse (at least once) and
/// returns the average seconds per run. Convenience over measure().
double timeIt(const std::function<void()> &Fn, double MinSeconds);

/// GFLOPS for \p Flops work done in \p Seconds.
inline double gflops(double Flops, double Seconds) {
  return Flops / Seconds * 1e-9;
}

/// Aligned-column table with a title, header and float formatting; prints
/// to stdout. Optionally mirrors rows as CSV.
class Table {
public:
  Table(std::string Title, std::vector<std::string> Header, bool Csv);

  void addRow(std::vector<std::string> Cells);
  /// Convenience: first cell is a label, the rest are %.2f numbers.
  void addRow(const std::string &Label, const std::vector<double> &Values);
  void print() const;

private:
  std::string Title;
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
  bool Csv;
};

/// Fills \p N floats with a reproducible pattern in [-1, 1].
void fillRandom(float *Data, size_t N, unsigned Seed);

/// Max |A[i] - B[i]| over N elements.
float maxAbsDiff(const float *A, const float *B, size_t N);

} // namespace benchutil

#endif // BENCHUTIL_BENCH_H
