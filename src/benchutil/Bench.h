//===- Bench.h - Timing and reporting helpers -----------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock measurement in the style of the paper's driver: run the
/// workload repeatedly until a minimum duration elapses (the paper uses 5
/// seconds in solo mode; these benches default lower so the full suite runs
/// in minutes — raise with --seconds or EXO_BENCH_SECONDS), then report
/// GFLOPS. Also provides the aligned-column table printer the fig benches
/// share, and common CLI parsing (--big, --seconds, --csv).
///
//===----------------------------------------------------------------------===//

#ifndef BENCHUTIL_BENCH_H
#define BENCHUTIL_BENCH_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace benchutil {

/// CLI/env options shared by the fig benches.
struct BenchOptions {
  /// Use the paper's full problem sizes instead of scaled defaults.
  bool Big = false;
  /// Minimum measured seconds per data point.
  double Seconds = 0.25;
  /// Also print machine-readable CSV lines (prefix "CSV,").
  bool Csv = false;

  static BenchOptions parse(int Argc, char **Argv);
};

/// Runs \p Fn repeatedly until \p MinSeconds elapse (at least once) and
/// returns the average seconds per run.
double timeIt(const std::function<void()> &Fn, double MinSeconds);

/// GFLOPS for \p Flops work done in \p Seconds.
inline double gflops(double Flops, double Seconds) {
  return Flops / Seconds * 1e-9;
}

/// Aligned-column table with a title, header and float formatting; prints
/// to stdout. Optionally mirrors rows as CSV.
class Table {
public:
  Table(std::string Title, std::vector<std::string> Header, bool Csv);

  void addRow(std::vector<std::string> Cells);
  /// Convenience: first cell is a label, the rest are %.2f numbers.
  void addRow(const std::string &Label, const std::vector<double> &Values);
  void print() const;

private:
  std::string Title;
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
  bool Csv;
};

/// Fills \p N floats with a reproducible pattern in [-1, 1].
void fillRandom(float *Data, size_t N, unsigned Seed);

/// Max |A[i] - B[i]| over N elements.
float maxAbsDiff(const float *A, const float *B, size_t N);

} // namespace benchutil

#endif // BENCHUTIL_BENCH_H
