//===- KernelRegistry.cpp -------------------------------------------------===//

#include "ukr/KernelRegistry.h"

#include <map>
#include <mutex>

using namespace exo;
using namespace ukr;

Expected<Kernel> ukr::buildKernel(const UkrConfig &Cfg,
                                  const SchedOptions &Opts) {
  auto Res = generateUkernel(Cfg, Opts);
  if (!Res)
    return Res.takeError();

  Kernel K;
  K.Cfg = Cfg;
  K.Style = Res->Style;
  K.Final = Res->Final;
  K.CSource = std::move(Res->CSource);

  bool Executable = K.Style == FmaStyle::Scalar ||
                    (Cfg.Isa && Cfg.Isa->hostExecutable());
  // gcc 12 on x86 has no __bf16 type (storage or otherwise), so bf16
  // kernels stay textual/interpreter artifacts on this host rather than
  // turning into a hard JIT compile error.
#if !defined(__aarch64__)
  if (Cfg.Ty == ScalarKind::BF16 || Cfg.accKind() == ScalarKind::BF16)
    Executable = false;
#endif
  if (Executable && jitAvailable()) {
    std::string Flags = K.Style == FmaStyle::Scalar ? "-march=native"
                                                     : Cfg.Isa->jitFlags();
    auto Jit = jitCompile(K.CSource, Cfg.kernelName(), Flags);
    if (!Jit)
      return Jit.takeError();
    K.Jit = Jit.take();
    if (Cfg.Ty == ScalarKind::F32) {
      if (Cfg.GeneralAlphaBeta)
        K.FnAxpby = K.Jit->as<MicroKernelAxpbyF32>();
      else
        K.Fn = K.Jit->as<MicroKernelF32>();
    } else if (Cfg.Ty == ScalarKind::I8 &&
               Cfg.accKind() == ScalarKind::I32 && !Cfg.GeneralAlphaBeta) {
      K.FnI8 = K.Jit->as<MicroKernelI8I32>();
    }
  }
  return K;
}

struct KernelCache::Impl {
  std::mutex Mu;
  std::map<std::string, Kernel> Kernels;
};

KernelCache &KernelCache::global() {
  static KernelCache C;
  return C;
}

KernelCache::Impl &KernelCache::impl() const {
  static Impl I;
  return I;
}

Expected<const Kernel *> KernelCache::get(const UkrConfig &Cfg) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  std::string Key = Cfg.kernelName();
  auto It = I.Kernels.find(Key);
  if (It != I.Kernels.end())
    return const_cast<const Kernel *>(&It->second);
  auto K = buildKernel(Cfg);
  if (!K)
    return K.takeError();
  auto [Pos, Inserted] = I.Kernels.emplace(Key, K.take());
  (void)Inserted;
  return const_cast<const Kernel *>(&Pos->second);
}

size_t KernelCache::size() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  return I.Kernels.size();
}

UkrConfig ukr::shapeConfig(int64_t Mr, int64_t Nr, const IsaLib *Preferred,
                           bool UnrollCompute, ScalarKind Ty) {
  UkrConfig Cfg;
  Cfg.MR = Mr;
  Cfg.NR = Nr;
  Cfg.Ty = Ty;
  Cfg.UnrollCompute = UnrollCompute;
  Cfg.Isa = Preferred ? Preferred : bestIsaForMr(Mr);
  if (Ty != ScalarKind::F32) {
    // Narrow kinds keep a vector library only when it actually has
    // instructions for them (e.g. Neon f16); otherwise the scalar schedule
    // is the correct degradation — same rule effectiveStyle applies, made
    // explicit here so kernelName reflects it.
    if (Cfg.Isa && !Cfg.Isa->supports(Ty))
      Cfg.Isa = nullptr;
    // i8 and bf16 compute is defined through widening dot units; their
    // kernels accumulate in i32/f32 (see UkrConfig::WidenAcc).
    if (Ty == ScalarKind::I8 || Ty == ScalarKind::BF16)
      Cfg.WidenAcc = true;
  }
  if (!Cfg.Isa)
    Cfg.Style = FmaStyle::Scalar;
  return Cfg;
}

const IsaLib *ukr::bestIsaForMr(int64_t MR) {
  const IsaLib *Best = nullptr;
  unsigned BestLanes = 0;
  for (const IsaLib *I : allIsas()) {
    if (!I->hostExecutable() || !I->supports(ScalarKind::F32))
      continue;
    unsigned L = I->lanes(ScalarKind::F32);
    if (MR % L == 0 && L > BestLanes) {
      Best = I;
      BestLanes = L;
    }
  }
  return Best;
}
