//===- UkrSpec.h - Reference micro-kernel procedures ----------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unscheduled micro-kernel specifications of the paper's Figs. 4 and 5.
/// Conventions (paper §III-A): operands arrive packed, so Ac is stored
/// KC x MR (transposed panel, unit stride along MR) and Bc is KC x NR; the C
/// tile is NR x MR with a runtime row stride `ldc` so the kernel updates a
/// tile of a larger column-major matrix in place.
///
//===----------------------------------------------------------------------===//

#ifndef UKR_UKRSPEC_H
#define UKR_UKRSPEC_H

#include "exo/ir/Proc.h"

namespace ukr {

/// The simplified alpha = beta = 1 specification (paper Fig. 5):
///
/// \code
///   def ukernel_ref(MR: size, NR: size, KC: size, ldc: size,
///                   Ac: ty[KC, MR], Bc: ty[KC, NR], C: cty[NR, MR] @ ldc):
///       for k in seq(0, KC):
///           for j in seq(0, NR):
///               for i in seq(0, MR):
///                   C[j, i] += Ac[k, i] * Bc[k, j]
/// \endcode
exo::Proc makeUkernelRef(exo::ScalarKind Ty = exo::ScalarKind::F32);

/// Same spec with a separate C (accumulator) kind \p CTy — i8 inputs into an
/// i32 tile, bf16 inputs into an f32 tile (the dot-product-unit contract).
exo::Proc makeUkernelRef(exo::ScalarKind Ty, exo::ScalarKind CTy);

/// The general alpha/beta specification (paper Fig. 4) with the Cb and Ba
/// staging buffers: Cb = C * beta; Ba = Bc * alpha; Cb += Ac x Ba; C = Cb.
exo::Proc makeUkernelRefFull(exo::ScalarKind Ty = exo::ScalarKind::F32);

} // namespace ukr

#endif // UKR_UKRSPEC_H
