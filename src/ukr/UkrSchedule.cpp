//===- UkrSchedule.cpp ----------------------------------------------------===//

#include "ukr/UkrSchedule.h"

#include "exo/check/Bounds.h"
#include "exo/codegen/CEmit.h"
#include "exo/support/Str.h"
#include "ukr/UkrSpec.h"

using namespace exo;
using namespace ukr;

const char *ukr::fmaStyleName(FmaStyle S) {
  switch (S) {
  case FmaStyle::Auto:
    return "auto";
  case FmaStyle::Lane:
    return "lane";
  case FmaStyle::Broadcast:
    return "bcst";
  case FmaStyle::Scalar:
    return "scalar";
  }
  return "?";
}

exo::ScalarKind UkrConfig::accKind() const {
  return WidenAcc ? dotAccumKind(Ty) : Ty;
}

FmaStyle UkrConfig::effectiveStyle() const {
  if (Style == FmaStyle::Scalar)
    return FmaStyle::Scalar;
  // Widened accumulation mixes two element types; the plain-FMA vector
  // schedules stage everything in one register kind, so only the scalar
  // schedule is type-correct for it today.
  if (WidenAcc && accKind() != Ty)
    return FmaStyle::Scalar;
  if (!Isa || !Isa->supports(Ty))
    return FmaStyle::Scalar;
  int64_t L = Isa->lanes(Ty);
  if (MR % L != 0)
    return FmaStyle::Scalar;
  // A forced style still requires the ISA to provide its FMA flavour
  // (e.g. AVX2 has no lane-indexed FMA); degrade to Scalar like the other
  // infeasible-configuration cases rather than running a schedule whose
  // replace step would dereference a missing instruction.
  if (Style == FmaStyle::Lane)
    return Isa->fmaLane(Ty) ? FmaStyle::Lane : FmaStyle::Scalar;
  if (Style == FmaStyle::Broadcast)
    return Isa->fmaBroadcast(Ty) ? FmaStyle::Broadcast : FmaStyle::Scalar;
  // Auto: prefer the lane schedule when the ISA has a lane FMA and NR
  // divides evenly; otherwise broadcast.
  if (Isa->fmaLane(Ty) && NR % L == 0)
    return FmaStyle::Lane;
  if (Isa->fmaBroadcast(Ty))
    return FmaStyle::Broadcast;
  return FmaStyle::Scalar;
}

std::string UkrConfig::kernelName() const {
  FmaStyle S = effectiveStyle();
  std::string Isas = S == FmaStyle::Scalar ? "c" : Isa->name();
  std::string Name =
      strf("uk_%lldx%lld_%s_%s_%s", static_cast<long long>(MR),
           static_cast<long long>(NR), scalarKindName(Ty), Isas.c_str(),
           fmaStyleName(S));
  // Non-default unroll settings are part of the identity (the kernel cache
  // keys on this name).
  if (!UnrollLoads)
    Name += "_noul";
  if (UnrollCompute)
    Name += "_full";
  if (GeneralAlphaBeta)
    Name += "_axpby";
  if (WidenAcc && accKind() != Ty)
    Name += strf("_%sacc", scalarKindName(accKind()));
  return Name;
}

namespace {

/// Chains Expected<Proc> steps, recording each version.
class Pipeline {
public:
  Pipeline(Proc Init, std::vector<UkrStep> &Steps)
      : Cur(std::move(Init)), Steps(Steps) {}

  /// Applies one rewrite; remembers it under \p Label. On failure the
  /// pipeline latches the error.
  void step(const std::string &Label, Expected<Proc> Next) {
    if (Failed)
      return;
    if (!Next) {
      Failed = errorf("schedule step '%s' failed: %s", Label.c_str(),
                      Next.message().c_str());
      return;
    }
    Cur = Next.take();
    Steps.push_back({Label, Cur});
  }

  const Proc &current() const { return Cur; }
  Error takeError() { return std::move(Failed); }
  bool failed() const { return static_cast<bool>(Failed); }

private:
  Proc Cur;
  std::vector<UkrStep> &Steps;
  Error Failed;
};

/// Which buffers the compute nest reads and updates: the simplified spec
/// updates C from Ac/Bc; the general spec updates the Cb staging buffer
/// from Ac and the alpha-scaled Ba (paper Fig. 4).
struct CoreBufs {
  std::string C = "C";
  std::string A = "Ac";
  std::string B = "Bc";
  /// Pattern selecting the staged store back into C. In the general spec
  /// "Cb[_] = _" also matches the beta-scaling statement, which precedes
  /// the store in pre-order, so the store is occurrence #1 there.
  std::string StorePattern = "C[_] = _";
};

/// The paper's Neon schedule (lane-indexed FMA, B staged in registers).
void runLaneSchedule(Pipeline &P, const UkrConfig &Cfg, const CoreBufs &Bufs,
                     const SchedOptions &Opts) {
  const IsaLib &Isa = *Cfg.Isa;
  int64_t L = Isa.lanes(Cfg.Ty);
  const MemSpace *Reg = Isa.space(Cfg.Ty);
  InstrPtr Vld = Isa.load(Cfg.Ty);
  InstrPtr Vst = Isa.store(Cfg.Ty);
  InstrPtr Fmla = Isa.fmaLane(Cfg.Ty);

  // v2: split i and j to the vector length (paper Fig. 7).
  P.step("divide_loop i",
         divideLoop(P.current(), "for i in _: _", L, "it", "itt",
                    /*Perfect=*/true, Opts));
  P.step("divide_loop j",
         divideLoop(P.current(), "for j in _: _", L, "jt", "jtt",
                    /*Perfect=*/true, Opts));

  // v3: stage the C tile in vector registers (paper Fig. 8).
  P.step("stage_mem C",
         stageMem(P.current(), Bufs.C + "[_] += _", Bufs.C, "C_reg", Opts));
  P.step("expand_dim C_reg itt",
         expandDim(P.current(), "C_reg", idx(L), var("itt"), Opts));
  P.step("expand_dim C_reg it",
         expandDim(P.current(), "C_reg", idx(Cfg.MR / L), var("it"), Opts));
  P.step("expand_dim C_reg jt",
         expandDim(P.current(), "C_reg", idx(Cfg.NR),
                   var("jt") * L + var("jtt"), Opts));
  P.step("lift_alloc C_reg", liftAlloc(P.current(), "C_reg", 5, Opts));
  P.step("autofission C load",
         autofission(P.current(), "C_reg[_] = _", /*After=*/true, 5, Opts));
  P.step("autofission C store",
         autofission(P.current(), Bufs.StorePattern, /*After=*/false, 5,
                     Opts));
  P.step("replace C load",
         replaceWithInstr(P.current(), "for itt in _: _ #0", Vld, Opts));
  P.step("replace C store",
         replaceWithInstr(P.current(), "for itt in _: _ #1", Vst, Opts));
  P.step("set_memory C_reg", setMemory(P.current(), "C_reg", Reg));

  // v4: stage the Ac operand (paper Fig. 9).
  P.step("bind_expr Ac", bindExpr(P.current(), Bufs.A + "[_]", "A_reg", Opts));
  P.step("expand_dim A_reg itt",
         expandDim(P.current(), "A_reg", idx(L), var("itt"), Opts));
  P.step("expand_dim A_reg it",
         expandDim(P.current(), "A_reg", idx(Cfg.MR / L), var("it"), Opts));
  P.step("lift_alloc A_reg", liftAlloc(P.current(), "A_reg", 5, Opts));
  P.step("autofission A load",
         autofission(P.current(), "A_reg[_] = _", /*After=*/true, 4, Opts));
  P.step("replace A load",
         replaceWithInstr(P.current(), "for itt in _: _ #0", Vld, Opts));
  P.step("set_memory A_reg", setMemory(P.current(), "A_reg", Reg));

  // v4: stage the Bc operand.
  P.step("bind_expr Bc", bindExpr(P.current(), Bufs.B + "[_]", "B_reg", Opts));
  P.step("expand_dim B_reg jtt",
         expandDim(P.current(), "B_reg", idx(L), var("jtt"), Opts));
  P.step("expand_dim B_reg jt",
         expandDim(P.current(), "B_reg", idx(Cfg.NR / L), var("jt"), Opts));
  P.step("lift_alloc B_reg", liftAlloc(P.current(), "B_reg", 5, Opts));
  P.step("autofission B load",
         autofission(P.current(), "B_reg[_] = _", /*After=*/true, 4, Opts));
  P.step("replace B load",
         replaceWithInstr(P.current(), "for jtt in _: _ #1", Vld, Opts));
  P.step("set_memory B_reg", setMemory(P.current(), "B_reg", Reg));

  // v5: reorder so B lanes are consumed sequentially, then the FMA
  // (paper Fig. 10). Occurrence #1 of jtt is the compute nest (the C load
  // nest holds #0).
  P.step("reorder_loops jtt/it",
         reorderLoops(P.current(), "jtt it #1", Opts));
  P.step("replace fmla",
         replaceWithInstr(P.current(), "for itt in _: _ #0", Fmla, Opts));

  // v6: unroll the register loads (paper Fig. 11).
  if (Cfg.UnrollLoads) {
    P.step("unroll A load",
           unrollLoop(P.current(), "for it in _: _ #1", Opts));
    P.step("unroll B load",
           unrollLoop(P.current(), "for jt in _: _ #1", Opts));
  }
  if (Cfg.UnrollCompute) {
    P.step("unroll compute jtt",
           unrollLoop(P.current(), "for jtt in _: _ #1", Opts));
    P.step("unroll compute it",
           unrollLoop(P.current(), "for it in _: _ #1", Opts));
    P.step("unroll compute jt",
           unrollLoop(P.current(), "for jt in _: _ #1", Opts));
  }
}

/// The broadcast-FMA schedule for ISAs without a lane-indexed FMA (§III-C):
/// the j loop stays scalar and each B element is broadcast from memory.
void runBroadcastSchedule(Pipeline &P, const UkrConfig &Cfg,
                          const CoreBufs &Bufs, const SchedOptions &Opts) {
  const IsaLib &Isa = *Cfg.Isa;
  int64_t L = Isa.lanes(Cfg.Ty);
  const MemSpace *Reg = Isa.space(Cfg.Ty);
  InstrPtr Vld = Isa.load(Cfg.Ty);
  InstrPtr Vst = Isa.store(Cfg.Ty);
  InstrPtr Fma = Isa.fmaBroadcast(Cfg.Ty);

  P.step("divide_loop i",
         divideLoop(P.current(), "for i in _: _", L, "it", "itt",
                    /*Perfect=*/true, Opts));

  // Stage C.
  P.step("stage_mem C",
         stageMem(P.current(), Bufs.C + "[_] += _", Bufs.C, "C_reg", Opts));
  P.step("expand_dim C_reg itt",
         expandDim(P.current(), "C_reg", idx(L), var("itt"), Opts));
  P.step("expand_dim C_reg it",
         expandDim(P.current(), "C_reg", idx(Cfg.MR / L), var("it"), Opts));
  P.step("expand_dim C_reg j",
         expandDim(P.current(), "C_reg", idx(Cfg.NR), var("j"), Opts));
  P.step("lift_alloc C_reg", liftAlloc(P.current(), "C_reg", 4, Opts));
  P.step("autofission C load",
         autofission(P.current(), "C_reg[_] = _", /*After=*/true, 4, Opts));
  P.step("autofission C store",
         autofission(P.current(), Bufs.StorePattern, /*After=*/false, 4,
                     Opts));
  P.step("replace C load",
         replaceWithInstr(P.current(), "for itt in _: _ #0", Vld, Opts));
  P.step("replace C store",
         replaceWithInstr(P.current(), "for itt in _: _ #1", Vst, Opts));
  P.step("set_memory C_reg", setMemory(P.current(), "C_reg", Reg));

  // Stage A.
  P.step("bind_expr Ac", bindExpr(P.current(), Bufs.A + "[_]", "A_reg", Opts));
  P.step("expand_dim A_reg itt",
         expandDim(P.current(), "A_reg", idx(L), var("itt"), Opts));
  P.step("expand_dim A_reg it",
         expandDim(P.current(), "A_reg", idx(Cfg.MR / L), var("it"), Opts));
  P.step("lift_alloc A_reg", liftAlloc(P.current(), "A_reg", 4, Opts));
  P.step("autofission A load",
         autofission(P.current(), "A_reg[_] = _", /*After=*/true, 3, Opts));
  P.step("replace A load",
         replaceWithInstr(P.current(), "for itt in _: _ #0", Vld, Opts));
  P.step("set_memory A_reg", setMemory(P.current(), "A_reg", Reg));

  // The broadcast FMA consumes Bc directly from memory.
  P.step("replace fma",
         replaceWithInstr(P.current(), "for itt in _: _ #0", Fma, Opts));

  if (Cfg.UnrollLoads)
    P.step("unroll A load",
           unrollLoop(P.current(), "for it in _: _ #1", Opts));
  if (Cfg.UnrollCompute) {
    P.step("unroll compute it",
           unrollLoop(P.current(), "for it in _: _ #1", Opts));
    P.step("unroll compute j",
           unrollLoop(P.current(), "for j in _: _ #1", Opts));
  }
}

} // namespace

Expected<UkrResult> ukr::generateUkernel(const UkrConfig &Cfg,
                                         const SchedOptions &Opts) {
  if (Cfg.MR <= 0 || Cfg.NR <= 0)
    return errorf("generate_ukernel: MR/NR must be positive");

  UkrResult R;
  R.Cfg = Cfg;
  R.Style = Cfg.effectiveStyle();

  if (Cfg.GeneralAlphaBeta && Cfg.WidenAcc && Cfg.accKind() != Cfg.Ty)
    return errorf("generate_ukernel: WidenAcc is not defined for the "
                  "general alpha/beta spec (alpha/beta scale in storage "
                  "type)");

  Proc Ref = Cfg.GeneralAlphaBeta ? makeUkernelRefFull(Cfg.Ty)
                                  : makeUkernelRef(Cfg.Ty, Cfg.accKind());
  CoreBufs Bufs;
  if (Cfg.GeneralAlphaBeta) {
    Bufs.C = "Cb";
    Bufs.B = "Ba";
    Bufs.StorePattern = "Cb[_] = _ #1";
  }
  Pipeline P(renameProc(Ref, Cfg.kernelName()), R.Steps);

  // v1: specialize MR and NR (paper Fig. 6).
  P.step("partial_eval",
         partialEval(P.current(), {{"MR", Cfg.MR}, {"NR", Cfg.NR}}));

  switch (R.Style) {
  case FmaStyle::Lane:
    runLaneSchedule(P, Cfg, Bufs, Opts);
    break;
  case FmaStyle::Broadcast:
    runBroadcastSchedule(P, Cfg, Bufs, Opts);
    break;
  case FmaStyle::Scalar:
    // Partial evaluation plus cleanup only; the C compiler's optimizer is
    // the vectorizer of last resort for degenerate shapes (paper's 1xNR
    // edge kernels).
    P.step("simplify", Expected<Proc>(simplifyProc(P.current())));
    break;
  case FmaStyle::Auto:
    return errorf("effectiveStyle returned Auto");
  }

  if (P.failed())
    return P.takeError();

  R.Final = P.current();
  // Static safety net: every access of the final kernel is provably in
  // bounds for all KC/ldc satisfying the preconditions.
  if (Error Err = checkBounds(R.Final))
    return errorf("bounds check of '%s' failed: %s",
                  Cfg.kernelName().c_str(), Err.message().c_str());
  CodegenOptions CgOpts;
  CgOpts.Isa = R.Style == FmaStyle::Scalar ? nullptr : Cfg.Isa;
  auto Src = emitCModule(R.Final, CgOpts);
  if (!Src)
    return errorf("codegen of '%s' failed: %s",
                  Cfg.kernelName().c_str(), Src.message().c_str());
  R.CSource = Src.take();
  return R;
}
