//===- UkrSchedule.h - The paper's step-by-step schedule ------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the §III pipeline over the reference spec: partial evaluation
/// (v1), loop splitting to the vector length (v2), staging C into registers
/// with vectorized load/store (v3), staging the A and B operands (v4),
/// reordering and FMA replacement (v5), and load unrolling (v6). Every
/// intermediate version is retained so tests and the quickstart example can
/// print the same progression as the paper's Figs. 6-11.
///
//===----------------------------------------------------------------------===//

#ifndef UKR_UKRSCHEDULE_H
#define UKR_UKRSCHEDULE_H

#include "exo/sched/Schedule.h"
#include "ukr/UkrConfig.h"

#include <vector>

namespace ukr {

/// One named intermediate version of the schedule.
struct UkrStep {
  std::string Label;
  exo::Proc P;
};

/// The outcome of running the full pipeline.
struct UkrResult {
  UkrConfig Cfg;
  FmaStyle Style = FmaStyle::Scalar;
  std::vector<UkrStep> Steps;
  exo::Proc Final;
  /// Self-contained C translation unit for Cfg.Isa.
  std::string CSource;
};

/// Runs the schedule for \p Cfg. Fails when the configuration is
/// inconsistent (e.g. lane style with NR not a multiple of the vector
/// width) or any rewrite is rejected.
exo::Expected<UkrResult>
generateUkernel(const UkrConfig &Cfg,
                const exo::SchedOptions &Opts = exo::defaultSchedOptions());

} // namespace ukr

#endif // UKR_UKRSCHEDULE_H
