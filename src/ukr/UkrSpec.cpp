//===- UkrSpec.cpp --------------------------------------------------------===//

#include "ukr/UkrSpec.h"

#include "exo/ir/Builder.h"

using namespace exo;

Proc ukr::makeUkernelRef(ScalarKind Ty) { return makeUkernelRef(Ty, Ty); }

Proc ukr::makeUkernelRef(ScalarKind Ty, ScalarKind CTy) {
  ProcBuilder B("ukernel_ref");
  ExprPtr MR = B.sizeParam("MR");
  ExprPtr NR = B.sizeParam("NR");
  ExprPtr KC = B.sizeParam("KC");
  ExprPtr Ldc = B.sizeParam("ldc");
  B.tensorParam("Ac", Ty, {KC, MR}, MemSpace::dram(), /*Mutable=*/false);
  B.tensorParam("Bc", Ty, {KC, NR}, MemSpace::dram(), /*Mutable=*/false);
  B.tensorParam("C", CTy, {NR, MR}, MemSpace::dram(), /*Mutable=*/true,
                /*LeadStrideVar=*/"ldc");
  B.precond(BinOpExpr::make(BinOpExpr::Op::Ge, Ldc, MR));

  ExprPtr K = B.beginFor("k", idx(0), KC);
  ExprPtr J = B.beginFor("j", idx(0), NR);
  ExprPtr I = B.beginFor("i", idx(0), MR);
  B.reduce("C", {J, I}, B.readOf("Ac", {K, I}) * B.readOf("Bc", {K, J}));
  B.endFor();
  B.endFor();
  B.endFor();
  return B.build();
}

Proc ukr::makeUkernelRefFull(ScalarKind Ty) {
  ProcBuilder B("ukernel_ref_full");
  ExprPtr MR = B.sizeParam("MR");
  ExprPtr NR = B.sizeParam("NR");
  ExprPtr KC = B.sizeParam("KC");
  ExprPtr Ldc = B.sizeParam("ldc");
  B.tensorParam("alpha", Ty, {idx(1)}, MemSpace::dram(), /*Mutable=*/false);
  B.tensorParam("Ac", Ty, {KC, MR}, MemSpace::dram(), /*Mutable=*/false);
  B.tensorParam("Bc", Ty, {KC, NR}, MemSpace::dram(), /*Mutable=*/false);
  B.tensorParam("beta", Ty, {idx(1)}, MemSpace::dram(), /*Mutable=*/false);
  B.tensorParam("C", Ty, {NR, MR}, MemSpace::dram(), /*Mutable=*/true,
                /*LeadStrideVar=*/"ldc");
  B.precond(BinOpExpr::make(BinOpExpr::Op::Ge, Ldc, MR));

  // Temporary buffers for C * beta and Bc * alpha (paper Fig. 4).
  B.alloc("Cb", Ty, {NR, MR}, MemSpace::dram());
  B.alloc("Ba", Ty, {KC, NR}, MemSpace::dram());

  // Cb = C * beta
  {
    ExprPtr Cj = B.beginFor("cj", idx(0), NR);
    ExprPtr Ci = B.beginFor("ci", idx(0), MR);
    B.assign("Cb", {Cj, Ci},
             B.readOf("C", {Cj, Ci}) * B.readOf("beta", {idx(0)}));
    B.endFor();
    B.endFor();
  }
  // Ba = Bc * alpha
  {
    ExprPtr Bk = B.beginFor("bk", idx(0), KC);
    ExprPtr Bj = B.beginFor("bj", idx(0), NR);
    B.assign("Ba", {Bk, Bj},
             B.readOf("Bc", {Bk, Bj}) * B.readOf("alpha", {idx(0)}));
    B.endFor();
    B.endFor();
  }
  // Cb += Ac * Ba
  {
    ExprPtr K = B.beginFor("k", idx(0), KC);
    ExprPtr J = B.beginFor("j", idx(0), NR);
    ExprPtr I = B.beginFor("i", idx(0), MR);
    B.reduce("Cb", {J, I}, B.readOf("Ac", {K, I}) * B.readOf("Ba", {K, J}));
    B.endFor();
    B.endFor();
    B.endFor();
  }
  // C = Cb
  {
    ExprPtr Cj = B.beginFor("sj", idx(0), NR);
    ExprPtr Ci = B.beginFor("si", idx(0), MR);
    B.assign("C", {Cj, Ci}, B.readOf("Cb", {Cj, Ci}));
    B.endFor();
    B.endFor();
  }
  return B.build();
}
