//===- KernelService.cpp --------------------------------------------------===//

#include "ukr/KernelService.h"

#include "exo/jit/DiskCache.h"
#include "exo/support/Str.h"
#include "obs/Obs.h"

#include <array>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

using namespace exo;
using namespace ukr;

//===----------------------------------------------------------------------===//
// The portable reference fallback family
//===----------------------------------------------------------------------===//

namespace {

constexpr int MaxFallbackMr = 24;
constexpr int MaxFallbackNr = 16;

/// The reference micro-kernel semantics (UkrSpec's naive loop nest) with
/// the shape baked in at C++ compile time, so a plain function pointer can
/// serve any tile while the specialized kernel is still in the oven.
template <int MR, int NR>
void refUkr(int64_t Kc, int64_t Ldc, const float *Ac, const float *Bc,
            float *C) {
  for (int64_t K = 0; K < Kc; ++K)
    for (int J = 0; J < NR; ++J)
      for (int I = 0; I < MR; ++I)
        C[J * Ldc + I] += Ac[K * MR + I] * Bc[K * NR + J];
}

template <int MR, size_t... Ns>
constexpr std::array<MicroKernelF32, sizeof...(Ns)>
fallbackRow(std::index_sequence<Ns...>) {
  return {{&refUkr<MR, static_cast<int>(Ns) + 1>...}};
}

template <size_t... Ms>
constexpr std::array<std::array<MicroKernelF32, MaxFallbackNr>, sizeof...(Ms)>
fallbackTable(std::index_sequence<Ms...>) {
  return {{fallbackRow<static_cast<int>(Ms) + 1>(
      std::make_index_sequence<MaxFallbackNr>{})...}};
}

} // namespace

MicroKernelF32 ukr::fallbackUkr(int64_t MR, int64_t NR) {
  static constexpr auto Table =
      fallbackTable(std::make_index_sequence<MaxFallbackMr>{});
  if (MR < 1 || MR > MaxFallbackMr || NR < 1 || NR > MaxFallbackNr)
    return nullptr;
  return Table[MR - 1][NR - 1];
}

//===----------------------------------------------------------------------===//
// KernelService
//===----------------------------------------------------------------------===//

struct KernelService::Impl {
  struct Entry {
    enum class State { Queued, Building, Ready, Failed } S = State::Queued;
    UkrConfig Cfg;
    Kernel K;
    std::string Err;
  };

  Options Opts;
  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::map<std::string, Entry> Entries;
  std::deque<std::string> Queue;
  std::vector<std::thread> Workers;
  bool Stop = false;

  // Service-level counters; the JIT-layer fields of CacheStats are deltas
  // against this baseline (taken at construction / resetStats).
  CacheStats St;
  JitStats JitBase;

  /// Fallback Kernel objects handed out by tryGet, keyed by shape so the
  /// returned pointer is stable for the service's lifetime.
  std::map<std::pair<int64_t, int64_t>, Kernel> Fallbacks;

  uint64_t inFlightLocked() const {
    uint64_t N = 0;
    for (const auto &[Name, E] : Entries)
      N += E.S == Entry::State::Queued || E.S == Entry::State::Building;
    return N;
  }

  /// Inserts (once) and enqueues the build for \p Cfg. Lock held.
  Entry &enqueueLocked(const UkrConfig &Cfg, const std::string &Key) {
    auto [It, Inserted] = Entries.try_emplace(Key);
    if (Inserted) {
      It->second.Cfg = Cfg;
      Queue.push_back(Key);
      Cv.notify_all();
    }
    return It->second;
  }

  void workerLoop() {
    std::unique_lock<std::mutex> Lock(Mu);
    while (true) {
      Cv.wait(Lock, [&] { return Stop || !Queue.empty(); });
      if (Stop)
        return;
      std::string Key = Queue.front();
      Queue.pop_front();
      Entry &E = Entries.at(Key);
      E.S = Entry::State::Building;
      UkrConfig Cfg = E.Cfg;
      Lock.unlock();

      exo::Expected<Kernel> Built = [&] {
        // Spans the full build pipeline: codegen + (disk-cache probe or
        // compiler invocation) + dlopen. Disk hits show up as short
        // jit.build spans with zero jit compile time in CacheStats.
        obs::Span Span("jit.build");
        return buildKernel(Cfg);
      }();

      Lock.lock();
      ++St.Builds;
      if (Built) {
        E.K = Built.take();
        E.S = Entry::State::Ready;
      } else {
        E.Err = Built.takeError().message();
        E.S = Entry::State::Failed;
        ++St.Failures;
      }
      Cv.notify_all();
    }
  }
};

KernelService::KernelService() : KernelService(Options{}) {}

KernelService::KernelService(const Options &Opts) : I(new Impl) {
  I->Opts = Opts;
  if (!Opts.CacheDir.empty())
    JitDiskCache::setGlobalRoot(Opts.CacheDir);
  unsigned N = Opts.Workers;
  if (N == 0) {
    if (const char *V = std::getenv("EXO_KERNEL_WORKERS"))
      N = static_cast<unsigned>(std::atoi(V));
    if (N == 0)
      N = 2;
  }
  I->JitBase = jitStats();
  for (unsigned W = 0; W < N; ++W)
    I->Workers.emplace_back([this] { I->workerLoop(); });
}

KernelService::~KernelService() {
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    I->Stop = true;
  }
  I->Cv.notify_all();
  for (std::thread &T : I->Workers)
    T.join();
  delete I;
}

KernelService &KernelService::global() {
  static KernelService S;
  return S;
}

const Kernel *KernelService::tryGet(const UkrConfig &Cfg) {
  std::string Key = Cfg.kernelName();
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Entries.find(Key);
  if (It != I->Entries.end() &&
      It->second.S == Impl::Entry::State::Ready) {
    ++I->St.Hits;
    obs::mark("ukr.cache.hit");
    return &It->second.K;
  }
  ++I->St.Misses;
  obs::mark("ukr.cache.miss");
  if (It == I->Entries.end())
    I->enqueueLocked(Cfg, Key);
  // Hand out the reference stand-in (only meaningful for plain f32
  // kernels; axpby/non-f32 callers must use the blocking path).
  if (Cfg.Ty != ScalarKind::F32 || Cfg.GeneralAlphaBeta)
    return nullptr;
  MicroKernelF32 Fn = fallbackUkr(Cfg.MR, Cfg.NR);
  if (!Fn)
    return nullptr;
  ++I->St.Fallbacks;
  obs::mark("ukr.cache.fallback");
  auto [FIt, Inserted] = I->Fallbacks.try_emplace({Cfg.MR, Cfg.NR});
  if (Inserted) {
    FIt->second.Cfg = Cfg;
    FIt->second.Style = FmaStyle::Scalar;
    FIt->second.Fn = Fn;
    FIt->second.IsFallback = true;
  }
  return &FIt->second;
}

Expected<const Kernel *> KernelService::get(const UkrConfig &Cfg) {
  std::string Key = Cfg.kernelName();
  std::unique_lock<std::mutex> Lock(I->Mu);
  auto It = I->Entries.find(Key);
  if (It != I->Entries.end() &&
      It->second.S == Impl::Entry::State::Ready) {
    ++I->St.Hits;
    obs::mark("ukr.cache.hit");
    return const_cast<const Kernel *>(&It->second.K);
  }
  ++I->St.Misses;
  obs::mark("ukr.cache.miss");
  Impl::Entry &E = I->enqueueLocked(Cfg, Key);
  I->Cv.wait(Lock, [&] {
    return E.S == Impl::Entry::State::Ready ||
           E.S == Impl::Entry::State::Failed;
  });
  if (E.S == Impl::Entry::State::Failed)
    return errorf("kernel service: build of %s failed: %s", Key.c_str(),
                  E.Err.c_str());
  return const_cast<const Kernel *>(&E.K);
}

void KernelService::prefetch(const UkrConfig &Cfg) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->enqueueLocked(Cfg, Cfg.kernelName());
}

void KernelService::prefetchBatch(const std::vector<UkrConfig> &Cfgs) {
  // One lock acquisition for the whole batch: plan warm-up enqueues a
  // shape's entire kernel family (main + edges) in one shot, and taking
  // the mutex per config would let tryGet() callers interleave half-warm
  // states between them.
  std::lock_guard<std::mutex> Lock(I->Mu);
  for (const UkrConfig &Cfg : Cfgs)
    I->enqueueLocked(Cfg, Cfg.kernelName());
}

Error KernelService::warm(const std::vector<UkrConfig> &Cfgs) {
  for (const UkrConfig &Cfg : Cfgs)
    prefetch(Cfg);
  wait();
  std::lock_guard<std::mutex> Lock(I->Mu);
  std::vector<std::string> Failed;
  for (const UkrConfig &Cfg : Cfgs) {
    auto It = I->Entries.find(Cfg.kernelName());
    if (It != I->Entries.end() &&
        It->second.S == Impl::Entry::State::Failed)
      Failed.push_back(Cfg.kernelName() + ": " + It->second.Err);
  }
  if (Failed.empty())
    return Error::success();
  return errorf("%zu kernel(s) failed to warm:\n%s", Failed.size(),
                join(Failed, "\n").c_str());
}

void KernelService::wait() {
  std::unique_lock<std::mutex> Lock(I->Mu);
  I->Cv.wait(Lock, [&] { return I->inFlightLocked() == 0; });
}

size_t KernelService::size() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  size_t N = 0;
  for (const auto &[Name, E] : I->Entries)
    N += E.S == Impl::Entry::State::Ready;
  return N;
}

CacheStats KernelService::stats() const {
  JitStats Jit = jitStats();
  std::lock_guard<std::mutex> Lock(I->Mu);
  CacheStats Out = I->St;
  Out.InFlight = I->inFlightLocked();
  Out.DiskHits = Jit.DiskHits - I->JitBase.DiskHits;
  Out.Compiles = Jit.Compiles - I->JitBase.Compiles;
  Out.CompileMs = Jit.CompileMs - I->JitBase.CompileMs;
  return Out;
}

void KernelService::resetStats() {
  JitStats Jit = jitStats();
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->St = CacheStats();
  I->JitBase = Jit;
}

std::vector<UkrConfig> ukr::standardShapeFamily(int64_t MR, int64_t NR,
                                                bool AllCandidates) {
  // Tiles to expand: the requested full tile, plus (with AllCandidates)
  // every shape ExoProvider::pickShape can select on this host.
  std::vector<std::pair<int64_t, int64_t>> Tiles = {{MR, NR}};
  if (AllCandidates) {
    static const std::pair<int64_t, int64_t> Candidates[] = {
        {8, 12}, {8, 8}, {8, 6},  {8, 4},  {16, 12}, {16, 8},
        {16, 6}, {16, 4}, {4, 12}, {4, 8}, {4, 4},   {24, 4},
    };
    for (auto [M, N] : Candidates)
      if (bestIsaForMr(M))
        Tiles.emplace_back(M, N);
  }

  std::set<std::pair<int64_t, int64_t>> Shapes;
  for (auto [M, N] : Tiles) {
    // The §IV-C edge family around a full tile: the tile itself plus the
    // half-width and scalar M edges crossed with the common N edges.
    for (int64_t EdgeM : {M, std::min<int64_t>(M, 4), int64_t(1)})
      for (int64_t EdgeN : {N, std::min<int64_t>(N, 8),
                            std::min<int64_t>(N, 4)})
        Shapes.emplace(EdgeM, EdgeN);
  }

  std::vector<UkrConfig> Out;
  for (auto [M, N] : Shapes)
    Out.push_back(shapeConfig(M, N));
  return Out;
}

CacheStats ukr::globalCacheStats() {
  CacheStats St = KernelService::global().stats();
  JitStats Jit = jitStats();
  St.DiskHits = Jit.DiskHits;
  St.Compiles = Jit.Compiles;
  St.CompileMs = Jit.CompileMs;
  St.CorruptMeta = JitDiskCache::corruptMetaObserved();
  return St;
}

void ukr::printCacheStats(const CacheStats &St, std::FILE *Out) {
  std::fprintf(Out,
               "kernel-cache: hits=%llu misses=%llu fallbacks=%llu "
               "builds=%llu failures=%llu in-flight=%llu\n"
               "jit: disk-hits=%llu compiles=%llu compile-ms=%.1f "
               "corrupt-meta=%llu (cache dir: %s%s)\n",
               static_cast<unsigned long long>(St.Hits),
               static_cast<unsigned long long>(St.Misses),
               static_cast<unsigned long long>(St.Fallbacks),
               static_cast<unsigned long long>(St.Builds),
               static_cast<unsigned long long>(St.Failures),
               static_cast<unsigned long long>(St.InFlight),
               static_cast<unsigned long long>(St.DiskHits),
               static_cast<unsigned long long>(St.Compiles), St.CompileMs,
               static_cast<unsigned long long>(St.CorruptMeta),
               JitDiskCache::global().root().c_str(),
               JitDiskCache::global().enabled() ? "" : ", disabled");
}
