//===- KernelRegistry.h - Generated-kernel cache and JIT handles ----------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns UkrConfig descriptions into callable kernels: runs the schedule,
/// emits C, JIT-compiles it with the system compiler, and caches the result
/// for the process lifetime. The GEMM framework asks this registry for the
/// specialized kernel of each (mr, nr) it encounters — the paper's "one
/// auto-generated micro-kernel per edge case" deployment model.
///
//===----------------------------------------------------------------------===//

#ifndef UKR_KERNELREGISTRY_H
#define UKR_KERNELREGISTRY_H

#include "exo/jit/Jit.h"
#include "ukr/UkrSchedule.h"

namespace ukr {

/// ABI of every generated f32 micro-kernel (parameter order follows the
/// reference spec after partial evaluation): C (NR x MR tile, row stride
/// ldc) += Ac (KC x MR panel) * Bc (KC x NR panel).
using MicroKernelF32 = void (*)(int64_t KC, int64_t Ldc, const float *Ac,
                                const float *Bc, float *C);

/// ABI of general alpha/beta kernels (UkrConfig::GeneralAlphaBeta, paper
/// Fig. 4): C = beta*C + Ac * (alpha*Bc).
using MicroKernelAxpbyF32 = void (*)(int64_t KC, int64_t Ldc,
                                     const float *Alpha, const float *Ac,
                                     const float *Bc, const float *Beta,
                                     float *C);

/// ABI of widened int8 kernels (UkrConfig::WidenAcc with Ty == i8): the C
/// tile is int32 and accumulation wraps around in two's complement.
using MicroKernelI8I32 = void (*)(int64_t KC, int64_t Ldc, const int8_t *Ac,
                                  const int8_t *Bc, int32_t *C);

/// A generated, compiled, callable kernel.
struct Kernel {
  UkrConfig Cfg;
  FmaStyle Style = FmaStyle::Scalar;
  exo::Proc Final;
  std::string CSource;
  exo::JitKernelPtr Jit;
  MicroKernelF32 Fn = nullptr;
  /// Set instead of Fn for GeneralAlphaBeta configurations.
  MicroKernelAxpbyF32 FnAxpby = nullptr;
  /// Set instead of Fn for widened int8 configurations.
  MicroKernelI8I32 FnI8 = nullptr;
  /// True for the portable reference stand-in KernelService::tryGet hands
  /// out while the specialized kernel is still compiling.
  bool IsFallback = false;

  int64_t mr() const { return Cfg.MR; }
  int64_t nr() const { return Cfg.NR; }
};

/// Generates + compiles one kernel (uncached). Fn stays null when the
/// ISA is not executable on this host or no C compiler is available.
exo::Expected<Kernel>
buildKernel(const UkrConfig &Cfg,
            const exo::SchedOptions &Opts = exo::defaultSchedOptions());

/// Process-wide cache keyed by the kernel name.
class KernelCache {
public:
  static KernelCache &global();

  /// Returns the cached kernel for \p Cfg, building it on first use.
  exo::Expected<const Kernel *> get(const UkrConfig &Cfg);

  /// Number of kernels built so far.
  size_t size() const;

private:
  struct Impl;
  Impl &impl() const;
};

/// Picks the widest host-executable ISA whose f32 vector width divides
/// \p MR; nullptr when none does (the scalar fallback case).
const exo::IsaLib *bestIsaForMr(int64_t MR);

/// The one ISA-per-shape selection rule: the UkrConfig for an Mr x Nr tile
/// of element kind \p Ty, with \p Preferred used unconditionally when
/// non-null and the widest dividing host ISA (bestIsaForMr) otherwise; a
/// shape no vector library divides degrades to the scalar FMA style. For
/// non-f32 kinds the preferred ISA is kept only when it supports the kind,
/// and i8/bf16 configs accumulate widened (WidenAcc, the dot-unit
/// contract). Every layer that turns a tile shape into a config —
/// ExoProvider's kernel memo, the Engine planner, `ukr_cachectl warm`'s
/// shape family, the ablation benches — must route through here so they
/// agree on the selection.
UkrConfig shapeConfig(int64_t Mr, int64_t Nr,
                      const exo::IsaLib *Preferred = nullptr,
                      bool UnrollCompute = false,
                      exo::ScalarKind Ty = exo::ScalarKind::F32);

} // namespace ukr

#endif // UKR_KERNELREGISTRY_H
