//===- KernelService.h - Async kernel compilation off the hot path --------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel-cache service: a worker pool compiles micro-kernels in the
/// background while a non-blocking tryGet() hands callers a portable
/// reference stand-in, so the first GEMM over a new shape never stalls on a
/// `cc -O3 -shared` invocation. Built kernels flow through the two-level
/// JIT cache (in-process map + the persistent disk cache of DiskCache.h),
/// so a service constructed over a warm cache directory serves every kernel
/// from disk with zero compiler invocations — the AOT warmup path of
/// `ukr_cachectl warm`.
///
/// Observability: every service keeps a CacheStats ledger (hits, misses,
/// fallback invocations, builds, in-flight) and folds in the JIT-layer
/// deltas (disk hits, compiles, compile wall time) accumulated since its
/// construction; benches dump the global service's snapshot.
///
/// Concurrency: every counter mutation and map access happens under the
/// service's single mutex, and the JIT-layer counters it folds in are
/// likewise mutex-guarded (Jit.cpp) — audited for the threaded
/// macro-kernel serving path, where many GEMM teams hit tryGet()
/// concurrently. Kernel pointers handed out are stable for the service's
/// lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef UKR_KERNELSERVICE_H
#define UKR_KERNELSERVICE_H

#include "ukr/KernelRegistry.h"

#include <cstdio>
#include <vector>

namespace ukr {

/// Snapshot of one service's counters (see file comment).
struct CacheStats {
  uint64_t Hits = 0;      ///< requests served a ready specialized kernel
  uint64_t Misses = 0;    ///< requests that found no ready kernel
  uint64_t Fallbacks = 0; ///< tryGet calls answered with the reference ukr
  uint64_t Builds = 0;    ///< kernel builds executed by this service
  uint64_t Failures = 0;  ///< builds that ended in an error
  uint64_t InFlight = 0;  ///< configs currently queued or building
  uint64_t DiskHits = 0;  ///< JIT artifacts loaded from the disk cache
  uint64_t Compiles = 0;  ///< compiler invocations
  double CompileMs = 0;   ///< wall time spent inside the compiler
  /// Disk-cache entries observed with an unparsable sidecar (process-wide,
  /// one per corrupt entry per directory scan; see
  /// exo::JitDiskCache::corruptMetaObserved).
  uint64_t CorruptMeta = 0;
};

/// The portable reference micro-kernel for an MR x NR f32 tile (a plain
/// triple loop over the packed panels), or nullptr when the shape is
/// outside the instantiated table (MR <= 24, NR <= 16 — covering every
/// ExoProvider::pickShape candidate and its edge family). This is what
/// tryGet() returns while the specialized kernel compiles.
MicroKernelF32 fallbackUkr(int64_t MR, int64_t NR);

/// See file comment.
class KernelService {
public:
  struct Options {
    /// Background compile workers (default: EXO_KERNEL_WORKERS or 2).
    unsigned Workers = 0;
    /// When non-empty, repoints the global disk cache at this directory
    /// before the service starts (tests, cachectl --dir).
    std::string CacheDir;
  };

  KernelService();
  explicit KernelService(const Options &Opts);
  ~KernelService(); ///< Drains nothing; joins workers after Stop.

  KernelService(const KernelService &) = delete;
  KernelService &operator=(const KernelService &) = delete;

  /// The process-wide service used by ExoProvider's async mode.
  static KernelService &global();

  /// Non-blocking: the specialized kernel when it is ready, otherwise
  /// enqueues the build (once per config) and returns the portable
  /// reference stand-in (Kernel::IsFallback set), or nullptr when no
  /// fallback exists for the config. Never invokes the compiler on the
  /// calling thread.
  const Kernel *tryGet(const UkrConfig &Cfg);

  /// Blocking: waits for (or performs, via the workers) the build and
  /// returns the specialized kernel.
  exo::Expected<const Kernel *> get(const UkrConfig &Cfg);

  /// Enqueues a build without waiting (cache warming).
  void prefetch(const UkrConfig &Cfg);

  /// Enqueues a batch of builds under one lock acquisition without
  /// waiting — the Engine planner's warm-up path for a cold shape's whole
  /// kernel family (main + edge kernels).
  void prefetchBatch(const std::vector<UkrConfig> &Cfgs);

  /// Enqueues every config and blocks until all have resolved. Returns an
  /// error naming the configs that failed (the rest are still cached).
  exo::Error warm(const std::vector<UkrConfig> &Cfgs);

  /// Blocks until the queue is empty and no build is running.
  void wait();

  /// Number of ready (successfully built) kernels.
  size_t size() const;

  CacheStats stats() const;
  void resetStats();

private:
  struct Impl;
  Impl *I;
};

/// The shape family `ukr_cachectl warm` precompiles: the paper's §IV-C
/// kernel family around a full tile (default 8x12) — the tile itself plus
/// its M/N edge sub-shapes — with the ISA re-picked per shape exactly as
/// ExoProvider does. \p AllCandidates adds every pickShape candidate tile
/// and its edges.
std::vector<UkrConfig> standardShapeFamily(int64_t MR = 8, int64_t NR = 12,
                                           bool AllCandidates = false);

/// Prints \p St (and the process-wide JIT counters) to \p Out — the bench
/// epilogue and `ukr_cachectl` reporting path.
void printCacheStats(const CacheStats &St, std::FILE *Out);

/// The global service's ledger with the JIT-layer counters reported as
/// process-wide totals rather than per-service deltas, so the synchronous
/// KernelCache path's compiles and disk hits are visible too. What the
/// benches dump.
CacheStats globalCacheStats();

} // namespace ukr

#endif // UKR_KERNELSERVICE_H
