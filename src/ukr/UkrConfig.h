//===- UkrConfig.h - Micro-kernel generator configuration -----------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One generated micro-kernel is described by an (MR, NR, element type,
/// instruction library, schedule style) tuple. The paper's flagship is the
/// 8x12 f32 Neon kernel; edge cases are the same schedule at other sizes
/// (§III-B), and other ISAs/types come from swapping the library (§III-C/D).
///
//===----------------------------------------------------------------------===//

#ifndef UKR_UKRCONFIG_H
#define UKR_UKRCONFIG_H

#include "exo/isa/IsaLib.h"

#include <cstdint>
#include <string>

namespace ukr {

/// How the inner product update is vectorized.
enum class FmaStyle : uint8_t {
  /// Pick Lane when the ISA has a lane-indexed FMA, else Broadcast.
  Auto,
  /// B staged in registers, lane-indexed FMA (the paper's Neon schedule).
  Lane,
  /// B broadcast from memory (idiomatic AVX2/AVX-512 schedule).
  Broadcast,
  /// No vectorization: partial evaluation only. Used when MR is smaller
  /// than every available vector width (e.g. the paper's 1xNR kernels).
  Scalar,
};

const char *fmaStyleName(FmaStyle S);

/// See file comment.
struct UkrConfig {
  int64_t MR = 8;
  int64_t NR = 12;
  exo::ScalarKind Ty = exo::ScalarKind::F32;
  const exo::IsaLib *Isa = &exo::portableIsa();
  FmaStyle Style = FmaStyle::Auto;
  /// Unroll the A/B register-load loops (paper §III step f).
  bool UnrollLoads = true;
  /// Additionally unroll the compute loops into straight-line FMAs.
  bool UnrollCompute = false;
  /// Schedule the general alpha/beta specification (paper Fig. 4, with the
  /// Cb and Ba staging nests) instead of the simplified alpha = beta = 1
  /// kernel of Fig. 5. The compute core is vectorized identically; the
  /// scaling nests remain scalar C, as the paper leaves them.
  bool GeneralAlphaBeta = false;
  /// Accumulate into the widened kind `exo::dotAccumKind(Ty)` instead of Ty
  /// itself: the C tile parameter is typed i32 for i8 inputs and f32 for
  /// bf16 inputs (the dot-product-unit convention). Same-type kinds are
  /// unaffected. Widened kernels are scheduled scalar — the plain-FMA
  /// vector schedules assume one element type throughout.
  bool WidenAcc = false;

  /// Style after resolving Auto against the ISA and MR.
  FmaStyle effectiveStyle() const;

  /// The kind the C tile is typed with (dotAccumKind(Ty) under WidenAcc).
  exo::ScalarKind accKind() const;

  /// Stable identifier, e.g. "uk_8x12_f32_portable_lane".
  std::string kernelName() const;
};

} // namespace ukr

#endif // UKR_UKRCONFIG_H
