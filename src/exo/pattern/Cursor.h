//===- Cursor.h - Paths into procedure bodies -----------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A StmtPath addresses one statement in a proc: Steps[0] indexes the proc
/// body; whenever the addressed statement is a `for`, the next step indexes
/// its body. Because procs are immutable, paths found before a rewrite stay
/// valid for the *old* proc only; primitives re-find what they need.
///
/// Gap positions (before/after a statement) support fission and insertion.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_PATTERN_CURSOR_H
#define EXO_PATTERN_CURSOR_H

#include "exo/pattern/Pattern.h"

namespace exo {

struct StmtPath {
  std::vector<int> Steps;

  bool operator==(const StmtPath &O) const { return Steps == O.Steps; }

  /// Path to the enclosing statement list owner (drops the last step).
  StmtPath parent() const {
    StmtPath P = *this;
    P.Steps.pop_back();
    return P;
  }
  int lastIndex() const { return Steps.back(); }
};

/// Returns the statement at \p Path; asserts the path is valid.
const StmtPtr &stmtAt(const Proc &P, const StmtPath &Path);

/// Returns the statement list that contains the children addressed below
/// \p OwnerPath. An empty path means the proc body; otherwise the path must
/// address a `for` and its body is returned.
const std::vector<StmtPtr> &bodyAt(const Proc &P, const StmtPath &OwnerPath);

/// Replaces the statement at \p Path by \p Repl (possibly several statements
/// or none), rebuilding the spine.
Proc spliceAt(const Proc &P, const StmtPath &Path, std::vector<StmtPtr> Repl);

/// Inserts \p Stmts into the statement list owning \p Path, before (or after)
/// the addressed statement.
Proc insertAt(const Proc &P, const StmtPath &Path, std::vector<StmtPtr> Stmts,
              bool Before);

/// Finds all statements matching \p Pat in pre-order.
std::vector<StmtPath> findAllStmts(const Proc &P, const StmtPattern &Pat);

/// Parses \p Pattern and returns its Occurrence-th match.
Expected<StmtPath> findStmt(const Proc &P, const std::string &Pattern);

/// An expression match: the statement containing it plus the expression.
struct ExprMatch {
  StmtPath Path;
  ExprPtr E;
};

/// Parses an expression pattern and returns its Occurrence-th match
/// (pre-order over statements, then over each statement's expressions).
Expected<ExprMatch> findExpr(const Proc &P, const std::string &Pattern);

/// Returns the chain of `for` statements enclosing (and not including)
/// \p Path, outermost first.
std::vector<const ForStmt *> enclosingLoops(const Proc &P,
                                            const StmtPath &Path);

} // namespace exo

#endif // EXO_PATTERN_CURSOR_H
