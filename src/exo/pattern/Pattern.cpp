//===- Pattern.cpp --------------------------------------------------------===//

#include "exo/pattern/Pattern.h"

#include "exo/support/Str.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>

using namespace exo;

bool StmtPattern::matches(const StmtPtr &S) const {
  switch (K) {
  case Kind::For: {
    const auto *F = dyn_castS<ForStmt>(S);
    if (!F)
      return false;
    return LoopVar.empty() || F->loopVar() == LoopVar;
  }
  case Kind::Assign: {
    const auto *A = dyn_castS<AssignStmt>(S);
    if (!A || A->isReduce() != IsReduce)
      return false;
    return Buf.empty() || A->buffer() == Buf;
  }
  case Kind::Alloc: {
    const auto *A = dyn_castS<AllocStmt>(S);
    return A && A->name() == AllocName;
  }
  }
  return false;
}

bool ExprPattern::matches(const ExprPtr &E) const {
  const auto *R = dyn_cast<ReadExpr>(E);
  return R && R->buffer() == Buf;
}

/// Strips a trailing `#k` selector, storing k in \p Occurrence. The pattern
/// text is user input (schedule scripts, fuzz repro files), so the index is
/// range-checked here instead of std::stoi — which threw std::out_of_range
/// straight through the parser on inputs like `#99999999999999999999` —
/// and an overflowing selector becomes a parse error via \p Err.
static std::string stripOccurrence(std::string_view Text, int &Occurrence,
                                   Error &Err) {
  Occurrence = 0;
  size_t Hash = Text.rfind('#');
  if (Hash == std::string_view::npos)
    return std::string(trim(Text));
  std::string Num(trim(Text.substr(Hash + 1)));
  if (!Num.empty() &&
      Num.find_first_not_of("0123456789") == std::string::npos) {
    errno = 0;
    char *End = nullptr;
    long long V = std::strtoll(Num.c_str(), &End, 10);
    if (errno == ERANGE || V > INT_MAX) {
      Err = errorf("occurrence index '#%s' out of range in pattern '%.*s'",
                   Num.c_str(), static_cast<int>(Text.size()), Text.data());
      return std::string();
    }
    Occurrence = static_cast<int>(V);
  }
  return std::string(trim(Text.substr(0, Hash)));
}

/// True for a valid identifier or the `_` wildcard.
static bool isIdentOrWild(std::string_view S) {
  if (S.empty())
    return false;
  if (S == "_")
    return true;
  if (!(std::isalpha(static_cast<unsigned char>(S[0])) || S[0] == '_'))
    return false;
  for (char C : S)
    if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_'))
      return false;
  return true;
}

Expected<StmtPattern> exo::parseStmtPattern(const std::string &Text) {
  StmtPattern P;
  Error OccErr;
  std::string Body = stripOccurrence(Text, P.Occurrence, OccErr);
  if (OccErr)
    return OccErr;

  // "for <var> in _: _"
  if (startsWith(Body, "for ")) {
    std::string Rest(trim(std::string_view(Body).substr(4)));
    size_t In = Rest.find(" in ");
    if (In == std::string::npos)
      return errorf("bad loop pattern '%s' (expected 'for v in _: _')",
                    Text.c_str());
    std::string Var(trim(std::string_view(Rest).substr(0, In)));
    std::string Tail(trim(std::string_view(Rest).substr(In + 4)));
    if (!isIdentOrWild(Var) || (Tail != "_: _" && Tail != "_:_"))
      return errorf("bad loop pattern '%s' (expected 'for v in _: _')",
                    Text.c_str());
    P.K = StmtPattern::Kind::For;
    P.LoopVar = Var == "_" ? "" : Var;
    return P;
  }

  // "name: _" — an allocation.
  if (size_t Colon = Body.find(':'); Colon != std::string::npos &&
                                     Body.find('=') == std::string::npos) {
    std::string Name(trim(std::string_view(Body).substr(0, Colon)));
    std::string Tail(trim(std::string_view(Body).substr(Colon + 1)));
    if (!isIdentOrWild(Name) || Name == "_" || Tail != "_")
      return errorf("bad alloc pattern '%s' (expected 'name: _')",
                    Text.c_str());
    P.K = StmtPattern::Kind::Alloc;
    P.AllocName = Name;
    return P;
  }

  // "buf[_] += _" / "buf[_] = _" / "_ = _" / "_ += _"
  bool Reduce = Body.find("+=") != std::string::npos;
  size_t Eq = Reduce ? Body.find("+=") : Body.find('=');
  if (Eq == std::string::npos)
    return errorf("unrecognized pattern '%s'", Text.c_str());
  std::string Lhs(trim(std::string_view(Body).substr(0, Eq)));
  std::string Rhs(
      trim(std::string_view(Body).substr(Eq + (Reduce ? 2 : 1))));
  if (Rhs != "_")
    return errorf("assignment pattern '%s' must have rhs '_'", Text.c_str());
  std::string BufName;
  if (Lhs == "_") {
    BufName.clear();
  } else if (endsWith(Lhs, "[_]")) {
    BufName = std::string(trim(std::string_view(Lhs).substr(0, Lhs.size() - 3)));
    if (!isIdentOrWild(BufName))
      return errorf("bad buffer name in pattern '%s'", Text.c_str());
    if (BufName == "_")
      BufName.clear();
  } else {
    return errorf("bad lhs in pattern '%s' (expected 'buf[_]' or '_')",
                  Text.c_str());
  }
  P.K = StmtPattern::Kind::Assign;
  P.Buf = BufName;
  P.IsReduce = Reduce;
  return P;
}

Expected<ExprPattern> exo::parseExprPattern(const std::string &Text) {
  ExprPattern P;
  Error OccErr;
  std::string Body = stripOccurrence(Text, P.Occurrence, OccErr);
  if (OccErr)
    return OccErr;
  if (!endsWith(Body, "[_]"))
    return errorf("bad expression pattern '%s' (expected 'buf[_]')",
                  Text.c_str());
  std::string Name(trim(std::string_view(Body).substr(0, Body.size() - 3)));
  if (!isIdentOrWild(Name) || Name == "_")
    return errorf("bad buffer name in expression pattern '%s'", Text.c_str());
  P.Buf = Name;
  return P;
}
