//===- Pattern.h - Schedule pattern language ------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textual patterns scheduling directives use to point at code, as in
/// the paper's user schedules:
///
///   "for itt in _: _"   a loop with variable `itt` (or `_` for any loop)
///   "C[_] += _"         a reduction into buffer C
///   "C_reg[_] = _"      an assignment to buffer C_reg
///   "_ = _"             any assignment
///   "C_reg: _"          the allocation of C_reg
///   "Ac[_]"             a read of buffer Ac (expression pattern)
///
/// A `#k` suffix (e.g. "for i in _: _ #1") selects the k-th match in
/// pre-order, counting from zero.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_PATTERN_PATTERN_H
#define EXO_PATTERN_PATTERN_H

#include "exo/ir/Proc.h"
#include "exo/support/Error.h"

#include <string>

namespace exo {

/// A parsed statement pattern.
struct StmtPattern {
  enum class Kind : uint8_t { For, Assign, Alloc };

  Kind K = Kind::For;
  /// For-loop variable; empty means wildcard.
  std::string LoopVar;
  /// Assignment destination buffer; empty means wildcard.
  std::string Buf;
  /// Assign: true matches `+=` only, false matches `=` only.
  bool IsReduce = false;
  /// Alloc name (never a wildcard).
  std::string AllocName;
  /// Which match to select (pre-order, from zero).
  int Occurrence = 0;

  /// True when \p S matches this pattern (ignoring Occurrence).
  bool matches(const StmtPtr &S) const;
};

/// A parsed expression pattern (`Buf[_]` — a read of Buf).
struct ExprPattern {
  std::string Buf;
  int Occurrence = 0;

  bool matches(const ExprPtr &E) const;
};

/// Parses a statement pattern; fails with a diagnostic on syntax errors.
Expected<StmtPattern> parseStmtPattern(const std::string &Text);

/// Parses an expression pattern (`Name[_]`).
Expected<ExprPattern> parseExprPattern(const std::string &Text);

} // namespace exo

#endif // EXO_PATTERN_PATTERN_H
