//===- Cursor.cpp ---------------------------------------------------------===//

#include "exo/pattern/Cursor.h"

#include "exo/ir/Rewrite.h"
#include "exo/support/Error.h"

using namespace exo;

const StmtPtr &exo::stmtAt(const Proc &P, const StmtPath &Path) {
  assert(!Path.Steps.empty() && "empty path addresses no statement");
  const std::vector<StmtPtr> *Body = &P.body();
  const StmtPtr *S = nullptr;
  for (size_t Level = 0; Level != Path.Steps.size(); ++Level) {
    int I = Path.Steps[Level];
    assert(I >= 0 && static_cast<size_t>(I) < Body->size() && "bad path step");
    S = &(*Body)[I];
    if (Level + 1 != Path.Steps.size()) {
      const auto *F = dyn_castS<ForStmt>(*S);
      assert(F && "path descends into a non-loop");
      Body = &F->body();
    }
  }
  return *S;
}

const std::vector<StmtPtr> &exo::bodyAt(const Proc &P,
                                        const StmtPath &OwnerPath) {
  if (OwnerPath.Steps.empty())
    return P.body();
  const StmtPtr &S = stmtAt(P, OwnerPath);
  const auto *F = dyn_castS<ForStmt>(S);
  assert(F && "body owner must be a for loop");
  return F->body();
}

/// Recursive helper: rebuilds \p Body with the statement at Steps[Level...]
/// replaced by \p Repl.
static std::vector<StmtPtr> spliceBody(const std::vector<StmtPtr> &Body,
                                       const std::vector<int> &Steps,
                                       size_t Level,
                                       std::vector<StmtPtr> &&Repl) {
  int I = Steps[Level];
  assert(I >= 0 && static_cast<size_t>(I) < Body.size() && "bad path step");
  std::vector<StmtPtr> Out;
  Out.reserve(Body.size() + Repl.size());
  for (int J = 0; J != I; ++J)
    Out.push_back(Body[J]);
  if (Level + 1 == Steps.size()) {
    for (StmtPtr &R : Repl)
      Out.push_back(std::move(R));
  } else {
    const auto *F = dyn_castS<ForStmt>(Body[I]);
    assert(F && "path descends into a non-loop");
    Out.push_back(
        F->withBody(spliceBody(F->body(), Steps, Level + 1, std::move(Repl))));
  }
  for (size_t J = I + 1; J != Body.size(); ++J)
    Out.push_back(Body[J]);
  return Out;
}

Proc exo::spliceAt(const Proc &P, const StmtPath &Path,
                   std::vector<StmtPtr> Repl) {
  assert(!Path.Steps.empty() && "cannot splice at the proc itself");
  return P.withBody(spliceBody(P.body(), Path.Steps, 0, std::move(Repl)));
}

Proc exo::insertAt(const Proc &P, const StmtPath &Path,
                   std::vector<StmtPtr> Stmts, bool Before) {
  const StmtPtr &Old = stmtAt(P, Path);
  std::vector<StmtPtr> Repl;
  Repl.reserve(Stmts.size() + 1);
  if (Before) {
    for (StmtPtr &S : Stmts)
      Repl.push_back(std::move(S));
    Repl.push_back(Old);
  } else {
    Repl.push_back(Old);
    for (StmtPtr &S : Stmts)
      Repl.push_back(std::move(S));
  }
  return spliceAt(P, Path, std::move(Repl));
}

static void findInBody(const std::vector<StmtPtr> &Body,
                       const StmtPattern &Pat, StmtPath &Prefix,
                       std::vector<StmtPath> &Out) {
  for (size_t I = 0; I != Body.size(); ++I) {
    Prefix.Steps.push_back(static_cast<int>(I));
    if (Pat.matches(Body[I]))
      Out.push_back(Prefix);
    if (const auto *F = dyn_castS<ForStmt>(Body[I]))
      findInBody(F->body(), Pat, Prefix, Out);
    Prefix.Steps.pop_back();
  }
}

std::vector<StmtPath> exo::findAllStmts(const Proc &P,
                                        const StmtPattern &Pat) {
  std::vector<StmtPath> Out;
  StmtPath Prefix;
  findInBody(P.body(), Pat, Prefix, Out);
  return Out;
}

Expected<StmtPath> exo::findStmt(const Proc &P, const std::string &Pattern) {
  Expected<StmtPattern> Pat = parseStmtPattern(Pattern);
  if (!Pat)
    return Pat.takeError();
  std::vector<StmtPath> All = findAllStmts(P, *Pat);
  if (static_cast<size_t>(Pat->Occurrence) >= All.size())
    return errorf("pattern '%s' has %zu matches in '%s', wanted #%d",
                  Pattern.c_str(), All.size(), P.name().c_str(),
                  Pat->Occurrence);
  return All[Pat->Occurrence];
}

Expected<ExprMatch> exo::findExpr(const Proc &P, const std::string &Pattern) {
  Expected<ExprPattern> Pat = parseExprPattern(Pattern);
  if (!Pat)
    return Pat.takeError();

  std::vector<ExprMatch> All;
  // Visit every statement in pre-order, collecting matching reads. Loops
  // contribute only their bounds at their own level; their bodies are walked
  // separately so each match is attributed to the directly enclosing
  // statement.
  std::function<void(const std::vector<StmtPtr> &, StmtPath &)> Walk =
      [&](const std::vector<StmtPtr> &Body, StmtPath &Prefix) {
        for (size_t I = 0; I != Body.size(); ++I) {
          Prefix.Steps.push_back(static_cast<int>(I));
          auto Collect = [&](const ExprPtr &E) -> ExprPtr {
            if (Pat->matches(E))
              All.push_back({Prefix, E});
            return nullptr;
          };
          if (const auto *F = dyn_castS<ForStmt>(Body[I])) {
            rewriteExpr(F->lo(), Collect);
            rewriteExpr(F->hi(), Collect);
            Walk(F->body(), Prefix);
          } else {
            forEachExpr(Body[I],
                        [&](const ExprPtr &E) { Collect(E); });
          }
          Prefix.Steps.pop_back();
        }
      };
  StmtPath Prefix;
  Walk(P.body(), Prefix);

  if (static_cast<size_t>(Pat->Occurrence) >= All.size())
    return errorf("expression pattern '%s' has %zu matches in '%s'",
                  Pattern.c_str(), All.size(), P.name().c_str());
  return All[Pat->Occurrence];
}

std::vector<const ForStmt *> exo::enclosingLoops(const Proc &P,
                                                 const StmtPath &Path) {
  std::vector<const ForStmt *> Out;
  StmtPath Prefix;
  for (size_t Level = 0; Level + 1 < Path.Steps.size(); ++Level) {
    Prefix.Steps.push_back(Path.Steps[Level]);
    const auto *F = dyn_castS<ForStmt>(stmtAt(P, Prefix));
    assert(F && "path descends into a non-loop");
    Out.push_back(F);
  }
  return Out;
}
