//===- Bounds.cpp ---------------------------------------------------------===//

#include "exo/check/Bounds.h"

#include "exo/ir/Affine.h"
#include "exo/ir/Printer.h"

#include <map>
#include <optional>

using namespace exo;

namespace {

/// Symbolic bounds of one variable: linear forms over size parameters.
struct VarBounds {
  LinExpr Lower;
  LinExpr Upper; // Inclusive.
};

class BoundsChecker {
public:
  explicit BoundsChecker(const Proc &P) : P(P) {}

  Error run();

private:
  Error checkBody(const std::vector<StmtPtr> &Body);
  Error checkStmt(const StmtPtr &S);
  Error checkAccess(const std::string &Buf, const std::vector<ExprPtr> &Idx,
                    const char *What);
  Error checkWindow(const CallArg &A, const Param &Pa);
  /// Checks every read inside a value expression.
  Error checkReads(const ExprPtr &E);

  /// Bounds an index expression over the current environment; nullopt when
  /// the expression is non-affine or a variable is unbounded.
  std::optional<LinExpr> boundExpr(const ExprPtr &E, bool Upper);

  /// True when \p L is provably >= 0 given every size parameter >= 1.
  bool provablyNonNegative(const LinExpr &L) const {
    int64_t Min = L.Const;
    for (const auto &[V, K] : L.Coeffs) {
      if (!isSizeParam(V))
        return false; // Leftover loop variable — bounding failed upstream.
      if (K < 0)
        return false; // Sizes are unbounded above.
      Min += K;
    }
    return Min >= 0;
  }

  bool isSizeParam(const std::string &Name) const {
    const Param *Pa = P.findParam(Name);
    return Pa && Pa->PKind == Param::Kind::Size;
  }

  const Proc &P;
  std::map<std::string, VarBounds> Env;
};

std::optional<LinExpr> BoundsChecker::boundExpr(const ExprPtr &E,
                                                bool Upper) {
  auto L = linearize(E);
  if (!L)
    return std::nullopt;
  LinExpr Out;
  Out.Const = L->Const;
  for (const auto &[V, K] : L->Coeffs) {
    if (isSizeParam(V)) {
      Out.Coeffs[V] += K;
      continue;
    }
    auto It = Env.find(V);
    if (It == Env.end())
      return std::nullopt;
    // Positive coefficients take the variable's extreme in the requested
    // direction; negative ones take the opposite.
    const LinExpr &Ext = (K > 0) == Upper ? It->second.Upper
                                          : It->second.Lower;
    LinExpr Scaled = Ext;
    Scaled *= K;
    Out += Scaled;
  }
  Out.normalize();
  return Out;
}

Error BoundsChecker::checkAccess(const std::string &Buf,
                                 const std::vector<ExprPtr> &Idx,
                                 const char *What) {
  auto Info = P.findBuffer(Buf);
  if (!Info)
    return errorf("%s: unknown buffer '%s'", What, Buf.c_str());
  if (Idx.size() != Info->Shape.size())
    return errorf("%s: '%s' has rank %zu, accessed with %zu indices", What,
                  Buf.c_str(), Info->Shape.size(), Idx.size());
  for (size_t D = 0; D != Idx.size(); ++D) {
    auto Lo = boundExpr(Idx[D], /*Upper=*/false);
    auto Hi = boundExpr(Idx[D], /*Upper=*/true);
    auto Extent = linearize(Info->Shape[D]);
    if (!Lo || !Hi || !Extent)
      return errorf("%s: cannot bound index %zu of '%s' (%s)", What, D,
                    Buf.c_str(), printExpr(Idx[D]).c_str());
    if (!provablyNonNegative(*Lo))
      return errorf("%s: index %zu of '%s' may be negative (%s)", What, D,
                    Buf.c_str(), printExpr(Idx[D]).c_str());
    // extent - 1 - upper >= 0.
    LinExpr Slack = *Extent;
    Slack.Const -= 1;
    Slack -= *Hi;
    if (!provablyNonNegative(Slack))
      return errorf("%s: index %zu of '%s' may exceed its extent (%s)",
                    What, D, Buf.c_str(), printExpr(Idx[D]).c_str());
  }
  return Error::success();
}

Error BoundsChecker::checkWindow(const CallArg &A, const Param &Pa) {
  auto Info = P.findBuffer(A.Buf);
  if (!Info)
    return errorf("call: unknown buffer '%s'", A.Buf.c_str());
  if (A.Dims.size() != Info->Shape.size())
    return errorf("call: window rank mismatch on '%s'", A.Buf.c_str());
  size_t WinDims = 0;
  for (size_t D = 0; D != A.Dims.size(); ++D) {
    const WindowDim &W = A.Dims[D];
    ExprPtr LoE = W.isPoint() ? W.Point : W.Lo;
    ExprPtr HiE = W.isPoint() ? W.Point : foldExpr(W.Lo + W.Len - 1);
    auto Lo = boundExpr(LoE, false);
    auto Hi = boundExpr(HiE, true);
    auto Extent = linearize(Info->Shape[D]);
    if (!Lo || !Hi || !Extent)
      return errorf("call: cannot bound window dim %zu of '%s'", D,
                    A.Buf.c_str());
    if (!provablyNonNegative(*Lo))
      return errorf("call: window dim %zu of '%s' may be negative", D,
                    A.Buf.c_str());
    LinExpr Slack = *Extent;
    Slack.Const -= 1;
    Slack -= *Hi;
    if (!provablyNonNegative(Slack))
      return errorf("call: window dim %zu of '%s' may exceed its extent", D,
                    A.Buf.c_str());
    if (!W.isPoint())
      ++WinDims;
  }
  if (WinDims != Pa.Shape.size())
    return errorf("call: window into '%s' has %zu ranges, parameter '%s' "
                  "wants %zu",
                  A.Buf.c_str(), WinDims, Pa.Name.c_str(), Pa.Shape.size());
  return Error::success();
}

Error BoundsChecker::checkStmt(const StmtPtr &S) {
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = castS<AssignStmt>(S);
    if (Error Err = checkAccess(A->buffer(), A->indices(), "write"))
      return Err;
    return checkReads(A->rhs());
  }
  case Stmt::Kind::For: {
    const auto *F = castS<ForStmt>(S);
    auto Lo = boundExpr(F->lo(), /*Upper=*/false);
    auto Hi = boundExpr(F->hi(), /*Upper=*/true);
    if (!Lo || !Hi)
      return errorf("cannot bound loop '%s'", F->loopVar().c_str());
    VarBounds VB;
    VB.Lower = *Lo;
    VB.Upper = *Hi;
    VB.Upper.Const -= 1; // seq(lo, hi) runs to hi - 1.
    auto Saved = Env.find(F->loopVar()) != Env.end()
                     ? std::optional<VarBounds>(Env[F->loopVar()])
                     : std::nullopt;
    Env[F->loopVar()] = VB;
    Error Err = checkBody(F->body());
    if (Saved)
      Env[F->loopVar()] = *Saved;
    else
      Env.erase(F->loopVar());
    return Err;
  }
  case Stmt::Kind::Alloc:
    return Error::success();
  case Stmt::Kind::Call: {
    const auto *C = castS<CallStmt>(S);
    const auto &Params = C->callee()->semantics().params();
    const auto &Args = C->args();
    if (Params.size() != Args.size())
      return errorf("call to '%s': arity mismatch",
                    C->callee()->name().c_str());
    for (size_t I = 0; I != Args.size(); ++I) {
      if (Args[I].isWindow()) {
        if (Error Err = checkWindow(Args[I], Params[I]))
          return Err;
        continue;
      }
      if (Params[I].PKind != Param::Kind::IndexVal)
        continue;
      // Scalar index arguments must satisfy the callee's constant-range
      // preconditions (e.g. the lane checks `l >= 0`, `l < 4`).
      for (const ExprPtr &Pre : C->callee()->semantics().preconds()) {
        const auto *B = dyn_cast<BinOpExpr>(Pre);
        if (!B)
          continue;
        const auto *V = dyn_cast<VarExpr>(B->lhs());
        if (!V || V->name() != Params[I].Name)
          continue;
        auto Rhs = tryConstFold(B->rhs());
        if (!Rhs)
          continue;
        if (B->op() == BinOpExpr::Op::Ge) {
          auto Lo = boundExpr(Args[I].Scalar, /*Upper=*/false);
          if (!Lo)
            return errorf("call to '%s': cannot bound lane argument '%s'",
                          C->callee()->name().c_str(),
                          Params[I].Name.c_str());
          LinExpr Slack = *Lo;
          Slack.Const -= *Rhs;
          if (!provablyNonNegative(Slack))
            return errorf("call to '%s': lane '%s' may violate >= %lld",
                          C->callee()->name().c_str(),
                          Params[I].Name.c_str(),
                          static_cast<long long>(*Rhs));
        } else if (B->op() == BinOpExpr::Op::Lt ||
                   B->op() == BinOpExpr::Op::Le) {
          auto Hi = boundExpr(Args[I].Scalar, /*Upper=*/true);
          if (!Hi)
            return errorf("call to '%s': cannot bound lane argument '%s'",
                          C->callee()->name().c_str(),
                          Params[I].Name.c_str());
          int64_t Limit = B->op() == BinOpExpr::Op::Lt ? *Rhs - 1 : *Rhs;
          LinExpr Slack;
          Slack.Const = Limit;
          Slack -= *Hi;
          if (!provablyNonNegative(Slack))
            return errorf("call to '%s': lane '%s' may exceed %lld",
                          C->callee()->name().c_str(),
                          Params[I].Name.c_str(),
                          static_cast<long long>(Limit));
        }
      }
    }
    return Error::success();
  }
  }
  return errorf("unknown statement kind");
}

Error BoundsChecker::checkReads(const ExprPtr &E) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    return Error::success();
  case Expr::Kind::Read: {
    const auto *R = cast<ReadExpr>(E);
    return checkAccess(R->buffer(), R->indices(), "read");
  }
  case Expr::Kind::USub:
    return checkReads(cast<USubExpr>(E)->operand());
  case Expr::Kind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    if (Error Err = checkReads(B->lhs()))
      return Err;
    return checkReads(B->rhs());
  }
  }
  return errorf("unknown expression kind");
}

Error BoundsChecker::checkBody(const std::vector<StmtPtr> &Body) {
  for (const StmtPtr &S : Body)
    if (Error Err = checkStmt(S))
      return Err;
  return Error::success();
}

Error BoundsChecker::run() {
  // Index parameters pick up bounds from preconditions of the forms
  // `v >= c`, `v <= e`, `v < e`.
  for (const Param &Pa : P.params()) {
    if (Pa.PKind != Param::Kind::IndexVal)
      continue;
    std::optional<LinExpr> Lower, Upper;
    for (const ExprPtr &Pre : P.preconds()) {
      const auto *B = dyn_cast<BinOpExpr>(Pre);
      if (!B)
        continue;
      const auto *V = dyn_cast<VarExpr>(B->lhs());
      if (!V || V->name() != Pa.Name)
        continue;
      auto R = linearize(B->rhs());
      if (!R)
        continue;
      switch (B->op()) {
      case BinOpExpr::Op::Ge:
        Lower = *R;
        break;
      case BinOpExpr::Op::Le:
        Upper = *R;
        break;
      case BinOpExpr::Op::Lt:
        Upper = *R;
        Upper->Const -= 1;
        break;
      default:
        break;
      }
    }
    if (Lower && Upper)
      Env[Pa.Name] = {*Lower, *Upper};
  }
  return checkBody(P.body());
}

} // namespace

Error exo::checkBounds(const Proc &P) {
  BoundsChecker C(P);
  return C.run();
}
