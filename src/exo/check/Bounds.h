//===- Bounds.h - Static bounds checking ----------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves, for all parameter values (size parameters are >= 1, index
/// parameters bounded by the procedure's preconditions), that every buffer
/// access and call window in a proc stays inside the declared extents.
///
/// The analysis is symbolic interval arithmetic over affine forms: each
/// loop variable carries [lower, upper] bounds that are themselves linear
/// expressions over size parameters; an access index is bounded by
/// substituting extremes per coefficient sign, and `0 <= lower` /
/// `upper <= extent - 1` are discharged by the "minimum over sizes >= 1"
/// test. Conservative by construction: non-affine indices or unbounded
/// variables are reported as failures.
///
/// The micro-kernel generator runs this on every final kernel, and the
/// instruction libraries' semantic procs are checked in tests — this is the
/// static side of the paper's "definitions ensure the user methods do not
/// change the behavior" story (the dynamic side is sched/Validate.h).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_CHECK_BOUNDS_H
#define EXO_CHECK_BOUNDS_H

#include "exo/ir/Proc.h"
#include "exo/support/Error.h"

namespace exo {

/// Returns success when every access in \p P is provably in bounds; the
/// first violation (or unprovable access) otherwise.
Error checkBounds(const Proc &P);

} // namespace exo

#endif // EXO_CHECK_BOUNDS_H
