//===- Parse.h - Parser for the Exo-like surface syntax -------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form produced by exo/ir/Printer.h back into a Proc,
/// making the surface syntax a real front-end: procs can be written as
/// text, and print -> parse -> print is the identity (round-trip property
/// tests rely on this).
///
/// Grammar (indentation-based, 4 spaces per level):
///
///   proc      ::= "def" name "(" param ("," param)* "):" NL body
///   param     ::= name ":" ("size" | "index" | type shape? "@" mem)
///   body      ::= (assert | alloc | for | assign | call)+
///   assert    ::= "assert" expr NL
///   alloc     ::= name ":" type shape? "@" mem NL
///   for       ::= "for" name "in" "seq(" expr "," expr "):" NL body
///   assign    ::= name index? ("=" | "+=") expr NL
///   call      ::= name "(" arg ("," arg)* ")" NL
///   arg       ::= name "[" wdim ("," wdim)* "]" | expr
///   wdim      ::= expr (":" expr)?
///   expr      ::= additive with * / % precedence, unary -, parentheses,
///                 integer/float literals, variables, reads name[expr,...]
///
/// Instruction calls resolve through a caller-provided resolver (typically
/// wrapping the ISA registry).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_FRONT_PARSE_H
#define EXO_FRONT_PARSE_H

#include "exo/ir/Proc.h"
#include "exo/support/Error.h"

#include <functional>
#include <string>

namespace exo {

/// Maps an instruction name to its definition; return nullptr for unknown
/// names (the parser reports an error).
using InstrResolver = std::function<InstrPtr(const std::string &)>;

/// A resolver over all built-in instruction libraries.
InstrResolver isaInstrResolver();

/// Parses one proc definition. \p Resolver may be null when the text
/// contains no instruction calls.
Expected<Proc> parseProc(const std::string &Text,
                         const InstrResolver &Resolver = nullptr);

/// Parses a standalone expression over the given index variables (every
/// identifier is treated as an index variable; no reads).
Expected<ExprPtr> parseIndexExpr(const std::string &Text);

} // namespace exo

#endif // EXO_FRONT_PARSE_H
