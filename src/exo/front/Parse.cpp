//===- Parse.cpp ----------------------------------------------------------===//

#include "exo/front/Parse.h"

#include "exo/ir/Affine.h"
#include "exo/isa/IsaLib.h"
#include "exo/support/Str.h"

#include <cctype>
#include <map>

using namespace exo;

namespace {

/// Window upper bound to length: len = hi - lo (folded).
ExprPtr windowLen(ExprPtr Hi, const ExprPtr &Lo) {
  return normalizeIndexExpr(std::move(Hi) - Lo);
}

/// Character-level scanner over one line.
class LineLexer {
public:
  explicit LineLexer(std::string_view Text) : Text(Text) {}

  void skipSpace() {
    while (Pos < Text.size() && Text[Pos] == ' ')
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  /// Consumes \p Tok when it is next (after spaces).
  bool eat(std::string_view Tok) {
    skipSpace();
    if (Text.substr(Pos, Tok.size()) != Tok)
      return false;
    // Keyword tokens must not swallow identifier prefixes.
    if (!Tok.empty() && (std::isalnum(static_cast<unsigned char>(Tok.back())) ||
                         Tok.back() == '_')) {
      size_t After = Pos + Tok.size();
      if (After < Text.size() &&
          (std::isalnum(static_cast<unsigned char>(Text[After])) ||
           Text[After] == '_'))
        return false;
    }
    Pos += Tok.size();
    return true;
  }

  /// Peeks whether \p Tok is next.
  bool peek(std::string_view Tok) {
    size_t Saved = Pos;
    bool Ok = eat(Tok);
    Pos = Saved;
    return Ok;
  }

  /// Parses an identifier; empty when none.
  std::string ident() {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Text.size() && (std::isalpha(static_cast<unsigned char>(Text[Pos])) ||
                              Text[Pos] == '_'))
      ++Pos;
    while (Pos < Text.size() && (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
                                 Text[Pos] == '_'))
      ++Pos;
    return std::string(Text.substr(Start, Pos - Start));
  }

  /// Parses a numeric literal: (intValue, isFloat, floatValue).
  bool number(int64_t &IVal, bool &IsFloat, double &FVal) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start)
      return false;
    IsFloat = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      IsFloat = true;
    }
    // Exponent part (the printer may emit it for odd float constants).
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      size_t Exp = Pos + 1;
      if (Exp < Text.size() && (Text[Exp] == '+' || Text[Exp] == '-'))
        ++Exp;
      if (Exp < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Exp]))) {
        Pos = Exp;
        while (Pos < Text.size() &&
               std::isdigit(static_cast<unsigned char>(Text[Pos])))
          ++Pos;
        IsFloat = true;
      }
    }
    std::string S(Text.substr(Start, Pos - Start));
    if (IsFloat)
      FVal = std::atof(S.c_str());
    else
      IVal = std::atoll(S.c_str());
    return true;
  }

  std::string rest() {
    skipSpace();
    return std::string(Text.substr(Pos));
  }

private:
  std::string_view Text;
  size_t Pos = 0;
};

/// Parser state shared across lines.
class ProcParser {
public:
  ProcParser(const std::string &Text, const InstrResolver &Resolver)
      : Resolver(Resolver) {
    for (std::string &L : split(Text, '\n', /*KeepEmpty=*/true))
      Lines.push_back(std::move(L));
  }

  Expected<Proc> parse();

private:
  Error parseHeader(const std::string &Line);
  Error parseParam(LineLexer &Lx);
  /// Parses the statements of one indentation level into \p Out.
  Error parseBody(int Indent, std::vector<StmtPtr> &Out);
  Error parseStmtLine(LineLexer &Lx, int Indent, std::vector<StmtPtr> &Out);

  Expected<ExprPtr> parseExpr(LineLexer &Lx);
  Expected<ExprPtr> parseCmp(LineLexer &Lx);
  Expected<ExprPtr> parseAdditive(LineLexer &Lx);
  Expected<ExprPtr> parseTerm(LineLexer &Lx);
  Expected<ExprPtr> parseUnary(LineLexer &Lx);
  Expected<ExprPtr> parsePrimary(LineLexer &Lx);

  /// Parses `ty[dims] @ Mem` after the colon of a param/alloc.
  Error parseTypeSuffix(LineLexer &Lx, ScalarKind &Ty,
                        std::vector<ExprPtr> &Shape, const MemSpace *&Mem);

  ScalarKind elemTypeOf(const std::string &Buf) const {
    auto It = BufTypes.find(Buf);
    return It == BufTypes.end() ? ScalarKind::F32 : It->second;
  }
  bool isBuffer(const std::string &Name) const {
    return BufTypes.count(Name) != 0;
  }

  /// Indentation (in levels of 4 spaces) of line \p I; -1 for blank lines.
  int indentOf(size_t I) const {
    const std::string &L = Lines[I];
    size_t Spaces = 0;
    while (Spaces < L.size() && L[Spaces] == ' ')
      ++Spaces;
    if (Spaces >= L.size())
      return -1;
    return static_cast<int>(Spaces / 4);
  }

  InstrResolver Resolver;
  std::vector<std::string> Lines;
  size_t Cur = 0;

  std::string Name;
  std::vector<Param> Params;
  std::vector<ExprPtr> Preconds;
  std::map<std::string, ScalarKind> BufTypes;
};

Error ProcParser::parseTypeSuffix(LineLexer &Lx, ScalarKind &Ty,
                                  std::vector<ExprPtr> &Shape,
                                  const MemSpace *&Mem) {
  std::string TyName = Lx.ident();
  if (!parseScalarKind(TyName, Ty))
    return errorf("unknown type '%s'", TyName.c_str());
  Shape.clear();
  if (Lx.eat("[")) {
    do {
      auto Dim = parseExpr(Lx);
      if (!Dim)
        return Dim.takeError();
      Shape.push_back(Dim.take());
    } while (Lx.eat(","));
    if (!Lx.eat("]"))
      return errorf("expected ']' in shape");
  }
  if (!Lx.eat("@"))
    return errorf("expected '@ Mem' after type");
  std::string MemName = Lx.ident();
  Mem = MemSpace::lookup(MemName);
  if (!Mem)
    return errorf("unknown memory space '%s'", MemName.c_str());
  return Error::success();
}

Error ProcParser::parseParam(LineLexer &Lx) {
  std::string PName = Lx.ident();
  if (PName.empty())
    return errorf("expected parameter name");
  if (!Lx.eat(":"))
    return errorf("expected ':' after parameter '%s'", PName.c_str());
  if (Lx.eat("size")) {
    Params.push_back(Param::size(PName));
    return Error::success();
  }
  if (Lx.eat("index")) {
    Params.push_back(Param::indexVal(PName));
    return Error::success();
  }
  ScalarKind Ty;
  std::vector<ExprPtr> Shape;
  const MemSpace *Mem;
  if (Error Err = parseTypeSuffix(Lx, Ty, Shape, Mem))
    return Err;
  // Mutability and lead strides are not part of the surface syntax; tensors
  // parse as mutable and dense (schedulers may adjust via withParams).
  Params.push_back(Param::tensor(PName, Ty, std::move(Shape), Mem,
                                 /*Mutable=*/true));
  BufTypes[PName] = Ty;
  return Error::success();
}

Error ProcParser::parseHeader(const std::string &Line) {
  LineLexer Lx(Line);
  if (!Lx.eat("def"))
    return errorf("expected 'def'");
  Name = Lx.ident();
  if (Name.empty())
    return errorf("expected procedure name");
  if (!Lx.eat("("))
    return errorf("expected '('");
  if (!Lx.peek(")")) {
    do {
      if (Error Err = parseParam(Lx))
        return Err;
    } while (Lx.eat(","));
  }
  if (!Lx.eat(")") || !Lx.eat(":"))
    return errorf("expected '):' closing the signature");
  return Error::success();
}

Expected<ExprPtr> ProcParser::parsePrimary(LineLexer &Lx) {
  if (Lx.eat("(")) {
    auto E = parseCmp(Lx);
    if (!E)
      return E;
    if (!Lx.eat(")"))
      return errorf("expected ')'");
    return E;
  }
  int64_t IVal;
  bool IsFloat;
  double FVal;
  if (Lx.number(IVal, IsFloat, FVal)) {
    if (IsFloat)
      return ConstExpr::makeFloat(FVal, ScalarKind::F64);
    return idx(IVal);
  }
  std::string Id = Lx.ident();
  if (Id.empty())
    return errorf("expected expression near '%s'", Lx.rest().c_str());
  if (Lx.eat("[")) {
    std::vector<ExprPtr> Idx;
    do {
      auto I = parseAdditive(Lx);
      if (!I)
        return I;
      Idx.push_back(I.take());
    } while (Lx.eat(","));
    if (!Lx.eat("]"))
      return errorf("expected ']' in access to '%s'", Id.c_str());
    return read(Id, std::move(Idx), elemTypeOf(Id));
  }
  // A bare buffer name is a rank-0 read; otherwise an index variable.
  if (isBuffer(Id))
    return read(Id, {}, elemTypeOf(Id));
  return var(Id);
}

Expected<ExprPtr> ProcParser::parseUnary(LineLexer &Lx) {
  if (Lx.eat("-")) {
    auto E = parseUnary(Lx);
    if (!E)
      return E;
    return USubExpr::make(E.take());
  }
  return parsePrimary(Lx);
}

/// Reconciles the types of binary operands: int literals coerce to the
/// float side (value expressions mix literals with typed reads).
static Error coerce(ExprPtr &L, ExprPtr &R) {
  if (L->type() == R->type())
    return Error::success();
  auto Coerce1 = [](ExprPtr &A, ScalarKind To) -> bool {
    if (const auto *C = dyn_cast<ConstExpr>(A)) {
      if (isFloatKind(To)) {
        A = ConstExpr::makeFloat(C->floatValue(), To);
        return true;
      }
    }
    return false;
  };
  if (Coerce1(L, R->type()) || Coerce1(R, L->type()))
    return Error::success();
  // f64 literals folded into another float kind.
  if (isFloatKind(L->type()) && isFloatKind(R->type()))
    return Error::success();
  return errorf("cannot mix %s and %s in one expression",
                scalarKindName(L->type()), scalarKindName(R->type()));
}

Expected<ExprPtr> ProcParser::parseTerm(LineLexer &Lx) {
  auto L = parseUnary(Lx);
  if (!L)
    return L;
  ExprPtr Acc = L.take();
  while (true) {
    BinOpExpr::Op Op;
    if (Lx.eat("*"))
      Op = BinOpExpr::Op::Mul;
    else if (Lx.eat("/"))
      Op = BinOpExpr::Op::Div;
    else if (Lx.eat("%"))
      Op = BinOpExpr::Op::Mod;
    else
      return Acc;
    auto R = parseUnary(Lx);
    if (!R)
      return R;
    ExprPtr Rhs = R.take();
    if (Error Err = coerce(Acc, Rhs))
      return Err;
    Acc = BinOpExpr::make(Op, std::move(Acc), std::move(Rhs));
  }
}

Expected<ExprPtr> ProcParser::parseAdditive(LineLexer &Lx) {
  auto L = parseTerm(Lx);
  if (!L)
    return L;
  ExprPtr Acc = L.take();
  while (true) {
    BinOpExpr::Op Op;
    // '+=' must not be consumed as '+'.
    if (!Lx.peek("+=") && Lx.eat("+"))
      Op = BinOpExpr::Op::Add;
    else if (Lx.eat("-"))
      Op = BinOpExpr::Op::Sub;
    else
      return Acc;
    auto R = parseTerm(Lx);
    if (!R)
      return R;
    ExprPtr Rhs = R.take();
    if (Error Err = coerce(Acc, Rhs))
      return Err;
    Acc = BinOpExpr::make(Op, std::move(Acc), std::move(Rhs));
  }
}

Expected<ExprPtr> ProcParser::parseCmp(LineLexer &Lx) {
  auto L = parseAdditive(Lx);
  if (!L)
    return L;
  BinOpExpr::Op Op;
  if (Lx.eat("<="))
    Op = BinOpExpr::Op::Le;
  else if (Lx.eat(">="))
    Op = BinOpExpr::Op::Ge;
  else if (Lx.eat("=="))
    Op = BinOpExpr::Op::Eq;
  else if (Lx.eat("<"))
    Op = BinOpExpr::Op::Lt;
  else if (Lx.eat(">"))
    Op = BinOpExpr::Op::Gt;
  else
    return L;
  auto R = parseAdditive(Lx);
  if (!R)
    return R;
  return BinOpExpr::make(Op, L.take(), R.take());
}

Expected<ExprPtr> ProcParser::parseExpr(LineLexer &Lx) {
  return parseCmp(Lx);
}

Error ProcParser::parseStmtLine(LineLexer &Lx, int Indent,
                                std::vector<StmtPtr> &Out) {
  // for v in seq(lo, hi):
  if (Lx.eat("for")) {
    std::string V = Lx.ident();
    if (V.empty() || !Lx.eat("in") || !Lx.eat("seq") || !Lx.eat("("))
      return errorf("malformed for header");
    auto Lo = parseAdditive(Lx);
    if (!Lo)
      return Lo.takeError();
    if (!Lx.eat(","))
      return errorf("expected ',' in seq()");
    auto Hi = parseAdditive(Lx);
    if (!Hi)
      return Hi.takeError();
    if (!Lx.eat(")") || !Lx.eat(":"))
      return errorf("expected '):' after seq bounds");
    ++Cur;
    std::vector<StmtPtr> Body;
    if (Error Err = parseBody(Indent + 1, Body))
      return Err;
    Out.push_back(ForStmt::make(V, Lo.take(), Hi.take(), std::move(Body)));
    return Error::success();
  }

  std::string Id = Lx.ident();
  if (Id.empty())
    return errorf("cannot parse statement: '%s'", Lx.rest().c_str());

  // Allocation: name: ty[shape] @ Mem
  if (Lx.peek(":")) {
    Lx.eat(":");
    ScalarKind Ty;
    std::vector<ExprPtr> Shape;
    const MemSpace *Mem;
    if (Error Err = parseTypeSuffix(Lx, Ty, Shape, Mem))
      return Err;
    BufTypes[Id] = Ty;
    Out.push_back(AllocStmt::make(Id, Ty, std::move(Shape), Mem));
    ++Cur;
    return Error::success();
  }

  // Instruction call: name(arg, ...)
  if (Lx.peek("(")) {
    if (!Resolver)
      return errorf("instruction call '%s' but no resolver given",
                    Id.c_str());
    InstrPtr Callee = Resolver(Id);
    if (!Callee)
      return errorf("unknown instruction '%s'", Id.c_str());
    Lx.eat("(");
    std::vector<CallArg> Args;
    if (!Lx.peek(")")) {
      do {
        // Window argument when the head is a known buffer followed by '['.
        size_t ArgIndex = Args.size();
        const auto &CalleeParams = Callee->semantics().params();
        bool WantWindow =
            ArgIndex < CalleeParams.size() &&
            CalleeParams[ArgIndex].PKind == Param::Kind::Tensor;
        if (WantWindow) {
          std::string Buf = Lx.ident();
          if (Buf.empty() || !Lx.eat("["))
            return errorf("expected window argument for '%s'", Id.c_str());
          std::vector<WindowDim> Dims;
          do {
            auto Lo = parseAdditive(Lx);
            if (!Lo)
              return Lo.takeError();
            if (Lx.eat(":")) {
              auto Hi = parseAdditive(Lx);
              if (!Hi)
                return Hi.takeError();
              ExprPtr LoE = Lo.take();
              Dims.push_back(
                  WindowDim::interval(LoE, windowLen(Hi.take(), LoE)));
            } else {
              Dims.push_back(WindowDim::point(Lo.take()));
            }
          } while (Lx.eat(","));
          if (!Lx.eat("]"))
            return errorf("expected ']' in window");
          Args.push_back(CallArg::window(Buf, std::move(Dims)));
        } else {
          auto E = parseAdditive(Lx);
          if (!E)
            return E.takeError();
          Args.push_back(CallArg::scalar(E.take()));
        }
      } while (Lx.eat(","));
    }
    if (!Lx.eat(")"))
      return errorf("expected ')' closing call to '%s'", Id.c_str());
    Out.push_back(CallStmt::make(std::move(Callee), std::move(Args)));
    ++Cur;
    return Error::success();
  }

  // Assignment / reduction.
  std::vector<ExprPtr> Idx;
  if (Lx.eat("[")) {
    do {
      auto I = parseAdditive(Lx);
      if (!I)
        return I.takeError();
      Idx.push_back(I.take());
    } while (Lx.eat(","));
    if (!Lx.eat("]"))
      return errorf("expected ']' on assignment lhs");
  }
  bool Reduce;
  if (Lx.eat("+="))
    Reduce = true;
  else if (Lx.eat("="))
    Reduce = false;
  else
    return errorf("expected '=' or '+=' after '%s'", Id.c_str());
  auto Rhs = parseAdditive(Lx);
  if (!Rhs)
    return Rhs.takeError();
  ExprPtr R = Rhs.take();
  // Float literals adopt the destination's element type.
  if (const auto *C = dyn_cast<ConstExpr>(R)) {
    ScalarKind DstTy = elemTypeOf(Id);
    if (isFloatKind(DstTy))
      R = ConstExpr::makeFloat(C->floatValue(), DstTy);
  }
  Out.push_back(AssignStmt::make(Id, std::move(Idx), std::move(R), Reduce));
  ++Cur;
  return Error::success();
}

Error ProcParser::parseBody(int Indent, std::vector<StmtPtr> &Out) {
  while (Cur < Lines.size()) {
    int LineIndent = indentOf(Cur);
    if (LineIndent < 0) {
      ++Cur; // Blank line.
      continue;
    }
    if (LineIndent < Indent)
      return Error::success(); // Dedent closes this body.
    if (LineIndent > Indent)
      return errorf("unexpected indentation at line %zu", Cur + 1);
    LineLexer Lx(std::string_view(Lines[Cur]).substr(
        static_cast<size_t>(Indent) * 4));
    if (Error Err = parseStmtLine(Lx, Indent, Out))
      return errorf("line %zu: %s", Cur + 1, Err.message().c_str());
  }
  return Error::success();
}

Expected<Proc> ProcParser::parse() {
  // Find the header line.
  while (Cur < Lines.size() && trim(Lines[Cur]).empty())
    ++Cur;
  if (Cur >= Lines.size())
    return errorf("empty input");
  if (Error Err = parseHeader(std::string(trim(Lines[Cur]))))
    return errorf("line %zu: %s", Cur + 1, Err.message().c_str());
  ++Cur;

  // Leading asserts.
  std::vector<StmtPtr> Body;
  while (Cur < Lines.size()) {
    int LineIndent = indentOf(Cur);
    if (LineIndent < 0) {
      ++Cur;
      continue;
    }
    if (LineIndent != 1)
      break;
    LineLexer Lx(std::string_view(Lines[Cur]).substr(4));
    if (!Lx.eat("assert"))
      break;
    auto Pre = parseExpr(Lx);
    if (!Pre)
      return errorf("line %zu: %s", Cur + 1, Pre.message().c_str());
    Preconds.push_back(Pre.take());
    ++Cur;
  }

  if (Error Err = parseBody(1, Body))
    return Err;
  return Proc(Name, std::move(Params), std::move(Preconds), std::move(Body));
}

} // namespace

InstrResolver exo::isaInstrResolver() {
  // Touch every library now so their register-file memory spaces are
  // interned before the parser looks them up in alloc statements.
  (void)allIsas();
  return [](const std::string &Name) -> InstrPtr {
    for (const IsaLib *Isa : allIsas())
      for (ScalarKind Ty :
           {ScalarKind::F16, ScalarKind::F32, ScalarKind::F64}) {
        if (!Isa->supports(Ty))
          continue;
        for (InstrPtr I : {Isa->load(Ty), Isa->store(Ty), Isa->fmaLane(Ty),
                           Isa->fmaBroadcast(Ty), Isa->broadcast(Ty)})
          if (I && I->name() == Name)
            return I;
      }
    return nullptr;
  };
}

Expected<Proc> exo::parseProc(const std::string &Text,
                              const InstrResolver &Resolver) {
  ProcParser P(Text, Resolver);
  return P.parse();
}

Expected<ExprPtr> exo::parseIndexExpr(const std::string &Text) {
  auto P = parseProc("def dummy():\n    q = " + Text + "\n", nullptr);
  if (!P)
    return errorf("cannot parse expression '%s': %s", Text.c_str(),
                  P.message().c_str());
  // Extract the rhs of the single assignment.
  const auto *A = dyn_castS<AssignStmt>(P->body().at(0));
  return A->rhs();
}
