//===- ScheduleScript.cpp -------------------------------------------------===//

#include "exo/front/ScheduleScript.h"

#include "exo/support/Str.h"

#include <cctype>

using namespace exo;

namespace {

/// One parsed directive argument.
struct Arg {
  enum class Kind { Str, Int, Bool, List, Gap } K = Kind::Str;
  std::string S;
  int64_t I = 0;
  bool B = false;
  std::vector<std::string> List;
  /// Gap form: after("pat") / before("pat").
  bool GapAfter = false;
  std::string GapPattern;
};

/// Minimal recursive-descent scanner for one directive line.
class ArgLexer {
public:
  explicit ArgLexer(std::string_view Text) : Text(Text) {}

  void skip() {
    while (Pos < Text.size() && Text[Pos] == ' ')
      ++Pos;
  }
  bool eat(char C) {
    skip();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool peek(char C) {
    skip();
    return Pos < Text.size() && Text[Pos] == C;
  }
  bool atEnd() {
    skip();
    return Pos >= Text.size();
  }

  std::string ident() {
    skip();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    return std::string(Text.substr(Start, Pos - Start));
  }

  Expected<std::string> quoted() {
    skip();
    if (Pos >= Text.size() || Text[Pos] != '"')
      return errorf("expected a quoted string");
    ++Pos;
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != '"')
      ++Pos;
    if (Pos >= Text.size())
      return errorf("unterminated string");
    std::string Out(Text.substr(Start, Pos - Start));
    ++Pos;
    return Out;
  }

  Expected<int64_t> integer() {
    skip();
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start)
      return errorf("expected an integer");
    return std::atoll(std::string(Text.substr(Start, Pos - Start)).c_str());
  }

  std::string rest() {
    skip();
    return std::string(Text.substr(Pos));
  }

private:
  std::string_view Text;
  size_t Pos = 0;
};

/// A parsed directive: name, positional args, keyword args.
struct Directive {
  std::string Name;
  std::vector<Arg> Pos;
  std::map<std::string, Arg> Kw;
};

Expected<Arg> parseArg(ArgLexer &Lx) {
  Arg A;
  if (Lx.peek('"')) {
    auto S = Lx.quoted();
    if (!S)
      return S.takeError();
    A.K = Arg::Kind::Str;
    A.S = S.take();
    return A;
  }
  if (Lx.peek('[')) {
    Lx.eat('[');
    A.K = Arg::Kind::List;
    if (!Lx.peek(']')) {
      do {
        auto S = Lx.quoted();
        if (!S)
          return S.takeError();
        A.List.push_back(S.take());
      } while (Lx.eat(','));
    }
    if (!Lx.eat(']'))
      return errorf("expected ']' closing a list");
    return A;
  }
  if (Lx.peek('-') || Lx.peek('0') || Lx.peek('1') || Lx.peek('2') ||
      Lx.peek('3') || Lx.peek('4') || Lx.peek('5') || Lx.peek('6') ||
      Lx.peek('7') || Lx.peek('8') || Lx.peek('9')) {
    auto I = Lx.integer();
    if (!I)
      return I.takeError();
    A.K = Arg::Kind::Int;
    A.I = *I;
    return A;
  }
  std::string Id = Lx.ident();
  if (Id.empty())
    return errorf("cannot parse argument near '%s'", Lx.rest().c_str());
  if (Id == "True" || Id == "False") {
    A.K = Arg::Kind::Bool;
    A.B = Id == "True";
    return A;
  }
  if (Id == "after" || Id == "before") {
    if (!Lx.eat('('))
      return errorf("expected '(' after %s", Id.c_str());
    auto S = Lx.quoted();
    if (!S)
      return S.takeError();
    if (!Lx.eat(')'))
      return errorf("expected ')' closing %s(...)", Id.c_str());
    A.K = Arg::Kind::Gap;
    A.GapAfter = Id == "after";
    A.GapPattern = S.take();
    return A;
  }
  return errorf("unknown token '%s'", Id.c_str());
}

Expected<Directive> parseDirective(const std::string &Line) {
  ArgLexer Lx(Line);
  // p = name(p, ...)
  if (Lx.ident() != "p")
    return errorf("directive must have the form `p = name(p, ...)`");
  if (!Lx.eat('='))
    return errorf("expected '='");
  Directive D;
  D.Name = Lx.ident();
  if (D.Name.empty() || !Lx.eat('('))
    return errorf("expected a directive call");
  if (Lx.ident() != "p")
    return errorf("first argument must be `p`");
  while (Lx.eat(',')) {
    // Keyword argument: ident '=' value (distinguish from bare idents by
    // lookahead).
    ArgLexer Probe = Lx;
    std::string Key = Probe.ident();
    if (!Key.empty() && Key != "True" && Key != "False" && Key != "after" &&
        Key != "before" && Probe.eat('=')) {
      Lx = Probe;
      auto V = parseArg(Lx);
      if (!V)
        return V.takeError();
      D.Kw[Key] = V.take();
      continue;
    }
    auto V = parseArg(Lx);
    if (!V)
      return V.takeError();
    D.Pos.push_back(V.take());
  }
  if (!Lx.eat(')'))
    return errorf("expected ')' closing the directive");
  if (!Lx.atEnd())
    return errorf("trailing text '%s'", Lx.rest().c_str());
  return D;
}

/// Argument accessors with diagnostics.
Expected<std::string> strArg(const Directive &D, size_t I) {
  if (I >= D.Pos.size() || D.Pos[I].K != Arg::Kind::Str)
    return errorf("%s: argument %zu must be a string", D.Name.c_str(),
                  I + 1);
  return D.Pos[I].S;
}
Expected<int64_t> intArg(const Directive &D, size_t I) {
  if (I >= D.Pos.size() || D.Pos[I].K != Arg::Kind::Int)
    return errorf("%s: argument %zu must be an integer", D.Name.c_str(),
                  I + 1);
  return D.Pos[I].I;
}
Expected<int64_t> intKwOrPos(const Directive &D, const char *Key,
                             size_t PosIdx) {
  auto It = D.Kw.find(Key);
  if (It != D.Kw.end()) {
    if (It->second.K != Arg::Kind::Int)
      return errorf("%s: %s= must be an integer", D.Name.c_str(), Key);
    return It->second.I;
  }
  return intArg(D, PosIdx);
}

Expected<Proc> applyDirective(const Proc &P, const Directive &D,
                              const InstrResolver &Resolver,
                              const SchedOptions &Opts) {
  const std::string &N = D.Name;
  if (N == "rename") {
    auto Name = strArg(D, 0);
    if (!Name)
      return Name.takeError();
    return renameProc(P, Name.take());
  }
  if (N == "simplify")
    return simplifyProc(P);
  if (N == "partial_eval") {
    std::map<std::string, int64_t> Sizes;
    for (const auto &[Key, V] : D.Kw) {
      if (V.K != Arg::Kind::Int)
        return errorf("partial_eval: %s= must be an integer", Key.c_str());
      Sizes[Key] = V.I;
    }
    if (Sizes.empty())
      return errorf("partial_eval: no sizes given");
    return partialEval(P, Sizes);
  }
  if (N == "divide_loop") {
    auto Pat = strArg(D, 0);
    auto Factor = intArg(D, 1);
    if (!Pat || !Factor)
      return Pat ? Factor.takeError() : Pat.takeError();
    if (D.Pos.size() < 3 || D.Pos[2].K != Arg::Kind::List ||
        D.Pos[2].List.size() != 2)
      return errorf("divide_loop: third argument must be [\"outer\", "
                    "\"inner\"]");
    bool Perfect = false;
    if (auto It = D.Kw.find("perfect"); It != D.Kw.end())
      Perfect = It->second.K == Arg::Kind::Bool && It->second.B;
    return divideLoop(P, *Pat, *Factor, D.Pos[2].List[0], D.Pos[2].List[1],
                      Perfect, Opts);
  }
  if (N == "reorder_loops") {
    auto Pair = strArg(D, 0);
    if (!Pair)
      return Pair.takeError();
    return reorderLoops(P, *Pair, Opts);
  }
  if (N == "unroll_loop") {
    auto Pat = strArg(D, 0);
    if (!Pat)
      return Pat.takeError();
    return unrollLoop(P, *Pat, Opts);
  }
  if (N == "bind_expr") {
    auto Pat = strArg(D, 0);
    auto Name = strArg(D, 1);
    if (!Pat || !Name)
      return Pat ? Name.takeError() : Pat.takeError();
    return bindExpr(P, *Pat, *Name, Opts);
  }
  if (N == "stage_mem") {
    auto Pat = strArg(D, 0);
    auto Buf = strArg(D, 1);
    auto Name = strArg(D, 2);
    if (!Pat || !Buf || !Name)
      return errorf("stage_mem: expects (p, \"stmt\", \"buf\", \"name\")");
    return stageMem(P, *Pat, *Buf, *Name, Opts);
  }
  if (N == "expand_dim") {
    auto Name = strArg(D, 0);
    if (!Name)
      return Name.takeError();
    // Size: integer or expression string.
    ExprPtr Size;
    if (D.Pos.size() > 1 && D.Pos[1].K == Arg::Kind::Int) {
      Size = idx(D.Pos[1].I);
    } else {
      auto S = strArg(D, 1);
      if (!S)
        return S.takeError();
      auto E = parseIndexExpr(*S);
      if (!E)
        return E.takeError();
      Size = E.take();
    }
    auto IdxS = strArg(D, 2);
    if (!IdxS)
      return IdxS.takeError();
    auto IdxE = parseIndexExpr(*IdxS);
    if (!IdxE)
      return IdxE.takeError();
    return expandDim(P, *Name, Size, IdxE.take(), Opts);
  }
  if (N == "lift_alloc") {
    auto Name = strArg(D, 0);
    auto Lifts = intKwOrPos(D, "n_lifts", 1);
    if (!Name || !Lifts)
      return Name ? Lifts.takeError() : Name.takeError();
    return liftAlloc(P, *Name, static_cast<int>(*Lifts), Opts);
  }
  if (N == "autofission") {
    if (D.Pos.empty() || D.Pos[0].K != Arg::Kind::Gap)
      return errorf("autofission: expects after(\"pat\") or "
                    "before(\"pat\")");
    auto Lifts = intKwOrPos(D, "n_lifts", 1);
    if (!Lifts)
      return Lifts.takeError();
    return autofission(P, D.Pos[0].GapPattern, D.Pos[0].GapAfter,
                       static_cast<int>(*Lifts), Opts);
  }
  if (N == "replace") {
    auto Pat = strArg(D, 0);
    auto InstrName = strArg(D, 1);
    if (!Pat || !InstrName)
      return Pat ? InstrName.takeError() : Pat.takeError();
    InstrPtr I = Resolver ? Resolver(*InstrName) : nullptr;
    if (!I)
      return errorf("replace: unknown instruction '%s'",
                    InstrName->c_str());
    return replaceWithInstr(P, *Pat, I, Opts);
  }
  if (N == "set_memory") {
    auto Name = strArg(D, 0);
    auto Space = strArg(D, 1);
    if (!Name || !Space)
      return Name ? Space.takeError() : Name.takeError();
    const MemSpace *Mem = MemSpace::lookup(*Space);
    if (!Mem)
      return errorf("set_memory: unknown memory space '%s'",
                    Space->c_str());
    return setMemory(P, *Name, Mem);
  }
  if (N == "set_precision") {
    auto Name = strArg(D, 0);
    auto Ty = strArg(D, 1);
    if (!Name || !Ty)
      return Name ? Ty.takeError() : Name.takeError();
    ScalarKind K;
    if (!parseScalarKind(*Ty, K))
      return errorf("set_precision: unknown type '%s'", Ty->c_str());
    return setPrecision(P, *Name, K);
  }
  if (N == "cut_loop") {
    auto Pat = strArg(D, 0);
    auto Point = intArg(D, 1);
    if (!Pat || !Point)
      return Pat ? Point.takeError() : Pat.takeError();
    return cutLoop(P, *Pat, *Point, Opts);
  }
  if (N == "fuse_loops") {
    auto Pat = strArg(D, 0);
    if (!Pat)
      return Pat.takeError();
    return fuseLoops(P, *Pat, Opts);
  }
  if (N == "remove_loop") {
    auto Pat = strArg(D, 0);
    if (!Pat)
      return Pat.takeError();
    return removeLoop(P, *Pat, Opts);
  }
  return errorf("unknown directive '%s'", N.c_str());
}

} // namespace

Expected<ScheduleScriptResult>
exo::runScheduleScript(const Proc &Init, const std::string &Script,
                       const InstrResolver &Resolver,
                       const SchedOptions &Opts) {
  ScheduleScriptResult R;
  R.Final = Init;
  size_t LineNo = 0;
  for (const std::string &Raw : split(Script, '\n', /*KeepEmpty=*/true)) {
    ++LineNo;
    std::string Line(trim(Raw));
    if (Line.empty() || Line[0] == '#')
      continue;
    auto D = parseDirective(Line);
    if (!D)
      return errorf("schedule line %zu: %s", LineNo, D.message().c_str());
    auto Next = applyDirective(R.Final, *D, Resolver, Opts);
    if (!Next)
      return errorf("schedule line %zu (%s): %s", LineNo, D->Name.c_str(),
                    Next.message().c_str());
    R.Final = Next.take();
    R.Steps.emplace_back(Line, R.Final);
  }
  return R;
}
