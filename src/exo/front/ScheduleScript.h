//===- ScheduleScript.h - Textual schedule directives ---------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs schedules written the way the paper's figures write them — one
/// directive per line, transforming the proc bound to `p`:
///
/// \code
///   p = partial_eval(p, MR=8, NR=12)
///   p = divide_loop(p, "for i in _: _", 4, ["it", "itt"], perfect=True)
///   p = stage_mem(p, "C[_] += _", "C", "C_reg")
///   p = expand_dim(p, "C_reg", 4, "itt")
///   p = lift_alloc(p, "C_reg", n_lifts=5)
///   p = autofission(p, after("C_reg[_] = _"), n_lifts=5)
///   p = replace(p, "for itt in _: _ #0", "neon_vld_4xf32")
///   p = set_memory(p, "C_reg", "Neon")
///   # comments and blank lines are ignored
/// \endcode
///
/// Supported directives: rename, partial_eval, simplify, divide_loop,
/// reorder_loops, unroll_loop, bind_expr, stage_mem, expand_dim,
/// lift_alloc, autofission, replace, set_memory, set_precision, cut_loop,
/// fuse_loops, remove_loop.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_FRONT_SCHEDULESCRIPT_H
#define EXO_FRONT_SCHEDULESCRIPT_H

#include "exo/front/Parse.h"
#include "exo/sched/Schedule.h"

#include <vector>

namespace exo {

/// Outcome of a script run; every directive's result is retained.
struct ScheduleScriptResult {
  Proc Final;
  std::vector<std::pair<std::string, Proc>> Steps;
};

/// Applies \p Script to \p Init. Instruction names in `replace` resolve
/// through \p Resolver; memory spaces in `set_memory` through the interned
/// registry. Fails with a line-numbered diagnostic on the first error.
Expected<ScheduleScriptResult>
runScheduleScript(const Proc &Init, const std::string &Script,
                  const InstrResolver &Resolver = isaInstrResolver(),
                  const SchedOptions &Opts = defaultSchedOptions());

} // namespace exo

#endif // EXO_FRONT_SCHEDULESCRIPT_H
