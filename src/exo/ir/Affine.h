//===- Affine.h - Linear index-expression analysis ------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Index expressions in GEMM schedules are linear combinations of loop
/// variables and size parameters, e.g. `jtt + 4 * jt`. LinExpr is the
/// canonical form `sum(coeff_i * var_i) + const`; it drives `replace`
/// unification, fission safety checks, constant folding, and printing in a
/// deterministic normal form.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_AFFINE_H
#define EXO_IR_AFFINE_H

#include "exo/ir/Expr.h"

#include <map>
#include <optional>

namespace exo {

/// `sum(Coeffs[v] * v) + Const`. Zero coefficients are never stored.
struct LinExpr {
  std::map<std::string, int64_t> Coeffs;
  int64_t Const = 0;

  bool isConstant() const { return Coeffs.empty(); }
  int64_t coeff(const std::string &V) const {
    auto It = Coeffs.find(V);
    return It == Coeffs.end() ? 0 : It->second;
  }

  LinExpr &operator+=(const LinExpr &O);
  LinExpr &operator-=(const LinExpr &O);
  LinExpr &operator*=(int64_t K);

  bool operator==(const LinExpr &O) const {
    return Const == O.Const && Coeffs == O.Coeffs;
  }

  /// Drops variables whose coefficient became zero.
  void normalize();
};

/// Linearizes \p E. Fails (nullopt) on non-linear shapes: products of two
/// non-constant terms, divisions and modulo, and reads.
std::optional<LinExpr> linearize(const ExprPtr &E);

/// Rebuilds a normalized index expression from \p L, with variables in
/// map order (i.e. lexicographic), e.g. `4 * jt + jtt + 1`.
ExprPtr fromLinear(const LinExpr &L);

/// Linearize-then-rebuild. Returns \p E unchanged when non-linear.
ExprPtr normalizeIndexExpr(const ExprPtr &E);

/// Evaluates \p E when it is a constant (after folding). Handles linear
/// shapes plus constant division/modulo.
std::optional<int64_t> tryConstFold(const ExprPtr &E);

/// Folds constant subtrees of any expression (also inside reads and value
/// arithmetic); used by `simplify`.
ExprPtr foldExpr(const ExprPtr &E);

} // namespace exo

#endif // EXO_IR_AFFINE_H
