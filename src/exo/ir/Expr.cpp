//===- Expr.cpp -----------------------------------------------------------===//

#include "exo/ir/Expr.h"

#include "exo/support/Error.h"

using namespace exo;

Expr::~Expr() = default;

ExprPtr ConstExpr::makeIndex(int64_t V) {
  return ExprPtr(new ConstExpr(V, static_cast<double>(V), ScalarKind::Index));
}

ExprPtr ConstExpr::makeFloat(double V, ScalarKind Ty) {
  assert(isFloatKind(Ty) && "float constant needs a float kind");
  return ExprPtr(new ConstExpr(0, V, Ty));
}

ExprPtr VarExpr::make(std::string Name) {
  assert(!Name.empty() && "variable needs a name");
  return ExprPtr(new VarExpr(std::move(Name)));
}

ExprPtr ReadExpr::make(std::string Buf, std::vector<ExprPtr> Idx,
                       ScalarKind Ty) {
  assert(!Buf.empty() && "read needs a buffer name");
  for ([[maybe_unused]] const ExprPtr &E : Idx)
    assert(E->type() == ScalarKind::Index && "indices must be index-typed");
  return ExprPtr(new ReadExpr(std::move(Buf), std::move(Idx), Ty));
}

const char *BinOpExpr::opName(Op O) {
  switch (O) {
  case Op::Add:
    return "+";
  case Op::Sub:
    return "-";
  case Op::Mul:
    return "*";
  case Op::Div:
    return "/";
  case Op::Mod:
    return "%";
  case Op::Lt:
    return "<";
  case Op::Le:
    return "<=";
  case Op::Gt:
    return ">";
  case Op::Ge:
    return ">=";
  case Op::Eq:
    return "==";
  }
  fatal("unknown BinOp");
}

ExprPtr BinOpExpr::make(Op O, ExprPtr L, ExprPtr R) {
  assert(L && R && "binop needs two operands");
  bool IsCmp = O == Op::Lt || O == Op::Le || O == Op::Gt || O == Op::Ge ||
               O == Op::Eq;
  ScalarKind Ty = IsCmp ? ScalarKind::Bool : L->type();
  // Value * index scaling is not part of the language; operand types match.
  assert((IsCmp || L->type() == R->type()) && "binop operand type mismatch");
  return ExprPtr(new BinOpExpr(O, std::move(L), std::move(R), Ty));
}

ExprPtr USubExpr::make(ExprPtr Operand) {
  assert(Operand && "usub needs an operand");
  return ExprPtr(new USubExpr(std::move(Operand)));
}

ExprPtr exo::idx(int64_t V) { return ConstExpr::makeIndex(V); }
ExprPtr exo::var(const std::string &Name) { return VarExpr::make(Name); }
ExprPtr exo::read(const std::string &Buf, std::vector<ExprPtr> Idx,
                  ScalarKind Ty) {
  return ReadExpr::make(Buf, std::move(Idx), Ty);
}

ExprPtr exo::operator+(ExprPtr L, ExprPtr R) {
  return BinOpExpr::make(BinOpExpr::Op::Add, std::move(L), std::move(R));
}
ExprPtr exo::operator-(ExprPtr L, ExprPtr R) {
  return BinOpExpr::make(BinOpExpr::Op::Sub, std::move(L), std::move(R));
}
ExprPtr exo::operator*(ExprPtr L, ExprPtr R) {
  return BinOpExpr::make(BinOpExpr::Op::Mul, std::move(L), std::move(R));
}
ExprPtr exo::operator/(ExprPtr L, ExprPtr R) {
  return BinOpExpr::make(BinOpExpr::Op::Div, std::move(L), std::move(R));
}
ExprPtr exo::operator%(ExprPtr L, ExprPtr R) {
  return BinOpExpr::make(BinOpExpr::Op::Mod, std::move(L), std::move(R));
}
ExprPtr exo::operator+(ExprPtr L, int64_t R) { return std::move(L) + idx(R); }
ExprPtr exo::operator-(ExprPtr L, int64_t R) { return std::move(L) - idx(R); }
ExprPtr exo::operator*(ExprPtr L, int64_t R) { return std::move(L) * idx(R); }
ExprPtr exo::operator*(int64_t L, ExprPtr R) { return idx(L) * std::move(R); }
ExprPtr exo::operator/(ExprPtr L, int64_t R) { return std::move(L) / idx(R); }
ExprPtr exo::operator%(ExprPtr L, int64_t R) { return std::move(L) % idx(R); }
