//===- Stmt.h - Object-language statements --------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable statement trees: sequential `for` loops, scalar assignments and
/// reductions, local allocations, and calls to hardware instructions.
///
/// Instruction calls take *window* arguments: a buffer name plus, per
/// dimension, either a point index or an interval. Windows are how a call
/// like `neon_vld_4xf32(C_reg[j, it, 0:4], C[j, 4*it:4*it+4])` names the
/// 4-element slices the instruction operates on.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_STMT_H
#define EXO_IR_STMT_H

#include "exo/ir/Expr.h"

#include <memory>
#include <string>
#include <vector>

namespace exo {

class Stmt;
class Instr;
using StmtPtr = std::shared_ptr<const Stmt>;
using InstrPtr = std::shared_ptr<const Instr>;

/// One dimension of a window: either a single point or a half-open interval
/// [Lo, Lo+Len).
struct WindowDim {
  ExprPtr Point; ///< Set for point dims.
  ExprPtr Lo;    ///< Set for interval dims.
  ExprPtr Len;   ///< Set for interval dims (usually a constant).

  bool isPoint() const { return Point != nullptr; }

  static WindowDim point(ExprPtr E) {
    WindowDim D;
    D.Point = std::move(E);
    return D;
  }
  static WindowDim interval(ExprPtr Lo, ExprPtr Len) {
    WindowDim D;
    D.Lo = std::move(Lo);
    D.Len = std::move(Len);
    return D;
  }
};

/// An argument to an instruction call: either a window into a buffer or a
/// scalar expression (e.g. the lane index of vfmaq_laneq).
struct CallArg {
  /// Window form: non-empty Buf.
  std::string Buf;
  std::vector<WindowDim> Dims;
  /// Scalar form: Buf empty, Scalar set.
  ExprPtr Scalar;

  bool isWindow() const { return !Buf.empty(); }

  static CallArg window(std::string Buf, std::vector<WindowDim> Dims) {
    CallArg A;
    A.Buf = std::move(Buf);
    A.Dims = std::move(Dims);
    return A;
  }
  static CallArg scalar(ExprPtr E) {
    CallArg A;
    A.Scalar = std::move(E);
    return A;
  }
};

/// Base of all statements.
class Stmt {
public:
  enum class Kind : uint8_t {
    Assign,
    For,
    Alloc,
    Call,
  };

  virtual ~Stmt();

  Kind kind() const { return K; }

protected:
  explicit Stmt(Kind K) : K(K) {}

private:
  Kind K;
};

/// `buf[i...] = rhs` or `buf[i...] += rhs` (when IsReduce).
class AssignStmt final : public Stmt {
public:
  static StmtPtr make(std::string Buf, std::vector<ExprPtr> Idx, ExprPtr Rhs,
                      bool IsReduce);

  const std::string &buffer() const { return Buf; }
  const std::vector<ExprPtr> &indices() const { return Idx; }
  const ExprPtr &rhs() const { return Rhs; }
  bool isReduce() const { return Reduce; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  AssignStmt(std::string Buf, std::vector<ExprPtr> Idx, ExprPtr Rhs,
             bool Reduce)
      : Stmt(Kind::Assign), Buf(std::move(Buf)), Idx(std::move(Idx)),
        Rhs(std::move(Rhs)), Reduce(Reduce) {}

  std::string Buf;
  std::vector<ExprPtr> Idx;
  ExprPtr Rhs;
  bool Reduce;
};

/// `for v in seq(lo, hi): body` — a sequential loop over [lo, hi).
class ForStmt final : public Stmt {
public:
  static StmtPtr make(std::string Var, ExprPtr Lo, ExprPtr Hi,
                      std::vector<StmtPtr> Body);

  const std::string &loopVar() const { return Var; }
  const ExprPtr &lo() const { return Lo; }
  const ExprPtr &hi() const { return Hi; }
  const std::vector<StmtPtr> &body() const { return Body; }

  /// Returns a copy with a different body.
  StmtPtr withBody(std::vector<StmtPtr> NewBody) const;

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  ForStmt(std::string Var, ExprPtr Lo, ExprPtr Hi, std::vector<StmtPtr> Body)
      : Stmt(Kind::For), Var(std::move(Var)), Lo(std::move(Lo)),
        Hi(std::move(Hi)), Body(std::move(Body)) {}

  std::string Var;
  ExprPtr Lo, Hi;
  std::vector<StmtPtr> Body;
};

/// `name : ty[shape...] @ mem` — a local buffer. Rank-0 allocations (empty
/// shape) are scalars.
class AllocStmt final : public Stmt {
public:
  static StmtPtr make(std::string Name, ScalarKind Ty,
                      std::vector<ExprPtr> Shape, const MemSpace *Mem);

  const std::string &name() const { return Name; }
  ScalarKind elemType() const { return Ty; }
  const std::vector<ExprPtr> &shape() const { return Shape; }
  const MemSpace *mem() const { return Mem; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Alloc; }

private:
  AllocStmt(std::string Name, ScalarKind Ty, std::vector<ExprPtr> Shape,
            const MemSpace *Mem)
      : Stmt(Kind::Alloc), Name(std::move(Name)), Ty(Ty),
        Shape(std::move(Shape)), Mem(Mem) {}

  std::string Name;
  ScalarKind Ty;
  std::vector<ExprPtr> Shape;
  const MemSpace *Mem;
};

/// A call to a hardware instruction (see exo::Instr).
class CallStmt final : public Stmt {
public:
  static StmtPtr make(InstrPtr Callee, std::vector<CallArg> Args);

  const InstrPtr &callee() const { return Callee; }
  const std::vector<CallArg> &args() const { return Args; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Call; }

private:
  CallStmt(InstrPtr Callee, std::vector<CallArg> Args)
      : Stmt(Kind::Call), Callee(std::move(Callee)), Args(std::move(Args)) {}

  InstrPtr Callee;
  std::vector<CallArg> Args;
};

/// Stmt-side LLVM-style cast helpers.
template <typename T> bool isaS(const Stmt *S) { return T::classof(S); }
template <typename T> bool isaS(const StmtPtr &S) {
  return T::classof(S.get());
}
template <typename T> const T *castS(const Stmt *S) {
  assert(T::classof(S) && "bad Stmt cast");
  return static_cast<const T *>(S);
}
template <typename T> const T *castS(const StmtPtr &S) {
  return castS<T>(S.get());
}
template <typename T> const T *dyn_castS(const Stmt *S) {
  return T::classof(S) ? static_cast<const T *>(S) : nullptr;
}
template <typename T> const T *dyn_castS(const StmtPtr &S) {
  return dyn_castS<T>(S.get());
}

} // namespace exo

#endif // EXO_IR_STMT_H
