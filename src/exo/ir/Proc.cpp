//===- Proc.cpp -----------------------------------------------------------===//

#include "exo/ir/Proc.h"

using namespace exo;

Proc::Proc(std::string Name, std::vector<Param> Params,
           std::vector<ExprPtr> Preconds, std::vector<StmtPtr> Body)
    : Name(std::move(Name)), Params(std::move(Params)),
      Preconds(std::move(Preconds)), Body(std::move(Body)) {}

const Param *Proc::findParam(const std::string &Name) const {
  for (const Param &P : Params)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

/// Scans \p Body recursively for an allocation named \p Name.
static const AllocStmt *findAllocIn(const std::vector<StmtPtr> &Body,
                                    const std::string &Name) {
  for (const StmtPtr &S : Body) {
    if (const auto *A = dyn_castS<AllocStmt>(S)) {
      if (A->name() == Name)
        return A;
      continue;
    }
    if (const auto *F = dyn_castS<ForStmt>(S))
      if (const AllocStmt *A = findAllocIn(F->body(), Name))
        return A;
  }
  return nullptr;
}

std::optional<BufferInfo> Proc::findBuffer(const std::string &Name) const {
  if (const Param *P = findParam(Name)) {
    if (P->PKind != Param::Kind::Tensor)
      return std::nullopt;
    BufferInfo B;
    B.Ty = P->Ty;
    B.Shape = P->Shape;
    B.Mem = P->Mem;
    B.IsParam = true;
    B.Mutable = P->Mutable;
    B.LeadStrideVar = P->LeadStrideVar;
    return B;
  }
  if (const AllocStmt *A = findAllocIn(Body, Name)) {
    BufferInfo B;
    B.Ty = A->elemType();
    B.Shape = A->shape();
    B.Mem = A->mem();
    B.IsParam = false;
    B.Mutable = true;
    return B;
  }
  return std::nullopt;
}

Proc Proc::withName(std::string NewName) const {
  Proc P = *this;
  P.Name = std::move(NewName);
  return P;
}

Proc Proc::withBody(std::vector<StmtPtr> NewBody) const {
  Proc P = *this;
  P.Body = std::move(NewBody);
  return P;
}

Proc Proc::withParams(std::vector<Param> NewParams) const {
  Proc P = *this;
  P.Params = std::move(NewParams);
  return P;
}

Proc Proc::withPreconds(std::vector<ExprPtr> NewPre) const {
  Proc P = *this;
  P.Preconds = std::move(NewPre);
  return P;
}
