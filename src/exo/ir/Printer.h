//===- Printer.h - Exo-style textual form of the IR -----------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pretty-printing of procs in the Exo surface syntax used in
/// the paper's figures, e.g.:
///
/// \code
///   def uk_8x12(KC: size, alpha: f32[1] @ DRAM, ...):
///       C_reg: f32[12, 2, 4] @ Neon
///       for k in seq(0, KC):
///           neon_vld_4xf32(A_reg[it, 0:4], Ac[k, 4 * it:4 * it + 4])
/// \endcode
///
/// Index expressions print in affine normal form so golden tests are stable
/// across scheduling orders.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_PRINTER_H
#define EXO_IR_PRINTER_H

#include "exo/ir/Proc.h"

#include <string>

namespace exo {

std::string printExpr(const ExprPtr &E);
std::string printStmt(const StmtPtr &S, unsigned Indent = 0);
std::string printBody(const std::vector<StmtPtr> &Body, unsigned Indent = 0);
std::string printProc(const Proc &P);

} // namespace exo

#endif // EXO_IR_PRINTER_H
