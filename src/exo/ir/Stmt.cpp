//===- Stmt.cpp -----------------------------------------------------------===//

#include "exo/ir/Stmt.h"

using namespace exo;

Stmt::~Stmt() = default;

StmtPtr AssignStmt::make(std::string Buf, std::vector<ExprPtr> Idx,
                         ExprPtr Rhs, bool IsReduce) {
  assert(!Buf.empty() && "assignment needs a destination buffer");
  assert(Rhs && "assignment needs a right-hand side");
  return StmtPtr(
      new AssignStmt(std::move(Buf), std::move(Idx), std::move(Rhs), IsReduce));
}

StmtPtr ForStmt::make(std::string Var, ExprPtr Lo, ExprPtr Hi,
                      std::vector<StmtPtr> Body) {
  assert(!Var.empty() && "loop needs a variable");
  assert(Lo && Hi && "loop needs bounds");
  return StmtPtr(
      new ForStmt(std::move(Var), std::move(Lo), std::move(Hi), std::move(Body)));
}

StmtPtr ForStmt::withBody(std::vector<StmtPtr> NewBody) const {
  return make(Var, Lo, Hi, std::move(NewBody));
}

StmtPtr AllocStmt::make(std::string Name, ScalarKind Ty,
                        std::vector<ExprPtr> Shape, const MemSpace *Mem) {
  assert(!Name.empty() && "allocation needs a name");
  assert(Mem && "allocation needs a memory space");
  return StmtPtr(new AllocStmt(std::move(Name), Ty, std::move(Shape), Mem));
}

StmtPtr CallStmt::make(InstrPtr Callee, std::vector<CallArg> Args) {
  assert(Callee && "call needs a callee");
  return StmtPtr(new CallStmt(std::move(Callee), std::move(Args)));
}
