//===- Rewrite.h - Generic IR traversal and rewriting ---------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional traversal helpers every scheduling primitive is built from:
/// bottom-up expression/statement rewriting, variable substitution, buffer
/// renaming, and read-only visitors.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_REWRITE_H
#define EXO_IR_REWRITE_H

#include "exo/ir/Proc.h"

#include <functional>
#include <map>
#include <set>

namespace exo {

/// Maps an expression bottom-up: children are rewritten first, then \p Fn is
/// applied to the rebuilt node. \p Fn returns nullptr to keep the node.
ExprPtr rewriteExpr(const ExprPtr &E,
                    const std::function<ExprPtr(const ExprPtr &)> &Fn);

/// Maps every expression inside \p S bottom-up with \p Fn (loop bounds,
/// indices, right-hand sides, alloc shapes, call arguments).
StmtPtr rewriteStmtExprs(const StmtPtr &S,
                         const std::function<ExprPtr(const ExprPtr &)> &Fn);

/// Maps a statement tree bottom-up: children first, then \p Fn on the rebuilt
/// statement. \p Fn may return a replacement list (empty list deletes, one
/// element replaces, several splice). Returning std::nullopt keeps the node.
using StmtRewriteFn =
    std::function<std::optional<std::vector<StmtPtr>>(const StmtPtr &)>;
std::vector<StmtPtr> rewriteStmts(const std::vector<StmtPtr> &Body,
                                  const StmtRewriteFn &Fn);

/// Substitutes free variables by expressions (capture is not an issue: loop
/// variables shadow, and substitution skips loops that rebind a name).
ExprPtr substVars(const ExprPtr &E, const std::map<std::string, ExprPtr> &Map);
StmtPtr substVarsStmt(const StmtPtr &S,
                      const std::map<std::string, ExprPtr> &Map);
std::vector<StmtPtr> substVarsBody(const std::vector<StmtPtr> &Body,
                                   const std::map<std::string, ExprPtr> &Map);

/// Renames every access to buffer \p From (reads, writes, windows, allocs).
std::vector<StmtPtr> renameBuffer(const std::vector<StmtPtr> &Body,
                                  const std::string &From,
                                  const std::string &To);

/// Read-only visitors. Return false from the callback to stop early.
void forEachExpr(const StmtPtr &S,
                 const std::function<void(const ExprPtr &)> &Fn);
void forEachStmt(const std::vector<StmtPtr> &Body,
                 const std::function<void(const StmtPtr &)> &Fn);

/// Collects the free index variables of \p E.
void collectVars(const ExprPtr &E, std::set<std::string> &Out);

/// Buffer usage summary for dependence checks.
struct BufferUse {
  bool Read = false;
  bool Written = false;
};
/// Collects, per buffer, whether \p Body reads and/or writes it. Instruction
/// calls count window arguments according to the mutability of the matching
/// instruction parameter.
std::map<std::string, BufferUse>
collectBufferUses(const std::vector<StmtPtr> &Body);

/// True when any statement in \p Body mentions variable \p Var in any
/// expression.
bool bodyMentionsVar(const std::vector<StmtPtr> &Body, const std::string &Var);

/// True when any statement in \p Body accesses buffer \p Buf.
bool bodyMentionsBuffer(const std::vector<StmtPtr> &Body,
                        const std::string &Buf);

/// Returns all loop-variable names bound anywhere in the body.
void collectLoopVars(const std::vector<StmtPtr> &Body,
                     std::set<std::string> &Out);

/// Returns all allocation names in the body.
void collectAllocNames(const std::vector<StmtPtr> &Body,
                       std::set<std::string> &Out);

} // namespace exo

#endif // EXO_IR_REWRITE_H
