//===- Builder.cpp --------------------------------------------------------===//

#include "exo/ir/Builder.h"

#include "exo/support/Error.h"

using namespace exo;

ProcBuilder::ProcBuilder(std::string Name) : Name(std::move(Name)) {
  Stack.emplace_back();
}

ExprPtr ProcBuilder::sizeParam(const std::string &Name) {
  assert(!Name.empty());
  Params.push_back(Param::size(Name));
  return var(Name);
}

ExprPtr ProcBuilder::indexParam(const std::string &Name) {
  Params.push_back(Param::indexVal(Name));
  return var(Name);
}

void ProcBuilder::tensorParam(const std::string &Name, ScalarKind Ty,
                              std::vector<ExprPtr> Shape, const MemSpace *Mem,
                              bool Mutable, const std::string &LeadStrideVar) {
  Params.push_back(
      Param::tensor(Name, Ty, std::move(Shape), Mem, Mutable, LeadStrideVar));
}

void ProcBuilder::precond(ExprPtr Cond) {
  assert(Cond->type() == ScalarKind::Bool && "precondition must be boolean");
  Preconds.push_back(std::move(Cond));
}

ExprPtr ProcBuilder::beginFor(const std::string &Var, ExprPtr Lo, ExprPtr Hi) {
  OpenLoops.push_back({Var, std::move(Lo), std::move(Hi)});
  Stack.emplace_back();
  return var(Var);
}

void ProcBuilder::endFor() {
  assert(!OpenLoops.empty() && "endFor without beginFor");
  OpenLoop L = std::move(OpenLoops.back());
  OpenLoops.pop_back();
  std::vector<StmtPtr> Body = std::move(Stack.back());
  Stack.pop_back();
  append(ForStmt::make(L.Var, L.Lo, L.Hi, std::move(Body)));
}

void ProcBuilder::assign(const std::string &Buf, std::vector<ExprPtr> Idx,
                         ExprPtr Rhs) {
  append(AssignStmt::make(Buf, std::move(Idx), std::move(Rhs), false));
}

void ProcBuilder::reduce(const std::string &Buf, std::vector<ExprPtr> Idx,
                         ExprPtr Rhs) {
  append(AssignStmt::make(Buf, std::move(Idx), std::move(Rhs), true));
}

void ProcBuilder::alloc(const std::string &Name, ScalarKind Ty,
                        std::vector<ExprPtr> Shape, const MemSpace *Mem) {
  AllocTypes.emplace_back(Name, Ty);
  append(AllocStmt::make(Name, Ty, std::move(Shape), Mem));
}

void ProcBuilder::call(InstrPtr Callee, std::vector<CallArg> Args) {
  append(CallStmt::make(std::move(Callee), std::move(Args)));
}

ScalarKind ProcBuilder::elemTypeOf(const std::string &Buf) const {
  for (const Param &P : Params)
    if (P.Name == Buf && P.PKind == Param::Kind::Tensor)
      return P.Ty;
  for (const auto &[Name, Ty] : AllocTypes)
    if (Name == Buf)
      return Ty;
  fatal("readOf of undeclared buffer '" + Buf + "'");
}

ExprPtr ProcBuilder::readOf(const std::string &Buf, std::vector<ExprPtr> Idx) {
  return read(Buf, std::move(Idx), elemTypeOf(Buf));
}

void ProcBuilder::append(StmtPtr S) { Stack.back().push_back(std::move(S)); }

Proc ProcBuilder::build() {
  assert(OpenLoops.empty() && "unclosed for loop at build()");
  assert(Stack.size() == 1 && "builder stack corrupted");
  return Proc(std::move(Name), std::move(Params), std::move(Preconds),
              std::move(Stack.back()));
}
