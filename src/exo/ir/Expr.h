//===- Expr.h - Object-language expressions -------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable expression trees of the object language. Expressions are shared
/// (`std::shared_ptr<const Expr>`) and never mutated after construction;
/// scheduling rewrites build new trees.
///
/// The expression language is deliberately small — it is what GEMM-family
/// loop nests need: buffer reads, constants, loop/size variables, and the
/// usual arithmetic. Index expressions (type Index) index buffers and bound
/// loops; value expressions (f32 etc.) appear on assignment right-hand sides.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_EXPR_H
#define EXO_IR_EXPR_H

#include "exo/ir/Type.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace exo {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Base of all expressions. Uses LLVM-style kind dispatch (no RTTI).
class Expr {
public:
  enum class Kind : uint8_t {
    Const,
    Var,
    Read,
    BinOp,
    USub,
  };

  virtual ~Expr();

  Kind kind() const { return K; }
  ScalarKind type() const { return Ty; }

protected:
  Expr(Kind K, ScalarKind Ty) : K(K), Ty(Ty) {}

private:
  Kind K;
  ScalarKind Ty;
};

/// A numeric literal. Integer-valued literals of type Index are the common
/// case (loop bounds, tile sizes); float literals appear in value positions.
class ConstExpr final : public Expr {
public:
  static ExprPtr makeIndex(int64_t V);
  static ExprPtr makeFloat(double V, ScalarKind Ty);

  /// Integer value; asserts the constant is integral (Index or int kinds).
  int64_t intValue() const {
    assert(!isFloatKind(type()) && "not an integer constant");
    return IVal;
  }
  /// Float value; valid for any constant (ints convert).
  double floatValue() const { return isFloatKind(type()) ? FVal : IVal; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Const; }

private:
  ConstExpr(int64_t I, double F, ScalarKind Ty)
      : Expr(Kind::Const, Ty), IVal(I), FVal(F) {}

  int64_t IVal = 0;
  double FVal = 0;
};

/// A reference to a loop variable or size parameter (always type Index).
class VarExpr final : public Expr {
public:
  static ExprPtr make(std::string Name);

  const std::string &name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Var; }

private:
  explicit VarExpr(std::string Name)
      : Expr(Kind::Var, ScalarKind::Index), Name(std::move(Name)) {}

  std::string Name;
};

/// A scalar read `buf[i0, i1, ...]` of a tensor parameter or allocation.
/// Scalar (rank-0) reads have an empty index list.
class ReadExpr final : public Expr {
public:
  static ExprPtr make(std::string Buf, std::vector<ExprPtr> Idx,
                      ScalarKind Ty);

  const std::string &buffer() const { return Buf; }
  const std::vector<ExprPtr> &indices() const { return Idx; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Read; }

private:
  ReadExpr(std::string Buf, std::vector<ExprPtr> Idx, ScalarKind Ty)
      : Expr(Kind::Read, Ty), Buf(std::move(Buf)), Idx(std::move(Idx)) {}

  std::string Buf;
  std::vector<ExprPtr> Idx;
};

/// Binary arithmetic / comparison. Comparisons yield Bool and appear only in
/// procedure preconditions.
class BinOpExpr final : public Expr {
public:
  enum class Op : uint8_t { Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, Eq };

  static ExprPtr make(Op O, ExprPtr L, ExprPtr R);

  Op op() const { return O; }
  const ExprPtr &lhs() const { return L; }
  const ExprPtr &rhs() const { return R; }

  static bool classof(const Expr *E) { return E->kind() == Kind::BinOp; }

  /// "+", "-", ... for printing.
  static const char *opName(Op O);

private:
  BinOpExpr(Op O, ExprPtr L, ExprPtr R, ScalarKind Ty)
      : Expr(Kind::BinOp, Ty), O(O), L(std::move(L)), R(std::move(R)) {}

  Op O;
  ExprPtr L, R;
};

/// Unary negation.
class USubExpr final : public Expr {
public:
  static ExprPtr make(ExprPtr Operand);

  const ExprPtr &operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::USub; }

private:
  explicit USubExpr(ExprPtr Operand)
      : Expr(Kind::USub, Operand->type()), Operand(std::move(Operand)) {}

  ExprPtr Operand;
};

/// LLVM-style cast helpers over Expr::Kind.
template <typename T> bool isa(const Expr *E) { return T::classof(E); }
template <typename T> bool isa(const ExprPtr &E) { return T::classof(E.get()); }
template <typename T> const T *cast(const Expr *E) {
  assert(T::classof(E) && "bad Expr cast");
  return static_cast<const T *>(E);
}
template <typename T> const T *cast(const ExprPtr &E) { return cast<T>(E.get()); }
template <typename T> const T *dyn_cast(const Expr *E) {
  return T::classof(E) ? static_cast<const T *>(E) : nullptr;
}
template <typename T> const T *dyn_cast(const ExprPtr &E) {
  return dyn_cast<T>(E.get());
}

//===----------------------------------------------------------------------===//
// Construction helpers
//===----------------------------------------------------------------------===//

/// Index literal.
ExprPtr idx(int64_t V);
/// Variable reference.
ExprPtr var(const std::string &Name);
/// Tensor read.
ExprPtr read(const std::string &Buf, std::vector<ExprPtr> Idx, ScalarKind Ty);

ExprPtr operator+(ExprPtr L, ExprPtr R);
ExprPtr operator-(ExprPtr L, ExprPtr R);
ExprPtr operator*(ExprPtr L, ExprPtr R);
ExprPtr operator/(ExprPtr L, ExprPtr R);
ExprPtr operator%(ExprPtr L, ExprPtr R);
ExprPtr operator+(ExprPtr L, int64_t R);
ExprPtr operator-(ExprPtr L, int64_t R);
ExprPtr operator*(ExprPtr L, int64_t R);
ExprPtr operator*(int64_t L, ExprPtr R);
ExprPtr operator/(ExprPtr L, int64_t R);
ExprPtr operator%(ExprPtr L, int64_t R);

} // namespace exo

#endif // EXO_IR_EXPR_H
