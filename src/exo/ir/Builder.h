//===- Builder.h - Fluent construction of procs ---------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProcBuilder assembles a Proc imperatively, mirroring how the paper's
/// Fig. 4 Exo source reads:
///
/// \code
///   ProcBuilder B("ukernel_ref");
///   ExprPtr MR = B.sizeParam("MR"), NR = B.sizeParam("NR");
///   ExprPtr KC = B.sizeParam("KC");
///   B.tensorParam("Ac", ScalarKind::F32, {KC, MR}, MemSpace::dram(), false);
///   ...
///   ExprPtr K = B.beginFor("k", idx(0), KC);
///   ...
///   B.endFor();
///   Proc P = B.build();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_BUILDER_H
#define EXO_IR_BUILDER_H

#include "exo/ir/Proc.h"

namespace exo {

class ProcBuilder {
public:
  explicit ProcBuilder(std::string Name);

  /// Declares `name: size` and returns a reference to it.
  ExprPtr sizeParam(const std::string &Name);
  /// Declares `name: index` and returns a reference to it.
  ExprPtr indexParam(const std::string &Name);
  /// Declares a tensor parameter.
  void tensorParam(const std::string &Name, ScalarKind Ty,
                   std::vector<ExprPtr> Shape, const MemSpace *Mem,
                   bool Mutable, const std::string &LeadStrideVar = "");
  /// Adds `assert cond` to the preconditions.
  void precond(ExprPtr Cond);

  /// Opens `for v in seq(lo, hi):`; returns the loop variable.
  ExprPtr beginFor(const std::string &Var, ExprPtr Lo, ExprPtr Hi);
  void endFor();

  void assign(const std::string &Buf, std::vector<ExprPtr> Idx, ExprPtr Rhs);
  void reduce(const std::string &Buf, std::vector<ExprPtr> Idx, ExprPtr Rhs);
  void alloc(const std::string &Name, ScalarKind Ty, std::vector<ExprPtr> Shape,
             const MemSpace *Mem);
  void call(InstrPtr Callee, std::vector<CallArg> Args);

  /// Reads element [Idx...] of a declared buffer, with the element type taken
  /// from the declaration.
  ExprPtr readOf(const std::string &Buf, std::vector<ExprPtr> Idx);

  /// Finishes construction; the builder must be back at nesting depth zero.
  Proc build();

private:
  void append(StmtPtr S);
  ScalarKind elemTypeOf(const std::string &Buf) const;

  std::string Name;
  std::vector<Param> Params;
  std::vector<ExprPtr> Preconds;
  /// Stack of open statement lists; Stack[0] is the proc body, each open
  /// `for` pushes one entry.
  std::vector<std::vector<StmtPtr>> Stack;
  /// Headers of the open loops, innermost last.
  struct OpenLoop {
    std::string Var;
    ExprPtr Lo, Hi;
  };
  std::vector<OpenLoop> OpenLoops;
  /// Allocation types, for readOf.
  std::vector<std::pair<std::string, ScalarKind>> AllocTypes;
};

} // namespace exo

#endif // EXO_IR_BUILDER_H
