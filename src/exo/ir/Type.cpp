//===- Type.cpp -----------------------------------------------------------===//

#include "exo/ir/Type.h"

#include "exo/support/Error.h"

#include <cassert>
#include <memory>
#include <mutex>

using namespace exo;

const char *exo::scalarKindName(ScalarKind K) {
  switch (K) {
  case ScalarKind::F16:
    return "f16";
  case ScalarKind::BF16:
    return "bf16";
  case ScalarKind::F32:
    return "f32";
  case ScalarKind::F64:
    return "f64";
  case ScalarKind::I8:
    return "i8";
  case ScalarKind::I16:
    return "i16";
  case ScalarKind::I32:
    return "i32";
  case ScalarKind::Index:
    return "index";
  case ScalarKind::Bool:
    return "bool";
  }
  fatal("unknown ScalarKind");
}

const char *exo::scalarKindCType(ScalarKind K) {
  switch (K) {
  case ScalarKind::F16:
    return "_Float16";
  case ScalarKind::BF16:
    return "__bf16";
  case ScalarKind::F32:
    return "float";
  case ScalarKind::F64:
    return "double";
  case ScalarKind::I8:
    return "int8_t";
  case ScalarKind::I16:
    return "int16_t";
  case ScalarKind::I32:
    return "int32_t";
  case ScalarKind::Index:
    return "int_fast32_t";
  case ScalarKind::Bool:
    return "_Bool";
  }
  fatal("unknown ScalarKind");
}

unsigned exo::scalarKindBytes(ScalarKind K) {
  switch (K) {
  case ScalarKind::F16:
  case ScalarKind::BF16:
    return 2;
  case ScalarKind::F32:
    return 4;
  case ScalarKind::F64:
    return 8;
  case ScalarKind::I8:
    return 1;
  case ScalarKind::I16:
    return 2;
  case ScalarKind::I32:
    return 4;
  case ScalarKind::Index:
  case ScalarKind::Bool:
    return 0;
  }
  fatal("unknown ScalarKind");
}

bool exo::isFloatKind(ScalarKind K) {
  return K == ScalarKind::F16 || K == ScalarKind::BF16 ||
         K == ScalarKind::F32 || K == ScalarKind::F64;
}

bool exo::parseScalarKind(const std::string &Name, ScalarKind &Out) {
  static const std::map<std::string, ScalarKind> Names = {
      {"f16", ScalarKind::F16},     {"bf16", ScalarKind::BF16},
      {"f32", ScalarKind::F32},
      {"f64", ScalarKind::F64},     {"i8", ScalarKind::I8},
      {"i16", ScalarKind::I16},     {"i32", ScalarKind::I32},
      {"index", ScalarKind::Index}, {"bool", ScalarKind::Bool},
  };
  auto It = Names.find(Name);
  if (It == Names.end())
    return false;
  Out = It->second;
  return true;
}

namespace {
/// Owns all interned memory spaces for the lifetime of the process.
struct MemSpaceRegistry {
  std::mutex Mu;
  std::map<std::string, std::unique_ptr<MemSpace>> Spaces;

  static MemSpaceRegistry &get() {
    static MemSpaceRegistry R;
    return R;
  }
};
} // namespace

const MemSpace *MemSpace::dram() {
  static const MemSpace *D = [] {
    auto &R = MemSpaceRegistry::get();
    std::lock_guard<std::mutex> Lock(R.Mu);
    auto S = std::unique_ptr<MemSpace>(new MemSpace());
    S->Name = "DRAM";
    S->IsRegisterFile = false;
    const MemSpace *Ptr = S.get();
    R.Spaces.emplace("DRAM", std::move(S));
    return Ptr;
  }();
  return D;
}

const MemSpace *
MemSpace::makeRegisterFile(const std::string &Name,
                           std::map<ScalarKind, VecTypeInfo> VecTypes) {
  assert(Name != "DRAM" && "DRAM is not a register file");
  auto &R = MemSpaceRegistry::get();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.Spaces.find(Name);
  if (It != R.Spaces.end())
    return It->second.get();
  auto S = std::unique_ptr<MemSpace>(new MemSpace());
  S->Name = Name;
  S->IsRegisterFile = true;
  S->VecTypes = std::move(VecTypes);
  const MemSpace *Ptr = S.get();
  R.Spaces.emplace(Name, std::move(S));
  return Ptr;
}

const MemSpace *MemSpace::lookup(const std::string &Name) {
  if (Name == "DRAM")
    return dram(); // Ensure it is interned.
  auto &R = MemSpaceRegistry::get();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.Spaces.find(Name);
  return It == R.Spaces.end() ? nullptr : It->second.get();
}

bool MemSpace::supports(ScalarKind K) const {
  if (!IsRegisterFile)
    return scalarKindBytes(K) != 0;
  return VecTypes.count(K) != 0;
}

const VecTypeInfo &MemSpace::vecType(ScalarKind K) const {
  assert(IsRegisterFile && "DRAM has no vector lowering");
  auto It = VecTypes.find(K);
  assert(It != VecTypes.end() && "scalar kind unsupported in this space");
  return It->second;
}
