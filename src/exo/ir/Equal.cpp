//===- Equal.cpp ----------------------------------------------------------===//

#include "exo/ir/Equal.h"

#include "exo/ir/Affine.h"

using namespace exo;

bool exo::exprEqual(const ExprPtr &A, const ExprPtr &B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind() || A->type() != B->type())
    return false;
  switch (A->kind()) {
  case Expr::Kind::Const: {
    const auto *CA = cast<ConstExpr>(A);
    const auto *CB = cast<ConstExpr>(B);
    if (isFloatKind(CA->type()))
      return CA->floatValue() == CB->floatValue();
    return CA->intValue() == CB->intValue();
  }
  case Expr::Kind::Var:
    return cast<VarExpr>(A)->name() == cast<VarExpr>(B)->name();
  case Expr::Kind::Read: {
    const auto *RA = cast<ReadExpr>(A);
    const auto *RB = cast<ReadExpr>(B);
    if (RA->buffer() != RB->buffer() ||
        RA->indices().size() != RB->indices().size())
      return false;
    for (size_t I = 0; I != RA->indices().size(); ++I)
      if (!exprEqual(RA->indices()[I], RB->indices()[I]))
        return false;
    return true;
  }
  case Expr::Kind::BinOp: {
    const auto *BA = cast<BinOpExpr>(A);
    const auto *BB = cast<BinOpExpr>(B);
    return BA->op() == BB->op() && exprEqual(BA->lhs(), BB->lhs()) &&
           exprEqual(BA->rhs(), BB->rhs());
  }
  case Expr::Kind::USub:
    return exprEqual(cast<USubExpr>(A)->operand(),
                     cast<USubExpr>(B)->operand());
  }
  return false;
}

bool exo::exprEquiv(const ExprPtr &A, const ExprPtr &B) {
  if (A->type() == ScalarKind::Index && B->type() == ScalarKind::Index) {
    auto LA = linearize(A);
    auto LB = linearize(B);
    if (LA && LB)
      return *LA == *LB;
  }
  return exprEqual(A, B);
}

static bool windowDimEqual(const WindowDim &A, const WindowDim &B) {
  if (A.isPoint() != B.isPoint())
    return false;
  if (A.isPoint())
    return exprEqual(A.Point, B.Point);
  return exprEqual(A.Lo, B.Lo) && exprEqual(A.Len, B.Len);
}

static bool callArgEqual(const CallArg &A, const CallArg &B) {
  if (A.isWindow() != B.isWindow())
    return false;
  if (!A.isWindow())
    return exprEqual(A.Scalar, B.Scalar);
  if (A.Buf != B.Buf || A.Dims.size() != B.Dims.size())
    return false;
  for (size_t I = 0; I != A.Dims.size(); ++I)
    if (!windowDimEqual(A.Dims[I], B.Dims[I]))
      return false;
  return true;
}

bool exo::stmtEqual(const StmtPtr &A, const StmtPtr &B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Stmt::Kind::Assign: {
    const auto *SA = castS<AssignStmt>(A);
    const auto *SB = castS<AssignStmt>(B);
    if (SA->buffer() != SB->buffer() || SA->isReduce() != SB->isReduce() ||
        SA->indices().size() != SB->indices().size())
      return false;
    for (size_t I = 0; I != SA->indices().size(); ++I)
      if (!exprEqual(SA->indices()[I], SB->indices()[I]))
        return false;
    return exprEqual(SA->rhs(), SB->rhs());
  }
  case Stmt::Kind::For: {
    const auto *FA = castS<ForStmt>(A);
    const auto *FB = castS<ForStmt>(B);
    return FA->loopVar() == FB->loopVar() && exprEqual(FA->lo(), FB->lo()) &&
           exprEqual(FA->hi(), FB->hi()) && bodyEqual(FA->body(), FB->body());
  }
  case Stmt::Kind::Alloc: {
    const auto *AA = castS<AllocStmt>(A);
    const auto *AB = castS<AllocStmt>(B);
    if (AA->name() != AB->name() || AA->elemType() != AB->elemType() ||
        AA->mem() != AB->mem() || AA->shape().size() != AB->shape().size())
      return false;
    for (size_t I = 0; I != AA->shape().size(); ++I)
      if (!exprEqual(AA->shape()[I], AB->shape()[I]))
        return false;
    return true;
  }
  case Stmt::Kind::Call: {
    const auto *CA = castS<CallStmt>(A);
    const auto *CB = castS<CallStmt>(B);
    if (CA->callee()->name() != CB->callee()->name() ||
        CA->args().size() != CB->args().size())
      return false;
    for (size_t I = 0; I != CA->args().size(); ++I)
      if (!callArgEqual(CA->args()[I], CB->args()[I]))
        return false;
    return true;
  }
  }
  return false;
}

bool exo::bodyEqual(const std::vector<StmtPtr> &A,
                    const std::vector<StmtPtr> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (!stmtEqual(A[I], B[I]))
      return false;
  return true;
}
