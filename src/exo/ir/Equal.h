//===- Equal.h - Structural equality of IR trees --------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural equality over expressions and statements, plus an
/// "equivalent modulo affine normalization" comparison used by tests and by
/// `replace` unification (so `jtt + 4 * jt` equals `4 * jt + jtt`).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_EQUAL_H
#define EXO_IR_EQUAL_H

#include "exo/ir/Proc.h"

namespace exo {

/// Exact structural equality.
bool exprEqual(const ExprPtr &A, const ExprPtr &B);
bool stmtEqual(const StmtPtr &A, const StmtPtr &B);
bool bodyEqual(const std::vector<StmtPtr> &A, const std::vector<StmtPtr> &B);

/// Equality after affine normalization of index expressions.
bool exprEquiv(const ExprPtr &A, const ExprPtr &B);

} // namespace exo

#endif // EXO_IR_EQUAL_H
