//===- Printer.cpp --------------------------------------------------------===//

#include "exo/ir/Printer.h"

#include "exo/ir/Affine.h"
#include "exo/support/Error.h"
#include "exo/support/Str.h"

#include <sstream>

using namespace exo;

namespace {

/// Operator precedence for minimal parenthesization.
int precedence(BinOpExpr::Op O) {
  switch (O) {
  case BinOpExpr::Op::Mul:
  case BinOpExpr::Op::Div:
  case BinOpExpr::Op::Mod:
    return 3;
  case BinOpExpr::Op::Add:
  case BinOpExpr::Op::Sub:
    return 2;
  default:
    return 1; // comparisons
  }
}

std::string printExprPrec(const ExprPtr &E, int Parent);

std::string printIndices(const std::vector<ExprPtr> &Idx) {
  std::vector<std::string> Parts;
  Parts.reserve(Idx.size());
  for (const ExprPtr &I : Idx)
    Parts.push_back(printExprPrec(normalizeIndexExpr(I), 0));
  return join(Parts, ", ");
}

std::string printExprPrec(const ExprPtr &E, int Parent) {
  switch (E->kind()) {
  case Expr::Kind::Const: {
    const auto *C = cast<ConstExpr>(E);
    if (isFloatKind(C->type())) {
      std::ostringstream OS;
      OS << C->floatValue();
      return OS.str();
    }
    return std::to_string(C->intValue());
  }
  case Expr::Kind::Var:
    return cast<VarExpr>(E)->name();
  case Expr::Kind::Read: {
    const auto *R = cast<ReadExpr>(E);
    if (R->indices().empty())
      return R->buffer();
    return R->buffer() + "[" + printIndices(R->indices()) + "]";
  }
  case Expr::Kind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    int Prec = precedence(B->op());
    std::string S = printExprPrec(B->lhs(), Prec - 1) + " " +
                    BinOpExpr::opName(B->op()) + " " +
                    printExprPrec(B->rhs(), Prec);
    if (Prec <= Parent)
      return "(" + S + ")";
    return S;
  }
  case Expr::Kind::USub: {
    std::string S = "-" + printExprPrec(cast<USubExpr>(E)->operand(), 3);
    if (Parent >= 3)
      return "(" + S + ")";
    return S;
  }
  }
  fatal("unknown Expr kind");
}

std::string printWindowDim(const WindowDim &D) {
  if (D.isPoint())
    return printExprPrec(normalizeIndexExpr(D.Point), 0);
  ExprPtr Lo = normalizeIndexExpr(D.Lo);
  ExprPtr Hi = normalizeIndexExpr(D.Lo + D.Len);
  return printExprPrec(Lo, 0) + ":" + printExprPrec(Hi, 0);
}

std::string printCallArg(const CallArg &A) {
  if (!A.isWindow())
    return printExprPrec(normalizeIndexExpr(A.Scalar), 0);
  std::vector<std::string> Dims;
  Dims.reserve(A.Dims.size());
  for (const WindowDim &D : A.Dims)
    Dims.push_back(printWindowDim(D));
  return A.Buf + "[" + join(Dims, ", ") + "]";
}

void printStmtInto(std::string &Out, const StmtPtr &S, unsigned Indent) {
  std::string Pad(Indent * 4, ' ');
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = castS<AssignStmt>(S);
    Out += Pad + A->buffer();
    if (!A->indices().empty())
      Out += "[" + printIndices(A->indices()) + "]";
    Out += A->isReduce() ? " += " : " = ";
    Out += printExprPrec(foldExpr(A->rhs()), 0);
    Out += "\n";
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = castS<ForStmt>(S);
    Out += Pad + "for " + F->loopVar() + " in seq(" +
           printExprPrec(normalizeIndexExpr(F->lo()), 0) + ", " +
           printExprPrec(normalizeIndexExpr(F->hi()), 0) + "):\n";
    for (const StmtPtr &C : F->body())
      printStmtInto(Out, C, Indent + 1);
    return;
  }
  case Stmt::Kind::Alloc: {
    const auto *A = castS<AllocStmt>(S);
    Out += Pad + A->name() + ": " + scalarKindName(A->elemType());
    if (!A->shape().empty())
      Out += "[" + printIndices(A->shape()) + "]";
    Out += " @ " + A->mem()->name() + "\n";
    return;
  }
  case Stmt::Kind::Call: {
    const auto *C = castS<CallStmt>(S);
    std::vector<std::string> Args;
    Args.reserve(C->args().size());
    for (const CallArg &A : C->args())
      Args.push_back(printCallArg(A));
    Out += Pad + C->callee()->name() + "(" + join(Args, ", ") + ")\n";
    return;
  }
  }
  fatal("unknown Stmt kind");
}

std::string printParam(const Param &P) {
  switch (P.PKind) {
  case Param::Kind::Size:
    return P.Name + ": size";
  case Param::Kind::IndexVal:
    return P.Name + ": index";
  case Param::Kind::Tensor: {
    std::string S = P.Name + ": " + scalarKindName(P.Ty);
    if (!P.Shape.empty())
      S += "[" + printIndices(P.Shape) + "]";
    S += " @ " + P.Mem->name();
    return S;
  }
  }
  fatal("unknown Param kind");
}

} // namespace

std::string exo::printExpr(const ExprPtr &E) {
  return printExprPrec(foldExpr(E), 0);
}

std::string exo::printStmt(const StmtPtr &S, unsigned Indent) {
  std::string Out;
  printStmtInto(Out, S, Indent);
  return Out;
}

std::string exo::printBody(const std::vector<StmtPtr> &Body, unsigned Indent) {
  std::string Out;
  for (const StmtPtr &S : Body)
    printStmtInto(Out, S, Indent);
  return Out;
}

std::string exo::printProc(const Proc &P) {
  std::string Out = "def " + P.name() + "(";
  std::vector<std::string> Ps;
  Ps.reserve(P.params().size());
  for (const Param &Pa : P.params())
    Ps.push_back(printParam(Pa));
  Out += join(Ps, ", ") + "):\n";
  for (const ExprPtr &Pre : P.preconds())
    Out += "    assert " + printExprPrec(normalizeIndexExpr(Pre), 0) + "\n";
  Out += printBody(P.body(), 1);
  return Out;
}
