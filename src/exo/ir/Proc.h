//===- Proc.h - Procedures and instructions -------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Proc is a schedulable procedure: a name, parameters (sizes, scalars and
/// tensors), preconditions, and a statement body. Procs are value types; all
/// scheduling primitives consume a Proc and return a new one.
///
/// An Instr is a hardware instruction: a Proc giving its exact semantics
/// (the paper's Fig. 3 `@instr` definitions) plus the C code it lowers to.
/// The semantic Proc is what `replace` unifies loop nests against, and what
/// the interpreter executes, so a schedule cannot substitute an instruction
/// that does not implement the code it replaces.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_PROC_H
#define EXO_IR_PROC_H

#include "exo/ir/Stmt.h"

#include <optional>
#include <string>
#include <vector>

namespace exo {

/// A procedure parameter.
struct Param {
  enum class Kind : uint8_t {
    /// `MR: size` — a compile-time-positive integer.
    Size,
    /// `l: index` — an index value (used by instruction lane arguments).
    IndexVal,
    /// `Ac: f32[KC, MR] @ DRAM` — a tensor (rank >= 1).
    Tensor,
  };

  std::string Name;
  Kind PKind = Kind::Size;
  ScalarKind Ty = ScalarKind::Index;

  // Tensor-only fields.
  std::vector<ExprPtr> Shape;
  const MemSpace *Mem = nullptr;
  bool Mutable = false;
  /// When non-empty, the stride (in elements) between rows of dimension 0 is
  /// the runtime value of this size parameter instead of the product of the
  /// remaining dimensions. This is how a micro-kernel's C operand addresses a
  /// tile inside a larger matrix. Only valid for rank-2 DRAM tensors.
  std::string LeadStrideVar;

  static Param size(std::string Name) {
    Param P;
    P.Name = std::move(Name);
    P.PKind = Kind::Size;
    return P;
  }
  static Param indexVal(std::string Name) {
    Param P;
    P.Name = std::move(Name);
    P.PKind = Kind::IndexVal;
    return P;
  }
  static Param tensor(std::string Name, ScalarKind Ty,
                      std::vector<ExprPtr> Shape, const MemSpace *Mem,
                      bool Mutable, std::string LeadStrideVar = "") {
    Param P;
    P.Name = std::move(Name);
    P.PKind = Kind::Tensor;
    P.Ty = Ty;
    P.Shape = std::move(Shape);
    P.Mem = Mem;
    P.Mutable = Mutable;
    P.LeadStrideVar = std::move(LeadStrideVar);
    return P;
  }
};

/// Shape/type/space information for any buffer (parameter or allocation)
/// visible at some point in a proc.
struct BufferInfo {
  ScalarKind Ty = ScalarKind::F32;
  std::vector<ExprPtr> Shape;
  const MemSpace *Mem = nullptr;
  bool IsParam = false;
  bool Mutable = true;
  std::string LeadStrideVar;
};

/// See file comment.
class Proc {
public:
  Proc() = default;
  Proc(std::string Name, std::vector<Param> Params,
       std::vector<ExprPtr> Preconds, std::vector<StmtPtr> Body);

  const std::string &name() const { return Name; }
  const std::vector<Param> &params() const { return Params; }
  const std::vector<ExprPtr> &preconds() const { return Preconds; }
  const std::vector<StmtPtr> &body() const { return Body; }

  /// Finds a parameter by name; nullptr when absent.
  const Param *findParam(const std::string &Name) const;

  /// Finds the declaration of buffer \p Name: a tensor/scalar parameter or an
  /// allocation anywhere in the body (allocation names are unique per proc).
  std::optional<BufferInfo> findBuffer(const std::string &Name) const;

  /// Copies with replacements (scheduling primitives use these).
  Proc withName(std::string NewName) const;
  Proc withBody(std::vector<StmtPtr> NewBody) const;
  Proc withParams(std::vector<Param> NewParams) const;
  Proc withPreconds(std::vector<ExprPtr> NewPre) const;

private:
  std::string Name;
  std::vector<Param> Params;
  std::vector<ExprPtr> Preconds;
  std::vector<StmtPtr> Body;
};

/// A hardware instruction: semantics plus lowering. See file comment.
///
/// The C format string refers to arguments as `{arg_data}` (the data
/// expression of a window argument, or the C expression of a scalar
/// argument). Code generation substitutes these; e.g. Neon vst1q_f32 is
/// `vst1q_f32(&{dst_data}, {src_data});`.
class Instr {
public:
  Instr(Proc Semantics, std::string CFormat)
      : Semantics(std::move(Semantics)), CFormat(std::move(CFormat)) {}

  const std::string &name() const { return Semantics.name(); }
  const Proc &semantics() const { return Semantics; }
  const std::string &cFormat() const { return CFormat; }

  static InstrPtr make(Proc Semantics, std::string CFormat) {
    return std::make_shared<const Instr>(std::move(Semantics),
                                         std::move(CFormat));
  }

private:
  Proc Semantics;
  std::string CFormat;
};

} // namespace exo

#endif // EXO_IR_PROC_H
