//===- Type.h - Scalar types and memory spaces ----------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar element types of the object language (f16/f32/f64/i8/i16/i32 plus
/// the compile-time-only index and bool types) and memory spaces.
///
/// A memory space says where a buffer lives: plain addressable memory (DRAM)
/// or a vector register file provided by an instruction library (e.g. ARM
/// Neon 128-bit registers, AVX2 256-bit registers). Register-file spaces
/// carry the information code generation needs: the C vector type per scalar
/// kind and the number of lanes. Memory spaces are interned; identity
/// comparison of `const MemSpace *` is meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_TYPE_H
#define EXO_IR_TYPE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace exo {

/// Element types of buffers and scalars in the object language.
enum class ScalarKind : uint8_t {
  F16,
  /// bfloat16: f32's top 16 bits. Generated code uses the GCC/Clang
  /// `__bf16` storage type; arithmetic happens in f32 (see Interp rounding).
  BF16,
  F32,
  F64,
  I8,
  I16,
  I32,
  /// Loop variables, size parameters, and index expressions.
  Index,
  /// Results of comparisons in preconditions.
  Bool,
};

/// Returns the Exo-syntax name ("f32", "index", ...).
const char *scalarKindName(ScalarKind K);

/// Returns the C type used for this scalar in generated code.
const char *scalarKindCType(ScalarKind K);

/// Returns sizeof the element in generated code (0 for index/bool).
unsigned scalarKindBytes(ScalarKind K);

/// True for f16/bf16/f32/f64.
bool isFloatKind(ScalarKind K);

/// Parses "f32" etc. Returns false on unknown names.
bool parseScalarKind(const std::string &Name, ScalarKind &Out);

/// How a register-file memory space lowers one scalar kind.
struct VecTypeInfo {
  /// C type of one register, e.g. "float32x4_t" or "__m256".
  std::string CType;
  /// Number of scalar lanes in one register.
  unsigned Lanes = 0;
};

/// A place buffers can be allocated. See file comment.
class MemSpace {
public:
  /// The interned DRAM space (plain addressable memory).
  static const MemSpace *dram();

  /// Interns a register-file space. Calling again with the same name returns
  /// the already-interned space (the lowering table must match).
  static const MemSpace *
  makeRegisterFile(const std::string &Name,
                   std::map<ScalarKind, VecTypeInfo> VecTypes);

  /// Looks up an interned space by name; nullptr when unknown.
  static const MemSpace *lookup(const std::string &Name);

  const std::string &name() const { return Name; }
  bool isRegisterFile() const { return IsRegisterFile; }

  /// True when this space can hold buffers of kind \p K.
  bool supports(ScalarKind K) const;

  /// Lowering info for \p K; asserts that the kind is supported.
  const VecTypeInfo &vecType(ScalarKind K) const;

  /// Lanes of one register for \p K (asserts support).
  unsigned lanes(ScalarKind K) const { return vecType(K).Lanes; }

private:
  MemSpace() = default;

  std::string Name;
  bool IsRegisterFile = false;
  std::map<ScalarKind, VecTypeInfo> VecTypes;
};

} // namespace exo

#endif // EXO_IR_TYPE_H
