//===- Rewrite.cpp --------------------------------------------------------===//

#include "exo/ir/Rewrite.h"

#include "exo/support/Error.h"

using namespace exo;

ExprPtr exo::rewriteExpr(const ExprPtr &E,
                         const std::function<ExprPtr(const ExprPtr &)> &Fn) {
  ExprPtr Rebuilt = E;
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    break;
  case Expr::Kind::Read: {
    const auto *R = cast<ReadExpr>(E);
    std::vector<ExprPtr> Idx;
    bool Changed = false;
    Idx.reserve(R->indices().size());
    for (const ExprPtr &I : R->indices()) {
      ExprPtr NI = rewriteExpr(I, Fn);
      Changed |= NI != I;
      Idx.push_back(std::move(NI));
    }
    if (Changed)
      Rebuilt = ReadExpr::make(R->buffer(), std::move(Idx), R->type());
    break;
  }
  case Expr::Kind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    ExprPtr L = rewriteExpr(B->lhs(), Fn);
    ExprPtr R = rewriteExpr(B->rhs(), Fn);
    if (L != B->lhs() || R != B->rhs())
      Rebuilt = BinOpExpr::make(B->op(), std::move(L), std::move(R));
    break;
  }
  case Expr::Kind::USub: {
    const auto *U = cast<USubExpr>(E);
    ExprPtr Op = rewriteExpr(U->operand(), Fn);
    if (Op != U->operand())
      Rebuilt = USubExpr::make(std::move(Op));
    break;
  }
  }
  if (ExprPtr Replaced = Fn(Rebuilt))
    return Replaced;
  return Rebuilt;
}

/// Rewrites the expressions of one CallArg.
static CallArg rewriteArgExprs(const CallArg &A,
                               const std::function<ExprPtr(const ExprPtr &)> &Fn) {
  if (!A.isWindow()) {
    CallArg Out = A;
    Out.Scalar = rewriteExpr(A.Scalar, Fn);
    return Out;
  }
  CallArg Out;
  Out.Buf = A.Buf;
  Out.Dims.reserve(A.Dims.size());
  for (const WindowDim &D : A.Dims) {
    if (D.isPoint())
      Out.Dims.push_back(WindowDim::point(rewriteExpr(D.Point, Fn)));
    else
      Out.Dims.push_back(
          WindowDim::interval(rewriteExpr(D.Lo, Fn), rewriteExpr(D.Len, Fn)));
  }
  return Out;
}

StmtPtr exo::rewriteStmtExprs(
    const StmtPtr &S, const std::function<ExprPtr(const ExprPtr &)> &Fn) {
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = castS<AssignStmt>(S);
    std::vector<ExprPtr> Idx;
    Idx.reserve(A->indices().size());
    for (const ExprPtr &I : A->indices())
      Idx.push_back(rewriteExpr(I, Fn));
    return AssignStmt::make(A->buffer(), std::move(Idx),
                            rewriteExpr(A->rhs(), Fn), A->isReduce());
  }
  case Stmt::Kind::For: {
    const auto *F = castS<ForStmt>(S);
    std::vector<StmtPtr> Body;
    Body.reserve(F->body().size());
    for (const StmtPtr &C : F->body())
      Body.push_back(rewriteStmtExprs(C, Fn));
    return ForStmt::make(F->loopVar(), rewriteExpr(F->lo(), Fn),
                         rewriteExpr(F->hi(), Fn), std::move(Body));
  }
  case Stmt::Kind::Alloc: {
    const auto *A = castS<AllocStmt>(S);
    std::vector<ExprPtr> Shape;
    Shape.reserve(A->shape().size());
    for (const ExprPtr &D : A->shape())
      Shape.push_back(rewriteExpr(D, Fn));
    return AllocStmt::make(A->name(), A->elemType(), std::move(Shape),
                           A->mem());
  }
  case Stmt::Kind::Call: {
    const auto *C = castS<CallStmt>(S);
    std::vector<CallArg> Args;
    Args.reserve(C->args().size());
    for (const CallArg &A : C->args())
      Args.push_back(rewriteArgExprs(A, Fn));
    return CallStmt::make(C->callee(), std::move(Args));
  }
  }
  fatal("unknown Stmt kind");
}

std::vector<StmtPtr> exo::rewriteStmts(const std::vector<StmtPtr> &Body,
                                       const StmtRewriteFn &Fn) {
  std::vector<StmtPtr> Out;
  Out.reserve(Body.size());
  for (const StmtPtr &S : Body) {
    StmtPtr Rebuilt = S;
    if (const auto *F = dyn_castS<ForStmt>(S)) {
      std::vector<StmtPtr> NewBody = rewriteStmts(F->body(), Fn);
      Rebuilt = F->withBody(std::move(NewBody));
    }
    if (std::optional<std::vector<StmtPtr>> Repl = Fn(Rebuilt)) {
      for (StmtPtr &R : *Repl)
        Out.push_back(std::move(R));
      continue;
    }
    Out.push_back(std::move(Rebuilt));
  }
  return Out;
}

ExprPtr exo::substVars(const ExprPtr &E,
                       const std::map<std::string, ExprPtr> &Map) {
  return rewriteExpr(E, [&](const ExprPtr &N) -> ExprPtr {
    if (const auto *V = dyn_cast<VarExpr>(N)) {
      auto It = Map.find(V->name());
      if (It != Map.end())
        return It->second;
    }
    return nullptr;
  });
}

StmtPtr exo::substVarsStmt(const StmtPtr &S,
                           const std::map<std::string, ExprPtr> &Map) {
  if (Map.empty())
    return S;
  // Loops that rebind a substituted name shadow it inside their body.
  if (const auto *F = dyn_castS<ForStmt>(S)) {
    std::map<std::string, ExprPtr> Inner = Map;
    Inner.erase(F->loopVar());
    std::vector<StmtPtr> Body;
    Body.reserve(F->body().size());
    for (const StmtPtr &C : F->body())
      Body.push_back(substVarsStmt(C, Inner));
    auto SubstFn = [&](const ExprPtr &N) -> ExprPtr {
      if (const auto *V = dyn_cast<VarExpr>(N)) {
        auto It = Map.find(V->name());
        if (It != Map.end())
          return It->second;
      }
      return nullptr;
    };
    return ForStmt::make(F->loopVar(), rewriteExpr(F->lo(), SubstFn),
                         rewriteExpr(F->hi(), SubstFn), std::move(Body));
  }
  return rewriteStmtExprs(S, [&](const ExprPtr &N) -> ExprPtr {
    if (const auto *V = dyn_cast<VarExpr>(N)) {
      auto It = Map.find(V->name());
      if (It != Map.end())
        return It->second;
    }
    return nullptr;
  });
}

std::vector<StmtPtr>
exo::substVarsBody(const std::vector<StmtPtr> &Body,
                   const std::map<std::string, ExprPtr> &Map) {
  std::vector<StmtPtr> Out;
  Out.reserve(Body.size());
  for (const StmtPtr &S : Body)
    Out.push_back(substVarsStmt(S, Map));
  return Out;
}

std::vector<StmtPtr> exo::renameBuffer(const std::vector<StmtPtr> &Body,
                                       const std::string &From,
                                       const std::string &To) {
  return rewriteStmts(Body, [&](const StmtPtr &S)
                                -> std::optional<std::vector<StmtPtr>> {
    StmtPtr N = rewriteStmtExprs(S, [&](const ExprPtr &E) -> ExprPtr {
      if (const auto *R = dyn_cast<ReadExpr>(E))
        if (R->buffer() == From)
          return ReadExpr::make(To, R->indices(), R->type());
      return nullptr;
    });
    if (const auto *A = dyn_castS<AssignStmt>(N)) {
      if (A->buffer() == From)
        N = AssignStmt::make(To, A->indices(), A->rhs(), A->isReduce());
    } else if (const auto *Al = dyn_castS<AllocStmt>(N)) {
      if (Al->name() == From)
        N = AllocStmt::make(To, Al->elemType(), Al->shape(), Al->mem());
    } else if (const auto *C = dyn_castS<CallStmt>(N)) {
      bool Any = false;
      std::vector<CallArg> Args = C->args();
      for (CallArg &Arg : Args)
        if (Arg.isWindow() && Arg.Buf == From) {
          Arg.Buf = To;
          Any = true;
        }
      if (Any)
        N = CallStmt::make(C->callee(), std::move(Args));
    }
    if (N == S)
      return std::nullopt;
    return std::vector<StmtPtr>{N};
  });
}

void exo::forEachExpr(const StmtPtr &S,
                      const std::function<void(const ExprPtr &)> &Fn) {
  // Reuse the rewriter as a read-only walk (no replacement returned).
  rewriteStmtExprs(S, [&](const ExprPtr &E) -> ExprPtr {
    Fn(E);
    return nullptr;
  });
}

void exo::forEachStmt(const std::vector<StmtPtr> &Body,
                      const std::function<void(const StmtPtr &)> &Fn) {
  for (const StmtPtr &S : Body) {
    Fn(S);
    if (const auto *F = dyn_castS<ForStmt>(S))
      forEachStmt(F->body(), Fn);
  }
}

void exo::collectVars(const ExprPtr &E, std::set<std::string> &Out) {
  rewriteExpr(E, [&](const ExprPtr &N) -> ExprPtr {
    if (const auto *V = dyn_cast<VarExpr>(N))
      Out.insert(V->name());
    return nullptr;
  });
}

std::map<std::string, BufferUse>
exo::collectBufferUses(const std::vector<StmtPtr> &Body) {
  std::map<std::string, BufferUse> Out;
  forEachStmt(Body, [&](const StmtPtr &S) {
    forEachExpr(S, [&](const ExprPtr &E) {
      if (const auto *R = dyn_cast<ReadExpr>(E))
        Out[R->buffer()].Read = true;
    });
    if (const auto *A = dyn_castS<AssignStmt>(S)) {
      Out[A->buffer()].Written = true;
      if (A->isReduce())
        Out[A->buffer()].Read = true;
    } else if (const auto *C = dyn_castS<CallStmt>(S)) {
      // Call arguments align 1:1 with the instruction's parameters.
      const auto &Params = C->callee()->semantics().params();
      const auto &Args = C->args();
      assert(Params.size() == Args.size() && "call arity mismatch");
      for (size_t I = 0; I != Args.size(); ++I) {
        if (Params[I].PKind != Param::Kind::Tensor || !Args[I].isWindow())
          continue;
        Out[Args[I].Buf].Read = true;
        if (Params[I].Mutable)
          Out[Args[I].Buf].Written = true;
      }
    }
  });
  return Out;
}

bool exo::bodyMentionsVar(const std::vector<StmtPtr> &Body,
                          const std::string &Var) {
  bool Found = false;
  forEachStmt(Body, [&](const StmtPtr &S) {
    if (Found)
      return;
    forEachExpr(S, [&](const ExprPtr &E) {
      if (const auto *V = dyn_cast<VarExpr>(E))
        if (V->name() == Var)
          Found = true;
    });
  });
  return Found;
}

bool exo::bodyMentionsBuffer(const std::vector<StmtPtr> &Body,
                             const std::string &Buf) {
  auto Uses = collectBufferUses(Body);
  return Uses.count(Buf) != 0;
}

void exo::collectLoopVars(const std::vector<StmtPtr> &Body,
                          std::set<std::string> &Out) {
  forEachStmt(Body, [&](const StmtPtr &S) {
    if (const auto *F = dyn_castS<ForStmt>(S))
      Out.insert(F->loopVar());
  });
}

void exo::collectAllocNames(const std::vector<StmtPtr> &Body,
                            std::set<std::string> &Out) {
  forEachStmt(Body, [&](const StmtPtr &S) {
    if (const auto *A = dyn_castS<AllocStmt>(S))
      Out.insert(A->name());
  });
}
