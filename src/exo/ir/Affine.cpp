//===- Affine.cpp ---------------------------------------------------------===//

#include "exo/ir/Affine.h"

using namespace exo;

LinExpr &LinExpr::operator+=(const LinExpr &O) {
  Const += O.Const;
  for (const auto &[V, K] : O.Coeffs)
    Coeffs[V] += K;
  normalize();
  return *this;
}

LinExpr &LinExpr::operator-=(const LinExpr &O) {
  Const -= O.Const;
  for (const auto &[V, K] : O.Coeffs)
    Coeffs[V] -= K;
  normalize();
  return *this;
}

LinExpr &LinExpr::operator*=(int64_t K) {
  Const *= K;
  for (auto &[V, C] : Coeffs)
    C *= K;
  normalize();
  return *this;
}

void LinExpr::normalize() {
  for (auto It = Coeffs.begin(); It != Coeffs.end();) {
    if (It->second == 0)
      It = Coeffs.erase(It);
    else
      ++It;
  }
}

std::optional<LinExpr> exo::linearize(const ExprPtr &E) {
  switch (E->kind()) {
  case Expr::Kind::Const: {
    const auto *C = cast<ConstExpr>(E);
    if (isFloatKind(C->type()))
      return std::nullopt;
    LinExpr L;
    L.Const = C->intValue();
    return L;
  }
  case Expr::Kind::Var: {
    LinExpr L;
    L.Coeffs[cast<VarExpr>(E)->name()] = 1;
    return L;
  }
  case Expr::Kind::Read:
    return std::nullopt;
  case Expr::Kind::USub: {
    auto L = linearize(cast<USubExpr>(E)->operand());
    if (!L)
      return std::nullopt;
    *L *= -1;
    return L;
  }
  case Expr::Kind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    auto L = linearize(B->lhs());
    auto R = linearize(B->rhs());
    if (!L || !R)
      return std::nullopt;
    switch (B->op()) {
    case BinOpExpr::Op::Add:
      *L += *R;
      return L;
    case BinOpExpr::Op::Sub:
      *L -= *R;
      return L;
    case BinOpExpr::Op::Mul:
      if (R->isConstant()) {
        *L *= R->Const;
        return L;
      }
      if (L->isConstant()) {
        *R *= L->Const;
        return R;
      }
      return std::nullopt;
    case BinOpExpr::Op::Div:
      // Exact constant division only (e.g. folding (4*it)/4).
      if (!R->isConstant() || R->Const == 0)
        return std::nullopt;
      if (L->Const % R->Const != 0)
        return std::nullopt;
      for (const auto &[V, K] : L->Coeffs)
        if (K % R->Const != 0)
          return std::nullopt;
      for (auto &[V, K] : L->Coeffs)
        K /= R->Const;
      L->Const /= R->Const;
      L->normalize();
      return L;
    case BinOpExpr::Op::Mod:
      if (L->isConstant() && R->isConstant() && R->Const != 0) {
        LinExpr Out;
        Out.Const = L->Const % R->Const;
        return Out;
      }
      return std::nullopt;
    default:
      return std::nullopt;
    }
  }
  }
  return std::nullopt;
}

ExprPtr exo::fromLinear(const LinExpr &L) {
  ExprPtr Acc;
  for (const auto &[V, K] : L.Coeffs) {
    ExprPtr Term;
    if (K == 1)
      Term = var(V);
    else if (K == -1)
      Term = USubExpr::make(var(V));
    else
      Term = idx(K) * var(V);
    Acc = Acc ? std::move(Acc) + std::move(Term) : std::move(Term);
  }
  if (!Acc)
    return idx(L.Const);
  if (L.Const > 0)
    return std::move(Acc) + L.Const;
  if (L.Const < 0)
    return std::move(Acc) - (-L.Const);
  return Acc;
}

ExprPtr exo::normalizeIndexExpr(const ExprPtr &E) {
  if (auto L = linearize(E))
    return fromLinear(*L);
  return E;
}

std::optional<int64_t> exo::tryConstFold(const ExprPtr &E) {
  auto L = linearize(E);
  if (L && L->isConstant())
    return L->Const;
  return std::nullopt;
}

ExprPtr exo::foldExpr(const ExprPtr &E) {
  // Index-typed expressions normalize through the linear form.
  if (E->type() == ScalarKind::Index)
    return normalizeIndexExpr(E);
  // Value expressions fold recursively by rebuilding.
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    return E;
  case Expr::Kind::Read: {
    const auto *R = cast<ReadExpr>(E);
    std::vector<ExprPtr> Idx;
    Idx.reserve(R->indices().size());
    for (const ExprPtr &I : R->indices())
      Idx.push_back(normalizeIndexExpr(I));
    return ReadExpr::make(R->buffer(), std::move(Idx), R->type());
  }
  case Expr::Kind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    return BinOpExpr::make(B->op(), foldExpr(B->lhs()), foldExpr(B->rhs()));
  }
  case Expr::Kind::USub:
    return USubExpr::make(foldExpr(cast<USubExpr>(E)->operand()));
  }
  return E;
}
