//===- Validate.h - Dynamic equivalence validation ------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interpreter-based equivalence checking between two procs with identical
/// signatures: both run on the same random instantiations (small sizes,
/// integer-valued tensor data so floating-point reassociation is exact) and
/// all mutable tensors are compared bit-for-bit. Used as the scheduling
/// safety net (see Schedule.h) and directly by property tests.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SCHED_VALIDATE_H
#define EXO_SCHED_VALIDATE_H

#include "exo/ir/Proc.h"
#include "exo/sched/Schedule.h"
#include "exo/support/Error.h"

namespace exo {

/// Checks P0 ~ P1 on \p Trials random instantiations. Returns success when
/// all runs agree; a diagnostic otherwise. Requires identical parameter
/// lists (order, kinds, shapes).
Error checkProcsEquivalent(const Proc &P0, const Proc &P1, int Trials,
                           unsigned Seed);

/// Runs the Schedule.h validation policy: no-op when \p Opts.Validate is
/// off or signatures differ; otherwise checkProcsEquivalent.
Error validateRewrite(const Proc &Before, const Proc &After,
                      const SchedOptions &Opts, const char *PrimName);

} // namespace exo

#endif // EXO_SCHED_VALIDATE_H
