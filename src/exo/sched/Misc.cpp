//===- Misc.cpp - rename, partial_eval, simplify, set_memory/precision ----===//

#include "exo/ir/Affine.h"
#include "exo/ir/Rewrite.h"
#include "exo/sched/Schedule.h"
#include "exo/sched/Validate.h"

using namespace exo;

SchedOptions &exo::defaultSchedOptions() {
  static SchedOptions Opts;
  return Opts;
}

Proc exo::renameProc(const Proc &P, std::string NewName) {
  return P.withName(std::move(NewName));
}

Expected<Proc> exo::partialEval(const Proc &P,
                                const std::map<std::string, int64_t> &Sizes) {
  std::map<std::string, ExprPtr> Subst;
  for (const auto &[Name, Val] : Sizes) {
    const Param *Pa = P.findParam(Name);
    if (!Pa)
      return errorf("partial_eval: no parameter '%s' in '%s'", Name.c_str(),
                    P.name().c_str());
    if (Pa->PKind != Param::Kind::Size)
      return errorf("partial_eval: parameter '%s' is not a size",
                    Name.c_str());
    if (Val <= 0)
      return errorf("partial_eval: size '%s' must be positive", Name.c_str());
    Subst[Name] = idx(Val);
  }

  // Drop the evaluated parameters; substitute in remaining tensor shapes.
  std::vector<Param> NewParams;
  for (const Param &Pa : P.params()) {
    if (Sizes.count(Pa.Name))
      continue;
    Param NP = Pa;
    for (ExprPtr &D : NP.Shape)
      D = normalizeIndexExpr(substVars(D, Subst));
    NewParams.push_back(std::move(NP));
  }

  std::vector<ExprPtr> NewPre;
  for (const ExprPtr &Pre : P.preconds()) {
    ExprPtr E = substVars(Pre, Subst);
    // Drop preconditions that became trivially true.
    if (auto C = tryConstFold(E); C && *C != 0)
      continue;
    NewPre.push_back(std::move(E));
  }

  Proc Out = P.withParams(std::move(NewParams))
                 .withPreconds(std::move(NewPre))
                 .withBody(substVarsBody(P.body(), Subst));
  return simplifyProc(Out);
}

Proc exo::simplifyProc(const Proc &P) {
  std::vector<StmtPtr> Body;
  Body.reserve(P.body().size());
  for (const StmtPtr &S : P.body())
    Body.push_back(rewriteStmtExprs(
        S, [](const ExprPtr &E) -> ExprPtr { return foldExpr(E); }));
  return P.withBody(std::move(Body));
}

Expected<Proc> exo::setMemory(const Proc &P, const std::string &Name,
                              const MemSpace *Mem) {
  assert(Mem && "set_memory needs a memory space");
  auto Buf = P.findBuffer(Name);
  if (!Buf)
    return errorf("set_memory: no buffer '%s' in '%s'", Name.c_str(),
                  P.name().c_str());
  if (Buf->IsParam)
    return errorf("set_memory: '%s' is a parameter; only allocations can be "
                  "re-homed",
                  Name.c_str());
  if (!Mem->supports(Buf->Ty))
    return errorf("set_memory: space '%s' does not support %s",
                  Mem->name().c_str(), scalarKindName(Buf->Ty));

  bool Found = false;
  std::vector<StmtPtr> Body = rewriteStmts(
      P.body(), [&](const StmtPtr &S) -> std::optional<std::vector<StmtPtr>> {
        const auto *A = dyn_castS<AllocStmt>(S);
        if (!A || A->name() != Name)
          return std::nullopt;
        Found = true;
        return std::vector<StmtPtr>{
            AllocStmt::make(A->name(), A->elemType(), A->shape(), Mem)};
      });
  if (!Found)
    return errorf("set_memory: allocation '%s' not found", Name.c_str());
  return P.withBody(std::move(Body));
}

namespace {

/// Rebuilds \p E with reads of \p Buf retyped to \p Ty, checking that value
/// arithmetic stays consistently typed.
Expected<ExprPtr> retypeExpr(const ExprPtr &E, const std::string &Buf,
                             ScalarKind Ty) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    return E;
  case Expr::Kind::Read: {
    const auto *R = cast<ReadExpr>(E);
    if (R->buffer() != Buf)
      return E;
    return ReadExpr::make(R->buffer(), R->indices(), Ty);
  }
  case Expr::Kind::USub: {
    auto Op = retypeExpr(cast<USubExpr>(E)->operand(), Buf, Ty);
    if (!Op)
      return Op.takeError();
    return USubExpr::make(Op.take());
  }
  case Expr::Kind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    auto L = retypeExpr(B->lhs(), Buf, Ty);
    if (!L)
      return L.takeError();
    auto R = retypeExpr(B->rhs(), Buf, Ty);
    if (!R)
      return R.takeError();
    if ((*L)->type() != (*R)->type())
      return errorf("set_precision: mixing %s and %s in one expression",
                    scalarKindName((*L)->type()),
                    scalarKindName((*R)->type()));
    return BinOpExpr::make(B->op(), L.take(), R.take());
  }
  }
  return errorf("set_precision: unknown expression kind");
}

} // namespace

Expected<Proc> exo::setPrecision(const Proc &P, const std::string &Name,
                                 ScalarKind Ty) {
  auto Buf = P.findBuffer(Name);
  if (!Buf)
    return errorf("set_precision: no buffer '%s' in '%s'", Name.c_str(),
                  P.name().c_str());

  Error Failed = Error::success();
  auto RetypeStmt = [&](const StmtPtr &S) -> std::optional<std::vector<StmtPtr>> {
    if (Failed)
      return std::nullopt;
    switch (S->kind()) {
    case Stmt::Kind::Alloc: {
      const auto *A = castS<AllocStmt>(S);
      if (A->name() != Name)
        return std::nullopt;
      if (A->mem()->isRegisterFile() && !A->mem()->supports(Ty)) {
        Failed = errorf("set_precision: space '%s' does not support %s",
                        A->mem()->name().c_str(), scalarKindName(Ty));
        return std::nullopt;
      }
      return std::vector<StmtPtr>{
          AllocStmt::make(A->name(), Ty, A->shape(), A->mem())};
    }
    case Stmt::Kind::Assign: {
      const auto *A = castS<AssignStmt>(S);
      auto Rhs = retypeExpr(A->rhs(), Name, Ty);
      if (!Rhs) {
        Failed = Rhs.takeError();
        return std::nullopt;
      }
      if (*Rhs == A->rhs())
        return std::nullopt;
      return std::vector<StmtPtr>{AssignStmt::make(
          A->buffer(), A->indices(), Rhs.take(), A->isReduce())};
    }
    default:
      return std::nullopt;
    }
  };

  std::vector<StmtPtr> Body = rewriteStmts(P.body(), RetypeStmt);
  if (Failed)
    return Failed;

  // Retype the parameter if the buffer is one.
  std::vector<Param> Params = P.params();
  if (Buf->IsParam)
    for (Param &Pa : Params)
      if (Pa.Name == Name)
        Pa.Ty = Ty;
  return P.withParams(std::move(Params)).withBody(std::move(Body));
}
