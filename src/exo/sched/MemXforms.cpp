//===- MemXforms.cpp - bind_expr, stage_mem, expand_dim, lift_alloc -------===//

#include "exo/ir/Affine.h"
#include "exo/ir/Equal.h"
#include "exo/ir/Rewrite.h"
#include "exo/pattern/Cursor.h"
#include "exo/sched/Schedule.h"
#include "exo/sched/Validate.h"

#include <set>

using namespace exo;

namespace {

Error checkFreshBufName(const Proc &P, const std::string &Name) {
  if (P.findParam(Name))
    return errorf("name '%s' collides with a parameter", Name.c_str());
  std::set<std::string> Used;
  collectLoopVars(P.body(), Used);
  collectAllocNames(P.body(), Used);
  if (Used.count(Name))
    return errorf("name '%s' is already used", Name.c_str());
  return Error::success();
}

} // namespace

Expected<Proc> exo::bindExpr(const Proc &P, const std::string &ExprPattern,
                             const std::string &NewName,
                             const SchedOptions &Opts) {
  auto MatchOr = findExpr(P, ExprPattern);
  if (!MatchOr)
    return MatchOr.takeError();
  if (Error Err = checkFreshBufName(P, NewName))
    return errorf("bind_expr: %s", Err.message().c_str());
  const ExprPtr &Target = MatchOr->E;
  if (!isa<ReadExpr>(Target))
    return errorf("bind_expr: pattern must match a buffer read");

  const StmtPtr &Old = stmtAt(P, MatchOr->Path);
  // Replace all structurally equal occurrences within the statement.
  StmtPtr NewStmt = rewriteStmtExprs(Old, [&](const ExprPtr &E) -> ExprPtr {
    if (exprEqual(E, Target))
      return ReadExpr::make(NewName, {}, Target->type());
    return nullptr;
  });

  std::vector<StmtPtr> Repl{
      AllocStmt::make(NewName, Target->type(), {}, MemSpace::dram()),
      AssignStmt::make(NewName, {}, Target, /*IsReduce=*/false), NewStmt};
  Proc Out = spliceAt(P, MatchOr->Path, std::move(Repl));
  if (Error Err = validateRewrite(P, Out, Opts, "bind_expr"))
    return Err;
  return Out;
}

Expected<Proc> exo::stageMem(const Proc &P, const std::string &StmtPattern,
                             const std::string &Buf,
                             const std::string &NewName,
                             const SchedOptions &Opts) {
  auto PathOr = findStmt(P, StmtPattern);
  if (!PathOr)
    return PathOr.takeError();
  if (Error Err = checkFreshBufName(P, NewName))
    return errorf("stage_mem: %s", Err.message().c_str());
  auto BufInfo = P.findBuffer(Buf);
  if (!BufInfo)
    return errorf("stage_mem: no buffer '%s'", Buf.c_str());

  const StmtPtr &Old = stmtAt(P, *PathOr);
  const auto *A = dyn_castS<AssignStmt>(Old);
  if (!A)
    return errorf("stage_mem: matched statement is not an assignment");

  // Gather the accessed index of Buf inside the statement; all accesses must
  // agree so a single scalar can stage them.
  std::vector<ExprPtr> AccessIdx;
  bool Mixed = false;
  auto Note = [&](const std::vector<ExprPtr> &Idx) {
    if (AccessIdx.empty() && !Idx.empty()) {
      AccessIdx = Idx;
      return;
    }
    if (Idx.size() != AccessIdx.size()) {
      Mixed = true;
      return;
    }
    for (size_t I = 0; I != Idx.size(); ++I)
      if (!exprEquiv(Idx[I], AccessIdx[I]))
        Mixed = true;
  };
  bool ReadsBuf = false, WritesBuf = false;
  forEachExpr(Old, [&](const ExprPtr &E) {
    if (const auto *R = dyn_cast<ReadExpr>(E))
      if (R->buffer() == Buf) {
        ReadsBuf = true;
        Note(R->indices());
      }
  });
  if (A->buffer() == Buf) {
    WritesBuf = true;
    if (A->isReduce())
      ReadsBuf = true;
    Note(A->indices());
  }
  if (!ReadsBuf && !WritesBuf)
    return errorf("stage_mem: statement does not access '%s'", Buf.c_str());
  if (Mixed)
    return errorf("stage_mem: '%s' is accessed at several indices in the "
                  "statement; scalar staging needs a single element",
                  Buf.c_str());

  // Rewrite the statement to use the staging scalar.
  StmtPtr Staged = rewriteStmtExprs(Old, [&](const ExprPtr &E) -> ExprPtr {
    if (const auto *R = dyn_cast<ReadExpr>(E))
      if (R->buffer() == Buf)
        return ReadExpr::make(NewName, {}, BufInfo->Ty);
    return nullptr;
  });
  if (const auto *SA = dyn_castS<AssignStmt>(Staged); SA->buffer() == Buf)
    Staged = AssignStmt::make(NewName, {}, SA->rhs(), SA->isReduce());

  std::vector<StmtPtr> Repl;
  Repl.push_back(AllocStmt::make(NewName, BufInfo->Ty, {}, MemSpace::dram()));
  if (ReadsBuf)
    Repl.push_back(AssignStmt::make(
        NewName, {}, ReadExpr::make(Buf, AccessIdx, BufInfo->Ty),
        /*IsReduce=*/false));
  Repl.push_back(Staged);
  if (WritesBuf)
    Repl.push_back(AssignStmt::make(Buf, AccessIdx,
                                    ReadExpr::make(NewName, {}, BufInfo->Ty),
                                    /*IsReduce=*/false));
  Proc Out = spliceAt(P, *PathOr, std::move(Repl));
  if (Error Err = validateRewrite(P, Out, Opts, "stage_mem"))
    return Err;
  return Out;
}

Expected<Proc> exo::expandDim(const Proc &P, const std::string &Name,
                              ExprPtr Size, ExprPtr Index,
                              const SchedOptions &Opts) {
  auto BufInfo = P.findBuffer(Name);
  if (!BufInfo)
    return errorf("expand_dim: no buffer '%s'", Name.c_str());
  if (BufInfo->IsParam)
    return errorf("expand_dim: '%s' is a parameter", Name.c_str());

  // Light static bound check: with a constant size and constant loop bounds
  // at every use, 0 <= Index < Size must hold. Non-constant cases are left
  // to dynamic validation (the interpreter bound-checks every access).
  if (auto SizeC = tryConstFold(Size)) {
    if (auto L = linearize(Index)) {
      // Bound each variable by scanning loop extents (loop bounds in these
      // schedules are constants after partial_eval).
      std::map<std::string, int64_t> MaxOf;
      bool AllBounded = true;
      forEachStmt(P.body(), [&](const StmtPtr &S) {
        if (const auto *F = dyn_castS<ForStmt>(S)) {
          auto Lo = tryConstFold(F->lo());
          auto Hi = tryConstFold(F->hi());
          if (Lo && Hi && *Lo == 0)
            MaxOf[F->loopVar()] = *Hi - 1;
        }
      });
      int64_t Min = L->Const, Max = L->Const;
      for (const auto &[V, K] : L->Coeffs) {
        auto It = MaxOf.find(V);
        if (It == MaxOf.end()) {
          AllBounded = false;
          break;
        }
        if (K > 0)
          Max += K * It->second;
        else
          Min += K * It->second;
      }
      if (AllBounded && (Min < 0 || Max >= *SizeC))
        return errorf("expand_dim: index range [%lld, %lld] exceeds new "
                      "dimension of extent %lld",
                      static_cast<long long>(Min),
                      static_cast<long long>(Max),
                      static_cast<long long>(*SizeC));
    }
  }

  auto Rewrite = [&](const StmtPtr &S) -> std::optional<std::vector<StmtPtr>> {
    // Loops are handled by recursion over their (already rewritten)
    // children; touching them here would prepend the index twice. Their
    // bounds cannot reference buffers.
    if (isaS<ForStmt>(S))
      return std::nullopt;
    StmtPtr N = rewriteStmtExprs(S, [&](const ExprPtr &E) -> ExprPtr {
      if (const auto *R = dyn_cast<ReadExpr>(E)) {
        if (R->buffer() != Name)
          return nullptr;
        std::vector<ExprPtr> Idx{Index};
        for (const ExprPtr &I : R->indices())
          Idx.push_back(I);
        return ReadExpr::make(Name, std::move(Idx), R->type());
      }
      return nullptr;
    });
    if (const auto *A = dyn_castS<AssignStmt>(N)) {
      if (A->buffer() == Name) {
        std::vector<ExprPtr> Idx{Index};
        for (const ExprPtr &I : A->indices())
          Idx.push_back(I);
        N = AssignStmt::make(Name, std::move(Idx), A->rhs(), A->isReduce());
      }
    } else if (const auto *Al = dyn_castS<AllocStmt>(N)) {
      if (Al->name() == Name) {
        std::vector<ExprPtr> Shape{Size};
        for (const ExprPtr &D : Al->shape())
          Shape.push_back(D);
        N = AllocStmt::make(Name, Al->elemType(), std::move(Shape), Al->mem());
      }
    } else if (const auto *C = dyn_castS<CallStmt>(N)) {
      bool Any = false;
      std::vector<CallArg> Args = C->args();
      for (CallArg &Arg : Args)
        if (Arg.isWindow() && Arg.Buf == Name) {
          Arg.Dims.insert(Arg.Dims.begin(), WindowDim::point(Index));
          Any = true;
        }
      if (Any)
        N = CallStmt::make(C->callee(), std::move(Args));
    }
    if (N == S)
      return std::nullopt;
    return std::vector<StmtPtr>{N};
  };

  Proc Out = P.withBody(rewriteStmts(P.body(), Rewrite));
  if (Error Err = validateRewrite(P, Out, Opts, "expand_dim"))
    return Err;
  return Out;
}

Expected<Proc> exo::liftAlloc(const Proc &P, const std::string &Name,
                              int NLifts, const SchedOptions &Opts) {
  Proc Cur = P;
  for (int Lift = 0; Lift != NLifts; ++Lift) {
    StmtPattern Pat;
    Pat.K = StmtPattern::Kind::Alloc;
    Pat.AllocName = Name;
    std::vector<StmtPath> All = findAllStmts(Cur, Pat);
    if (All.empty())
      return errorf("lift_alloc: no allocation '%s'", Name.c_str());
    StmtPath Path = All.front();
    if (Path.Steps.size() == 1)
      break; // Already at the top level.

    StmtPath OwnerPath = Path.parent();
    const auto *F = castS<ForStmt>(stmtAt(Cur, OwnerPath));
    const auto *A = castS<AllocStmt>(stmtAt(Cur, Path));
    for (const ExprPtr &D : A->shape()) {
      std::set<std::string> Vars;
      collectVars(D, Vars);
      if (Vars.count(F->loopVar()))
        return errorf("lift_alloc: extent of '%s' depends on loop '%s'",
                      Name.c_str(), F->loopVar().c_str());
    }

    // Remove the alloc from the loop body, reinsert before the loop.
    std::vector<StmtPtr> NewBody;
    for (size_t I = 0; I != F->body().size(); ++I)
      if (static_cast<int>(I) != Path.lastIndex())
        NewBody.push_back(F->body()[I]);
    StmtPtr NewLoop = F->withBody(std::move(NewBody));
    Cur = spliceAt(Cur, OwnerPath, {stmtAt(Cur, Path), NewLoop});
  }

  if (Error Err = validateRewrite(P, Cur, Opts, "lift_alloc"))
    return Err;
  return Cur;
}
