//===- ExtraXforms.cpp - cut_loop, fuse_loops, remove_loop ----------------===//

#include "exo/ir/Affine.h"
#include "exo/ir/Rewrite.h"
#include "exo/pattern/Cursor.h"
#include "exo/sched/Schedule.h"
#include "exo/sched/Validate.h"

#include <set>

using namespace exo;

Expected<Proc> exo::cutLoop(const Proc &P, const std::string &LoopPattern,
                            int64_t Point, const SchedOptions &Opts) {
  auto PathOr = findStmt(P, LoopPattern);
  if (!PathOr)
    return PathOr.takeError();
  const auto *F = dyn_castS<ForStmt>(stmtAt(P, *PathOr));
  if (!F)
    return errorf("cut_loop: pattern '%s' is not a loop",
                  LoopPattern.c_str());
  auto Lo = tryConstFold(F->lo());
  auto Hi = tryConstFold(F->hi());
  if (!Lo || !Hi)
    return errorf("cut_loop: loop '%s' needs constant bounds",
                  F->loopVar().c_str());
  if (Point < *Lo || Point > *Hi)
    return errorf("cut_loop: point %lld outside [%lld, %lld]",
                  static_cast<long long>(Point),
                  static_cast<long long>(*Lo), static_cast<long long>(*Hi));

  StmtPtr First = ForStmt::make(F->loopVar(), F->lo(), idx(Point), F->body());
  StmtPtr Second = ForStmt::make(F->loopVar(), idx(Point), F->hi(), F->body());
  Proc Out = spliceAt(P, *PathOr, {First, Second});
  if (Error Err = validateRewrite(P, Out, Opts, "cut_loop"))
    return Err;
  return Out;
}

Expected<Proc> exo::fuseLoops(const Proc &P, const std::string &LoopPattern,
                              const SchedOptions &Opts) {
  auto PathOr = findStmt(P, LoopPattern);
  if (!PathOr)
    return PathOr.takeError();
  const auto *F1 = dyn_castS<ForStmt>(stmtAt(P, *PathOr));
  if (!F1)
    return errorf("fuse_loops: pattern '%s' is not a loop",
                  LoopPattern.c_str());

  // The next sibling must be a loop with identical bounds.
  const std::vector<StmtPtr> &Siblings = bodyAt(P, PathOr->parent());
  int Idx = PathOr->lastIndex();
  if (static_cast<size_t>(Idx + 1) >= Siblings.size())
    return errorf("fuse_loops: loop '%s' has no following sibling",
                  F1->loopVar().c_str());
  const auto *F2 = dyn_castS<ForStmt>(Siblings[Idx + 1]);
  if (!F2)
    return errorf("fuse_loops: statement after '%s' is not a loop",
                  F1->loopVar().c_str());
  auto Lo1 = linearize(F1->lo());
  auto Lo2 = linearize(F2->lo());
  auto Hi1 = linearize(F1->hi());
  auto Hi2 = linearize(F2->hi());
  if (!Lo1 || !Lo2 || !Hi1 || !Hi2 || !(*Lo1 == *Lo2) || !(*Hi1 == *Hi2))
    return errorf("fuse_loops: bounds of '%s' and '%s' differ",
                  F1->loopVar().c_str(), F2->loopVar().c_str());

  // Rename the second loop's variable into the first's.
  std::vector<StmtPtr> Body2 = F2->body();
  if (F2->loopVar() != F1->loopVar())
    Body2 = substVarsBody(Body2, {{F2->loopVar(), var(F1->loopVar())}});

  std::vector<StmtPtr> Merged = F1->body();
  for (StmtPtr &S : Body2)
    Merged.push_back(std::move(S));
  StmtPtr Fused =
      ForStmt::make(F1->loopVar(), F1->lo(), F1->hi(), std::move(Merged));

  // Splice both out, insert the fusion.
  std::vector<StmtPtr> NewSiblings;
  for (size_t I = 0; I != Siblings.size(); ++I) {
    if (static_cast<int>(I) == Idx) {
      NewSiblings.push_back(Fused);
      ++I; // Skip the second loop.
      continue;
    }
    NewSiblings.push_back(Siblings[I]);
  }
  Proc Out;
  if (PathOr->parent().Steps.empty()) {
    Out = P.withBody(std::move(NewSiblings));
  } else {
    const auto *Owner = castS<ForStmt>(stmtAt(P, PathOr->parent()));
    Out = spliceAt(P, PathOr->parent(),
                   {Owner->withBody(std::move(NewSiblings))});
  }
  if (Error Err = validateRewrite(P, Out, Opts, "fuse_loops"))
    return Err;
  return Out;
}

Expected<Proc> exo::removeLoop(const Proc &P, const std::string &LoopPattern,
                               const SchedOptions &Opts) {
  auto PathOr = findStmt(P, LoopPattern);
  if (!PathOr)
    return PathOr.takeError();
  const auto *F = dyn_castS<ForStmt>(stmtAt(P, *PathOr));
  if (!F)
    return errorf("remove_loop: pattern '%s' is not a loop",
                  LoopPattern.c_str());
  if (bodyMentionsVar(F->body(), F->loopVar()))
    return errorf("remove_loop: body of '%s' uses the loop variable",
                  F->loopVar().c_str());

  // Trip count must be provably >= 1 (sizes are >= 1).
  auto Extent = linearize(F->hi() - F->lo());
  if (!Extent)
    return errorf("remove_loop: cannot bound the trip count of '%s'",
                  F->loopVar().c_str());
  int64_t Min = Extent->Const;
  for (const auto &[V, K] : Extent->Coeffs) {
    if (K < 0)
      return errorf("remove_loop: trip count of '%s' may be zero",
                    F->loopVar().c_str());
    Min += K;
  }
  if (Min < 1)
    return errorf("remove_loop: trip count of '%s' may be zero",
                  F->loopVar().c_str());

  Proc Out = spliceAt(P, *PathOr, F->body());
  if (Error Err = validateRewrite(P, Out, Opts, "remove_loop"))
    return Err;
  return Out;
}
