//===- Validate.cpp -------------------------------------------------------===//

#include "exo/sched/Validate.h"

#include "exo/interp/Interp.h"
#include "exo/ir/Affine.h"

#include <random>

using namespace exo;

namespace {

/// One sampled instantiation: scalar values plus tensor storage for both
/// runs (identical initial contents).
struct Instance {
  std::map<std::string, int64_t> Scalars;
  // Tensor name -> (shape, storage for run A, storage for run B).
  struct Tensor {
    std::vector<int64_t> Shape;
    std::vector<double> A, B;
  };
  std::map<std::string, Tensor> Tensors;
};

/// Evaluates an integer expression (shape dim or precondition) over the
/// sampled sizes; fails on unbound names or buffer reads.
bool evalIntExpr(const ExprPtr &E, const std::map<std::string, int64_t> &Env,
                 int64_t &Out) {
  switch (E->kind()) {
  case Expr::Kind::Const:
    if (isFloatKind(E->type()))
      return false;
    Out = cast<ConstExpr>(E)->intValue();
    return true;
  case Expr::Kind::Var: {
    auto It = Env.find(cast<VarExpr>(E)->name());
    if (It == Env.end())
      return false;
    Out = It->second;
    return true;
  }
  case Expr::Kind::USub: {
    if (!evalIntExpr(cast<USubExpr>(E)->operand(), Env, Out))
      return false;
    Out = -Out;
    return true;
  }
  case Expr::Kind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    int64_t L, R;
    if (!evalIntExpr(B->lhs(), Env, L) || !evalIntExpr(B->rhs(), Env, R))
      return false;
    switch (B->op()) {
    case BinOpExpr::Op::Add:
      Out = L + R;
      return true;
    case BinOpExpr::Op::Sub:
      Out = L - R;
      return true;
    case BinOpExpr::Op::Mul:
      Out = L * R;
      return true;
    case BinOpExpr::Op::Div:
      if (R == 0)
        return false;
      Out = L / R;
      return true;
    case BinOpExpr::Op::Mod:
      if (R == 0)
        return false;
      Out = L % R;
      return true;
    case BinOpExpr::Op::Lt:
      Out = L < R;
      return true;
    case BinOpExpr::Op::Le:
      Out = L <= R;
      return true;
    case BinOpExpr::Op::Gt:
      Out = L > R;
      return true;
    case BinOpExpr::Op::Ge:
      Out = L >= R;
      return true;
    case BinOpExpr::Op::Eq:
      Out = L == R;
      return true;
    }
    return false;
  }
  case Expr::Kind::Read:
    return false;
  }
  return false;
}

bool evalShapeDim(const ExprPtr &E, const std::map<std::string, int64_t> &Env,
                  int64_t &Out) {
  return evalIntExpr(E, Env, Out);
}

/// Samples sizes satisfying the preconditions (rejection sampling), then
/// allocates integer-filled tensors.
bool sampleInstance(const Proc &P, std::mt19937 &Rng, Instance &Out) {
  std::uniform_int_distribution<int64_t> SizeDist(1, 6);
  std::uniform_int_distribution<int> ValDist(-4, 4);

  for (int Attempt = 0; Attempt != 200; ++Attempt) {
    Out.Scalars.clear();
    Out.Tensors.clear();
    for (const Param &Pa : P.params()) {
      if (Pa.PKind == Param::Kind::Size)
        Out.Scalars[Pa.Name] = SizeDist(Rng) * 4; // Multiples help `% N == 0`.
      else if (Pa.PKind == Param::Kind::IndexVal)
        Out.Scalars[Pa.Name] = SizeDist(Rng) - 1;
    }
    // Leading-stride parameters must cover the row extent; pin them to the
    // dense stride plus slack after the other sizes are drawn.
    for (const Param &Pa : P.params()) {
      if (Pa.PKind != Param::Kind::Tensor || Pa.LeadStrideVar.empty())
        continue;
      int64_t Inner = 1;
      for (size_t D = 1; D < Pa.Shape.size(); ++D) {
        int64_t E;
        if (!evalShapeDim(Pa.Shape[D], Out.Scalars, E))
          return false;
        Inner *= E;
      }
      Out.Scalars[Pa.LeadStrideVar] =
          Inner + std::uniform_int_distribution<int64_t>(0, 3)(Rng);
    }
    // Check preconditions on sizes only.
    bool Ok = true;
    for (const ExprPtr &Pre : P.preconds()) {
      int64_t V;
      if (!evalIntExpr(Pre, Out.Scalars, V) || !V) {
        Ok = false;
        break;
      }
    }
    if (!Ok)
      continue;

    bool ShapesOk = true;
    for (const Param &Pa : P.params()) {
      if (Pa.PKind != Param::Kind::Tensor)
        continue;
      Instance::Tensor T;
      int64_t Total = 1;
      for (const ExprPtr &D : Pa.Shape) {
        int64_t E;
        if (!evalShapeDim(D, Out.Scalars, E) || E < 0) {
          ShapesOk = false;
          break;
        }
        T.Shape.push_back(E);
        Total *= E;
      }
      if (!ShapesOk)
        break;
      // Strided dim-0 tensors need (shape0-1)*stride + inner elements.
      int64_t Alloc = Total;
      if (!Pa.LeadStrideVar.empty() && !T.Shape.empty()) {
        int64_t Inner = T.Shape.empty() ? 1 : Total / std::max<int64_t>(T.Shape[0], 1);
        Alloc = (std::max<int64_t>(T.Shape[0], 1) - 1) *
                    Out.Scalars[Pa.LeadStrideVar] +
                Inner;
      }
      T.A.resize(static_cast<size_t>(std::max<int64_t>(Alloc, 1)));
      for (double &V : T.A)
        V = static_cast<double>(ValDist(Rng));
      T.B = T.A;
      Out.Tensors.emplace(Pa.Name, std::move(T));
    }
    if (ShapesOk)
      return true;
  }
  return false;
}

} // namespace

Error exo::checkProcsEquivalent(const Proc &P0, const Proc &P1, int Trials,
                                unsigned Seed) {
  if (P0.params().size() != P1.params().size())
    return errorf("signature arity changed (%zu vs %zu)", P0.params().size(),
                  P1.params().size());
  for (size_t I = 0; I != P0.params().size(); ++I)
    if (P0.params()[I].Name != P1.params()[I].Name ||
        P0.params()[I].PKind != P1.params()[I].PKind)
      return errorf("signature changed at parameter %zu", I);

  std::mt19937 Rng(Seed);
  for (int T = 0; T != Trials; ++T) {
    Instance Inst;
    if (!sampleInstance(P0, Rng, Inst))
      return errorf("could not sample an instantiation of '%s'",
                    P0.name().c_str());

    std::map<std::string, TensorArg> ArgsA, ArgsB;
    for (auto &[Name, Ten] : Inst.Tensors) {
      ArgsA[Name] = TensorArg{Ten.A.data(), Ten.Shape, -1};
      ArgsB[Name] = TensorArg{Ten.B.data(), Ten.Shape, -1};
    }
    if (Error Err = interpret(P0, Inst.Scalars, ArgsA))
      return errorf("baseline proc failed: %s", Err.message().c_str());
    if (Error Err = interpret(P1, Inst.Scalars, ArgsB))
      return errorf("rewritten proc failed: %s", Err.message().c_str());

    for (const Param &Pa : P0.params()) {
      if (Pa.PKind != Param::Kind::Tensor || !Pa.Mutable)
        continue;
      const auto &Ten = Inst.Tensors.at(Pa.Name);
      for (size_t I = 0; I != Ten.A.size(); ++I)
        if (Ten.A[I] != Ten.B[I])
          return errorf("results diverge in tensor '%s' at flat index %zu "
                        "(%g vs %g), trial %d",
                        Pa.Name.c_str(), I, Ten.A[I], Ten.B[I], T);
    }
  }
  return Error::success();
}

Error exo::validateRewrite(const Proc &Before, const Proc &After,
                           const SchedOptions &Opts, const char *PrimName) {
  if (!Opts.Validate)
    return Error::success();
  if (Before.params().size() != After.params().size())
    return Error::success(); // Signature-changing primitives validate ad hoc.
  if (Error Err = checkProcsEquivalent(Before, After, Opts.ValidationTrials,
                                       Opts.Seed))
    return errorf("%s: rewrite failed dynamic validation: %s", PrimName,
                  Err.message().c_str());
  return Error::success();
}
