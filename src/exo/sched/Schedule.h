//===- Schedule.h - Scheduling primitives ---------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing scheduling operations of the system — the C++ analogue of
/// the Exo directives the paper's user schedules are written in (its Figs.
/// 6-11): `partial_eval`, `divide_loop`, `reorder_loops`, `unroll_loop`,
/// `stage_mem`, `bind_expr`, `expand_dim`, `lift_alloc`, `autofission`,
/// `replace`, `set_memory`, `set_precision`.
///
/// Every primitive is a total function from a Proc to an Expected<Proc>; the
/// input proc is never modified. Two safety nets guard semantics:
///
///  1. `replace` only succeeds when the matched loop nest *unifies* with the
///     instruction's semantic definition (the paper's "security definition",
///     §II-B) — substituting an instruction that computes something else is
///     rejected statically.
///  2. With SchedOptions::Validate (default on), every structural rewrite is
///     additionally checked by running the reference interpreter on the proc
///     before and after the rewrite over random integer-valued inputs and
///     comparing results exactly. Rewrites whose full static legality check
///     would need value-based reasoning (fission across an accumulation
///     loop, allocation lifting) rely on this dynamic check, mirroring how
///     the original system discharges them with effect analysis.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SCHED_SCHEDULE_H
#define EXO_SCHED_SCHEDULE_H

#include "exo/ir/Proc.h"
#include "exo/support/Error.h"

#include <cstdint>
#include <map>

namespace exo {

/// Knobs controlling the rewrite safety net.
struct SchedOptions {
  /// Run interpreter-based equivalence validation after each rewrite.
  bool Validate = true;
  /// Number of random instantiations per validation.
  int ValidationTrials = 2;
  /// RNG seed for validation inputs.
  unsigned Seed = 0xC60;
};

/// The process-wide default options (tests may toggle).
SchedOptions &defaultSchedOptions();

/// Returns a copy of \p P under a new name (the paper's `rename`).
Proc renameProc(const Proc &P, std::string NewName);

/// Substitutes the given size parameters by constants and removes them from
/// the signature (the paper's `partial_eval`, Fig. 6).
Expected<Proc> partialEval(const Proc &P,
                           const std::map<std::string, int64_t> &Sizes);

/// Normalizes every index expression (affine canonical form, constant
/// folding). Semantically the identity.
Proc simplifyProc(const Proc &P);

/// Splits the loop matched by \p LoopPattern by \p Factor into
/// `Outer`/`Inner` (Fig. 7). With \p Perfect the trip count must be a
/// constant multiple of Factor; otherwise a tail loop is emitted.
Expected<Proc> divideLoop(const Proc &P, const std::string &LoopPattern,
                          int64_t Factor, const std::string &Outer,
                          const std::string &Inner, bool Perfect,
                          const SchedOptions &Opts = defaultSchedOptions());

/// Swaps the perfectly nested pair named by \p Pair, e.g. "jtt it" swaps
/// `for jtt: for it:` into `for it: for jtt:` (Fig. 10).
Expected<Proc> reorderLoops(const Proc &P, const std::string &Pair,
                            const SchedOptions &Opts = defaultSchedOptions());

/// Fully unrolls a constant-bound loop (Fig. 11).
Expected<Proc> unrollLoop(const Proc &P, const std::string &LoopPattern,
                          const SchedOptions &Opts = defaultSchedOptions());

/// Binds the matched read expression to a fresh scalar buffer \p NewName,
/// inserting `NewName = <expr>` before the containing statement (Fig. 9).
Expected<Proc> bindExpr(const Proc &P, const std::string &ExprPattern,
                        const std::string &NewName,
                        const SchedOptions &Opts = defaultSchedOptions());

/// Stages buffer \p Buf inside the statement matched by \p StmtPattern
/// through a fresh scalar buffer \p NewName: load before, store after when
/// the statement writes \p Buf (Fig. 8, scalar granularity).
Expected<Proc> stageMem(const Proc &P, const std::string &StmtPattern,
                        const std::string &Buf, const std::string &NewName,
                        const SchedOptions &Opts = defaultSchedOptions());

/// Prepends a dimension of extent \p Size to allocation \p Name; every
/// access gains leading index \p Index (Fig. 8/9 `expand_dim`).
Expected<Proc> expandDim(const Proc &P, const std::string &Name, ExprPtr Size,
                         ExprPtr Index,
                         const SchedOptions &Opts = defaultSchedOptions());

/// Moves the allocation \p Name out of up to \p NLifts enclosing loops.
Expected<Proc> liftAlloc(const Proc &P, const std::string &Name, int NLifts,
                         const SchedOptions &Opts = defaultSchedOptions());

/// Splits the bodies of up to \p NLifts enclosing loops at the gap
/// before/after the statement matched by \p StmtPattern, distributing each
/// loop over the two halves. A half that does not mention the loop variable
/// is emitted without the loop when the trip count is provably positive.
Expected<Proc> autofission(const Proc &P, const std::string &StmtPattern,
                           bool After, int NLifts,
                           const SchedOptions &Opts = defaultSchedOptions());

/// Replaces the loop nest matched by \p LoopPattern with a call to \p I.
/// Succeeds only when the nest unifies with the instruction's semantics;
/// the inferred windows/operands become the call arguments (Figs. 8-10).
Expected<Proc> replaceWithInstr(const Proc &P, const std::string &LoopPattern,
                                InstrPtr I,
                                const SchedOptions &Opts = defaultSchedOptions());

/// Splits the loop matched by \p LoopPattern at iteration \p Point into two
/// sequential loops over [lo, Point) and [Point, hi). Needed for non-
/// divisible tilings (the guard-free edge handling §III-B sketches).
Expected<Proc> cutLoop(const Proc &P, const std::string &LoopPattern,
                       int64_t Point,
                       const SchedOptions &Opts = defaultSchedOptions());

/// Merges the loop matched by \p LoopPattern with its immediately following
/// sibling, which must have identical bounds (the inverse of fission).
Expected<Proc> fuseLoops(const Proc &P, const std::string &LoopPattern,
                         const SchedOptions &Opts = defaultSchedOptions());

/// Deletes a loop whose body does not depend on the loop variable,
/// executing the body once. Requires a provably positive trip count.
Expected<Proc> removeLoop(const Proc &P, const std::string &LoopPattern,
                          const SchedOptions &Opts = defaultSchedOptions());

/// Re-homes allocation \p Name into \p Mem (Fig. 8 step 6).
Expected<Proc> setMemory(const Proc &P, const std::string &Name,
                         const MemSpace *Mem);

/// Changes the element type of buffer \p Name (§III-D).
Expected<Proc> setPrecision(const Proc &P, const std::string &Name,
                            ScalarKind Ty);

} // namespace exo

#endif // EXO_SCHED_SCHEDULE_H
