//===- Replace.cpp - Verified instruction substitution --------------------===//
//
// Implements the paper's `replace(p, 'for itt in _: _', instr)` directive.
// The matched loop nest is unified against the instruction's semantic body
// (its Fig. 3 `@instr` definition): loop variables map to loop variables,
// window parameters bind to buffer regions whose affine structure matches
// the instruction's access pattern, and index parameters (e.g. the lane of
// vfmaq_laneq) bind to index expressions. Only a successful unification may
// introduce a call — substituting an instruction that computes something
// else fails here, which is the "security definition" of §II-B.
//
//===----------------------------------------------------------------------===//

#include "exo/ir/Affine.h"
#include "exo/ir/Equal.h"
#include "exo/ir/Rewrite.h"
#include "exo/pattern/Cursor.h"
#include "exo/sched/Schedule.h"
#include "exo/sched/Validate.h"

#include <set>

using namespace exo;

namespace {

/// Renders a loop bound for diagnostics.
std::string printableBound(const ExprPtr &E) {
  if (auto C = tryConstFold(E))
    return std::to_string(*C);
  return std::string("<expr>");
}

/// One bound window parameter: the target buffer and, per target dimension,
/// either a point expression or the interval produced by the mapped
/// instruction index.
struct WindowBind {
  std::string Buf;
  std::vector<WindowDim> Dims;
};

/// Unification state. Copied wholesale to support backtracking across the
/// commutative-operand alternative.
struct UState {
  /// Instruction loop var -> target loop var.
  std::map<std::string, std::string> LoopMap;
  /// Instruction index param -> target index expression.
  std::map<std::string, ExprPtr> ScalarBind;
  std::map<std::string, WindowBind> Windows;
};

class Unifier {
public:
  Unifier(const Proc &Target, const Instr &I,
          const std::map<std::string, std::pair<int64_t, int64_t>> &Ranges)
      : Target(Target), I(I), Sem(I.semantics()), Ranges(Ranges) {}

  Error unifyFor(const ForStmt *SF, const ForStmt *TF);

  /// Builds the call arguments in parameter order after unification.
  Expected<std::vector<CallArg>> buildArgs();

private:
  Error unifyBody(const std::vector<StmtPtr> &SB,
                  const std::vector<StmtPtr> &TB);
  Error unifyStmt(const StmtPtr &Ss, const StmtPtr &Ts);
  Error unifyExpr(const ExprPtr &Se, const ExprPtr &Te);
  Error unifyAccess(const Param &P, const std::vector<ExprPtr> &SIdx,
                    const std::string &TBuf, const std::vector<ExprPtr> &TIdx,
                    bool IsWrite);

  /// Substitutes current bindings into an instruction-side expression.
  ExprPtr substSem(const ExprPtr &E) const;

  /// Loop range of a target variable when constant, from context + descent.
  std::optional<std::pair<int64_t, int64_t>> rangeOf(const std::string &V) const {
    auto It = Ranges.find(V);
    if (It == Ranges.end())
      return std::nullopt;
    return It->second;
  }

  const Proc &Target;
  const Instr &I;
  const Proc &Sem;
  std::map<std::string, std::pair<int64_t, int64_t>> Ranges;
  UState St;
};

ExprPtr Unifier::substSem(const ExprPtr &E) const {
  std::map<std::string, ExprPtr> Map;
  for (const auto &[SV, TV] : St.LoopMap)
    Map[SV] = var(TV);
  for (const auto &[SP, TE] : St.ScalarBind)
    Map[SP] = TE;
  return substVars(E, Map);
}

Error Unifier::unifyFor(const ForStmt *SF, const ForStmt *TF) {
  if (!exprEquiv(substSem(SF->lo()), TF->lo()) ||
      !exprEquiv(substSem(SF->hi()), TF->hi()))
    return errorf("loop bounds differ: instruction wants seq(%s, %s)",
                  printableBound(SF->lo()).c_str(),
                  printableBound(SF->hi()).c_str());
  St.LoopMap[SF->loopVar()] = TF->loopVar();
  auto Lo = tryConstFold(TF->lo());
  auto Hi = tryConstFold(TF->hi());
  if (Lo && Hi)
    Ranges[TF->loopVar()] = {*Lo, *Hi};
  return unifyBody(SF->body(), TF->body());
}

Error Unifier::unifyBody(const std::vector<StmtPtr> &SB,
                         const std::vector<StmtPtr> &TB) {
  if (SB.size() != TB.size())
    return errorf("statement counts differ (%zu vs %zu)", SB.size(),
                  TB.size());
  for (size_t K = 0; K != SB.size(); ++K)
    if (Error Err = unifyStmt(SB[K], TB[K]))
      return Err;
  return Error::success();
}

Error Unifier::unifyStmt(const StmtPtr &Ss, const StmtPtr &Ts) {
  if (Ss->kind() != Ts->kind())
    return errorf("statement kinds differ");
  switch (Ss->kind()) {
  case Stmt::Kind::For:
    return unifyFor(castS<ForStmt>(Ss), castS<ForStmt>(Ts));
  case Stmt::Kind::Assign: {
    const auto *SA = castS<AssignStmt>(Ss);
    const auto *TA = castS<AssignStmt>(Ts);
    if (SA->isReduce() != TA->isReduce())
      return errorf("assignment/reduction mismatch");
    const Param *P = Sem.findParam(SA->buffer());
    if (!P || P->PKind != Param::Kind::Tensor)
      return errorf("instruction writes non-parameter '%s'",
                    SA->buffer().c_str());
    if (Error Err = unifyAccess(*P, SA->indices(), TA->buffer(),
                                TA->indices(), /*IsWrite=*/true))
      return Err;
    return unifyExpr(SA->rhs(), TA->rhs());
  }
  default:
    return errorf("unsupported statement in instruction body");
  }
}

Error Unifier::unifyExpr(const ExprPtr &Se, const ExprPtr &Te) {
  switch (Se->kind()) {
  case Expr::Kind::Const:
    if (!exprEquiv(Se, Te))
      return errorf("constant mismatch");
    return Error::success();
  case Expr::Kind::Var: {
    const std::string &Name = cast<VarExpr>(Se)->name();
    auto LIt = St.LoopMap.find(Name);
    if (LIt != St.LoopMap.end()) {
      if (!exprEquiv(var(LIt->second), Te))
        return errorf("loop variable use mismatch");
      return Error::success();
    }
    const Param *P = Sem.findParam(Name);
    if (P && P->PKind != Param::Kind::Tensor) {
      auto BIt = St.ScalarBind.find(Name);
      if (BIt != St.ScalarBind.end()) {
        if (!exprEquiv(BIt->second, Te))
          return errorf("inconsistent binding for '%s'", Name.c_str());
        return Error::success();
      }
      if (Te->type() != ScalarKind::Index)
        return errorf("index parameter '%s' bound to a value expression",
                      Name.c_str());
      St.ScalarBind[Name] = Te;
      return Error::success();
    }
    return errorf("unbound instruction variable '%s'", Name.c_str());
  }
  case Expr::Kind::Read: {
    const auto *SR = cast<ReadExpr>(Se);
    const Param *P = Sem.findParam(SR->buffer());
    if (!P || P->PKind != Param::Kind::Tensor)
      return errorf("instruction reads unknown buffer '%s'",
                    SR->buffer().c_str());
    const auto *TR = dyn_cast<ReadExpr>(Te);
    if (!TR)
      return errorf("expected a buffer read for '%s'", SR->buffer().c_str());
    return unifyAccess(*P, SR->indices(), TR->buffer(), TR->indices(),
                       /*IsWrite=*/false);
  }
  case Expr::Kind::USub: {
    const auto *TU = dyn_cast<USubExpr>(Te);
    if (!TU)
      return errorf("negation shape mismatch");
    return unifyExpr(cast<USubExpr>(Se)->operand(), TU->operand());
  }
  case Expr::Kind::BinOp: {
    const auto *SB = cast<BinOpExpr>(Se);
    const auto *TB = dyn_cast<BinOpExpr>(Te);
    if (!TB || SB->op() != TB->op())
      return errorf("operator mismatch");
    UState Snapshot = St;
    Error Direct = [&] {
      if (Error Err = unifyExpr(SB->lhs(), TB->lhs()))
        return Err;
      return unifyExpr(SB->rhs(), TB->rhs());
    }();
    if (!Direct)
      return Error::success();
    bool Comm = SB->op() == BinOpExpr::Op::Add ||
                SB->op() == BinOpExpr::Op::Mul;
    if (!Comm)
      return Direct;
    St = std::move(Snapshot);
    if (Error Err = unifyExpr(SB->lhs(), TB->rhs()))
      return Err;
    return unifyExpr(SB->rhs(), TB->lhs());
  }
  }
  return errorf("unknown expression kind in instruction body");
}

Error Unifier::unifyAccess(const Param &P, const std::vector<ExprPtr> &SIdx,
                           const std::string &TBuf,
                           const std::vector<ExprPtr> &TIdx, bool IsWrite) {
  if (SIdx.size() != P.Shape.size())
    return errorf("instruction access rank mismatch for '%s'",
                  P.Name.c_str());
  auto TInfo = Target.findBuffer(TBuf);
  if (!TInfo)
    return errorf("target buffer '%s' not found", TBuf.c_str());
  if (IsWrite && P.Mutable && !TInfo->Mutable)
    return errorf("instruction writes read-only buffer '%s'", TBuf.c_str());

  // Linearize the target indices.
  std::vector<LinExpr> TLin;
  TLin.reserve(TIdx.size());
  for (const ExprPtr &E : TIdx) {
    auto L = linearize(E);
    if (!L)
      return errorf("non-affine index into '%s'", TBuf.c_str());
    TLin.push_back(*L);
  }

  std::vector<WindowDim> Dims(TIdx.size());
  std::vector<bool> Consumed(TIdx.size(), false);

  // First pass: instruction indices that are (mapped) loop variables pick
  // the unique target dimension where that variable occurs.
  struct Pending {
    size_t SDim;
    int64_t Extent;
  };
  std::vector<Pending> Free; // Indices with no loop variable (params/consts).
  for (size_t J = 0; J != SIdx.size(); ++J) {
    auto SL = linearize(SIdx[J]);
    if (!SL)
      return errorf("non-affine access in instruction body");
    auto Extent = tryConstFold(P.Shape[J]);
    if (!Extent)
      return errorf("instruction window '%s' needs constant extents",
                    P.Name.c_str());

    // Find a loop variable inside the instruction index.
    std::string SLoopVar;
    for (const auto &[V, K] : SL->Coeffs)
      if (St.LoopMap.count(V)) {
        if (!SLoopVar.empty())
          return errorf("two loop variables in one instruction index");
        if (K != 1)
          return errorf("instruction index uses a strided loop variable");
        SLoopVar = V;
      }
    if (SLoopVar.empty()) {
      Free.push_back({J, *Extent});
      continue;
    }
    const std::string &TVar = St.LoopMap[SLoopVar];
    int Candidate = -1;
    for (size_t D = 0; D != TLin.size(); ++D) {
      if (TLin[D].coeff(TVar) == 0)
        continue;
      if (Candidate >= 0)
        return errorf("loop variable '%s' appears in several dimensions of "
                      "'%s'",
                      TVar.c_str(), TBuf.c_str());
      Candidate = static_cast<int>(D);
    }
    if (Candidate < 0)
      return errorf("loop variable '%s' does not index '%s'", TVar.c_str(),
                    TBuf.c_str());
    if (TLin[Candidate].coeff(TVar) != 1)
      return errorf("loop variable '%s' is strided in '%s'", TVar.c_str(),
                    TBuf.c_str());
    if (Consumed[Candidate])
      return errorf("two instruction indices map to one dimension of '%s'",
                    TBuf.c_str());
    // lo = target index with the loop term removed, shifted by the
    // instruction-side base (SIdx = v + base => lo = e_d - base).
    LinExpr LoL = TLin[Candidate];
    LoL.Coeffs.erase(TVar);
    LinExpr Base = *SL;
    Base.Coeffs.erase(SLoopVar);
    // Remaining instruction-side base must be a constant offset.
    if (!Base.Coeffs.empty())
      return errorf("instruction index mixes loop variable and parameters");
    LoL.Const -= Base.Const;
    Dims[Candidate] = WindowDim::interval(fromLinear(LoL), idx(*Extent));
    Consumed[Candidate] = true;
  }

  // Second pass: parameter/constant indices take the remaining target
  // dimensions from the innermost (last) outwards.
  for (auto It = Free.rbegin(); It != Free.rend(); ++It) {
    int Candidate = -1;
    for (int D = static_cast<int>(TLin.size()) - 1; D >= 0; --D)
      if (!Consumed[D]) {
        Candidate = D;
        break;
      }
    if (Candidate < 0)
      return errorf("instruction window rank exceeds target rank for '%s'",
                    TBuf.c_str());
    Consumed[Candidate] = true;

    const ExprPtr &SIdxE = SIdx[It->SDim];
    auto SL = linearize(SIdxE);
    if (!SL)
      return errorf("non-affine access in instruction body");
    // Split the instruction index into an index-parameter part and const.
    std::string ParamVar;
    for (const auto &[V, K] : SL->Coeffs) {
      if (K != 1 || !ParamVar.empty())
        return errorf("unsupported instruction index form");
      ParamVar = V;
    }
    const LinExpr &TD = TLin[Candidate];
    if (ParamVar.empty()) {
      // Constant instruction index c: window lo = e_d - c.
      LinExpr LoL = TD;
      LoL.Const -= SL->Const;
      Dims[Candidate] = WindowDim::interval(fromLinear(LoL), idx(It->Extent));
      continue;
    }
    // Index parameter: find a target variable with unit coefficient whose
    // loop range is exactly [0, extent); it becomes the lane expression.
    auto BIt = St.ScalarBind.find(ParamVar);
    if (BIt != St.ScalarBind.end()) {
      // Already bound: lo = e_d - bound - const.
      auto BL = linearize(BIt->second);
      if (!BL)
        return errorf("non-affine lane binding");
      LinExpr LoL = TD;
      LoL -= *BL;
      LoL.Const -= SL->Const;
      Dims[Candidate] = WindowDim::interval(fromLinear(LoL), idx(It->Extent));
      continue;
    }
    std::string LaneVar;
    for (const auto &[V, K] : TD.Coeffs) {
      if (K != 1)
        continue;
      auto R = rangeOf(V);
      if (R && R->first == 0 && R->second == It->Extent) {
        LaneVar = V;
        break;
      }
    }
    LinExpr LoL = TD;
    LinExpr LaneL;
    if (!LaneVar.empty()) {
      LoL.Coeffs.erase(LaneVar);
      LaneL.Coeffs[LaneVar] = 1;
    } else {
      // No in-range variable: the whole expression is the lane, lo = 0.
      LaneL = TD;
      LoL = LinExpr();
    }
    LoL.Const -= SL->Const;
    St.ScalarBind[ParamVar] = fromLinear(LaneL);
    Dims[Candidate] = WindowDim::interval(fromLinear(LoL), idx(It->Extent));
  }

  // Unconsumed target dimensions become points; they must not mention any
  // mapped loop variable.
  std::set<std::string> MappedTVars;
  for (const auto &[SV, TV] : St.LoopMap)
    MappedTVars.insert(TV);
  for (size_t D = 0; D != TLin.size(); ++D) {
    if (Consumed[D])
      continue;
    for (const auto &[V, K] : TLin[D].Coeffs)
      if (MappedTVars.count(V))
        return errorf("dimension %zu of '%s' mixes the vectorized loop "
                      "variable into a point index",
                      D, TBuf.c_str());
    Dims[D] = WindowDim::point(fromLinear(TLin[D]));
  }

  // Contiguity: the interval must lie in the last dimension (unit stride
  // both in DRAM layout and in the register-file lowering).
  for (size_t D = 0; D != Dims.size(); ++D) {
    if (Dims[D].isPoint())
      continue;
    if (D + 1 != Dims.size())
      return errorf("window into '%s' is not unit-stride (interval must be "
                    "the last dimension)",
                    TBuf.c_str());
    if (TInfo->Mem->isRegisterFile()) {
      auto Lo = tryConstFold(Dims[D].Lo);
      auto Len = tryConstFold(Dims[D].Len);
      auto Extent = tryConstFold(TInfo->Shape.back());
      if (!Lo || *Lo != 0 || !Len || !Extent || *Len != *Extent)
        return errorf("register window into '%s' must span the whole lane "
                      "dimension",
                      TBuf.c_str());
    }
  }

  // Record or check the binding.
  auto WIt = St.Windows.find(P.Name);
  if (WIt == St.Windows.end()) {
    St.Windows.emplace(P.Name, WindowBind{TBuf, std::move(Dims)});
    return Error::success();
  }
  const WindowBind &Old = WIt->second;
  if (Old.Buf != TBuf || Old.Dims.size() != Dims.size())
    return errorf("inconsistent window binding for '%s'", P.Name.c_str());
  for (size_t D = 0; D != Dims.size(); ++D) {
    const WindowDim &A = Old.Dims[D];
    const WindowDim &B = Dims[D];
    if (A.isPoint() != B.isPoint())
      return errorf("inconsistent window shape for '%s'", P.Name.c_str());
    bool Same = A.isPoint() ? exprEquiv(A.Point, B.Point)
                            : (exprEquiv(A.Lo, B.Lo) && exprEquiv(A.Len, B.Len));
    if (!Same)
      return errorf("inconsistent window region for '%s'", P.Name.c_str());
  }
  return Error::success();
}

Expected<std::vector<CallArg>> Unifier::buildArgs() {
  std::vector<CallArg> Args;
  for (const Param &P : Sem.params()) {
    if (P.PKind == Param::Kind::Tensor) {
      auto It = St.Windows.find(P.Name);
      if (It == St.Windows.end())
        return errorf("instruction parameter '%s' was never used",
                      P.Name.c_str());
      Args.push_back(CallArg::window(It->second.Buf, It->second.Dims));
      continue;
    }
    auto It = St.ScalarBind.find(P.Name);
    if (It == St.ScalarBind.end())
      return errorf("instruction index parameter '%s' was never bound",
                    P.Name.c_str());
    Args.push_back(CallArg::scalar(It->second));
  }
  return Args;
}

} // namespace

Expected<Proc> exo::replaceWithInstr(const Proc &P,
                                     const std::string &LoopPattern,
                                     InstrPtr I, const SchedOptions &Opts) {
  auto PathOr = findStmt(P, LoopPattern);
  if (!PathOr)
    return PathOr.takeError();
  const auto *TF = dyn_castS<ForStmt>(stmtAt(P, *PathOr));
  if (!TF)
    return errorf("replace: pattern '%s' is not a loop", LoopPattern.c_str());

  const Proc &Sem = I->semantics();
  if (Sem.body().size() != 1 || !isaS<ForStmt>(Sem.body()[0]))
    return errorf("replace: instruction '%s' body is not a single loop",
                  I->name().c_str());

  // Constant ranges of enclosing target loops (lane inference needs them).
  std::map<std::string, std::pair<int64_t, int64_t>> Ranges;
  for (const ForStmt *F : enclosingLoops(P, *PathOr)) {
    auto Lo = tryConstFold(F->lo());
    auto Hi = tryConstFold(F->hi());
    if (Lo && Hi)
      Ranges[F->loopVar()] = {*Lo, *Hi};
  }

  Unifier U(P, *I, Ranges);
  if (Error Err = U.unifyFor(castS<ForStmt>(Sem.body()[0]), TF))
    return errorf("replace with '%s' failed: %s", I->name().c_str(),
                  Err.message().c_str());
  auto ArgsOr = U.buildArgs();
  if (!ArgsOr)
    return errorf("replace with '%s' failed: %s", I->name().c_str(),
                  ArgsOr.message().c_str());

  Proc Out = spliceAt(P, *PathOr, {CallStmt::make(I, ArgsOr.take())});
  if (Error Err = validateRewrite(P, Out, Opts, "replace"))
    return Err;
  return Out;
}
