//===- LoopXforms.cpp - divide/reorder/unroll/fission ---------------------===//

#include "exo/ir/Affine.h"
#include "exo/ir/Rewrite.h"
#include "exo/pattern/Cursor.h"
#include "exo/sched/Schedule.h"
#include "exo/sched/Validate.h"
#include "exo/support/Str.h"

#include <set>

using namespace exo;

namespace {

/// True when \p E (an extent) is provably >= 1 given that size parameters
/// are >= 1: all coefficients non-negative and minimum value (every size at
/// 1) positive.
bool provablyPositive(const ExprPtr &E) {
  auto L = linearize(E);
  if (!L)
    return false;
  int64_t Min = L->Const;
  for (const auto &[V, K] : L->Coeffs) {
    if (K < 0)
      return false;
    Min += K;
  }
  return Min >= 1;
}

/// Checks that \p Name is fresh (no loop var, param, or alloc collides).
Error checkFreshName(const Proc &P, const std::string &Name) {
  if (P.findParam(Name))
    return errorf("name '%s' collides with a parameter", Name.c_str());
  std::set<std::string> Used;
  collectLoopVars(P.body(), Used);
  collectAllocNames(P.body(), Used);
  if (Used.count(Name))
    return errorf("name '%s' is already used in '%s'", Name.c_str(),
                  P.name().c_str());
  return Error::success();
}

/// Folds every index expression in \p Body (after substitutions).
std::vector<StmtPtr> foldBody(const std::vector<StmtPtr> &Body) {
  std::vector<StmtPtr> Out;
  Out.reserve(Body.size());
  for (const StmtPtr &S : Body)
    Out.push_back(rewriteStmtExprs(
        S, [](const ExprPtr &E) -> ExprPtr { return foldExpr(E); }));
  return Out;
}

} // namespace

Expected<Proc> exo::divideLoop(const Proc &P, const std::string &LoopPattern,
                               int64_t Factor, const std::string &Outer,
                               const std::string &Inner, bool Perfect,
                               const SchedOptions &Opts) {
  if (Factor <= 0)
    return errorf("divide_loop: factor must be positive");
  auto PathOr = findStmt(P, LoopPattern);
  if (!PathOr)
    return PathOr.takeError();
  const auto *F = dyn_castS<ForStmt>(stmtAt(P, *PathOr));
  if (!F)
    return errorf("divide_loop: pattern '%s' is not a loop",
                  LoopPattern.c_str());
  if (Error Err = checkFreshName(P, Outer))
    return errorf("divide_loop: %s", Err.message().c_str());
  if (Error Err = checkFreshName(P, Inner))
    return errorf("divide_loop: %s", Err.message().c_str());

  auto Lo = tryConstFold(F->lo());
  auto Hi = tryConstFold(F->hi());
  if (!Lo || *Lo != 0)
    return errorf("divide_loop: loop '%s' must start at 0",
                  F->loopVar().c_str());
  if (!Hi)
    return errorf("divide_loop: loop '%s' needs a constant trip count "
                  "(apply partial_eval first)",
                  F->loopVar().c_str());
  int64_t N = *Hi;
  if (Perfect && N % Factor != 0)
    return errorf("divide_loop: %lld iterations not divisible by %lld",
                  static_cast<long long>(N), static_cast<long long>(Factor));

  const std::string &V = F->loopVar();
  std::map<std::string, ExprPtr> Subst{
      {V, idx(Factor) * var(Outer) + var(Inner)}};
  StmtPtr Main = ForStmt::make(
      Outer, idx(0), idx(N / Factor),
      {ForStmt::make(Inner, idx(0), idx(Factor),
                     foldBody(substVarsBody(F->body(), Subst)))});

  std::vector<StmtPtr> Repl{Main};
  if (!Perfect && N % Factor != 0) {
    // Tail loop covering [Factor*(N/Factor), N).
    std::map<std::string, ExprPtr> TailSubst{
        {V, idx(Factor * (N / Factor)) + var(Inner)}};
    Repl.push_back(ForStmt::make(
        Inner, idx(0), idx(N % Factor),
        foldBody(substVarsBody(F->body(), TailSubst))));
  }

  Proc Out = spliceAt(P, *PathOr, std::move(Repl));
  if (Error Err = validateRewrite(P, Out, Opts, "divide_loop"))
    return Err;
  return Out;
}

Expected<Proc> exo::reorderLoops(const Proc &P, const std::string &Pair,
                                 const SchedOptions &Opts) {
  std::vector<std::string> Names = split(Pair, ' ');
  std::string Occurrence;
  if (Names.size() == 3 && Names[2].size() > 1 && Names[2][0] == '#') {
    Occurrence = " " + Names[2];
    Names.pop_back();
  }
  if (Names.size() != 2)
    return errorf("reorder_loops: expected 'outer inner [#k]', got '%s'",
                  Pair.c_str());
  auto PathOr = findStmt(P, "for " + Names[0] + " in _: _" + Occurrence);
  if (!PathOr)
    return PathOr.takeError();
  const auto *FOut = castS<ForStmt>(stmtAt(P, *PathOr));
  if (FOut->body().size() != 1)
    return errorf("reorder_loops: loop '%s' body is not a single loop",
                  Names[0].c_str());
  const auto *FIn = dyn_castS<ForStmt>(FOut->body()[0]);
  if (!FIn || FIn->loopVar() != Names[1])
    return errorf("reorder_loops: loop '%s' is not immediately inside '%s'",
                  Names[1].c_str(), Names[0].c_str());

  // Inner bounds must not depend on the outer variable.
  std::set<std::string> BoundVars;
  collectVars(FIn->lo(), BoundVars);
  collectVars(FIn->hi(), BoundVars);
  if (BoundVars.count(FOut->loopVar()))
    return errorf("reorder_loops: inner bounds depend on '%s'",
                  FOut->loopVar().c_str());

  StmtPtr Swapped = ForStmt::make(
      FIn->loopVar(), FIn->lo(), FIn->hi(),
      {ForStmt::make(FOut->loopVar(), FOut->lo(), FOut->hi(), FIn->body())});
  Proc Out = spliceAt(P, *PathOr, {Swapped});
  if (Error Err = validateRewrite(P, Out, Opts, "reorder_loops"))
    return Err;
  return Out;
}

Expected<Proc> exo::unrollLoop(const Proc &P, const std::string &LoopPattern,
                               const SchedOptions &Opts) {
  auto PathOr = findStmt(P, LoopPattern);
  if (!PathOr)
    return PathOr.takeError();
  const auto *F = dyn_castS<ForStmt>(stmtAt(P, *PathOr));
  if (!F)
    return errorf("unroll_loop: pattern '%s' is not a loop",
                  LoopPattern.c_str());
  auto Lo = tryConstFold(F->lo());
  auto Hi = tryConstFold(F->hi());
  if (!Lo || !Hi)
    return errorf("unroll_loop: loop '%s' needs constant bounds",
                  F->loopVar().c_str());
  if (*Hi - *Lo > 64)
    return errorf("unroll_loop: refusing to unroll %lld iterations",
                  static_cast<long long>(*Hi - *Lo));

  std::vector<StmtPtr> Repl;
  for (int64_t I = *Lo; I < *Hi; ++I) {
    std::map<std::string, ExprPtr> Subst{{F->loopVar(), idx(I)}};
    for (StmtPtr S : foldBody(substVarsBody(F->body(), Subst)))
      Repl.push_back(std::move(S));
  }
  Proc Out = spliceAt(P, *PathOr, std::move(Repl));
  if (Error Err = validateRewrite(P, Out, Opts, "unroll_loop"))
    return Err;
  return Out;
}

Expected<Proc> exo::autofission(const Proc &P, const std::string &StmtPattern,
                                bool After, int NLifts,
                                const SchedOptions &Opts) {
  auto PathOr = findStmt(P, StmtPattern);
  if (!PathOr)
    return PathOr.takeError();

  Proc Cur = P;
  // The gap lives in the statement list owned by OwnerPath, at index GapIdx
  // (statements [0, GapIdx) are before the gap).
  StmtPath OwnerPath = PathOr->parent();
  int GapIdx = PathOr->lastIndex() + (After ? 1 : 0);

  for (int Lift = 0; Lift != NLifts && !OwnerPath.Steps.empty(); ++Lift) {
    const auto *F = castS<ForStmt>(stmtAt(Cur, OwnerPath));
    const std::vector<StmtPtr> &B = F->body();
    assert(GapIdx >= 0 && static_cast<size_t>(GapIdx) <= B.size());

    if (GapIdx == 0) {
      // Gap is already at the top of this loop; it moves before the loop.
      GapIdx = OwnerPath.lastIndex();
      OwnerPath = OwnerPath.parent();
      continue;
    }
    if (static_cast<size_t>(GapIdx) == B.size()) {
      GapIdx = OwnerPath.lastIndex() + 1;
      OwnerPath = OwnerPath.parent();
      continue;
    }

    std::vector<StmtPtr> H1(B.begin(), B.begin() + GapIdx);
    std::vector<StmtPtr> H2(B.begin() + GapIdx, B.end());
    bool TripPos = provablyPositive(F->hi() - F->lo());

    // Emit a half without its loop when it does not mention the loop
    // variable and the loop provably runs at least once.
    auto EmitHalf = [&](std::vector<StmtPtr> Half,
                        std::vector<StmtPtr> &Out) -> int {
      if (!bodyMentionsVar(Half, F->loopVar()) && TripPos) {
        int N = static_cast<int>(Half.size());
        for (StmtPtr &S : Half)
          Out.push_back(std::move(S));
        return N;
      }
      Out.push_back(
          ForStmt::make(F->loopVar(), F->lo(), F->hi(), std::move(Half)));
      return 1;
    };

    std::vector<StmtPtr> Repl;
    int Len1 = EmitHalf(std::move(H1), Repl);
    EmitHalf(std::move(H2), Repl);

    int OwnerIdx = OwnerPath.lastIndex();
    StmtPath Parent = OwnerPath.parent();
    Cur = spliceAt(Cur, OwnerPath, std::move(Repl));
    // The gap now separates the two emitted groups in the parent list.
    OwnerPath = Parent;
    GapIdx = OwnerIdx + Len1;
  }

  if (Error Err = validateRewrite(P, Cur, Opts, "autofission"))
    return Err;
  return Cur;
}
