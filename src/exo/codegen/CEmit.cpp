//===- CEmit.cpp ----------------------------------------------------------===//

#include "exo/codegen/CEmit.h"

#include "exo/ir/Affine.h"
#include "exo/ir/Printer.h"
#include "exo/support/Str.h"

#include <map>

using namespace exo;

namespace {

/// What code generation knows about one visible buffer.
struct CgBuffer {
  ScalarKind Ty = ScalarKind::F32;
  const MemSpace *Mem = nullptr;
  std::vector<ExprPtr> Shape;
  /// C expressions for per-dimension strides (element units). Register-file
  /// buffers store strides over the *array* dimensions only (lane dimension
  /// folded away).
  std::vector<std::string> Strides;
  bool Rank0 = false;
};

class CEmitter {
public:
  CEmitter(const Proc &P, const CodegenOptions &Opts) : P(P), Opts(Opts) {}

  Expected<std::string> emitFunction();

private:
  Error declareParams(std::string &Sig);
  Error declareBuffer(const std::string &Name, ScalarKind Ty,
                      const std::vector<ExprPtr> &Shape, const MemSpace *Mem,
                      const std::string &LeadStrideVar);
  Error emitBody(const std::vector<StmtPtr> &Body, int Indent);
  Error emitStmt(const StmtPtr &S, int Indent);
  Error emitCall(const CallStmt &C, int Indent);

  /// C expression for one scalar element access.
  Expected<std::string> accessExpr(const std::string &Buf,
                                   const std::vector<ExprPtr> &Idx);
  /// C "data expression" for a window argument (see Instr::cFormat).
  Expected<std::string> windowDataExpr(const CallArg &A);

  /// Index expressions contain no reads; the Exo printer's output is valid
  /// C for them.
  std::string exprToC(const ExprPtr &E) { return printExpr(E); }

  /// Value expressions may read buffers, which must lower through
  /// accessExpr (flattened strides), so they get their own printer.
  Expected<std::string> valueToC(const ExprPtr &E, int ParentPrec = 0);

  void line(int Indent, const std::string &Text) {
    Out.append(static_cast<size_t>(Indent) * 4, ' ');
    Out += Text;
    Out += "\n";
  }

  const Proc &P;
  const CodegenOptions &Opts;
  std::map<std::string, CgBuffer> Bufs;
  std::string Out;
};

/// Builds per-dimension stride expressions for a dense row-major layout.
/// Constant suffix products fold to literals.
std::vector<std::string> denseStrides(const std::vector<ExprPtr> &Shape) {
  std::vector<std::string> S(Shape.size());
  if (Shape.empty())
    return S;
  S.back() = "1";
  // Accumulate the symbolic product right-to-left.
  ExprPtr Prod = idx(1);
  for (int D = static_cast<int>(Shape.size()) - 2; D >= 0; --D) {
    Prod = foldExpr(Prod * Shape[D + 1]);
    if (auto C = tryConstFold(Prod))
      S[D] = std::to_string(*C);
    else
      S[D] = "(" + printExpr(Prod) + ")";
  }
  return S;
}

Error CEmitter::declareBuffer(const std::string &Name, ScalarKind Ty,
                              const std::vector<ExprPtr> &Shape,
                              const MemSpace *Mem,
                              const std::string &LeadStrideVar) {
  CgBuffer B;
  B.Ty = Ty;
  B.Mem = Mem;
  B.Shape = Shape;
  B.Rank0 = Shape.empty();
  if (Mem->isRegisterFile()) {
    if (!Mem->supports(Ty))
      return errorf("buffer '%s': space '%s' does not hold %s", Name.c_str(),
                    Mem->name().c_str(), scalarKindName(Ty));
    unsigned Lanes = Mem->lanes(Ty);
    if (Shape.empty())
      return errorf("register buffer '%s' needs a lane dimension",
                    Name.c_str());
    auto Last = tryConstFold(Shape.back());
    if (!Last || *Last != static_cast<int64_t>(Lanes))
      return errorf("register buffer '%s': innermost extent must equal the "
                    "vector width %u",
                    Name.c_str(), Lanes);
    std::vector<ExprPtr> ArrayDims(Shape.begin(), Shape.end() - 1);
    B.Strides = denseStrides(ArrayDims);
  } else {
    B.Strides = denseStrides(Shape);
    if (!LeadStrideVar.empty()) {
      if (Shape.size() < 1)
        return errorf("lead stride on rank-0 buffer '%s'", Name.c_str());
      B.Strides[0] = LeadStrideVar;
    }
  }
  Bufs[Name] = std::move(B);
  return Error::success();
}

Expected<std::string> CEmitter::accessExpr(const std::string &Buf,
                                           const std::vector<ExprPtr> &Idx) {
  auto It = Bufs.find(Buf);
  if (It == Bufs.end())
    return errorf("codegen: unknown buffer '%s'", Buf.c_str());
  const CgBuffer &B = It->second;
  if (B.Rank0)
    return Buf;
  if (!B.Mem->isRegisterFile()) {
    if (Idx.size() != B.Shape.size())
      return errorf("codegen: rank mismatch accessing '%s'", Buf.c_str());
    // name[(i0)*s0 + ... + in]
    std::vector<std::string> Terms;
    for (size_t D = 0; D != Idx.size(); ++D) {
      std::string I = exprToC(foldExpr(Idx[D]));
      if (B.Strides[D] == "1")
        Terms.push_back(I);
      else if (I == "0")
        continue;
      else
        Terms.push_back("(" + I + ") * " + B.Strides[D]);
    }
    if (Terms.empty())
      Terms.push_back("0");
    return Buf + "[" + join(Terms, " + ") + "]";
  }
  // Register file: scalar access name[a0][a1]...[lane] (GNU C vector
  // subscripting). The final index is the lane.
  if (Idx.size() != B.Shape.size())
    return errorf("codegen: rank mismatch accessing register '%s'",
                  Buf.c_str());
  std::string S = Buf;
  for (const ExprPtr &I : Idx)
    S += "[" + exprToC(foldExpr(I)) + "]";
  return S;
}

Expected<std::string> CEmitter::windowDataExpr(const CallArg &A) {
  auto It = Bufs.find(A.Buf);
  if (It == Bufs.end())
    return errorf("codegen: unknown buffer '%s' in call", A.Buf.c_str());
  const CgBuffer &B = It->second;
  if (B.Rank0)
    return A.Buf;
  if (!B.Mem->isRegisterFile()) {
    // Element expression at the window origin.
    std::vector<ExprPtr> Origin;
    Origin.reserve(A.Dims.size());
    for (const WindowDim &D : A.Dims)
      Origin.push_back(D.isPoint() ? D.Point : D.Lo);
    return accessExpr(A.Buf, Origin);
  }
  // Register file: point dims index the array part; the interval must be
  // the lane dimension, already folded into the vector type.
  if (A.Dims.size() != B.Shape.size())
    return errorf("codegen: window rank mismatch for register '%s'",
                  A.Buf.c_str());
  std::string S = A.Buf;
  for (size_t D = 0; D + 1 < A.Dims.size(); ++D) {
    if (!A.Dims[D].isPoint())
      return errorf("codegen: register window '%s' has a non-lane interval",
                    A.Buf.c_str());
    S += "[" + exprToC(foldExpr(A.Dims[D].Point)) + "]";
  }
  if (A.Dims.empty() || A.Dims.back().isPoint())
    return errorf("codegen: register window '%s' must span the lane "
                  "dimension",
                  A.Buf.c_str());
  return S;
}

Expected<std::string> CEmitter::valueToC(const ExprPtr &E, int ParentPrec) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    return printExpr(E);
  case Expr::Kind::Read: {
    const auto *R = cast<ReadExpr>(E);
    return accessExpr(R->buffer(), R->indices());
  }
  case Expr::Kind::USub: {
    auto Op = valueToC(cast<USubExpr>(E)->operand(), 3);
    if (!Op)
      return Op.takeError();
    std::string S = "-" + *Op;
    return ParentPrec >= 3 ? "(" + S + ")" : S;
  }
  case Expr::Kind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    int Prec;
    switch (B->op()) {
    case BinOpExpr::Op::Mul:
    case BinOpExpr::Op::Div:
    case BinOpExpr::Op::Mod:
      Prec = 3;
      break;
    case BinOpExpr::Op::Add:
    case BinOpExpr::Op::Sub:
      Prec = 2;
      break;
    default:
      Prec = 1;
      break;
    }
    auto L = valueToC(B->lhs(), Prec - 1);
    if (!L)
      return L.takeError();
    auto R = valueToC(B->rhs(), Prec);
    if (!R)
      return R.takeError();
    std::string S = *L + " " + BinOpExpr::opName(B->op()) + " " + *R;
    return Prec <= ParentPrec ? "(" + S + ")" : S;
  }
  }
  return errorf("codegen: unknown expression kind");
}

Error CEmitter::emitCall(const CallStmt &C, int Indent) {
  const Instr &I = *C.callee();
  const auto &Params = I.semantics().params();
  const auto &Args = C.args();
  if (Params.size() != Args.size())
    return errorf("codegen: call arity mismatch for '%s'", I.name().c_str());

  std::string Text = I.cFormat();
  for (size_t K = 0; K != Params.size(); ++K) {
    const Param &Pa = Params[K];
    if (Pa.PKind == Param::Kind::Tensor) {
      auto DataOr = windowDataExpr(Args[K]);
      if (!DataOr)
        return DataOr.takeError();
      Text = replaceAll(std::move(Text), "{" + Pa.Name + "_data}", *DataOr);
    } else {
      Text = replaceAll(std::move(Text), "{" + Pa.Name + "}",
                        exprToC(foldExpr(Args[K].Scalar)));
    }
  }
  if (Text.find('{') != std::string::npos)
    return errorf("codegen: unsubstituted placeholder in '%s' lowering: %s",
                  I.name().c_str(), Text.c_str());
  line(Indent, Text);
  return Error::success();
}

Error CEmitter::emitStmt(const StmtPtr &S, int Indent) {
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = castS<AssignStmt>(S);
    auto LhsOr = accessExpr(A->buffer(), A->indices());
    if (!LhsOr)
      return LhsOr.takeError();
    auto RhsOr = valueToC(foldExpr(A->rhs()));
    if (!RhsOr)
      return RhsOr.takeError();
    line(Indent, *LhsOr + (A->isReduce() ? " += " : " = ") + *RhsOr + ";");
    return Error::success();
  }
  case Stmt::Kind::For: {
    const auto *F = castS<ForStmt>(S);
    const std::string &V = F->loopVar();
    line(Indent, "for (int64_t " + V + " = " + exprToC(foldExpr(F->lo())) +
                     "; " + V + " < " + exprToC(foldExpr(F->hi())) + "; " +
                     V + "++) {");
    if (Error Err = emitBody(F->body(), Indent + 1))
      return Err;
    line(Indent, "}");
    return Error::success();
  }
  case Stmt::Kind::Alloc: {
    const auto *A = castS<AllocStmt>(S);
    if (Error Err = declareBuffer(A->name(), A->elemType(), A->shape(),
                                  A->mem(), ""))
      return Err;
    if (A->mem()->isRegisterFile()) {
      const VecTypeInfo &VT = A->mem()->vecType(A->elemType());
      std::string Decl = VT.CType + " " + A->name();
      for (size_t D = 0; D + 1 < A->shape().size(); ++D)
        Decl += "[" + exprToC(foldExpr(A->shape()[D])) + "]";
      line(Indent, Decl + ";");
      return Error::success();
    }
    if (A->shape().empty()) {
      line(Indent, std::string(scalarKindCType(A->elemType())) + " " +
                       A->name() + ";");
      return Error::success();
    }
    // Flat (possibly variable-length) local array.
    ExprPtr Total = idx(1);
    for (const ExprPtr &D : A->shape())
      Total = Total * D;
    line(Indent, std::string(scalarKindCType(A->elemType())) + " " +
                     A->name() + "[" + exprToC(foldExpr(Total)) + "];");
    return Error::success();
  }
  case Stmt::Kind::Call:
    return emitCall(*castS<CallStmt>(S), Indent);
  }
  return errorf("codegen: unknown statement kind");
}

Error CEmitter::emitBody(const std::vector<StmtPtr> &Body, int Indent) {
  for (const StmtPtr &S : Body)
    if (Error Err = emitStmt(S, Indent))
      return Err;
  return Error::success();
}

Error CEmitter::declareParams(std::string &Sig) {
  std::vector<std::string> Parts;
  for (const Param &Pa : P.params()) {
    if (Pa.PKind != Param::Kind::Tensor) {
      Parts.push_back("int64_t " + Pa.Name);
      continue;
    }
    if (Error Err = declareBuffer(Pa.Name, Pa.Ty, Pa.Shape, Pa.Mem,
                                  Pa.LeadStrideVar))
      return Err;
    if (Pa.Mem->isRegisterFile())
      return errorf("parameter '%s' cannot live in a register file",
                    Pa.Name.c_str());
    std::string T = scalarKindCType(Pa.Ty);
    Parts.push_back((Pa.Mutable ? T : "const " + T) + " *restrict " +
                    Pa.Name);
  }
  Sig = "void " + P.name() + "(" + join(Parts, ", ") + ")";
  return Error::success();
}

Expected<std::string> CEmitter::emitFunction() {
  std::string Sig;
  if (Error Err = declareParams(Sig))
    return Err;
  line(0, "// Generated by exo-ukr from proc '" + P.name() + "'.");
  for (const ExprPtr &Pre : P.preconds())
    line(0, "// requires: " + printExpr(Pre));
  line(0, Sig + " {");
  if (Error Err = emitBody(P.body(), 1))
    return Err;
  line(0, "}");
  return Out;
}

} // namespace

Expected<std::string> exo::emitCFunction(const Proc &P,
                                         const CodegenOptions &Opts) {
  CEmitter E(P, Opts);
  auto Fn = E.emitFunction();
  if (!Fn)
    return Fn.takeError();
  if (Opts.StaticFn)
    return "static " + *Fn;
  return Fn;
}

Expected<std::string> exo::emitCModule(const Proc &P,
                                       const CodegenOptions &Opts) {
  auto Fn = emitCFunction(P, Opts);
  if (!Fn)
    return Fn.takeError();
  std::string Out = "#include <stdint.h>\n";
  if (Opts.Isa)
    Out += Opts.Isa->prologue();
  Out += "\n";
  Out += *Fn;
  return Out;
}

std::string exo::cSignature(const Proc &P) {
  std::vector<std::string> Parts;
  for (const Param &Pa : P.params()) {
    if (Pa.PKind != Param::Kind::Tensor) {
      Parts.push_back("int64_t " + Pa.Name);
      continue;
    }
    std::string T = scalarKindCType(Pa.Ty);
    Parts.push_back((Pa.Mutable ? T : "const " + T) + " *restrict " +
                    Pa.Name);
  }
  return "void " + P.name() + "(" + join(Parts, ", ") + ")";
}
