//===- CEmit.h - C code generation from procs -----------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a (scheduled or unscheduled) proc to freestanding C99 — the system
/// deliberately emits plain C plus the ISA's intrinsics and nothing else, so
/// "the user can try different combinations of hardware/compiler" (§II-B).
///
/// Lowering rules:
///   - size/index parameters     -> `int64_t`
///   - DRAM tensor parameters    -> `(const) <elem> *restrict`, row-major,
///                                  with dimension-0 stride taken from the
///                                  declared lead-stride parameter if any
///   - DRAM allocations          -> local arrays (VLAs when symbolic)
///   - register-file allocations -> arrays of the ISA vector type, the lane
///                                  dimension folded into the vector type
///   - instruction calls         -> the instruction's C format string with
///                                  `{arg_data}` / `{arg}` substituted
///
//===----------------------------------------------------------------------===//

#ifndef EXO_CODEGEN_CEMIT_H
#define EXO_CODEGEN_CEMIT_H

#include "exo/ir/Proc.h"
#include "exo/isa/IsaLib.h"
#include "exo/support/Error.h"

#include <string>

namespace exo {

struct CodegenOptions {
  /// Supplies the prologue (intrinsics header / typedefs). May be null for
  /// procs that use no instructions.
  const IsaLib *Isa = nullptr;
  /// Emit the function as `static`.
  bool StaticFn = false;
};

/// Emits only the function definition for \p P.
Expected<std::string> emitCFunction(const Proc &P, const CodegenOptions &Opts);

/// Emits a self-contained translation unit: stdint include, ISA prologue,
/// and the function.
Expected<std::string> emitCModule(const Proc &P, const CodegenOptions &Opts);

/// The C prototype of \p P's generated function (no trailing semicolon).
std::string cSignature(const Proc &P);

} // namespace exo

#endif // EXO_CODEGEN_CEMIT_H
