//===- DiskCache.cpp ------------------------------------------------------===//

#include "exo/jit/DiskCache.h"

#include "exo/support/Str.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#include <utime.h>

using namespace exo;

uint64_t exo::fnv1a64(const void *Data, size_t N, uint64_t Seed) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t exo::fnv1a64(std::string_view S, uint64_t Seed) {
  return fnv1a64(S.data(), S.size(), Seed);
}

std::string exo::jitCompilerCommand() {
  if (const char *CC = std::getenv("EXO_CC"))
    return CC;
  return "cc";
}

int exo::jitRunCommand(const std::string &Cmd, std::string &Output) {
  std::string Full = Cmd + " 2>&1";
  FILE *Pipe = popen(Full.c_str(), "r");
  if (!Pipe)
    return -1;
  char Buf[4096];
  Output.clear();
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Output.append(Buf, N);
  return pclose(Pipe);
}

const std::string &exo::jitCompilerIdentity() {
  static const std::string Id = [] {
    std::string Cmd = jitCompilerCommand();
    std::string Out;
    std::string Version = "unknown";
    if (jitRunCommand(Cmd + " --version", Out) == 0) {
      size_t Nl = Out.find('\n');
      Version = Out.substr(0, Nl == std::string::npos ? Out.size() : Nl);
    }
    return Cmd + "\x1f" + Version;
  }();
  return Id;
}

uint64_t exo::jitArtifactKey(std::string_view CSource, std::string_view Flags,
                             std::string_view SymbolName) {
  // 0x1f separators keep field boundaries from aliasing ("a"+"b" vs "ab").
  const unsigned char Sep = 0x1f;
  uint64_t H = fnv1a64(CSource);
  H = fnv1a64(&Sep, 1, H);
  H = fnv1a64(Flags, H);
  H = fnv1a64(&Sep, 1, H);
  H = fnv1a64(SymbolName, H);
  H = fnv1a64(&Sep, 1, H);
  H = fnv1a64(std::string_view(jitCompilerIdentity()), H);
  uint32_t Abi = JitCacheAbiVersion;
  H = fnv1a64(&Abi, sizeof(Abi), H);
  return H;
}

namespace {

/// mkdir -p. Returns true when the directory exists afterwards.
bool makeDirs(const std::string &Path) {
  if (Path.empty())
    return false;
  std::string Cur = Path[0] == '/' ? "" : ".";
  for (const std::string &Part : split(Path, '/', /*KeepEmpty=*/false)) {
    Cur += "/" + Part;
    if (mkdir(Cur.c_str(), 0755) != 0 && errno != EEXIST)
      return false;
  }
  struct stat St;
  return stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

/// flock on <root>/.lock, released on scope exit. Serializes mutating
/// operations across processes; a failure to lock degrades to lockless
/// operation (rename is still atomic).
class ScopedLock {
public:
  explicit ScopedLock(const std::string &Root) {
    Fd = open((Root + "/.lock").c_str(), O_CREAT | O_RDWR, 0644);
    if (Fd >= 0 && flock(Fd, LOCK_EX) != 0) {
      close(Fd);
      Fd = -1;
    }
  }
  ~ScopedLock() {
    if (Fd >= 0) {
      flock(Fd, LOCK_UN);
      close(Fd);
    }
  }

private:
  int Fd = -1;
};

std::string defaultRoot() {
  if (const char *Dir = std::getenv("EXO_JIT_CACHE_DIR"))
    return Dir;
  if (const char *Xdg = std::getenv("XDG_CACHE_HOME"))
    return std::string(Xdg) + "/exo-ukr";
  if (const char *Home = std::getenv("HOME"))
    return std::string(Home) + "/.cache/exo-ukr";
  return {};
}

bool killSwitchSet() {
  const char *V = std::getenv("EXO_JIT_CACHE");
  if (!V)
    return false;
  return !std::strcmp(V, "0") || !std::strcmp(V, "off") ||
         !std::strcmp(V, "disabled");
}

struct GlobalCache {
  std::mutex Mu;
  std::unique_ptr<JitDiskCache> C;
};

GlobalCache &globalCache() {
  static GlobalCache G;
  return G;
}

bool copyFile(const std::string &From, const std::string &To) {
  std::ifstream In(From, std::ios::binary);
  if (!In)
    return false;
  std::ofstream Out(To, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << In.rdbuf();
  return static_cast<bool>(Out.flush());
}

} // namespace

JitDiskCache::JitDiskCache(std::string RootDir) : Root(std::move(RootDir)) {
  RootUsable = !Root.empty() && makeDirs(Root);
}

JitDiskCache &JitDiskCache::global() {
  GlobalCache &G = globalCache();
  std::lock_guard<std::mutex> Lock(G.Mu);
  if (!G.C)
    G.C = std::make_unique<JitDiskCache>(defaultRoot());
  return *G.C;
}

void JitDiskCache::setGlobalRoot(const std::string &RootDir) {
  GlobalCache &G = globalCache();
  std::lock_guard<std::mutex> Lock(G.Mu);
  G.C = std::make_unique<JitDiskCache>(RootDir);
}

bool JitDiskCache::enabled() const { return RootUsable && !killSwitchSet(); }

uint64_t JitDiskCache::configuredMaxBytes() {
  if (const char *V = std::getenv("EXO_JIT_CACHE_MAX_BYTES")) {
    char *End = nullptr;
    unsigned long long N = std::strtoull(V, &End, 10);
    if (End && *End == '\0' && N > 0)
      return N;
  }
  return 256ull << 20;
}

std::string JitDiskCache::entryPath(uint64_t Key, const char *Ext) const {
  return strf("%s/k%016llx%s", Root.c_str(),
              static_cast<unsigned long long>(Key), Ext);
}

std::string JitDiskCache::lookup(uint64_t Key) {
  if (!enabled())
    return {};
  std::string Path = entryPath(Key, ".so");
  struct stat St;
  if (stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
    return {};
  // Bump mtime so LRU pruning sees the entry as recently used.
  utime(Path.c_str(), nullptr);
  return Path;
}

Expected<std::string> JitDiskCache::store(uint64_t Key,
                                          const std::string &SoPath,
                                          const ArtifactMeta &Meta) {
  if (!enabled())
    return errorf("disk cache disabled");
  ScopedLock Lock(Root);

  std::string Final = entryPath(Key, ".so");
  std::string Tmp = strf("%s.tmp.%d", Final.c_str(), getpid());
  if (!copyFile(SoPath, Tmp))
    return errorf("cannot stage artifact into %s", Tmp.c_str());
  if (rename(Tmp.c_str(), Final.c_str()) != 0) {
    unlink(Tmp.c_str());
    return errorf("cannot publish artifact %s", Final.c_str());
  }

  std::string MetaFinal = entryPath(Key, ".meta");
  std::string MetaTmp = strf("%s.tmp.%d", MetaFinal.c_str(), getpid());
  {
    std::ofstream OS(MetaTmp, std::ios::trunc);
    OS << "abi=" << Meta.Abi << "\n"
       << "symbol=" << Meta.Symbol << "\n"
       << "flags=" << Meta.Flags << "\n"
       << "compiler=" << Meta.Compiler << "\n";
  }
  if (rename(MetaTmp.c_str(), MetaFinal.c_str()) != 0)
    unlink(MetaTmp.c_str()); // Artifact stays usable without its sidecar.

  pruneLocked(configuredMaxBytes());
  return Final;
}

bool JitDiskCache::remove(uint64_t Key) {
  if (Root.empty())
    return false;
  ScopedLock Lock(Root);
  bool Removed = unlink(entryPath(Key, ".so").c_str()) == 0;
  unlink(entryPath(Key, ".meta").c_str());
  return Removed;
}

namespace {

std::atomic<uint64_t> GCorruptMeta{0};

/// Checked parse of a numeric sidecar field: the whole value must be
/// base-10 digits in uint32_t range. atoi here let a truncated "abi=" line
/// silently read as ABI 0 — a value that can collide with a real (if never
/// current) ABI — so any malformed value now marks the entry corrupt
/// instead of inventing one.
bool parseMetaU32(const char *Value, uint32_t &Out) {
  if (!*Value)
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Value, &End, 10);
  if (End == Value || *End != '\0' || errno == ERANGE || V > UINT32_MAX)
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

} // namespace

uint64_t JitDiskCache::corruptMetaObserved() {
  return GCorruptMeta.load(std::memory_order_relaxed);
}

std::vector<JitDiskCache::Entry> JitDiskCache::list() {
  std::vector<Entry> Out;
  if (Root.empty())
    return Out;
  DIR *D = opendir(Root.c_str());
  if (!D)
    return Out;
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() != 1 + 16 + 3 || !startsWith(Name, "k") ||
        !endsWith(Name, ".so"))
      continue;
    Entry En;
    En.Key = std::strtoull(Name.substr(1, 16).c_str(), nullptr, 16);
    En.SoPath = Root + "/" + Name;
    struct stat St;
    if (stat(En.SoPath.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    En.Bytes = static_cast<uint64_t>(St.st_size);
    En.Mtime = static_cast<int64_t>(St.st_mtime);
    std::ifstream Meta(entryPath(En.Key, ".meta"));
    std::string Line;
    while (std::getline(Meta, Line)) {
      if (startsWith(Line, "abi=")) {
        if (!parseMetaU32(Line.c_str() + 4, En.Meta.Abi))
          En.MetaCorrupt = true;
      } else if (startsWith(Line, "symbol="))
        En.Meta.Symbol = Line.substr(7);
      else if (startsWith(Line, "flags="))
        En.Meta.Flags = Line.substr(6);
      else if (startsWith(Line, "compiler="))
        En.Meta.Compiler = Line.substr(9);
    }
    if (En.MetaCorrupt)
      GCorruptMeta.fetch_add(1, std::memory_order_relaxed);
    Out.push_back(std::move(En));
  }
  closedir(D);
  std::sort(Out.begin(), Out.end(), [](const Entry &A, const Entry &B) {
    return A.Mtime != B.Mtime ? A.Mtime < B.Mtime : A.Key < B.Key;
  });
  return Out;
}

size_t JitDiskCache::pruneLocked(uint64_t MaxBytes) {
  std::vector<Entry> Entries = list();
  // Corrupt-sidecar entries are the least trustworthy contents of the
  // cache; when space must be reclaimed they go before any healthy entry,
  // regardless of recency.
  std::stable_partition(Entries.begin(), Entries.end(),
                        [](const Entry &E) { return E.MetaCorrupt; });
  uint64_t Total = 0;
  for (const Entry &E : Entries)
    Total += E.Bytes;
  size_t Evicted = 0;
  for (const Entry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    unlink(E.SoPath.c_str());
    unlink(entryPath(E.Key, ".meta").c_str());
    Total -= E.Bytes;
    ++Evicted;
  }
  return Evicted;
}

size_t JitDiskCache::prune(uint64_t MaxBytes) {
  if (Root.empty())
    return 0;
  ScopedLock Lock(Root);
  return pruneLocked(MaxBytes);
}
