//===- DiskCache.h - Persistent content-addressed JIT artifacts -----------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent half of the JIT: compiled `.so` artifacts are published
/// into a content-addressed on-disk cache so every later process (and every
/// later run of the same process) loads the kernel with dlopen instead of
/// paying a `cc -O3 -shared` invocation. An entry is addressed by a 64-bit
/// FNV-1a hash of (C source, flags, symbol, compiler identity, ABI version);
/// anything that could change the produced code changes the key.
///
/// Layout under the cache root (default `~/.cache/exo-ukr/`, override with
/// EXO_JIT_CACHE_DIR, disable with EXO_JIT_CACHE=0):
///
///   k<16-hex-digits>.so     the artifact
///   k<16-hex-digits>.meta   key=value sidecar (symbol, flags, compiler...)
///   .lock                   flock'd around store/prune/remove
///
/// Writers stage into a `.tmp.<pid>` file and rename into place, so readers
/// never observe a partial artifact; the lock file only serializes the
/// mutating operations of concurrent processes. Eviction is LRU by mtime
/// (lookups touch their entry), bounded by EXO_JIT_CACHE_MAX_BYTES.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_JIT_DISKCACHE_H
#define EXO_JIT_DISKCACHE_H

#include "exo/support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace exo {

/// FNV-1a 64-bit over \p N bytes, chainable through \p Seed.
uint64_t fnv1a64(const void *Data, size_t N,
                 uint64_t Seed = 0xcbf29ce484222325ull);
uint64_t fnv1a64(std::string_view S, uint64_t Seed = 0xcbf29ce484222325ull);

/// Artifacts survive across processes, so the key must pin down everything
/// that decides the produced machine code beyond the source text. Bump when
/// the cache entry format (or the generated-kernel calling convention)
/// changes incompatibly.
inline constexpr uint32_t JitCacheAbiVersion = 1;

/// The compiler the JIT shells out to: $EXO_CC or "cc".
std::string jitCompilerCommand();

/// Runs a shell command capturing combined stdout/stderr; returns the exit
/// code (-1 when the shell could not be spawned).
int jitRunCommand(const std::string &Cmd, std::string &Output);

/// "<resolved EXO_CC>\x1f<first line of `cc --version`>" — the compiler
/// identity mixed into every artifact key. Computed once per process.
const std::string &jitCompilerIdentity();

/// The shared key scheme of the in-memory and on-disk caches: FNV-1a 64 of
/// source, flags, symbol, compiler identity and ABI version, separated by
/// 0x1f so field boundaries cannot alias.
uint64_t jitArtifactKey(std::string_view CSource, std::string_view Flags,
                        std::string_view SymbolName);

/// Sidecar metadata stored next to each artifact (and shown by
/// `ukr_cachectl list`).
struct ArtifactMeta {
  std::string Symbol;
  std::string Flags;
  std::string Compiler;
  uint32_t Abi = JitCacheAbiVersion;
};

/// See file comment.
class JitDiskCache {
public:
  /// A cache over an explicit root directory (tests, cachectl --dir).
  explicit JitDiskCache(std::string Root);

  /// The process-wide cache at $EXO_JIT_CACHE_DIR / ~/.cache/exo-ukr.
  static JitDiskCache &global();

  /// Repoints the global cache (tests and `ukr_cachectl --dir`). Affects
  /// subsequent operations only; in-memory JIT handles stay valid.
  static void setGlobalRoot(const std::string &Root);

  /// False when the kill switch (EXO_JIT_CACHE=0/off/disabled) is set or no
  /// usable root directory exists. Checked per call so tests can toggle the
  /// environment.
  bool enabled() const;

  const std::string &root() const { return Root; }

  /// Path of the cached artifact for \p Key, or "" when absent. A hit
  /// bumps the entry's mtime (LRU recency).
  std::string lookup(uint64_t Key);

  /// Atomically publishes the finished object at \p SoPath (and \p Meta)
  /// under \p Key; returns the in-cache artifact path. Also prunes to the
  /// configured size bound while it holds the lock.
  Expected<std::string> store(uint64_t Key, const std::string &SoPath,
                              const ArtifactMeta &Meta);

  /// Deletes the entry (artifact + sidecar). True when something existed.
  bool remove(uint64_t Key);

  struct Entry {
    uint64_t Key = 0;
    std::string SoPath;
    ArtifactMeta Meta;
    uint64_t Bytes = 0;
    int64_t Mtime = 0;
    /// The sidecar existed but a field would not parse (e.g. a truncated
    /// or garbage abi= line). Meta keeps its defaults — it must not be
    /// trusted — and consumers treat the entry as corrupt (`ukr_cachectl
    /// verify` flags it; pruning evicts it first). A *missing* sidecar is
    /// legal and does not set this.
    bool MetaCorrupt = false;
  };

  /// All entries, oldest first.
  std::vector<Entry> list();

  /// Process-wide count of corrupt sidecars observed by list() scans
  /// (monotonic; one increment per corrupt entry per scan). Surfaces in
  /// ukr::CacheStats::CorruptMeta.
  static uint64_t corruptMetaObserved();

  /// Evicts oldest entries until the cache holds at most \p MaxBytes.
  /// Returns the number of evicted artifacts.
  size_t prune(uint64_t MaxBytes);

  /// The size bound used by automatic pruning: EXO_JIT_CACHE_MAX_BYTES or
  /// 256 MiB.
  static uint64_t configuredMaxBytes();

private:
  std::string Root;
  bool RootUsable = false;

  std::string entryPath(uint64_t Key, const char *Ext) const;
  size_t pruneLocked(uint64_t MaxBytes);
};

} // namespace exo

#endif // EXO_JIT_DISKCACHE_H
