//===- Jit.cpp ------------------------------------------------------------===//

#include "exo/jit/Jit.h"

#include "exo/support/Str.h"

#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace exo;

JitKernel::JitKernel(void *Handle, void *Sym, std::string SoPath)
    : Handle(Handle), Sym(Sym), SoPath(std::move(SoPath)) {}

JitKernel::~JitKernel() {
  if (Handle)
    dlclose(Handle);
}

namespace {

/// Process-wide compilation cache and scratch directory.
struct JitState {
  std::mutex Mu;
  std::string Dir;
  std::map<size_t, JitKernelPtr> Cache;
  int Counter = 0;

  static JitState &get() {
    static JitState S;
    return S;
  }
};

std::string compilerCommand() {
  if (const char *CC = std::getenv("EXO_CC"))
    return CC;
  return "cc";
}

/// Creates (once) the scratch directory for generated sources.
Error ensureDir(JitState &S) {
  if (!S.Dir.empty())
    return Error::success();
  std::string Tmpl = "/tmp/exo-ukr-jit-XXXXXX";
  std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
  Buf.push_back('\0');
  if (!mkdtemp(Buf.data()))
    return errorf("cannot create JIT scratch directory");
  S.Dir.assign(Buf.data());
  return Error::success();
}

/// Runs a shell command, capturing combined output. Returns the exit code.
int runCommand(const std::string &Cmd, std::string &Output) {
  std::string Full = Cmd + " 2>&1";
  FILE *Pipe = popen(Full.c_str(), "r");
  if (!Pipe)
    return -1;
  char Buf[4096];
  Output.clear();
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Output.append(Buf, N);
  return pclose(Pipe);
}

} // namespace

Expected<JitKernelPtr> exo::jitCompile(const std::string &CSource,
                                       const std::string &SymbolName,
                                       const std::string &ExtraFlags) {
  JitState &S = JitState::get();
  std::lock_guard<std::mutex> Lock(S.Mu);

  size_t Key = std::hash<std::string>()(CSource + "\x1f" + ExtraFlags +
                                        "\x1f" + SymbolName);
  if (auto It = S.Cache.find(Key); It != S.Cache.end())
    return It->second;

  if (Error Err = ensureDir(S))
    return Err;
  std::string Stem = strf("%s/k%04d_%zx", S.Dir.c_str(), S.Counter++, Key);
  std::string CPath = Stem + ".c";
  std::string SoPath = Stem + ".so";
  {
    std::ofstream OS(CPath);
    if (!OS)
      return errorf("cannot write %s", CPath.c_str());
    OS << CSource;
  }

  // -ffp-contract=fast restores FMA contraction that -std=c11 would turn
  // off; generated vector-extension arithmetic relies on it (intrinsics
  // are explicit FMAs either way).
  std::string Cmd = compilerCommand() +
                    " -O3 -std=c11 -ffp-contract=fast " + ExtraFlags +
                    " -shared -fPIC -o " + SoPath + " " + CPath;
  std::string CcOut;
  int Rc = runCommand(Cmd, CcOut);
  if (Rc != 0)
    return errorf("JIT compilation failed (%s):\n%s", Cmd.c_str(),
                  CcOut.c_str());

  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle)
    return errorf("dlopen failed: %s", dlerror());
  void *Sym = dlsym(Handle, SymbolName.c_str());
  if (!Sym) {
    dlclose(Handle);
    return errorf("symbol '%s' not found in generated object",
                  SymbolName.c_str());
  }
  auto K = std::make_shared<JitKernel>(Handle, Sym, SoPath);
  S.Cache.emplace(Key, K);
  return K;
}

bool exo::jitAvailable() {
  static int Avail = -1;
  if (Avail < 0) {
    std::string Out;
    Avail = runCommand(compilerCommand() + " --version", Out) == 0 ? 1 : 0;
  }
  return Avail == 1;
}
