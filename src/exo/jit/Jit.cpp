//===- Jit.cpp ------------------------------------------------------------===//

#include "exo/jit/Jit.h"

#include "exo/jit/DiskCache.h"
#include "exo/support/Str.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <dirent.h>
#include <dlfcn.h>
#include <fstream>
#include <map>
#include <mutex>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace exo;

JitKernel::JitKernel(void *Handle, void *Sym, std::string SoPath)
    : Handle(Handle), Sym(Sym), SoPath(std::move(SoPath)) {}

JitKernel::~JitKernel() {
  if (Handle)
    dlclose(Handle);
}

namespace {

/// Process-wide compilation cache, scratch directory and counters.
struct JitState {
  std::mutex Mu;
  std::string Dir;
  std::map<uint64_t, JitKernelPtr> Cache;
  int Counter = 0;
  JitStats Stats;

  static JitState &get() {
    static JitState S;
    return S;
  }
};

/// Base directory for scratch dirs: EXO_JIT_DIR, else TMPDIR, else /tmp.
std::string scratchBase() {
  if (const char *D = std::getenv("EXO_JIT_DIR"))
    return D;
  if (const char *D = std::getenv("TMPDIR"))
    return D;
  return "/tmp";
}

/// Removes every regular file in \p Dir, then the directory itself.
void removeDirTree(const std::string &Dir) {
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D)) {
      if (!std::strcmp(E->d_name, ".") || !std::strcmp(E->d_name, ".."))
        continue;
      unlink((Dir + "/" + E->d_name).c_str());
    }
    closedir(D);
  }
  rmdir(Dir.c_str());
}

/// Sweeps sibling exo-ukr-jit-* scratch dirs abandoned by dead processes
/// (a crashed or killed run leaves its .c/.so litter behind). A dir whose
/// owner.pid process is gone is reclaimed; pid-less dirs are reclaimed only
/// once they are an hour old, so a racing process that has not yet written
/// its pid file is left alone.
void sweepOrphanScratchDirs(const std::string &Base) {
  DIR *D = opendir(Base.c_str());
  if (!D)
    return;
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (!startsWith(Name, "exo-ukr-jit-"))
      continue;
    std::string Path = Base + "/" + Name;
    struct stat St;
    if (stat(Path.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
      continue;
    std::ifstream PidFile(Path + "/owner.pid");
    long Pid = 0;
    if (PidFile >> Pid) {
      if (Pid > 0 && (kill(static_cast<pid_t>(Pid), 0) == 0 ||
                      errno != ESRCH))
        continue; // Owner still alive (or unknowable): leave it.
    } else if (time(nullptr) - St.st_mtime < 3600) {
      continue;
    }
    removeDirTree(Path);
  }
  closedir(D);
}

/// Creates (once) the scratch directory for generated sources and reclaims
/// orphaned scratch from earlier runs.
Error ensureDir(JitState &S) {
  if (!S.Dir.empty())
    return Error::success();
  std::string Base = scratchBase();
  sweepOrphanScratchDirs(Base);
  std::string Tmpl = Base + "/exo-ukr-jit-XXXXXX";
  std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
  Buf.push_back('\0');
  if (!mkdtemp(Buf.data()))
    return errorf("cannot create JIT scratch directory under %s",
                  Base.c_str());
  S.Dir.assign(Buf.data());
  std::ofstream(S.Dir + "/owner.pid") << getpid() << "\n";
  return Error::success();
}

/// dlopens \p SoPath and resolves \p SymbolName; null on any failure (the
/// caller decides whether that is fatal or a stale cache entry).
JitKernelPtr tryLoad(const std::string &SoPath,
                     const std::string &SymbolName) {
  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle)
    return nullptr;
  void *Sym = dlsym(Handle, SymbolName.c_str());
  if (!Sym) {
    dlclose(Handle);
    return nullptr;
  }
  return std::make_shared<JitKernel>(Handle, Sym, SoPath);
}

} // namespace

Expected<JitKernelPtr> exo::jitCompile(const std::string &CSource,
                                       const std::string &SymbolName,
                                       const std::string &ExtraFlags) {
  JitState &S = JitState::get();
  uint64_t Key = jitArtifactKey(CSource, ExtraFlags, SymbolName);
  JitDiskCache &DC = JitDiskCache::global();

  std::string CPath, SoPath;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (auto It = S.Cache.find(Key); It != S.Cache.end()) {
      ++S.Stats.MemHits;
      return It->second;
    }

    // Second level: the persistent artifact cache.
    if (DC.enabled()) {
      std::string Cached = DC.lookup(Key);
      if (!Cached.empty()) {
        if (JitKernelPtr K = tryLoad(Cached, SymbolName)) {
          ++S.Stats.DiskHits;
          S.Cache.emplace(Key, K);
          return K;
        }
        // Truncated or ABI-stale artifact: evict and recompile.
        DC.remove(Key);
      }
    }

    if (Error Err = ensureDir(S))
      return Err;
    std::string Stem = strf("%s/k%04d_%016llx", S.Dir.c_str(), S.Counter++,
                            static_cast<unsigned long long>(Key));
    CPath = Stem + ".c";
    SoPath = Stem + ".so";
  }

  // The compiler runs unlocked so KernelService workers overlap distinct
  // compilations; the re-lock below re-checks the cache in case another
  // thread compiled the same key meanwhile.
  {
    std::ofstream OS(CPath);
    if (!OS)
      return errorf("cannot write %s", CPath.c_str());
    OS << CSource;
  }

  // -ffp-contract=fast restores FMA contraction that -std=c11 would turn
  // off; generated vector-extension arithmetic relies on it (intrinsics
  // are explicit FMAs either way).
  std::string Cmd = jitCompilerCommand() +
                    " -O3 -std=c11 -ffp-contract=fast " + ExtraFlags +
                    " -shared -fPIC -o " + SoPath + " " + CPath;
  std::string CcOut;
  auto T0 = std::chrono::steady_clock::now();
  int Rc = jitRunCommand(Cmd, CcOut);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();

  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Stats.CompileMs += Ms;
  if (Rc != 0) {
    ++S.Stats.CompileFailures;
    // Do not leave failed-compile litter in the scratch directory.
    unlink(CPath.c_str());
    unlink(SoPath.c_str());
    return errorf("JIT compilation failed (%s):\n%s", Cmd.c_str(),
                  CcOut.c_str());
  }
  ++S.Stats.Compiles;
  if (auto It = S.Cache.find(Key); It != S.Cache.end()) {
    // Lost a benign race: another thread published the same key.
    unlink(CPath.c_str());
    unlink(SoPath.c_str());
    return It->second;
  }

  // Publish to the persistent cache and load the published copy, so the
  // kernel survives scratch-directory cleanup and the next process gets a
  // disk hit. Publishing is best-effort: on failure we load from scratch.
  std::string LoadPath = SoPath;
  if (DC.enabled()) {
    ArtifactMeta Meta;
    Meta.Symbol = SymbolName;
    Meta.Flags = ExtraFlags;
    Meta.Compiler = replaceAll(jitCompilerIdentity(), "\x1f", " ");
    if (auto Published = DC.store(Key, SoPath, Meta))
      LoadPath = Published.take();
  }

  JitKernelPtr K = tryLoad(LoadPath, SymbolName);
  if (!K && LoadPath != SoPath)
    K = tryLoad(SoPath, SymbolName); // Cache dir raced away; use scratch.
  if (!K) {
    void *Handle = dlopen(LoadPath.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!Handle)
      return errorf("dlopen failed: %s", dlerror());
    dlclose(Handle);
    return errorf("symbol '%s' not found in generated object",
                  SymbolName.c_str());
  }
  S.Cache.emplace(Key, K);
  return K;
}

bool exo::jitAvailable() {
  static int Avail = -1;
  if (Avail < 0) {
    std::string Out;
    Avail = jitRunCommand(jitCompilerCommand() + " --version", Out) == 0 ? 1
                                                                         : 0;
  }
  return Avail == 1;
}

JitStats exo::jitStats() {
  JitState &S = JitState::get();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Stats;
}

void exo::jitResetStats() {
  JitState &S = JitState::get();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Stats = JitStats();
}

void exo::jitClearMemoryCache() {
  JitState &S = JitState::get();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Cache.clear();
}
