//===- Jit.h - Runtime compilation of generated C -------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exo's contract is "emit plain C and let the user pick the compiler". The
/// JIT honours it literally: generated C is written to a scratch directory,
/// compiled with the system C compiler (override with EXO_CC), loaded with
/// dlopen, and the kernel symbol resolved. Compilations are cached by a hash
/// of (source, flags) for the lifetime of the process.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_JIT_JIT_H
#define EXO_JIT_JIT_H

#include "exo/support/Error.h"

#include <memory>
#include <string>

namespace exo {

/// A loaded kernel; keeps the shared object alive.
class JitKernel {
public:
  JitKernel(void *Handle, void *Sym, std::string SoPath);
  ~JitKernel();
  JitKernel(const JitKernel &) = delete;
  JitKernel &operator=(const JitKernel &) = delete;

  /// Raw function pointer.
  void *symbol() const { return Sym; }

  /// Typed function pointer, e.g. `K->as<void (*)(int64_t, ...)>()`.
  template <typename Fn> Fn as() const {
    return reinterpret_cast<Fn>(Sym);
  }

private:
  void *Handle;
  void *Sym;
  std::string SoPath;
};

using JitKernelPtr = std::shared_ptr<JitKernel>;

/// Compiles \p CSource with `$EXO_CC -O3 <ExtraFlags> -shared -fPIC` and
/// resolves \p SymbolName. Returns the loaded kernel or a diagnostic
/// including the compiler's stderr.
Expected<JitKernelPtr> jitCompile(const std::string &CSource,
                                  const std::string &SymbolName,
                                  const std::string &ExtraFlags);

/// True when a working C compiler is available for jitCompile.
bool jitAvailable();

} // namespace exo

#endif // EXO_JIT_JIT_H
