//===- Jit.h - Runtime compilation of generated C -------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exo's contract is "emit plain C and let the user pick the compiler". The
/// JIT honours it literally: generated C is written to a scratch directory
/// (EXO_JIT_DIR, else TMPDIR, else /tmp), compiled with the system C
/// compiler (override with EXO_CC), loaded with dlopen, and the kernel
/// symbol resolved. Compilations are cached at two levels: an in-process
/// map and the persistent content-addressed artifact cache of DiskCache.h,
/// both keyed by FNV-1a 64 of (source, flags, symbol, compiler identity,
/// ABI version). A disk hit skips the compiler entirely.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_JIT_JIT_H
#define EXO_JIT_JIT_H

#include "exo/support/Error.h"

#include <memory>
#include <string>

namespace exo {

/// A loaded kernel; keeps the shared object alive.
class JitKernel {
public:
  JitKernel(void *Handle, void *Sym, std::string SoPath);
  ~JitKernel();
  JitKernel(const JitKernel &) = delete;
  JitKernel &operator=(const JitKernel &) = delete;

  /// Raw function pointer.
  void *symbol() const { return Sym; }

  /// Typed function pointer, e.g. `K->as<void (*)(int64_t, ...)>()`.
  template <typename Fn> Fn as() const {
    return reinterpret_cast<Fn>(Sym);
  }

private:
  void *Handle;
  void *Sym;
  std::string SoPath;
};

using JitKernelPtr = std::shared_ptr<JitKernel>;

/// Compiles \p CSource with `$EXO_CC -O3 <ExtraFlags> -shared -fPIC` and
/// resolves \p SymbolName. Returns the loaded kernel or a diagnostic
/// including the compiler's stderr.
Expected<JitKernelPtr> jitCompile(const std::string &CSource,
                                  const std::string &SymbolName,
                                  const std::string &ExtraFlags);

/// True when a working C compiler is available for jitCompile.
bool jitAvailable();

/// Process-wide JIT counters; the building blocks of the kernel-cache
/// observability layer (ukr::CacheStats aggregates these per service).
struct JitStats {
  uint64_t MemHits = 0;         ///< served from the in-process map
  uint64_t DiskHits = 0;        ///< loaded from the persistent cache
  uint64_t Compiles = 0;        ///< compiler invocations that succeeded
  uint64_t CompileFailures = 0; ///< compiler invocations that failed
  double CompileMs = 0;         ///< wall time spent inside the compiler
};

/// Snapshot of the counters above.
JitStats jitStats();

/// Zeroes the counters (tests).
void jitResetStats();

/// Drops the in-process compilation map so the next jitCompile must go to
/// the disk cache or the compiler. Loaded kernels stay valid (shared_ptr).
/// Test hook for exercising the persistence path within one process.
void jitClearMemoryCache();

} // namespace exo

#endif // EXO_JIT_JIT_H
