//===- IsaLib.h - Instruction library interface ---------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An instruction library is the hardware description the paper's §II-B
/// externalizes: a vector register memory space plus a set of Instr
/// definitions (semantic proc + C lowering). Switching architectures means
/// passing a different library to the same schedule (§III-C).
///
/// Libraries provided:
///   - neon:     ARM Neon 128-bit, f32 (4 lanes), f16 (8 lanes, "Neon8f"),
///               bf16 (8 lanes, "Neon8bf") and i8 (16 lanes, "Neon16b").
///               Matches the paper's Fig. 3 definitions; bf16/i8 compute is
///               exposed as K-grouped dot-product-accumulate (vbfdot/vsdot).
///               Not executable on this repo's x86 test hardware; codegen
///               output is golden-tested textually instead.
///   - avx2:     Intel AVX2+FMA, f32 (8 lanes), broadcast-style FMA.
///   - avx512:   Intel AVX-512, f32 (16 lanes), broadcast-style FMA, plus a
///               VNNI-style i8 -> i32 dot-product-accumulate.
///   - portable: GCC vector extensions, f32 (4 lanes), lane-style FMA with
///               the exact shape of the Neon schedule; executable anywhere.
///               No dot instructions — narrow types fall back to scalar
///               code there (UkrConfig::effectiveStyle degrades).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_ISA_ISALIB_H
#define EXO_ISA_ISALIB_H

#include "exo/ir/Proc.h"

#include <string>
#include <vector>

namespace exo {

/// Accumulator kind of a widening K-grouped dot product over \p InTy inputs:
/// i8 -> i32 (the VNNI/sdot convention), f16/bf16 -> f32. Kinds that
/// accumulate in themselves map to themselves.
ScalarKind dotAccumKind(ScalarKind InTy);

/// Elements of \p InTy consumed per accumulator lane by one dot step: 4 for
/// i8 (sdot/vpdpbssd), 2 for f16/bf16 (bfdot pairs), 1 otherwise. This is
/// also the K-group width of the matching packed-panel layout.
unsigned dotGroupSize(ScalarKind InTy);

/// See file comment.
class IsaLib {
public:
  virtual ~IsaLib();

  /// Short identifier ("neon", "avx2", ...).
  virtual std::string name() const = 0;

  /// True when generated code can be compiled and run on this host.
  virtual bool hostExecutable() const = 0;

  /// True when the library has instructions for \p Ty.
  virtual bool supports(ScalarKind Ty) const = 0;

  /// The vector register memory space for \p Ty.
  virtual const MemSpace *space(ScalarKind Ty) const = 0;

  /// Lanes of one vector register for \p Ty.
  unsigned lanes(ScalarKind Ty) const { return space(Ty)->lanes(Ty); }

  /// C source prelude for generated kernels (includes / typedefs).
  virtual std::string prologue() const = 0;

  /// Extra compiler flags for JIT compilation of generated code.
  virtual std::string jitFlags() const = 0;

  /// dst[0:L] = src[0:L]; src in DRAM, dst in registers.
  virtual InstrPtr load(ScalarKind Ty) const = 0;
  /// dst[0:L] = src[0:L]; dst in DRAM, src in registers.
  virtual InstrPtr store(ScalarKind Ty) const = 0;
  /// dst[i] += lhs[i] * rhs[l] with rhs in registers and lane index l
  /// (the Neon vfmaq_laneq shape). Null when the ISA has no lane FMA.
  virtual InstrPtr fmaLane(ScalarKind Ty) const = 0;
  /// dst[i] += lhs[i] * s[0] with s a single element in DRAM (broadcast
  /// FMA, the natural x86 shape). Null when unavailable.
  virtual InstrPtr fmaBroadcast(ScalarKind Ty) const = 0;
  /// dst[i] = s[0] (broadcast/dup). Null when unavailable.
  virtual InstrPtr broadcast(ScalarKind Ty) const = 0;

  /// K-grouped widening dot-product-accumulate: with G = dotGroupSize(InTy)
  /// and A = dotAccumKind(InTy),
  ///
  /// \code
  ///   dst[i] += sum over kk in [0, G) of lhs[i, kk] * rhs[l, kk]
  /// \endcode
  ///
  /// where dst is an A-typed accumulator register (accSpace lanes) and
  /// lhs/rhs are InTy registers holding lanes x G elements (the Neon
  /// vdotq_laneq_s32 / vbfdotq_laneq_f32 shape; VNNI on x86). Null when the
  /// ISA has no dot instruction for \p InTy — callers fall back to scalar
  /// code.
  virtual InstrPtr dotAccum(ScalarKind InTy) const { return nullptr; }

  /// Register space of dotAccum's accumulator operand; null iff dotAccum
  /// returns null for \p InTy.
  virtual const MemSpace *accSpace(ScalarKind InTy) const { return nullptr; }
};

/// Built-in libraries.
const IsaLib &neonIsa();
const IsaLib &avx2Isa();
const IsaLib &avx512Isa();
const IsaLib &portableIsa();

/// Looks an ISA up by name; nullptr when unknown.
const IsaLib *findIsa(const std::string &Name);

/// All built-in libraries.
std::vector<const IsaLib *> allIsas();

} // namespace exo

#endif // EXO_ISA_ISALIB_H
