//===- IsaLib.h - Instruction library interface ---------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An instruction library is the hardware description the paper's §II-B
/// externalizes: a vector register memory space plus a set of Instr
/// definitions (semantic proc + C lowering). Switching architectures means
/// passing a different library to the same schedule (§III-C).
///
/// Libraries provided:
///   - neon:     ARM Neon 128-bit, f32 (4 lanes) and f16 (8 lanes, "Neon8f").
///               Matches the paper's Fig. 3 definitions. Not executable on
///               this repo's x86 test hardware; codegen output is
///               golden-tested textually instead.
///   - avx2:     Intel AVX2+FMA, f32 (8 lanes), broadcast-style FMA.
///   - avx512:   Intel AVX-512, f32 (16 lanes), broadcast-style FMA.
///   - portable: GCC vector extensions, f32 (4 lanes), lane-style FMA with
///               the exact shape of the Neon schedule; executable anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_ISA_ISALIB_H
#define EXO_ISA_ISALIB_H

#include "exo/ir/Proc.h"

#include <string>
#include <vector>

namespace exo {

/// See file comment.
class IsaLib {
public:
  virtual ~IsaLib();

  /// Short identifier ("neon", "avx2", ...).
  virtual std::string name() const = 0;

  /// True when generated code can be compiled and run on this host.
  virtual bool hostExecutable() const = 0;

  /// True when the library has instructions for \p Ty.
  virtual bool supports(ScalarKind Ty) const = 0;

  /// The vector register memory space for \p Ty.
  virtual const MemSpace *space(ScalarKind Ty) const = 0;

  /// Lanes of one vector register for \p Ty.
  unsigned lanes(ScalarKind Ty) const { return space(Ty)->lanes(Ty); }

  /// C source prelude for generated kernels (includes / typedefs).
  virtual std::string prologue() const = 0;

  /// Extra compiler flags for JIT compilation of generated code.
  virtual std::string jitFlags() const = 0;

  /// dst[0:L] = src[0:L]; src in DRAM, dst in registers.
  virtual InstrPtr load(ScalarKind Ty) const = 0;
  /// dst[0:L] = src[0:L]; dst in DRAM, src in registers.
  virtual InstrPtr store(ScalarKind Ty) const = 0;
  /// dst[i] += lhs[i] * rhs[l] with rhs in registers and lane index l
  /// (the Neon vfmaq_laneq shape). Null when the ISA has no lane FMA.
  virtual InstrPtr fmaLane(ScalarKind Ty) const = 0;
  /// dst[i] += lhs[i] * s[0] with s a single element in DRAM (broadcast
  /// FMA, the natural x86 shape). Null when unavailable.
  virtual InstrPtr fmaBroadcast(ScalarKind Ty) const = 0;
  /// dst[i] = s[0] (broadcast/dup). Null when unavailable.
  virtual InstrPtr broadcast(ScalarKind Ty) const = 0;
};

/// Built-in libraries.
const IsaLib &neonIsa();
const IsaLib &avx2Isa();
const IsaLib &avx512Isa();
const IsaLib &portableIsa();

/// Looks an ISA up by name; nullptr when unknown.
const IsaLib *findIsa(const std::string &Name);

/// All built-in libraries.
std::vector<const IsaLib *> allIsas();

} // namespace exo

#endif // EXO_ISA_ISALIB_H
