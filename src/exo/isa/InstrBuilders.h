//===- InstrBuilders.h - Canonical instruction semantics ------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factories for the semantic procs shared by all instruction libraries
/// (what varies per ISA is only the name, lane count, register space and C
/// format string). The semantics follow the paper's Fig. 3: e.g. a lane FMA
/// of width L is
///
/// \code
///   def <name>(dst: [ty][L] @ Reg, lhs: [ty][L] @ Reg,
///              rhs: [ty][L] @ Reg, l: index):
///       for i in seq(0, L):
///           dst[i] += lhs[i] * rhs[l]
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EXO_ISA_INSTRBUILDERS_H
#define EXO_ISA_INSTRBUILDERS_H

#include "exo/ir/Proc.h"

namespace exo {

/// dst[i] = src[i] over [0, Lanes); dst in \p Reg, src in DRAM.
InstrPtr makeLoadInstr(const std::string &Name, ScalarKind Ty, unsigned Lanes,
                       const MemSpace *Reg, const std::string &CFormat);

/// dst[i] = src[i] over [0, Lanes); dst in DRAM, src in \p Reg.
InstrPtr makeStoreInstr(const std::string &Name, ScalarKind Ty,
                        unsigned Lanes, const MemSpace *Reg,
                        const std::string &CFormat);

/// dst[i] += lhs[i] * rhs[l]; all registers, l an index parameter.
InstrPtr makeFmaLaneInstr(const std::string &Name, ScalarKind Ty,
                          unsigned Lanes, const MemSpace *Reg,
                          const std::string &CFormat);

/// dst[i] += lhs[i] * s[0]; s is one DRAM element.
InstrPtr makeFmaBroadcastInstr(const std::string &Name, ScalarKind Ty,
                               unsigned Lanes, const MemSpace *Reg,
                               const std::string &CFormat);

/// dst[i] = s[0]; s is one DRAM element.
InstrPtr makeBroadcastInstr(const std::string &Name, ScalarKind Ty,
                            unsigned Lanes, const MemSpace *Reg,
                            const std::string &CFormat);

/// K-grouped widening dot-product-accumulate (the sdot/bfdot/VNNI shape):
///
/// \code
///   def <name>(dst: [AccTy][AccLanes] @ RegAcc,
///              lhs: [InTy][AccLanes, Group] @ RegIn,
///              rhs: [InTy][AccLanes, Group] @ RegIn, l: index):
///       for i in seq(0, AccLanes):
///           for kk in seq(0, Group):
///               dst[i] += lhs[i, kk] * rhs[l, kk]
/// \endcode
///
/// The interpreter evaluates the multiply in double precision and rounds
/// each partial sum to AccTy on store, which models both integer (i8 -> i32
/// exact) and widening-float (bf16 -> f32) dot units.
InstrPtr makeDotInstr(const std::string &Name, ScalarKind InTy,
                      ScalarKind AccTy, unsigned AccLanes, unsigned Group,
                      const MemSpace *RegIn, const MemSpace *RegAcc,
                      const std::string &CFormat);

} // namespace exo

#endif // EXO_ISA_INSTRBUILDERS_H
