//===- Portable.cpp - GCC vector-extension instruction library ------------===//
//
// A lane-FMA ISA with exactly the shape of the paper's Neon library, but
// expressed with GCC generic vector extensions so the generated C compiles
// and runs on any GCC/Clang host. This is the executable stand-in for Neon
// on the x86 machines this repository is tested on: schedules written for
// `neonIsa()` run unchanged against `portableIsa()`.
//
//===----------------------------------------------------------------------===//

#include "exo/isa/InstrBuilders.h"
#include "exo/isa/IsaLib.h"

using namespace exo;

namespace {

class PortableIsa final : public IsaLib {
public:
  PortableIsa() {
    F32Space = MemSpace::makeRegisterFile(
        "Vec4F", {{ScalarKind::F32, {"exo_v4f", 4}}});
    F64Space = MemSpace::makeRegisterFile(
        "Vec2D", {{ScalarKind::F64, {"exo_v2d", 2}}});
    I32Space = MemSpace::makeRegisterFile(
        "Vec4I", {{ScalarKind::I32, {"exo_v4i", 4}}});

    LoadF32 = makeLoadInstr("vec_ld_4xf32", ScalarKind::F32, 4, F32Space,
                            "{dst_data} = *(const exo_v4f *)&{src_data};");
    StoreF32 = makeStoreInstr("vec_st_4xf32", ScalarKind::F32, 4, F32Space,
                              "*(exo_v4f *)&{dst_data} = {src_data};");
    FmaLaneF32 = makeFmaLaneInstr(
        "vec_fmla_4xf32_4xf32", ScalarKind::F32, 4, F32Space,
        "{dst_data} += {lhs_data} * {rhs_data}[{l}];");
    FmaBcstF32 = makeFmaBroadcastInstr("vec_fmadd_4xf32", ScalarKind::F32, 4,
                                       F32Space,
                                       "{dst_data} += {lhs_data} * {s_data};");
    BcstF32 = makeBroadcastInstr("vec_dup_4xf32", ScalarKind::F32, 4,
                                 F32Space,
                                 "{dst_data} = (exo_v4f){0} + {s_data};");

    LoadF64 = makeLoadInstr("vec_ld_2xf64", ScalarKind::F64, 2, F64Space,
                            "{dst_data} = *(const exo_v2d *)&{src_data};");
    StoreF64 = makeStoreInstr("vec_st_2xf64", ScalarKind::F64, 2, F64Space,
                              "*(exo_v2d *)&{dst_data} = {src_data};");
    FmaLaneF64 = makeFmaLaneInstr(
        "vec_fmla_2xf64_2xf64", ScalarKind::F64, 2, F64Space,
        "{dst_data} += {lhs_data} * {rhs_data}[{l}];");
    FmaBcstF64 = makeFmaBroadcastInstr("vec_fmadd_2xf64", ScalarKind::F64, 2,
                                       F64Space,
                                       "{dst_data} += {lhs_data} * {s_data};");
    BcstF64 = makeBroadcastInstr("vec_dup_2xf64", ScalarKind::F64, 2,
                                 F64Space,
                                 "{dst_data} = (exo_v2d){0} + {s_data};");

    LoadI32 = makeLoadInstr("vec_ld_4xi32", ScalarKind::I32, 4, I32Space,
                            "{dst_data} = *(const exo_v4i *)&{src_data};");
    StoreI32 = makeStoreInstr("vec_st_4xi32", ScalarKind::I32, 4, I32Space,
                              "*(exo_v4i *)&{dst_data} = {src_data};");
    FmaLaneI32 = makeFmaLaneInstr(
        "vec_fmla_4xi32_4xi32", ScalarKind::I32, 4, I32Space,
        "{dst_data} += {lhs_data} * {rhs_data}[{l}];");
    FmaBcstI32 = makeFmaBroadcastInstr("vec_fmadd_4xi32", ScalarKind::I32, 4,
                                       I32Space,
                                       "{dst_data} += {lhs_data} * {s_data};");
    BcstI32 = makeBroadcastInstr("vec_dup_4xi32", ScalarKind::I32, 4,
                                 I32Space,
                                 "{dst_data} = (exo_v4i){0} + {s_data};");
  }

  std::string name() const override { return "portable"; }
  bool hostExecutable() const override { return true; }
  bool supports(ScalarKind Ty) const override {
    return Ty == ScalarKind::F32 || Ty == ScalarKind::F64 ||
           Ty == ScalarKind::I32;
  }
  const MemSpace *space(ScalarKind Ty) const override {
    if (Ty == ScalarKind::F64)
      return F64Space;
    if (Ty == ScalarKind::I32)
      return I32Space;
    return F32Space;
  }

  std::string prologue() const override {
    return "typedef float exo_v4f __attribute__((vector_size(16), "
           "aligned(4)));\n"
           "typedef double exo_v2d __attribute__((vector_size(16), "
           "aligned(8)));\n"
           "#include <stdint.h>\n"
           "typedef int32_t exo_v4i __attribute__((vector_size(16), "
           "aligned(4)));\n";
  }
  // JIT compiles for this host; the emitted C itself stays portable.
  std::string jitFlags() const override { return "-march=native"; }

  InstrPtr load(ScalarKind Ty) const override {
    return pick(Ty, LoadF32, LoadF64, LoadI32);
  }
  InstrPtr store(ScalarKind Ty) const override {
    return pick(Ty, StoreF32, StoreF64, StoreI32);
  }
  InstrPtr fmaLane(ScalarKind Ty) const override {
    return pick(Ty, FmaLaneF32, FmaLaneF64, FmaLaneI32);
  }
  InstrPtr fmaBroadcast(ScalarKind Ty) const override {
    return pick(Ty, FmaBcstF32, FmaBcstF64, FmaBcstI32);
  }
  InstrPtr broadcast(ScalarKind Ty) const override {
    return pick(Ty, BcstF32, BcstF64, BcstI32);
  }

private:
  static InstrPtr pick(ScalarKind Ty, const InstrPtr &F32,
                       const InstrPtr &F64, const InstrPtr &I32) {
    if (Ty == ScalarKind::F32)
      return F32;
    if (Ty == ScalarKind::F64)
      return F64;
    if (Ty == ScalarKind::I32)
      return I32;
    return nullptr;
  }

  const MemSpace *F32Space = nullptr;
  const MemSpace *F64Space = nullptr;
  const MemSpace *I32Space = nullptr;
  InstrPtr LoadF32, StoreF32, FmaLaneF32, FmaBcstF32, BcstF32;
  InstrPtr LoadF64, StoreF64, FmaLaneF64, FmaBcstF64, BcstF64;
  InstrPtr LoadI32, StoreI32, FmaLaneI32, FmaBcstI32, BcstI32;
};

} // namespace

const IsaLib &exo::portableIsa() {
  static PortableIsa Isa;
  return Isa;
}
