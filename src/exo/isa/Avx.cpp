//===- Avx.cpp - Intel AVX2 and AVX-512 instruction libraries -------------===//
//
// The §III-C portability path: the same schedules retargeted to x86. These
// libraries use broadcast-style FMA (`_mm256_fmadd_ps` with a broadcast of
// one B element from memory) — the idiomatic x86 GEMM inner op, and the
// adaptation the paper describes for ISAs without a lane-indexed FMA.
// AVX-512 additionally exposes the VNNI-style signed int8 dot product
// (`_mm512_dpbssd_epi32`, AVX-VNNI-INT8): 64 i8 inputs in quads
// accumulating into 16 i32 lanes, the same K-grouped shape as Neon's sdot.
//
//===----------------------------------------------------------------------===//

#include "exo/isa/InstrBuilders.h"
#include "exo/isa/IsaLib.h"

using namespace exo;

namespace {

class AvxIsaBase : public IsaLib {
public:
  AvxIsaBase(const std::string &IsaName, const std::string &SpaceName,
             const std::string &CType, unsigned Lanes,
             const std::string &Mnemo, std::string Flags)
      : IsaName(IsaName), Lanes(Lanes), Flags(std::move(Flags)) {
    Space = MemSpace::makeRegisterFile(SpaceName,
                                       {{ScalarKind::F32, {CType, Lanes}}});
    std::string L = std::to_string(Lanes);
    LoadF32 = makeLoadInstr(IsaName + "_loadu_" + L + "xf32", ScalarKind::F32,
                            Lanes, Space,
                            "{dst_data} = " + Mnemo + "_loadu_ps(&{src_data});");
    StoreF32 = makeStoreInstr(IsaName + "_storeu_" + L + "xf32",
                              ScalarKind::F32, Lanes, Space,
                              Mnemo + "_storeu_ps(&{dst_data}, {src_data});");
    FmaBcstF32 = makeFmaBroadcastInstr(
        IsaName + "_fmadd_bcst_" + L + "xf32", ScalarKind::F32, Lanes, Space,
        "{dst_data} = " + Mnemo + "_fmadd_ps({lhs_data}, " + Mnemo +
            "_set1_ps({s_data}), {dst_data});");
    BcstF32 = makeBroadcastInstr(IsaName + "_set1_" + L + "xf32",
                                 ScalarKind::F32, Lanes, Space,
                                 "{dst_data} = " + Mnemo +
                                     "_set1_ps({s_data});");
  }

  std::string name() const override { return IsaName; }
  bool supports(ScalarKind Ty) const override {
    return Ty == ScalarKind::F32;
  }
  const MemSpace *space(ScalarKind) const override { return Space; }
  std::string prologue() const override {
    return "#include <immintrin.h>\n";
  }
  std::string jitFlags() const override { return Flags; }

  InstrPtr load(ScalarKind Ty) const override {
    return Ty == ScalarKind::F32 ? LoadF32 : nullptr;
  }
  InstrPtr store(ScalarKind Ty) const override {
    return Ty == ScalarKind::F32 ? StoreF32 : nullptr;
  }
  InstrPtr fmaLane(ScalarKind) const override { return nullptr; }
  InstrPtr fmaBroadcast(ScalarKind Ty) const override {
    return Ty == ScalarKind::F32 ? FmaBcstF32 : nullptr;
  }
  InstrPtr broadcast(ScalarKind Ty) const override {
    return Ty == ScalarKind::F32 ? BcstF32 : nullptr;
  }

private:
  std::string IsaName;
  unsigned Lanes;
  std::string Flags;
  const MemSpace *Space = nullptr;
  InstrPtr LoadF32, StoreF32, FmaBcstF32, BcstF32;
};

class Avx2Isa final : public AvxIsaBase {
public:
  Avx2Isa()
      : AvxIsaBase("avx2", "AVX2", "__m256", 8, "_mm256", "-mavx2 -mfma") {}
  bool hostExecutable() const override {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
};

class Avx512Isa final : public AvxIsaBase {
public:
  Avx512Isa()
      : AvxIsaBase("avx512", "AVX512", "__m512", 16, "_mm512",
                   "-mavx512f") {
    // One zmm holds 64 i8 inputs (16 accumulator lanes x quads) or 16 i32
    // accumulators; both views share the __m512i register type.
    I8Space = MemSpace::makeRegisterFile(
        "AVX512B", {{ScalarKind::I8, {"__m512i", 64}}});
    I32Space = MemSpace::makeRegisterFile(
        "AVX512I", {{ScalarKind::I32, {"__m512i", 16}}});
    // dpbssd is pairwise per lane; the lane-indexed semantics broadcast
    // rhs quad `l` to every lane first (the standard VNNI GEMM B shape).
    DotI8 = makeDotInstr(
        "avx512_dpbssd_16xi32_64xi8", ScalarKind::I8, ScalarKind::I32, 16, 4,
        I8Space, I32Space,
        "{dst_data} = _mm512_dpbssd_epi32({dst_data}, {lhs_data}, "
        "_mm512_set1_epi32(((const int32_t *)&{rhs_data})[{l}]));");
  }
  bool hostExecutable() const override {
    return __builtin_cpu_supports("avx512f");
  }
  const MemSpace *space(ScalarKind Ty) const override {
    if (Ty == ScalarKind::I8)
      return I8Space;
    if (Ty == ScalarKind::I32)
      return I32Space;
    return AvxIsaBase::space(Ty);
  }
  InstrPtr dotAccum(ScalarKind InTy) const override {
    return InTy == ScalarKind::I8 ? DotI8 : nullptr;
  }
  const MemSpace *accSpace(ScalarKind InTy) const override {
    return InTy == ScalarKind::I8 ? I32Space : nullptr;
  }

private:
  const MemSpace *I8Space = nullptr;
  const MemSpace *I32Space = nullptr;
  InstrPtr DotI8;
};

} // namespace

const IsaLib &exo::avx2Isa() {
  static Avx2Isa Isa;
  return Isa;
}

const IsaLib &exo::avx512Isa() {
  static Avx512Isa Isa;
  return Isa;
}
