//===- InstrBuilders.cpp --------------------------------------------------===//

#include "exo/isa/InstrBuilders.h"

#include "exo/ir/Builder.h"

using namespace exo;

InstrPtr exo::makeLoadInstr(const std::string &Name, ScalarKind Ty,
                            unsigned Lanes, const MemSpace *Reg,
                            const std::string &CFormat) {
  ProcBuilder B(Name);
  B.tensorParam("dst", Ty, {idx(Lanes)}, Reg, /*Mutable=*/true);
  B.tensorParam("src", Ty, {idx(Lanes)}, MemSpace::dram(), /*Mutable=*/false);
  ExprPtr I = B.beginFor("i", idx(0), idx(Lanes));
  B.assign("dst", {I}, B.readOf("src", {I}));
  B.endFor();
  return Instr::make(B.build(), CFormat);
}

InstrPtr exo::makeStoreInstr(const std::string &Name, ScalarKind Ty,
                             unsigned Lanes, const MemSpace *Reg,
                             const std::string &CFormat) {
  ProcBuilder B(Name);
  B.tensorParam("dst", Ty, {idx(Lanes)}, MemSpace::dram(), /*Mutable=*/true);
  B.tensorParam("src", Ty, {idx(Lanes)}, Reg, /*Mutable=*/false);
  ExprPtr I = B.beginFor("i", idx(0), idx(Lanes));
  B.assign("dst", {I}, B.readOf("src", {I}));
  B.endFor();
  return Instr::make(B.build(), CFormat);
}

InstrPtr exo::makeFmaLaneInstr(const std::string &Name, ScalarKind Ty,
                               unsigned Lanes, const MemSpace *Reg,
                               const std::string &CFormat) {
  ProcBuilder B(Name);
  B.tensorParam("dst", Ty, {idx(Lanes)}, Reg, /*Mutable=*/true);
  B.tensorParam("lhs", Ty, {idx(Lanes)}, Reg, /*Mutable=*/false);
  B.tensorParam("rhs", Ty, {idx(Lanes)}, Reg, /*Mutable=*/false);
  ExprPtr L = B.indexParam("l");
  // The paper's Fig. 3 lane checks: 0 <= l < Lanes.
  B.precond(BinOpExpr::make(BinOpExpr::Op::Ge, L, idx(0)));
  B.precond(BinOpExpr::make(BinOpExpr::Op::Lt, L, idx(Lanes)));
  ExprPtr I = B.beginFor("i", idx(0), idx(Lanes));
  B.reduce("dst", {I}, B.readOf("lhs", {I}) * B.readOf("rhs", {L}));
  B.endFor();
  return Instr::make(B.build(), CFormat);
}

InstrPtr exo::makeFmaBroadcastInstr(const std::string &Name, ScalarKind Ty,
                                    unsigned Lanes, const MemSpace *Reg,
                                    const std::string &CFormat) {
  ProcBuilder B(Name);
  B.tensorParam("dst", Ty, {idx(Lanes)}, Reg, /*Mutable=*/true);
  B.tensorParam("lhs", Ty, {idx(Lanes)}, Reg, /*Mutable=*/false);
  B.tensorParam("s", Ty, {idx(1)}, MemSpace::dram(), /*Mutable=*/false);
  ExprPtr I = B.beginFor("i", idx(0), idx(Lanes));
  B.reduce("dst", {I}, B.readOf("lhs", {I}) * B.readOf("s", {idx(0)}));
  B.endFor();
  return Instr::make(B.build(), CFormat);
}

InstrPtr exo::makeDotInstr(const std::string &Name, ScalarKind InTy,
                           ScalarKind AccTy, unsigned AccLanes, unsigned Group,
                           const MemSpace *RegIn, const MemSpace *RegAcc,
                           const std::string &CFormat) {
  ProcBuilder B(Name);
  B.tensorParam("dst", AccTy, {idx(AccLanes)}, RegAcc, /*Mutable=*/true);
  B.tensorParam("lhs", InTy, {idx(AccLanes), idx(Group)}, RegIn,
                /*Mutable=*/false);
  B.tensorParam("rhs", InTy, {idx(AccLanes), idx(Group)}, RegIn,
                /*Mutable=*/false);
  ExprPtr L = B.indexParam("l");
  B.precond(BinOpExpr::make(BinOpExpr::Op::Ge, L, idx(0)));
  B.precond(BinOpExpr::make(BinOpExpr::Op::Lt, L, idx(AccLanes)));
  ExprPtr I = B.beginFor("i", idx(0), idx(AccLanes));
  ExprPtr KK = B.beginFor("kk", idx(0), idx(Group));
  B.reduce("dst", {I}, B.readOf("lhs", {I, KK}) * B.readOf("rhs", {L, KK}));
  B.endFor();
  B.endFor();
  return Instr::make(B.build(), CFormat);
}

InstrPtr exo::makeBroadcastInstr(const std::string &Name, ScalarKind Ty,
                                 unsigned Lanes, const MemSpace *Reg,
                                 const std::string &CFormat) {
  ProcBuilder B(Name);
  B.tensorParam("dst", Ty, {idx(Lanes)}, Reg, /*Mutable=*/true);
  B.tensorParam("s", Ty, {idx(1)}, MemSpace::dram(), /*Mutable=*/false);
  ExprPtr I = B.beginFor("i", idx(0), idx(Lanes));
  B.assign("dst", {I}, B.readOf("s", {idx(0)}));
  B.endFor();
  return Instr::make(B.build(), CFormat);
}
