//===- Neon.cpp - ARM Neon instruction library ----------------------------===//
//
// The paper's hardware target. The f32 definitions mirror its Fig. 3
// (`neon_vst_4xf32`, `neon_vfmla_4xf32_4xf32`, ...); f16 support uses the
// "Neon8f" register space exactly as §III-D describes. The bf16 ("Neon8bf")
// and i8 ("Neon16b") spaces expose ARMv8.2+'s widening dot products
// (vbfdotq_laneq_f32, vdotq_laneq_s32) that accumulate pairs/quads into
// f32/i32 Q registers — the same K-grouped shape the GEMM layer's int8
// panel packing produces. This library is not executable on the x86
// hardware this repository is developed on — its generated C is validated
// by golden tests against the paper's figures and compiles on any aarch64
// toolchain with +fp16+bf16+dotprod.
//
//===----------------------------------------------------------------------===//

#include "exo/isa/InstrBuilders.h"
#include "exo/isa/IsaLib.h"

using namespace exo;

namespace {

class NeonIsa final : public IsaLib {
public:
  NeonIsa() {
    F32Space = MemSpace::makeRegisterFile(
        "Neon", {{ScalarKind::F32, {"float32x4_t", 4}},
                 {ScalarKind::F64, {"float64x2_t", 2}},
                 {ScalarKind::I32, {"int32x4_t", 4}}});
    F16Space = MemSpace::makeRegisterFile(
        "Neon8f", {{ScalarKind::F16, {"float16x8_t", 8}}});
    BF16Space = MemSpace::makeRegisterFile(
        "Neon8bf", {{ScalarKind::BF16, {"bfloat16x8_t", 8}}});
    I8Space = MemSpace::makeRegisterFile(
        "Neon16b", {{ScalarKind::I8, {"int8x16_t", 16}}});

    LoadF32 = makeLoadInstr("neon_vld_4xf32", ScalarKind::F32, 4, F32Space,
                            "{dst_data} = vld1q_f32(&{src_data});");
    StoreF32 = makeStoreInstr("neon_vst_4xf32", ScalarKind::F32, 4, F32Space,
                              "vst1q_f32(&{dst_data}, {src_data});");
    FmaLaneF32 = makeFmaLaneInstr(
        "neon_vfmla_4xf32_4xf32", ScalarKind::F32, 4, F32Space,
        "{dst_data} = vfmaq_laneq_f32({dst_data}, {lhs_data}, {rhs_data}, "
        "{l});");
    FmaBcstF32 = makeFmaBroadcastInstr(
        "neon_vfmadd_4xf32_4xf32", ScalarKind::F32, 4, F32Space,
        "{dst_data} = vfmaq_n_f32({dst_data}, {lhs_data}, {s_data});");
    BcstF32 = makeBroadcastInstr("neon_vdup_4xf32", ScalarKind::F32, 4,
                                 F32Space,
                                 "{dst_data} = vld1q_dup_f32(&{s_data});");

    LoadF16 = makeLoadInstr("neon_vld_8xf16", ScalarKind::F16, 8, F16Space,
                            "{dst_data} = vld1q_f16(&{src_data});");
    StoreF16 = makeStoreInstr("neon_vst_8xf16", ScalarKind::F16, 8, F16Space,
                              "vst1q_f16(&{dst_data}, {src_data});");
    FmaLaneF16 = makeFmaLaneInstr(
        "neon_vfmla_8xf16_8xf16", ScalarKind::F16, 8, F16Space,
        "{dst_data} = vfmaq_laneq_f16({dst_data}, {lhs_data}, {rhs_data}, "
        "{l});");
    FmaBcstF16 = makeFmaBroadcastInstr(
        "neon_vfmadd_8xf16_8xf16", ScalarKind::F16, 8, F16Space,
        "{dst_data} = vfmaq_n_f16({dst_data}, {lhs_data}, {s_data});");
    BcstF16 = makeBroadcastInstr("neon_vdup_8xf16", ScalarKind::F16, 8,
                                 F16Space,
                                 "{dst_data} = vld1q_dup_f16(&{s_data});");

    LoadBF16 = makeLoadInstr("neon_vld_8xbf16", ScalarKind::BF16, 8,
                             BF16Space,
                             "{dst_data} = vld1q_bf16(&{src_data});");
    StoreBF16 = makeStoreInstr("neon_vst_8xbf16", ScalarKind::BF16, 8,
                               BF16Space,
                               "vst1q_bf16(&{dst_data}, {src_data});");
    BcstBF16 = makeBroadcastInstr("neon_vdup_8xbf16", ScalarKind::BF16, 8,
                                  BF16Space,
                                  "{dst_data} = vld1q_dup_bf16(&{s_data});");
    DotBF16 = makeDotInstr(
        "neon_vbfdot_4xf32_8xbf16", ScalarKind::BF16, ScalarKind::F32, 4, 2,
        BF16Space, F32Space,
        "{dst_data} = vbfdotq_laneq_f32({dst_data}, {lhs_data}, {rhs_data}, "
        "{l});");

    LoadI8 = makeLoadInstr("neon_vld_16xi8", ScalarKind::I8, 16, I8Space,
                           "{dst_data} = vld1q_s8(&{src_data});");
    StoreI8 = makeStoreInstr("neon_vst_16xi8", ScalarKind::I8, 16, I8Space,
                             "vst1q_s8(&{dst_data}, {src_data});");
    BcstI8 = makeBroadcastInstr("neon_vdup_16xi8", ScalarKind::I8, 16,
                                I8Space,
                                "{dst_data} = vld1q_dup_s8(&{s_data});");
    DotI8 = makeDotInstr(
        "neon_vsdot_4xi32_16xi8", ScalarKind::I8, ScalarKind::I32, 4, 4,
        I8Space, F32Space,
        "{dst_data} = vdotq_laneq_s32({dst_data}, {lhs_data}, {rhs_data}, "
        "{l});");
  }

  std::string name() const override { return "neon"; }

  bool hostExecutable() const override {
#ifdef __aarch64__
    return true;
#else
    return false;
#endif
  }

  bool supports(ScalarKind Ty) const override {
    return Ty == ScalarKind::F32 || Ty == ScalarKind::F16 ||
           Ty == ScalarKind::BF16 || Ty == ScalarKind::I8;
  }

  const MemSpace *space(ScalarKind Ty) const override {
    switch (Ty) {
    case ScalarKind::F16:
      return F16Space;
    case ScalarKind::BF16:
      return BF16Space;
    case ScalarKind::I8:
      return I8Space;
    default:
      return F32Space;
    }
  }

  std::string prologue() const override {
    return "#include <arm_neon.h>\n";
  }

  std::string jitFlags() const override {
    return "-march=armv8.2-a+fp16+dotprod+bf16";
  }

  InstrPtr load(ScalarKind Ty) const override {
    return pick(Ty, LoadF32, LoadF16, LoadBF16, LoadI8);
  }
  InstrPtr store(ScalarKind Ty) const override {
    return pick(Ty, StoreF32, StoreF16, StoreBF16, StoreI8);
  }
  // bf16 and i8 have no plain element-wise FMA on Neon: their compute shape
  // is the widening dot below, so both FMA hooks return null for them and
  // UkrConfig::effectiveStyle degrades plain-FMA schedules to scalar.
  InstrPtr fmaLane(ScalarKind Ty) const override {
    return pick(Ty, FmaLaneF32, FmaLaneF16, nullptr, nullptr);
  }
  InstrPtr fmaBroadcast(ScalarKind Ty) const override {
    return pick(Ty, FmaBcstF32, FmaBcstF16, nullptr, nullptr);
  }
  InstrPtr broadcast(ScalarKind Ty) const override {
    return pick(Ty, BcstF32, BcstF16, BcstBF16, BcstI8);
  }
  InstrPtr dotAccum(ScalarKind InTy) const override {
    return pick(InTy, nullptr, nullptr, DotBF16, DotI8);
  }
  const MemSpace *accSpace(ScalarKind InTy) const override {
    // Both dots accumulate into 4-lane Q registers (f32 / i32).
    return dotAccum(InTy) ? F32Space : nullptr;
  }

private:
  static InstrPtr pick(ScalarKind Ty, const InstrPtr &F32,
                       const InstrPtr &F16, const InstrPtr &BF16,
                       const InstrPtr &I8) {
    switch (Ty) {
    case ScalarKind::F32:
      return F32;
    case ScalarKind::F16:
      return F16;
    case ScalarKind::BF16:
      return BF16;
    case ScalarKind::I8:
      return I8;
    default:
      return nullptr;
    }
  }

  const MemSpace *F32Space = nullptr;
  const MemSpace *F16Space = nullptr;
  const MemSpace *BF16Space = nullptr;
  const MemSpace *I8Space = nullptr;
  InstrPtr LoadF32, StoreF32, FmaLaneF32, FmaBcstF32, BcstF32;
  InstrPtr LoadF16, StoreF16, FmaLaneF16, FmaBcstF16, BcstF16;
  InstrPtr LoadBF16, StoreBF16, BcstBF16, DotBF16;
  InstrPtr LoadI8, StoreI8, BcstI8, DotI8;
};

} // namespace

const IsaLib &exo::neonIsa() {
  static NeonIsa Isa;
  return Isa;
}
