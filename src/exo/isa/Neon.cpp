//===- Neon.cpp - ARM Neon instruction library ----------------------------===//
//
// The paper's hardware target. The f32 definitions mirror its Fig. 3
// (`neon_vst_4xf32`, `neon_vfmla_4xf32_4xf32`, ...); f16 support uses the
// "Neon8f" register space exactly as §III-D describes. This library is not
// executable on the x86 hardware this repository is developed on — its
// generated C is validated by golden tests against the paper's figures and
// compiles on any aarch64 toolchain.
//
//===----------------------------------------------------------------------===//

#include "exo/isa/InstrBuilders.h"
#include "exo/isa/IsaLib.h"

using namespace exo;

namespace {

class NeonIsa final : public IsaLib {
public:
  NeonIsa() {
    F32Space = MemSpace::makeRegisterFile(
        "Neon", {{ScalarKind::F32, {"float32x4_t", 4}},
                 {ScalarKind::F64, {"float64x2_t", 2}}});
    F16Space = MemSpace::makeRegisterFile(
        "Neon8f", {{ScalarKind::F16, {"float16x8_t", 8}}});

    LoadF32 = makeLoadInstr("neon_vld_4xf32", ScalarKind::F32, 4, F32Space,
                            "{dst_data} = vld1q_f32(&{src_data});");
    StoreF32 = makeStoreInstr("neon_vst_4xf32", ScalarKind::F32, 4, F32Space,
                              "vst1q_f32(&{dst_data}, {src_data});");
    FmaLaneF32 = makeFmaLaneInstr(
        "neon_vfmla_4xf32_4xf32", ScalarKind::F32, 4, F32Space,
        "{dst_data} = vfmaq_laneq_f32({dst_data}, {lhs_data}, {rhs_data}, "
        "{l});");
    FmaBcstF32 = makeFmaBroadcastInstr(
        "neon_vfmadd_4xf32_4xf32", ScalarKind::F32, 4, F32Space,
        "{dst_data} = vfmaq_n_f32({dst_data}, {lhs_data}, {s_data});");
    BcstF32 = makeBroadcastInstr("neon_vdup_4xf32", ScalarKind::F32, 4,
                                 F32Space,
                                 "{dst_data} = vld1q_dup_f32(&{s_data});");

    LoadF16 = makeLoadInstr("neon_vld_8xf16", ScalarKind::F16, 8, F16Space,
                            "{dst_data} = vld1q_f16(&{src_data});");
    StoreF16 = makeStoreInstr("neon_vst_8xf16", ScalarKind::F16, 8, F16Space,
                              "vst1q_f16(&{dst_data}, {src_data});");
    FmaLaneF16 = makeFmaLaneInstr(
        "neon_vfmla_8xf16_8xf16", ScalarKind::F16, 8, F16Space,
        "{dst_data} = vfmaq_laneq_f16({dst_data}, {lhs_data}, {rhs_data}, "
        "{l});");
    FmaBcstF16 = makeFmaBroadcastInstr(
        "neon_vfmadd_8xf16_8xf16", ScalarKind::F16, 8, F16Space,
        "{dst_data} = vfmaq_n_f16({dst_data}, {lhs_data}, {s_data});");
    BcstF16 = makeBroadcastInstr("neon_vdup_8xf16", ScalarKind::F16, 8,
                                 F16Space,
                                 "{dst_data} = vld1q_dup_f16(&{s_data});");
  }

  std::string name() const override { return "neon"; }

  bool hostExecutable() const override {
#ifdef __aarch64__
    return true;
#else
    return false;
#endif
  }

  bool supports(ScalarKind Ty) const override {
    return Ty == ScalarKind::F32 || Ty == ScalarKind::F16;
  }

  const MemSpace *space(ScalarKind Ty) const override {
    return Ty == ScalarKind::F16 ? F16Space : F32Space;
  }

  std::string prologue() const override {
    return "#include <arm_neon.h>\n";
  }

  std::string jitFlags() const override {
    return "-march=armv8.2-a+fp16";
  }

  InstrPtr load(ScalarKind Ty) const override {
    return pick(Ty, LoadF32, LoadF16);
  }
  InstrPtr store(ScalarKind Ty) const override {
    return pick(Ty, StoreF32, StoreF16);
  }
  InstrPtr fmaLane(ScalarKind Ty) const override {
    return pick(Ty, FmaLaneF32, FmaLaneF16);
  }
  InstrPtr fmaBroadcast(ScalarKind Ty) const override {
    return pick(Ty, FmaBcstF32, FmaBcstF16);
  }
  InstrPtr broadcast(ScalarKind Ty) const override {
    return pick(Ty, BcstF32, BcstF16);
  }

private:
  static InstrPtr pick(ScalarKind Ty, const InstrPtr &F32,
                       const InstrPtr &F16) {
    if (Ty == ScalarKind::F32)
      return F32;
    if (Ty == ScalarKind::F16)
      return F16;
    return nullptr;
  }

  const MemSpace *F32Space = nullptr;
  const MemSpace *F16Space = nullptr;
  InstrPtr LoadF32, StoreF32, FmaLaneF32, FmaBcstF32, BcstF32;
  InstrPtr LoadF16, StoreF16, FmaLaneF16, FmaBcstF16, BcstF16;
};

} // namespace

const IsaLib &exo::neonIsa() {
  static NeonIsa Isa;
  return Isa;
}
