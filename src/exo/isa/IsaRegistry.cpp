//===- IsaRegistry.cpp ----------------------------------------------------===//

#include "exo/isa/IsaLib.h"

using namespace exo;

IsaLib::~IsaLib() = default;

const IsaLib *exo::findIsa(const std::string &Name) {
  for (const IsaLib *I : allIsas())
    if (I->name() == Name)
      return I;
  return nullptr;
}

std::vector<const IsaLib *> exo::allIsas() {
  return {&neonIsa(), &avx2Isa(), &avx512Isa(), &portableIsa()};
}
