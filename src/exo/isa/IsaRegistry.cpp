//===- IsaRegistry.cpp ----------------------------------------------------===//

#include "exo/isa/IsaLib.h"

using namespace exo;

IsaLib::~IsaLib() = default;

ScalarKind exo::dotAccumKind(ScalarKind InTy) {
  switch (InTy) {
  case ScalarKind::I8:
    return ScalarKind::I32;
  case ScalarKind::F16:
  case ScalarKind::BF16:
    return ScalarKind::F32;
  default:
    return InTy;
  }
}

unsigned exo::dotGroupSize(ScalarKind InTy) {
  switch (InTy) {
  case ScalarKind::I8:
    return 4;
  case ScalarKind::F16:
  case ScalarKind::BF16:
    return 2;
  default:
    return 1;
  }
}

const IsaLib *exo::findIsa(const std::string &Name) {
  for (const IsaLib *I : allIsas())
    if (I->name() == Name)
      return I;
  return nullptr;
}

std::vector<const IsaLib *> exo::allIsas() {
  return {&neonIsa(), &avx2Isa(), &avx512Isa(), &portableIsa()};
}
