//===- Error.h - Lightweight error handling for the exo library ----------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free error handling in the style of llvm::Error/Expected.
/// Scheduling primitives are fallible (a pattern may not match, a rewrite may
/// be unsafe); they return Expected<T> carrying a human-readable diagnostic.
/// Programmer errors (violated API contracts) are asserts, not Errors.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SUPPORT_ERROR_H
#define EXO_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace exo {

/// A failure diagnostic. An Error is either success (empty) or a message.
class Error {
public:
  Error() = default;

  /// Creates a failure with the given message.
  static Error failure(std::string Msg) {
    Error E;
    E.Msg = std::move(Msg);
    assert(!E.Msg->empty() && "failure message must be non-empty");
    return E;
  }

  static Error success() { return Error(); }

  /// True when this holds a failure.
  explicit operator bool() const { return Msg.has_value(); }

  const std::string &message() const {
    assert(Msg && "no message on a success Error");
    return *Msg;
  }

private:
  std::optional<std::string> Msg;
};

/// Either a value of type T or an error message. Accessing the value of a
/// failed Expected asserts; callers must test first.
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Val) : Val(std::move(Val)) {}
  /*implicit*/ Expected(Error E) : Err(std::move(E)) {
    assert(Err && "constructing Expected from a success Error");
  }

  /// True on success.
  explicit operator bool() const { return Val.has_value(); }

  T &operator*() {
    assert(Val && "dereferencing a failed Expected");
    return *Val;
  }
  const T &operator*() const {
    assert(Val && "dereferencing a failed Expected");
    return *Val;
  }
  T *operator->() {
    assert(Val && "dereferencing a failed Expected");
    return &*Val;
  }
  const T *operator->() const {
    assert(Val && "dereferencing a failed Expected");
    return &*Val;
  }

  /// Moves the contained value out.
  T take() {
    assert(Val && "taking from a failed Expected");
    return std::move(*Val);
  }

  const std::string &message() const { return Err.message(); }
  Error takeError() {
    assert(!Val && "takeError on a success Expected");
    return std::move(Err);
  }

private:
  std::optional<T> Val;
  Error Err;
};

/// Creates a failed Expected<T>/Error with a printf-style message.
Error errorf(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Aborts with a message; used for unreachable code paths.
[[noreturn]] void fatal(const std::string &Msg);

} // namespace exo

#endif // EXO_SUPPORT_ERROR_H
