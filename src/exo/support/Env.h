//===- Env.h - Checked environment-variable parsing -----------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One checked parser for every EXO_* knob, replacing the scattered
/// atoi/atof reads that silently turned "64MB" into 64 and "banana" into 0.
/// A malformed or out-of-range value is rejected with a one-line stderr
/// warning and the documented default — never silently misread.
///
/// Call-site convention: the caller passes BOTH the knob name and the raw
/// `std::getenv("EXO_...")` result. The redundancy is deliberate — the
/// docs_knobs_check gate (tests/KnobsCheck.cmake) greps for the literal
/// `getenv("EXO_...")` next to each knob use, so the lookup must stay at
/// the call site:
///
///   int W = exo::envInt("EXO_GEMMD_WORKERS",
///                       std::getenv("EXO_GEMMD_WORKERS"), 1, 1, 256);
///
/// Header-only so the lowest layers (obs) can use it without a new link
/// dependency.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SUPPORT_ENV_H
#define EXO_SUPPORT_ENV_H

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace exo {
namespace env_impl {

/// Once-per-knob guard for the malformed-value warning: a hot-path caller
/// (e.g. resolveGemmThreads, consulted per GEMM call) must not spam stderr
/// with the same line forever. Inline-function static, so every TU shares
/// one instance.
inline bool envAlreadyWarned(const char *Name) {
  static std::mutex M;
  static std::set<std::string> Seen;
  std::lock_guard<std::mutex> L(M);
  return !Seen.insert(Name).second;
}

} // namespace env_impl

/// Integer knob: \p Raw must be a whole base-10 integer within
/// [\p Min, \p Max]. Unset or empty returns \p Default silently; trailing
/// garbage, non-numeric text, or an out-of-range value warns once on
/// stderr and returns \p Default.
inline long long envInt(const char *Name, const char *Raw, long long Default,
                        long long Min, long long Max) {
  if (!Raw || !*Raw)
    return Default;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Raw, &End, 10);
  if (End == Raw || *End != '\0' || errno == ERANGE || V < Min || V > Max) {
    if (!env_impl::envAlreadyWarned(Name))
      std::fprintf(stderr,
                   "exo: ignoring %s='%s' (expected an integer in "
                   "[%lld, %lld]); using default %lld\n",
                   Name, Raw, Min, Max, Default);
    return Default;
  }
  return V;
}

/// Boolean knob, following the KNOBS.md convention that any integer is
/// accepted and non-zero means true. Unset or empty returns \p Default
/// silently; anything unparsable warns and returns \p Default.
inline bool envBool(const char *Name, const char *Raw, bool Default) {
  if (!Raw || !*Raw)
    return Default;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Raw, &End, 10);
  if (End == Raw || *End != '\0' || errno == ERANGE) {
    if (!env_impl::envAlreadyWarned(Name))
      std::fprintf(stderr,
                   "exo: ignoring %s='%s' (expected an integer, non-zero = "
                   "true); using default %d\n",
                   Name, Raw, Default ? 1 : 0);
    return Default;
  }
  return V != 0;
}

/// Floating-point knob (EXO_BENCH_SECONDS): same contract as envInt with a
/// strtod parse.
inline double envDouble(const char *Name, const char *Raw, double Default,
                        double Min, double Max) {
  if (!Raw || !*Raw)
    return Default;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Raw, &End);
  if (End == Raw || *End != '\0' || errno == ERANGE || !(V >= Min) ||
      !(V <= Max)) {
    if (!env_impl::envAlreadyWarned(Name))
      std::fprintf(stderr,
                   "exo: ignoring %s='%s' (expected a number in [%g, %g]); "
                   "using default %g\n",
                   Name, Raw, Min, Max, Default);
    return Default;
  }
  return V;
}

} // namespace exo

#endif // EXO_SUPPORT_ENV_H
