//===- Error.cpp ----------------------------------------------------------===//

#include "exo/support/Error.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace exo;

Error exo::errorf(const char *Fmt, ...) {
  char Buf[1024];
  va_list Ap;
  va_start(Ap, Fmt);
  vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  return Error::failure(Buf);
}

void exo::fatal(const std::string &Msg) {
  std::fprintf(stderr, "exo fatal error: %s\n", Msg.c_str());
  std::abort();
}
