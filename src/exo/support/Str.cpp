//===- Str.cpp ------------------------------------------------------------===//

#include "exo/support/Str.h"

#include <cstdarg>
#include <cstdio>

using namespace exo;

std::string exo::strf(const char *Fmt, ...) {
  char Buf[2048];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N < 0)
    return std::string();
  if (static_cast<size_t>(N) < sizeof(Buf))
    return std::string(Buf, N);
  // Rare slow path for very long formats.
  std::string Out(static_cast<size_t>(N) + 1, '\0');
  va_start(Ap, Fmt);
  vsnprintf(Out.data(), Out.size(), Fmt, Ap);
  va_end(Ap);
  Out.resize(static_cast<size_t>(N));
  return Out;
}

std::vector<std::string> exo::split(std::string_view S, char Sep,
                                    bool KeepEmpty) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t End = S.find(Sep, Start);
    if (End == std::string_view::npos)
      End = S.size();
    std::string_view Piece = S.substr(Start, End - Start);
    if (KeepEmpty || !Piece.empty())
      Out.emplace_back(Piece);
    if (End == S.size())
      break;
    Start = End + 1;
  }
  return Out;
}

std::string_view exo::trim(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t' ||
                        S.front() == '\n' || S.front() == '\r'))
    S.remove_prefix(1);
  while (!S.empty() && (S.back() == ' ' || S.back() == '\t' ||
                        S.back() == '\n' || S.back() == '\r'))
    S.remove_suffix(1);
  return S;
}

std::string exo::join(const std::vector<std::string> &Parts,
                      std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I)
      Out.append(Sep);
    Out.append(Parts[I]);
  }
  return Out;
}

bool exo::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

bool exo::endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

std::string exo::replaceAll(std::string S, std::string_view From,
                            std::string_view To) {
  if (From.empty())
    return S;
  size_t Pos = 0;
  while ((Pos = S.find(From, Pos)) != std::string::npos) {
    S.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return S;
}
