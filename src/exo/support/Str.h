//===- Str.h - Small string utilities -------------------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the library: splitting, trimming, joining,
/// and printf-style formatting into std::string.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SUPPORT_STR_H
#define EXO_SUPPORT_STR_H

#include <string>
#include <string_view>
#include <vector>

namespace exo {

/// printf into a std::string.
std::string strf(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits \p S on \p Sep, dropping empty pieces when \p KeepEmpty is false.
std::vector<std::string> split(std::string_view S, char Sep,
                               bool KeepEmpty = false);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// True when \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// True when \p S ends with \p Suffix.
bool endsWith(std::string_view S, std::string_view Suffix);

/// Replaces every occurrence of \p From in \p S with \p To.
std::string replaceAll(std::string S, std::string_view From,
                       std::string_view To);

} // namespace exo

#endif // EXO_SUPPORT_STR_H
