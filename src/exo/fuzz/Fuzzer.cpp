//===- Fuzzer.cpp - Deterministic sample drawing and campaign driver ------===//
//
// Drawing is deterministic: a single mt19937_64 stream seeded from
// FuzzOptions::Seed decides every choice, and candidate chain steps are
// validated against the evolving proc at draw time (a rejected candidate is
// simply not recorded), so two fuzzers with equal options produce identical
// campaigns. run() draws everything up front, prefetches every kernel the
// oracles will need through the KernelService worker pool (compilations
// overlap instead of serializing on first use), then runs the battery.
//
//===----------------------------------------------------------------------===//

#include "exo/fuzz/Fuzz.h"
#include "exo/fuzz/FuzzInternal.h"

#include "exo/ir/Rewrite.h"
#include "exo/isa/IsaLib.h"
#include "gemm/PriorDb.h"
#include "ukr/KernelService.h"

#include <cstdio>
#include <cstdlib>
#include <random>
#include <set>

using namespace exo;
using namespace exo::fuzz;

struct ScheduleFuzzer::Impl {
  FuzzOptions O;
  std::mt19937_64 Rng;
  FuzzStats St;
  int Drawn = 0;

  explicit Impl(const FuzzOptions &O) : O(O), Rng(O.Seed) {}

  template <typename T> T pick(std::initializer_list<T> L) {
    auto It = L.begin();
    std::advance(It, Rng() % L.size());
    return *It;
  }

  /// Appends \p Step if the scheduler accepts it on top of the sample's
  /// current pipeline.
  bool tryStep(FuzzSample &S, const RewriteStep &Step) {
    FuzzSample Cand = S;
    Cand.Steps.push_back(Step);
    if (std::getenv("EXO_FUZZ_TRACE"))
      std::fprintf(stderr, "[trace] tryStep:\n%s",
                   serializeSample(Cand).c_str());
    Expected<AppliedSample> A = applySample(Cand);
    if (!A || A->AppliedSteps.size() != Cand.Steps.size())
      return false;
    S = std::move(Cand);
    return true;
  }

  FuzzSample drawRecipe(FuzzSample S) {
    S.M = FuzzSample::Mode::Recipe;
    S.MR = pick<int64_t>({4, 8, 8, 8, 12, 16, 24});
    S.NR = pick<int64_t>({4, 6, 8, 12, 12, 16});
    S.Isa = pick<const char *>(
        {"portable", "portable", "avx2", "avx2", "avx512", "neon", "none"});
    S.Style = pick<const char *>({"auto", "auto", "auto", "lane", "bcst"});
    // Weighted dtype draw (§III-D): most recipes stay f32 — the JIT and
    // cross oracles only run there — but every campaign also exercises the
    // typed instruction libraries: the Neon f16/bf16 half schedules and the
    // K-grouped i8 -> i32 dot paths (Neon sdot-style / AVX-512 VNNI),
    // gated to libraries that actually carry those spaces so the default
    // campaign keeps its zero-rejection invariant.
    const uint64_t TyDraw = Rng() % 8;
    if (TyDraw == 0 && (S.Isa == "neon" || S.Isa == "none"))
      S.Ty = "f16";
    else if (TyDraw == 1 && (S.Isa == "neon" || S.Isa == "none"))
      S.Ty = "bf16";
    else if (TyDraw == 2 &&
             (S.Isa == "neon" || S.Isa == "avx512" || S.Isa == "none")) {
      S.Ty = "i8";
      S.WidenAcc = true; // i8 accumulates i32, the dot-unit convention
    } else {
      S.Ty = "f32";
    }
    S.UnrollLoads = Rng() % 2 == 0;
    S.UnrollCompute = Rng() % 4 == 0;
    // widen_acc has no axpby spec (Fig. 4 is same-type); keep them apart.
    S.GeneralAlphaBeta = !S.WidenAcc && Rng() % 4 == 0;
    St.IsasScheduled.insert(S.Isa);
    return S;
  }

  FuzzSample drawChain(FuzzSample S) {
    S.M = FuzzSample::Mode::Chain;
    S.MR = pick<int64_t>({2, 4, 4, 8, 8, 16});
    S.NR = pick<int64_t>({3, 4, 8, 12});
    S.Ty = "f32";
    S.GeneralAlphaBeta = Rng() % 8 == 0;
    S.UnrollCompute = false;

    // Most chains start from a vectorized kernel so the replace/stage
    // machinery is inside the fuzzed pipeline; the rest stay scalar C.
    std::string VecIsa = "none";
    if (Rng() % 5 != 0) {
      RewriteStep V;
      V.K = RewriteStep::Kind::Vectorize;
      V.Isa = pick<const char *>(
          {"portable", "portable", "avx2", "avx512", "neon"});
      V.Style = pick<const char *>({"auto", "auto", "lane", "bcst"});
      V.UnrollLoads = Rng() % 2 == 0;
      if (tryStep(S, V))
        VecIsa = V.Isa;
    }
    St.IsasScheduled.insert(VecIsa);

    int Extra = static_cast<int>(Rng() % 4);
    int Fresh = 0;
    for (int K = 0; K != Extra; ++K) {
      Expected<AppliedSample> A = applySample(S);
      if (!A)
        break;
      std::set<std::string> Vars;
      collectLoopVars(A->Scheduled.body(), Vars);
      if (Vars.empty())
        break;
      auto PickVar = [&] {
        std::vector<std::string> V(Vars.begin(), Vars.end());
        return V[Rng() % V.size()];
      };
      std::string Var = PickVar();
      std::string Pat = "for " + Var + " in _: _";
      RewriteStep Step;
      switch (Rng() % 5) {
      case 0:
        Step.K = RewriteStep::Kind::Divide;
        Step.Pattern = Pat;
        Step.Factor = 2 + static_cast<int64_t>(Rng() % 3);
        Step.Outer = "fz" + std::to_string(Fresh++);
        Step.Inner = "fz" + std::to_string(Fresh++);
        Step.Perfect = Rng() % 2 == 0;
        break;
      case 1: {
        std::string V2 = PickVar();
        if (V2 == Var)
          continue;
        Step.K = RewriteStep::Kind::Reorder;
        Step.Pattern = Var + " " + V2;
        break;
      }
      case 2:
        Step.K = RewriteStep::Kind::Unroll;
        Step.Pattern = Pat;
        break;
      case 3:
        Step.K = RewriteStep::Kind::Cut;
        Step.Pattern = Pat;
        Step.Factor = static_cast<int64_t>(Rng() % 5);
        break;
      case 4:
        Step.K = RewriteStep::Kind::Fuse;
        Step.Pattern = Pat;
        break;
      }
      tryStep(S, Step); // rejected candidates are simply not recorded
    }

    if (!O.Fault.empty())
      S.Fault = O.Fault;
    return S;
  }

  /// A recipe sample whose tile comes out of a synthetic tuned-prior
  /// record: the record is serialized and re-parsed through the PriorDb
  /// on-disk format, then materialized with priorRecordConfig — the exact
  /// mapping Planner::choosePlanWithDb uses — so every Nth campaign sample
  /// checks that a prior-shaped schedule is semantics-preserving. Tiles are
  /// restricted to the portable-admissible set so the sample is legal on
  /// any host.
  FuzzSample drawPriorShaped(FuzzSample S) {
    S.M = FuzzSample::Mode::Recipe;
    struct Tile {
      int64_t MR, NR;
    };
    Tile T = pick<Tile>({{8, 12}, {8, 8}, {8, 4}, {4, 8}, {4, 4}, {16, 4}});

    gemm::PriorRecord Rec;
    Rec.Machine = gemm::priorMachineKey();
    Rec.MR = T.MR;
    Rec.NR = T.NR;
    Rec.M = T.MR * static_cast<int64_t>(1 + Rng() % 8);
    Rec.N = T.NR * static_cast<int64_t>(1 + Rng() % 8);
    Rec.K = 16 + static_cast<int64_t>(Rng() % 512);
    Rec.Class = gemm::priorShapeClass(Rec.M, Rec.N, Rec.K);
    Rec.UnrollCompute = Rng() % 4 == 0;
    Rec.TunedGflops = 2.0; // positive margin: the planner would accept it
    Rec.ModelMR = 8;
    Rec.ModelNR = 8;
    Rec.ModelGflops = 1.0;

    Expected<gemm::PriorRecord> P =
        gemm::parsePriorRecord(gemm::formatPriorRecord(Rec));
    if (P)
      ++St.PriorShaped; // only a surviving round trip counts as coverage
    ukr::UkrConfig Cfg = gemm::priorRecordConfig(P ? *P : Rec);
    S.MR = Cfg.MR;
    S.NR = Cfg.NR;
    S.Isa = Cfg.Isa ? Cfg.Isa->name() : "none";
    S.Style = "auto";
    S.UnrollLoads = Cfg.UnrollLoads;
    S.UnrollCompute = Cfg.UnrollCompute;
    St.IsasScheduled.insert(S.Isa);
    return S;
  }

  FuzzSample draw() {
    FuzzSample S;
    S.Seed = Rng();
    S.KC = 1 + static_cast<int64_t>(Rng() % 8);
    S.LdcSlack = pick<int64_t>({0, 0, 0, 1, 2, 5});
    ++Drawn;
    if (O.PriorEvery > 0 && Drawn % O.PriorEvery == 0)
      return drawPriorShaped(S);
    return Rng() % 4 == 0 ? drawRecipe(S) : drawChain(S);
  }

  /// Queues every kernel build the oracles will request so the service
  /// workers compile them concurrently.
  void prefetch(const FuzzSample &S) {
    if (S.Ty != "f32")
      return;
    auto Queue = [&](const std::string &Isa, const std::string &Style,
                     bool UnrollLoads) {
      Expected<ukr::UkrConfig> Cfg =
          detail::sampleUkrConfig(S, Isa, Style, UnrollLoads);
      if (Cfg && (!Cfg->Isa || Cfg->Isa->hostExecutable()))
        ukr::KernelService::global().prefetch(*Cfg);
    };
    if (S.M == FuzzSample::Mode::Recipe && O.Oracle.CheckJit)
      Queue(S.Isa, S.Style, S.UnrollLoads);
    if (O.Oracle.CheckCross)
      for (const char *Isa : {"none", "portable", "avx2", "avx512"})
        Queue(Isa, "auto", true);
  }
};

ScheduleFuzzer::ScheduleFuzzer(const FuzzOptions &O) : I(new Impl(O)) {}

ScheduleFuzzer::~ScheduleFuzzer() { delete I; }

FuzzSample ScheduleFuzzer::draw() { return I->draw(); }

const FuzzStats &ScheduleFuzzer::stats() const { return I->St; }

std::optional<FuzzFailure> ScheduleFuzzer::run() {
  std::vector<FuzzSample> Samples;
  Samples.reserve(static_cast<size_t>(I->O.Iterations));
  for (int K = 0; K != I->O.Iterations; ++K)
    Samples.push_back(I->draw());
  for (const FuzzSample &S : Samples)
    I->prefetch(S);

  for (size_t K = 0; K != Samples.size(); ++K) {
    OracleOptions OO = I->O.Oracle;
    OO.CheckDriver =
        OO.CheckDriver || (I->O.DriverEvery > 0 &&
                           K % static_cast<size_t>(I->O.DriverEvery) ==
                               static_cast<size_t>(I->O.DriverEvery) - 1);
    OracleOutcome Res;
    Error E = runOracles(Samples[K], OO, &Res);
    ++I->St.Samples;
    if (Res.Rejected)
      ++I->St.Rejected;
    if (Res.InterpChecked)
      ++I->St.InterpChecks;
    if (Res.JitChecked)
      ++I->St.JitChecks;
    if (Res.CrossChecked)
      ++I->St.CrossChecks;
    if (Res.DriverChecked)
      ++I->St.DriverChecks;
    I->St.IsasCompared.insert(Res.IsasCompared.begin(),
                              Res.IsasCompared.end());
    if (E) {
      // Drain the prefetch queue before handing control back: builds still
      // in flight must not outlive the caller (static teardown order).
      ukr::KernelService::global().wait();
      return FuzzFailure{Samples[K], E.message(), OO};
    }
  }
  ukr::KernelService::global().wait();
  return std::nullopt;
}
