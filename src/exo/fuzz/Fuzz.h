//===- Fuzz.h - Differential schedule fuzzing -----------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-conformance fuzzing subsystem. The paper's claim is that
/// every accepted rewrite pipeline is semantics-preserving for every
/// micro-kernel shape and every instruction library; hand-picked schedules
/// (the Fig. 6-11 pipeline, the generator's fixed recipes) only ever test a
/// few points of that space. A ScheduleFuzzer draws random micro-kernel
/// specs (MR/NR/KC, edge remainders, ldc slack, dtypes, alpha/beta) and
/// random-but-legal rewrite sequences, then checks three oracles per sample:
///
///   1. interp:  the rewritten IR, evaluated by the reference interpreter,
///               equals the unscheduled spec on random inputs (bitwise —
///               integer-valued data keeps float math exact).
///   2. jit:     the emitted C, JIT-compiled through the KernelService /
///               DiskCache path, matches the interpreter bit-for-bit on
///               integer-valued inputs and to tight tolerances on random
///               float inputs.
///   3. cross:   every host-executable instruction library that fits the
///               shape (portable, AVX2, AVX-512, plus the scalar kernel)
///               agrees bitwise on the same sample, and the threaded
///               blisGemmT driver agrees with the naive reference at every
///               team size.
///
/// Failing samples are auto-minimized (steps dropped, sizes shrunk while the
/// mismatch reproduces) and serialized as standalone repro files that the
/// `fuzz_replay` tool re-runs, so every future rewrite/codegen change
/// inherits a regression corpus under tests/fuzz/corpus/.
///
/// Determinism: a campaign is fully determined by (seed, iteration count).
/// Fault injection (FuzzSample::Fault, EXO_FUZZ_FAULT) simulates a rewrite
/// bug — after the matching rewrite step is applied, the first loop of the
/// proc silently loses its last iteration — so the oracle stack itself is
/// testable: an injected fault must be caught and must minimize.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_FUZZ_FUZZ_H
#define EXO_FUZZ_FUZZ_H

#include "exo/ir/Proc.h"
#include "exo/support/Error.h"

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace exo {

class IsaLib;

namespace fuzz {

/// One serialized scheduling directive of a chain-mode sample. Vectorize is
/// the composite lane/broadcast recipe (stage registers, fission, replace
/// loads/stores/FMA against the named instruction library) and may only
/// appear as the first step — it rewrites the fresh spec.
struct RewriteStep {
  enum class Kind : uint8_t { Divide, Reorder, Unroll, Cut, Fuse, Vectorize };
  Kind K = Kind::Divide;
  /// Loop pattern ("for i in _: _ #0") or reorder pair ("jt it #1").
  std::string Pattern;
  int64_t Factor = 0; ///< Divide factor / Cut point.
  bool Perfect = false;
  std::string Outer, Inner; ///< Divide's new loop names.
  std::string Isa;          ///< Vectorize: instruction library name.
  std::string Style;        ///< Vectorize: "lane" or "bcst".
  bool UnrollLoads = false; ///< Vectorize: run the Fig. 11 unroll too.

  /// Stable label, e.g. `divide |for i in _: _| 4`. Fault specs match
  /// against this.
  std::string describe() const;
};

/// One drawn micro-kernel spec + schedule. Value type, fully serializable.
struct FuzzSample {
  /// Recipe samples run the generator's full pipeline for a UkrConfig;
  /// chain samples apply an explicit random rewrite sequence.
  enum class Mode : uint8_t { Recipe, Chain };
  Mode M = Mode::Chain;
  uint64_t Seed = 0; ///< Seed the sample was drawn from (diagnostics).
  int64_t MR = 8, NR = 12, KC = 4;
  int64_t LdcSlack = 0; ///< ldc = MR + LdcSlack.
  /// Element type name ("f32", "f16", "bf16", "i8", ...). Non-f32 samples
  /// run the interpreter oracle only.
  std::string Ty = "f32";
  /// Accumulate into dotAccumKind(Ty) instead of Ty (the i8 -> i32 and
  /// bf16 -> f32 dot-product convention; mirrors UkrConfig::WidenAcc).
  /// Serialized as `widen_acc` only when set, so pre-dtype repro files
  /// stay byte-identical.
  bool WidenAcc = false;
  // Recipe-mode fields (mirror ukr::UkrConfig).
  std::string Isa = "portable"; ///< Library name, or "none" for scalar.
  std::string Style = "auto";   ///< auto | lane | bcst | scalar.
  bool UnrollLoads = true;
  bool UnrollCompute = false;
  bool GeneralAlphaBeta = false; ///< Fig. 4 alpha/beta spec (axpby ABI).
  // Chain-mode fields.
  std::vector<RewriteStep> Steps;
  /// Fault injection: after applying the first step whose describe()
  /// contains this substring, the first loop of the proc drops its last
  /// iteration. Empty = no fault. Serialized into repro files so a fault
  /// repro reproduces standalone.
  std::string Fault;

  /// One-line human summary.
  std::string summary() const;
};

/// Repro-file (de)serialization. The format is line-based and versioned
/// ("exo-fuzz-repro v1"); see docs/TESTING.md.
std::string serializeSample(const FuzzSample &S);
Expected<FuzzSample> parseSample(const std::string &Text);
Expected<FuzzSample> loadSampleFile(const std::string &Path);
Error saveSampleFile(const FuzzSample &S, const std::string &Path);

/// The result of materializing a sample: the partial-evaluated unscheduled
/// spec and the scheduled proc (fault applied, when requested).
struct AppliedSample {
  Proc Spec;
  Proc Scheduled;
  std::vector<std::string> AppliedSteps;
  std::vector<std::string> SkippedSteps; ///< Steps the scheduler rejected.
  bool FaultFired = false;
  /// Library for codegen/JIT of Scheduled; null for pure-C procs.
  const IsaLib *Isa = nullptr;
};

/// Builds the spec and applies the sample's pipeline. Scheduler-rejected
/// chain steps are recorded as skipped, not errors; a sample whose *recipe*
/// is inconsistent (e.g. lane style with NR not a lane multiple) comes back
/// as an error — callers count it as rejected, never as a bug.
Expected<AppliedSample> applySample(const FuzzSample &S);

/// Which oracles to run on a sample.
struct OracleOptions {
  int InterpTrials = 2;  ///< Oracle 1 random instantiations.
  bool CheckJit = true;  ///< Oracle 2 (skipped when no compiler / non-host ISA).
  bool CheckCross = true;///< Oracle 3a: cross-library kernel agreement.
  bool CheckDriver = false; ///< Oracle 3b: threaded blisGemmT vs reference.
  unsigned InputSeed = 1;///< Seed for oracle input data.
};

/// What actually ran (coverage accounting for the smoke test).
struct OracleOutcome {
  bool Rejected = false; ///< Sample was inconsistent; nothing checked.
  bool InterpChecked = false;
  bool JitChecked = false;
  bool CrossChecked = false;
  bool DriverChecked = false;
  /// Chain-step accounting: a corpus replay with skipped steps is vacuous,
  /// so fuzz_replay rejects it.
  int StepsApplied = 0;
  int StepsSkipped = 0;
  /// Kernel families actually executed and compared ("portable", "avx2",
  /// "avx512", "c" for the scalar kernel).
  std::set<std::string> IsasCompared;
};

/// Runs the oracle battery. Success either means every requested oracle
/// agreed or the sample was rejected (see OracleOutcome::Rejected); failure
/// carries the oracle name and a diagnostic.
Error runOracles(const FuzzSample &S, const OracleOptions &O,
                 OracleOutcome *Out = nullptr);

/// Campaign configuration.
struct FuzzOptions {
  uint64_t Seed = 0xE40;
  int Iterations = 64;
  OracleOptions Oracle;
  /// Check the GEMM driver on every Nth sample (0 disables). Driver checks
  /// dominate wall time, so the smoke suite rations them.
  int DriverEvery = 8;
  /// Draw every Nth sample's tile config from a synthetic tuned-prior
  /// record (0 disables): the record round-trips through the PriorDb
  /// serialization and materializes through the same priorRecordConfig
  /// mapping the planner uses, so the campaign exercises the
  /// Prior→schedule path end to end.
  int PriorEvery = 8;
  /// Inject this fault into every drawn chain sample (EXO_FUZZ_FAULT).
  std::string Fault;
};

struct FuzzFailure {
  FuzzSample Sample;
  std::string Message;
  /// The oracle set the sample failed under (driver checks are rationed, so
  /// this can be wider than FuzzOptions::Oracle) — minimize with these.
  OracleOptions Oracle;
};

/// Campaign coverage counters.
struct FuzzStats {
  int Samples = 0;
  int Rejected = 0;
  int InterpChecks = 0;
  int JitChecks = 0;
  int CrossChecks = 0;
  int DriverChecks = 0;
  /// Samples whose tile config came from a synthetic prior record that
  /// survived the PriorDb format round trip (FuzzOptions::PriorEvery). A
  /// campaign drawing fewer than Samples / PriorEvery of these means the
  /// record format broke under the fuzzer's tiles.
  int PriorShaped = 0;
  /// Libraries that appeared in a drawn sample's schedule (includes
  /// non-host-executable ones like neon, which are interp/codegen-checked).
  std::set<std::string> IsasScheduled;
  /// Kernel families executed by oracle 2/3.
  std::set<std::string> IsasCompared;
};

/// See file comment. Drawing is deterministic: two fuzzers with equal
/// options draw identical sample sequences.
class ScheduleFuzzer {
public:
  explicit ScheduleFuzzer(const FuzzOptions &O);
  ~ScheduleFuzzer();
  ScheduleFuzzer(const ScheduleFuzzer &) = delete;
  ScheduleFuzzer &operator=(const ScheduleFuzzer &) = delete;

  /// Draws the next sample (legal at draw time; chain steps are pre-applied
  /// and only accepted ones recorded).
  FuzzSample draw();

  /// Runs the whole campaign: draws Iterations samples, prefetches their
  /// kernels through the KernelService worker pool, then runs the oracle
  /// battery on each. Stops at the first failure.
  std::optional<FuzzFailure> run();

  const FuzzStats &stats() const;

private:
  struct Impl;
  Impl *I;
};

/// Shrinks a failing sample while the failure reproduces: drops rewrite
/// steps (greedy delta debugging), then shrinks KC and the ldc slack.
/// Returns the smallest still-failing sample; \p RoundsOut (optional)
/// reports how many candidate re-runs were spent.
FuzzSample minimizeSample(const FuzzSample &S, const OracleOptions &O,
                          int *RoundsOut = nullptr);

/// Environment knobs (documented in docs/TESTING.md): EXO_FUZZ_SEED,
/// EXO_FUZZ_ITERS, EXO_FUZZ_FAULT.
uint64_t fuzzSeedFromEnv(uint64_t Dflt);
int fuzzItersFromEnv(int Dflt);
std::string fuzzFaultFromEnv();

} // namespace fuzz
} // namespace exo

#endif // EXO_FUZZ_FUZZ_H
