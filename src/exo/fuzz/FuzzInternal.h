//===- FuzzInternal.h - Helpers shared inside the fuzz subsystem ----------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef EXO_FUZZ_FUZZINTERNAL_H
#define EXO_FUZZ_FUZZINTERNAL_H

#include "exo/fuzz/Fuzz.h"
#include "exo/sched/Schedule.h"
#include "ukr/UkrConfig.h"

namespace exo {
namespace fuzz {
namespace detail {

/// Fast scheduling options for fuzzing: the fuzzer's own oracles are the
/// authoritative check, so the per-rewrite interpreter safety net is off —
/// otherwise an injected fault could never reach the oracles.
inline SchedOptions fastSchedOpts() {
  SchedOptions O;
  O.Validate = false;
  return O;
}

/// The ukr::UkrConfig described by a sample's shape plus the given
/// library/style names ("none" = scalar kernel); fails on unknown names.
Expected<ukr::UkrConfig> sampleUkrConfig(const FuzzSample &S,
                                         const std::string &IsaName,
                                         const std::string &StyleName,
                                         bool UnrollLoads);

} // namespace detail
} // namespace fuzz
} // namespace exo

#endif // EXO_FUZZ_FUZZINTERNAL_H
