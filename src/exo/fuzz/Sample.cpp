//===- Sample.cpp - Fuzz sample model, serialization, application ---------===//

#include "exo/fuzz/Fuzz.h"
#include "exo/fuzz/FuzzInternal.h"

#include "exo/jit/DiskCache.h"
#include "exo/sched/Schedule.h"
#include "exo/support/Str.h"
#include "ukr/UkrSchedule.h"
#include "ukr/UkrSpec.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace exo;
using namespace exo::fuzz;

namespace {

SchedOptions fastOpts() { return detail::fastSchedOpts(); }

std::optional<ScalarKind> scalarKindFromName(const std::string &Name) {
  for (ScalarKind K : {ScalarKind::F16, ScalarKind::BF16, ScalarKind::F32,
                       ScalarKind::F64, ScalarKind::I8})
    if (Name == scalarKindName(K))
      return K;
  return std::nullopt;
}

} // namespace

Expected<ukr::UkrConfig> detail::sampleUkrConfig(const FuzzSample &S,
                                                 const std::string &IsaName,
                                                 const std::string &StyleName,
                                                 bool UnrollLoads) {
  ukr::UkrConfig Cfg;
  Cfg.MR = S.MR;
  Cfg.NR = S.NR;
  std::optional<ScalarKind> Ty = scalarKindFromName(S.Ty);
  if (!Ty)
    return errorf("fuzz: unknown element type '%s'", S.Ty.c_str());
  Cfg.Ty = *Ty;
  if (IsaName != "none") {
    Cfg.Isa = findIsa(IsaName);
    if (!Cfg.Isa)
      return errorf("fuzz: unknown isa '%s'", IsaName.c_str());
  }
  if (StyleName == "auto")
    Cfg.Style = ukr::FmaStyle::Auto;
  else if (StyleName == "lane")
    Cfg.Style = ukr::FmaStyle::Lane;
  else if (StyleName == "bcst")
    Cfg.Style = ukr::FmaStyle::Broadcast;
  else if (StyleName == "scalar" || IsaName == "none")
    Cfg.Style = ukr::FmaStyle::Scalar;
  else
    return errorf("fuzz: unknown style '%s'", StyleName.c_str());
  if (IsaName == "none")
    Cfg.Style = ukr::FmaStyle::Scalar;
  Cfg.UnrollLoads = UnrollLoads;
  Cfg.UnrollCompute = S.UnrollCompute;
  Cfg.GeneralAlphaBeta = S.GeneralAlphaBeta;
  Cfg.WidenAcc = S.WidenAcc;
  return Cfg;
}

namespace {

/// Simulated rewrite bug: the first loop of the body silently loses its
/// last iteration. Deterministic, semantics-breaking for every sample whose
/// first loop does work, and exactly the class of bound bug a broken
/// divide/cut tail would produce.
Proc dropLastIterationOfFirstLoop(const Proc &P) {
  std::vector<StmtPtr> Body = P.body();
  for (StmtPtr &S : Body) {
    if (const auto *F = dyn_castS<ForStmt>(S)) {
      S = ForStmt::make(F->loopVar(), F->lo(),
                        BinOpExpr::make(BinOpExpr::Op::Sub, F->hi(), idx(1)),
                        F->body());
      break;
    }
  }
  return P.withBody(std::move(Body));
}

/// The unscheduled reference spec for a sample, renamed to \p Name and with
/// MR/NR specialized (the paper's Fig. 6 partial evaluation).
Expected<Proc> makeSpec(const FuzzSample &S, const std::string &Name) {
  std::optional<ScalarKind> Ty = scalarKindFromName(S.Ty);
  if (!Ty)
    return errorf("fuzz: unknown element type '%s'", S.Ty.c_str());
  if (S.WidenAcc && S.GeneralAlphaBeta)
    return errorf("fuzz: widen_acc has no axpby spec");
  Proc Ref = S.GeneralAlphaBeta ? ukr::makeUkernelRefFull(*Ty)
             : S.WidenAcc ? ukr::makeUkernelRef(*Ty, dotAccumKind(*Ty))
                          : ukr::makeUkernelRef(*Ty);
  return partialEval(renameProc(Ref, Name), {{"MR", S.MR}, {"NR", S.NR}});
}

Expected<Proc> applyChainStep(const Proc &P, const RewriteStep &St) {
  switch (St.K) {
  case RewriteStep::Kind::Divide:
    return divideLoop(P, St.Pattern, St.Factor, St.Outer, St.Inner,
                      St.Perfect, fastOpts());
  case RewriteStep::Kind::Reorder:
    return reorderLoops(P, St.Pattern, fastOpts());
  case RewriteStep::Kind::Unroll:
    return unrollLoop(P, St.Pattern, fastOpts());
  case RewriteStep::Kind::Cut:
    return cutLoop(P, St.Pattern, St.Factor, fastOpts());
  case RewriteStep::Kind::Fuse:
    return fuseLoops(P, St.Pattern, fastOpts());
  case RewriteStep::Kind::Vectorize:
    return errorf("vectorize is handled by applySample");
  }
  return errorf("unknown step kind");
}

} // namespace

std::string RewriteStep::describe() const {
  switch (K) {
  case Kind::Divide:
    return strf("divide |%s| %lld %s %s %d", Pattern.c_str(),
                static_cast<long long>(Factor), Outer.c_str(), Inner.c_str(),
                Perfect ? 1 : 0);
  case Kind::Reorder:
    return strf("reorder |%s|", Pattern.c_str());
  case Kind::Unroll:
    return strf("unroll |%s|", Pattern.c_str());
  case Kind::Cut:
    return strf("cut |%s| %lld", Pattern.c_str(),
                static_cast<long long>(Factor));
  case Kind::Fuse:
    return strf("fuse |%s|", Pattern.c_str());
  case Kind::Vectorize:
    return strf("vectorize %s %s %d", Isa.c_str(), Style.c_str(),
                UnrollLoads ? 1 : 0);
  }
  return "?";
}

std::string FuzzSample::summary() const {
  std::string S =
      strf("%s %lldx%lld kc=%lld slack=%lld %s isa=%s style=%s",
           M == Mode::Recipe ? "recipe" : "chain",
           static_cast<long long>(MR), static_cast<long long>(NR),
           static_cast<long long>(KC), static_cast<long long>(LdcSlack),
           Ty.c_str(), Isa.c_str(), Style.c_str());
  if (WidenAcc)
    S += " widen";
  if (GeneralAlphaBeta)
    S += " axpby";
  if (!Steps.empty())
    S += strf(" steps=%zu", Steps.size());
  if (!Fault.empty())
    S += " fault='" + Fault + "'";
  return S;
}

std::string fuzz::serializeSample(const FuzzSample &S) {
  std::ostringstream O;
  O << "exo-fuzz-repro v1\n";
  O << "mode " << (S.M == FuzzSample::Mode::Recipe ? "recipe" : "chain")
    << "\n";
  O << "seed " << S.Seed << "\n";
  O << "shape " << S.MR << " " << S.NR << " " << S.KC << " " << S.LdcSlack
    << "\n";
  O << "ty " << S.Ty << "\n";
  if (S.WidenAcc)
    O << "widen_acc 1\n";
  O << "isa " << S.Isa << "\n";
  O << "style " << S.Style << "\n";
  O << "unroll_loads " << (S.UnrollLoads ? 1 : 0) << "\n";
  O << "unroll_compute " << (S.UnrollCompute ? 1 : 0) << "\n";
  O << "axpby " << (S.GeneralAlphaBeta ? 1 : 0) << "\n";
  if (!S.Fault.empty())
    O << "fault " << S.Fault << "\n";
  for (const RewriteStep &St : S.Steps)
    O << "step " << St.describe() << "\n";
  return O.str();
}

namespace {

/// Parses one `step <kind> ...` payload (the describe() format).
Expected<RewriteStep> parseStep(const std::string &Line) {
  RewriteStep St;
  std::istringstream In(Line);
  std::string Kind;
  In >> Kind;

  auto ReadPattern = [&](std::string &Out) -> bool {
    std::string Rest;
    std::getline(In, Rest);
    size_t A = Rest.find('|');
    size_t B = Rest.rfind('|');
    if (A == std::string::npos || B <= A)
      return false;
    Out = Rest.substr(A + 1, B - A - 1);
    In = std::istringstream(Rest.substr(B + 1));
    return true;
  };

  if (Kind == "divide") {
    St.K = RewriteStep::Kind::Divide;
    if (!ReadPattern(St.Pattern))
      return errorf("step: bad pattern in '%s'", Line.c_str());
    int P = 0;
    if (!(In >> St.Factor >> St.Outer >> St.Inner >> P))
      return errorf("step: bad divide args in '%s'", Line.c_str());
    St.Perfect = P != 0;
  } else if (Kind == "reorder" || Kind == "unroll" || Kind == "fuse") {
    St.K = Kind == "reorder"  ? RewriteStep::Kind::Reorder
           : Kind == "unroll" ? RewriteStep::Kind::Unroll
                              : RewriteStep::Kind::Fuse;
    if (!ReadPattern(St.Pattern))
      return errorf("step: bad pattern in '%s'", Line.c_str());
  } else if (Kind == "cut") {
    St.K = RewriteStep::Kind::Cut;
    if (!ReadPattern(St.Pattern) || !(In >> St.Factor))
      return errorf("step: bad cut args in '%s'", Line.c_str());
  } else if (Kind == "vectorize") {
    St.K = RewriteStep::Kind::Vectorize;
    int U = 0;
    if (!(In >> St.Isa >> St.Style >> U))
      return errorf("step: bad vectorize args in '%s'", Line.c_str());
    St.UnrollLoads = U != 0;
  } else {
    return errorf("step: unknown kind '%s'", Kind.c_str());
  }
  return St;
}

} // namespace

Expected<FuzzSample> fuzz::parseSample(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != "exo-fuzz-repro v1")
    return errorf("repro: missing 'exo-fuzz-repro v1' header");

  FuzzSample S;
  S.UnrollLoads = false; // All fields come from the file.
  int LineNo = 1;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream L(Line);
    std::string Key;
    L >> Key;
    if (Key == "mode") {
      std::string V;
      L >> V;
      if (V == "recipe")
        S.M = FuzzSample::Mode::Recipe;
      else if (V == "chain")
        S.M = FuzzSample::Mode::Chain;
      else
        return errorf("repro:%d: bad mode '%s'", LineNo, V.c_str());
    } else if (Key == "seed") {
      L >> S.Seed;
    } else if (Key == "shape") {
      if (!(L >> S.MR >> S.NR >> S.KC >> S.LdcSlack))
        return errorf("repro:%d: bad shape line", LineNo);
    } else if (Key == "ty") {
      L >> S.Ty;
    } else if (Key == "widen_acc") {
      int V = 0;
      L >> V;
      S.WidenAcc = V != 0;
    } else if (Key == "isa") {
      L >> S.Isa;
    } else if (Key == "style") {
      L >> S.Style;
    } else if (Key == "unroll_loads") {
      int V = 0;
      L >> V;
      S.UnrollLoads = V != 0;
    } else if (Key == "unroll_compute") {
      int V = 0;
      L >> V;
      S.UnrollCompute = V != 0;
    } else if (Key == "axpby") {
      int V = 0;
      L >> V;
      S.GeneralAlphaBeta = V != 0;
    } else if (Key == "fault") {
      std::string Rest;
      std::getline(L, Rest);
      size_t B = Rest.find_first_not_of(' ');
      S.Fault = B == std::string::npos ? "" : Rest.substr(B);
    } else if (Key == "step") {
      std::string Rest;
      std::getline(L, Rest);
      size_t B = Rest.find_first_not_of(' ');
      auto St = parseStep(B == std::string::npos ? Rest : Rest.substr(B));
      if (!St)
        return errorf("repro:%d: %s", LineNo, St.message().c_str());
      S.Steps.push_back(St.take());
    } else {
      return errorf("repro:%d: unknown key '%s'", LineNo, Key.c_str());
    }
  }
  if (S.MR <= 0 || S.NR <= 0 || S.KC <= 0 || S.LdcSlack < 0)
    return errorf("repro: shape values must be positive");
  return S;
}

Expected<FuzzSample> fuzz::loadSampleFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return errorf("repro: cannot open '%s'", Path.c_str());
  std::ostringstream O;
  O << In.rdbuf();
  return parseSample(O.str());
}

Error fuzz::saveSampleFile(const FuzzSample &S, const std::string &Path) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return errorf("repro: cannot write '%s'", Path.c_str());
  Out << serializeSample(S);
  Out.flush();
  if (!Out)
    return errorf("repro: write to '%s' failed", Path.c_str());
  return Error::success();
}

Expected<AppliedSample> fuzz::applySample(const FuzzSample &S) {
  if (S.MR <= 0 || S.NR <= 0 || S.KC <= 0)
    return errorf("fuzz: non-positive shape");

  AppliedSample Out;

  if (S.M == FuzzSample::Mode::Recipe) {
    auto Cfg = detail::sampleUkrConfig(S, S.Isa, S.Style, S.UnrollLoads);
    if (!Cfg)
      return Cfg.takeError();
    auto R = ukr::generateUkernel(*Cfg, fastOpts());
    if (!R)
      return R.takeError(); // Inconsistent recipe: a rejection, not a bug.
    auto Spec = makeSpec(S, Cfg->kernelName());
    if (!Spec)
      return Spec.takeError();
    Out.Spec = Spec.take();
    Out.Scheduled = R->Final;
    Out.AppliedSteps.push_back("recipe " + Cfg->kernelName());
    Out.Isa = R->Style == ukr::FmaStyle::Scalar ? nullptr : Cfg->Isa;
    return Out;
  }

  // Chain mode: a stable, collision-free symbol (the JIT keys artifacts by
  // source+symbol, and every distinct sample emits distinct source).
  std::string Name =
      strf("fz_%llxx%llx_%016llx", static_cast<unsigned long long>(S.MR),
           static_cast<unsigned long long>(S.NR),
           static_cast<unsigned long long>(fnv1a64(serializeSample(S))));
  auto Spec = makeSpec(S, Name);
  if (!Spec)
    return Spec.takeError();
  Out.Spec = Spec.take();

  Proc Cur = Out.Spec;
  for (size_t I = 0; I != S.Steps.size(); ++I) {
    const RewriteStep &St = S.Steps[I];
    Expected<Proc> Next = errorf("unapplied");
    if (St.K == RewriteStep::Kind::Vectorize) {
      if (I != 0) {
        Out.SkippedSteps.push_back(St.describe() + " (not first)");
        continue;
      }
      auto Cfg = detail::sampleUkrConfig(S, St.Isa, St.Style, St.UnrollLoads);
      if (!Cfg)
        return Cfg.takeError();
      auto R = ukr::generateUkernel(*Cfg, fastOpts());
      if (R) {
        Next = renameProc(R->Final, Name);
        Out.Isa = R->Style == ukr::FmaStyle::Scalar ? nullptr : Cfg->Isa;
      } else {
        Next = errorf("%s", R.message().c_str());
      }
    } else {
      Next = applyChainStep(Cur, St);
    }
    if (!Next) {
      Out.SkippedSteps.push_back(St.describe() + ": " + Next.message());
      continue;
    }
    Cur = Next.take();
    Out.AppliedSteps.push_back(St.describe());
    if (!S.Fault.empty() && !Out.FaultFired &&
        St.describe().find(S.Fault) != std::string::npos) {
      Cur = dropLastIterationOfFirstLoop(Cur);
      Out.FaultFired = true;
    }
  }
  Out.Scheduled = Cur;
  return Out;
}

uint64_t fuzz::fuzzSeedFromEnv(uint64_t Dflt) {
  if (const char *V = std::getenv("EXO_FUZZ_SEED")) {
    char *End = nullptr;
    unsigned long long N = std::strtoull(V, &End, 0);
    if (End && *End == '\0')
      return N;
  }
  return Dflt;
}

int fuzz::fuzzItersFromEnv(int Dflt) {
  if (const char *V = std::getenv("EXO_FUZZ_ITERS")) {
    char *End = nullptr;
    long N = std::strtol(V, &End, 10);
    if (End && *End == '\0' && N > 0)
      return static_cast<int>(N);
  }
  return Dflt;
}

std::string fuzz::fuzzFaultFromEnv() {
  const char *V = std::getenv("EXO_FUZZ_FAULT");
  return V ? V : "";
}
