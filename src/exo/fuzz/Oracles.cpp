//===- Oracles.cpp - The differential-conformance oracle battery ----------===//
//
// Oracle 1 (interp):  scheduled IR == unscheduled spec under the reference
//                     interpreter, bitwise on integer-valued inputs, both at
//                     the sample's exact shape and on random shapes.
// Oracle 2 (jit):     the emitted C, JIT-compiled through the KernelService /
//                     DiskCache path, matches the interpreter bit-for-bit on
//                     integer inputs and to tight tolerances on float inputs;
//                     bytes in the ldc slack region must be untouched.
// Oracle 3 (cross):   every host-executable kernel family for the sample's
//                     shape (scalar C, portable, AVX2, AVX-512) agrees with
//                     the interpreter bitwise on the same inputs, and the
//                     threaded blisGemmT driver reproduces the naive
//                     reference exactly at several team sizes.
//
//===----------------------------------------------------------------------===//

#include "exo/fuzz/Fuzz.h"
#include "exo/fuzz/FuzzInternal.h"

#include "exo/codegen/CEmit.h"
#include "exo/interp/Interp.h"
#include "exo/jit/Jit.h"
#include "exo/sched/Validate.h"
#include "exo/support/Str.h"
#include "gemm/ExoProvider.h"
#include "gemm/Gemm.h"
#include "gemm/RefGemm.h"
#include "ukr/KernelService.h"

#include <cmath>
#include <cstring>
#include <random>

using namespace exo;
using namespace exo::fuzz;

namespace {

/// One instantiation of a sample's micro-kernel arguments. Panels are dense;
/// C is an NR x MR tile stored with row stride Ldc (Ldc - MR slack elements
/// per row that a correct kernel must never touch).
struct TileData {
  int64_t MR = 0, NR = 0, KC = 0, Ldc = 0;
  bool Axpby = false;
  std::vector<float> Ac, Bc, C0;
  float Alpha = 1.0f, Beta = 1.0f;
};

/// Integer-valued data keeps f32 arithmetic exact for any association, so
/// oracle comparisons can be bitwise; float data exercises rounding paths
/// under a tolerance.
TileData makeTileData(const FuzzSample &S, std::mt19937_64 &Rng,
                      bool Integer) {
  TileData D;
  D.MR = S.MR;
  D.NR = S.NR;
  D.KC = S.KC;
  D.Ldc = S.MR + S.LdcSlack;
  D.Axpby = S.GeneralAlphaBeta;
  auto Fill = [&](std::vector<float> &V, size_t N) {
    V.resize(N);
    if (Integer) {
      std::uniform_int_distribution<int> Di(-4, 4);
      for (float &X : V)
        X = static_cast<float>(Di(Rng));
    } else {
      std::uniform_real_distribution<double> Dr(-1.0, 1.0);
      for (float &X : V)
        X = static_cast<float>(Dr(Rng));
    }
  };
  Fill(D.Ac, static_cast<size_t>(D.KC * D.MR));
  Fill(D.Bc, static_cast<size_t>(D.KC * D.NR));
  Fill(D.C0, static_cast<size_t>(D.NR * D.Ldc));
  if (D.Axpby) {
    if (Integer) {
      std::uniform_int_distribution<int> Di(-2, 2);
      D.Alpha = static_cast<float>(Di(Rng));
      D.Beta = static_cast<float>(Di(Rng));
    } else {
      std::uniform_real_distribution<double> Dr(-1.0, 1.0);
      D.Alpha = static_cast<float>(Dr(Rng));
      D.Beta = static_cast<float>(Dr(Rng));
    }
  }
  return D;
}

/// Runs \p P (spec or scheduled, either ABI) on \p D under the interpreter
/// and returns the resulting C buffer, rounded to f32 like a real kernel.
Expected<std::vector<float>> interpTile(const Proc &P, const TileData &D) {
  std::vector<double> Ac(D.Ac.begin(), D.Ac.end());
  std::vector<double> Bc(D.Bc.begin(), D.Bc.end());
  std::vector<double> C(D.C0.begin(), D.C0.end());
  std::vector<double> Alpha{D.Alpha}, Beta{D.Beta};

  std::map<std::string, int64_t> Scalars{{"KC", D.KC}, {"ldc", D.Ldc}};
  std::map<std::string, TensorArg> Tensors;
  Tensors["Ac"] = TensorArg{Ac.data(), {D.KC, D.MR}, -1};
  Tensors["Bc"] = TensorArg{Bc.data(), {D.KC, D.NR}, -1};
  Tensors["C"] = TensorArg{C.data(), {D.NR, D.MR}, D.Ldc};
  if (D.Axpby) {
    Tensors["alpha"] = TensorArg{Alpha.data(), {1}, -1};
    Tensors["beta"] = TensorArg{Beta.data(), {1}, -1};
  }
  if (Error E = interpret(P, Scalars, Tensors))
    return errorf("interpreting %s: %s", P.name().c_str(),
                  E.message().c_str());
  return std::vector<float>(C.begin(), C.end());
}

std::vector<float> runKernel(ukr::MicroKernelF32 Fn, const TileData &D) {
  std::vector<float> C = D.C0;
  Fn(D.KC, D.Ldc, D.Ac.data(), D.Bc.data(), C.data());
  return C;
}

std::vector<float> runKernelAxpby(ukr::MicroKernelAxpbyF32 Fn,
                                  const TileData &D) {
  std::vector<float> C = D.C0;
  Fn(D.KC, D.Ldc, &D.Alpha, D.Ac.data(), D.Bc.data(), &D.Beta, C.data());
  return C;
}

bool sameBits(float A, float B) {
  return std::memcmp(&A, &B, sizeof(float)) == 0;
}

/// IEEE value equality plus bitwise NaN matching: the macro-kernel and the
/// naive reference sum signed zeros in different orders, and -0 == +0 is
/// exactly as conformant as bit equality there.
bool sameValue(float A, float B) { return A == B || sameBits(A, B); }

/// In-tile comparison of \p Got against \p Ref (bitwise or toleranced) plus
/// the slack check: elements past MR in each row must still hold their
/// initial values — an out-of-bounds store is a conformance failure even
/// when the tile itself is right.
Error compareTiles(const char *What, const std::vector<float> &Ref,
                   const std::vector<float> &Got, const TileData &D,
                   bool Exact) {
  for (int64_t J = 0; J != D.NR; ++J) {
    for (int64_t I = 0; I != D.MR; ++I) {
      float R = Ref[J * D.Ldc + I];
      float G = Got[J * D.Ldc + I];
      bool Ok = Exact ? sameBits(R, G)
                      : std::abs(R - G) <=
                            1e-4 * std::max(1.0, std::abs((double)R));
      if (!Ok)
        return errorf("%s: C[%lld][%lld] = %.9g, want %.9g (%s)", What,
                      static_cast<long long>(J), static_cast<long long>(I), G,
                      R, Exact ? "bitwise" : "tol 1e-4");
    }
    for (int64_t I = D.MR; I != D.Ldc; ++I)
      if (!sameBits(Got[J * D.Ldc + I], D.C0[J * D.Ldc + I]))
        return errorf("%s: slack element C[%lld][%lld] was written", What,
                      static_cast<long long>(J), static_cast<long long>(I));
  }
  return Error::success();
}

/// Labels the executed kernel family: the resolved-scalar case is one shared
/// "c" family regardless of the configured library.
std::string kernelFamily(const ukr::Kernel &K) {
  return K.Style == ukr::FmaStyle::Scalar || !K.Cfg.Isa ? "c"
                                                        : K.Cfg.Isa->name();
}

/// Oracle 3b: the threaded BLIS driver over a problem derived from the
/// sample's tile, against the naive reference, exactly (integer data), at
/// team sizes 1 and 3, which must also agree with each other bitwise.
Error checkDriver(const FuzzSample &S, std::mt19937_64 &Rng) {
  int64_t M = 2 * S.MR + 1;
  int64_t N = 2 * S.NR + 1;
  int64_t K = 2 * S.KC + 1;

  std::uniform_int_distribution<int> Di(-2, 2);
  auto Fill = [&](std::vector<float> &V, size_t Count) {
    V.resize(Count);
    for (float &X : V)
      X = static_cast<float>(Di(Rng));
  };
  std::vector<float> A, B, CInit;
  Fill(A, static_cast<size_t>(M * K));
  Fill(B, static_cast<size_t>(K * N));
  Fill(CInit, static_cast<size_t>(M * N));
  float Alpha = static_cast<float>(Di(Rng));
  float Beta = static_cast<float>(Di(Rng));

  std::vector<float> Ref = CInit;
  gemm::refSgemm(M, N, K, Alpha, A.data(), M, B.data(), K, Beta, Ref.data(),
                 M);

  gemm::ExoProvider P(S.MR, S.NR);
  // One monolithic kernel via the scratch-tile edge path: driver checks are
  // rationed for wall time, so don't compile a whole edge family per sample.
  P.setSpecializeEdges(false);
  gemm::GemmPlan Plan = gemm::GemmPlan::standard(P);
  Plan.PackMode = gemm::EdgePack::ZeroPad;

  std::vector<float> C1;
  for (int64_t T : {int64_t(1), int64_t(3)}) {
    Plan.Threads = T;
    std::vector<float> C = CInit;
    if (Error E = gemm::blisGemmT(Plan, P, gemm::Trans::None,
                                  gemm::Trans::None, M, N, K, Alpha, A.data(),
                                  M, B.data(), K, Beta, C.data(), M))
      return errorf("driver oracle (%lld threads): %s",
                    static_cast<long long>(T), E.message().c_str());
    for (int64_t X = 0; X != M * N; ++X)
      if (!sameValue(C[X], Ref[X]))
        return errorf(
            "driver oracle (%lld threads): C[%lld] = %.9g, ref %.9g",
            static_cast<long long>(T), static_cast<long long>(X), C[X],
            Ref[X]);
    if (T == 1)
      C1 = C;
    else if (std::memcmp(C1.data(), C.data(), C.size() * sizeof(float)) != 0)
      return errorf("driver oracle: %lld-thread result differs from 1-thread",
                    static_cast<long long>(T));
  }
  return Error::success();
}

} // namespace

Error fuzz::runOracles(const FuzzSample &S, const OracleOptions &O,
                       OracleOutcome *Out) {
  OracleOutcome Local;
  OracleOutcome &R = Out ? *Out : Local;
  R = OracleOutcome();

  Expected<AppliedSample> A = applySample(S);
  if (!A) {
    // Inconsistent spec/recipe (e.g. lane style with an indivisible NR):
    // counted, never a failure.
    R.Rejected = true;
    return Error::success();
  }
  R.StepsApplied = static_cast<int>(A->AppliedSteps.size());
  R.StepsSkipped = static_cast<int>(A->SkippedSteps.size());

  std::mt19937_64 Rng(S.Seed * 0x9E3779B97F4A7C15ull + O.InputSeed);
  TileData DI = makeTileData(S, Rng, /*Integer=*/true);
  TileData DF = makeTileData(S, Rng, /*Integer=*/false);

  // --- Oracle 1: interpreter equivalence -------------------------------
  Expected<std::vector<float>> SpecI = interpTile(A->Spec, DI);
  if (!SpecI)
    return errorf("interp oracle: %s", SpecI.message().c_str());
  std::vector<float> SpecC = SpecI.take();
  {
    Expected<std::vector<float>> SchedI = interpTile(A->Scheduled, DI);
    if (!SchedI)
      return errorf("interp oracle: %s", SchedI.message().c_str());
    std::vector<float> SchedC = SchedI.take();
    if (Error E =
            compareTiles("interp oracle", SpecC, SchedC, DI, /*Exact=*/true))
      return E;
    // Random-shape trials on top of the sample's exact shape.
    if (Error E = checkProcsEquivalent(
            A->Spec, A->Scheduled, O.InterpTrials,
            static_cast<unsigned>(S.Seed ^ (O.InputSeed * 2654435761u)) | 1u))
      return errorf("interp oracle (random shapes): %s", E.message().c_str());
  }
  R.InterpChecked = true;

  bool HostRunnable =
      S.Ty == "f32" && (!A->Isa || A->Isa->hostExecutable()) && jitAvailable();

  // --- Oracle 2: JIT through the KernelService / DiskCache path --------
  if (O.CheckJit && HostRunnable) {
    ukr::MicroKernelF32 Fn = nullptr;
    ukr::MicroKernelAxpbyF32 FnAxpby = nullptr;
    JitKernelPtr Keep; // keeps a chain-mode .so alive through the calls
    std::string Family;

    if (S.M == FuzzSample::Mode::Recipe) {
      Expected<ukr::UkrConfig> Cfg =
          detail::sampleUkrConfig(S, S.Isa, S.Style, S.UnrollLoads);
      if (!Cfg)
        return errorf("jit oracle: %s", Cfg.message().c_str());
      Expected<const ukr::Kernel *> K = ukr::KernelService::global().get(*Cfg);
      if (!K) // applySample accepted the recipe, so a build must succeed
        return errorf("jit oracle: kernel build failed: %s",
                      K.message().c_str());
      const ukr::Kernel *KP = K.take();
      Fn = KP->Fn;
      FnAxpby = KP->FnAxpby;
      Family = kernelFamily(*KP);
    } else {
      CodegenOptions CO;
      CO.Isa = A->Isa;
      Expected<std::string> Src = emitCModule(A->Scheduled, CO);
      if (!Src) // an accepted schedule must emit
        return errorf("jit oracle: emission failed: %s",
                      Src.message().c_str());
      std::string Flags = A->Isa ? A->Isa->jitFlags() : "-march=native";
      Expected<JitKernelPtr> J =
          jitCompile(Src.take(), A->Scheduled.name(), Flags);
      if (!J)
        return errorf("jit oracle: compilation failed: %s",
                      J.message().c_str());
      Keep = J.take();
      if (S.GeneralAlphaBeta)
        FnAxpby = Keep->as<ukr::MicroKernelAxpbyF32>();
      else
        Fn = Keep->as<ukr::MicroKernelF32>();
      Family = A->Isa ? A->Isa->name() : "c";
    }

    if (Fn || FnAxpby) {
      std::vector<float> Got =
          FnAxpby ? runKernelAxpby(FnAxpby, DI) : runKernel(Fn, DI);
      if (Error E = compareTiles("jit oracle (integer)", SpecC, Got, DI,
                                 /*Exact=*/true))
        return E;
      Expected<std::vector<float>> SpecF = interpTile(A->Spec, DF);
      if (!SpecF)
        return errorf("jit oracle: %s", SpecF.message().c_str());
      std::vector<float> GotF =
          FnAxpby ? runKernelAxpby(FnAxpby, DF) : runKernel(Fn, DF);
      if (Error E = compareTiles("jit oracle (float)", SpecF.take(), GotF, DF,
                                 /*Exact=*/false))
        return E;
      R.JitChecked = true;
      R.IsasCompared.insert(Family);
    }
  }

  // --- Oracle 3a: cross-library agreement ------------------------------
  if (O.CheckCross && S.Ty == "f32" && jitAvailable()) {
    int Compared = 0;
    for (const char *IsaName : {"none", "portable", "avx2", "avx512"}) {
      Expected<ukr::UkrConfig> Cfg =
          detail::sampleUkrConfig(S, IsaName, "auto", /*UnrollLoads=*/true);
      if (!Cfg)
        continue;
      if (Cfg->Isa && !Cfg->Isa->hostExecutable())
        continue;
      Expected<const ukr::Kernel *> K = ukr::KernelService::global().get(*Cfg);
      if (!K)
        continue; // shape inconsistent for this library: rejected
      const ukr::Kernel *KP = K.take();
      std::vector<float> Got;
      if (S.GeneralAlphaBeta) {
        if (!KP->FnAxpby)
          continue;
        Got = runKernelAxpby(KP->FnAxpby, DI);
      } else {
        if (!KP->Fn)
          continue;
        Got = runKernel(KP->Fn, DI);
      }
      std::string What = "cross oracle (" + kernelFamily(*KP) + ")";
      if (Error E = compareTiles(What.c_str(), SpecC, Got, DI, /*Exact=*/true))
        return E;
      R.IsasCompared.insert(kernelFamily(*KP));
      ++Compared;
    }
    // Every family matched the interpreter bitwise, so pairwise agreement
    // is established once at least two actually ran.
    if (Compared >= 2)
      R.CrossChecked = true;
  }

  // --- Oracle 3b: the threaded driver ----------------------------------
  if (O.CheckDriver && S.Ty == "f32" && jitAvailable()) {
    if (Error E = checkDriver(S, Rng))
      return E;
    R.DriverChecked = true;
  }

  return Error::success();
}
