//===- Minimize.cpp - Greedy shrinking of failing samples -----------------===//
//
// Delta debugging against the oracle battery: a candidate shrink is kept only
// when the shrunk sample still fails. Deterministic (the oracles are), and
// bounded by a fixed re-run budget so a flaky failure cannot loop forever.
//
//===----------------------------------------------------------------------===//

#include "exo/fuzz/Fuzz.h"

using namespace exo;
using namespace exo::fuzz;

namespace {
constexpr int MaxRounds = 200;
} // namespace

FuzzSample fuzz::minimizeSample(const FuzzSample &S, const OracleOptions &O,
                                int *RoundsOut) {
  int Rounds = 0;
  auto StillFails = [&](const FuzzSample &Cand) {
    ++Rounds;
    return static_cast<bool>(runOracles(Cand, O));
  };

  FuzzSample Cur = S;
  if (!StillFails(Cur)) {
    // Not failing under these oracles: nothing to minimize.
    if (RoundsOut)
      *RoundsOut = Rounds;
    return S;
  }

  bool Progress = true;
  while (Progress && Rounds < MaxRounds) {
    Progress = false;

    // Drop rewrite steps, last first (later steps depend on earlier ones).
    for (size_t K = Cur.Steps.size(); K-- > 0 && Rounds < MaxRounds;) {
      FuzzSample Cand = Cur;
      Cand.Steps.erase(Cand.Steps.begin() + static_cast<long>(K));
      if (StillFails(Cand)) {
        Cur = std::move(Cand);
        Progress = true;
      }
    }

    // Shrink the depth dimension.
    while (Cur.KC > 1 && Rounds < MaxRounds) {
      FuzzSample Cand = Cur;
      Cand.KC = Cur.KC / 2;
      if (!StillFails(Cand))
        break;
      Cur = std::move(Cand);
      Progress = true;
    }

    // Drop the ldc slack.
    if (Cur.LdcSlack > 0 && Rounds < MaxRounds) {
      FuzzSample Cand = Cur;
      Cand.LdcSlack = 0;
      if (StillFails(Cand)) {
        Cur = std::move(Cand);
        Progress = true;
      }
    }

    // Turn off schedule embellishments.
    for (bool FuzzSample::*Flag :
         {&FuzzSample::UnrollLoads, &FuzzSample::UnrollCompute,
          &FuzzSample::GeneralAlphaBeta}) {
      if (!(Cur.*Flag) || Rounds >= MaxRounds)
        continue;
      FuzzSample Cand = Cur;
      Cand.*Flag = false;
      if (StillFails(Cand)) {
        Cur = std::move(Cand);
        Progress = true;
      }
    }
  }

  if (RoundsOut)
    *RoundsOut = Rounds;
  return Cur;
}
