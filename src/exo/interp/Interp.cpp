//===- Interp.cpp ---------------------------------------------------------===//

#include "exo/interp/Interp.h"

#include "exo/support/Str.h"

#include <cmath>
#include <cstring>
#include <deque>

using namespace exo;

namespace {

/// A (possibly strided) view over caller or local storage.
struct BufView {
  double *Base = nullptr;
  ScalarKind Ty = ScalarKind::F32;
  std::vector<int64_t> Shape;
  std::vector<int64_t> Strides;

  int64_t rank() const { return static_cast<int64_t>(Shape.size()); }
};

/// Rounds \p V to the representable value of kind \p K (double compute,
/// typed stores).
double roundToKind(double V, ScalarKind K) {
  switch (K) {
  case ScalarKind::F16:
    return static_cast<double>(static_cast<_Float16>(V));
  case ScalarKind::BF16: {
    // Software bf16 rounding (round-to-nearest-even on f32's top 16 bits):
    // the host may lack a __bf16 arithmetic type, and the GEMM layer's
    // converters must agree with this oracle bit-for-bit.
    float F = static_cast<float>(V);
    uint32_t Bits;
    std::memcpy(&Bits, &F, sizeof(Bits));
    if ((Bits & 0x7f800000u) == 0x7f800000u && (Bits & 0x7fffffu))
      Bits |= 0x400000u; // quiet the NaN
    else
      Bits += 0x7fffu + ((Bits >> 16) & 1);
    Bits &= 0xffff0000u;
    std::memcpy(&F, &Bits, sizeof(F));
    return static_cast<double>(F);
  }
  case ScalarKind::F32:
    return static_cast<double>(static_cast<float>(V));
  case ScalarKind::F64:
    return V;
  case ScalarKind::I8:
    return static_cast<double>(static_cast<int8_t>(std::llrint(V)));
  case ScalarKind::I16:
    return static_cast<double>(static_cast<int16_t>(std::llrint(V)));
  case ScalarKind::I32:
    return static_cast<double>(static_cast<int32_t>(std::llrint(V)));
  case ScalarKind::Index:
  case ScalarKind::Bool:
    return V;
  }
  return V;
}

class Machine {
public:
  Error run(const Proc &P, const std::map<std::string, int64_t> &Scalars,
            const std::map<std::string, TensorArg> &Tensors);

private:
  Error bindParams(const Proc &P,
                   const std::map<std::string, int64_t> &Scalars,
                   const std::map<std::string, TensorArg> &Tensors);
  Error execBody(const std::vector<StmtPtr> &Body);
  Error execStmt(const StmtPtr &S);
  Error execCall(const CallStmt &C);
  Error evalInt(const ExprPtr &E, int64_t &Out);
  Error evalValue(const ExprPtr &E, double &Out);
  Error elemAddr(const std::string &Buf, const std::vector<ExprPtr> &Idx,
                 double *&Addr, ScalarKind &Ty);

  std::map<std::string, int64_t> IntEnv;
  std::map<std::string, BufView> Bufs;
  /// Owns local allocation storage (stable addresses).
  std::deque<std::vector<double>> LocalStorage;
};

Error Machine::evalInt(const ExprPtr &E, int64_t &Out) {
  switch (E->kind()) {
  case Expr::Kind::Const:
    Out = cast<ConstExpr>(E)->intValue();
    return Error::success();
  case Expr::Kind::Var: {
    auto It = IntEnv.find(cast<VarExpr>(E)->name());
    if (It == IntEnv.end())
      return errorf("unbound variable '%s'",
                    cast<VarExpr>(E)->name().c_str());
    Out = It->second;
    return Error::success();
  }
  case Expr::Kind::USub: {
    if (Error Err = evalInt(cast<USubExpr>(E)->operand(), Out))
      return Err;
    Out = -Out;
    return Error::success();
  }
  case Expr::Kind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    int64_t L, R;
    if (Error Err = evalInt(B->lhs(), L))
      return Err;
    if (Error Err = evalInt(B->rhs(), R))
      return Err;
    switch (B->op()) {
    case BinOpExpr::Op::Add:
      Out = L + R;
      return Error::success();
    case BinOpExpr::Op::Sub:
      Out = L - R;
      return Error::success();
    case BinOpExpr::Op::Mul:
      Out = L * R;
      return Error::success();
    case BinOpExpr::Op::Div:
      if (R == 0)
        return errorf("division by zero in index expression");
      Out = L / R;
      return Error::success();
    case BinOpExpr::Op::Mod:
      if (R == 0)
        return errorf("modulo by zero in index expression");
      Out = L % R;
      return Error::success();
    case BinOpExpr::Op::Lt:
      Out = L < R;
      return Error::success();
    case BinOpExpr::Op::Le:
      Out = L <= R;
      return Error::success();
    case BinOpExpr::Op::Gt:
      Out = L > R;
      return Error::success();
    case BinOpExpr::Op::Ge:
      Out = L >= R;
      return Error::success();
    case BinOpExpr::Op::Eq:
      Out = L == R;
      return Error::success();
    }
    return errorf("unknown integer binop");
  }
  case Expr::Kind::Read:
    return errorf("buffer read in index expression");
  }
  return errorf("unknown expression kind");
}

Error Machine::elemAddr(const std::string &Buf,
                        const std::vector<ExprPtr> &Idx, double *&Addr,
                        ScalarKind &Ty) {
  auto It = Bufs.find(Buf);
  if (It == Bufs.end())
    return errorf("access to unknown buffer '%s'", Buf.c_str());
  BufView &V = It->second;
  if (static_cast<int64_t>(Idx.size()) != V.rank())
    return errorf("buffer '%s' has rank %lld, accessed with %zu indices",
                  Buf.c_str(), static_cast<long long>(V.rank()), Idx.size());
  int64_t Off = 0;
  for (size_t D = 0; D != Idx.size(); ++D) {
    int64_t I;
    if (Error Err = evalInt(Idx[D], I))
      return Err;
    if (I < 0 || I >= V.Shape[D])
      return errorf("out-of-bounds access %s[dim %zu] = %lld, extent %lld",
                    Buf.c_str(), D, static_cast<long long>(I),
                    static_cast<long long>(V.Shape[D]));
    Off += I * V.Strides[D];
  }
  Addr = V.Base + Off;
  Ty = V.Ty;
  return Error::success();
}

Error Machine::evalValue(const ExprPtr &E, double &Out) {
  switch (E->kind()) {
  case Expr::Kind::Const:
    Out = cast<ConstExpr>(E)->floatValue();
    return Error::success();
  case Expr::Kind::Var: {
    int64_t I;
    if (Error Err = evalInt(E, I))
      return Err;
    Out = static_cast<double>(I);
    return Error::success();
  }
  case Expr::Kind::Read: {
    const auto *R = cast<ReadExpr>(E);
    double *Addr;
    ScalarKind Ty;
    if (Error Err = elemAddr(R->buffer(), R->indices(), Addr, Ty))
      return Err;
    Out = *Addr;
    return Error::success();
  }
  case Expr::Kind::USub: {
    if (Error Err = evalValue(cast<USubExpr>(E)->operand(), Out))
      return Err;
    Out = -Out;
    return Error::success();
  }
  case Expr::Kind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    double L, R;
    if (Error Err = evalValue(B->lhs(), L))
      return Err;
    if (Error Err = evalValue(B->rhs(), R))
      return Err;
    switch (B->op()) {
    case BinOpExpr::Op::Add:
      Out = L + R;
      return Error::success();
    case BinOpExpr::Op::Sub:
      Out = L - R;
      return Error::success();
    case BinOpExpr::Op::Mul:
      Out = L * R;
      return Error::success();
    case BinOpExpr::Op::Div:
      Out = L / R;
      return Error::success();
    default:
      return errorf("operator %s not valid in value expressions",
                    BinOpExpr::opName(B->op()));
    }
  }
  }
  return errorf("unknown expression kind");
}

Error Machine::execCall(const CallStmt &C) {
  const Proc &Callee = C.callee()->semantics();
  const auto &Params = Callee.params();
  const auto &Args = C.args();
  if (Params.size() != Args.size())
    return errorf("call to '%s': %zu args for %zu params",
                  C.callee()->name().c_str(), Args.size(), Params.size());

  // Evaluate arguments in the caller's environment.
  std::map<std::string, int64_t> CalleeInts;
  std::map<std::string, BufView> CalleeBufs;
  for (size_t I = 0; I != Args.size(); ++I) {
    const Param &P = Params[I];
    const CallArg &A = Args[I];
    if (P.PKind != Param::Kind::Tensor) {
      if (A.isWindow())
        return errorf("call to '%s': window passed for scalar param '%s'",
                      C.callee()->name().c_str(), P.Name.c_str());
      int64_t V;
      if (Error Err = evalInt(A.Scalar, V))
        return Err;
      CalleeInts[P.Name] = V;
      continue;
    }
    if (!A.isWindow())
      return errorf("call to '%s': scalar passed for tensor param '%s'",
                    C.callee()->name().c_str(), P.Name.c_str());
    auto It = Bufs.find(A.Buf);
    if (It == Bufs.end())
      return errorf("call references unknown buffer '%s'", A.Buf.c_str());
    const BufView &Parent = It->second;
    if (static_cast<int64_t>(A.Dims.size()) != Parent.rank())
      return errorf("window into '%s' has %zu dims, buffer rank %lld",
                    A.Buf.c_str(), A.Dims.size(),
                    static_cast<long long>(Parent.rank()));
    BufView View;
    View.Ty = Parent.Ty;
    int64_t Off = 0;
    for (size_t D = 0; D != A.Dims.size(); ++D) {
      const WindowDim &W = A.Dims[D];
      if (W.isPoint()) {
        int64_t Pt;
        if (Error Err = evalInt(W.Point, Pt))
          return Err;
        if (Pt < 0 || Pt >= Parent.Shape[D])
          return errorf("window point %lld out of bounds in '%s' dim %zu",
                        static_cast<long long>(Pt), A.Buf.c_str(), D);
        Off += Pt * Parent.Strides[D];
        continue;
      }
      int64_t Lo, Len;
      if (Error Err = evalInt(W.Lo, Lo))
        return Err;
      if (Error Err = evalInt(W.Len, Len))
        return Err;
      if (Lo < 0 || Len < 0 || Lo + Len > Parent.Shape[D])
        return errorf("window [%lld, +%lld) out of bounds in '%s' dim %zu",
                      static_cast<long long>(Lo),
                      static_cast<long long>(Len), A.Buf.c_str(), D);
      Off += Lo * Parent.Strides[D];
      View.Shape.push_back(Len);
      View.Strides.push_back(Parent.Strides[D]);
    }
    View.Base = Parent.Base + Off;

    // Check the window rank matches the instruction parameter's rank.
    if (View.Shape.size() != P.Shape.size())
      return errorf("window for '%s' has rank %zu, param wants %zu",
                    P.Name.c_str(), View.Shape.size(), P.Shape.size());
    CalleeBufs[P.Name] = View;
  }

  // Run the callee body in a fresh machine state sharing storage views.
  Machine Sub;
  Sub.IntEnv = std::move(CalleeInts);
  Sub.Bufs = std::move(CalleeBufs);
  return Sub.execBody(Callee.body());
}

Error Machine::execStmt(const StmtPtr &S) {
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = castS<AssignStmt>(S);
    double *Addr;
    ScalarKind Ty;
    if (Error Err = elemAddr(A->buffer(), A->indices(), Addr, Ty))
      return Err;
    double V;
    if (Error Err = evalValue(A->rhs(), V))
      return Err;
    *Addr = roundToKind(A->isReduce() ? *Addr + V : V, Ty);
    return Error::success();
  }
  case Stmt::Kind::For: {
    const auto *F = castS<ForStmt>(S);
    int64_t Lo, Hi;
    if (Error Err = evalInt(F->lo(), Lo))
      return Err;
    if (Error Err = evalInt(F->hi(), Hi))
      return Err;
    auto Saved = IntEnv.find(F->loopVar()) != IntEnv.end()
                     ? std::optional<int64_t>(IntEnv[F->loopVar()])
                     : std::nullopt;
    for (int64_t I = Lo; I < Hi; ++I) {
      IntEnv[F->loopVar()] = I;
      if (Error Err = execBody(F->body()))
        return Err;
    }
    if (Saved)
      IntEnv[F->loopVar()] = *Saved;
    else
      IntEnv.erase(F->loopVar());
    return Error::success();
  }
  case Stmt::Kind::Alloc: {
    const auto *A = castS<AllocStmt>(S);
    BufView V;
    V.Ty = A->elemType();
    int64_t Total = 1;
    for (const ExprPtr &D : A->shape()) {
      int64_t E;
      if (Error Err = evalInt(D, E))
        return Err;
      if (E < 0)
        return errorf("negative extent in allocation '%s'",
                      A->name().c_str());
      V.Shape.push_back(E);
      Total *= E;
    }
    // Dense row-major strides.
    V.Strides.assign(V.Shape.size(), 1);
    for (int D = static_cast<int>(V.Shape.size()) - 2; D >= 0; --D)
      V.Strides[D] = V.Strides[D + 1] * V.Shape[D + 1];
    LocalStorage.emplace_back(static_cast<size_t>(Total), 0.0);
    V.Base = LocalStorage.back().data();
    Bufs[A->name()] = V;
    return Error::success();
  }
  case Stmt::Kind::Call:
    return execCall(*castS<CallStmt>(S));
  }
  return errorf("unknown statement kind");
}

Error Machine::execBody(const std::vector<StmtPtr> &Body) {
  for (const StmtPtr &S : Body)
    if (Error Err = execStmt(S))
      return Err;
  return Error::success();
}

Error Machine::bindParams(const Proc &P,
                          const std::map<std::string, int64_t> &Scalars,
                          const std::map<std::string, TensorArg> &Tensors) {
  for (const Param &Pa : P.params()) {
    if (Pa.PKind != Param::Kind::Tensor) {
      auto It = Scalars.find(Pa.Name);
      if (It == Scalars.end())
        return errorf("missing scalar argument '%s'", Pa.Name.c_str());
      if (Pa.PKind == Param::Kind::Size && It->second <= 0)
        return errorf("size '%s' must be positive, got %lld", Pa.Name.c_str(),
                      static_cast<long long>(It->second));
      IntEnv[Pa.Name] = It->second;
      continue;
    }
    auto It = Tensors.find(Pa.Name);
    if (It == Tensors.end())
      return errorf("missing tensor argument '%s'", Pa.Name.c_str());
    const TensorArg &T = It->second;
    BufView V;
    V.Base = T.Data;
    V.Ty = Pa.Ty;
    // Declared shape, evaluated with the size environment.
    for (const ExprPtr &D : Pa.Shape) {
      int64_t E;
      if (Error Err = evalInt(D, E))
        return Err;
      V.Shape.push_back(E);
    }
    if (V.Shape != T.Shape)
      return errorf("tensor '%s' shape mismatch", Pa.Name.c_str());
    V.Strides.assign(V.Shape.size(), 1);
    for (int D = static_cast<int>(V.Shape.size()) - 2; D >= 0; --D)
      V.Strides[D] = V.Strides[D + 1] * V.Shape[D + 1];
    if (!Pa.LeadStrideVar.empty()) {
      auto LS = Scalars.find(Pa.LeadStrideVar);
      int64_t Lead = T.LeadStride;
      if (LS != Scalars.end())
        Lead = LS->second;
      if (Lead < 0)
        return errorf("tensor '%s' needs a leading stride", Pa.Name.c_str());
      V.Strides[0] = Lead;
    } else if (T.LeadStride >= 0 && !V.Strides.empty()) {
      V.Strides[0] = T.LeadStride;
    }
    Bufs[Pa.Name] = V;
  }

  // Check preconditions.
  for (const ExprPtr &Pre : P.preconds()) {
    int64_t V;
    if (Error Err = evalInt(Pre, V))
      return Err;
    if (!V)
      return errorf("precondition failed in '%s'", P.name().c_str());
  }
  return Error::success();
}

Error Machine::run(const Proc &P, const std::map<std::string, int64_t> &Scalars,
                   const std::map<std::string, TensorArg> &Tensors) {
  if (Error Err = bindParams(P, Scalars, Tensors))
    return Err;
  return execBody(P.body());
}

} // namespace

Error exo::interpret(const Proc &P,
                     const std::map<std::string, int64_t> &Scalars,
                     const std::map<std::string, TensorArg> &Tensors) {
  Machine M;
  return M.run(P, Scalars, Tensors);
}
