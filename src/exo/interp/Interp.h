//===- Interp.h - Reference interpreter for procs -------------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes any proc directly on host buffers, including instruction calls
/// (by running the instruction's semantic body). The interpreter is the
/// semantic ground truth of the system: property tests run it on a proc
/// before and after every scheduling rewrite and require identical results,
/// and JIT-compiled kernels are validated against it.
///
/// Values are computed in double and rounded to the destination buffer's
/// element type on every store, so f32/f16 behaviour is modeled faithfully
/// up to the associativity differences the tests' tolerances allow.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_INTERP_INTERP_H
#define EXO_INTERP_INTERP_H

#include "exo/ir/Proc.h"
#include "exo/support/Error.h"

#include <cstdint>
#include <map>
#include <vector>

namespace exo {

/// A caller-owned dense tensor argument. Data is in doubles regardless of
/// the declared element kind; the interpreter rounds stores to the declared
/// kind. Dimension 0 may have a custom stride (in elements) via LeadStride;
/// -1 means dense (product of inner extents).
struct TensorArg {
  double *Data = nullptr;
  std::vector<int64_t> Shape;
  int64_t LeadStride = -1;
};

/// Runs \p P with the given size/index parameter values and tensors. Checks
/// parameter shapes and preconditions. Returns a diagnostic on any mismatch
/// or out-of-bounds access.
Error interpret(const Proc &P, const std::map<std::string, int64_t> &Scalars,
                const std::map<std::string, TensorArg> &Tensors);

} // namespace exo

#endif // EXO_INTERP_INTERP_H
