//===- Socket.cpp - Unix-domain control sockets for gemmd -----------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "ipc/Socket.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace exo;

namespace ipc {

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

int Socket::release() {
  int F = Fd;
  Fd = -1;
  return F;
}

static Error fillAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return errorf("gemmd socket: path '%s' exceeds %zu bytes", Path.c_str(),
                  sizeof(Addr.sun_path) - 1);
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  return Error::success();
}

Expected<Socket> Socket::connect(const std::string &Path) {
  sockaddr_un Addr;
  if (Error E = fillAddr(Path, Addr))
    return E;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return errorf("gemmd socket: socket() failed: %s", std::strerror(errno));
  Socket S(Fd);
  int Rc;
  do {
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (Rc != 0 && errno == EINTR);
  if (Rc != 0)
    return errorf("gemmd socket: connect(%s) failed: %s (is gemmd running?)",
                  Path.c_str(), std::strerror(errno));
  return S;
}

Expected<Socket> Socket::listen(const std::string &Path, int Backlog) {
  sockaddr_un Addr;
  if (Error E = fillAddr(Path, Addr))
    return E;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return errorf("gemmd socket: socket() failed: %s", std::strerror(errno));
  Socket S(Fd);
  // A dead server leaves the socket file behind; binding over it is the
  // expected restart path. A *live* server would still hold the listen,
  // but two gemmds on one path is an operator error this cannot detect.
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return errorf("gemmd socket: bind(%s) failed: %s", Path.c_str(),
                  std::strerror(errno));
  if (::listen(Fd, Backlog) != 0)
    return errorf("gemmd socket: listen(%s) failed: %s", Path.c_str(),
                  std::strerror(errno));
  return S;
}

Expected<Socket> Socket::accept() {
  int C;
  do {
    C = ::accept4(Fd, nullptr, nullptr, SOCK_CLOEXEC);
  } while (C < 0 && errno == EINTR);
  if (C < 0)
    return errorf("gemmd socket: accept failed: %s", std::strerror(errno));
  return Socket(C);
}

Error Socket::sendAll(const void *Buf, size_t N) {
  const char *P = static_cast<const char *>(Buf);
  while (N) {
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return errorf("gemmd socket: send failed: %s", std::strerror(errno));
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
  return Error::success();
}

Error Socket::recvAll(void *Buf, size_t N) { return recvAllTimed(Buf, N, -1); }

Error Socket::recvAllTimed(void *Buf, size_t N, int TimeoutMs) {
  char *P = static_cast<char *>(Buf);
  while (N) {
    if (TimeoutMs >= 0) {
      pollfd Pfd{Fd, POLLIN, 0};
      int Rc;
      do {
        Rc = ::poll(&Pfd, 1, TimeoutMs);
      } while (Rc < 0 && errno == EINTR);
      if (Rc == 0)
        return errorf("gemmd: timed out after %d ms waiting for the server",
                      TimeoutMs);
      if (Rc < 0)
        return errorf("gemmd socket: poll failed: %s", std::strerror(errno));
    }
    ssize_t R = ::recv(Fd, P, N, 0);
    if (R == 0)
      return errorf("gemmd: server closed the connection");
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return errorf("gemmd socket: recv failed: %s", std::strerror(errno));
    }
    P += R;
    N -= static_cast<size_t>(R);
  }
  return Error::success();
}

std::string defaultSocketPath() {
  if (const char *S = std::getenv("EXO_GEMMD_SOCKET"); S && *S)
    return S;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "/tmp/exo-gemmd-%ld.sock",
                static_cast<long>(::getuid()));
  return Buf;
}

} // namespace ipc
