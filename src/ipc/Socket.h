//===- Socket.h - Unix-domain control sockets for gemmd -------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin control channel of a gemmd session: a Unix-domain stream
/// socket that carries exactly one HelloMsg/HelloAck handshake and then
/// only doorbell bytes (Wire.h). Its real job is lifetime, not data —
/// the server learns a client died (SIGKILL, crash, exit) from POLLHUP/
/// EOF on this fd, which is what makes client reaping race-free: the
/// kernel closes the fd for any kind of death.
///
/// All helpers are EINTR-safe and never raise SIGPIPE (MSG_NOSIGNAL);
/// a peer vanishing mid-write is a normal return, not a signal.
///
//===----------------------------------------------------------------------===//

#ifndef IPC_SOCKET_H
#define IPC_SOCKET_H

#include "exo/support/Error.h"

#include <cstdint>
#include <string>

namespace ipc {

/// RAII fd. Movable, not copyable.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }
  Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  int fd() const { return Fd; }
  bool valid() const { return Fd >= 0; }
  void close();
  /// Releases ownership of the fd to the caller.
  int release();

  /// Connects to a listening gemmd socket at \p Path.
  static exo::Expected<Socket> connect(const std::string &Path);

  /// Binds and listens at \p Path (unlinking any stale socket file first).
  static exo::Expected<Socket> listen(const std::string &Path, int Backlog);

  /// Accepts one pending connection (the fd is made non-blocking by the
  /// caller if desired); fails on transient errors with errno text.
  exo::Expected<Socket> accept();

  /// Writes exactly \p N bytes (EINTR-safe, SIGPIPE-free). Fails when the
  /// peer is gone.
  exo::Error sendAll(const void *Buf, size_t N);

  /// Reads exactly \p N bytes. Fails on EOF or error.
  exo::Error recvAll(void *Buf, size_t N);

  /// Reads exactly \p N bytes, waiting at most \p TimeoutMs (-1 = forever).
  /// Distinguishes timeout ("gemmd: timed out ...") from peer loss.
  exo::Error recvAllTimed(void *Buf, size_t N, int TimeoutMs);

  /// Sends a single doorbell byte; a lost peer is reported, not fatal.
  exo::Error ring(uint8_t Bell) { return sendAll(&Bell, 1); }

private:
  int Fd = -1;
};

/// The socket path clients and the server agree on by default:
/// $EXO_GEMMD_SOCKET, else /tmp/exo-gemmd-<uid>.sock.
std::string defaultSocketPath();

} // namespace ipc

#endif // IPC_SOCKET_H
