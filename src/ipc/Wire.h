//===- Wire.h - gemmd wire protocol: versioned packet structs -------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed-layout structs exchanged between a gemmd server and its
/// clients (see docs/GEMMD.md for the protocol narrative). Two transports
/// carry them:
///
///   1. The Unix-domain control socket carries exactly one HelloMsg /
///      HelloAck exchange per connection (the shm region does not exist
///      server-side yet), then degrades to a doorbell byte stream.
///   2. Everything after the handshake travels as fixed-size packets
///      through the two SPSC rings inside the client's shared-memory
///      region (Ring.h); tensor payloads live in the region's arena and
///      are referenced by offset, never copied through the rings.
///
/// Versioning: every struct starts with {Magic, Version}. The server
/// rejects a mismatched HelloMsg before mapping anything, and both sides
/// validate PacketHeader on every ring pop — a malformed or oversized
/// header is a protocol violation that costs that client its session,
/// never the server. Structs are trivially copyable, fixed-width-integer
/// only, and static_asserted to their intended sizes so the layout cannot
/// drift silently between client and server builds.
///
//===----------------------------------------------------------------------===//

#ifndef IPC_WIRE_H
#define IPC_WIRE_H

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace ipc {

/// 'GMD1' — shared by every wire struct and the shm header.
inline constexpr uint32_t WireMagic = 0x31444D47;
/// Bumped on any layout or semantics change; no cross-version service.
/// v2: batched GEMM (GemmBatchRequest/GemmBatchReply packets).
/// v3: dtype rides GemmRequestMsg (DTy, in the former pad byte — the
///     struct layout is unchanged but a v2 server would silently run a
///     typed request as f32, so the version must gate it).
inline constexpr uint16_t WireVersion = 3;

/// Ring slot size. Every packet (header + payload) must fit one slot;
/// StatsReply is the widest packet and sizes it.
inline constexpr uint32_t SlotBytes = 256;

/// Doorbell bytes on the control socket after the handshake.
enum Doorbell : uint8_t {
  DoorbellRequest = 'q', ///< client -> server: request ring has packets
  DoorbellReply = 'r',   ///< server -> client: response ring has packets
};

/// HelloAck::Status values.
enum class HelloStatus : uint16_t {
  Ok = 0,
  BadVersion = 1,  ///< protocol version mismatch
  Full = 2,        ///< server at --max-clients
  BadRegion = 3,   ///< shm name unmappable or header invalid
  ShuttingDown = 4,
};

/// GemmReply::Status values (negatives are transport-level).
enum class ReqStatus : int32_t {
  Ok = 0,
  Error = 1, ///< Engine::sgemm failed; GemmReply::Err has the message
  Busy = 2,  ///< admission control: bounded queue full, request dropped
  Bad = 3,   ///< request failed validation (offsets, dims, overlap)
};

/// GemmReply::Flags bits.
enum ReplyFlags : uint32_t {
  ReplyPlanHit = 1u << 0,  ///< served by a cached plan (no plan build)
  ReplyPlanBuilt = 1u << 1, ///< this request built a new plan
  ReplyJitCompiled = 1u << 2, ///< this request invoked the C compiler
};

/// First (and only) message a client sends over the fresh socket.
struct HelloMsg {
  uint32_t Magic = WireMagic;
  uint16_t Version = WireVersion;
  uint16_t Reserved = 0;
  uint64_t ShmBytes = 0;  ///< total region size the client created
  uint32_t RingSlots = 0; ///< slots per ring (power of two)
  uint32_t NameLen = 0;   ///< strlen of ShmName
  char ShmName[104] = {}; ///< NUL-terminated POSIX shm name ("/exo-...")
};
static_assert(sizeof(HelloMsg) == 128, "HelloMsg is part of the wire ABI");
static_assert(std::is_trivially_copyable_v<HelloMsg>);

/// The server's socket-level answer; on Ok the session is live and all
/// further traffic moves to the rings.
struct HelloAck {
  uint32_t Magic = WireMagic;
  uint16_t Version = WireVersion;
  uint16_t Status = 0;      ///< HelloStatus
  uint32_t ClientId = 0;    ///< server-assigned, echoed in stats
  uint32_t MaxInflight = 0; ///< requests the client may keep outstanding
  char Err[112] = {};       ///< human-readable rejection reason
};
static_assert(sizeof(HelloAck) == 128, "HelloAck is part of the wire ABI");
static_assert(std::is_trivially_copyable_v<HelloAck>);

/// Packet discriminator inside the rings.
enum class PacketType : uint16_t {
  GemmRequest = 1,
  GemmReply = 2,
  StatsRequest = 3,
  StatsReply = 4,
  Ping = 5,
  PingReply = 6,
  GemmBatchRequest = 7,
  GemmBatchReply = 8,
};

/// Leads every ring packet. Bytes counts the full packet (header
/// included) and must satisfy sizeof(PacketHeader) <= Bytes <= SlotBytes;
/// anything else is a protocol violation.
struct PacketHeader {
  uint32_t Magic = WireMagic;
  uint16_t Version = WireVersion;
  uint16_t Type = 0; ///< PacketType
  uint32_t Seq = 0;  ///< request/reply correlation id (echoed back)
  uint32_t Bytes = 0;
};
static_assert(sizeof(PacketHeader) == 16);
static_assert(std::is_trivially_copyable_v<PacketHeader>);

/// One GEMM over tensors in the session arena. Offsets are bytes from the
/// arena base; operands use the same column-major convention as
/// Engine::sgemm (with TA != 0, A is stored K x M with Lda >= K, and
/// symmetrically for B).
///
/// v3: DTy selects the element type (gemm::DType values: 0 f32, 1 f16,
/// 2 bf16, 3 i8->i32) and the server re-validates every arena span at that
/// dtype's element sizes (A/B at dtypeInBytes, C at dtypeOutBytes). For
/// I8I32, Alpha/Beta must hold exact integers. Zero — the old pad byte's
/// only legal value — is f32, so a v2-era packet body reads as f32.
struct GemmRequestMsg {
  PacketHeader H;
  uint8_t TA = 0, TB = 0; ///< 0 = none, 1 = transpose
  uint8_t DTy = 0;        ///< gemm::DType; 0 = f32
  uint8_t Pad0 = 0;
  float Alpha = 1.0f;
  float Beta = 0.0f;
  int64_t M = 0, N = 0, K = 0;
  uint64_t OffA = 0, OffB = 0, OffC = 0;
  int64_t Lda = 0, Ldb = 0, Ldc = 0;
};
static_assert(sizeof(GemmRequestMsg) == 104);
static_assert(std::is_trivially_copyable_v<GemmRequestMsg>);

/// A strided batch of GEMMs over arena tensors: one doorbell round-trip
/// executes BatchCount problems of one shape through the server Engine's
/// sgemmStridedBatched — the amortization batched clients exist for.
/// Offsets address item 0; item i's operands live at Off{A,B,C} +
/// i * Stride{A,B,C} * sizeof(float) (strides in elements, like cuBLAS).
/// StrideA/StrideB may be 0 (shared operand); StrideC must keep the C
/// items disjoint. Answered by a single GemmReplyMsg with Type ==
/// GemmBatchReply covering the whole batch.
struct GemmBatchRequestMsg {
  PacketHeader H;
  uint8_t TA = 0, TB = 0; ///< 0 = none, 1 = transpose
  /// Batches stay f32-only in v3 (the batched engine path is f32); a
  /// non-zero value is rejected with ReqStatus::Bad. Reserved for v4.
  uint8_t DTy = 0;
  uint8_t Pad0 = 0;
  float Alpha = 1.0f;
  float Beta = 0.0f;
  int64_t M = 0, N = 0, K = 0;
  uint64_t OffA = 0, OffB = 0, OffC = 0;
  int64_t Lda = 0, Ldb = 0, Ldc = 0;
  int64_t StrideA = 0, StrideB = 0, StrideC = 0;
  int64_t BatchCount = 0;
};
static_assert(sizeof(GemmBatchRequestMsg) == 136);
static_assert(sizeof(GemmBatchRequestMsg) <= SlotBytes);
static_assert(std::is_trivially_copyable_v<GemmBatchRequestMsg>);

/// Completion for one GemmRequestMsg (same Seq). On Ok the result is
/// already in the arena at OffC.
struct GemmReplyMsg {
  PacketHeader H;
  int32_t Status = 0;   ///< ReqStatus
  uint32_t Flags = 0;   ///< ReplyFlags
  uint64_t ServerNs = 0; ///< wall time inside the server for this request
  char Err[88] = {};    ///< truncated Engine diagnostic when Status != Ok
};
static_assert(sizeof(GemmReplyMsg) == 120);
static_assert(std::is_trivially_copyable_v<GemmReplyMsg>);

/// Daemon-wide counters, served to any client on StatsRequest — how a cold
/// client proves the shared plan/JIT cache is warm (docs/GEMMD.md).
struct StatsReplyMsg {
  PacketHeader H;
  uint64_t ActiveClients = 0;
  uint64_t TotalClients = 0;  ///< sessions ever admitted
  uint64_t Requests = 0;      ///< GEMM requests accepted off the rings
  uint64_t Ok = 0;
  uint64_t Errors = 0;        ///< engine or validation failures
  uint64_t Busy = 0;          ///< admission-control rejections
  uint64_t Reaped = 0;        ///< sessions torn down by crash/violation
  uint64_t PlanHits = 0;      ///< EngineStats::Hits
  uint64_t PlanMisses = 0;
  uint64_t PlanBuilds = 0;
  uint64_t PlanEvictions = 0;
  uint64_t PlanStickyErrors = 0;
  uint64_t UkrDiskHits = 0;   ///< JIT artifacts loaded from the disk cache
  uint64_t UkrCompiles = 0;   ///< compiler invocations
  uint64_t UkrFallbacks = 0;
  uint64_t UptimeNs = 0;
};
static_assert(sizeof(StatsReplyMsg) == 144);
static_assert(sizeof(StatsReplyMsg) <= SlotBytes);
static_assert(std::is_trivially_copyable_v<StatsReplyMsg>);

/// Safe packet extraction from a ring slot: copies the struct out iff the
/// already-validated header's Bytes covers it.
template <typename T> bool readPacket(const void *Slot, uint32_t Bytes, T &Out) {
  if (Bytes < sizeof(T))
    return false;
  std::memcpy(&Out, Slot, sizeof(T));
  return true;
}

} // namespace ipc

#endif // IPC_WIRE_H
