//===- Shm.cpp - POSIX shared-memory tensor regions for gemmd -------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "ipc/Shm.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace exo;

namespace ipc {

Expected<SessionLayout> SessionLayout::derive(uint64_t TotalBytes,
                                              uint32_t Slots) {
  if (Slots < 2 || Slots > 4096 || (Slots & (Slots - 1)) != 0)
    return errorf("gemmd shm: ring slot count %u is not a power of two in "
                  "[2, 4096]",
                  Slots);
  SessionLayout L;
  L.RingSlots = Slots;
  L.TotalBytes = TotalBytes;
  // 64-byte-align each piece; the arena additionally starts page-aligned
  // so tensor rows sit on cache-line boundaries for the kernels.
  auto Align = [](uint64_t X, uint64_t A) { return (X + A - 1) & ~(A - 1); };
  L.ReqRingOff = Align(sizeof(ShmSessionHeader), 64);
  L.RespRingOff = Align(L.ReqRingOff + ringBytes(Slots), 64);
  L.ArenaOff = Align(L.RespRingOff + ringBytes(Slots), 4096);
  if (TotalBytes <= L.ArenaOff)
    return errorf("gemmd shm: region of %llu bytes leaves no tensor arena "
                  "(need > %llu)",
                  static_cast<unsigned long long>(TotalBytes),
                  static_cast<unsigned long long>(L.ArenaOff));
  L.ArenaBytes = TotalBytes - L.ArenaOff;
  return L;
}

ShmRegion::~ShmRegion() { reset(); }

ShmRegion::ShmRegion(ShmRegion &&O) noexcept
    : Base(O.Base), Bytes(O.Bytes), Name(std::move(O.Name)), Owner(O.Owner) {
  O.Base = nullptr;
  O.Bytes = 0;
  O.Name.clear();
  O.Owner = false;
}

ShmRegion &ShmRegion::operator=(ShmRegion &&O) noexcept {
  if (this != &O) {
    reset();
    Base = O.Base;
    Bytes = O.Bytes;
    Name = std::move(O.Name);
    Owner = O.Owner;
    O.Base = nullptr;
    O.Bytes = 0;
    O.Name.clear();
    O.Owner = false;
  }
  return *this;
}

void ShmRegion::reset() {
  if (Base)
    ::munmap(Base, Bytes);
  unlinkName();
  Base = nullptr;
  Bytes = 0;
}

void ShmRegion::unlinkName() {
  if (Owner && !Name.empty())
    ::shm_unlink(Name.c_str());
  Name.clear();
  Owner = false;
}

Expected<ShmRegion> ShmRegion::create(uint64_t Bytes) {
  if (Bytes == 0)
    return errorf("gemmd shm: zero-byte region");
  // Collision-proof name: pid + monotonic clock + a per-process counter
  // (two Clients in one process may create regions in the same tick).
  static std::atomic<uint32_t> Counter{0};
  uint64_t Now = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "/exo-gemmd-%ld-%llx-%u",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(Now),
                Counter.fetch_add(1, std::memory_order_relaxed));
  int Fd = ::shm_open(Buf, O_CREAT | O_EXCL | O_RDWR, 0600);
  if (Fd < 0)
    return errorf("gemmd shm: shm_open(%s) failed: %s", Buf,
                  std::strerror(errno));
  ShmRegion R;
  R.Name = Buf;
  R.Owner = true;
  if (::ftruncate(Fd, static_cast<off_t>(Bytes)) != 0) {
    int E = errno;
    ::close(Fd);
    return errorf("gemmd shm: ftruncate to %llu bytes failed: %s",
                  static_cast<unsigned long long>(Bytes), std::strerror(E));
  }
  void *P = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
  ::close(Fd);
  if (P == MAP_FAILED)
    return errorf("gemmd shm: mmap of %llu bytes failed: %s",
                  static_cast<unsigned long long>(Bytes),
                  std::strerror(errno));
  R.Base = P;
  R.Bytes = Bytes;
  return R;
}

Expected<ShmRegion> ShmRegion::open(const std::string &Name,
                                    uint64_t ExpectBytes) {
  if (Name.empty() || Name[0] != '/' || Name.find('/', 1) != std::string::npos)
    return errorf("gemmd shm: '%s' is not a valid shm name", Name.c_str());
  int Fd = ::shm_open(Name.c_str(), O_RDWR, 0);
  if (Fd < 0)
    return errorf("gemmd shm: shm_open(%s) failed: %s", Name.c_str(),
                  std::strerror(errno));
  struct stat St;
  if (::fstat(Fd, &St) != 0 ||
      static_cast<uint64_t>(St.st_size) != ExpectBytes) {
    ::close(Fd);
    return errorf("gemmd shm: %s is %lld bytes, client announced %llu",
                  Name.c_str(), static_cast<long long>(St.st_size),
                  static_cast<unsigned long long>(ExpectBytes));
  }
  void *P = ::mmap(nullptr, ExpectBytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                   Fd, 0);
  ::close(Fd);
  if (P == MAP_FAILED)
    return errorf("gemmd shm: mmap of %s failed: %s", Name.c_str(),
                  std::strerror(errno));
  ShmRegion R;
  R.Base = P;
  R.Bytes = ExpectBytes;
  // The server never owns the name; the client unlinks after the ack.
  return R;
}

} // namespace ipc
