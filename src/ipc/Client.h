//===- Client.h - gemm::Client, the remote Engine front door --------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of gemmd: `gemm::Client::sgemm` is call-compatible with
/// `Engine::sgemm`, but instead of planning and executing locally it
/// stages the operands into the session's shared-memory arena, posts a
/// GemmRequest packet on the request ring, rings the doorbell, and blocks
/// until the server's reply — so a fleet of processes shares ONE warm
/// plan cache, ONE JIT cache, and ONE thread pool inside the daemon
/// instead of each paying the cold-start cost (docs/GEMMD.md).
///
/// Semantics match the Engine exactly: degenerate calls (m/n/k == 0,
/// alpha == 0) are answered locally through the same scaleByBeta path the
/// Engine uses and never touch the wire; everything else produces results
/// bitwise identical to a local `Engine::sgemm` with the daemon's config
/// (the daemon_test differential suite enforces this).
///
/// Lifecycle: connect() is explicit or implicit on first use; a
/// connection that dies (server gone, protocol error) fails the call in
/// flight and the next call transparently reconnects. One Client holds
/// one session; calls are serialized internally (use one Client per
/// thread for parallel request streams, as bench_gemmd does).
///
/// Knobs: EXO_GEMMD_SOCKET (rendezvous path), EXO_GEMMD_SHM_BYTES
/// (arena size; requests that do not fit fail client-side with a clear
/// message), EXO_GEMMD_TIMEOUT_MS (reply wait); see docs/KNOBS.md.
///
//===----------------------------------------------------------------------===//

#ifndef IPC_CLIENT_H
#define IPC_CLIENT_H

#include "gemm/Gemm.h"
#include "ipc/Shm.h"
#include "ipc/Socket.h"
#include "ipc/Wire.h"

#include <mutex>

namespace gemm {

/// See file comment.
class Client {
public:
  struct Options {
    /// Empty resolves EXO_GEMMD_SOCKET, else /tmp/exo-gemmd-<uid>.sock.
    std::string SocketPath;
    /// Session region size (rings + tensor arena). 0 resolves
    /// EXO_GEMMD_SHM_BYTES, else 64 MiB.
    uint64_t ShmBytes = 0;
    /// Reply wait budget in ms; 0 resolves EXO_GEMMD_TIMEOUT_MS, else
    /// -1 (wait forever). Timeouts kill the session.
    int TimeoutMs = 0;
  };

  Client();
  explicit Client(const Options &Opts);
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Establishes the session now (handshake + shm mapping). sgemm calls
  /// do this lazily; connect() exists so callers can fail fast.
  exo::Error connect();
  bool connected() const;
  /// Tears the session down; the next call reconnects.
  void disconnect();

  /// Remote C = alpha * op(A) * op(B) + beta * C; call-compatible with
  /// Engine::sgemm and bitwise identical to the daemon engine's local
  /// result.
  exo::Error sgemm(Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                   float Alpha, const float *A, int64_t Lda, const float *B,
                   int64_t Ldb, float Beta, float *C, int64_t Ldc);

  /// Typed remote GEMM, call-compatible with Engine::gemm (wire v3):
  /// operands are raw element buffers of \p Ty's storage types (f32 floats,
  /// f16/bf16 uint16 halves, i8 A/B with i32 C) and the dtype byte rides
  /// the request packet so the server re-validates the arena spans at the
  /// right element sizes. F32 routes through sgemm() and stays bitwise
  /// identical to the untyped path. Alpha/beta cross the wire as f32, so
  /// they must be exactly representable in f32 (for I8I32 they must also
  /// be integers — both enforced client-side so the error names the caller
  /// rather than costing a round trip). Degenerate calls resolve locally
  /// through the same scaleByBetaTyped path the Engine uses.
  exo::Error gemm(DType Ty, Trans TA, Trans TB, int64_t M, int64_t N,
                  int64_t K, double Alpha, const void *A, int64_t Lda,
                  const void *B, int64_t Ldb, double Beta, void *C,
                  int64_t Ldc);

  exo::Error sgemm(int64_t M, int64_t N, int64_t K, float Alpha,
                   const float *A, int64_t Lda, const float *B, int64_t Ldb,
                   float Beta, float *C, int64_t Ldc) {
    return sgemm(Trans::None, Trans::None, M, N, K, Alpha, A, Lda, B, Ldb,
                 Beta, C, Ldc);
  }

  /// Remote strided-batched GEMM, call-compatible with
  /// Engine::sgemmStridedBatched: BatchCount same-shape problems cross the
  /// wire as ONE packet and ONE doorbell round-trip, so a model's worth of
  /// small GEMMs pays the per-request latency once. StrideA/StrideB == 0
  /// ships the shared operand a single time. Degenerate batches resolve
  /// locally like sgemm; results are bitwise identical to the daemon
  /// engine's local sgemmStridedBatched.
  exo::Error sgemmStridedBatched(Trans TA, Trans TB, int64_t M, int64_t N,
                                 int64_t K, float Alpha, const float *A,
                                 int64_t Lda, int64_t StrideA, const float *B,
                                 int64_t Ldb, int64_t StrideB, float Beta,
                                 float *C, int64_t Ldc, int64_t StrideC,
                                 int64_t BatchCount);

  /// Round-trips a Ping packet (liveness probe).
  exo::Error ping();

  /// Fetches the daemon's aggregate counters (plan cache, JIT cache,
  /// admission control) — how a cold process observes the warm shared
  /// cache.
  exo::Error serverStats(ipc::StatsReplyMsg &Out);

  /// ReplyFlags of the last completed remote sgemm (plan hit / plan
  /// built / jit compiled), 0 before any call.
  uint32_t lastFlags() const { return LastFlags; }
  /// Remote sgemm calls completed Ok over this Client's lifetime.
  uint64_t requestsOk() const { return RequestsOk; }

private:
  exo::Error ensureConnectedLocked();
  exo::Error transactLocked(const void *Packet, uint32_t Bytes, void *Reply,
                            ipc::PacketType WantType, uint32_t WantSeq);
  void dropSessionLocked();

  Options Opts;
  std::mutex Mu; ///< one request in flight per Client
  ipc::Socket Sock;
  ipc::ShmRegion Shm;
  ipc::SessionLayout Layout;
  ipc::RingView ReqRing, RespRing;
  bool Connected = false;
  uint32_t Seq = 0;
  uint32_t LastFlags = 0;
  uint64_t RequestsOk = 0;
};

} // namespace gemm

#endif // IPC_CLIENT_H
