//===- Client.cpp - gemm::Client, the remote Engine front door ------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "ipc/Client.h"

#include "exo/support/Env.h"
#include "obs/Obs.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace exo;

namespace gemm {

namespace {

uint64_t resolveShmBytes(uint64_t Configured) {
  if (Configured)
    return Configured;
  return static_cast<uint64_t>(
      exo::envInt("EXO_GEMMD_SHM_BYTES", std::getenv("EXO_GEMMD_SHM_BYTES"),
                  /*Default=*/64ll << 20, /*Min=*/1,
                  /*Max=*/int64_t(1) << 40));
}

int resolveTimeoutMs(int Configured) {
  if (Configured)
    return Configured;
  return static_cast<int>(
      exo::envInt("EXO_GEMMD_TIMEOUT_MS", std::getenv("EXO_GEMMD_TIMEOUT_MS"),
                  /*Default=*/-1, /*Min=*/-1, /*Max=*/1 << 30));
}

/// Operand footprint as stored (column-major): Rows x Cols with a compact
/// leading dimension equal to Rows.
struct Staged {
  int64_t Rows = 0, Cols = 0;
  uint64_t Off = 0;
  uint64_t bytes() const {
    return static_cast<uint64_t>(Rows) * static_cast<uint64_t>(Cols) *
           sizeof(float);
  }
};

void copyIn(float *Dst, const float *Src, int64_t Rows, int64_t Cols,
            int64_t SrcLd) {
  for (int64_t J = 0; J != Cols; ++J)
    std::memcpy(Dst + J * Rows, Src + J * SrcLd,
                static_cast<size_t>(Rows) * sizeof(float));
}

/// Byte-typed copyIn for the dtype-generic path: column strides are in
/// elements of \p Elem bytes, exactly like the f32 overload.
void copyInBytes(unsigned char *Dst, const unsigned char *Src, int64_t Rows,
                 int64_t Cols, int64_t SrcLd, uint64_t Elem) {
  for (int64_t J = 0; J != Cols; ++J)
    std::memcpy(Dst + static_cast<uint64_t>(J * Rows) * Elem,
                Src + static_cast<uint64_t>(J * SrcLd) * Elem,
                static_cast<size_t>(Rows) * Elem);
}

} // namespace

Client::Client() : Client(Options{}) {}

Client::Client(const Options &O) : Opts(O) {
  if (Opts.SocketPath.empty())
    Opts.SocketPath = ipc::defaultSocketPath();
  Opts.ShmBytes = resolveShmBytes(Opts.ShmBytes);
  Opts.TimeoutMs = resolveTimeoutMs(Opts.TimeoutMs);
}

Client::~Client() = default;

bool Client::connected() const { return Connected; }

void Client::disconnect() {
  std::lock_guard<std::mutex> Lock(Mu);
  dropSessionLocked();
}

void Client::dropSessionLocked() {
  Sock.close();
  Shm = ipc::ShmRegion();
  Connected = false;
}

Error Client::connect() {
  std::lock_guard<std::mutex> Lock(Mu);
  return ensureConnectedLocked();
}

Error Client::ensureConnectedLocked() {
  if (Connected)
    return Error::success();
  constexpr uint32_t Slots = 64;
  Expected<ipc::SessionLayout> L =
      ipc::SessionLayout::derive(Opts.ShmBytes, Slots);
  if (!L)
    return L.takeError();
  Expected<ipc::ShmRegion> R = ipc::ShmRegion::create(Opts.ShmBytes);
  if (!R)
    return R.takeError();
  Layout = *L;
  Shm = R.take();

  // Format the region before announcing it: header, then both rings.
  auto *H = reinterpret_cast<ipc::ShmSessionHeader *>(Shm.base());
  *H = ipc::ShmSessionHeader{};
  H->TotalBytes = Opts.ShmBytes;
  H->RingSlots = Slots;
  H->ArenaOff = Layout.ArenaOff;
  H->ArenaBytes = Layout.ArenaBytes;
  ReqRing.init(Shm.at(Layout.ReqRingOff), Slots);
  RespRing.init(Shm.at(Layout.RespRingOff), Slots);

  Expected<ipc::Socket> S = ipc::Socket::connect(Opts.SocketPath);
  if (!S) {
    Shm = ipc::ShmRegion();
    return S.takeError();
  }
  Sock = S.take();

  ipc::HelloMsg Hello;
  Hello.ShmBytes = Opts.ShmBytes;
  Hello.RingSlots = Slots;
  Hello.NameLen = static_cast<uint32_t>(Shm.name().size());
  std::snprintf(Hello.ShmName, sizeof(Hello.ShmName), "%s",
                Shm.name().c_str());
  if (Error E = Sock.sendAll(&Hello, sizeof(Hello))) {
    dropSessionLocked();
    return E;
  }
  ipc::HelloAck Ack;
  if (Error E = Sock.recvAllTimed(&Ack, sizeof(Ack), Opts.TimeoutMs)) {
    dropSessionLocked();
    return E;
  }
  if (Ack.Magic != ipc::WireMagic ||
      Ack.Status != static_cast<uint16_t>(ipc::HelloStatus::Ok)) {
    Error E = errorf("gemmd: server rejected session: %.*s",
                     static_cast<int>(sizeof(Ack.Err)), Ack.Err[0]
                         ? Ack.Err
                         : "(unspecified)");
    dropSessionLocked();
    return E;
  }
  // The server holds a mapping now; drop the name so a crash on either
  // side can never leak a /dev/shm entry.
  Shm.unlinkName();
  Connected = true;
  return Error::success();
}

Error Client::transactLocked(const void *Packet, uint32_t Bytes, void *Reply,
                             ipc::PacketType WantType, uint32_t WantSeq) {
  if (!ReqRing.push(Packet, Bytes)) {
    // Synchronous protocol: a full request ring means the server stopped
    // draining — treat as a dead session.
    dropSessionLocked();
    return errorf("gemmd: request ring full (server stalled)");
  }
  if (Error E = Sock.ring(ipc::DoorbellRequest)) {
    dropSessionLocked();
    return E;
  }
  // Wait for reply doorbells; tolerate coalescing and stale packets.
  for (;;) {
    alignas(8) unsigned char Slot[ipc::SlotBytes];
    while (RespRing.pop(Slot)) {
      ipc::PacketHeader PH;
      std::memcpy(&PH, Slot, sizeof(PH));
      if (PH.Magic != ipc::WireMagic || PH.Version != ipc::WireVersion ||
          PH.Bytes < sizeof(ipc::PacketHeader) || PH.Bytes > ipc::SlotBytes) {
        dropSessionLocked();
        return errorf("gemmd: malformed reply packet from server");
      }
      if (PH.Type == static_cast<uint16_t>(WantType) && PH.Seq == WantSeq) {
        std::memcpy(Reply, Slot, ipc::SlotBytes);
        return Error::success();
      }
      // Stale reply for an abandoned request; skip.
    }
    uint8_t Bell;
    if (Error E = Sock.recvAllTimed(&Bell, 1, Opts.TimeoutMs)) {
      dropSessionLocked();
      return E;
    }
  }
}

Error Client::sgemm(Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
                    float Alpha, const float *A, int64_t Lda, const float *B,
                    int64_t Ldb, float Beta, float *C, int64_t Ldc) {
  if (M < 0 || N < 0 || K < 0)
    return errorf("gemmd client: negative dimension");
  // Degenerate quick returns stay local, mirroring Engine::sgemm exactly
  // (same scaleByBeta path, so results are bitwise identical).
  if (M == 0 || N == 0)
    return Error::success();
  if (K == 0 || Alpha == 0.0f) {
    detail::scaleByBeta(M, N, Beta, C, Ldc);
    return Error::success();
  }
  const int64_t ARows = TA == Trans::None ? M : K;
  const int64_t ACols = TA == Trans::None ? K : M;
  const int64_t BRows = TB == Trans::None ? K : N;
  const int64_t BCols = TB == Trans::None ? N : K;
  if (Lda < ARows || Ldb < BRows || Ldc < M)
    return errorf("gemmd client: leading dimension smaller than rows");

  std::lock_guard<std::mutex> Lock(Mu);
  if (Error E = ensureConnectedLocked())
    return E;

  // Stage the operands compactly into the arena (64-byte aligned).
  auto Align = [](uint64_t X) { return (X + 63) & ~uint64_t{63}; };
  Staged SA{ARows, ACols, 0}, SB{BRows, BCols, 0}, SC{M, N, 0};
  SB.Off = Align(SA.bytes());
  SC.Off = Align(SB.Off + SB.bytes());
  uint64_t Need = SC.Off + SC.bytes();
  if (Need > Layout.ArenaBytes)
    return errorf("gemmd client: %lldx%lldx%lld needs %llu arena bytes but "
                  "the session has %llu — raise EXO_GEMMD_SHM_BYTES",
                  static_cast<long long>(M), static_cast<long long>(N),
                  static_cast<long long>(K),
                  static_cast<unsigned long long>(Need),
                  static_cast<unsigned long long>(Layout.ArenaBytes));

  EXO_OBS_SPAN("gemmd.client.call");
  unsigned char *Arena = Shm.at(Layout.ArenaOff);
  {
    EXO_OBS_SPAN("gemmd.client.stage");
    copyIn(reinterpret_cast<float *>(Arena + SA.Off), A, ARows, ACols, Lda);
    copyIn(reinterpret_cast<float *>(Arena + SB.Off), B, BRows, BCols, Ldb);
    if (Beta != 0.0f)
      copyIn(reinterpret_cast<float *>(Arena + SC.Off), C, M, N, Ldc);
  }

  ipc::GemmRequestMsg Req;
  Req.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmRequest);
  Req.H.Seq = ++Seq;
  Req.H.Bytes = sizeof(Req);
  Req.TA = TA == Trans::Transpose;
  Req.TB = TB == Trans::Transpose;
  Req.Alpha = Alpha;
  Req.Beta = Beta;
  Req.M = M;
  Req.N = N;
  Req.K = K;
  Req.OffA = SA.Off;
  Req.OffB = SB.Off;
  Req.OffC = SC.Off;
  Req.Lda = ARows;
  Req.Ldb = BRows;
  Req.Ldc = M;

  alignas(8) unsigned char ReplyBuf[ipc::SlotBytes];
  if (Error E = transactLocked(&Req, sizeof(Req), ReplyBuf,
                               ipc::PacketType::GemmReply, Req.H.Seq))
    return E;
  ipc::GemmReplyMsg Reply;
  std::memcpy(&Reply, ReplyBuf, sizeof(Reply));
  LastFlags = Reply.Flags;
  switch (static_cast<ipc::ReqStatus>(Reply.Status)) {
  case ipc::ReqStatus::Ok:
    break;
  case ipc::ReqStatus::Busy:
    return errorf("gemmd: server busy (admission queue full)");
  default:
    return errorf("gemmd: %.*s", static_cast<int>(sizeof(Reply.Err)),
                  Reply.Err[0] ? Reply.Err : "request failed");
  }
  {
    EXO_OBS_SPAN("gemmd.client.collect");
    const float *Src = reinterpret_cast<const float *>(Arena + SC.Off);
    for (int64_t J = 0; J != N; ++J)
      std::memcpy(C + J * Ldc, Src + J * M,
                  static_cast<size_t>(M) * sizeof(float));
  }
  ++RequestsOk;
  return Error::success();
}

Error Client::gemm(DType Ty, Trans TA, Trans TB, int64_t M, int64_t N,
                   int64_t K, double Alpha, const void *A, int64_t Lda,
                   const void *B, int64_t Ldb, double Beta, void *C,
                   int64_t Ldc) {
  // The f32 door is the untyped path, byte for byte (DTy stays 0 on the
  // wire, matching every pre-v3 client packet).
  if (Ty == DType::F32)
    return sgemm(TA, TB, M, N, K, static_cast<float>(Alpha),
                 static_cast<const float *>(A), Lda,
                 static_cast<const float *>(B), Ldb,
                 static_cast<float>(Beta), static_cast<float *>(C), Ldc);
  if (M < 0 || N < 0 || K < 0)
    return errorf("gemmd client: negative dimension");
  // The wire carries alpha/beta as f32; refuse anything that would be
  // silently rounded in transit. For I8I32 the engine additionally
  // requires exact integers — check here too so the diagnostic names the
  // caller instead of costing a round trip.
  if (static_cast<double>(static_cast<float>(Alpha)) != Alpha ||
      static_cast<double>(static_cast<float>(Beta)) != Beta)
    return errorf("gemmd client: alpha/beta must be exactly representable "
                  "as f32 (the wire carries them as f32)");
  if (Ty == DType::I8I32 &&
      (Alpha != std::nearbyint(Alpha) || Beta != std::nearbyint(Beta)))
    return errorf("gemmd client: i8 gemm requires integer alpha/beta");
  // Degenerate quick returns stay local, mirroring Engine::gemm exactly.
  if (M == 0 || N == 0)
    return Error::success();
  if (K == 0 || Alpha == 0.0) {
    detail::scaleByBetaTyped(Ty, M, N, Beta, C, Ldc);
    return Error::success();
  }
  const int64_t ARows = TA == Trans::None ? M : K;
  const int64_t ACols = TA == Trans::None ? K : M;
  const int64_t BRows = TB == Trans::None ? K : N;
  const int64_t BCols = TB == Trans::None ? N : K;
  if (Lda < ARows || Ldb < BRows || Ldc < M)
    return errorf("gemmd client: leading dimension smaller than rows");

  std::lock_guard<std::mutex> Lock(Mu);
  if (Error E = ensureConnectedLocked())
    return E;

  // Stage compactly at the dtype's own element sizes (A/B storage
  // elements, i32 for an i8 request's C), 64-byte aligned like sgemm.
  const uint64_t InB = dtypeInBytes(Ty);
  const uint64_t OutB = dtypeOutBytes(Ty);
  auto Align = [](uint64_t X) { return (X + 63) & ~uint64_t{63}; };
  const uint64_t ABytes =
      static_cast<uint64_t>(ARows) * static_cast<uint64_t>(ACols) * InB;
  const uint64_t BBytes =
      static_cast<uint64_t>(BRows) * static_cast<uint64_t>(BCols) * InB;
  const uint64_t CBytes =
      static_cast<uint64_t>(M) * static_cast<uint64_t>(N) * OutB;
  const uint64_t OffA = 0;
  const uint64_t OffB = Align(ABytes);
  const uint64_t OffC = Align(OffB + BBytes);
  const uint64_t Need = OffC + CBytes;
  if (Need > Layout.ArenaBytes)
    return errorf("gemmd client: %lldx%lldx%lld (%s) needs %llu arena bytes "
                  "but the session has %llu — raise EXO_GEMMD_SHM_BYTES",
                  static_cast<long long>(M), static_cast<long long>(N),
                  static_cast<long long>(K), dtypeName(Ty),
                  static_cast<unsigned long long>(Need),
                  static_cast<unsigned long long>(Layout.ArenaBytes));

  EXO_OBS_SPAN("gemmd.client.call");
  unsigned char *Arena = Shm.at(Layout.ArenaOff);
  {
    EXO_OBS_SPAN("gemmd.client.stage");
    copyInBytes(Arena + OffA, static_cast<const unsigned char *>(A), ARows,
                ACols, Lda, InB);
    copyInBytes(Arena + OffB, static_cast<const unsigned char *>(B), BRows,
                BCols, Ldb, InB);
    if (Beta != 0.0)
      copyInBytes(Arena + OffC, static_cast<const unsigned char *>(C), M, N,
                  Ldc, OutB);
  }

  ipc::GemmRequestMsg Req;
  Req.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmRequest);
  Req.H.Seq = ++Seq;
  Req.H.Bytes = sizeof(Req);
  Req.TA = TA == Trans::Transpose;
  Req.TB = TB == Trans::Transpose;
  Req.DTy = static_cast<uint8_t>(Ty);
  Req.Alpha = static_cast<float>(Alpha);
  Req.Beta = static_cast<float>(Beta);
  Req.M = M;
  Req.N = N;
  Req.K = K;
  Req.OffA = OffA;
  Req.OffB = OffB;
  Req.OffC = OffC;
  Req.Lda = ARows;
  Req.Ldb = BRows;
  Req.Ldc = M;

  alignas(8) unsigned char ReplyBuf[ipc::SlotBytes];
  if (Error E = transactLocked(&Req, sizeof(Req), ReplyBuf,
                               ipc::PacketType::GemmReply, Req.H.Seq))
    return E;
  ipc::GemmReplyMsg Reply;
  std::memcpy(&Reply, ReplyBuf, sizeof(Reply));
  LastFlags = Reply.Flags;
  switch (static_cast<ipc::ReqStatus>(Reply.Status)) {
  case ipc::ReqStatus::Ok:
    break;
  case ipc::ReqStatus::Busy:
    return errorf("gemmd: server busy (admission queue full)");
  default:
    return errorf("gemmd: %.*s", static_cast<int>(sizeof(Reply.Err)),
                  Reply.Err[0] ? Reply.Err : "request failed");
  }
  {
    EXO_OBS_SPAN("gemmd.client.collect");
    const unsigned char *Src = Arena + OffC;
    unsigned char *Dst = static_cast<unsigned char *>(C);
    for (int64_t J = 0; J != N; ++J)
      std::memcpy(Dst + static_cast<uint64_t>(J * Ldc) * OutB,
                  Src + static_cast<uint64_t>(J * M) * OutB,
                  static_cast<size_t>(M) * OutB);
  }
  ++RequestsOk;
  return Error::success();
}

Error Client::sgemmStridedBatched(Trans TA, Trans TB, int64_t M, int64_t N,
                                  int64_t K, float Alpha, const float *A,
                                  int64_t Lda, int64_t StrideA,
                                  const float *B, int64_t Ldb,
                                  int64_t StrideB, float Beta, float *C,
                                  int64_t Ldc, int64_t StrideC,
                                  int64_t BatchCount) {
  if (M < 0 || N < 0 || K < 0)
    return errorf("gemmd client: negative dimension");
  if (BatchCount < 0)
    return errorf("gemmd client: negative batch count");
  if (StrideA < 0 || StrideB < 0 || StrideC < 0)
    return errorf("gemmd client: negative batch stride");
  if (BatchCount == 0)
    return Error::success();
  // Degenerate batches stay local, item by item, mirroring
  // Engine::sgemmStridedBatched exactly.
  if (M == 0 || N == 0)
    return Error::success();
  if (K == 0 || Alpha == 0.0f) {
    for (int64_t I = 0; I < BatchCount; ++I)
      detail::scaleByBeta(M, N, Beta, C + I * StrideC, Ldc);
    return Error::success();
  }
  if (BatchCount > 1 && StrideC < Ldc * N)
    return errorf("gemmd client: StrideC (%lld) overlaps C items "
                  "(need >= Ldc * N = %lld)",
                  static_cast<long long>(StrideC),
                  static_cast<long long>(Ldc * N));
  const int64_t ARows = TA == Trans::None ? M : K;
  const int64_t ACols = TA == Trans::None ? K : M;
  const int64_t BRows = TB == Trans::None ? K : N;
  const int64_t BCols = TB == Trans::None ? N : K;
  if (Lda < ARows || Ldb < BRows || Ldc < M)
    return errorf("gemmd client: leading dimension smaller than rows");

  std::lock_guard<std::mutex> Lock(Mu);
  if (Error E = ensureConnectedLocked())
    return E;

  // Stage compactly: each operand is an array of back-to-back compact
  // items (the wire stride), the arrays themselves 64-byte aligned. A
  // zero input stride ships the shared operand once and keeps stride 0 on
  // the wire.
  auto Align = [](uint64_t X) { return (X + 63) & ~uint64_t{63}; };
  const int64_t NA = StrideA ? BatchCount : 1;
  const int64_t NB = StrideB ? BatchCount : 1;
  Staged SA{ARows, ACols, 0}, SB{BRows, BCols, 0}, SC{M, N, 0};
  SB.Off = Align(SA.bytes() * static_cast<uint64_t>(NA));
  SC.Off = Align(SB.Off + SB.bytes() * static_cast<uint64_t>(NB));
  uint64_t Need = SC.Off + SC.bytes() * static_cast<uint64_t>(BatchCount);
  if (Need > Layout.ArenaBytes)
    return errorf("gemmd client: batch of %lld %lldx%lldx%lld items needs "
                  "%llu arena bytes but the session has %llu — raise "
                  "EXO_GEMMD_SHM_BYTES or split the batch",
                  static_cast<long long>(BatchCount),
                  static_cast<long long>(M), static_cast<long long>(N),
                  static_cast<long long>(K),
                  static_cast<unsigned long long>(Need),
                  static_cast<unsigned long long>(Layout.ArenaBytes));

  EXO_OBS_SPAN("gemmd.client.batch");
  unsigned char *Arena = Shm.at(Layout.ArenaOff);
  {
    EXO_OBS_SPAN("gemmd.client.stage");
    for (int64_t I = 0; I < NA; ++I)
      copyIn(reinterpret_cast<float *>(Arena + SA.Off) +
                 I * ARows * ACols,
             A + I * StrideA, ARows, ACols, Lda);
    for (int64_t I = 0; I < NB; ++I)
      copyIn(reinterpret_cast<float *>(Arena + SB.Off) +
                 I * BRows * BCols,
             B + I * StrideB, BRows, BCols, Ldb);
    if (Beta != 0.0f)
      for (int64_t I = 0; I < BatchCount; ++I)
        copyIn(reinterpret_cast<float *>(Arena + SC.Off) + I * M * N,
               C + I * StrideC, M, N, Ldc);
  }

  ipc::GemmBatchRequestMsg Req;
  Req.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmBatchRequest);
  Req.H.Seq = ++Seq;
  Req.H.Bytes = sizeof(Req);
  Req.TA = TA == Trans::Transpose;
  Req.TB = TB == Trans::Transpose;
  Req.Alpha = Alpha;
  Req.Beta = Beta;
  Req.M = M;
  Req.N = N;
  Req.K = K;
  Req.OffA = SA.Off;
  Req.OffB = SB.Off;
  Req.OffC = SC.Off;
  Req.Lda = ARows;
  Req.Ldb = BRows;
  Req.Ldc = M;
  Req.StrideA = StrideA ? ARows * ACols : 0;
  Req.StrideB = StrideB ? BRows * BCols : 0;
  Req.StrideC = M * N;
  Req.BatchCount = BatchCount;

  alignas(8) unsigned char ReplyBuf[ipc::SlotBytes];
  if (Error E = transactLocked(&Req, sizeof(Req), ReplyBuf,
                               ipc::PacketType::GemmBatchReply, Req.H.Seq))
    return E;
  ipc::GemmReplyMsg Reply;
  std::memcpy(&Reply, ReplyBuf, sizeof(Reply));
  LastFlags = Reply.Flags;
  switch (static_cast<ipc::ReqStatus>(Reply.Status)) {
  case ipc::ReqStatus::Ok:
    break;
  case ipc::ReqStatus::Busy:
    return errorf("gemmd: server busy (admission queue full)");
  default:
    return errorf("gemmd: %.*s", static_cast<int>(sizeof(Reply.Err)),
                  Reply.Err[0] ? Reply.Err : "batch request failed");
  }
  {
    EXO_OBS_SPAN("gemmd.client.collect");
    for (int64_t I = 0; I < BatchCount; ++I) {
      const float *Src =
          reinterpret_cast<const float *>(Arena + SC.Off) + I * M * N;
      float *Dst = C + I * StrideC;
      for (int64_t J = 0; J != N; ++J)
        std::memcpy(Dst + J * Ldc, Src + J * M,
                    static_cast<size_t>(M) * sizeof(float));
    }
  }
  ++RequestsOk;
  return Error::success();
}

Error Client::ping() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Error E = ensureConnectedLocked())
    return E;
  ipc::PacketHeader P;
  P.Type = static_cast<uint16_t>(ipc::PacketType::Ping);
  P.Seq = ++Seq;
  P.Bytes = sizeof(P);
  alignas(8) unsigned char Reply[ipc::SlotBytes];
  return transactLocked(&P, sizeof(P), Reply, ipc::PacketType::PingReply,
                        P.Seq);
}

Error Client::serverStats(ipc::StatsReplyMsg &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Error E = ensureConnectedLocked())
    return E;
  ipc::PacketHeader P;
  P.Type = static_cast<uint16_t>(ipc::PacketType::StatsRequest);
  P.Seq = ++Seq;
  P.Bytes = sizeof(P);
  alignas(8) unsigned char Reply[ipc::SlotBytes];
  if (Error E = transactLocked(&P, sizeof(P), Reply,
                               ipc::PacketType::StatsReply, P.Seq))
    return E;
  std::memcpy(&Out, Reply, sizeof(Out));
  return Error::success();
}

} // namespace gemm
