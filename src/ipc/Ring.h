//===- Ring.h - SPSC packet ring inside a shared-memory region ------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The packet transport of a gemmd session: two single-producer/single-
/// consumer rings of fixed-size slots (Wire.h's SlotBytes) living inside
/// the client-created shared-memory region — the client produces into the
/// request ring and consumes the response ring, the server the opposite.
/// A doorbell byte on the control socket tells the other side to drain;
/// the rings themselves never block and never syscall.
///
/// Memory model: head/tail are lock-free std::atomic<uint32_t> (address-
/// free, so they work across process boundaries). The producer fills the
/// slot, then publishes with a release store to Head; the consumer
/// acquires Head, copies the slot out, then releases Tail. Indices only
/// ever grow (mod 2^32); Slots is a power of two so the mask is cheap.
///
/// Trust model: the server never trusts ring metadata it did not compute
/// itself — RingView::attach re-derives every offset from the validated
/// session geometry, and pop() hands back raw slot bytes for the caller
/// to header-check (a client can scribble anything here; see
/// docs/GEMMD.md "failure modes").
///
//===----------------------------------------------------------------------===//

#ifndef IPC_RING_H
#define IPC_RING_H

#include "ipc/Wire.h"

#include <atomic>
#include <cstring>

namespace ipc {

/// Control block at the head of each ring's shm slice.
struct RingHeader {
  std::atomic<uint32_t> Head; ///< next slot the producer will write
  std::atomic<uint32_t> Tail; ///< next slot the consumer will read
  uint32_t Slots;             ///< power of two
  uint32_t SlotBytes2;        ///< == SlotBytes (layout cross-check)
};
static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "shm rings need address-free atomics");
static_assert(sizeof(RingHeader) == 16);

/// Bytes one ring occupies for \p Slots slots.
inline constexpr uint64_t ringBytes(uint32_t Slots) {
  return sizeof(RingHeader) + static_cast<uint64_t>(Slots) * SlotBytes;
}

/// A process-local view of one ring at \p Base. The same type serves both
/// ends; each side only calls the half of the API its role allows.
class RingView {
public:
  RingView() = default;

  /// Attaches to (without initializing) a ring at \p Base.
  void attach(void *Base, uint32_t Slots) {
    H = static_cast<RingHeader *>(Base);
    Data = static_cast<unsigned char *>(Base) + sizeof(RingHeader);
    Mask = Slots - 1;
  }

  /// Formats a fresh ring in place (creator side, before the handshake
  /// publishes the region).
  void init(void *Base, uint32_t Slots) {
    attach(Base, Slots);
    H->Head.store(0, std::memory_order_relaxed);
    H->Tail.store(0, std::memory_order_relaxed);
    H->Slots = Slots;
    H->SlotBytes2 = SlotBytes;
  }

  bool attached() const { return H != nullptr; }

  /// Producer: copies \p Packet (Bytes <= SlotBytes) into the next slot
  /// and publishes it. False when the ring is full.
  bool push(const void *Packet, uint32_t Bytes) {
    uint32_t Head = H->Head.load(std::memory_order_relaxed);
    uint32_t Tail = H->Tail.load(std::memory_order_acquire);
    if (Head - Tail > Mask)
      return false;
    unsigned char *Slot = Data + static_cast<uint64_t>(Head & Mask) * SlotBytes;
    std::memcpy(Slot, Packet, Bytes);
    if (Bytes < SlotBytes)
      std::memset(Slot + Bytes, 0, SlotBytes - Bytes);
    H->Head.store(Head + 1, std::memory_order_release);
    return true;
  }

  template <typename T> bool pushPacket(const T &Packet) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= SlotBytes);
    return push(&Packet, sizeof(T));
  }

  /// Consumer: copies the next slot into \p Out (SlotBytes big) and
  /// retires it. False when the ring is empty. The bytes are untrusted —
  /// the caller validates the PacketHeader.
  bool pop(void *Out) {
    uint32_t Tail = H->Tail.load(std::memory_order_relaxed);
    uint32_t Head = H->Head.load(std::memory_order_acquire);
    if (Tail == Head)
      return false;
    const unsigned char *Slot =
        Data + static_cast<uint64_t>(Tail & Mask) * SlotBytes;
    std::memcpy(Out, Slot, SlotBytes);
    H->Tail.store(Tail + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return H->Tail.load(std::memory_order_relaxed) ==
           H->Head.load(std::memory_order_acquire);
  }

private:
  RingHeader *H = nullptr;
  unsigned char *Data = nullptr;
  uint32_t Mask = 0;
};

} // namespace ipc

#endif // IPC_RING_H
