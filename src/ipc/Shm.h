//===- Shm.h - POSIX shared-memory tensor regions for gemmd ---------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One gemmd session owns one POSIX shared-memory region, created by the
/// client, mapped by both sides, and laid out as:
///
///   [ ShmSessionHeader | request ring | response ring | tensor arena ]
///
/// The client names the region over the control socket (HelloMsg); the
/// server maps it, acks, and the client immediately shm_unlink()s the
/// name — from then on the region lives exactly as long as a mapping
/// does, so a SIGKILLed client can never leak a name into /dev/shm and
/// the server's mapping stays valid for any request already in flight.
///
/// ShmRegion is the RAII mapping (create-or-open + mmap); SessionLayout
/// derives the ring/arena offsets from (bytes, slots) on both sides
/// independently, so neither side ever trusts offsets the other wrote.
///
//===----------------------------------------------------------------------===//

#ifndef IPC_SHM_H
#define IPC_SHM_H

#include "exo/support/Error.h"
#include "ipc/Ring.h"
#include "ipc/Wire.h"

#include <string>

namespace ipc {

/// Page-0 header of the region, written by the client before the
/// handshake. The server cross-checks it against the HelloMsg and its own
/// SessionLayout; any disagreement rejects the session (HelloStatus::
/// BadRegion) before a single packet is popped.
struct ShmSessionHeader {
  uint32_t Magic = WireMagic;
  uint16_t Version = WireVersion;
  uint16_t Reserved = 0;
  uint64_t TotalBytes = 0;
  uint32_t RingSlots = 0;
  uint32_t Reserved2 = 0;
  uint64_t ArenaOff = 0;
  uint64_t ArenaBytes = 0;
};
static_assert(sizeof(ShmSessionHeader) == 40);
static_assert(std::is_trivially_copyable_v<ShmSessionHeader>);

/// Offsets of the pieces inside a region of \p TotalBytes with \p Slots
/// slots per ring. Both sides compute this independently.
struct SessionLayout {
  uint64_t ReqRingOff = 0;
  uint64_t RespRingOff = 0;
  uint64_t ArenaOff = 0;
  uint64_t ArenaBytes = 0;
  uint64_t TotalBytes = 0;
  uint32_t RingSlots = 0;

  /// Derives the layout; fails when the region is too small to hold the
  /// header, both rings and a non-empty arena, or Slots is not a power of
  /// two in [2, 4096].
  static exo::Expected<SessionLayout> derive(uint64_t TotalBytes,
                                             uint32_t Slots);
};

/// RAII POSIX shm mapping. Movable, not copyable.
class ShmRegion {
public:
  ShmRegion() = default;
  ~ShmRegion();
  ShmRegion(ShmRegion &&O) noexcept;
  ShmRegion &operator=(ShmRegion &&O) noexcept;
  ShmRegion(const ShmRegion &) = delete;
  ShmRegion &operator=(const ShmRegion &) = delete;

  /// Client side: creates a fresh region (O_CREAT|O_EXCL under a
  /// collision-proof generated name), sizes it and maps it.
  static exo::Expected<ShmRegion> create(uint64_t Bytes);

  /// Server side: maps an existing region by name and verifies its size
  /// is exactly \p ExpectBytes.
  static exo::Expected<ShmRegion> open(const std::string &Name,
                                       uint64_t ExpectBytes);

  /// Removes the name from the namespace; the mapping (and any other
  /// process's) stays valid. Idempotent.
  void unlinkName();

  void *base() const { return Base; }
  uint64_t size() const { return Bytes; }
  const std::string &name() const { return Name; }
  bool valid() const { return Base != nullptr; }

  unsigned char *at(uint64_t Off) const {
    return static_cast<unsigned char *>(Base) + Off;
  }

private:
  void reset();
  void *Base = nullptr;
  uint64_t Bytes = 0;
  std::string Name; ///< empty once unlinked (or on the server side)
  bool Owner = false;
};

} // namespace ipc

#endif // IPC_SHM_H
