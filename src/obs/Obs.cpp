//===- Obs.cpp ------------------------------------------------------------===//

#include "obs/Obs.h"

#include "exo/support/Env.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

using namespace obs;

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point traceEpoch() {
  static const Clock::time_point Epoch = Clock::now();
  return Epoch;
}

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           traceEpoch())
          .count());
}

/// Per-thread event buffer. Owned jointly by the thread (thread_local
/// shared_ptr) and the global registry, so events survive thread exit and
/// the registry survives use-after-main-thread teardown.
struct ThreadBuf {
  uint32_t Tid = 0;
  std::mutex Mu; ///< uncontended except while a collector snapshots
  std::vector<Event> Events;

  void push(const Event &E) {
    std::lock_guard<std::mutex> Lock(Mu);
    Events.push_back(E);
  }
};

struct Registry {
  std::mutex Mu;
  std::vector<std::shared_ptr<ThreadBuf>> Bufs;
  uint32_t NextTid = 0;

  static Registry &get() {
    // Leaked: threads may record during static destruction.
    static Registry *R = new Registry;
    return *R;
  }

  std::shared_ptr<ThreadBuf> registerThread() {
    auto Buf = std::make_shared<ThreadBuf>();
    std::lock_guard<std::mutex> Lock(Mu);
    Buf->Tid = NextTid++;
    Bufs.push_back(Buf);
    return Buf;
  }
};

ThreadBuf &threadBuf() {
  thread_local std::shared_ptr<ThreadBuf> Buf =
      Registry::get().registerThread();
  return *Buf;
}

void dumpTraceAtExit() {
  if (const char *Path = std::getenv("EXO_OBS_TRACE")) {
    if (exo::Error E = writeChromeTrace(Path))
      std::fprintf(stderr, "obs: EXO_OBS_TRACE failed: %s\n",
                   E.message().c_str());
    else
      std::fprintf(stderr, "obs: chrome trace written to %s\n", Path);
  }
}

} // namespace

namespace obs::detail {

std::atomic<bool> GEnabled{initFromEnv()};

bool initFromEnv() {
  traceEpoch(); // pin the epoch before any span
  bool On = exo::envBool("EXO_OBS", std::getenv("EXO_OBS"), false);
  if (std::getenv("EXO_OBS_TRACE")) {
    On = true;
    std::atexit(dumpTraceAtExit);
  }
  return On;
}

} // namespace obs::detail

void obs::setEnabled(bool On) {
  detail::GEnabled.store(On, std::memory_order_relaxed);
}

uint32_t obs::threadId() { return threadBuf().Tid; }

void Span::begin(const char *N) {
  Name = N;
  HaveCounters = counterBackend() != CounterBackend::Off &&
                 readCounters(Start);
  StartNs = nowNs();
}

void Span::end() {
  Event E;
  E.Name = Name;
  E.StartNs = StartNs;
  E.DurNs = nowNs() - StartNs;
  E.IsMark = false;
  if (HaveCounters) {
    CounterValues End;
    if (readCounters(End))
      E.Delta = End - Start;
  }
  ThreadBuf &B = threadBuf();
  E.Tid = B.Tid;
  B.push(E);
}

void obs::mark(const char *Name) {
  if (!enabled())
    return;
  Event E;
  E.Name = Name;
  E.StartNs = nowNs();
  E.DurNs = 0;
  E.IsMark = true;
  ThreadBuf &B = threadBuf();
  E.Tid = B.Tid;
  B.push(E);
}

std::vector<Event> obs::events() {
  Registry &R = Registry::get();
  std::vector<std::shared_ptr<ThreadBuf>> Bufs;
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    Bufs = R.Bufs;
  }
  std::vector<Event> Out;
  for (auto &B : Bufs) {
    std::lock_guard<std::mutex> Lock(B->Mu);
    Out.insert(Out.end(), B->Events.begin(), B->Events.end());
  }
  return Out;
}

void obs::clear() {
  Registry &R = Registry::get();
  std::vector<std::shared_ptr<ThreadBuf>> Bufs;
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    Bufs = R.Bufs;
  }
  for (auto &B : Bufs) {
    std::lock_guard<std::mutex> Lock(B->Mu);
    B->Events.clear();
  }
}

std::map<std::string, StageStat> obs::stageTotals() {
  std::map<std::string, StageStat> Totals;
  for (const Event &E : events()) {
    StageStat &S = Totals[E.Name];
    S.Seconds += static_cast<double>(E.DurNs) * 1e-9;
    S.Count += 1;
    S.Counters += E.Delta;
  }
  return Totals;
}

exo::Error obs::writeChromeTrace(const std::string &Path) {
  std::vector<Event> Evs = events();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return exo::errorf("obs: cannot open trace file '%s'", Path.c_str());

  std::fputs("{\"traceEvents\":[\n", F);
  // Thread-name metadata first: one lane per registered thread.
  std::vector<uint32_t> Tids;
  for (const Event &E : Evs)
    Tids.push_back(E.Tid);
  std::sort(Tids.begin(), Tids.end());
  Tids.erase(std::unique(Tids.begin(), Tids.end()), Tids.end());
  bool First = true;
  for (uint32_t Tid : Tids) {
    std::fprintf(F,
                 "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"%s-%u\"}}",
                 First ? "" : ",\n", Tid, Tid == 0 ? "main" : "worker", Tid);
    First = false;
  }
  for (const Event &E : Evs) {
    // Span names are static identifiers (no quotes/backslashes); emitted
    // verbatim. Timestamps are microseconds in the chrome trace format.
    double TsUs = static_cast<double>(E.StartNs) * 1e-3;
    if (E.IsMark) {
      std::fprintf(F,
                   "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
                   "\"tid\":%u,\"ts\":%.3f}",
                   First ? "" : ",\n", E.Name, E.Tid, TsUs);
    } else {
      std::fprintf(F,
                   "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                   "\"ts\":%.3f,\"dur\":%.3f",
                   First ? "" : ",\n", E.Name, E.Tid, TsUs,
                   static_cast<double>(E.DurNs) * 1e-3);
      if (!E.Delta.isZero())
        std::fprintf(F,
                     ",\"args\":{\"cycles\":%llu,\"instructions\":%llu,"
                     "\"cache_misses\":%llu}",
                     static_cast<unsigned long long>(E.Delta.Cycles),
                     static_cast<unsigned long long>(E.Delta.Instructions),
                     static_cast<unsigned long long>(E.Delta.CacheMisses));
      std::fputs("}", F);
    }
    First = false;
  }
  std::fputs("\n],\"displayTimeUnit\":\"ns\"}\n", F);
  if (std::fclose(F) != 0)
    return exo::errorf("obs: write to '%s' failed", Path.c_str());
  return exo::Error::success();
}
