//===- PerfCounters.h - Hardware counter capture for trace spans ----------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin, per-thread wrapper over Linux `perf_event_open` capturing the
/// three counters the roofline discussion in the paper's evaluation needs:
/// cycles, retired instructions, and last-level cache misses. Three
/// backends, selected once per process by `EXO_OBS_COUNTERS`:
///
///   perf  (default) one counter group per thread via perf_event_open. If
///         the syscall is unavailable (non-Linux build, seccomp'd
///         container, perf_event_paranoid) the backend silently degrades
///         to `off` and records a human-readable reason — observability
///         must never turn a working GEMM into a failing one.
///   fake  a deterministic software backend for tests: every read advances
///         the thread's counters by a fixed quantum (1000 cycles, 500
///         instructions, 10 cache misses), so a leaf span's delta is
///         exactly one quantum and a span nesting K reads is exactly
///         K + 1 quanta. No kernel support needed anywhere.
///   off   reads return false; spans carry zero counter deltas.
///
/// Counter reads only happen inside *enabled* trace spans (obs::Span), so
/// none of this is on any hot path when `EXO_OBS` is unset.
///
//===----------------------------------------------------------------------===//

#ifndef OBS_PERFCOUNTERS_H
#define OBS_PERFCOUNTERS_H

#include <cstdint>

namespace obs {

/// See file comment.
enum class CounterBackend { Off, Perf, Fake };

/// One sample of the captured counter group.
struct CounterValues {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t CacheMisses = 0;

  CounterValues operator-(const CounterValues &O) const {
    return {Cycles - O.Cycles, Instructions - O.Instructions,
            CacheMisses - O.CacheMisses};
  }
  CounterValues &operator+=(const CounterValues &O) {
    Cycles += O.Cycles;
    Instructions += O.Instructions;
    CacheMisses += O.CacheMisses;
    return *this;
  }
  bool isZero() const {
    return Cycles == 0 && Instructions == 0 && CacheMisses == 0;
  }
};

/// The process-wide backend. Resolved from EXO_OBS_COUNTERS on first use
/// ("perf", "fake", "off"; default "perf"); a perf backend that fails to
/// open on any thread degrades the process to Off.
CounterBackend counterBackend();

/// Forces the backend (tests). Resets per-thread state lazily: threads
/// re-open their counters on the next read.
void setCounterBackend(CounterBackend B);

/// "perf" / "fake" / "off" — reported in BENCH_*.json.
const char *counterBackendName();

/// When the perf backend degraded to Off, the reason (e.g. the errno of
/// the failed perf_event_open); empty otherwise.
const char *counterUnavailableReason();

/// Reads this thread's counters. Returns false (zeros) when the backend
/// is off or this thread's counter group failed to open.
bool readCounters(CounterValues &Out);

} // namespace obs

#endif // OBS_PERFCOUNTERS_H
