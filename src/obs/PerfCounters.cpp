//===- PerfCounters.cpp ---------------------------------------------------===//

#include "obs/PerfCounters.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace obs;

namespace {

std::atomic<int> GBackend{-1}; // -1 = unresolved; else CounterBackend
std::atomic<uint64_t> GBackendEpoch{0};
std::mutex GReasonMu;
std::string GReason;

void setReason(const std::string &R) {
  std::lock_guard<std::mutex> Lock(GReasonMu);
  if (GReason.empty())
    GReason = R;
}

CounterBackend resolve() {
  int B = GBackend.load(std::memory_order_acquire);
  if (B >= 0)
    return static_cast<CounterBackend>(B);
  CounterBackend R = CounterBackend::Perf;
  if (const char *S = std::getenv("EXO_OBS_COUNTERS")) {
    if (!std::strcmp(S, "off") || !std::strcmp(S, "0"))
      R = CounterBackend::Off;
    else if (!std::strcmp(S, "fake"))
      R = CounterBackend::Fake;
    else if (!std::strcmp(S, "perf"))
      R = CounterBackend::Perf;
    else {
      setReason(std::string("unknown EXO_OBS_COUNTERS value '") + S +
                "' (want perf|fake|off)");
      R = CounterBackend::Off;
    }
  }
#if !defined(__linux__)
  if (R == CounterBackend::Perf) {
    setReason("perf_event_open is Linux-only");
    R = CounterBackend::Off;
  }
#endif
  int Expected = -1;
  GBackend.compare_exchange_strong(Expected, static_cast<int>(R),
                                   std::memory_order_acq_rel);
  return static_cast<CounterBackend>(GBackend.load(std::memory_order_acquire));
}

#if defined(__linux__)
/// Per-thread perf counter group: cycles leads, instructions and cache
/// misses follow, read in one syscall with PERF_FORMAT_GROUP.
struct PerfGroup {
  int LeaderFd = -1;
  int Fds[3] = {-1, -1, -1};
  uint64_t Epoch = ~0ull; ///< backend epoch this group was opened under
  bool Ok = false;

  static long perfOpen(perf_event_attr &Attr, int GroupFd) {
    return syscall(SYS_perf_event_open, &Attr, /*pid=*/0, /*cpu=*/-1,
                   GroupFd, /*flags=*/0ul);
  }

  void close() {
    for (int &Fd : Fds) {
      if (Fd >= 0)
        ::close(Fd);
      Fd = -1;
    }
    LeaderFd = -1;
    Ok = false;
  }

  bool open() {
    close();
    static const uint64_t Configs[3] = {PERF_COUNT_HW_CPU_CYCLES,
                                        PERF_COUNT_HW_INSTRUCTIONS,
                                        PERF_COUNT_HW_CACHE_MISSES};
    for (int I = 0; I < 3; ++I) {
      perf_event_attr Attr;
      std::memset(&Attr, 0, sizeof(Attr));
      Attr.type = PERF_TYPE_HARDWARE;
      Attr.size = sizeof(Attr);
      Attr.config = Configs[I];
      Attr.disabled = I == 0 ? 1 : 0;
      Attr.exclude_kernel = 1;
      Attr.exclude_hv = 1;
      Attr.read_format = PERF_FORMAT_GROUP;
      long Fd = perfOpen(Attr, I == 0 ? -1 : LeaderFd);
      if (Fd < 0) {
        setReason(std::string("perf_event_open failed: ") +
                  std::strerror(errno));
        close();
        return false;
      }
      Fds[I] = static_cast<int>(Fd);
      if (I == 0)
        LeaderFd = Fds[0];
    }
    ioctl(LeaderFd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(LeaderFd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    Ok = true;
    return true;
  }

  bool read(CounterValues &Out) {
    // {nr, v0, v1, v2} under PERF_FORMAT_GROUP with no extra fields.
    uint64_t Buf[4] = {0, 0, 0, 0};
    ssize_t N = ::read(LeaderFd, Buf, sizeof(Buf));
    if (N < static_cast<ssize_t>(sizeof(Buf)) || Buf[0] != 3)
      return false;
    Out.Cycles = Buf[1];
    Out.Instructions = Buf[2];
    Out.CacheMisses = Buf[3];
    return true;
  }

  ~PerfGroup() { close(); }
};
#endif // __linux__

/// Fake-backend state: one monotonically advancing counter per thread.
struct FakeState {
  CounterValues V;
};

} // namespace

CounterBackend obs::counterBackend() { return resolve(); }

void obs::setCounterBackend(CounterBackend B) {
  GBackend.store(static_cast<int>(B), std::memory_order_release);
  GBackendEpoch.fetch_add(1, std::memory_order_acq_rel);
}

const char *obs::counterBackendName() {
  switch (resolve()) {
  case CounterBackend::Perf:
    return "perf";
  case CounterBackend::Fake:
    return "fake";
  case CounterBackend::Off:
    return "off";
  }
  return "off";
}

const char *obs::counterUnavailableReason() {
  std::lock_guard<std::mutex> Lock(GReasonMu);
  // Leaked on purpose: callers keep the pointer past the lock. The string
  // is written at most once per process (setReason keeps the first).
  static std::string Copy;
  Copy = GReason;
  return Copy.c_str();
}

bool obs::readCounters(CounterValues &Out) {
  Out = CounterValues();
  switch (resolve()) {
  case CounterBackend::Off:
    return false;
  case CounterBackend::Fake: {
    // One quantum per read: deterministic, test-assertable deltas.
    thread_local FakeState FS;
    FS.V.Cycles += 1000;
    FS.V.Instructions += 500;
    FS.V.CacheMisses += 10;
    Out = FS.V;
    return true;
  }
  case CounterBackend::Perf: {
#if defined(__linux__)
    thread_local PerfGroup PG;
    uint64_t Epoch = GBackendEpoch.load(std::memory_order_acquire);
    if (!PG.Ok || PG.Epoch != Epoch) {
      PG.Epoch = Epoch;
      if (!PG.open()) {
        // Degrade the whole process: one thread failing means the
        // environment forbids perf; keep every span cheap from now on.
        setCounterBackend(CounterBackend::Off);
        return false;
      }
    }
    return PG.read(Out);
#else
    return false;
#endif
  }
  }
  return false;
}
