//===- Obs.h - Low-overhead tracing for the GEMM and JIT hot paths --------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped trace spans attributing wall time (and, when a counter backend
/// is live, hardware counters — see PerfCounters.h) to the phases of the
/// BLIS macro-kernel (packA / packB / micro-kernel / barrier), the JIT
/// build pipeline, and the kernel-cache service. Design rules:
///
///   1. Free when disabled. `Span`'s constructor is a single relaxed
///      atomic load and a branch when tracing is off — safe to leave in
///      the macro-kernel's block loops permanently. Results are bitwise
///      identical with tracing on or off; the spans only observe.
///   2. Thread-aware. Every OS thread appends to its own buffer and gets
///      a small stable id in registration order, so a threaded blisGemmT
///      renders one lane per worker in the chrome trace.
///   3. Pull, don't push. Nothing is written anywhere until a caller
///      collects: `events()` snapshots, `stageTotals()` aggregates by
///      span name, `writeChromeTrace()` emits an `about:tracing` /
///      Perfetto JSON file.
///
/// Enabling: `EXO_OBS=1` in the environment, or `obs::setEnabled(true)`
/// (what the benches do under `--json`/`--trace`). `EXO_OBS_TRACE=<path>`
/// additionally enables tracing and dumps a chrome trace at process exit.
///
//===----------------------------------------------------------------------===//

#ifndef OBS_OBS_H
#define OBS_OBS_H

#include "exo/support/Error.h"
#include "obs/PerfCounters.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace obs {

namespace detail {
extern std::atomic<bool> GEnabled;
/// Resolves EXO_OBS / EXO_OBS_TRACE once; returns the enabled state.
bool initFromEnv();
} // namespace detail

/// True when tracing is live. The relaxed load is the entire disabled-mode
/// cost of a Span.
inline bool enabled() {
  return detail::GEnabled.load(std::memory_order_relaxed);
}

/// Flips tracing at run time (benches, tests). Enabling mid-run is safe;
/// spans already in flight on other threads record normally.
void setEnabled(bool On);

/// One recorded span or mark.
struct Event {
  const char *Name;      ///< static string (span label)
  uint32_t Tid;          ///< stable small thread id (registration order)
  uint64_t StartNs;      ///< ns since the process trace epoch
  uint64_t DurNs;        ///< 0 for marks
  bool IsMark;           ///< instant event (cache hit, ...)
  CounterValues Delta;   ///< counters consumed inside the span (zeros
                         ///< when the backend is off, or for marks)
};

/// RAII span. \p Name must be a string literal (or otherwise outlive the
/// trace); spans nest freely and may cross none of their thread's other
/// spans' boundaries (strict nesting, as with any RAII scope).
class Span {
public:
  explicit Span(const char *Name) : Active(enabled()) {
    if (Active)
      begin(Name);
  }
  ~Span() {
    if (Active)
      end();
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  void begin(const char *Name);
  void end();
  const char *Name = nullptr;
  uint64_t StartNs = 0;
  CounterValues Start;
  bool HaveCounters = false;
  bool Active;
};

/// Records an instant event (zero duration) when tracing is enabled.
void mark(const char *Name);

/// This thread's stable trace id (registers the thread on first use).
uint32_t threadId();

/// Snapshot of every event recorded so far, across all threads, in no
/// particular global order (per-thread order is chronological).
std::vector<Event> events();

/// Drops all recorded events (thread buffers stay registered, ids stable).
void clear();

/// Aggregate of one span name across the trace.
struct StageStat {
  double Seconds = 0;  ///< total span time (inclusive of nested spans)
  uint64_t Count = 0;  ///< spans + marks with this name
  CounterValues Counters;
};

/// Events aggregated by span name. Marks contribute Count only.
std::map<std::string, StageStat> stageTotals();

/// Writes every recorded event as a chrome://tracing / Perfetto JSON
/// trace ("traceEvents" array of complete events, one lane per thread,
/// with thread_name metadata). Open via about:tracing or ui.perfetto.dev.
exo::Error writeChromeTrace(const std::string &Path);

} // namespace obs

/// Convenience macro: `EXO_OBS_SPAN("gemm.packA");` — a uniquely named
/// local RAII span for the rest of the enclosing scope.
#define EXO_OBS_SPAN_CONCAT2(a, b) a##b
#define EXO_OBS_SPAN_CONCAT(a, b) EXO_OBS_SPAN_CONCAT2(a, b)
#define EXO_OBS_SPAN(name)                                                   \
  ::obs::Span EXO_OBS_SPAN_CONCAT(ObsSpan_, __LINE__)(name)

#endif // OBS_OBS_H
