//===- Server.h - gemmd: the multi-client GEMM-as-a-service daemon --------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived server behind `tools/gemmd`: ONE gemm::Engine (one warm
/// plan cache), ONE KernelService/JIT cache, ONE thread pool — shared by
/// every client process, so the expensive last-mile work (planning, JIT
/// compiling, pool spin-up) is paid once per machine instead of once per
/// process. Transport is the src/ipc layer: a Unix-domain rendezvous
/// socket for handshake + doorbells, per-client shared-memory regions for
/// tensors and packet rings (docs/GEMMD.md).
///
/// Contracts, in priority order:
///
///   1. FAULT ISOLATION. A client dying mid-request (SIGKILL included) or
///      writing garbage into its rings costs exactly that client its
///      session; every other stream keeps completing with correct
///      results, and the server never blocks on a dead peer. (The control
///      socket's EOF is the death signal; shm stays valid server-side
///      because mappings outlive the client.)
///   2. ADMISSION CONTROL. A bounded request queue; when full, requests
///      are answered Busy immediately instead of queuing unboundedly.
///      --max-clients bounds sessions the same way.
///   3. OBSERVABILITY. Per-client and aggregate counters (requests, ok,
///      errors, busy, reaps) plus the Engine/KernelService cache counters,
///      all served over the wire (StatsRequest) and as JSON; gemmd.* obs
///      spans mark the request path.
///
/// Threading: one poller thread owns the listen socket, the session table
/// and all doorbell fds; Options::Workers executor threads own the
/// bounded queue and run Engine::sgemm. Replies go back through the
/// session's response ring under a per-session write lock. stop() is
/// graceful: accepted work drains, sessions then close.
///
//===----------------------------------------------------------------------===//

#ifndef DAEMON_SERVER_H
#define DAEMON_SERVER_H

#include "gemm/Engine.h"
#include "ipc/Wire.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gemmd {

struct ServerOptions {
  /// Rendezvous socket path; empty resolves EXO_GEMMD_SOCKET, else
  /// /tmp/exo-gemmd-<uid>.sock.
  std::string SocketPath;
  /// Concurrent sessions admitted; 0 resolves EXO_GEMMD_MAX_CLIENTS,
  /// else 64.
  int MaxClients = 0;
  /// Executor threads running Engine::sgemm; 0 resolves
  /// EXO_GEMMD_WORKERS, else 1 (the Engine's own team parallelism is the
  /// intended scaling axis; raise for many tiny concurrent requests).
  unsigned Workers = 0;
  /// Bounded request-queue depth; 0 resolves EXO_GEMMD_QUEUE_MAX, else 64.
  /// Past it, requests get an immediate Busy reply.
  size_t QueueMax = 0;
  /// The one shared Engine's configuration (default: Auto series).
  gemm::EngineConfig Engine;
};

/// One client's ledger, snapshotted by Server::stats().
struct ClientStat {
  uint32_t Id = 0;
  bool Active = false;
  uint64_t Requests = 0; ///< GEMM requests accepted off this session's ring
  uint64_t Ok = 0;
  uint64_t Errors = 0;
  uint64_t Busy = 0;
  int64_t LastM = 0, LastN = 0, LastK = 0;
};

/// Aggregate server snapshot; Wire is exactly what StatsRequest returns
/// over the rings (daemon-level counters including the Engine plan cache
/// and JIT cache), PerClient the per-session ledgers.
struct ServerStats {
  ipc::StatsReplyMsg Wire;
  std::vector<ClientStat> PerClient;
};

/// See file comment.
class Server {
public:
  explicit Server(const ServerOptions &Opts);
  ~Server(); ///< stops if still running

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and spawns the poller + executors. Fails (without
  /// threads) when the socket cannot be bound.
  exo::Error start();

  /// Graceful shutdown: stop accepting, drain accepted work, reply, close
  /// every session, join all threads, unlink the socket. Idempotent.
  void stop();

  bool running() const;
  const std::string &socketPath() const;

  /// The one shared engine (tests pre-warm shapes through it).
  gemm::Engine &engine();

  ServerStats stats() const;

private:
  struct Impl;
  Impl *I;
};

} // namespace gemmd

#endif // DAEMON_SERVER_H
