//===- Server.cpp - gemmd: the multi-client GEMM-as-a-service daemon ------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "daemon/Server.h"

#include "exo/support/Env.h"
#include "ipc/Ring.h"
#include "ipc/Shm.h"
#include "ipc/Socket.h"
#include "obs/Obs.h"
#include "ukr/KernelService.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <map>
#include <mutex>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace exo;

namespace gemmd {

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One admitted client session. The poller owns Fd (and is the only
/// closer); executors reach the response ring and doorbell only through
/// WriteMu, where Dead is checked — so a reaped session can never see a
/// write to a recycled fd.
struct Session {
  uint32_t Id = 0;
  int Fd = -1;
  ipc::ShmRegion Shm;
  ipc::SessionLayout Layout;
  ipc::RingView Req, Resp;

  std::mutex WriteMu;
  std::atomic<bool> Dead{false};

  std::atomic<uint64_t> Requests{0}, Ok{0}, Errors{0}, Busy{0};
  std::atomic<int64_t> LastM{0}, LastN{0}, LastK{0};

  ClientStat snapshot(bool Active) const {
    ClientStat C;
    C.Id = Id;
    C.Active = Active;
    C.Requests = Requests.load(std::memory_order_relaxed);
    C.Ok = Ok.load(std::memory_order_relaxed);
    C.Errors = Errors.load(std::memory_order_relaxed);
    C.Busy = Busy.load(std::memory_order_relaxed);
    C.LastM = LastM.load(std::memory_order_relaxed);
    C.LastN = LastN.load(std::memory_order_relaxed);
    C.LastK = LastK.load(std::memory_order_relaxed);
    return C;
  }
};

struct Work {
  std::shared_ptr<Session> S;
  ipc::GemmRequestMsg Req;
  ipc::GemmBatchRequestMsg BatchReq;
  bool IsBatch = false;
};

} // namespace

struct Server::Impl {
  ServerOptions Opts;
  gemm::Engine Eng;
  ipc::Socket Listen;
  int WakeR = -1, WakeW = -1;

  std::thread Poller;
  std::vector<std::thread> Executors;

  std::mutex QMu;
  std::condition_variable QCv;
  std::deque<Work> Queue;
  bool Stopping = false;
  bool Running = false;

  mutable std::mutex SessMu;
  std::map<int, std::shared_ptr<Session>> Sessions; ///< by fd
  std::vector<ClientStat> Closed; ///< ledgers of departed sessions

  std::atomic<uint64_t> TotalClients{0}, Reaped{0}, ReqTotal{0}, OkTotal{0},
      ErrTotal{0}, BusyTotal{0};
  std::atomic<uint32_t> NextId{1};
  uint64_t StartNs = 0;

  /// The daemon's Engine defaults governed dispatch ON (Governor.h): its
  /// executors are exactly the N-concurrent-callers case the governor
  /// exists for — without it, one large request and a flood of small ones
  /// each claim a full fixed-width team and oversubscribe the machine. An
  /// explicit EngineConfig::Governor or any EXO_GEMM_GOVERNOR setting
  /// (including 0) still wins; library Engines keep the paper's fixed-team
  /// default. See docs/CONCURRENCY.md.
  static gemm::EngineConfig daemonEngineConfig(gemm::EngineConfig C) {
    if (C.Governor < 0 && !std::getenv("EXO_GEMM_GOVERNOR"))
      C.Governor = 1;
    return C;
  }

  explicit Impl(const ServerOptions &O)
      : Opts(O), Eng(daemonEngineConfig(O.Engine)) {
    if (Opts.SocketPath.empty())
      Opts.SocketPath = ipc::defaultSocketPath();
    if (Opts.MaxClients <= 0)
      Opts.MaxClients = static_cast<int>(exo::envInt(
          "EXO_GEMMD_MAX_CLIENTS", std::getenv("EXO_GEMMD_MAX_CLIENTS"), 64,
          1, 4096));
    if (Opts.Workers == 0)
      Opts.Workers = static_cast<unsigned>(exo::envInt(
          "EXO_GEMMD_WORKERS", std::getenv("EXO_GEMMD_WORKERS"), 1, 1, 256));
    if (Opts.QueueMax == 0)
      Opts.QueueMax = static_cast<size_t>(
          exo::envInt("EXO_GEMMD_QUEUE_MAX",
                      std::getenv("EXO_GEMMD_QUEUE_MAX"), 64, 1, 1 << 20));
  }

  void pollLoop();
  void executorLoop();
  void handshake(ipc::Socket Conn);
  void drainSession(const std::shared_ptr<Session> &S);
  void handleGemm(const Work &W);
  void handleGemmBatch(const Work &W);
  void reapSession(const std::shared_ptr<Session> &S, const char *Why);
  bool sendReply(const std::shared_ptr<Session> &S, const void *Packet,
                 uint32_t Bytes);
  void fillWireStats(ipc::StatsReplyMsg &W) const;
  void wake() {
    char B = 'w';
    if (WakeW >= 0)
      (void)!::write(WakeW, &B, 1);
  }
};

//===----------------------------------------------------------------------===//
// Reply paths
//===----------------------------------------------------------------------===//

bool Server::Impl::sendReply(const std::shared_ptr<Session> &S,
                             const void *Packet, uint32_t Bytes) {
  // The synchronous client always has ring space; a full ring here means
  // the client stopped draining (dead, or flooding without reading).
  // Bounded retries, then give the session up rather than block a worker.
  for (int Try = 0; Try != 200; ++Try) {
    {
      std::lock_guard<std::mutex> Lock(S->WriteMu);
      if (S->Dead.load(std::memory_order_relaxed) || S->Fd < 0)
        return false;
      if (S->Resp.push(Packet, Bytes)) {
        uint8_t Bell = ipc::DoorbellReply;
        // A failed doorbell means the peer is gone; the poller will see
        // the hangup and reap. Losing the byte is fine — the client
        // polls its ring on every doorbell it does receive.
        (void)!::send(S->Fd, &Bell, 1, MSG_NOSIGNAL);
        return true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  S->Dead.store(true, std::memory_order_relaxed);
  wake(); // let the poller close it out
  return false;
}

static void fillReplyError(ipc::GemmReplyMsg &R, ipc::ReqStatus St,
                           const std::string &Msg) {
  R.Status = static_cast<int32_t>(St);
  std::snprintf(R.Err, sizeof(R.Err), "%s", Msg.c_str());
}

//===----------------------------------------------------------------------===//
// Poller: accept, handshake, doorbells, reaping
//===----------------------------------------------------------------------===//

void Server::Impl::handshake(ipc::Socket Conn) {
  ipc::HelloMsg Hello;
  // A connected-but-silent peer must not wedge the accept loop.
  if (Error E = Conn.recvAllTimed(&Hello, sizeof(Hello), 5000))
    return; // nothing to answer — the peer is gone or stuck
  ipc::HelloAck Ack;
  auto Reject = [&](ipc::HelloStatus St, const char *Why) {
    Ack.Status = static_cast<uint16_t>(St);
    std::snprintf(Ack.Err, sizeof(Ack.Err), "%s", Why);
    (void)Conn.sendAll(&Ack, sizeof(Ack));
  };
  if (Hello.Magic != ipc::WireMagic || Hello.Version != ipc::WireVersion)
    return Reject(ipc::HelloStatus::BadVersion,
                  "protocol version mismatch (rebuild the client)");
  if (Stopping)
    return Reject(ipc::HelloStatus::ShuttingDown, "server is shutting down");
  {
    std::lock_guard<std::mutex> Lock(SessMu);
    if (Sessions.size() >= static_cast<size_t>(Opts.MaxClients))
      return Reject(ipc::HelloStatus::Full, "server at --max-clients");
  }
  Hello.ShmName[sizeof(Hello.ShmName) - 1] = 0;
  Expected<ipc::SessionLayout> L =
      ipc::SessionLayout::derive(Hello.ShmBytes, Hello.RingSlots);
  if (!L)
    return Reject(ipc::HelloStatus::BadRegion, L.message().c_str());
  Expected<ipc::ShmRegion> R =
      ipc::ShmRegion::open(Hello.ShmName, Hello.ShmBytes);
  if (!R)
    return Reject(ipc::HelloStatus::BadRegion, R.message().c_str());

  // Never trust the client's copy of the geometry: the header it wrote
  // must agree with what we derived ourselves.
  ipc::ShmSessionHeader H;
  std::memcpy(&H, R->base(), sizeof(H));
  if (H.Magic != ipc::WireMagic || H.Version != ipc::WireVersion ||
      H.TotalBytes != Hello.ShmBytes || H.RingSlots != Hello.RingSlots ||
      H.ArenaOff != L->ArenaOff || H.ArenaBytes != L->ArenaBytes)
    return Reject(ipc::HelloStatus::BadRegion,
                  "shm session header disagrees with the announced layout");

  auto S = std::make_shared<Session>();
  S->Id = NextId.fetch_add(1, std::memory_order_relaxed);
  S->Shm = R.take();
  S->Layout = *L;
  S->Req.attach(S->Shm.at(L->ReqRingOff), L->RingSlots);
  S->Resp.attach(S->Shm.at(L->RespRingOff), L->RingSlots);

  Ack.Status = static_cast<uint16_t>(ipc::HelloStatus::Ok);
  Ack.ClientId = S->Id;
  Ack.MaxInflight = L->RingSlots - 1;
  if (Error E = Conn.sendAll(&Ack, sizeof(Ack)))
    return;

  int Fd = Conn.release();
  ::fcntl(Fd, F_SETFL, ::fcntl(Fd, F_GETFL, 0) | O_NONBLOCK);
  S->Fd = Fd;
  {
    std::lock_guard<std::mutex> Lock(SessMu);
    Sessions[Fd] = S;
  }
  TotalClients.fetch_add(1, std::memory_order_relaxed);
}

void Server::Impl::reapSession(const std::shared_ptr<Session> &S,
                               const char *Why) {
  {
    std::lock_guard<std::mutex> Lock(S->WriteMu);
    if (S->Fd < 0)
      return; // already reaped
    ::close(S->Fd);
    S->Fd = -1;
    S->Dead.store(true, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> Lock(SessMu);
    for (auto It = Sessions.begin(); It != Sessions.end(); ++It)
      if (It->second == S) {
        Sessions.erase(It);
        break;
      }
    if (Closed.size() >= 256)
      Closed.erase(Closed.begin());
    Closed.push_back(S->snapshot(false));
  }
  Reaped.fetch_add(1, std::memory_order_relaxed);
  obs::mark("gemmd.reap");
  (void)Why;
}

void Server::Impl::drainSession(const std::shared_ptr<Session> &S) {
  alignas(8) unsigned char Slot[ipc::SlotBytes];
  while (S->Req.pop(Slot)) {
    ipc::PacketHeader PH;
    std::memcpy(&PH, Slot, sizeof(PH));
    // The header is client-written memory: validate every field before
    // dispatching on it. A violation costs the client its session — and
    // nothing else.
    if (PH.Magic != ipc::WireMagic || PH.Version != ipc::WireVersion ||
        PH.Bytes < sizeof(ipc::PacketHeader) || PH.Bytes > ipc::SlotBytes) {
      reapSession(S, "malformed packet header");
      return;
    }
    switch (static_cast<ipc::PacketType>(PH.Type)) {
    case ipc::PacketType::GemmRequest: {
      ipc::GemmRequestMsg Req;
      if (!ipc::readPacket(Slot, PH.Bytes, Req)) {
        reapSession(S, "truncated GemmRequest");
        return;
      }
      S->Requests.fetch_add(1, std::memory_order_relaxed);
      ReqTotal.fetch_add(1, std::memory_order_relaxed);
      S->LastM.store(Req.M, std::memory_order_relaxed);
      S->LastN.store(Req.N, std::memory_order_relaxed);
      S->LastK.store(Req.K, std::memory_order_relaxed);
      bool Admitted = false;
      {
        std::lock_guard<std::mutex> Lock(QMu);
        if (!Stopping && Queue.size() < Opts.QueueMax) {
          Work W;
          W.S = S;
          W.Req = Req;
          Queue.push_back(std::move(W));
          Admitted = true;
        }
      }
      if (Admitted) {
        QCv.notify_one();
      } else {
        obs::mark("gemmd.busy");
        S->Busy.fetch_add(1, std::memory_order_relaxed);
        BusyTotal.fetch_add(1, std::memory_order_relaxed);
        ipc::GemmReplyMsg Rep;
        Rep.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmReply);
        Rep.H.Seq = PH.Seq;
        Rep.H.Bytes = sizeof(Rep);
        fillReplyError(Rep, ipc::ReqStatus::Busy,
                       "admission queue full, request dropped");
        sendReply(S, &Rep, sizeof(Rep));
      }
      break;
    }
    case ipc::PacketType::GemmBatchRequest: {
      ipc::GemmBatchRequestMsg Req;
      if (!ipc::readPacket(Slot, PH.Bytes, Req)) {
        reapSession(S, "truncated GemmBatchRequest");
        return;
      }
      S->Requests.fetch_add(1, std::memory_order_relaxed);
      ReqTotal.fetch_add(1, std::memory_order_relaxed);
      S->LastM.store(Req.M, std::memory_order_relaxed);
      S->LastN.store(Req.N, std::memory_order_relaxed);
      S->LastK.store(Req.K, std::memory_order_relaxed);
      bool Admitted = false;
      {
        std::lock_guard<std::mutex> Lock(QMu);
        if (!Stopping && Queue.size() < Opts.QueueMax) {
          Work W;
          W.S = S;
          W.BatchReq = Req;
          W.IsBatch = true;
          Queue.push_back(std::move(W));
          Admitted = true;
        }
      }
      if (Admitted) {
        QCv.notify_one();
      } else {
        obs::mark("gemmd.busy");
        S->Busy.fetch_add(1, std::memory_order_relaxed);
        BusyTotal.fetch_add(1, std::memory_order_relaxed);
        ipc::GemmReplyMsg Rep;
        Rep.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmBatchReply);
        Rep.H.Seq = PH.Seq;
        Rep.H.Bytes = sizeof(Rep);
        fillReplyError(Rep, ipc::ReqStatus::Busy,
                       "admission queue full, request dropped");
        sendReply(S, &Rep, sizeof(Rep));
      }
      break;
    }
    case ipc::PacketType::Ping: {
      ipc::PacketHeader Rep;
      Rep.Type = static_cast<uint16_t>(ipc::PacketType::PingReply);
      Rep.Seq = PH.Seq;
      Rep.Bytes = sizeof(Rep);
      sendReply(S, &Rep, sizeof(Rep));
      break;
    }
    case ipc::PacketType::StatsRequest: {
      ipc::StatsReplyMsg Rep;
      fillWireStats(Rep);
      Rep.H.Seq = PH.Seq;
      sendReply(S, &Rep, sizeof(Rep));
      break;
    }
    default:
      reapSession(S, "unexpected packet type");
      return;
    }
  }
}

void Server::Impl::pollLoop() {
  std::vector<pollfd> Pfds;
  std::vector<std::shared_ptr<Session>> Polled;
  for (;;) {
    // Close out sessions executors marked dead (full ring / flood).
    {
      std::vector<std::shared_ptr<Session>> ToReap;
      {
        std::lock_guard<std::mutex> Lock(SessMu);
        for (auto &KV : Sessions)
          if (KV.second->Dead.load(std::memory_order_relaxed))
            ToReap.push_back(KV.second);
      }
      for (auto &S : ToReap)
        reapSession(S, "executor marked dead");
    }

    Pfds.clear();
    Polled.clear();
    Pfds.push_back(pollfd{Listen.fd(), POLLIN, 0});
    Pfds.push_back(pollfd{WakeR, POLLIN, 0});
    {
      std::lock_guard<std::mutex> Lock(SessMu);
      for (auto &KV : Sessions) {
        Pfds.push_back(pollfd{KV.first, POLLIN, 0});
        Polled.push_back(KV.second);
      }
    }
    int Rc = ::poll(Pfds.data(), Pfds.size(), -1);
    if (Rc < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    {
      std::lock_guard<std::mutex> Lock(QMu);
      if (Stopping)
        break;
    }
    if (Pfds[1].revents & POLLIN) {
      char Buf[64];
      while (::read(WakeR, Buf, sizeof(Buf)) > 0) {
      }
    }
    if (Pfds[0].revents & POLLIN) {
      if (Expected<ipc::Socket> Conn = Listen.accept())
        handshake(Conn.take());
    }
    for (size_t I = 2; I < Pfds.size(); ++I) {
      const std::shared_ptr<Session> &S = Polled[I - 2];
      if (Pfds[I].revents & (POLLERR | POLLNVAL)) {
        reapSession(S, "socket error");
        continue;
      }
      if (Pfds[I].revents & POLLIN) {
        char Bells[256];
        ssize_t R = ::read(Pfds[I].fd, Bells, sizeof(Bells));
        if (R == 0) {
          // EOF: the client exited or was killed — possibly mid-request.
          // Its queued work is skipped or completed into the still-mapped
          // region; either way nothing here can block another stream.
          reapSession(S, "client hangup");
          continue;
        }
        if (R < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR) {
          reapSession(S, "socket read error");
          continue;
        }
        if (R > 0)
          drainSession(S);
      } else if (Pfds[I].revents & POLLHUP) {
        reapSession(S, "client hangup");
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Executors: validate, run the engine, reply
//===----------------------------------------------------------------------===//

void Server::Impl::handleGemm(const Work &W) {
  const std::shared_ptr<Session> &S = W.S;
  const ipc::GemmRequestMsg &Q = W.Req;
  if (S->Dead.load(std::memory_order_relaxed))
    return; // no one left to read the result

  ipc::GemmReplyMsg Rep;
  Rep.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmReply);
  Rep.H.Seq = Q.H.Seq;
  Rep.H.Bytes = sizeof(Rep);

  // Geometry validation against the arena: every byte the engine will
  // touch must land inside this client's region, at the *request dtype's*
  // element sizes (A/B at dtypeInBytes, C at dtypeOutBytes — an i8 span is
  // a quarter of the f32 span the same dims imply, and its C is still 4
  // bytes wide). Offsets/extents are attacker-controlled; do the
  // arithmetic wide, and never trust the dtype byte itself either.
  const uint64_t Arena = S->Layout.ArenaBytes;
  if (Q.DTy >= gemm::DTypeCount) {
    S->Errors.fetch_add(1, std::memory_order_relaxed);
    ErrTotal.fetch_add(1, std::memory_order_relaxed);
    fillReplyError(Rep, ipc::ReqStatus::Bad, "unknown request dtype");
    sendReply(S, &Rep, sizeof(Rep));
    return;
  }
  const gemm::DType Ty = static_cast<gemm::DType>(Q.DTy);
  const uint64_t InB = gemm::dtypeInBytes(Ty);
  const uint64_t OutB = gemm::dtypeOutBytes(Ty);
  auto SpanOk = [&](uint64_t Off, int64_t Ld, int64_t Cols, uint64_t Elem) {
    if (Ld <= 0 || Cols <= 0 || Off % Elem != 0 || Off > Arena)
      return false;
    unsigned __int128 Bytes =
        static_cast<unsigned __int128>(Ld) * static_cast<uint64_t>(Cols) *
        Elem;
    return Bytes <= static_cast<unsigned __int128>(Arena - Off);
  };
  const int64_t ARows = Q.TA ? Q.K : Q.M;
  const int64_t ACols = Q.TA ? Q.M : Q.K;
  const int64_t BRows = Q.TB ? Q.N : Q.K;
  const int64_t BCols = Q.TB ? Q.K : Q.N;
  const bool Valid = Q.M > 0 && Q.N > 0 && Q.K > 0 && Q.TA <= 1 &&
                     Q.TB <= 1 && Q.Lda >= ARows && Q.Ldb >= BRows &&
                     Q.Ldc >= Q.M && SpanOk(Q.OffA, Q.Lda, ACols, InB) &&
                     SpanOk(Q.OffB, Q.Ldb, BCols, InB) &&
                     SpanOk(Q.OffC, Q.Ldc, Q.N, OutB);
  if (!Valid) {
    S->Errors.fetch_add(1, std::memory_order_relaxed);
    ErrTotal.fetch_add(1, std::memory_order_relaxed);
    fillReplyError(Rep, ipc::ReqStatus::Bad,
                   "request geometry escapes the session arena");
    sendReply(S, &Rep, sizeof(Rep));
    return;
  }

  unsigned char *Arena0 = S->Shm.at(S->Layout.ArenaOff);
  const void *A = Arena0 + Q.OffA;
  const void *B = Arena0 + Q.OffB;
  void *C = Arena0 + Q.OffC;

  // Cache-attribution flags ride on global counter deltas around the
  // call; with several executors they can misattribute a neighbor's
  // build, but daemon-level stats (what the warm-cache contract is
  // verified by) stay exact.
  gemm::EngineStats EB = Eng.stats();
  ukr::CacheStats UB = ukr::globalCacheStats();
  uint64_t T0 = nowNs();
  Error E = [&] {
    EXO_OBS_SPAN("gemmd.request");
    // The typed front door; F32 lands on the byte-identical sgemm path.
    // For I8I32 the engine itself rejects fractional alpha/beta, which
    // surfaces to the client as ReqStatus::Error with the message intact.
    return Eng.gemm(Ty, Q.TA ? gemm::Trans::Transpose : gemm::Trans::None,
                    Q.TB ? gemm::Trans::Transpose : gemm::Trans::None, Q.M,
                    Q.N, Q.K, static_cast<double>(Q.Alpha), A, Q.Lda, B,
                    Q.Ldb, static_cast<double>(Q.Beta), C, Q.Ldc);
  }();
  Rep.ServerNs = nowNs() - T0;
  gemm::EngineStats EA = Eng.stats();
  ukr::CacheStats UA = ukr::globalCacheStats();
  if (EA.Hits > EB.Hits)
    Rep.Flags |= ipc::ReplyPlanHit;
  if (EA.Builds > EB.Builds)
    Rep.Flags |= ipc::ReplyPlanBuilt;
  if (UA.Compiles > UB.Compiles)
    Rep.Flags |= ipc::ReplyJitCompiled;

  if (E) {
    S->Errors.fetch_add(1, std::memory_order_relaxed);
    ErrTotal.fetch_add(1, std::memory_order_relaxed);
    fillReplyError(Rep, ipc::ReqStatus::Error, E.message());
  } else {
    S->Ok.fetch_add(1, std::memory_order_relaxed);
    OkTotal.fetch_add(1, std::memory_order_relaxed);
    Rep.Status = static_cast<int32_t>(ipc::ReqStatus::Ok);
  }
  sendReply(S, &Rep, sizeof(Rep));
}

void Server::Impl::handleGemmBatch(const Work &W) {
  const std::shared_ptr<Session> &S = W.S;
  const ipc::GemmBatchRequestMsg &Q = W.BatchReq;
  if (S->Dead.load(std::memory_order_relaxed))
    return; // no one left to read the result

  ipc::GemmReplyMsg Rep;
  Rep.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmBatchReply);
  Rep.H.Seq = Q.H.Seq;
  Rep.H.Bytes = sizeof(Rep);

  // Batches are f32-only in wire v3 (Wire.h): the batched engine path has
  // no typed counterpart yet, so any non-zero dtype byte is a client bug.
  if (Q.DTy != 0) {
    S->Errors.fetch_add(1, std::memory_order_relaxed);
    ErrTotal.fetch_add(1, std::memory_order_relaxed);
    fillReplyError(Rep, ipc::ReqStatus::Bad,
                   "batched requests are f32-only in wire v3");
    sendReply(S, &Rep, sizeof(Rep));
    return;
  }

  // Same wide arithmetic as handleGemm, stretched across the batch: the
  // strides are required non-negative, so the furthest byte the engine
  // can touch belongs to the last item — that span must land inside this
  // client's arena.
  const uint64_t Arena = S->Layout.ArenaBytes;
  auto BatchSpanOk = [&](uint64_t Off, int64_t Ld, int64_t Cols,
                         int64_t Stride) {
    if (Ld <= 0 || Cols <= 0 || Stride < 0 || Off % sizeof(float) != 0 ||
        Off > Arena)
      return false;
    unsigned __int128 End =
        static_cast<unsigned __int128>(static_cast<uint64_t>(Stride)) *
            static_cast<uint64_t>(Q.BatchCount - 1) * sizeof(float) +
        static_cast<unsigned __int128>(Ld) * static_cast<uint64_t>(Cols) *
            sizeof(float);
    return End <= static_cast<unsigned __int128>(Arena - Off);
  };
  const int64_t ARows = Q.TA ? Q.K : Q.M;
  const int64_t ACols = Q.TA ? Q.M : Q.K;
  const int64_t BRows = Q.TB ? Q.N : Q.K;
  const int64_t BCols = Q.TB ? Q.K : Q.N;
  const bool Valid =
      Q.BatchCount > 0 && Q.M > 0 && Q.N > 0 && Q.K > 0 && Q.TA <= 1 &&
      Q.TB <= 1 && Q.Lda >= ARows && Q.Ldb >= BRows && Q.Ldc >= Q.M &&
      (Q.BatchCount == 1 ||
       static_cast<__int128>(Q.StrideC) >=
           static_cast<__int128>(Q.Ldc) * Q.N) &&
      BatchSpanOk(Q.OffA, Q.Lda, ACols, Q.StrideA) &&
      BatchSpanOk(Q.OffB, Q.Ldb, BCols, Q.StrideB) &&
      BatchSpanOk(Q.OffC, Q.Ldc, Q.N, Q.StrideC);
  if (!Valid) {
    S->Errors.fetch_add(1, std::memory_order_relaxed);
    ErrTotal.fetch_add(1, std::memory_order_relaxed);
    fillReplyError(Rep, ipc::ReqStatus::Bad,
                   "batch geometry escapes the session arena");
    sendReply(S, &Rep, sizeof(Rep));
    return;
  }

  unsigned char *Arena0 = S->Shm.at(S->Layout.ArenaOff);
  const float *A = reinterpret_cast<const float *>(Arena0 + Q.OffA);
  const float *B = reinterpret_cast<const float *>(Arena0 + Q.OffB);
  float *C = reinterpret_cast<float *>(Arena0 + Q.OffC);

  gemm::EngineStats EB = Eng.stats();
  ukr::CacheStats UB = ukr::globalCacheStats();
  uint64_t T0 = nowNs();
  Error E = [&] {
    EXO_OBS_SPAN("gemmd.batch");
    return Eng.sgemmStridedBatched(
        Q.TA ? gemm::Trans::Transpose : gemm::Trans::None,
        Q.TB ? gemm::Trans::Transpose : gemm::Trans::None, Q.M, Q.N, Q.K,
        Q.Alpha, A, Q.Lda, Q.StrideA, B, Q.Ldb, Q.StrideB, Q.Beta, C, Q.Ldc,
        Q.StrideC, Q.BatchCount);
  }();
  Rep.ServerNs = nowNs() - T0;
  gemm::EngineStats EA = Eng.stats();
  ukr::CacheStats UA = ukr::globalCacheStats();
  if (EA.Hits > EB.Hits)
    Rep.Flags |= ipc::ReplyPlanHit;
  if (EA.Builds > EB.Builds)
    Rep.Flags |= ipc::ReplyPlanBuilt;
  if (UA.Compiles > UB.Compiles)
    Rep.Flags |= ipc::ReplyJitCompiled;

  if (E) {
    S->Errors.fetch_add(1, std::memory_order_relaxed);
    ErrTotal.fetch_add(1, std::memory_order_relaxed);
    fillReplyError(Rep, ipc::ReqStatus::Error, E.message());
  } else {
    S->Ok.fetch_add(1, std::memory_order_relaxed);
    OkTotal.fetch_add(1, std::memory_order_relaxed);
    Rep.Status = static_cast<int32_t>(ipc::ReqStatus::Ok);
  }
  sendReply(S, &Rep, sizeof(Rep));
}

void Server::Impl::executorLoop() {
  for (;;) {
    Work W;
    {
      std::unique_lock<std::mutex> Lock(QMu);
      QCv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stopping)
          return; // graceful: the queue drained first
        continue;
      }
      W = std::move(Queue.front());
      Queue.pop_front();
    }
    if (W.IsBatch)
      handleGemmBatch(W);
    else
      handleGemm(W);
  }
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

void Server::Impl::fillWireStats(ipc::StatsReplyMsg &W) const {
  W = ipc::StatsReplyMsg{};
  W.H.Type = static_cast<uint16_t>(ipc::PacketType::StatsReply);
  W.H.Bytes = sizeof(W);
  {
    std::lock_guard<std::mutex> Lock(SessMu);
    W.ActiveClients = Sessions.size();
  }
  W.TotalClients = TotalClients.load(std::memory_order_relaxed);
  W.Requests = ReqTotal.load(std::memory_order_relaxed);
  W.Ok = OkTotal.load(std::memory_order_relaxed);
  W.Errors = ErrTotal.load(std::memory_order_relaxed);
  W.Busy = BusyTotal.load(std::memory_order_relaxed);
  W.Reaped = Reaped.load(std::memory_order_relaxed);
  gemm::EngineStats ES = Eng.stats();
  W.PlanHits = ES.Hits;
  W.PlanMisses = ES.Misses;
  W.PlanBuilds = ES.Builds;
  W.PlanEvictions = ES.Evictions;
  W.PlanStickyErrors = ES.StickyErrors;
  ukr::CacheStats US = ukr::globalCacheStats();
  W.UkrDiskHits = US.DiskHits;
  W.UkrCompiles = US.Compiles;
  W.UkrFallbacks = US.Fallbacks;
  W.UptimeNs = nowNs() - StartNs;
}

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

Server::Server(const ServerOptions &Opts) : I(new Impl(Opts)) {}

Server::~Server() {
  stop();
  delete I;
}

Error Server::start() {
  if (I->Running)
    return errorf("gemmd: server already running");
  Expected<ipc::Socket> L = ipc::Socket::listen(I->Opts.SocketPath, 64);
  if (!L)
    return L.takeError();
  I->Listen = L.take();
  int Pipe[2];
  if (::pipe2(Pipe, O_CLOEXEC | O_NONBLOCK) != 0)
    return errorf("gemmd: pipe2 failed: %s", std::strerror(errno));
  I->WakeR = Pipe[0];
  I->WakeW = Pipe[1];
  I->StartNs = nowNs();
  I->Stopping = false;
  I->Running = true;
  I->Poller = std::thread([this] { I->pollLoop(); });
  for (unsigned W = 0; W != I->Opts.Workers; ++W)
    I->Executors.emplace_back([this] { I->executorLoop(); });
  return Error::success();
}

void Server::stop() {
  if (!I->Running)
    return;
  {
    std::lock_guard<std::mutex> Lock(I->QMu);
    I->Stopping = true;
  }
  I->QCv.notify_all();
  I->wake();
  if (I->Poller.joinable())
    I->Poller.join();
  // Executors drain what the poller already admitted, reply, then exit.
  for (std::thread &T : I->Executors)
    if (T.joinable())
      T.join();
  I->Executors.clear();
  // Now nothing can touch the sessions: close them out (clients see EOF).
  std::vector<std::shared_ptr<Session>> Remaining;
  {
    std::lock_guard<std::mutex> Lock(I->SessMu);
    for (auto &KV : I->Sessions)
      Remaining.push_back(KV.second);
  }
  for (auto &S : Remaining)
    I->reapSession(S, "server shutdown");
  I->Listen.close();
  ::unlink(I->Opts.SocketPath.c_str());
  if (I->WakeR >= 0)
    ::close(I->WakeR);
  if (I->WakeW >= 0)
    ::close(I->WakeW);
  I->WakeR = I->WakeW = -1;
  I->Running = false;
}

bool Server::running() const { return I->Running; }

const std::string &Server::socketPath() const { return I->Opts.SocketPath; }

gemm::Engine &Server::engine() { return I->Eng; }

ServerStats Server::stats() const {
  ServerStats St;
  I->fillWireStats(St.Wire);
  std::lock_guard<std::mutex> Lock(I->SessMu);
  St.PerClient = I->Closed;
  for (const auto &KV : I->Sessions)
    St.PerClient.push_back(KV.second->snapshot(true));
  return St;
}

} // namespace gemmd
