//===- bench_ablate_isa.cpp - §III-C portability across ISAs --------------===//
//
// The same schedule retargeted through different instruction libraries:
// portable 128-bit lane kernels (the Neon-shaped schedule), AVX2 and
// AVX-512 broadcast kernels. Full GEMM at each width.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include <cstdio>
#include <vector>

using namespace gemm;

int main(int Argc, char **Argv) {
  fig::Context Ctx("ablate_isa", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::printf("Ablation: one schedule, three instruction libraries\n");

  struct IsaCase {
    const char *Label;
    const exo::IsaLib *Isa;
    int64_t Mr, Nr;
  };
  const IsaCase Cases[] = {
      {"portable (128b lane, Neon-shaped)", &exo::portableIsa(), 8, 12},
      {"avx2 (256b broadcast)", &exo::avx2Isa(), 8, 12},
      {"avx512 (512b broadcast)", &exo::avx512Isa(), 16, 12},
  };

  std::vector<int64_t> Sizes = Opt.Big
                                   ? std::vector<int64_t>{1024, 2048, 4096}
                                   : std::vector<int64_t>{384, 768, 1152};
  if (Opt.Smoke)
    Sizes = {64, 96};
  std::vector<std::string> Header{"isa"};
  for (int64_t S : Sizes)
    Header.push_back(std::to_string(S));
  benchutil::Table T("ablate_isa_gflops", Header, Opt.Csv);

  for (const IsaCase &C : Cases) {
    if (!C.Isa->hostExecutable())
      continue;
    EngineConfig Cfg;
    Cfg.Series = EngineSeries::Exo;
    Cfg.Isa = C.Isa;
    Cfg.ForceMR = C.Mr;
    Cfg.ForceNR = C.Nr;
    Engine E(Cfg);
    std::vector<double> Row;
    for (int64_t S : Sizes) {
      std::vector<float> A(S * S), B(S * S), Cm(S * S, 0.f);
      benchutil::fillRandom(A.data(), A.size(), 1);
      benchutil::fillRandom(B.data(), B.size(), 2);
      benchutil::Measurement M = benchutil::measure(
          [&] {
            E.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 1.f, Cm.data(),
                    S);
          },
          Opt.Seconds);
      Row.push_back(fig::addGemmRow(Ctx, std::to_string(S), C.Label, S, S, S,
                                    M, 2.0 * S * S * S));
    }
    T.addRow(C.Label, Row);
  }
  T.print();
  return Ctx.finish();
}
