//===- bench_fig14_square.cpp - Paper Figure 14 ---------------------------===//
//
// Squarish GEMM through the full BLIS-like algorithm with the analytical
// blocking model. Default sizes are scaled down to keep the suite fast;
// --big runs the paper's {1000, 2000, 4000, 5000}. Expected shape (paper
// Fig. 14): BLIS (in-kernel prefetch) and ALG+EXO lead; ALG+EXO beats the
// other ALG+ series; ALG+NEON trails.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "exo/support/Str.h"

int main(int Argc, char **Argv) {
  fig::Context Ctx("fig14_square", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::vector<int64_t> Sizes = Opt.Big
                                   ? std::vector<int64_t>{1000, 2000, 4000, 5000}
                                   : std::vector<int64_t>{256, 512, 1024, 1536};
  if (Opt.Smoke)
    Sizes = {64, 96};

  std::printf("Figure 14: squarish GEMM (m = n = k)%s\n",
              Opt.Big ? " [paper sizes]" : " [scaled; use --big]");
  benchutil::Table T("fig14_square_gflops", fig::seriesHeader("size"),
                     Opt.Csv);
  for (int64_t S : Sizes) {
    // The tile the ALG+EXO Engine's planner resolves for this problem
    // (same call the Engine makes on a plan-cache miss).
    gemm::PlanChoice Choice = gemm::choosePlan(S, S, S, &exo::avx2Isa());
    std::vector<fig::SeriesPoint> Pts =
        fig::gemmSeriesRun(S, S, S, Opt.Seconds);
    std::vector<double> Row;
    for (const fig::SeriesPoint &Pt : Pts)
      Row.push_back(Pt.Gflops);
    std::string Label = exo::strf("%lld", static_cast<long long>(S));
    T.addRow(exo::strf("%lld (exo %lldx%lld)", static_cast<long long>(S),
                       static_cast<long long>(Choice.MR),
                       static_cast<long long>(Choice.NR)),
             Row);
    fig::addSeriesRows(Ctx, Label, S, S, S, Pts);
  }
  T.print();
  return Ctx.finish();
}
