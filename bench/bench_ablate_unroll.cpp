//===- bench_ablate_unroll.cpp - Unrolling ablation (§III step f) ---------===//
//
// Does the schedule's explicit load unrolling matter, and does fully
// unrolling the compute loops help further? Solo-mode 8x12 kernels, three
// variants per ISA.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "ukr/KernelRegistry.h"

#include <cstdio>
#include <vector>

using namespace exo;

namespace {

benchutil::Measurement soloMeasure(ukr::MicroKernelF32 Fn, int64_t Mr,
                                   int64_t Nr, int64_t Kc, double Seconds) {
  std::vector<float> Ac(Kc * Mr), Bc(Kc * Nr), C(Nr * Mr, 0.f);
  benchutil::fillRandom(Ac.data(), Ac.size(), 1);
  benchutil::fillRandom(Bc.data(), Bc.size(), 2);
  return benchutil::measure(
      [&] { Fn(Kc, Mr, Ac.data(), Bc.data(), C.data()); }, Seconds);
}

} // namespace

int main(int Argc, char **Argv) {
  fig::Context Ctx("ablate_unroll", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  const int64_t Kc = Opt.Smoke ? 64 : 512;
  std::printf("Ablation: loop unrolling in the generated 8x12 kernel "
              "(solo mode, kc=%lld)\n",
              static_cast<long long>(Kc));

  benchutil::Table T("ablate_unroll_gflops",
                     {"isa", "rolled_loads", "unrolled_loads(paper)",
                      "fully_unrolled"},
                     Opt.Csv);
  const char *VariantNames[] = {"rolled_loads", "unrolled_loads",
                                "fully_unrolled"};

  for (const IsaLib *Isa : {&portableIsa(), &avx2Isa(), &avx512Isa()}) {
    if (!Isa->hostExecutable())
      continue;
    int64_t Mr = Isa->lanes(ScalarKind::F32) == 16 ? 16 : 8;
    std::vector<double> Row;
    for (int Variant = 0; Variant != 3; ++Variant) {
      ukr::UkrConfig Cfg;
      Cfg.MR = Mr;
      Cfg.NR = 12;
      Cfg.Isa = Isa;
      Cfg.UnrollLoads = Variant >= 1;
      Cfg.UnrollCompute = Variant == 2;
      auto K = ukr::KernelCache::global().get(Cfg);
      if (!K || !(*K)->Fn) {
        Row.push_back(0);
        continue;
      }
      benchutil::Measurement M =
          soloMeasure((*K)->Fn, Mr, 12, Kc, Opt.Seconds);
      Row.push_back(fig::addGemmRow(Ctx, Isa->name(),
                                    VariantNames[Variant], Mr, 12, Kc, M,
                                    2.0 * Mr * 12 * Kc));
    }
    T.addRow(Isa->name(), Row);
  }
  T.print();
  return Ctx.finish();
}
