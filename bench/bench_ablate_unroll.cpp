//===- bench_ablate_unroll.cpp - Unrolling ablation (§III step f) ---------===//
//
// Does the schedule's explicit load unrolling matter, and does fully
// unrolling the compute loops help further? Solo-mode 8x12 kernels, three
// variants per ISA.
//
//===----------------------------------------------------------------------===//

#include "benchutil/Bench.h"
#include "ukr/KernelRegistry.h"

#include <cstdio>
#include <vector>

using namespace exo;

namespace {

double soloGflops(ukr::MicroKernelF32 Fn, int64_t Mr, int64_t Nr, int64_t Kc,
                  double Seconds) {
  std::vector<float> Ac(Kc * Mr), Bc(Kc * Nr), C(Nr * Mr, 0.f);
  benchutil::fillRandom(Ac.data(), Ac.size(), 1);
  benchutil::fillRandom(Bc.data(), Bc.size(), 2);
  double Secs = benchutil::timeIt(
      [&] { Fn(Kc, Mr, Ac.data(), Bc.data(), C.data()); }, Seconds);
  return benchutil::gflops(2.0 * Mr * Nr * Kc, Secs);
}

} // namespace

int main(int Argc, char **Argv) {
  benchutil::BenchOptions Opt = benchutil::BenchOptions::parse(Argc, Argv);
  std::printf("Ablation: loop unrolling in the generated 8x12 kernel "
              "(solo mode, kc=512)\n");

  benchutil::Table T("ablate_unroll_gflops",
                     {"isa", "rolled_loads", "unrolled_loads(paper)",
                      "fully_unrolled"},
                     Opt.Csv);

  for (const IsaLib *Isa : {&portableIsa(), &avx2Isa(), &avx512Isa()}) {
    if (!Isa->hostExecutable())
      continue;
    int64_t Mr = Isa->lanes(ScalarKind::F32) == 16 ? 16 : 8;
    std::vector<double> Row;
    for (int Variant = 0; Variant != 3; ++Variant) {
      ukr::UkrConfig Cfg;
      Cfg.MR = Mr;
      Cfg.NR = 12;
      Cfg.Isa = Isa;
      Cfg.UnrollLoads = Variant >= 1;
      Cfg.UnrollCompute = Variant == 2;
      auto K = ukr::KernelCache::global().get(Cfg);
      if (!K || !(*K)->Fn) {
        Row.push_back(0);
        continue;
      }
      Row.push_back(soloGflops((*K)->Fn, Mr, 12, 512, Opt.Seconds));
    }
    T.addRow(Isa->name(), Row);
  }
  T.print();
  return 0;
}
