//===- bench_fig13_solo.cpp - Paper Figure 13 -----------------------------===//
//
// Solo-mode micro-kernel performance: each kernel runs directly on packed
// panels (kc = 512, the BLIS packing for the paper's ARM target) for the
// flagship 8x12 shape and the edge cases. NEON and BLIS always run their
// monolithic 8x12 kernel (through a zero-padded scratch tile for edges,
// as the libraries do), while EXO runs an ad-hoc generated kernel per
// shape. Expected shape of the result (paper Fig. 13): all three are close
// at 8x12; EXO degrades gracefully on edges while NEON/BLIS waste lanes.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "exo/support/Str.h"

#include <algorithm>
#include <cstring>

using namespace gemm;

namespace {

/// Runs a monolithic 8x12 kernel on an (mr, nr) problem the way the
/// libraries handle edges: full-width zero-padded panels and a scratch
/// tile, copying out the valid window.
void runMonolithic(KernelFn Fn, int64_t Mr, int64_t Nr, int64_t Kc,
                   const float *Ac /*padded Kc x 8*/,
                   const float *Bc /*padded Kc x 12*/, float *C,
                   int64_t Ldc) {
  if (Mr == 8 && Nr == 12) {
    Fn(Kc, Ldc, Ac, Bc, C);
    return;
  }
  float Scratch[12 * 8];
  std::memset(Scratch, 0, sizeof(Scratch));
  Fn(Kc, 8, Ac, Bc, Scratch);
  for (int64_t J = 0; J < Nr; ++J)
    for (int64_t I = 0; I < Mr; ++I)
      C[J * Ldc + I] += Scratch[J * 8 + I];
}

} // namespace

int main(int Argc, char **Argv) {
  fig::Context Ctx("fig13_solo", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  const int64_t Kc = Opt.Smoke ? 64 : 512;
  std::vector<std::pair<int64_t, int64_t>> Shapes = {
      {8, 12}, {8, 8}, {8, 4}, {4, 12}, {4, 8}, {4, 4}, {1, 12}, {1, 8}};
  if (Opt.Smoke)
    Shapes = {{8, 12}, {4, 8}};

  std::printf("Figure 13: micro-kernels in solo mode (kc=%lld)\n",
              static_cast<long long>(Kc));
  std::printf("NEON/BLIS run the monolithic 8x12 kernel for every shape; "
              "EXO runs a specialized generated kernel per shape.\n");

  benchutil::Table T("fig13_solo_gflops",
                     {"mrxnr", "NEON", "BLIS", "EXO"}, Opt.Csv);
  ExoProvider Exo(8, 12);

  for (auto [Mr, Nr] : Shapes) {
    // Padded panels (8 / 12 wide) for the monolithic kernels; tight panels
    // for EXO.
    std::vector<float> AcPad(Kc * 8, 0.0f), BcPad(Kc * 12, 0.0f);
    std::vector<float> AcTight(Kc * Mr), BcTight(Kc * Nr);
    benchutil::fillRandom(AcTight.data(), AcTight.size(), 3);
    benchutil::fillRandom(BcTight.data(), BcTight.size(), 4);
    for (int64_t K = 0; K < Kc; ++K) {
      for (int64_t I = 0; I < Mr; ++I)
        AcPad[K * 8 + I] = AcTight[K * Mr + I];
      for (int64_t J = 0; J < Nr; ++J)
        BcPad[K * 12 + J] = BcTight[K * Nr + J];
    }
    int64_t Ldc = 8;
    std::vector<float> C(12 * Ldc, 0.0f);
    double Flops = 2.0 * Mr * Nr * Kc;
    std::string Label = exo::strf("%lldx%lld", static_cast<long long>(Mr),
                                 static_cast<long long>(Nr));

    auto addRow = [&](const char *Series, const benchutil::Measurement &M) {
      return fig::addGemmRow(Ctx, Label, Series, Mr, Nr, Kc, M, Flops);
    };

    std::vector<double> Row;
    const char *BaselineNames[] = {"NEON", "BLIS"};
    int BI = 0;
    for (KernelFn Fn :
         {&handVectorKernel8x12, &blisStyleKernel8x12Prefetch}) {
      const char *Series = BaselineNames[BI++];
      if (!baselineKernelsUsable()) {
        Row.push_back(0);
        continue;
      }
      benchutil::Measurement M = benchutil::measure(
          [&] {
            runMonolithic(Fn, Mr, Nr, Kc, AcPad.data(), BcPad.data(),
                          C.data(), Ldc);
          },
          Opt.Seconds);
      Row.push_back(addRow(Series, M));
    }

    auto K = Exo.shape(Mr, Nr);
    if (K && K->Fn) {
      KernelFn Fn = K->Fn;
      benchutil::Measurement M = benchutil::measure(
          [&] { Fn(Kc, Ldc, AcTight.data(), BcTight.data(), C.data()); },
          Opt.Seconds);
      Row.push_back(addRow("EXO", M));
    } else {
      Row.push_back(0);
    }

    T.addRow(Label, Row);
  }
  T.print();
  return Ctx.finish();
}
