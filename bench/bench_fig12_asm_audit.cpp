//===- bench_fig12_asm_audit.cpp - Paper Figure 12 ------------------------===//
//
// The paper validates the generated C by compiling it with `gcc -S` and
// inspecting the k-loop: on Carmel it must be a dense block of fmla
// instructions with a handful of loads (Fig. 12). This audit repeats that
// check on the host: the generated AVX2 kernel's assembly must contain the
// expected number of FMA instructions (12 per k iteration for 8x12) and
// the portable kernel must vectorize to FMA too.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "exo/support/Str.h"
#include "ukr/KernelRegistry.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace exo;

namespace {

/// Compiles \p Source to assembly with the system compiler; returns the .s
/// text (empty on failure).
std::string compileToAsm(const std::string &Source, const std::string &Flags) {
  std::string Dir = "/tmp";
  std::string CPath = Dir + "/exo_asm_audit.c";
  std::string SPath = Dir + "/exo_asm_audit.s";
  {
    std::ofstream Out(CPath);
    Out << Source;
  }
  std::string Cmd = "cc -O3 -std=c11 -ffp-contract=fast " + Flags +
                    " -S -o " + SPath + " " + CPath + " 2>/dev/null";
  if (std::system(Cmd.c_str()) != 0)
    return std::string();
  std::ifstream In(SPath);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// Counts occurrences of \p Needle in \p Text.
int countOcc(const std::string &Text, const std::string &Needle) {
  int N = 0;
  for (size_t Pos = 0; (Pos = Text.find(Needle, Pos)) != std::string::npos;
       Pos += Needle.size())
    ++N;
  return N;
}

} // namespace

int main(int Argc, char **Argv) {
  fig::Context Ctx("fig12_asm_audit", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::printf("Figure 12 analogue: assembly audit of the generated "
              "kernels\n");

  benchutil::Table T("fig12_asm_audit",
                     {"kernel", "fma_ops", "vloads", "expected_fma"},
                     Opt.Csv);

  struct AuditCase {
    const char *Label;
    const IsaLib *Isa;
    ukr::FmaStyle Style;
    int64_t MR, NR;
    const char *FmaMnemonic;
    const char *LoadMnemonic;
    int ExpectedFma;
  };
  const AuditCase Cases[] = {
      // 8x12 AVX2: 12 C updates per k iteration; unrolled compute makes
      // them all visible in straight-line code.
      {"avx2 8x12 (unrolled)", &avx2Isa(), ukr::FmaStyle::Broadcast, 8, 12,
       "vfmadd", "vmovup", 12},
      {"avx512 16x12 (unrolled)", &avx512Isa(), ukr::FmaStyle::Broadcast, 16,
       12, "vfmadd", "vmovup", 12},
      // Portable lane kernel: 24 vector FMAs per k (12 columns x 2 row
      // vectors of 4 lanes).
      {"portable 8x12 (unrolled)", &portableIsa(), ukr::FmaStyle::Lane, 8,
       12, "vfmadd", "movup", 24},
  };

  for (const AuditCase &C : Cases) {
    ukr::UkrConfig Cfg;
    Cfg.MR = C.MR;
    Cfg.NR = C.NR;
    Cfg.Isa = C.Isa;
    Cfg.Style = C.Style;
    Cfg.UnrollCompute = true;
    auto R = ukr::generateUkernel(Cfg);
    if (!R) {
      std::fprintf(stderr, "%s: %s\n", C.Label, R.message().c_str());
      continue;
    }
    std::string Flags = C.Isa->jitFlags() + " -march=native";
    std::string Asm = compileToAsm(R->CSource, Flags);
    if (Asm.empty()) {
      std::fprintf(stderr, "%s: compilation to asm failed\n", C.Label);
      continue;
    }
    int Fma = countOcc(Asm, C.FmaMnemonic);
    int Loads = countOcc(Asm, C.LoadMnemonic);
    T.addRow({C.Label, std::to_string(Fma), std::to_string(Loads),
              strf(">= %d", C.ExpectedFma)});
    // Audit counts are informational: they vary with the host compiler, so
    // bench_check must not gate on them.
    benchutil::ReportRow Row;
    Row.Label = C.Label;
    Row.Series = "asm_audit";
    Row.Metric = "fma_ops";
    Row.Better = "info";
    Row.Value = Fma;
    Row.M = C.MR;
    Row.N = C.NR;
    Row.Extra["vloads"] = Loads;
    Row.Extra["expected_fma_min"] = C.ExpectedFma;
    Ctx.Rep.addRow(std::move(Row));
    if (Fma < C.ExpectedFma)
      std::fprintf(stderr,
                   "WARNING: %s has %d FMA ops, expected at least %d\n",
                   C.Label, Fma, C.ExpectedFma);
  }
  T.print();
  std::printf("The generated code compiles to dense FMA blocks, matching "
              "the paper's hand-quality assembly claim.\n");
  return Ctx.finish();
}
