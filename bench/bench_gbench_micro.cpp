//===- bench_gbench_micro.cpp - google-benchmark micro-kernel timings -----===//
//
// Fine-grained micro-kernel latencies under google-benchmark: generated
// kernels at several shapes, and the hand-written baselines, all in solo
// mode on packed panels.
//
//===----------------------------------------------------------------------===//

#include "benchutil/Bench.h"
#include "gemm/Engine.h"
#include "gemm/ExoProvider.h"
#include "gemm/Kernels.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace gemm;

namespace {

/// Shared solo-mode fixture: runs a KernelFn on fresh packed panels.
void runKernelBench(benchmark::State &State, KernelFn Fn, int64_t Mr,
                    int64_t Nr) {
  const int64_t Kc = State.range(0);
  std::vector<float> Ac(Kc * Mr), Bc(Kc * Nr), C(Nr * Mr, 0.f);
  benchutil::fillRandom(Ac.data(), Ac.size(), 1);
  benchutil::fillRandom(Bc.data(), Bc.size(), 2);
  for (auto _ : State) {
    Fn(Kc, Mr, Ac.data(), Bc.data(), C.data());
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() * 2 * Mr * Nr * Kc);
}

void BM_ExoKernel(benchmark::State &State, int64_t Mr, int64_t Nr) {
  static ExoProvider Exo(8, 12);
  auto K = Exo.shape(Mr, Nr);
  if (!K || !K->Fn) {
    State.SkipWithError("kernel unavailable");
    return;
  }
  runKernelBench(State, K->Fn, Mr, Nr);
}

void BM_HandVector(benchmark::State &State) {
  if (!baselineKernelsUsable()) {
    State.SkipWithError("no AVX2");
    return;
  }
  runKernelBench(State, &handVectorKernel8x12, 8, 12);
}

void BM_BlisStyle(benchmark::State &State) {
  if (!baselineKernelsUsable()) {
    State.SkipWithError("no AVX2");
    return;
  }
  runKernelBench(State, &blisStyleKernel8x12Prefetch, 8, 12);
}

/// Full GEMM through the Engine front door on the hot plan-cache path —
/// the dispatch-inclusive number bench_dispatch compares against the
/// legacy direct call.
void BM_EngineSgemm(benchmark::State &State) {
  static Engine E; // Auto series: exo kernels, blis fallback
  const int64_t S = State.range(0);
  std::vector<float> A(S * S), B(S * S), C(S * S, 0.f);
  benchutil::fillRandom(A.data(), A.size(), 1);
  benchutil::fillRandom(B.data(), B.size(), 2);
  if (E.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 1.f, C.data(), S)) {
    State.SkipWithError("sgemm failed");
    return;
  }
  for (auto _ : State) {
    E.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 1.f, C.data(), S);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() * 2 * S * S * S);
}

} // namespace

BENCHMARK_CAPTURE(BM_ExoKernel, 8x12, 8, 12)->Arg(128)->Arg(512);
BENCHMARK_CAPTURE(BM_ExoKernel, 8x4, 8, 4)->Arg(512);
BENCHMARK_CAPTURE(BM_ExoKernel, 4x4, 4, 4)->Arg(512);
BENCHMARK_CAPTURE(BM_ExoKernel, 16x12, 16, 12)->Arg(512);
BENCHMARK(BM_HandVector)->Arg(512);
BENCHMARK(BM_BlisStyle)->Arg(512);
BENCHMARK(BM_EngineSgemm)->Arg(64)->Arg(256);

// Custom main so the suite-wide flag conventions work here too: `--json
// [PATH]` maps to google-benchmark's JSON reporter (NOT the BENCH_*.json
// schema — bench_check does not gate on this file) and `--smoke` clamps the
// per-benchmark time budget.
int main(int Argc, char **Argv) {
  std::vector<std::string> Args;
  Args.emplace_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json") {
      std::string Path = "BENCH_gbench_micro.json";
      if (I + 1 < Argc && std::string(Argv[I + 1]).rfind("--", 0) != 0)
        Path = Argv[++I];
      Args.push_back("--benchmark_out=" + Path);
      Args.push_back("--benchmark_out_format=json");
    } else if (Arg == "--smoke") {
      // Plain seconds: the "0.01s" spelling needs benchmark >= 1.8.
      Args.push_back("--benchmark_min_time=0.01");
    } else {
      Args.push_back(std::move(Arg));
    }
  }
  std::vector<char *> CArgs;
  for (std::string &S : Args)
    CArgs.push_back(S.data());
  int CArgc = static_cast<int>(CArgs.size());
  benchmark::Initialize(&CArgc, CArgs.data());
  if (benchmark::ReportUnrecognizedArguments(CArgc, CArgs.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
