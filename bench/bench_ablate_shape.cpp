//===- bench_ablate_shape.cpp - Micro-kernel shape sweep ------------------===//
//
// Why 8x12-class shapes win: solo-mode GFLOPS across the (MR, NR) plane at
// fixed kc. Tall-skinny and short-wide tiles lose arithmetic intensity;
// oversized tiles spill registers.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "ukr/KernelRegistry.h"

#include <cstdio>
#include <vector>

using namespace exo;

int main(int Argc, char **Argv) {
  fig::Context Ctx("ablate_shape", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  const int64_t Kc = Opt.Smoke ? 64 : 512;
  std::printf("Ablation: micro-kernel shape sweep (solo mode, kc=%lld, "
              "auto ISA per MR)\n",
              static_cast<long long>(Kc));

  std::vector<int64_t> Mrs = {4, 8, 16, 24, 32};
  std::vector<int64_t> Nrs = {1, 2, 4, 6, 8, 12, 16};
  if (Opt.Smoke) {
    Mrs = {8};
    Nrs = {4, 12};
  }

  std::vector<std::string> Header{"mr\\nr"};
  for (int64_t Nr : Nrs)
    Header.push_back(std::to_string(Nr));
  benchutil::Table T("ablate_shape_gflops", Header, Opt.Csv);

  for (int64_t Mr : Mrs) {
    std::vector<double> Row;
    for (int64_t Nr : Nrs) {
      // The shared ISA-per-shape rule (same one the planner, provider, and
      // warm-up use), so this sweep times the kernels a plan would pick.
      ukr::UkrConfig Cfg = ukr::shapeConfig(Mr, Nr);
      auto K = ukr::KernelCache::global().get(Cfg);
      if (!K || !(*K)->Fn) {
        Row.push_back(0);
        continue;
      }
      std::vector<float> Ac(Kc * Mr), Bc(Kc * Nr), C(Nr * Mr, 0.f);
      benchutil::fillRandom(Ac.data(), Ac.size(), 1);
      benchutil::fillRandom(Bc.data(), Bc.size(), 2);
      ukr::MicroKernelF32 Fn = (*K)->Fn;
      benchutil::Measurement M = benchutil::measure(
          [&] { Fn(Kc, Mr, Ac.data(), Bc.data(), C.data()); }, Opt.Seconds);
      Row.push_back(fig::addGemmRow(
          Ctx, std::to_string(Mr) + "x" + std::to_string(Nr), "solo", Mr, Nr,
          Kc, M, 2.0 * Mr * Nr * Kc));
    }
    T.addRow(std::to_string(Mr), Row);
  }
  T.print();
  return Ctx.finish();
}
